//! Checked-mode integration tests: the free-queue liveness defect class
//! (use-after-drop of a plan's device buffers) plus the differential-fuzz
//! harness — every algorithm runs under the validation layer across a
//! size/stream/GPU grid, must produce a clean [`gpu_sim::CheckReport`] and
//! must match the CPU reference transform.

use fft_math::rng::SplitMix64;
use nukada_fft_repro::gpu_sim::{AccessKind, LaunchConfig};
use nukada_fft_repro::prelude::*;

fn arb_volume(rng: &mut SplitMix64, len: usize) -> Vec<Complex32> {
    (0..len)
        .map(|_| c32(rng.uniform_f32(-1.0, 1.0), rng.uniform_f32(-1.0, 1.0)))
        .collect()
}

/// Dropping a plan queues its device buffers on the arena's deferred-free
/// queue; a kernel that kept a stale [`gpu_sim::BufferId`] and reads it
/// afterwards is a use-after-free the checker must attribute to that
/// kernel. Reading while the plan is alive must not flag.
#[test]
fn use_after_drop_of_plan_buffer_is_caught() {
    let n = 16usize;
    let mut rng = SplitMix64::new(0x0AFD_0001);
    let host = arb_volume(&mut rng, n * n * n);

    let mut gpu = Gpu::new(DeviceSpec::gts8800());
    let plan = Fft3d::builder(n, n, n)
        .checked(true)
        .build(&mut gpu)
        .unwrap();
    let (v, _w) = plan.buffers();
    plan.transform(&mut gpu, &host, Direction::Forward).unwrap();

    // Alive: a peek kernel over the plan's buffer is fine.
    gpu.launch(&LaunchConfig::copy("peek_live", 1, 16), |t| {
        let _ = t.ld(v, t.gid());
    });
    assert!(gpu.check_report().unwrap().clean());

    // The defect: the plan is gone (buffers queued for reclaim) but the
    // stale handle is still used.
    drop(plan);
    gpu.launch(&LaunchConfig::copy("peek_stale", 1, 16), |t| {
        let _ = t.ld(v, t.gid());
    });

    let rep = gpu.check_report().unwrap();
    let d = rep
        .access
        .iter()
        .find(|d| d.kind == AccessKind::UseAfterFree)
        .expect("a use-after-free diagnostic");
    assert_eq!(d.kernel, "peek_stale");
    assert_eq!(d.buffer, v.index());
    assert!(!d.write);
}

/// Relative L2 distance between a run and the CPU reference.
fn cpu_error(n: usize, host: &[Complex32], got: &[Complex32], dir: Direction) -> f64 {
    let mut want = host.to_vec();
    CpuFft3d::new(n, n, n).execute(&mut want, dir);
    fft_math::error::rel_l2_error_f32(got, want.as_slice())
}

/// Differential fuzz: checked runs of every in-core algorithm at
/// {16, 32, 64}³ agree with `cpu-fft` within 1e-4 and report clean.
#[test]
fn checked_in_core_matches_cpu() {
    let mut rng = SplitMix64::new(0xD1FF_0001);
    for &n in &[16usize, 32, 64] {
        let host = arb_volume(&mut rng, n * n * n);
        for algo in Algorithm::IN_CORE {
            let mut gpu = Gpu::new(DeviceSpec::gts8800());
            let plan = Fft3d::builder(n, n, n)
                .algorithm(algo)
                .checked(true)
                .build(&mut gpu)
                .unwrap();
            let (out, _) = plan.transform(&mut gpu, &host, Direction::Forward).unwrap();
            let rep = gpu.check_report().unwrap();
            assert!(rep.clean(), "{} at {n}^3: {rep}", algo.name());
            assert!(rep.kernels_checked > 0);
            let err = cpu_error(n, &host, &out, Direction::Forward);
            assert!(err < 1e-4, "{} at {n}^3: rel err {err}", algo.name());
        }
    }
}

/// Checked out-of-core runs across 1–4 streams: clean report, matches the
/// CPU reference. (16³ is skipped — the smallest slab is 16 planes.)
#[test]
fn checked_out_of_core_matches_cpu() {
    let mut rng = SplitMix64::new(0xD1FF_0002);
    for &(n, slabs) in &[(32usize, 2usize), (64, 4)] {
        let host = arb_volume(&mut rng, n * n * n);
        for streams in 1..=4usize {
            let spec = DeviceSpec::gts8800();
            let plan = OutOfCoreFft::new(&spec, n, n, n, slabs)
                .unwrap()
                .with_streams(streams)
                .unwrap();
            let mut gpu = Gpu::new(spec);
            gpu.check_enable();
            let mut out = host.clone();
            plan.execute(&mut gpu, &mut out, Direction::Forward)
                .unwrap();
            let rep = gpu.check_report().unwrap();
            assert!(
                rep.clean(),
                "out-of-core {n}^3 x{slabs} slabs, {streams} stream(s): {rep}"
            );
            assert!(rep.ops_tracked > rep.kernels_checked, "copies tracked too");
            let err = cpu_error(n, &host, &out, Direction::Forward);
            assert!(err < 1e-4, "{n}^3, {streams} stream(s): rel err {err}");
        }
    }
}

/// Checked multi-GPU runs on 1 and 2 cards: merged report is clean and the
/// sharded transform matches the CPU reference.
#[test]
fn checked_multi_gpu_matches_cpu() {
    let mut rng = SplitMix64::new(0xD1FF_0003);
    for &n in &[16usize, 32, 64] {
        let host = arb_volume(&mut rng, n * n * n);
        for gpus in [1usize, 2] {
            let mut plan = MultiGpuFft3d::new(&DeviceSpec::gts8800(), gpus, n, n, n).unwrap();
            plan.check_enable();
            let (out, _) = plan.transform(&host, Direction::Forward).unwrap();
            let rep = plan.check_report().unwrap();
            assert!(rep.clean(), "multi-gpu {n}^3 on {gpus}: {rep}");
            assert!(rep.kernels_checked > 0);
            let err = cpu_error(n, &host, &out, Direction::Forward);
            assert!(err < 1e-4, "{n}^3 on {gpus} card(s): rel err {err}");
        }
    }
}

/// A checked inverse round-trip through the facade recovers the input —
/// the checker's zero-fill suppression must never leak into clean runs.
#[test]
fn checked_roundtrip_recovers_input() {
    let mut rng = SplitMix64::new(0xD1FF_0004);
    let n = 32usize;
    let host = arb_volume(&mut rng, n * n * n);
    let mut gpu = Gpu::new(DeviceSpec::gtx8800());
    let plan = Fft3d::builder(n, n, n)
        .checked(true)
        .build(&mut gpu)
        .unwrap();
    let (spec_out, _) = plan.transform(&mut gpu, &host, Direction::Forward).unwrap();
    let (back, _) = plan
        .transform(&mut gpu, &spec_out, Direction::Inverse)
        .unwrap();
    let rep = gpu.check_report().unwrap();
    assert!(rep.clean(), "{rep}");
    let s = 1.0 / (n * n * n) as f32;
    for (g, w) in back.iter().zip(&host) {
        assert!((g.scale(s) - *w).abs() < 1e-4);
    }
}
