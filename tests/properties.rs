//! Property-based tests (proptest) on the core invariants, spanning crates.

use nukada_fft_repro::prelude::*;
use proptest::prelude::*;

fn arb_complex() -> impl Strategy<Value = Complex32> {
    (-1.0f32..1.0, -1.0f32..1.0).prop_map(|(re, im)| c32(re, im))
}

fn arb_volume(len: usize) -> impl Strategy<Value = Vec<Complex32>> {
    proptest::collection::vec(arb_complex(), len)
}

/// Small power-of-two dims (kept tiny: each case runs a full simulated GPU
/// transform).
fn arb_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    let d = prop_oneof![Just(4usize), Just(8), Just(16)];
    (d.clone(), d.clone(), d)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Forward → inverse on the simulated GPU returns the input (scaled).
    #[test]
    fn gpu_roundtrip_recovers_input(
        (nx, ny, nz) in arb_dims(),
        seed in any::<u64>(),
    ) {
        let vol = nx * ny * nz;
        let host: Vec<Complex32> = (0..vol)
            .map(|i| {
                let t = (i as f32 + seed as f32 % 97.0) * 0.37;
                c32(t.sin(), (t * 1.7).cos())
            })
            .collect();

        let mut gpu = Gpu::new(DeviceSpec::gts8800());
        let plan = FiveStepFft::new(&mut gpu, nx, ny, nz);
        let (v, w) = plan.alloc_buffers(&mut gpu).unwrap();
        plan.upload(&mut gpu, v, &host);
        plan.execute(&mut gpu, v, w, Direction::Forward);
        let inv = plan.inverse_chained(&mut gpu);
        inv.execute(&mut gpu, v, w, Direction::Inverse);

        let mut packed = vec![Complex32::ZERO; vol];
        gpu.mem().download(v, 0, &mut packed);
        let l = plan.layout();
        let s = 1.0 / vol as f32;
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let got = packed[l.input_index(x, y, z)].scale(s);
                    let want = host[x + nx * (y + ny * z)];
                    prop_assert!((got - want).abs() < 1e-4,
                        "({x},{y},{z}): {got} vs {want}");
                }
            }
        }
    }

    /// The GPU transform is linear: F(a·x + y) = a·F(x) + F(y).
    #[test]
    fn gpu_transform_is_linear(
        a in arb_volume(512),
        b in arb_volume(512),
        scale in -2.0f32..2.0,
    ) {
        let n = 8usize;
        let run = |data: &[Complex32]| {
            let mut gpu = Gpu::new(DeviceSpec::gt8800());
            let plan = FiveStepFft::new(&mut gpu, n, n, n);
            let (v, w) = plan.alloc_buffers(&mut gpu).unwrap();
            plan.upload(&mut gpu, v, data);
            plan.execute(&mut gpu, v, w, Direction::Forward);
            plan.download(&gpu, v)
        };
        let combo: Vec<Complex32> =
            a.iter().zip(&b).map(|(x, y)| x.scale(scale) + *y).collect();
        let fa = run(&a);
        let fb = run(&b);
        let fc = run(&combo);
        for ((za, zb), zc) in fa.iter().zip(&fb).zip(&fc) {
            let want = za.scale(scale) + *zb;
            prop_assert!((*zc - want).abs() < 1e-2, "{zc} vs {want}");
        }
    }

    /// CPU and GPU agree on arbitrary data.
    #[test]
    fn cpu_gpu_agree(data in arb_volume(4096)) {
        let n = 16usize;
        let mut cpu = data.clone();
        CpuFft3d::new(n, n, n).execute(&mut cpu, Direction::Forward);

        let mut gpu = Gpu::new(DeviceSpec::gtx8800());
        let plan = FiveStepFft::new(&mut gpu, n, n, n);
        let (v, w) = plan.alloc_buffers(&mut gpu).unwrap();
        plan.upload(&mut gpu, v, &data);
        plan.execute(&mut gpu, v, w, Direction::Forward);
        let gpu_out = plan.download(&gpu, v);

        let err = fft_math::error::rel_l2_error_f32(&gpu_out, &cpu);
        prop_assert!(err < 1e-5, "rel err {err}");
    }

    /// A circular shift of the input only changes spectrum phases, never
    /// magnitudes (the shift theorem).
    #[test]
    fn shift_theorem_on_gpu(data in arb_volume(512), sx in 0usize..8, sy in 0usize..8) {
        let n = 8usize;
        let mut shifted = vec![Complex32::ZERO; data.len()];
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    shifted[(x + sx) % n + n * (((y + sy) % n) + n * z)] =
                        data[x + n * (y + n * z)];
                }
            }
        }
        let run = |d: &[Complex32]| {
            let mut gpu = Gpu::new(DeviceSpec::gts8800());
            let plan = FiveStepFft::new(&mut gpu, n, n, n);
            let (v, w) = plan.alloc_buffers(&mut gpu).unwrap();
            plan.upload(&mut gpu, v, d);
            plan.execute(&mut gpu, v, w, Direction::Forward);
            plan.download(&gpu, v)
        };
        let f0 = run(&data);
        let f1 = run(&shifted);
        for (a, b) in f0.iter().zip(&f1) {
            prop_assert!((a.abs() - b.abs()).abs() < 1e-3 + 1e-3 * a.abs(),
                "|{a}| vs |{b}|");
        }
    }
}
