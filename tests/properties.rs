//! Property-style tests on the core invariants, spanning crates.
//!
//! Formerly `proptest`-driven (12 cases per property); the workspace builds
//! against an empty cargo registry, so the same properties now run over a
//! deterministic SplitMix64 case sweep.

use fft_math::rng::SplitMix64;
use nukada_fft_repro::prelude::*;

fn arb_volume(rng: &mut SplitMix64, len: usize) -> Vec<Complex32> {
    (0..len)
        .map(|_| c32(rng.uniform_f32(-1.0, 1.0), rng.uniform_f32(-1.0, 1.0)))
        .collect()
}

/// Small power-of-two dims (kept tiny: each case runs a full simulated GPU
/// transform).
fn arb_dim(rng: &mut SplitMix64) -> usize {
    [4usize, 8, 16][rng.below(3)]
}

/// Forward → inverse on the simulated GPU returns the input (scaled).
#[test]
fn gpu_roundtrip_recovers_input() {
    let mut rng = SplitMix64::new(0x70D0_0001);
    for _ in 0..12 {
        let (nx, ny, nz) = (arb_dim(&mut rng), arb_dim(&mut rng), arb_dim(&mut rng));
        let seed = rng.next_u64();
        let vol = nx * ny * nz;
        let host: Vec<Complex32> = (0..vol)
            .map(|i| {
                let t = (i as f32 + seed as f32 % 97.0) * 0.37;
                c32(t.sin(), (t * 1.7).cos())
            })
            .collect();

        let mut gpu = Gpu::new(DeviceSpec::gts8800());
        let plan = FiveStepFft::new(&mut gpu, nx, ny, nz);
        let (v, w) = plan.alloc_buffers(&mut gpu).unwrap();
        plan.upload(&mut gpu, v, &host);
        plan.execute(&mut gpu, v, w, Direction::Forward);
        let inv = plan.inverse_chained(&mut gpu);
        inv.execute(&mut gpu, v, w, Direction::Inverse);

        let mut packed = vec![Complex32::ZERO; vol];
        gpu.mem().download(v, 0, &mut packed);
        let l = plan.layout();
        let s = 1.0 / vol as f32;
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let got = packed[l.input_index(x, y, z)].scale(s);
                    let want = host[x + nx * (y + ny * z)];
                    assert!((got - want).abs() < 1e-4, "({x},{y},{z}): {got} vs {want}");
                }
            }
        }
    }
}

/// The GPU transform is linear: F(a·x + y) = a·F(x) + F(y).
#[test]
fn gpu_transform_is_linear() {
    let mut rng = SplitMix64::new(0x70D0_0002);
    for _ in 0..12 {
        let a = arb_volume(&mut rng, 512);
        let b = arb_volume(&mut rng, 512);
        let scale = rng.uniform_f32(-2.0, 2.0);
        let n = 8usize;
        let run = |data: &[Complex32]| {
            let mut gpu = Gpu::new(DeviceSpec::gt8800());
            let plan = FiveStepFft::new(&mut gpu, n, n, n);
            let (v, w) = plan.alloc_buffers(&mut gpu).unwrap();
            plan.upload(&mut gpu, v, data);
            plan.execute(&mut gpu, v, w, Direction::Forward);
            plan.download(&gpu, v)
        };
        let combo: Vec<Complex32> = a.iter().zip(&b).map(|(x, y)| x.scale(scale) + *y).collect();
        let fa = run(&a);
        let fb = run(&b);
        let fc = run(&combo);
        for ((za, zb), zc) in fa.iter().zip(&fb).zip(&fc) {
            let want = za.scale(scale) + *zb;
            assert!((*zc - want).abs() < 1e-2, "{zc} vs {want}");
        }
    }
}

/// CPU and GPU agree on arbitrary data.
#[test]
fn cpu_gpu_agree() {
    let mut rng = SplitMix64::new(0x70D0_0003);
    for _ in 0..12 {
        let data = arb_volume(&mut rng, 4096);
        let n = 16usize;
        let mut cpu = data.clone();
        CpuFft3d::new(n, n, n).execute(&mut cpu, Direction::Forward);

        let mut gpu = Gpu::new(DeviceSpec::gtx8800());
        let plan = FiveStepFft::new(&mut gpu, n, n, n);
        let (v, w) = plan.alloc_buffers(&mut gpu).unwrap();
        plan.upload(&mut gpu, v, &data);
        plan.execute(&mut gpu, v, w, Direction::Forward);
        let gpu_out = plan.download(&gpu, v);

        let err = fft_math::error::rel_l2_error_f32(&gpu_out, &cpu);
        assert!(err < 1e-5, "rel err {err}");
    }
}

/// A circular shift of the input only changes spectrum phases, never
/// magnitudes (the shift theorem).
#[test]
fn shift_theorem_on_gpu() {
    let mut rng = SplitMix64::new(0x70D0_0004);
    for _ in 0..12 {
        let data = arb_volume(&mut rng, 512);
        let sx = rng.below(8);
        let sy = rng.below(8);
        let n = 8usize;
        let mut shifted = vec![Complex32::ZERO; data.len()];
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    shifted[(x + sx) % n + n * (((y + sy) % n) + n * z)] =
                        data[x + n * (y + n * z)];
                }
            }
        }
        let run = |d: &[Complex32]| {
            let mut gpu = Gpu::new(DeviceSpec::gts8800());
            let plan = FiveStepFft::new(&mut gpu, n, n, n);
            let (v, w) = plan.alloc_buffers(&mut gpu).unwrap();
            plan.upload(&mut gpu, v, d);
            plan.execute(&mut gpu, v, w, Direction::Forward);
            plan.download(&gpu, v)
        };
        let f0 = run(&data);
        let f1 = run(&shifted);
        for (a, b) in f0.iter().zip(&f1) {
            assert!(
                (a.abs() - b.abs()).abs() < 1e-3 + 1e-3 * a.abs(),
                "|{a}| vs |{b}|"
            );
        }
    }
}
