//! Cross-crate integration: every 3-D FFT implementation in the workspace —
//! five-step GPU, six-step GPU, CUFFT-like GPU, out-of-core GPU, and the CPU
//! baseline — must compute the same transform.

use fft_math::rng::SplitMix64;
use nukada_fft_repro::prelude::*;

fn random_volume(n: usize, seed: u64) -> Vec<Complex32> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| c32(rng.uniform_f32(-1.0, 1.0), rng.uniform_f32(-1.0, 1.0)))
        .collect()
}

fn max_abs_diff(a: &[Complex32], b: &[Complex32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f32::max)
}

#[test]
fn all_five_implementations_agree_at_32_cubed() {
    let n = 32usize;
    let host = random_volume(n * n * n, 1001);
    let scale = (n * n * n) as f32;

    // CPU reference.
    let mut cpu = host.clone();
    CpuFft3d::new(n, n, n).execute(&mut cpu, Direction::Forward);

    // Five-step.
    let mut gpu = Gpu::new(DeviceSpec::gts8800());
    let five = FiveStepFft::new(&mut gpu, n, n, n);
    let (v, w) = five.alloc_buffers(&mut gpu).unwrap();
    five.upload(&mut gpu, v, &host);
    five.execute(&mut gpu, v, w, Direction::Forward);
    let r5 = five.download(&gpu, v);

    // Six-step.
    let mut gpu = Gpu::new(DeviceSpec::gt8800());
    let six = SixStepFft::new(&mut gpu, n, n, n);
    let (v, w) = six.alloc_buffers(&mut gpu).unwrap();
    six.upload(&mut gpu, v, &host);
    six.execute(&mut gpu, v, w, Direction::Forward);
    let r6 = six.download(&gpu, v);

    // CUFFT-like.
    let mut gpu = Gpu::new(DeviceSpec::gtx8800());
    let cf = bifft::CufftLikeFft::new(&mut gpu, n, n, n);
    let (v, w) = cf.alloc_buffers(&mut gpu).unwrap();
    gpu.mem_mut().upload(v, 0, &host);
    cf.execute(&mut gpu, v, w, Direction::Forward);
    let mut rc = vec![Complex32::ZERO; n * n * n];
    gpu.mem_mut().download(v, 0, &mut rc);

    // Out-of-core (2 slabs).
    let spec = DeviceSpec::gt8800();
    let ooc = OutOfCoreFft::new(&spec, n, n, n, 2).unwrap();
    let mut gpu = Gpu::new(spec);
    let mut ro = host.clone();
    ooc.execute(&mut gpu, &mut ro, Direction::Forward).unwrap();

    // All against the CPU reference, tolerance scaled by volume RMS.
    let tol = 2e-3 * scale.sqrt() / 32.0;
    for (name, result) in [
        ("five-step", &r5),
        ("six-step", &r6),
        ("cufft-like", &rc),
        ("out-of-core", &ro),
    ] {
        let d = max_abs_diff(result, &cpu);
        assert!(
            d < tol,
            "{name} deviates from the CPU FFT by {d} (tol {tol})"
        );
    }
}

#[test]
fn rectangular_volumes_agree() {
    let (nx, ny, nz) = (16usize, 32, 64);
    let host = random_volume(nx * ny * nz, 1002);

    let mut cpu = host.clone();
    CpuFft3d::new(nx, ny, nz).execute(&mut cpu, Direction::Forward);

    let mut gpu = Gpu::new(DeviceSpec::gtx8800());
    let five = FiveStepFft::new(&mut gpu, nx, ny, nz);
    let (v, w) = five.alloc_buffers(&mut gpu).unwrap();
    five.upload(&mut gpu, v, &host);
    five.execute(&mut gpu, v, w, Direction::Forward);
    let r5 = five.download(&gpu, v);

    assert!(
        max_abs_diff(&r5, &cpu) < 0.05,
        "rectangular five-step deviates"
    );
}

#[test]
fn inverse_composes_across_implementations() {
    // Forward on the GPU (five-step), inverse on the CPU: must return the
    // original (the strongest cross-implementation convention check).
    let n = 16usize;
    let host = random_volume(n * n * n, 1003);

    let mut gpu = Gpu::new(DeviceSpec::gts8800());
    let five = FiveStepFft::new(&mut gpu, n, n, n);
    let (v, w) = five.alloc_buffers(&mut gpu).unwrap();
    five.upload(&mut gpu, v, &host);
    five.execute(&mut gpu, v, w, Direction::Forward);
    let mut spectrum = five.download(&gpu, v);

    CpuFft3d::new(n, n, n).execute(&mut spectrum, Direction::Inverse);
    let s = 1.0 / (n * n * n) as f32;
    for (got, want) in spectrum.iter().zip(&host) {
        assert!((got.scale(s) - *want).abs() < 1e-4);
    }
}

#[test]
fn gpu_algorithms_preserve_energy() {
    // Parseval across the device path: energy in == energy out / N.
    let n = 32usize;
    let host = random_volume(n * n * n, 1004);
    let e_in: f64 = host.iter().map(|z| z.norm_sqr() as f64).sum();

    let mut gpu = Gpu::new(DeviceSpec::gt8800());
    let five = FiveStepFft::new(&mut gpu, n, n, n);
    let (v, w) = five.alloc_buffers(&mut gpu).unwrap();
    five.upload(&mut gpu, v, &host);
    five.execute(&mut gpu, v, w, Direction::Forward);
    let spec = five.download(&gpu, v);
    let e_out: f64 = spec.iter().map(|z| z.norm_sqr() as f64).sum::<f64>() / (n * n * n) as f64;
    assert!((e_in - e_out).abs() < 1e-3 * e_in, "{e_in} vs {e_out}");
}
