//! Cross-crate acceptance: the slab-sharded multi-GPU transform must match
//! the CPU baseline and round-trip forward·inverse, for 2 and 4 simulated
//! cards.

use fft_math::rng::SplitMix64;
use nukada_fft_repro::prelude::*;

fn random_volume(len: usize, seed: u64) -> Vec<Complex32> {
    let mut rng = SplitMix64::new(seed);
    (0..len)
        .map(|_| c32(rng.uniform_f32(-1.0, 1.0), rng.uniform_f32(-1.0, 1.0)))
        .collect()
}

fn rel_l2(got: &[Complex32], want: &[Complex32]) -> f64 {
    fft_math::error::rel_l2_error_f32(got, want)
}

fn roundtrip_vs_cpu(n_gpus: usize, n: usize, seed: u64) {
    let host = random_volume(n * n * n, seed);

    let mut plan = MultiGpuFft3d::new(&DeviceSpec::gt8800(), n_gpus, n, n, n).unwrap();
    let (spectrum, rep) = plan.transform(&host, Direction::Forward).unwrap();

    // Forward result matches the CPU baseline.
    let mut cpu = host.clone();
    CpuFft3d::new(n, n, n).execute(&mut cpu, Direction::Forward);
    let err = rel_l2(&spectrum, &cpu);
    assert!(err < 1e-5, "{n_gpus} cards forward: rel L2 {err:.2e}");
    assert_eq!(rep.n_gpus, n_gpus);

    // Inverse of the spectrum recovers the input (unnormalized transform:
    // scale by 1/volume).
    let (back, _) = plan.transform(&spectrum, Direction::Inverse).unwrap();
    let scale = 1.0 / (n * n * n) as f32;
    let back: Vec<Complex32> = back.iter().map(|z| z.scale(scale)).collect();
    let err = rel_l2(&back, &host);
    assert!(err < 1e-5, "{n_gpus} cards roundtrip: rel L2 {err:.2e}");
}

#[test]
fn two_cards_roundtrip_against_cpu_fft() {
    roundtrip_vs_cpu(2, 32, 0x2CA2D5);
}

#[test]
fn four_cards_roundtrip_against_cpu_fft() {
    roundtrip_vs_cpu(4, 32, 0x4CA2D5);
}
