//! End-to-end scenarios spanning the whole stack: capacity limits forcing
//! the out-of-core path, the docking pipeline, and the performance-model
//! narratives the paper's conclusions rest on.

use fft_apps::docking::{cube_rotations, dock, Molecule};
use gpu_sim::pcie::{transfer_time, Dir};
use nukada_fft_repro::prelude::*;

#[test]
fn device_capacity_forces_out_of_core_at_512_cubed() {
    // 512³ out-of-place needs 2 GiB; every card refuses, exactly the §3.3
    // situation.
    let mut gpu = Gpu::new(DeviceSpec::gts8800());
    let elems = 1usize << 27; // 512³
    let first = gpu.mem_mut().alloc(elems);
    assert!(
        first.is_err(),
        "a single 1 GiB buffer must not fit in 512 MB"
    );

    // The out-of-core plan with 8 slabs fits (two 134 MB slab buffers).
    let spec = DeviceSpec::gts8800();
    let plan = OutOfCoreFft::new(&spec, 512, 512, 512, 8).unwrap();
    assert_eq!(plan.slab_z(), 64);
    assert_eq!(plan.slabs(), 8);
}

#[test]
fn in_core_256_cubed_fits_on_every_card() {
    for spec in DeviceSpec::all_cards() {
        let mut gpu = Gpu::new(spec);
        let plan = FiveStepFft::new(&mut gpu, 256, 256, 256);
        let bufs = plan.alloc_buffers(&mut gpu);
        assert!(bufs.is_ok(), "{}: 256³ out-of-place must fit", spec.name);
    }
}

#[test]
fn docking_pipeline_end_to_end() {
    let dims = (16usize, 16, 16);
    let receptor = Molecule::synthetic_globule(15, 4.0, 7001);
    let ligand = Molecule::synthetic_globule(4, 1.8, 7002);
    let mut gpu = Gpu::new(DeviceSpec::gt8800());
    let rots = cube_rotations();
    let result = dock(&mut gpu, &receptor, &ligand, dims, &rots[..6]);

    // The result is inside the grid and the sweep stayed on the card.
    assert!(result.translation.0 < 16 && result.translation.1 < 16 && result.translation.2 < 16);
    assert!(result.rotation < 6);
    assert!(result.device_s > 0.0);
    // On-card: receptor + 6 ligands up, 6 scores down.
    let vol_bytes = (16 * 16 * 16 * 8) as u64;
    assert_eq!(result.bytes_on_card, 7 * vol_bytes + 6 * 8);
}

#[test]
fn paper_narrative_transfer_overhead_demotes_the_gtx() {
    // §4.4: on-board the GTX wins; end-to-end over PCIe 1.1 it loses to
    // both PCIe 2.0 cards. Run the *functional* pipeline at 64³ and combine
    // with the modelled transfers at the paper's 256³ scale.
    let n = 256usize;
    let bytes = (n * n * n * 8) as u64;
    let mut totals = Vec::new();
    let mut on_board = Vec::new();
    for spec in DeviceSpec::all_cards() {
        let fft: f64 = FiveStepFft::estimate(&spec, n, n, n)
            .iter()
            .map(|(_, t)| t.time_s)
            .sum();
        let t = transfer_time(spec.pcie, Dir::H2D, bytes, 1).time_s
            + fft
            + transfer_time(spec.pcie, Dir::D2H, bytes, 1).time_s;
        on_board.push(fft);
        totals.push(t);
    }
    assert!(
        on_board[2] < on_board[0].min(on_board[1]),
        "GTX fastest on-board"
    );
    assert!(
        totals[2] > totals[0].max(totals[1]),
        "GTX slowest end-to-end"
    );
}

#[test]
fn power_efficiency_story_holds() {
    // §4.7: ~4x better GFLOPS/W on the GPUs than on the CPU.
    let cpu = gpu_sim::power::cpu_system();
    let cpu_gf = cpu_fft::fftw_model_gflops(&cpu_fft::CpuSpec::phenom_9500(), 256, 256, 256);
    let cpu_eff = cpu.gflops_per_watt(cpu_gf);
    for spec in DeviceSpec::all_cards() {
        let est: f64 = FiveStepFft::estimate(&spec, 256, 256, 256)
            .iter()
            .map(|(_, t)| t.time_s)
            .sum();
        let gf = fft_math::flops::nominal_flops_3d(256, 256, 256) as f64 / est / 1e9;
        let eff = gpu_sim::power::gpu_system(&spec).gflops_per_watt(gf);
        let ratio = eff / cpu_eff;
        assert!(
            (3.0..6.0).contains(&ratio),
            "{}: GFLOPS/W ratio {ratio:.2} out of the paper's ~4x band",
            spec.name
        );
    }
}

#[test]
fn correlator_reuses_resident_spectrum() {
    // Repeated correlations against one receptor must not re-upload it.
    let dims = (16usize, 16, 16);
    let mut gpu = Gpu::new(DeviceSpec::gts8800());
    let mut corr = GpuCorrelator::new(&mut gpu, dims.0, dims.1, dims.2);
    let a = vec![c32(1.0, 0.0); corr.volume()];
    let first = corr.load_a(&mut gpu, &a);
    assert_eq!(first.h2d_bytes, (corr.volume() * 8) as u64);
    let b = vec![c32(0.5, 0.0); corr.volume()];
    for _ in 0..3 {
        let (_, _, rep) = corr.correlate_argmax_re(&mut gpu, &b);
        assert_eq!(
            rep.h2d_bytes,
            (corr.volume() * 8) as u64,
            "only the ligand goes up"
        );
        assert_eq!(rep.d2h_bytes, 8, "only the score comes down");
    }
}
