#!/usr/bin/env bash
# Tier-1 gate: exactly what CI runs. Keep this in sync with README.md.
# --offline: the build environment has no registry access; all deps must
# already be vendored or cached.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release --offline
cargo test --workspace -q --offline
cargo fmt --all -- --check
# Keep the public API clippy-clean and documented: the workspace crates carry
# #![warn(missing_docs)]; -D warnings promotes that (and deprecated calls
# surviving a migration) to errors here.
cargo clippy --workspace --all-targets --offline -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline
