#!/usr/bin/env bash
# Tier-1 gate: exactly what CI runs. Keep this in sync with README.md.
# --offline: the build environment has no registry access; all deps must
# already be vendored or cached.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release --offline
cargo test --workspace -q --offline
cargo fmt --all -- --check
