#!/usr/bin/env bash
# Tier-1 gate: exactly what CI runs. Keep this in sync with README.md.
# --offline: the build environment has no registry access; all deps must
# already be vendored or cached.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release --offline
cargo build --workspace --examples --offline
cargo test --workspace -q --offline
cargo fmt --all -- --check
# Keep the public API clippy-clean and documented: the workspace crates carry
# #![warn(missing_docs)]; -D warnings promotes that (and deprecated calls
# surviving a migration) to errors here.
cargo clippy --workspace --all-targets --offline -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline
# Benchmark-regression gate: the quick grid (64³, all algorithms × cards)
# against the committed baseline. All figures are modelled/simulated, so
# the comparison is exact and machine-independent; this also prints the
# per-kernel roofline + pattern-audit tables. Since bench schema v5 the
# gate also covers the latency-attribution verdicts (conservation, time
# shares, tail driver); since v6 it also gates the multi-tenant fairness
# index (absolute drift + the 0.95 floor); since v7 it also gates the
# pipeline section (stage throughput, resident-hit fraction, PCIe bytes
# saved vs a staged replay). Refresh the baseline with
#   cargo run --release --bin bench -- --quick --out crates/bench/baselines/bench-quick.json
cargo run --release -p fft-bench --bin bifft-bench --offline -- \
    --quick --check crates/bench/baselines/bench-quick.json
# Checked quick grid: the same cells under the cuda-memcheck/racecheck-style
# validation layer (DESIGN.md §11). Purely functional — timings are
# unaffected — and fails on any OOB/uninit/use-after-free or stream-hazard
# diagnostic anywhere in the grid.
cargo run --release -p fft-bench --bin bifft-bench --offline -- \
    --quick --check-hazards --out /dev/null
# Serving smoke: a small deterministic fft-serve load run with every card
# under the same validation layer. Exits non-zero on any hazard diagnostic
# anywhere in the serving stack (DESIGN.md §12). The run also writes its
# telemetry document (DESIGN.md §13), which the follow-up invocation
# re-reads and validates: schema must parse and the recorded SLO verdict
# must be ok, so a latency-tail or error-budget violation fails CI here.
mkdir -p target
cargo run --release -p fft-serve --bin fft-serve --offline -- \
    --smoke --check-hazards --metrics-out target/ci-metrics.json \
    --attr-out target/ci-attr.json --attr-audit
cargo run --release -p fft-serve --bin fft-serve --offline -- \
    --validate-metrics target/ci-metrics.json
# Attribution gate (DESIGN.md §15): --attr-audit above already failed the
# smoke run if any completed request's time ledger did not balance
# (category sum == e2e latency within 1e-9 s). On top of that, a second
# same-seed smoke run must export a byte-identical attribution document —
# the ledger is part of the deterministic surface — and fft-prof must
# accept the document (show exits non-zero on a failed conservation
# audit; the self-diff proves the diff path parses what we ship).
cargo run --release -p fft-serve --bin fft-serve --offline -- \
    --smoke --attr-out target/ci-attr-repeat.json --attr-audit
cmp target/ci-attr.json target/ci-attr-repeat.json \
    || { echo "ci: same-seed attribution documents diverged" >&2; exit 1; }
cargo run --release -p fft-serve --bin fft-prof --offline -- \
    show target/ci-attr.json
cargo run --release -p fft-serve --bin fft-prof --offline -- \
    diff target/ci-attr.json target/ci-attr-repeat.json
# Multi-tenant smoke (DESIGN.md §16): the same smoke workload spread over
# 3 weighted-share tenants with lane preemption enabled, still under the
# hazard validator and the conservation audit (which now carries the
# `preempted` category). Two same-seed runs must render byte-identical
# reports — QoS arbitration is part of the deterministic surface.
cargo run --release -p fft-serve --bin fft-serve --offline -- \
    --smoke --tenants 3 --preempt --check-hazards --attr-audit \
    --json target/ci-qos-report.json
cargo run --release -p fft-serve --bin fft-serve --offline -- \
    --smoke --tenants 3 --preempt --check-hazards --attr-audit \
    --json target/ci-qos-repeat.json
cmp target/ci-qos-report.json target/ci-qos-repeat.json \
    || { echo "ci: same-seed multi-tenant reports diverged" >&2; exit 1; }
# Pipeline smoke (DESIGN.md §17): the --workload pipeline mix (roughly a
# third of draws are convolution/docking DAGs with device-resident
# intermediates) under the hazard validator and the conservation audit,
# which carries the `resident` category for pipeline requests. The apps
# crate's served-pipeline parity tests (bit-for-bit against the direct
# correlator, strictly fewer PCIe bytes than staged submission) run
# explicitly here so a pipeline regression names this gate.
cargo test --release -p fft-apps -q --offline
cargo run --release -p fft-serve --bin fft-serve --offline -- \
    --smoke --workload pipeline --check-hazards --attr-audit
# Gateway smoke: boot fft-gate on an ephemeral port (the bound port comes
# back through --port-file), replay a seeded workload over 8 concurrent TCP
# clients, and require (a) the hazard validator to come back clean over the
# wire, (b) the exported metrics document to parse and meet its SLOs, and
# (c) the wire-fetched report to be byte-identical to an in-process run of
# the same schedule (DESIGN.md §14). --shutdown stops the server so `wait`
# collects its exit code; a crashed or wedged gateway fails the gate.
rm -f target/ci-gate-port
cargo run --release -p fft-gate --bin fft-gate --offline -- \
    serve --addr 127.0.0.1:0 --check-hazards \
    --port-file target/ci-gate-port --metrics-out target/ci-gate-metrics.json &
GATE_PID=$!
for _ in $(seq 1 100); do
    [ -s target/ci-gate-port ] && break
    kill -0 "$GATE_PID" 2>/dev/null || { echo "ci: fft-gate died before binding" >&2; exit 1; }
    sleep 0.1
done
[ -s target/ci-gate-port ] || { echo "ci: fft-gate never wrote its port" >&2; exit 1; }
GATE_PORT=$(cat target/ci-gate-port)
cargo run --release -p fft-gate --bin fft-gate --offline -- \
    bench --addr "127.0.0.1:${GATE_PORT}" --clients 8 --check-hazards \
    --validate-metrics --compare-local --shutdown
wait "$GATE_PID"
cargo run --release -p fft-serve --bin fft-serve --offline -- \
    --validate-metrics target/ci-gate-metrics.json
