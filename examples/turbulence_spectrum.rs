//! Turbulence-style spectral analysis (the paper's §1 HPC motivation).
//!
//! Synthesises a periodic field with a prescribed power-law spectrum via the
//! inverse GPU transform, recovers `E(k)` with the forward transform, fits
//! the inertial-range slope, and solves a Poisson problem spectrally.
//!
//! ```text
//! cargo run --release --example turbulence_spectrum
//! ```

use fft_apps::spectral::{
    energy_spectrum, fitted_slope, poisson_solve, synthesize_power_law_field,
};
use nukada_fft_repro::prelude::*;

fn main() {
    let dims = (64usize, 64, 64);
    println!(
        "== Spectral analysis on a simulated 8800 GTX ({}³) ==\n",
        dims.0
    );
    let mut gpu = Gpu::new(DeviceSpec::gtx8800());
    let plan = FiveStepFft::new(&mut gpu, dims.0, dims.1, dims.2);

    // --- synthesis: |F(k)|² ~ k^-(11/3) gives shell E(k) ~ k^-5/3 ---
    let power_slope = 11.0 / 3.0;
    let field = synthesize_power_law_field(&mut gpu, &plan, dims, power_slope, 42);
    println!(
        "synthesised a Kolmogorov-like field ({} voxels)",
        field.len()
    );

    // --- analysis ---
    let (e, step5) = energy_spectrum(&mut gpu, &plan, dims, &field);
    println!("\nshell-averaged energy spectrum E(k):");
    println!("  k     E(k)");
    for (k, ek) in e.iter().enumerate().skip(1).take(16) {
        println!("  {k:>2}  {ek:>12.5e}");
    }
    let slope = fitted_slope(&e, 2, 12);
    println!("\nfitted inertial-range slope: {slope:.2} (target -5/3 = -1.67)");
    assert!((slope + 5.0 / 3.0).abs() < 0.4, "slope must be recovered");
    println!(
        "forward transform's X-pass: {:.3} ms at {:.1} GB/s on the device",
        step5.timing.time_s * 1e3,
        step5.timing.achieved_gbs
    );

    // --- spectral Poisson solve: rho = cos(k·x) ---
    let (kx, ky) = (3i64, 1i64);
    let mut rho = Vec::with_capacity(plan.volume());
    for z in 0..dims.2 {
        let _ = z;
        for y in 0..dims.1 {
            for x in 0..dims.0 {
                let ph = std::f32::consts::TAU
                    * (kx as f32 * x as f32 / dims.0 as f32 + ky as f32 * y as f32 / dims.1 as f32);
                rho.push(c32(ph.cos(), 0.0));
            }
        }
    }
    let phi = poisson_solve(&mut gpu, &plan, dims, &rho);
    let k2 = (kx * kx + ky * ky) as f32;
    let max_err = phi
        .iter()
        .zip(&rho)
        .map(|(p, r)| (p.re + r.re / k2).abs())
        .fold(0.0f32, f32::max);
    println!("\nPoisson solve ∇²φ = cos(k·x): max error vs analytic = {max_err:.2e}");
    assert!(max_err < 1e-3);
    println!("done.");
}
