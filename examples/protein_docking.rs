//! ZDock-style protein–protein docking on the simulated GPU (§4.4).
//!
//! Generates a synthetic receptor and ligand, sweeps the 24 cube rotations,
//! correlates every rotation against the *resident* receptor spectrum, and
//! reduces to the best pose on the card — demonstrating the on-card
//! confinement that §4.4 credits with eliminating the PCIe bottleneck.
//!
//! ```text
//! cargo run --release --example protein_docking
//! ```

use fft_apps::docking::{cube_rotations, dock, Molecule};
use nukada_fft_repro::prelude::*;

fn main() {
    let dims = (32usize, 32, 32);
    println!("== FFT-based rigid docking on a simulated 8800 GTS ==\n");

    // Synthetic structures (the paper used PDB complexes; see DESIGN.md §2
    // for the substitution argument).
    let receptor = Molecule::synthetic_globule(40, 6.0, 2024);
    let ligand = Molecule::synthetic_globule(10, 2.5, 4048);
    println!(
        "receptor: {} pseudo-atoms | ligand: {} pseudo-atoms | grid {}x{}x{}",
        receptor.atoms.len(),
        ligand.atoms.len(),
        dims.0,
        dims.1,
        dims.2
    );

    let rotations = cube_rotations();
    println!("rotation sweep: {} orientations\n", rotations.len());

    let mut gpu = Gpu::new(DeviceSpec::gts8800());
    let result = dock(&mut gpu, &receptor, &ligand, dims, &rotations);

    println!("best pose:");
    println!("  rotation index : {}", result.rotation);
    println!(
        "  translation    : ({}, {}, {}) voxels",
        result.translation.0, result.translation.1, result.translation.2
    );
    println!("  shape score    : {:.1}", result.score);
    println!(
        "\nmodelled device time for the whole sweep: {:.2} ms",
        result.device_s * 1e3
    );
    println!(
        "host<->device traffic: {:.1} MB on-card vs {:.1} MB for an offload-per-FFT design ({:.0}x saved)",
        result.bytes_on_card as f64 / 1e6,
        result.bytes_offload as f64 / 1e6,
        result.bytes_offload as f64 / result.bytes_on_card as f64
    );

    assert!(result.score > 0.0, "a contact-positive pose must exist");
    assert!(result.bytes_offload > result.bytes_on_card);
}
