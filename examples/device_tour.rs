//! A guided tour of the simulated CUDA device: the architectural mechanisms
//! (§2–§2.1 of the paper) that force the five-step algorithm's design.
//!
//! ```text
//! cargo run --release --example device_tour
//! ```

use fft_math::layout::{AccessPattern, View5};
use gpu_sim::bandwidth::run_stream_copy;
use gpu_sim::coalesce;
use gpu_sim::dram::{self, BandwidthQuery};
use gpu_sim::occupancy::{occupancy, KernelResources};
use nukada_fft_repro::prelude::*;

fn main() {
    println!("== Tour of the simulated G80/G92 CUDA device ==\n");

    // --- Table 1: the three evaluation cards ---
    println!("the cards (Table 1):");
    for card in DeviceSpec::all_cards() {
        println!(
            "  {:<9} {} x {} SPs @ {:.3} GHz = {:>3.0} GFLOPS | {:>5.1} GB/s | {:?}",
            card.name,
            card.sms,
            card.sps_per_sm,
            card.sp_clock_ghz,
            card.peak_gflops(),
            card.peak_bandwidth_gbs(),
            card.pcie,
        );
    }

    // --- coalescing rules (§2.1) ---
    println!("\ncoalescing rules (half-warp of 16 threads, 8-byte complex words):");
    let seq: Vec<u64> = (0..16).map(|k| 1024 + k * 8).collect();
    println!("  sequential+aligned: {:?}", coalesce::analyze(&seq, 8));
    let strided: Vec<u64> = (0..16).map(|k| 1024 + k * 2048).collect();
    let r = coalesce::analyze(&strided, 8);
    println!(
        "  stride-2KB        : {} transactions, {:.0}% bus efficiency",
        r.transactions,
        r.efficiency() * 100.0
    );

    // --- stream-count decay (§2.1) ---
    println!("\nstream-count bandwidth decay on the GTX (paper: 71.7 -> 30.7 GB/s):");
    let mut gpu = Gpu::new(DeviceSpec::gtx8800());
    let n = 1 << 16;
    let src = gpu.mem_mut().alloc(n).unwrap();
    let dst = gpu.mem_mut().alloc(n).unwrap();
    for streams in [1usize, 4, 16, 64, 256] {
        let rep = run_stream_copy(&mut gpu, src, dst, n, streams);
        println!(
            "  {streams:>3} streams: {:>5.1} GB/s",
            rep.timing.modeled_bandwidth_gbs
        );
    }

    // --- pattern pairs (Tables 3-4) ---
    println!("\npattern-pair bandwidth on the GT (Table 3's corners):");
    let gt = DeviceSpec::gt8800();
    for (r, w) in [
        (AccessPattern::A, AccessPattern::A),
        (AccessPattern::D, AccessPattern::A),
        (AccessPattern::D, AccessPattern::D),
    ] {
        let bw = dram::effective_bandwidth_gbs(&gt, &BandwidthQuery::pattern_copy(r, w));
        println!("  {} x {}: {:>5.1} GB/s", r.label(), w.label(), bw);
    }
    let v = View5::new(256, [16, 16, 16, 16]);
    println!(
        "  (pattern D = stride {} elements in V(256,16,16,16,16))",
        v.pattern_stride(AccessPattern::D)
    );

    // --- occupancy (§3.1) ---
    println!("\noccupancy: why 16 points per thread and not 256:");
    for (what, res) in [
        ("16-pt kernel (52 regs)", KernelResources::coarse_16pt()),
        ("256-pt kernel (1024 regs)", KernelResources::coarse_256pt()),
        ("fine-grained step 5", KernelResources::fine_256pt()),
    ] {
        let occ = occupancy(&gt.arch, &res);
        println!(
            "  {:<26} -> {:>3} threads/SM (limited by {:?})",
            what, occ.threads_per_sm, occ.limit
        );
    }

    // --- what it adds up to ---
    println!("\nthe bottom line at 256³ (modelled):");
    for spec in DeviceSpec::all_cards() {
        let est = bifft::five_step::FiveStepFft::estimate(&spec, 256, 256, 256);
        let t: f64 = est.iter().map(|(_, k)| k.time_s).sum();
        println!(
            "  {:<9} five-step total {:>5.2} ms = {:>5.1} GFLOPS",
            spec.name,
            t * 1e3,
            fft_math::flops::nominal_flops_3d(256, 256, 256) as f64 / t / 1e9
        );
    }
}
