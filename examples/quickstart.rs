//! Quickstart: plan and run the bandwidth-intensive 3-D FFT on a simulated
//! GeForce 8800 GTS, verify it against the CPU reference, and print the
//! per-step breakdown the paper's Table 7 reports.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fft_math::rng::SplitMix64;
use nukada_fft_repro::prelude::*;

fn main() {
    let n = 64usize;
    println!("== Bandwidth-intensive 3-D FFT quickstart ({n}³) ==\n");

    // 1. Bring up the simulated device.
    let mut gpu = Gpu::new(DeviceSpec::gts8800());
    println!(
        "device: {} — {} SPs at {} GHz, {:.1} GB/s peak memory bandwidth\n",
        gpu.spec().name,
        gpu.spec().total_sps(),
        gpu.spec().sp_clock_ghz,
        gpu.spec().peak_bandwidth_gbs()
    );

    // 2. Plan the transform and allocate device buffers.
    let plan = FiveStepFft::new(&mut gpu, n, n, n);
    let (v, work) = plan
        .alloc_buffers(&mut gpu)
        .expect("volume fits on the card");

    // 3. Make a random complex volume and upload it (the plan packs the
    //    natural x-fastest layout into the paper's 5-D device layout).
    let mut rng = SplitMix64::new(7);
    let volume: Vec<Complex32> = (0..plan.volume())
        .map(|_| c32(rng.uniform_f32(-1.0, 1.0), rng.uniform_f32(-1.0, 1.0)))
        .collect();
    plan.upload(&mut gpu, v, &volume);

    // 4. Execute the five steps and fetch the spectrum.
    let report = plan.execute(&mut gpu, v, work, Direction::Forward);
    let spectrum = plan.download(&gpu, v);

    // 5. Verify against the CPU reference transform.
    let mut reference = volume.clone();
    CpuFft3d::new(n, n, n).execute(&mut reference, Direction::Forward);
    let err = fft_math::error::rel_l2_error_f32(&spectrum, &reference);
    println!("numerical check vs CPU FFT: relative L2 error = {err:.2e}");
    assert!(err < 1e-5, "GPU transform must match the CPU reference");

    // 6. The per-step breakdown (Table 7's shape).
    println!("\n{}", report.step_table());
    println!(
        "whole transform: {:.3} ms modelled on-device = {:.1} GFLOPS (paper convention)",
        report.total_time_s() * 1e3,
        report.gflops()
    );

    // 7. Round-trip: inverse transform chained on the card.
    let inverse = plan.inverse_chained(&mut gpu);
    inverse.execute(&mut gpu, v, work, Direction::Inverse);
    let mut back = vec![Complex32::ZERO; plan.volume()];
    gpu.mem().download(v, 0, &mut back);
    let l = plan.layout();
    let scale = 1.0 / plan.volume() as f32;
    let sample = l.input_index(5, 6, 7);
    let orig = volume[5 + n * (6 + n * 7)];
    assert!((back[sample].scale(scale) - orig).abs() < 1e-4);
    println!("\nforward → inverse round trip on the card: OK");
}
