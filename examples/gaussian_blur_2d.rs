//! 2-D spectral filtering with the batched 2-D plan API: Gaussian blur of a
//! stack of image planes by pointwise spectrum multiplication.
//!
//! Demonstrates the convolution theorem on the batched [`bifft::Fft2dGpu`]
//! plan — the 2-D shape a CUFFT-class library exposes, built from the same
//! fine-grained kernel and tiled transpose as the 3-D paths.
//!
//! ```text
//! cargo run --release --example gaussian_blur_2d
//! ```

use bifft::Fft2dGpu;
use nukada_fft_repro::prelude::*;

fn main() {
    let (nx, ny, planes) = (64usize, 64, 4);
    println!("== 2-D spectral Gaussian blur on a simulated 8800 GT ==");
    println!("{planes} planes of {nx}x{ny}\n");

    // A stack of test images: a bright box per plane, at shifting positions.
    let mut stack = vec![Complex32::ZERO; nx * ny * planes];
    for p in 0..planes {
        for y in 0..8 {
            for x in 0..8 {
                stack[(x + 8 * p) % nx + nx * ((y + 20) % ny) + nx * ny * p] = c32(1.0, 0.0);
            }
        }
    }
    let total_before: f32 = stack.iter().map(|z| z.re).sum();

    let mut gpu = Gpu::new(DeviceSpec::gt8800());
    let plan = Fft2dGpu::new(&mut gpu, nx, ny);
    let (v, w) = plan.alloc_buffers(&mut gpu, planes).unwrap();
    gpu.mem_mut().upload(v, 0, &stack);

    // Forward transform of every plane.
    let fwd = plan.execute(&mut gpu, v, w, planes, Direction::Forward);

    // Gaussian transfer function G(k) = exp(-|k|² σ²/2) applied on the host
    // for clarity (a production path would fuse a pointwise device kernel).
    let sigma = 3.0f32;
    let mut spec = vec![Complex32::ZERO; stack.len()];
    gpu.mem_mut().download(v, 0, &mut spec);
    for p in 0..planes {
        for y in 0..ny {
            for x in 0..nx {
                let kx = if x <= nx / 2 {
                    x as f32
                } else {
                    x as f32 - nx as f32
                };
                let ky = if y <= ny / 2 {
                    y as f32
                } else {
                    y as f32 - ny as f32
                };
                let k2 = (kx * kx + ky * ky) * (std::f32::consts::TAU / nx as f32).powi(2);
                let g = (-k2 * sigma * sigma / 2.0).exp();
                spec[x + nx * (y + ny * p)] = spec[x + nx * (y + ny * p)].scale(g);
            }
        }
    }
    gpu.mem_mut().upload(v, 0, &spec);

    // Inverse transform + normalisation.
    plan.execute(&mut gpu, v, w, planes, Direction::Inverse);
    let mut blurred = vec![Complex32::ZERO; stack.len()];
    gpu.mem_mut().download(v, 0, &mut blurred);
    let norm = 1.0 / (nx * ny) as f32;
    for z in blurred.iter_mut() {
        *z = z.scale(norm);
    }

    // Blur conserves total intensity (G(0) = 1) and reduces the peak.
    let total_after: f32 = blurred.iter().map(|z| z.re).sum();
    let peak_before = stack.iter().map(|z| z.re).fold(0.0f32, f32::max);
    let peak_after = blurred.iter().map(|z| z.re).fold(0.0f32, f32::max);
    println!("total intensity: {total_before:.2} -> {total_after:.2} (conserved)");
    println!("peak intensity:  {peak_before:.3} -> {peak_after:.3} (smoothed)");
    assert!((total_before - total_after).abs() < 1e-2 * total_before);
    assert!(peak_after < 0.9 * peak_before);

    println!(
        "\nforward pass breakdown ({} kernels, {:.3} ms modelled):",
        fwd.steps.len(),
        fwd.total_time_s() * 1e3
    );
    for s in &fwd.steps {
        println!(
            "  {:<10} {:>7.3} ms  {:>5.1} GB/s",
            s.name,
            s.timing.time_s * 1e3,
            s.timing.achieved_gbs
        );
    }
}
