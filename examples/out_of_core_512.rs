//! §3.3: FFTs larger than device memory, split over PCI-Express.
//!
//! Runs the two-stage out-of-core decomposition functionally at a small size
//! (verifying against the in-core result), then prints the modelled Table 12
//! row for the paper's 512³ case on all three cards.
//!
//! ```text
//! cargo run --release --example out_of_core_512
//! ```

use bifft::out_of_core::summarize;
use nukada_fft_repro::prelude::*;

fn main() {
    // --- functional demonstration at 32x32x128 (4 slabs) ---
    let (nx, ny, nz) = (32usize, 32, 128);
    println!("== Out-of-core 3-D FFT ==\n");
    println!("functional run at {nx}x{ny}x{nz} in 4 slabs on a simulated 8800 GT:");
    let spec = DeviceSpec::gt8800();
    let plan = OutOfCoreFft::new(&spec, nx, ny, nz, 4).unwrap();
    let mut gpu = Gpu::new(spec);

    let orig: Vec<Complex32> = (0..nx * ny * nz)
        .map(|i| c32((i as f32 * 0.017).sin(), (i as f32 * 0.029).cos()))
        .collect();
    let mut host = orig.clone();
    let rep = plan
        .execute(&mut gpu, &mut host, Direction::Forward)
        .unwrap();
    println!("{}", summarize(&rep, (nx, ny, nz)));

    // Verify against the in-core six-step on a card that fits the volume.
    let mut gpu2 = Gpu::new(DeviceSpec::gtx8800());
    let incore = SixStepFft::new(&mut gpu2, nx, ny, nz);
    let (v, w) = incore.alloc_buffers(&mut gpu2).unwrap();
    incore.upload(&mut gpu2, v, &orig);
    incore.execute(&mut gpu2, v, w, Direction::Forward);
    let want = incore.download(&gpu2, v);
    let err = fft_math::error::rel_l2_error_f32(&host, &want);
    println!("out-of-core vs in-core: relative L2 error = {err:.2e}");
    assert!(err < 1e-5);

    // --- the paper's 512³ case, modelled per card (Table 12) ---
    println!("\nTable 12 projection: 512³ as 8 slabs of 512x512x64");
    for spec in DeviceSpec::all_cards() {
        let plan = OutOfCoreFft::new(&spec, 512, 512, 512, 8).unwrap();
        let est = plan.estimate(&spec);
        println!(
            "{:<9} total {:.2} s = {:>5.1} GFLOPS (transfers {:.0}% of time)",
            spec.name,
            est.total_s(),
            est.gflops(),
            100.0 * (est.s1_h2d_s + est.s1_d2h_s + est.s2_h2d_s + est.s2_d2h_s) / est.total_s(),
        );
    }
    println!("\npaper: GT 1.32 s / 13.7 GFLOPS, GTS 1.24 s / 14.6, GTX 1.75 s / 10.3");
    println!("(the GTX loses end-to-end despite the fastest card: PCIe 1.1 — §4.4)");
}
