//! # nukada-fft-repro
//!
//! A from-scratch Rust reproduction of **Nukada, Ogata, Endo, Matsuoka:
//! "Bandwidth Intensive 3-D FFT kernel for GPUs using CUDA" (SC 2008)** —
//! the five-step, coalescing-first 3-D FFT that beat CUFFT 1.1 by 3x on
//! GeForce 8800-class hardware.
//!
//! No 2008 GPU is available, so the hardware is substituted by a functional
//! and analytic simulator of the G80/G92 CUDA architecture ([`gpu_sim`]);
//! kernels really execute (numerics are exact and tested against oracles)
//! while elapsed time comes from a memory-system model calibrated against
//! the paper's own microbenchmarks. See `DESIGN.md` for the substitution
//! argument and `EXPERIMENTS.md` for per-table results.
//!
//! ## Quick start
//!
//! ```
//! use nukada_fft_repro::prelude::*;
//!
//! // Bring up a simulated GeForce 8800 GTS and plan a 64³ transform.
//! let mut gpu = Gpu::new(DeviceSpec::gts8800());
//! let plan = FiveStepFft::new(&mut gpu, 64, 64, 64);
//! let (v, work) = plan.alloc_buffers(&mut gpu).unwrap();
//!
//! // Transform an impulse: the spectrum must be flat.
//! let mut volume = vec![Complex32::ZERO; plan.volume()];
//! volume[0] = Complex32::ONE;
//! plan.upload(&mut gpu, v, &volume);
//! let report = plan.execute(&mut gpu, v, work, Direction::Forward);
//! let spectrum = plan.download(&gpu, v);
//!
//! assert!((spectrum[12345] - Complex32::ONE).abs() < 1e-4);
//! assert_eq!(report.steps.len(), 5);
//! println!("{}", report.step_table());
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`fft_math`] | complex arithmetic, codelets, twiddles, 1-D FFTs, the 5-D layout |
//! | [`gpu_sim`] | the simulated CUDA GPU: coalescing, shared-memory banks, occupancy, DRAM/PCIe/power models |
//! | [`bifft`] | the five-step algorithm + six-step / CUFFT-like / no-shared baselines, out-of-core |
//! | [`cpu_fft`] | the FFTW-like CPU baseline and 2008-CPU roofline model |
//! | [`fft_apps`] | protein docking, spectral analysis, on-card convolution |
//! | [`fft_serve`] | FFT-as-a-service: admission control, adaptive batching, multi-card scheduling (`cargo run --release --bin serve -- --smoke`) |
//! | [`fft_gate`] | the TCP gateway speaking `bifft-wire-v1` (`cargo run --release --bin fft-gate -- bench`) |
//! | `fft-bench` | regenerates every table and figure (`cargo run --release -p fft-bench --bin report`) |

pub use bifft;
pub use cpu_fft;
pub use fft_apps;
pub use fft_gate;
pub use fft_math;
pub use fft_serve;
pub use gpu_sim;

/// The commonly used types, one `use` away.
pub mod prelude {
    pub use bifft::five_step::FiveStepFft;
    pub use bifft::multi_gpu::{MultiGpuFft3d, MultiGpuReport};
    pub use bifft::out_of_core::OutOfCoreFft;
    pub use bifft::plan::{Algorithm, Fft3d, Fft3dBuilder, FftError};
    pub use bifft::six_step::SixStepFft;
    pub use bifft::RunReport;
    pub use cpu_fft::CpuFft3d;
    pub use fft_apps::convolution::GpuCorrelator;
    pub use fft_gate::{GateServer, ServeClient};
    pub use fft_math::twiddle::Direction;
    pub use fft_math::{c32, Complex32};
    pub use fft_serve::{
        FftService, PollStatus, RequestSpec, SeededSpec, ServeConfig, Shape, Ticket,
    };
    pub use gpu_sim::{DeviceSpec, Gpu, Recorder, Trace};
}
