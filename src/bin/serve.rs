//! Workspace-root alias for the `fft-serve` harness, so
//! `cargo run --release --bin serve` works without naming the crate
//! (the crate-local spelling is `-p fft-serve --bin fft-serve`).
//! See `crates/serve/src/cli.rs` for flags and exit-code semantics,
//! including the telemetry surface (`--metrics-out`, `--metrics-format`,
//! `--trace`, `--validate-metrics`).

fn main() {
    std::process::exit(fft_serve::cli::cli_main());
}
