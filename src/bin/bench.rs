//! Workspace-root alias for the `bifft-bench` harness, so
//! `cargo run --release --bin bench` works without naming the crate
//! (the crate-local spelling is `-p fft-bench --bin bifft-bench`).
//! See `crates/bench/src/bench.rs` for the grid and gate semantics.

fn main() {
    std::process::exit(fft_bench::bench::cli_main());
}
