//! Root-crate alias for the `fft-gate` gateway binary.

fn main() {
    std::process::exit(fft_gate::cli::cli_main());
}
