//! `fft3d` — command-line 3-D FFT on the simulated GPU.
//!
//! ```text
//! fft3d --dims 64x64x64
//!       [--algo five-step|six-step|cufft-like|out-of-core|multi-gpu]
//!       [--device gt|gts|gtx|c1060] [--inverse]
//!       [--gpus N] [--streams K] [--slabs S]
//!       [--input volume.bin] [--output spectrum.bin] [--verify]
//!       [--check-hazards]
//! ```
//!
//! Volumes are raw little-endian interleaved `f32` complex values, x fastest
//! (`2*nx*ny*nz` floats). Without `--input`, a random volume is generated.
//! `--verify` cross-checks the result against the CPU transform.
//! `--check-hazards` runs under the cuda-memcheck/racecheck-style validation
//! layer and fails (exit 1) on any out-of-bounds, use-after-free,
//! uninitialized-read or cross-stream hazard diagnostic.

use bifft::out_of_core::summarize as summarize_ooc;
use bifft::plan::{Algorithm, Fft3d};
use nukada_fft_repro::gpu_sim;
use nukada_fft_repro::prelude::*;
use std::io::{Read, Write};
use std::process::ExitCode;

struct Args {
    dims: (usize, usize, usize),
    algo: Algorithm,
    device: DeviceSpec,
    dir: Direction,
    gpus: usize,
    streams: usize,
    slabs: usize,
    input: Option<String>,
    output: Option<String>,
    verify: bool,
    check: bool,
}

fn parse_dims(s: &str) -> Result<(usize, usize, usize), String> {
    let parts: Vec<&str> = s.split(['x', 'X', ',']).collect();
    let nums: Result<Vec<usize>, _> = parts.iter().map(|p| p.trim().parse()).collect();
    match nums.map_err(|e| format!("bad dims '{s}': {e}"))?.as_slice() {
        [n] => Ok((*n, *n, *n)),
        [a, b, c] => Ok((*a, *b, *c)),
        _ => Err(format!("dims must be N or NXxNYxNZ, got '{s}'")),
    }
}

fn parse_device(s: &str) -> Result<DeviceSpec, String> {
    match s.to_ascii_lowercase().as_str() {
        "gt" | "8800gt" => Ok(DeviceSpec::gt8800()),
        "gts" | "8800gts" => Ok(DeviceSpec::gts8800()),
        "gtx" | "8800gtx" => Ok(DeviceSpec::gtx8800()),
        "c1060" | "tesla" => Ok(DeviceSpec::tesla_c1060()),
        other => Err(format!("unknown device '{other}' (gt|gts|gtx|c1060)")),
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        dims: (64, 64, 64),
        algo: Algorithm::FiveStep,
        device: DeviceSpec::gts8800(),
        dir: Direction::Forward,
        gpus: 2,
        streams: 2,
        slabs: 2,
        input: None,
        output: None,
        verify: false,
        check: false,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match a.as_str() {
            "--dims" => args.dims = parse_dims(&next("--dims")?)?,
            "--algo" => args.algo = next("--algo")?.parse()?,
            "--device" => args.device = parse_device(&next("--device")?)?,
            "--inverse" => args.dir = Direction::Inverse,
            "--gpus" => {
                args.gpus = next("--gpus")?
                    .parse()
                    .map_err(|e| format!("bad --gpus: {e}"))?
            }
            "--streams" => {
                args.streams = next("--streams")?
                    .parse()
                    .map_err(|e| format!("bad --streams: {e}"))?
            }
            "--slabs" => {
                args.slabs = next("--slabs")?
                    .parse()
                    .map_err(|e| format!("bad --slabs: {e}"))?
            }
            "--input" => args.input = Some(next("--input")?),
            "--output" => args.output = Some(next("--output")?),
            "--verify" => args.verify = true,
            "--check-hazards" => args.check = true,
            "--help" | "-h" => return Err("usage: see module docs (fft3d --dims NxNxN ...)".into()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn read_volume(path: &str, len: usize) -> Result<Vec<Complex32>, String> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| format!("reading {path}: {e}"))?;
    if bytes.len() != len * 8 {
        return Err(format!(
            "{path}: expected {} bytes ({} complex f32), found {}",
            len * 8,
            len,
            bytes.len()
        ));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| {
            c32(
                f32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                f32::from_le_bytes([c[4], c[5], c[6], c[7]]),
            )
        })
        .collect())
}

fn write_volume(path: &str, data: &[Complex32]) -> Result<(), String> {
    let mut bytes = Vec::with_capacity(data.len() * 8);
    for z in data {
        bytes.extend_from_slice(&z.re.to_le_bytes());
        bytes.extend_from_slice(&z.im.to_le_bytes());
    }
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(&bytes))
        .map_err(|e| format!("writing {path}: {e}"))
}

/// Prints the checker's verdict to stderr; any diagnostic fails the run.
/// A `None` report (checking off) passes silently.
fn report_check(report: Option<gpu_sim::CheckReport>) -> Result<(), String> {
    match report {
        Some(rep) if rep.clean() => {
            eprintln!(
                "fft3d: check-hazards: clean ({} kernels, {} ops tracked)",
                rep.kernels_checked, rep.ops_tracked
            );
            Ok(())
        }
        Some(rep) => {
            eprintln!("{rep}");
            Err(format!(
                "check-hazards: {} diagnostic(s)",
                rep.access.len() + rep.hazards.len()
            ))
        }
        None => Ok(()),
    }
}

/// Runs the requested transform, dispatching on the algorithm: in-core
/// algorithms go through the [`Fft3d`] facade, `out-of-core` through
/// [`OutOfCoreFft`] and `multi-gpu` through [`MultiGpuFft3d`]. Every path
/// prints its timing summary to stderr and returns the transformed volume.
fn run_transform(args: &Args, host: &[Complex32]) -> Result<Vec<Complex32>, String> {
    let (nx, ny, nz) = args.dims;
    match args.algo {
        Algorithm::OutOfCore => {
            let slabs = args.slabs;
            if slabs < 2
                || !slabs.is_power_of_two()
                || slabs > 16
                || !nz.is_multiple_of(slabs)
                || nz / slabs < 16
            {
                return Err(format!(
                    "--slabs {slabs} must be a power of two in 2..=16 dividing nz={nz} into slabs of 16+ planes"
                ));
            }
            let plan = OutOfCoreFft::new(&args.device, nx, ny, nz, slabs)
                .and_then(|p| p.with_streams(args.streams))
                .map_err(|e| e.to_string())?;
            let mut gpu = Gpu::new(args.device);
            if args.check {
                gpu.check_enable();
            }
            let mut out = host.to_vec();
            let rep = plan
                .execute(&mut gpu, &mut out, args.dir)
                .map_err(|e| e.to_string())?;
            report_check(gpu.check_report())?;
            eprintln!("{}", summarize_ooc(&rep, args.dims));
            eprintln!(
                "fft3d: {} stream(s), wall {:.3} s vs {:.3} s serial legs",
                rep.streams,
                rep.wall_s,
                rep.total_s()
            );
            Ok(out)
        }
        Algorithm::MultiGpu => {
            let mut plan = MultiGpuFft3d::new(&args.device, args.gpus, nx, ny, nz)
                .map_err(|e| e.to_string())?;
            if args.check {
                plan.check_enable();
            }
            let (out, rep) = plan.transform(host, args.dir).map_err(|e| e.to_string())?;
            report_check(plan.check_report())?;
            eprintln!("{}", bifft::multi_gpu::summarize(&rep, args.dims));
            Ok(out)
        }
        _ => {
            let mut gpu = Gpu::new(args.device);
            let plan = Fft3d::builder(nx, ny, nz)
                .algorithm(args.algo)
                .checked(args.check)
                .build(&mut gpu)
                .map_err(|e| e.to_string())?;
            let (out, report) = plan
                .transform(&mut gpu, host, args.dir)
                .map_err(|e| e.to_string())?;
            report_check(gpu.check_report())?;
            eprintln!("{}", report.step_table());
            Ok(out)
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fft3d: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (nx, ny, nz) = args.dims;
    let vol = nx * ny * nz;

    let host = match &args.input {
        Some(path) => match read_volume(path, vol) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("fft3d: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            use fft_math::rng::SplitMix64;
            let mut rng = SplitMix64::new(0xF47);
            (0..vol)
                .map(|_| c32(rng.uniform_f32(-1.0, 1.0), rng.uniform_f32(-1.0, 1.0)))
                .collect()
        }
    };

    eprintln!(
        "fft3d: {}x{}x{} {} on simulated {} ({:?})",
        nx,
        ny,
        nz,
        args.algo.name(),
        args.device.name,
        args.dir
    );
    let out = match run_transform(&args, &host) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("fft3d: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.verify {
        let mut want = host.clone();
        CpuFft3d::new(nx, ny, nz).execute(&mut want, args.dir);
        let err = fft_math::error::rel_l2_error_f32(&out, &want);
        eprintln!("fft3d: verify vs CPU: rel L2 error {err:.2e}");
        if err > 1e-4 {
            eprintln!("fft3d: VERIFICATION FAILED");
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = &args.output {
        if let Err(e) = write_volume(path, &out) {
            eprintln!("fft3d: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("fft3d: wrote {path}");
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_parse() {
        assert_eq!(parse_dims("64").unwrap(), (64, 64, 64));
        assert_eq!(parse_dims("16x32x64").unwrap(), (16, 32, 64));
        assert_eq!(parse_dims("16,32,64").unwrap(), (16, 32, 64));
        assert!(parse_dims("16x32").is_err());
        assert!(parse_dims("abc").is_err());
    }

    #[test]
    fn device_parse() {
        assert_eq!(parse_device("gtx").unwrap().name, "8800 GTX");
        assert_eq!(parse_device("C1060").unwrap().name, "Tesla C1060");
        assert!(parse_device("rtx4090").is_err());
    }

    #[test]
    fn algo_parse() {
        assert_eq!(
            "five-step".parse::<Algorithm>().unwrap(),
            Algorithm::FiveStep
        );
        assert_eq!(
            "conventional".parse::<Algorithm>().unwrap(),
            Algorithm::SixStep
        );
        assert_eq!("ooc".parse::<Algorithm>().unwrap(), Algorithm::OutOfCore);
        assert_eq!("mgpu".parse::<Algorithm>().unwrap(), Algorithm::MultiGpu);
        assert!("vkfft".parse::<Algorithm>().is_err());
    }

    #[test]
    fn args_parse_roundtrip() {
        let argv: Vec<String> = [
            "--dims",
            "32",
            "--algo",
            "six",
            "--device",
            "gt",
            "--inverse",
            "--verify",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let a = parse_args(&argv).unwrap();
        assert_eq!(a.dims, (32, 32, 32));
        assert_eq!(a.algo, Algorithm::SixStep);
        assert_eq!(a.device.name, "8800 GT");
        assert_eq!(a.dir, Direction::Inverse);
        assert!(a.verify);
        assert!(!a.check);
        let b = parse_args(&["--check-hazards".to_string()]).unwrap();
        assert!(b.check);
    }

    #[test]
    fn volume_io_roundtrip() {
        let dir = std::env::temp_dir().join("fft3d_io_test.bin");
        let path = dir.to_str().unwrap();
        let data = vec![c32(1.5, -2.5), c32(0.0, 3.25)];
        write_volume(path, &data).unwrap();
        let back = read_volume(path, 2).unwrap();
        assert_eq!(back, data);
        assert!(read_volume(path, 3).is_err());
        let _ = std::fs::remove_file(path);
    }
}
