//! Elementwise device kernels: scaling, pointwise complex multiply, and the
//! out-of-core twiddle multiply.
//!
//! These are the "other computation" §4.4 argues should be moved onto the
//! card so the working set stays resident: a 3-D convolution needs a
//! pointwise spectrum product between the forward and inverse transforms,
//! and the §3.3 large-FFT decomposition needs an inter-slab twiddle pass.

use fft_math::twiddle::{slab_twiddles, Direction};
use gpu_sim::{BufferId, Gpu, KernelClass, KernelReport, KernelResources, LaunchConfig};

fn elementwise_resources() -> KernelResources {
    KernelResources {
        threads_per_block: 64,
        regs_per_thread: 16,
        shared_bytes_per_block: 0,
    }
}

fn elementwise_cfg(name: &'static str, grid: usize, in_place: bool, flops: u64) -> LaunchConfig {
    LaunchConfig {
        name,
        grid_blocks: grid,
        resources: elementwise_resources(),
        class: KernelClass::Copy,
        read_pattern: fft_math::layout::AccessPattern::X,
        write_pattern: fft_math::layout::AccessPattern::X,
        in_place,
        nominal_flops: flops,
        streams: 1,
    }
}

/// Scales every element of `buf` by the real factor `s` (e.g. the `1/N`
/// normalisation after an inverse transform).
pub fn run_scale(gpu: &mut Gpu, buf: BufferId, len: usize, s: f32) -> KernelReport {
    let res = elementwise_resources();
    let grid = gpu.fill_grid(&res);
    let cfg = elementwise_cfg("scale", grid, true, 2 * len as u64);
    let total = grid * res.threads_per_block;
    gpu.launch(&cfg, |t| {
        let mut i = t.gid();
        while i < len {
            let v = t.ld(buf, i);
            t.st(buf, i, v.scale(s));
            t.flops(2);
            i += total;
        }
    })
}

/// Pointwise spectrum product `dst[i] = a[i] * b[i] * s` — the correlation /
/// convolution core. `conj_b` computes `a[i] * conj(b[i]) * s` instead
/// (cross-correlation, the docking score).
pub fn run_pointwise_mul(
    gpu: &mut Gpu,
    a: BufferId,
    b: BufferId,
    dst: BufferId,
    len: usize,
    s: f32,
    conj_b: bool,
) -> KernelReport {
    let res = elementwise_resources();
    let grid = gpu.fill_grid(&res);
    let cfg = elementwise_cfg("pointwise_mul", grid, dst == a || dst == b, 8 * len as u64);
    let total = grid * res.threads_per_block;
    gpu.launch(&cfg, |t| {
        let mut i = t.gid();
        while i < len {
            let va = t.ld(a, i);
            let vb = t.ld(b, i);
            let vb = if conj_b { vb.conj() } else { vb };
            t.st(dst, i, (va * vb).scale(s));
            t.flops(8);
            i += total;
        }
    })
}

/// The `MULTIPLY_TWIDDLE(I)` kernel of §3.3: multiplies plane `j` of a slab
/// (plane size `plane` elements, `planes` planes) by `W_{z_total}^{slab·j}`.
pub fn run_slab_twiddle(
    gpu: &mut Gpu,
    buf: BufferId,
    plane: usize,
    planes: usize,
    z_total: usize,
    slab: usize,
    dir: Direction,
) -> KernelReport {
    let tw = slab_twiddles(z_total, slab, planes, dir);
    let len = plane * planes;
    let res = elementwise_resources();
    let grid = gpu.fill_grid(&res);
    let cfg = elementwise_cfg("slab_twiddle", grid, true, 6 * len as u64);
    let total = grid * res.threads_per_block;
    gpu.launch(&cfg, |t| {
        let mut i = t.gid();
        while i < len {
            let w = tw[i / plane];
            let v = t.ld(buf, i);
            t.st(buf, i, v * w);
            t.flops(6);
            i += total;
        }
    })
}

/// Device-resident argmax of `|v|²` — the docking scorer's final reduction,
/// returning `(index, score)`. On real hardware this is a two-level
/// reduction; the result (8 bytes) is what crosses the bus instead of the
/// whole volume, which is the entire point of §4.4.
pub fn run_argmax_norm(gpu: &mut Gpu, buf: BufferId, len: usize) -> (usize, f32, KernelReport) {
    let res = elementwise_resources();
    let grid = gpu.fill_grid(&res);
    let cfg = LaunchConfig {
        name: "argmax",
        grid_blocks: grid,
        resources: res,
        class: KernelClass::Copy,
        read_pattern: fft_math::layout::AccessPattern::X,
        write_pattern: fft_math::layout::AccessPattern::X,
        in_place: false,
        nominal_flops: 3 * len as u64,
        streams: 1,
    };
    let total = grid * res.threads_per_block;
    let mut best = (0usize, f32::MIN);
    let rep = gpu.launch(&cfg, |t| {
        let mut i = t.gid();
        while i < len {
            let v = t.ld(buf, i);
            let s = v.norm_sqr();
            t.flops(3);
            if s > best.1 {
                best = (i, s);
            }
            i += total;
        }
    });
    (best.0, best.1, rep)
}

/// Device-resident total energy `Σ |v|²` — the Parseval check / spectral
/// power reduction. Like the argmax kernels, only the 8-byte result crosses
/// the bus instead of the whole volume.
pub fn run_energy(gpu: &mut Gpu, buf: BufferId, len: usize) -> (f32, KernelReport) {
    let res = elementwise_resources();
    let grid = gpu.fill_grid(&res);
    let cfg = elementwise_cfg("energy", grid, false, 4 * len as u64);
    let total = grid * res.threads_per_block;
    let mut acc = 0.0f64;
    let rep = gpu.launch(&cfg, |t| {
        let mut i = t.gid();
        while i < len {
            let v = t.ld(buf, i);
            t.flops(4);
            acc += v.norm_sqr() as f64;
            i += total;
        }
    });
    (acc as f32, rep)
}

/// Device-resident argmax of the *signed real part* — the docking scorer's
/// reduction (shape-complementarity scores are real, and core clashes are
/// large negative values that a magnitude argmax would wrongly select).
pub fn run_argmax_re(gpu: &mut Gpu, buf: BufferId, len: usize) -> (usize, f32, KernelReport) {
    let res = elementwise_resources();
    let grid = gpu.fill_grid(&res);
    let cfg = elementwise_cfg("argmax_re", grid, false, len as u64);
    let total = grid * res.threads_per_block;
    let mut best = (0usize, f32::MIN);
    let rep = gpu.launch(&cfg, |t| {
        let mut i = t.gid();
        while i < len {
            let v = t.ld(buf, i);
            t.flops(1);
            if v.re > best.1 {
                best = (i, v.re);
            }
            i += total;
        }
    });
    (best.0, best.1, rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft_math::{c32, Complex32};
    use gpu_sim::DeviceSpec;

    fn gpu_with(vals: &[Complex32]) -> (Gpu, BufferId) {
        let mut g = Gpu::new(DeviceSpec::gt8800());
        let b = g.mem_mut().alloc(vals.len()).unwrap();
        g.mem_mut().upload(b, 0, vals);
        (g, b)
    }

    #[test]
    fn scale_works() {
        let vals: Vec<Complex32> = (0..256).map(|i| c32(i as f32, 1.0)).collect();
        let (mut g, b) = gpu_with(&vals);
        run_scale(&mut g, b, vals.len(), 0.5);
        assert_eq!(g.mem().read(b, 10), c32(5.0, 0.5));
    }

    #[test]
    fn pointwise_mul_with_conjugate() {
        let a: Vec<Complex32> = (0..64).map(|i| c32(1.0, i as f32)).collect();
        let bv: Vec<Complex32> = (0..64).map(|i| c32(i as f32, -2.0)).collect();
        let (mut g, ba) = gpu_with(&a);
        let bb = g.mem_mut().alloc(64).unwrap();
        g.mem_mut().upload(bb, 0, &bv);
        let dst = g.mem_mut().alloc(64).unwrap();
        run_pointwise_mul(&mut g, ba, bb, dst, 64, 1.0, true);
        for i in 0..64 {
            let want = a[i] * bv[i].conj();
            assert_eq!(g.mem().read(dst, i), want);
        }
    }

    #[test]
    fn argmax_finds_peak() {
        let mut vals: Vec<Complex32> = (0..512).map(|i| c32((i % 7) as f32 * 0.1, 0.0)).collect();
        vals[321] = c32(100.0, -100.0);
        let (mut g, b) = gpu_with(&vals);
        let (idx, score, rep) = run_argmax_norm(&mut g, b, vals.len());
        assert_eq!(idx, 321);
        assert!((score - 20000.0).abs() < 1.0);
        assert_eq!(rep.stats.loads, 512);
    }

    #[test]
    fn energy_sums_norms() {
        let vals: Vec<Complex32> = (0..256)
            .map(|i| c32(if i < 4 { 2.0 } else { 0.0 }, 0.0))
            .collect();
        let (mut g, b) = gpu_with(&vals);
        let (e, rep) = run_energy(&mut g, b, vals.len());
        assert_eq!(e, 16.0);
        assert_eq!(rep.stats.loads, 256);
    }

    #[test]
    fn argmax_re_ignores_large_negatives() {
        let mut vals: Vec<Complex32> = (0..128).map(|_| c32(0.0, 0.0)).collect();
        vals[5] = c32(-1000.0, 0.0); // huge magnitude, negative
        vals[77] = c32(42.0, -3.0); // the true signed maximum
        let (mut g, b) = gpu_with(&vals);
        let (idx, score, _) = run_argmax_re(&mut g, b, vals.len());
        assert_eq!(idx, 77);
        assert_eq!(score, 42.0);
    }

    #[test]
    fn slab_twiddle_plane_zero_unchanged() {
        let vals: Vec<Complex32> = (0..128).map(|i| c32(i as f32, 0.0)).collect();
        let (mut g, b) = gpu_with(&vals);
        run_slab_twiddle(&mut g, b, 32, 4, 512, 3, Direction::Forward);
        // Plane 0 multiplied by W^0 = 1.
        assert_eq!(g.mem().read(b, 5), c32(5.0, 0.0));
        // Plane 1 multiplied by W_512^3.
        let w = fft_math::twiddle::twiddle(3, 512, Direction::Forward);
        let want = vals[32] * w;
        assert!((g.mem().read(b, 32) - want).abs() < 1e-6);
    }
}
