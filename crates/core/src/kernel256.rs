//! The fine-grained batched row-FFT kernel (step 5 of the paper).
//!
//! One thread block computes one contiguous `n`-point row (the X axis) with
//! `n/4` cooperating threads, each holding four complex values in registers
//! (§3.2: "computing a 256-point FFT with 64 threads each thread uses only
//! eight registers to store four complex numbers"). The transform runs as
//! radix-4 Stockham stages (plus a final radix-2 for `n = 2·4^k`); between
//! stages the values are redistributed through shared memory — "a 256-point
//! FFT requires data exchange via shared memory at least three times" — with
//! real parts exchanged first and imaginary parts second to halve the shared
//! allocation (§3.2).
//!
//! Bank conflicts are eliminated by the paper's padding technique. Rather
//! than hard-coding one pad, [`FineFftPlan::new`] *searches* per-exchange pad
//! strides and per-stage lane assignments at plan time using the simulator's
//! own conflict rule, and the tests assert the chosen configuration is
//! conflict-free for every supported size. Twiddle factors are fetched from
//! texture memory (§3.2's option 3, the paper's choice for this kernel).

use fft_math::flops::nominal_flops_1d;
use fft_math::layout::AccessPattern;
use fft_math::twiddle::{Direction, TwiddleTable};
use fft_math::Complex32;
use gpu_sim::shared::bank_conflict_degree;
use gpu_sim::{
    BufferId, Gpu, KernelClass, KernelReport, KernelResources, LaunchConfig, TexAccess, TextureId,
};

/// One Stockham stage of the decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stage {
    /// Butterfly radix (4, with a possible final 2).
    pub radix: usize,
    /// Sub-transform count `len / radix`.
    pub m: usize,
    /// Output stride.
    pub s: usize,
    /// Lane assignment: `false` = p-major (`t = p*s + q`),
    /// `true` = q-major (`t = q*m + p`).
    pub q_major: bool,
}

impl Stage {
    /// Butterfly coordinates handled by thread `t` for its `b`-th butterfly.
    #[inline]
    fn coords(&self, t: usize, b: usize, threads: usize) -> (usize, usize) {
        let beta = t + b * threads;
        if self.q_major {
            // beta = q * m + p
            (beta % self.m, beta / self.m)
        } else {
            // beta = p * s + q
            (beta / self.s, beta % self.s)
        }
    }

    /// Butterflies per thread (1 for radix-4 stages, 2 for the radix-2 tail
    /// since it has twice as many butterflies as threads).
    fn butterflies_per_thread(&self, threads: usize) -> usize {
        (self.m * self.s).div_ceil(threads)
    }
}

/// Skews a shared word index: `w + c * (w / g)` — inserting `c` pad words
/// after every `g`-word group. `(0, 0)` means no padding. The classic
/// "+1 word per 16" padding is `(16, 1)`; some exchanges need a wider skew
/// (e.g. `(16, 4)`), which the plan-time search below discovers.
#[inline]
fn pad(w: usize, p: (usize, usize)) -> usize {
    match w.checked_div(p.0) {
        Some(groups) => w + p.1 * groups,
        None => w,
    }
}

/// Candidate `(group, pad)` skews the plan-time optimiser tries.
const PAD_CANDIDATES: [(usize, usize); 11] = [
    (0, 0),
    (16, 1),
    (16, 2),
    (16, 4),
    (16, 8),
    (8, 1),
    (8, 4),
    (4, 1),
    (4, 4),
    (2, 1),
    (32, 1),
];

/// A planned fine-grained FFT of fixed row length.
#[derive(Clone, Debug)]
pub struct FineFftPlan {
    n: usize,
    threads: usize,
    stages: Vec<Stage>,
    /// `(group, pad)` skew per exchange (between stage `e` and `e+1`).
    pads: Vec<(usize, usize)>,
    shared_words: usize,
    /// Total conflict degree the chosen configuration incurs in the plan-time
    /// model (0 for all paper sizes).
    pub planned_conflicts: u64,
}

impl FineFftPlan {
    /// Plans the stage decomposition and bank-conflict-free exchanges for
    /// row length `n` (power of two, 4..=512).
    ///
    /// Below `n = 64` the cooperating block is narrower than a half-warp,
    /// and some stages then genuinely violate alignment rule (c) — exactly
    /// as on hardware. The paper's sizes (64–512) always use full
    /// half-warps.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && (4..=512).contains(&n),
            "unsupported row length {n}"
        );
        let threads = n / 4;
        // Radix sequence: 4s first, a single 2 if log2(n) is odd.
        let mut radices = Vec::new();
        let mut rem = n;
        while rem.is_multiple_of(4) {
            radices.push(4);
            rem /= 4;
        }
        if rem == 2 {
            radices.push(2);
        }

        // Best (assignments, pads) over the small search space.
        type Candidate = (Vec<bool>, Vec<(usize, usize)>, u64);
        let num_stages = radices.len();
        let mut best: Option<Candidate> = None;
        for mask in 0u32..(1 << num_stages) {
            let assign: Vec<bool> = (0..num_stages).map(|i| mask >> i & 1 == 1).collect();
            let stages = build_stages(n, &radices, &assign);
            let mut pads: Vec<(usize, usize)> = Vec::with_capacity(num_stages - 1);
            let mut total = 0u64;
            for e in 0..num_stages - 1 {
                let (p, c) = best_pad(&stages[e], &stages[e + 1], threads);
                pads.push(p);
                total += c;
            }
            if best.as_ref().is_none_or(|(_, _, t)| total < *t) {
                best = Some((assign, pads, total));
            }
            if total == 0 {
                break;
            }
        }
        let (assign, pads, planned_conflicts) = best.expect("search space is non-empty");
        let stages = build_stages(n, &radices, &assign);
        let shared_words = pads.iter().map(|&p| pad(n - 1, p) + 1).max().unwrap_or(n);
        FineFftPlan {
            n,
            threads,
            stages,
            pads,
            shared_words,
            planned_conflicts,
        }
    }

    /// Plans with a *forced* uniform pad skew on every exchange (bypassing
    /// the conflict search) — the a2 ablation's "no padding" configuration
    /// uses `(0, 0)` to measure what the paper's padding technique buys.
    pub fn with_uniform_pad(n: usize, pad_skew: (usize, usize)) -> Self {
        let base = Self::new(n);
        let radices: Vec<usize> = base.stages.iter().map(|s| s.radix).collect();
        let assign = vec![false; radices.len()];
        let stages = build_stages(n, &radices, &assign);
        let threads = n / 4;
        let mut planned_conflicts = 0u64;
        for e in 0..stages.len() - 1 {
            planned_conflicts += exchange_conflicts(&stages[e], &stages[e + 1], threads, pad_skew);
        }
        let pads = vec![pad_skew; stages.len().saturating_sub(1)];
        let shared_words = pads.iter().map(|&p| pad(n - 1, p) + 1).max().unwrap_or(n);
        FineFftPlan {
            n,
            threads,
            stages,
            pads,
            shared_words,
            planned_conflicts,
        }
    }

    /// Row length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never true: plans have positive length.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Cooperating threads per row (= per block).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Shared-memory words each block allocates.
    pub fn shared_words(&self) -> usize {
        self.shared_words
    }

    /// Stage sequence (for inspection/tests).
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Launch resources: `n/4` threads, 4 complex values + temporaries in
    /// registers, the padded real-part staging array in shared memory.
    pub fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_block: self.threads,
            regs_per_thread: 16,
            shared_bytes_per_block: self.shared_words * 4,
        }
    }
}

fn build_stages(n: usize, radices: &[usize], assign: &[bool]) -> Vec<Stage> {
    let mut stages = Vec::with_capacity(radices.len());
    let mut len = n;
    let mut s = 1usize;
    for (i, &r) in radices.iter().enumerate() {
        let m = len / r;
        stages.push(Stage {
            radix: r,
            m,
            s,
            q_major: assign[i],
        });
        len = m;
        s *= r;
    }
    stages
}

/// Word-index streams of an exchange: the write side of `wr` followed by the
/// read side of `rd`, evaluated per half-warp per ordinal under pad `p`.
fn exchange_conflicts(wr: &Stage, rd: &Stage, threads: usize, p: (usize, usize)) -> u64 {
    let mut total = 0u64;
    let hw = 16.min(threads);
    for base in (0..threads).step_by(hw) {
        // Write ordinals: butterfly b, output r.
        for b in 0..wr.butterflies_per_thread(threads) {
            for r in 0..wr.radix {
                let words: Vec<usize> = (base..base + hw)
                    .map(|t| {
                        let (pp, q) = wr.coords(t, b, threads);
                        pad(q + wr.s * (wr.radix * pp + r), p)
                    })
                    .collect();
                total += (bank_conflict_degree(&words, 16) - 1) as u64;
            }
        }
        // Read ordinals: butterfly b, input k.
        for b in 0..rd.butterflies_per_thread(threads) {
            for k in 0..rd.radix {
                let words: Vec<usize> = (base..base + hw)
                    .map(|t| {
                        let (pp, q) = rd.coords(t, b, threads);
                        pad(q + rd.s * (pp + k * rd.m), p)
                    })
                    .collect();
                total += (bank_conflict_degree(&words, 16) - 1) as u64;
            }
        }
    }
    total
}

fn best_pad(wr: &Stage, rd: &Stage, threads: usize) -> ((usize, usize), u64) {
    PAD_CANDIDATES
        .iter()
        .map(|&p| (p, exchange_conflicts(wr, rd, threads, p)))
        .min_by_key(|&(_, c)| c)
        .expect("candidates non-empty")
}

/// Binds the full-length twiddle table for `n` and `dir` as a cached texture
/// (§3.2: "we selected texture memory for step 5").
pub fn bind_twiddle_texture(gpu: &mut Gpu, n: usize, dir: Direction) -> TextureId {
    let table = TwiddleTable::new(n, dir);
    gpu.bind_texture(table.as_slice().to_vec(), TexAccess::Cached)
}

/// Builds the launch configuration of a batched fine-grained row-FFT pass
/// (shared between the functional path and the analytic estimator).
pub fn batched_config(
    plan: &FineFftPlan,
    rows: usize,
    grid: usize,
    in_place: bool,
    name: &'static str,
) -> LaunchConfig {
    LaunchConfig {
        name,
        grid_blocks: grid,
        resources: plan.resources(),
        class: KernelClass::SharedFft,
        read_pattern: AccessPattern::X,
        write_pattern: AccessPattern::X,
        in_place,
        nominal_flops: rows as u64 * nominal_flops_1d(plan.n),
        streams: 1,
    }
}

/// Runs `rows` consecutive `n`-point FFTs: row `r` occupies elements
/// `[r*n, (r+1)*n)` of `src` and lands in the same range of `dst` (which may
/// equal `src` for the in-place step 5).
///
/// `tw` must be the texture bound by [`bind_twiddle_texture`] for the same
/// `n` and direction.
#[allow(clippy::too_many_arguments)]
pub fn run_batched_fft(
    gpu: &mut Gpu,
    plan: &FineFftPlan,
    src: BufferId,
    dst: BufferId,
    rows: usize,
    dir: Direction,
    tw: TextureId,
    name: &'static str,
) -> KernelReport {
    let n = plan.n;
    let threads = plan.threads;
    let res = plan.resources();
    let grid = gpu.fill_grid(&res).min(rows.max(1));
    let cfg = batched_config(plan, rows, grid, src == dst, name);

    let stages = plan.stages.clone();
    let pads = plan.pads.clone();
    let rot = match dir {
        Direction::Forward => Complex32::mul_neg_i as fn(Complex32) -> Complex32,
        Direction::Inverse => Complex32::mul_i,
    };

    gpu.launch_coop(&cfg, |blk| {
        // Per-thread register state, persisted across phases by the block.
        let mut vals = vec![[Complex32::ZERO; 4]; threads];
        let mut next = vec![[Complex32::ZERO; 4]; threads];
        let mut row = blk.block;
        while row < rows {
            let base = row * n;
            for (si, st) in stages.iter().enumerate() {
                let bpt = st.butterflies_per_thread(threads);
                // --- gather stage inputs ---
                if si == 0 {
                    blk.threads(|t, ctx| {
                        for b in 0..bpt {
                            let (p, q) = st.coords(t, b, threads);
                            for k in 0..st.radix {
                                let idx = q + st.s * (p + k * st.m);
                                vals[t][b * st.radix + k] = ctx.ld(src, base + idx);
                            }
                        }
                    });
                } else {
                    // Exchange through shared memory: previous stage's
                    // outputs were staged in `next`; move them via shared
                    // with re/im split and the planned padding.
                    let prev = &stages[si - 1];
                    let p_pad = pads[si - 1];
                    let pbpt = prev.butterflies_per_thread(threads);
                    for im in [false, true] {
                        blk.threads(|t, ctx| {
                            for b in 0..pbpt {
                                let (pp, q) = prev.coords(t, b, threads);
                                for r in 0..prev.radix {
                                    let w = q + prev.s * (prev.radix * pp + r);
                                    let v = next[t][b * prev.radix + r];
                                    ctx.sh_write(pad(w, p_pad), if im { v.im } else { v.re });
                                }
                            }
                        });
                        blk.sync();
                        blk.threads(|t, ctx| {
                            for b in 0..bpt {
                                let (p, q) = st.coords(t, b, threads);
                                for k in 0..st.radix {
                                    let w = q + st.s * (p + k * st.m);
                                    let x = ctx.sh_read(pad(w, p_pad));
                                    let slot = &mut vals[t][b * st.radix + k];
                                    if im {
                                        slot.im = x;
                                    } else {
                                        slot.re = x;
                                    }
                                }
                            }
                        });
                        blk.sync();
                    }
                }

                // --- butterflies + twiddles ---
                let last = si == stages.len() - 1;
                let tw_step = n / (st.m * st.radix); // index scale into W_n
                blk.threads(|t, ctx| {
                    for b in 0..bpt {
                        let (p, q) = st.coords(t, b, threads);
                        let io = b * st.radix;
                        let mut fl = 0u64;
                        let out: [Complex32; 4] = if st.radix == 4 {
                            let (a, bb, c, d) = (
                                vals[t][io],
                                vals[t][io + 1],
                                vals[t][io + 2],
                                vals[t][io + 3],
                            );
                            let t0 = a + c;
                            let t1 = a - c;
                            let t2 = bb + d;
                            let t3 = rot(bb - d);
                            let mut y = [t0 + t2, t1 + t3, t0 - t2, t1 - t3];
                            fl += 16;
                            if p != 0 {
                                for (r, v) in y.iter_mut().enumerate().skip(1) {
                                    *v *= ctx.tex1d(tw, (r * p * tw_step) % n);
                                    fl += 6;
                                }
                            }
                            y
                        } else {
                            let (a, bb) = (vals[t][io], vals[t][io + 1]);
                            let mut y1 = a - bb;
                            fl += 4;
                            if p != 0 {
                                y1 *= ctx.tex1d(tw, (p * tw_step) % n);
                                fl += 6;
                            }
                            [a + bb, y1, Complex32::ZERO, Complex32::ZERO]
                        };
                        ctx.flops(fl);
                        if last {
                            for (r, v) in out.iter().enumerate().take(st.radix) {
                                let idx = q + st.s * (st.radix * p + r);
                                ctx.st(dst, base + idx, *v);
                            }
                        } else {
                            next[t][io..io + st.radix].copy_from_slice(&out[..st.radix]);
                        }
                    }
                });
                if !last {
                    blk.sync();
                }
            }
            row += grid;
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft_math::error::rel_l2_error_f32;
    use fft_math::fft1d::fft_pow2;
    use gpu_sim::DeviceSpec;

    fn signal(len: usize) -> Vec<Complex32> {
        (0..len)
            .map(|i| Complex32::new((0.13 * i as f32).sin(), (0.29 * i as f32).cos() - 0.4))
            .collect()
    }

    fn run_case(n: usize, rows: usize, dir: Direction) -> (Vec<Complex32>, KernelReport) {
        let mut gpu = Gpu::new(DeviceSpec::gts8800());
        let plan = FineFftPlan::new(n);
        let host = signal(n * rows);
        let src = gpu.mem_mut().alloc(n * rows).unwrap();
        gpu.mem_mut().upload(src, 0, &host);
        let tw = bind_twiddle_texture(&mut gpu, n, dir);
        let rep = run_batched_fft(&mut gpu, &plan, src, src, rows, dir, tw, "fine");
        let mut out = vec![Complex32::ZERO; n * rows];
        gpu.mem_mut().download(src, 0, &mut out);
        (out, rep)
    }

    #[test]
    fn matches_stockham_for_all_paper_sizes() {
        for n in [16usize, 32, 64, 128, 256, 512] {
            let rows = 4;
            let host = signal(n * rows);
            let (got, _) = run_case(n, rows, Direction::Forward);
            for r in 0..rows {
                let mut want = host[r * n..(r + 1) * n].to_vec();
                fft_pow2(&mut want, Direction::Forward);
                let err = rel_l2_error_f32(&got[r * n..(r + 1) * n], &want);
                assert!(err < 1e-5, "n={n} row {r}: rel err {err}");
            }
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let n = 256;
        let rows = 2;
        let host = signal(n * rows);
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let plan = FineFftPlan::new(n);
        let src = gpu.mem_mut().alloc(n * rows).unwrap();
        gpu.mem_mut().upload(src, 0, &host);
        let twf = bind_twiddle_texture(&mut gpu, n, Direction::Forward);
        let twi = bind_twiddle_texture(&mut gpu, n, Direction::Inverse);
        run_batched_fft(
            &mut gpu,
            &plan,
            src,
            src,
            rows,
            Direction::Forward,
            twf,
            "f",
        );
        run_batched_fft(
            &mut gpu,
            &plan,
            src,
            src,
            rows,
            Direction::Inverse,
            twi,
            "i",
        );
        let mut out = vec![Complex32::ZERO; n * rows];
        gpu.mem_mut().download(src, 0, &mut out);
        for (o, h) in out.iter().zip(&host) {
            assert!((o.scale(1.0 / n as f32) - *h).abs() < 1e-4);
        }
    }

    #[test]
    fn paper_decomposition_for_256() {
        // 256 = 4^4: four stages, three shared exchanges (§3.2: "data
        // exchange via shared memory at least three times"), 64 threads.
        let plan = FineFftPlan::new(256);
        assert_eq!(plan.stages().len(), 4);
        assert_eq!(plan.threads(), 64);
        assert!(plan.stages().iter().all(|s| s.radix == 4));
    }

    #[test]
    fn planner_finds_conflict_free_padding() {
        for n in [64usize, 128, 256, 512] {
            let plan = FineFftPlan::new(n);
            assert_eq!(plan.planned_conflicts, 0, "n={n}: planner left conflicts");
        }
    }

    #[test]
    fn measured_conflicts_are_zero_and_no_races() {
        let (_, rep) = run_case(256, 4, Direction::Forward);
        assert_eq!(rep.stats.shared_races, 0);
        assert_eq!(rep.stats.shared_conflict_rate(), 0.0, "{:?}", rep.stats);
        assert!(rep.stats.shared_reads > 0);
    }

    #[test]
    fn global_traffic_coalesces_and_is_minimal() {
        let (_, rep) = run_case(256, 8, Direction::Forward);
        assert!(rep.stats.coalesced_fraction() > 0.999, "{:?}", rep.stats);
        // Exactly one read and one write per element: the whole point of
        // keeping the mid-stages in shared memory.
        assert_eq!(rep.stats.loads, 256 * 8);
        assert_eq!(rep.stats.stores, 256 * 8);
    }

    #[test]
    fn twiddles_come_from_texture() {
        let (_, rep) = run_case(256, 2, Direction::Forward);
        assert!(rep.stats.tex_reads_cached > 0);
        assert_eq!(rep.stats.tex_reads_strided, 0);
    }

    #[test]
    fn shared_fits_within_sm() {
        for n in [64usize, 128, 256, 512] {
            let plan = FineFftPlan::new(n);
            assert!(
                plan.resources().shared_bytes_per_block <= 16 * 1024,
                "n={n}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unsupported row length")]
    fn rejects_1024() {
        FineFftPlan::new(1024);
    }
}
