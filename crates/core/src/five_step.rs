//! The paper's contribution: the bandwidth-intensive five-step 3-D FFT.
//!
//! §3.1: "we propose a fast 3-D FFT algorithm for CUDA that only conducts
//! sequential memory access (thus avoiding stride accesses), while confining
//! the shared memory usage to be within the allotted size." Five kernels:
//!
//! 1. 16-point FFTs — first half of the Z-axis transform (coarse, registers),
//! 2. 16-point FFTs — second half for Z,
//! 3. as step 1 for Y,
//! 4. as step 2 for Y,
//! 5. full-length FFTs along X (fine-grained, shared memory).
//!
//! Every strided pass reads pattern D and writes pattern A or B — never the
//! catastrophic C/D x C/D combinations of Tables 3–4.

use crate::kernel16::{coarse_resources, pass_config, run_strided_pass};
use crate::kernel256::{batched_config, bind_twiddle_texture, run_batched_fft, FineFftPlan};
use crate::report::RunReport;
use fft_math::flops::nominal_flops_3d;
use fft_math::layout::FiveStepPlanLayout;
use fft_math::twiddle::Direction;
use fft_math::Complex32;
use gpu_sim::occupancy::occupancy;
use gpu_sim::timing::{estimate_pass, KernelTiming};
use gpu_sim::DeviceSpec;
use gpu_sim::{AllocError, BufferId, Gpu, TextureId};

/// A planned five-step 3-D FFT bound to one device.
///
/// Planning binds the X-axis twiddle textures and precomputes the fine-grained
/// stage/padding schedule; execution performs no host-side work beyond kernel
/// launches.
///
/// ```
/// use bifft::five_step::FiveStepFft;
/// use fft_math::{Complex32, Direction};
/// use gpu_sim::{DeviceSpec, Gpu};
///
/// let mut gpu = Gpu::new(DeviceSpec::gtx8800());
/// let plan = FiveStepFft::new(&mut gpu, 16, 16, 16);
/// let (v, work) = plan.alloc_buffers(&mut gpu).unwrap();
///
/// let mut volume = vec![Complex32::ZERO; plan.volume()];
/// volume[0] = Complex32::ONE; // impulse
/// plan.upload(&mut gpu, v, &volume);
/// let report = plan.execute(&mut gpu, v, work, Direction::Forward);
/// let spectrum = plan.download(&gpu, v);
///
/// assert!((spectrum[123] - Complex32::ONE).abs() < 1e-5);
/// assert_eq!(report.steps.len(), 5);
/// ```
pub struct FiveStepFft {
    layout: FiveStepPlanLayout,
    fine: FineFftPlan,
    tw_fwd: TextureId,
    tw_inv: TextureId,
}

impl FiveStepFft {
    /// Plans an `nx x ny x nz` transform with the default balanced splits.
    pub fn new(gpu: &mut Gpu, nx: usize, ny: usize, nz: usize) -> Self {
        Self::from_layout(gpu, FiveStepPlanLayout::new(nx, ny, nz))
    }

    /// Plans with an explicit layout (used for split-swapped inverse plans).
    pub fn from_layout(gpu: &mut Gpu, layout: FiveStepPlanLayout) -> Self {
        let fine = crate::wisdom::plan(layout.nx);
        let tw_fwd = bind_twiddle_texture(gpu, layout.nx, Direction::Forward);
        let tw_inv = bind_twiddle_texture(gpu, layout.nx, Direction::Inverse);
        FiveStepFft {
            layout,
            fine,
            tw_fwd,
            tw_inv,
        }
    }

    /// A plan that consumes this plan's *output* layout directly — chain a
    /// forward and an inverse transform on the card with no relayout (the
    /// on-card convolution pattern of §4.4).
    pub fn inverse_chained(&self, gpu: &mut Gpu) -> Self {
        let l = &self.layout;
        let layout = FiveStepPlanLayout::with_splits(
            l.nx,
            l.ny,
            l.nz,
            (l.y_split.1, l.y_split.0),
            (l.z_split.1, l.z_split.0),
        );
        Self::from_layout(gpu, layout)
    }

    /// The data layout (index mapping between natural voxels and the 5-D
    /// device layout).
    pub fn layout(&self) -> &FiveStepPlanLayout {
        &self.layout
    }

    /// Total complex elements.
    pub fn volume(&self) -> usize {
        self.layout.volume()
    }

    /// Allocates the data and work buffers on the device.
    pub fn alloc_buffers(&self, gpu: &mut Gpu) -> Result<(BufferId, BufferId), AllocError> {
        let v = gpu.mem_mut().alloc(self.volume())?;
        let work = gpu.mem_mut().alloc(self.volume())?;
        Ok((v, work))
    }

    /// Packs a natural-order volume (`x` fastest, then `y`, then `z`) into
    /// the 5-D input layout. This is host-side work, done once per upload.
    pub fn pack_input(&self, host: &[Complex32]) -> Vec<Complex32> {
        let l = &self.layout;
        assert_eq!(host.len(), l.volume(), "volume mismatch");
        let mut out = vec![Complex32::ZERO; host.len()];
        let mut i = 0;
        for z in 0..l.nz {
            for y in 0..l.ny {
                for x in 0..l.nx {
                    out[l.input_index(x, y, z)] = host[i];
                    i += 1;
                }
            }
        }
        out
    }

    /// Unpacks a downloaded 5-D *output*-layout buffer into natural order.
    pub fn unpack_output(&self, packed: &[Complex32]) -> Vec<Complex32> {
        let l = &self.layout;
        assert_eq!(packed.len(), l.volume(), "volume mismatch");
        let mut out = vec![Complex32::ZERO; packed.len()];
        let mut i = 0;
        for kz in 0..l.nz {
            for ky in 0..l.ny {
                for kx in 0..l.nx {
                    out[i] = packed[l.output_index(kx, ky, kz)];
                    i += 1;
                }
            }
        }
        out
    }

    /// Executes the five steps: `v` holds the input in the 5-D input layout
    /// and receives the spectrum in the 5-D output layout; `work` is
    /// scratch of the same size.
    pub fn execute(&self, gpu: &mut Gpu, v: BufferId, work: BufferId, dir: Direction) -> RunReport {
        let l = &self.layout;
        let passes = l.strided_passes();
        let names = ["step1_z16", "step2_z16", "step3_y16", "step4_y16"];
        let spans = ["z_fft_pass1", "z_fft_pass2", "y_fft_pass1", "y_fft_pass2"];
        gpu.span_begin("five_step");
        let mut steps = Vec::with_capacity(5);
        let mut src = v;
        let mut dst = work;
        for ((pass, name), span) in passes.iter().zip(names).zip(spans) {
            gpu.span_begin(span);
            steps.push(run_strided_pass(gpu, src, dst, pass, dir, name));
            gpu.span_end(span);
            std::mem::swap(&mut src, &mut dst);
        }
        debug_assert_eq!(src, v, "an even number of ping-pong passes returns to v");

        let tw = match dir {
            Direction::Forward => self.tw_fwd,
            Direction::Inverse => self.tw_inv,
        };
        let rows = l.ny * l.nz;
        gpu.span_begin("x_fft_shared");
        steps.push(run_batched_fft(
            gpu, &self.fine, v, v, rows, dir, tw, "step5_x",
        ));
        gpu.span_end("x_fft_shared");
        gpu.span_end("five_step");

        RunReport {
            algorithm: "five-step",
            dims: (l.nx, l.ny, l.nz),
            nominal_flops: nominal_flops_3d(l.nx, l.ny, l.nz),
            steps,
            trace: None,
        }
    }

    /// Analytic per-step timing estimate at any size, without functional
    /// execution — the fast path the report harness uses to project
    /// paper-scale (256³) numbers. Uses the *same* launch configurations as
    /// the functional kernels, so the two paths agree exactly.
    pub fn estimate(
        spec: &DeviceSpec,
        nx: usize,
        ny: usize,
        nz: usize,
    ) -> Vec<(&'static str, KernelTiming)> {
        let layout = FiveStepPlanLayout::new(nx, ny, nz);
        let elems = layout.volume() as u64;
        let names = ["step1_z16", "step2_z16", "step3_y16", "step4_y16"];
        let mut out = Vec::with_capacity(5);
        for (pass, name) in layout.strided_passes().iter().zip(names) {
            let res = coarse_resources(pass.fft_len);
            let occ = occupancy(&spec.arch, &res);
            let grid = spec.sms * occ.blocks_per_sm;
            let cfg = pass_config(pass, grid, name);
            out.push((name, estimate_pass(spec, &cfg, &occ, elems)));
        }
        let fine = FineFftPlan::new(nx);
        let occ = occupancy(&spec.arch, &fine.resources());
        let grid = spec.sms * occ.blocks_per_sm;
        let cfg = batched_config(&fine, ny * nz, grid, true, "step5_x");
        out.push(("step5_x", estimate_pass(spec, &cfg, &occ, elems)));
        out
    }

    /// Convenience: upload a natural-order host volume (packing included).
    pub fn upload(&self, gpu: &mut Gpu, v: BufferId, host: &[Complex32]) {
        let packed = self.pack_input(host);
        gpu.mem_mut().upload(v, 0, &packed);
    }

    /// Convenience: download and unpack the spectrum to natural order.
    pub fn download(&self, gpu: &Gpu, v: BufferId) -> Vec<Complex32> {
        let mut packed = vec![Complex32::ZERO; self.volume()];
        gpu.mem().download(v, 0, &mut packed);
        self.unpack_output(&packed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft_math::dft::dft3d_oracle;
    use fft_math::error::{fft_tolerance, rel_l2_error, rel_l2_error_f32};
    use fft_math::rng::SplitMix64;
    use gpu_sim::DeviceSpec;

    fn random_volume(n: usize, seed: u64) -> Vec<Complex32> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| Complex32::new(rng.uniform_f32(-1.0, 1.0), rng.uniform_f32(-1.0, 1.0)))
            .collect()
    }

    #[test]
    fn matches_3d_oracle_16_cubed() {
        let mut gpu = Gpu::new(DeviceSpec::gts8800());
        let plan = FiveStepFft::new(&mut gpu, 16, 16, 16);
        let (v, work) = plan.alloc_buffers(&mut gpu).unwrap();
        let host = random_volume(plan.volume(), 1);
        plan.upload(&mut gpu, v, &host);
        let rep = plan.execute(&mut gpu, v, work, Direction::Forward);
        // 16-wide rows span a quarter of a half-warp's coalescing window, so
        // step 5 cannot fully coalesce below n = 64; race-freedom still holds.
        rep.assert_clean_with_floor(0.2);
        let got = plan.download(&gpu, v);
        let want = dft3d_oracle(&host, 16, 16, 16, Direction::Forward);
        let err = rel_l2_error(&got, &want);
        assert!(err < fft_tolerance(plan.volume()) * 10.0, "rel err {err}");
    }

    #[test]
    fn matches_oracle_rectangular() {
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let plan = FiveStepFft::new(&mut gpu, 8, 16, 4);
        let (v, work) = plan.alloc_buffers(&mut gpu).unwrap();
        let host = random_volume(plan.volume(), 2);
        plan.upload(&mut gpu, v, &host);
        plan.execute(&mut gpu, v, work, Direction::Forward);
        let got = plan.download(&gpu, v);
        let want = dft3d_oracle(&host, 8, 16, 4, Direction::Forward);
        assert!(rel_l2_error(&got, &want) < 1e-4);
    }

    #[test]
    fn forward_inverse_roundtrip_32() {
        let mut gpu = Gpu::new(DeviceSpec::gtx8800());
        let plan = FiveStepFft::new(&mut gpu, 32, 32, 32);
        let (v, work) = plan.alloc_buffers(&mut gpu).unwrap();
        let host = random_volume(plan.volume(), 3);
        plan.upload(&mut gpu, v, &host);
        plan.execute(&mut gpu, v, work, Direction::Forward);

        // Chain the inverse on the card: its input layout IS our output
        // layout, so no repacking happens between the transforms.
        let inv = plan.inverse_chained(&mut gpu);
        inv.execute(&mut gpu, v, work, Direction::Inverse);

        // inv's output layout is plan's input layout.
        let mut packed = vec![Complex32::ZERO; plan.volume()];
        gpu.mem().download(v, 0, &mut packed);
        let n = plan.volume() as f32;
        let l = plan.layout();
        for z in (0..32).step_by(7) {
            for y in (0..32).step_by(5) {
                for x in 0..32 {
                    let got = packed[l.input_index(x, y, z)].scale(1.0 / n);
                    let want = host[x + 32 * (y + 32 * z)];
                    assert!((got - want).abs() < 1e-4, "({x},{y},{z}): {got} vs {want}");
                }
            }
        }
    }

    #[test]
    fn impulse_gives_flat_spectrum_64() {
        let mut gpu = Gpu::new(DeviceSpec::gts8800());
        let plan = FiveStepFft::new(&mut gpu, 64, 64, 64);
        let (v, work) = plan.alloc_buffers(&mut gpu).unwrap();
        let mut host = vec![Complex32::ZERO; plan.volume()];
        host[0] = Complex32::ONE;
        plan.upload(&mut gpu, v, &host);
        let rep = plan.execute(&mut gpu, v, work, Direction::Forward);
        let got = plan.download(&gpu, v);
        for (i, z) in got.iter().enumerate().step_by(997) {
            assert!((*z - Complex32::ONE).abs() < 1e-4, "bin {i}: {z}");
        }
        // All five steps fully coalesced, no shared races.
        rep.assert_clean();
        for s in &rep.steps {
            assert!(
                s.stats.coalesced_fraction() > 0.999,
                "{}: {:?}",
                s.name,
                s.stats
            );
        }
    }

    #[test]
    fn plane_wave_lands_in_single_bin() {
        let (nx, ny, nz) = (16usize, 16, 16);
        let (kx, ky, kz) = (3usize, 5, 9);
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let plan = FiveStepFft::new(&mut gpu, nx, ny, nz);
        let (v, work) = plan.alloc_buffers(&mut gpu).unwrap();
        let mut host = Vec::with_capacity(plan.volume());
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let ph = 2.0
                        * std::f32::consts::PI
                        * (kx as f32 * x as f32 / nx as f32
                            + ky as f32 * y as f32 / ny as f32
                            + kz as f32 * z as f32 / nz as f32);
                    host.push(Complex32::cis(ph));
                }
            }
        }
        plan.upload(&mut gpu, v, &host);
        plan.execute(&mut gpu, v, work, Direction::Forward);
        let got = plan.download(&gpu, v);
        let total = plan.volume() as f32;
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let val = got[x + nx * (y + ny * z)];
                    if (x, y, z) == (kx, ky, kz) {
                        assert!((val.abs() - total).abs() < 0.1 * total, "peak wrong: {val}");
                    } else {
                        assert!(val.abs() < 0.01 * total, "leakage at ({x},{y},{z}): {val}");
                    }
                }
            }
        }
    }

    #[test]
    fn five_steps_reported() {
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let plan = FiveStepFft::new(&mut gpu, 16, 16, 16);
        let (v, work) = plan.alloc_buffers(&mut gpu).unwrap();
        let rep = plan.execute(&mut gpu, v, work, Direction::Forward);
        assert_eq!(rep.steps.len(), 5);
        assert_eq!(rep.steps[0].name, "step1_z16");
        assert_eq!(rep.steps[4].name, "step5_x");
        assert!(rep.total_time_s() > 0.0);
        assert!(rep.gflops() > 0.0);
        assert!(!rep.step_table().is_empty());
    }

    #[test]
    fn pack_unpack_are_inverse_permutations() {
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let plan = FiveStepFft::new(&mut gpu, 8, 16, 4);
        let host = random_volume(plan.volume(), 7);
        let packed = plan.pack_input(&host);
        // pack is a bijection: sum of elements preserved.
        let s1: Complex32 = host.iter().copied().sum();
        let s2: Complex32 = packed.iter().copied().sum();
        assert!((s1 - s2).abs() < 1e-3);
        // For equal splits, output layout == input layout, so unpack(pack)
        // is identity.
        let mut gpu2 = Gpu::new(DeviceSpec::gt8800());
        let square = FiveStepFft::new(&mut gpu2, 8, 16, 16);
        let host2 = random_volume(square.volume(), 8);
        let roundtrip = square.unpack_output(&square.pack_input(&host2));
        assert_eq!(roundtrip, host2);
    }

    #[test]
    fn linearity_of_transform() {
        let mut gpu = Gpu::new(DeviceSpec::gts8800());
        let plan = FiveStepFft::new(&mut gpu, 16, 16, 16);
        let (v, work) = plan.alloc_buffers(&mut gpu).unwrap();
        let a = random_volume(plan.volume(), 10);
        let b = random_volume(plan.volume(), 11);
        let run = |gpu: &mut Gpu, plan: &FiveStepFft, data: &[Complex32]| {
            plan.upload(gpu, v, data);
            plan.execute(gpu, v, work, Direction::Forward);
            plan.download(gpu, v)
        };
        let fa = run(&mut gpu, &plan, &a);
        let fb = run(&mut gpu, &plan, &b);
        let sum: Vec<Complex32> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fs = run(&mut gpu, &plan, &sum);
        let combined: Vec<Complex32> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(rel_l2_error_f32(&fs, &combined) < 1e-4);
    }
}
