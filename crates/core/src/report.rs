//! Structured per-run reporting: the data behind every table of §4.

use fft_math::flops::{gbytes_per_sec, gflops};
use gpu_sim::KernelReport;

/// Result of a full multi-kernel transform on the device.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Algorithm label ("five-step", "six-step", "cufft-like", ...).
    pub algorithm: &'static str,
    /// Volume dimensions `(nx, ny, nz)`.
    pub dims: (usize, usize, usize),
    /// Nominal FLOPs of the whole transform (`5·V·log2` convention).
    pub nominal_flops: u64,
    /// Per-kernel reports in execution order.
    pub steps: Vec<KernelReport>,
}

impl RunReport {
    /// Total modelled device time, seconds.
    pub fn total_time_s(&self) -> f64 {
        self.steps.iter().map(|s| s.timing.time_s).sum()
    }

    /// Achieved GFLOPS at the paper's nominal-FLOP convention.
    pub fn gflops(&self) -> f64 {
        gflops(self.nominal_flops, self.total_time_s())
    }

    /// Sum of useful global bytes moved by all kernels.
    pub fn total_bytes(&self) -> u64 {
        self.steps.iter().map(|s| s.stats.load_bytes() + s.stats.store_bytes()).sum()
    }

    /// Whole-run effective bandwidth, GB/s.
    pub fn overall_gbs(&self) -> f64 {
        gbytes_per_sec(self.total_bytes(), self.total_time_s())
    }

    /// Sum of the modelled times of steps whose kernel name contains `pat`.
    pub fn time_of(&self, pat: &str) -> f64 {
        self.steps
            .iter()
            .filter(|s| s.name.contains(pat))
            .map(|s| s.timing.time_s)
            .sum()
    }

    /// Human-readable per-step breakdown (the shape of Tables 6–7).
    pub fn step_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} {}x{}x{}: {:.2} ms total, {:.1} GFLOPS\n",
            self.algorithm,
            self.dims.0,
            self.dims.1,
            self.dims.2,
            self.total_time_s() * 1e3,
            self.gflops()
        ));
        for s in &self.steps {
            out.push_str(&format!(
                "  {:<16} {:>8.2} ms  {:>6.1} GB/s  coalesced {:>5.1}%\n",
                s.name,
                s.timing.time_s * 1e3,
                s.timing.achieved_gbs,
                s.stats.coalesced_fraction() * 100.0
            ));
        }
        out
    }

    /// Asserts the run hit no shared-memory races and stayed coalesced; used
    /// by tests and debug harnesses.
    pub fn assert_clean(&self) {
        for s in &self.steps {
            assert_eq!(s.stats.shared_races, 0, "step {} raced", s.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_of_filters_by_name() {
        use gpu_sim::{DeviceSpec, Gpu, LaunchConfig};
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let buf = gpu.mem_mut().alloc(1024).unwrap();
        let run = |gpu: &mut Gpu, name: &'static str| {
            let cfg = LaunchConfig::copy(name, 1, 64);
            gpu.launch(&cfg, |t| {
                let v = t.ld(buf, t.tid);
                t.st(buf, (t.tid + 64) % 1024, v);
            })
        };
        let steps = vec![run(&mut gpu, "fft_x"), run(&mut gpu, "transpose_a")];
        let r = RunReport { algorithm: "t", dims: (8, 8, 16), nominal_flops: 10, steps };
        assert!(r.time_of("fft_") > 0.0);
        assert!(r.time_of("transpose") > 0.0);
        assert_eq!(r.time_of("nothing"), 0.0);
        assert!((r.time_of("fft_") + r.time_of("transpose") - r.total_time_s()).abs() < 1e-12);
        assert!(r.overall_gbs() > 0.0);
        assert_eq!(r.total_bytes(), 2 * 64 * 8 * 2);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = RunReport { algorithm: "none", dims: (1, 1, 1), nominal_flops: 0, steps: vec![] };
        assert_eq!(r.total_time_s(), 0.0);
        assert_eq!(r.total_bytes(), 0);
        r.assert_clean();
    }
}
