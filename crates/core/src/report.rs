//! Structured per-run reporting: the data behind every table of §4.
//!
//! # Byte-accounting conventions (§4)
//!
//! The paper quotes "effective bandwidth" as *useful* global-memory traffic
//! over elapsed time, so this module keeps three separate tallies:
//!
//! * [`RunReport::total_bytes`] — useful **global** load + store bytes only
//!   (each element 8 bytes), the numerator of every GB/s figure in Tables
//!   6–9. Texture and constant traffic is excluded, exactly as the paper's
//!   `2·V·8` per-pass convention implies.
//! * [`RunReport::tex_bytes`] — texture-path bytes (twiddle tables of §3.2),
//!   reported separately because they hit the texture cache, not the DRAM
//!   figure the paper calibrates.
//! * Bus bytes including coalescing waste live in the per-kernel sampled
//!   counters (`stats.sampled_*_bus`) and drive the timing model only.

use fft_math::flops::{gbytes_per_sec, gflops};
use gpu_sim::memory::ELEM_BYTES;
use gpu_sim::{KernelReport, Trace};

/// Minimum fraction of sampled half-warp ops that must coalesce for
/// [`RunReport::assert_clean`] to pass. The paper's kernels are designed to
/// be *fully* coalesced; the floor is fractionally under 1.0 only to admit
/// boundary half-warps of partial blocks.
pub const DEFAULT_COALESCED_FLOOR: f64 = 0.999;

/// Result of a full multi-kernel transform on the device.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Algorithm label ("five-step", "six-step", "cufft-like", ...).
    pub algorithm: &'static str,
    /// Volume dimensions `(nx, ny, nz)`.
    pub dims: (usize, usize, usize),
    /// Nominal FLOPs of the whole transform (`5·V·log2` convention).
    pub nominal_flops: u64,
    /// Per-kernel reports in execution order.
    pub steps: Vec<KernelReport>,
    /// Profiling trace of the run, when one was recorded (see
    /// [`gpu_sim::Gpu::install_recorder`]).
    pub trace: Option<Trace>,
}

impl RunReport {
    /// Attaches a recorded trace to the report.
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Total modelled device time, seconds.
    pub fn total_time_s(&self) -> f64 {
        self.steps.iter().map(|s| s.timing.time_s).sum()
    }

    /// Achieved GFLOPS at the paper's nominal-FLOP convention.
    pub fn gflops(&self) -> f64 {
        gflops(self.nominal_flops, self.total_time_s())
    }

    /// Sum of useful global bytes moved by all kernels (loads + stores of
    /// 8-byte elements; texture/constant traffic excluded — see the module
    /// docs for the full convention).
    pub fn total_bytes(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| s.stats.load_bytes() + s.stats.store_bytes())
            .sum()
    }

    /// Sum of texture-path bytes read by all kernels (cached + strided
    /// twiddle fetches). Kept out of [`RunReport::total_bytes`] so GB/s
    /// figures match the paper's global-memory-only convention.
    pub fn tex_bytes(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| (s.stats.tex_reads_cached + s.stats.tex_reads_strided) * ELEM_BYTES)
            .sum()
    }

    /// Whole-run effective bandwidth, GB/s.
    pub fn overall_gbs(&self) -> f64 {
        gbytes_per_sec(self.total_bytes(), self.total_time_s())
    }

    /// Sum of the modelled times of steps whose kernel name contains `pat`.
    ///
    /// Substring semantics: `time_of("fft_x")` also matches a kernel named
    /// `fft_x2`. Use [`RunReport::time_of_exact`] or
    /// [`RunReport::time_of_prefix`] when names overlap.
    pub fn time_of(&self, pat: &str) -> f64 {
        self.steps
            .iter()
            .filter(|s| s.name.contains(pat))
            .map(|s| s.timing.time_s)
            .sum()
    }

    /// Sum of the modelled times of steps whose kernel name equals `name`.
    pub fn time_of_exact(&self, name: &str) -> f64 {
        self.steps
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.timing.time_s)
            .sum()
    }

    /// Sum of the modelled times of steps whose kernel name starts with
    /// `prefix`.
    pub fn time_of_prefix(&self, prefix: &str) -> f64 {
        self.steps
            .iter()
            .filter(|s| s.name.starts_with(prefix))
            .map(|s| s.timing.time_s)
            .sum()
    }

    /// Human-readable per-step breakdown (the shape of Tables 6–7), rendered
    /// flamegraph-style: each step carries a bar proportional to its share of
    /// the total modelled time.
    pub fn step_table(&self) -> String {
        const BAR: usize = 24;
        let total = self.total_time_s();
        let mut out = String::new();
        out.push_str(&format!(
            "{} {}x{}x{}: {:.2} ms total, {:.1} GFLOPS, {:.1} GB/s\n",
            self.algorithm,
            self.dims.0,
            self.dims.1,
            self.dims.2,
            total * 1e3,
            self.gflops(),
            self.overall_gbs()
        ));
        for s in &self.steps {
            let share = if total > 0.0 {
                s.timing.time_s / total
            } else {
                0.0
            };
            let filled = (share * BAR as f64).round() as usize;
            let mut bar = String::with_capacity(BAR);
            for i in 0..BAR {
                bar.push(if i < filled { '#' } else { '.' });
            }
            out.push_str(&format!(
                "  {:<16} [{}] {:>5.1}%  {:>8.3} ms  {:>6.1} GB/s  coalesced {:>5.1}%\n",
                s.name,
                bar,
                share * 100.0,
                s.timing.time_s * 1e3,
                s.timing.achieved_gbs,
                s.stats.coalesced_fraction() * 100.0
            ));
        }
        out
    }

    /// Asserts the run hit no shared-memory races and that every step's
    /// sampled half-warp ops coalesced at least the given fraction.
    ///
    /// # Panics
    /// Panics naming the first offending step.
    pub fn assert_clean_with_floor(&self, coalesced_floor: f64) {
        for s in &self.steps {
            assert_eq!(s.stats.shared_races, 0, "step {} raced", s.name);
            let f = s.stats.coalesced_fraction();
            assert!(
                f >= coalesced_floor,
                "step {} only {:.1}% coalesced (floor {:.1}%)",
                s.name,
                f * 100.0,
                coalesced_floor * 100.0
            );
        }
    }

    /// Asserts the run hit no shared-memory races and stayed coalesced (at
    /// the [`DEFAULT_COALESCED_FLOOR`]); used by tests and debug harnesses.
    pub fn assert_clean(&self) {
        self.assert_clean_with_floor(DEFAULT_COALESCED_FLOOR);
    }

    /// Compares this run against another (typically the same plan after a
    /// change), pairing steps by position.
    pub fn diff<'a>(&'a self, other: &'a RunReport) -> ReportDiff<'a> {
        let n = self.steps.len().max(other.steps.len());
        let mut steps = Vec::with_capacity(n);
        for i in 0..n {
            let a = self.steps.get(i);
            let b = other.steps.get(i);
            steps.push(StepDiff {
                name: a.or(b).map(|s| s.name).unwrap_or("?"),
                time_a_s: a.map(|s| s.timing.time_s).unwrap_or(0.0),
                time_b_s: b.map(|s| s.timing.time_s).unwrap_or(0.0),
                coalesced_a: a.map(|s| s.stats.coalesced_fraction()).unwrap_or(0.0),
                coalesced_b: b.map(|s| s.stats.coalesced_fraction()).unwrap_or(0.0),
            });
        }
        ReportDiff {
            a: self,
            b: other,
            steps,
        }
    }

    /// Flat JSON metrics dump: run totals plus per-step counters. Numbers are
    /// written in shortest-round-trip form, so parsing `total_time_s` back
    /// recovers [`RunReport::total_time_s`] exactly.
    pub fn metrics_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"algorithm\": \"{}\",\n", self.algorithm));
        out.push_str(&format!(
            "  \"dims\": [{},{},{}],\n",
            self.dims.0, self.dims.1, self.dims.2
        ));
        out.push_str(&format!("  \"nominal_flops\": {},\n", self.nominal_flops));
        out.push_str(&format!("  \"total_time_s\": {},\n", self.total_time_s()));
        out.push_str(&format!("  \"gflops\": {},\n", self.gflops()));
        out.push_str(&format!("  \"total_bytes\": {},\n", self.total_bytes()));
        out.push_str(&format!("  \"tex_bytes\": {},\n", self.tex_bytes()));
        out.push_str(&format!("  \"overall_gbs\": {},\n", self.overall_gbs()));
        out.push_str("  \"steps\": [\n");
        let n = self.steps.len();
        for (i, s) in self.steps.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"time_s\": {}, \"mem_time_s\": {}, \"compute_time_s\": {}, \"achieved_gbs\": {}, \"achieved_gflops\": {}, \"loads\": {}, \"stores\": {}, \"coalesced_fraction\": {}, \"shared_races\": {}}}{}\n",
                s.name,
                s.timing.time_s,
                s.timing.mem_time_s,
                s.timing.compute_time_s,
                s.timing.achieved_gbs,
                s.timing.achieved_gflops,
                s.stats.loads,
                s.stats.stores,
                s.stats.coalesced_fraction(),
                s.stats.shared_races,
                if i + 1 < n { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Pairwise comparison of two runs (see [`RunReport::diff`]).
#[derive(Clone, Debug)]
pub struct ReportDiff<'a> {
    /// Baseline run.
    pub a: &'a RunReport,
    /// Candidate run.
    pub b: &'a RunReport,
    /// Per-step comparisons, paired by position.
    pub steps: Vec<StepDiff>,
}

impl ReportDiff<'_> {
    /// Candidate total minus baseline total, seconds (negative = faster).
    pub fn total_delta_s(&self) -> f64 {
        self.b.total_time_s() - self.a.total_time_s()
    }
}

impl std::fmt::Display for ReportDiff<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} vs {}: {:+.3} ms total ({:.2} -> {:.2} ms)",
            self.a.algorithm,
            self.b.algorithm,
            self.total_delta_s() * 1e3,
            self.a.total_time_s() * 1e3,
            self.b.total_time_s() * 1e3
        )?;
        for s in &self.steps {
            writeln!(
                f,
                "  {:<16} {:+9.3} ms  coalesced {:+6.1} pp",
                s.name,
                s.delta_s() * 1e3,
                s.coalesced_delta() * 100.0
            )?;
        }
        Ok(())
    }
}

/// One step's before/after comparison inside a [`ReportDiff`].
#[derive(Clone, Copy, Debug)]
pub struct StepDiff {
    /// Step (kernel) name.
    pub name: &'static str,
    /// Baseline modelled time, seconds.
    pub time_a_s: f64,
    /// Candidate modelled time, seconds.
    pub time_b_s: f64,
    /// Baseline coalesced fraction.
    pub coalesced_a: f64,
    /// Candidate coalesced fraction.
    pub coalesced_b: f64,
}

impl StepDiff {
    /// Candidate minus baseline time, seconds.
    pub fn delta_s(&self) -> f64 {
        self.time_b_s - self.time_a_s
    }

    /// Candidate minus baseline coalesced fraction.
    pub fn coalesced_delta(&self) -> f64 {
        self.coalesced_b - self.coalesced_a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceSpec, Gpu, LaunchConfig};

    fn run(gpu: &mut Gpu, buf: gpu_sim::BufferId, name: &'static str) -> KernelReport {
        let cfg = LaunchConfig::copy(name, 1, 64);
        gpu.launch(&cfg, |t| {
            let v = t.ld(buf, t.tid);
            t.st(buf, (t.tid + 64) % 1024, v);
        })
    }

    #[test]
    fn time_of_filters_by_name() {
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let buf = gpu.mem_mut().alloc(1024).unwrap();
        let steps = vec![
            run(&mut gpu, buf, "fft_x"),
            run(&mut gpu, buf, "transpose_a"),
        ];
        let r = RunReport {
            algorithm: "t",
            dims: (8, 8, 16),
            nominal_flops: 10,
            steps,
            trace: None,
        };
        assert!(r.time_of("fft_") > 0.0);
        assert!(r.time_of("transpose") > 0.0);
        assert_eq!(r.time_of("nothing"), 0.0);
        assert!((r.time_of("fft_") + r.time_of("transpose") - r.total_time_s()).abs() < 1e-12);
        assert!(r.overall_gbs() > 0.0);
        assert_eq!(r.total_bytes(), 2 * 64 * 8 * 2);
    }

    #[test]
    fn exact_and_prefix_variants_disambiguate_overlapping_names() {
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let buf = gpu.mem_mut().alloc(1024).unwrap();
        let steps = vec![run(&mut gpu, buf, "fft_x"), run(&mut gpu, buf, "fft_x2")];
        let r = RunReport {
            algorithm: "t",
            dims: (8, 8, 16),
            nominal_flops: 10,
            steps,
            trace: None,
        };
        // Substring matching conflates fft_x with fft_x2...
        assert!((r.time_of("fft_x") - r.total_time_s()).abs() < 1e-15);
        // ...exact matching does not.
        let exact = r.time_of_exact("fft_x");
        assert!(exact > 0.0 && exact < r.total_time_s());
        assert_eq!(
            r.time_of_exact("fft_x") + r.time_of_exact("fft_x2"),
            r.total_time_s()
        );
        // Prefix matching covers the family.
        assert_eq!(r.time_of_prefix("fft_"), r.total_time_s());
        assert_eq!(r.time_of_prefix("fft_x2"), r.time_of_exact("fft_x2"));
        assert_eq!(r.time_of_exact("fft"), 0.0);
    }

    #[test]
    fn assert_clean_enforces_the_coalescing_floor() {
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let buf = gpu.mem_mut().alloc(4096).unwrap();
        // Strided loads: thoroughly uncoalesced.
        let cfg = LaunchConfig::copy("strided", 4, 64);
        let rep = gpu.launch(&cfg, |t| {
            let v = t.ld(buf, (t.gid() * 17) % 4096);
            t.st(buf, t.gid(), v);
        });
        assert!(rep.stats.coalesced_fraction() < 0.9);
        let r = RunReport {
            algorithm: "t",
            dims: (16, 16, 16),
            nominal_flops: 0,
            steps: vec![rep],
            trace: None,
        };
        // Races are zero, so the old check would have passed; the floor
        // actually catches the uncoalesced step.
        let caught = std::panic::catch_unwind(|| r.assert_clean());
        assert!(caught.is_err(), "uncoalesced run must fail assert_clean");
        r.assert_clean_with_floor(0.0); // explicit floor opt-out still works
    }

    #[test]
    fn diff_pairs_steps_and_signs_deltas() {
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let buf = gpu.mem_mut().alloc(1024).unwrap();
        let a = RunReport {
            algorithm: "base",
            dims: (8, 8, 8),
            nominal_flops: 0,
            steps: vec![run(&mut gpu, buf, "fft_x")],
            trace: None,
        };
        let big = gpu.mem_mut().alloc(65536).unwrap();
        let cfg = LaunchConfig::copy("fft_x", 64, 64);
        let slow = gpu.launch(&cfg, |t| {
            let v = t.ld(big, t.gid());
            t.st(big, t.gid(), v);
        });
        let b = RunReport {
            algorithm: "cand",
            dims: (8, 8, 8),
            nominal_flops: 0,
            steps: vec![slow],
            trace: None,
        };
        let d = a.diff(&b);
        assert_eq!(d.steps.len(), 1);
        assert!(d.total_delta_s() > 0.0, "bigger kernel must be slower");
        assert!((d.steps[0].delta_s() - d.total_delta_s()).abs() < 1e-15);
        let text = d.to_string();
        assert!(text.contains("base vs cand"));
        assert!(text.contains("fft_x"));
        // Reverse diff flips the sign.
        assert_eq!(b.diff(&a).total_delta_s(), -d.total_delta_s());
    }

    #[test]
    fn metrics_json_roundtrips_total_time_exactly() {
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let buf = gpu.mem_mut().alloc(1024).unwrap();
        let r = RunReport {
            algorithm: "t",
            dims: (8, 8, 16),
            nominal_flops: 10,
            steps: vec![
                run(&mut gpu, buf, "fft_x"),
                run(&mut gpu, buf, "transpose_a"),
            ],
            trace: None,
        };
        let json = r.metrics_json();
        let needle = "\"total_time_s\": ";
        let at = json.find(needle).unwrap() + needle.len();
        let end = json[at..].find(',').unwrap();
        let parsed: f64 = json[at..at + end].parse().unwrap();
        assert_eq!(
            parsed,
            r.total_time_s(),
            "shortest-roundtrip f64 must reparse exactly"
        );
        assert!(json.contains("\"name\": \"fft_x\""));
        assert!(json.contains("\"name\": \"transpose_a\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn step_table_shows_share_bars() {
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let buf = gpu.mem_mut().alloc(1024).unwrap();
        let r = RunReport {
            algorithm: "t",
            dims: (8, 8, 16),
            nominal_flops: 10,
            steps: vec![run(&mut gpu, buf, "fft_x")],
            trace: None,
        };
        let table = r.step_table();
        assert!(table.contains("fft_x"));
        assert!(table.contains('#'), "single step should fill its bar");
        assert!(table.contains("100.0%"));
    }

    #[test]
    fn empty_report_is_zero() {
        let r = RunReport {
            algorithm: "none",
            dims: (1, 1, 1),
            nominal_flops: 0,
            steps: vec![],
            trace: None,
        };
        assert_eq!(r.total_time_s(), 0.0);
        assert_eq!(r.total_bytes(), 0);
        assert_eq!(r.tex_bytes(), 0);
        r.assert_clean();
    }
}
