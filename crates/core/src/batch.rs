//! Batched 1-D and 2-D GPU plan APIs.
//!
//! The paper's evaluation exercises the batched 1-D form directly (Table 8:
//! "65536 sets of 256-point 1-D FFTs"), and a 2-D form falls out of the same
//! kernels — the shapes a CUFFT-class library exposes. Both operate on the
//! natural contiguous layout.

use crate::kernel256::{bind_twiddle_texture, run_batched_fft, FineFftPlan};
use crate::plan::FftError;
use crate::report::RunReport;
use crate::transpose::run_transpose_2d;
use crate::wisdom;
use fft_math::flops::nominal_flops_1d;
use fft_math::twiddle::Direction;
use fft_math::Complex32;
use gpu_sim::{AllocError, BufferId, Gpu, KernelReport, TextureId};

/// A planned batch of contiguous `n`-point 1-D FFTs on the device.
pub struct Fft1dBatchGpu {
    plan: FineFftPlan,
    tw: [TextureId; 2],
    n: usize,
}

impl Fft1dBatchGpu {
    /// Plans transforms of length `n` (power of two, 4..=512).
    ///
    /// # Errors
    /// [`FftError::BadPlanConfig`] when `n` is outside what the fine-grained
    /// kernel supports.
    pub fn new(gpu: &mut Gpu, n: usize) -> Result<Self, FftError> {
        if !n.is_power_of_two() || !(4..=512).contains(&n) {
            return Err(FftError::BadPlanConfig {
                param: "n",
                value: n,
                reason: "1-D batch length must be a power of two in 4..=512".to_string(),
            });
        }
        let plan = wisdom::plan(n);
        let tw = [
            bind_twiddle_texture(gpu, n, Direction::Forward),
            bind_twiddle_texture(gpu, n, Direction::Inverse),
        ];
        Ok(Fft1dBatchGpu { plan, tw, n })
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never true.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Transforms `rows` rows stored back to back: row `r` at
    /// `[r*n, (r+1)*n)`. `src` may equal `dst` (in-place).
    pub fn execute(
        &self,
        gpu: &mut Gpu,
        src: BufferId,
        dst: BufferId,
        rows: usize,
        dir: Direction,
    ) -> KernelReport {
        let tw = match dir {
            Direction::Forward => self.tw[0],
            Direction::Inverse => self.tw[1],
        };
        run_batched_fft(gpu, &self.plan, src, dst, rows, dir, tw, "fft1d_batch")
    }
}

/// A planned batch of 2-D `nx x ny` FFTs on the device.
///
/// Each plane transforms as: X rows (fine kernel) → per-plane transpose →
/// Y rows (fine kernel) → transpose back; both transposes use the padded
/// 16x16 tile kernel.
pub struct Fft2dGpu {
    fine_x: FineFftPlan,
    fine_y: FineFftPlan,
    tw: [[TextureId; 2]; 2], // [axis][dir]
    nx: usize,
    ny: usize,
}

impl Fft2dGpu {
    /// Plans `nx x ny` transforms (powers of two, multiples of 16 for the
    /// tiled transpose, each in 16..=512).
    pub fn new(gpu: &mut Gpu, nx: usize, ny: usize) -> Self {
        assert!(
            nx.is_multiple_of(16) && ny.is_multiple_of(16),
            "2-D dims must be multiples of 16"
        );
        let fine_x = wisdom::plan(nx);
        let fine_y = wisdom::plan(ny);
        let tw = [nx, ny].map(|n| {
            [
                bind_twiddle_texture(gpu, n, Direction::Forward),
                bind_twiddle_texture(gpu, n, Direction::Inverse),
            ]
        });
        Fft2dGpu {
            fine_x,
            fine_y,
            tw,
            nx,
            ny,
        }
    }

    /// Plane dimensions.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Elements per plane.
    pub fn plane(&self) -> usize {
        self.nx * self.ny
    }

    /// Allocates data + scratch buffers for a batch of `planes` planes.
    pub fn alloc_buffers(
        &self,
        gpu: &mut Gpu,
        planes: usize,
    ) -> Result<(BufferId, BufferId), AllocError> {
        let n = self.plane() * planes;
        Ok((gpu.mem_mut().alloc(n)?, gpu.mem_mut().alloc(n)?))
    }

    /// Transforms `planes` planes in `v` (natural order, x fastest), using
    /// `work` as scratch; results land back in `v`.
    #[allow(clippy::vec_init_then_push)] // the pass sequence reads top to bottom
    pub fn execute(
        &self,
        gpu: &mut Gpu,
        v: BufferId,
        work: BufferId,
        planes: usize,
        dir: Direction,
    ) -> RunReport {
        let di = match dir {
            Direction::Forward => 0,
            Direction::Inverse => 1,
        };
        let mut steps = Vec::with_capacity(4);
        steps.push(run_batched_fft(
            gpu,
            &self.fine_x,
            v,
            work,
            self.ny * planes,
            dir,
            self.tw[0][di],
            "fft2d_x",
        ));
        steps.push(run_transpose_2d(
            gpu, work, v, self.nx, self.ny, planes, "fft2d_t1",
        ));
        steps.push(run_batched_fft(
            gpu,
            &self.fine_y,
            v,
            work,
            self.nx * planes,
            dir,
            self.tw[1][di],
            "fft2d_y",
        ));
        steps.push(run_transpose_2d(
            gpu, work, v, self.ny, self.nx, planes, "fft2d_t2",
        ));
        RunReport {
            algorithm: "fft2d",
            dims: (self.nx, self.ny, planes),
            nominal_flops: planes as u64
                * (self.ny as u64 * nominal_flops_1d(self.nx)
                    + self.nx as u64 * nominal_flops_1d(self.ny)),
            steps,
            trace: None,
        }
    }
}

/// CPU reference for a batch of 2-D transforms (tests and verification).
pub fn fft2d_reference(data: &mut [Complex32], nx: usize, ny: usize, dir: Direction) {
    use fft_math::fft1d::Fft1dPlan;
    assert_eq!(data.len() % (nx * ny), 0);
    let plan_x = Fft1dPlan::new(nx);
    let plan_y = Fft1dPlan::new(ny);
    let mut scratch = vec![Complex32::ZERO; nx.max(ny)];
    let mut col = vec![Complex32::ZERO; ny];
    for plane in data.chunks_mut(nx * ny) {
        for row in plane.chunks_mut(nx) {
            plan_x.execute(row, &mut scratch, dir);
        }
        for x in 0..nx {
            for (y, c) in col.iter_mut().enumerate() {
                *c = plane[x + nx * y];
            }
            plan_y.execute(&mut col, &mut scratch, dir);
            for (y, c) in col.iter().enumerate() {
                plane[x + nx * y] = *c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft_math::error::rel_l2_error_f32;
    use fft_math::fft1d::fft_pow2;
    use gpu_sim::DeviceSpec;

    fn signal(len: usize) -> Vec<Complex32> {
        (0..len)
            .map(|i| Complex32::new((0.19 * i as f32).sin(), (0.41 * i as f32).cos()))
            .collect()
    }

    #[test]
    fn batched_1d_matches_reference() {
        let (n, rows) = (128usize, 6);
        let host = signal(n * rows);
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let plan = Fft1dBatchGpu::new(&mut gpu, n).unwrap();
        let src = gpu.mem_mut().alloc(n * rows).unwrap();
        let dst = gpu.mem_mut().alloc(n * rows).unwrap();
        gpu.mem_mut().upload(src, 0, &host);
        let rep = plan.execute(&mut gpu, src, dst, rows, Direction::Forward);
        assert!(rep.stats.coalesced_fraction() > 0.999);
        let mut out = vec![Complex32::ZERO; n * rows];
        gpu.mem_mut().download(dst, 0, &mut out);
        for r in 0..rows {
            let mut want = host[r * n..(r + 1) * n].to_vec();
            fft_pow2(&mut want, Direction::Forward);
            assert!(rel_l2_error_f32(&out[r * n..(r + 1) * n], &want) < 1e-5);
        }
    }

    #[test]
    fn fft2d_matches_reference() {
        let (nx, ny, planes) = (32usize, 16, 3);
        let host = signal(nx * ny * planes);
        let mut gpu = Gpu::new(DeviceSpec::gts8800());
        let plan = Fft2dGpu::new(&mut gpu, nx, ny);
        let (v, w) = plan.alloc_buffers(&mut gpu, planes).unwrap();
        gpu.mem_mut().upload(v, 0, &host);
        let rep = plan.execute(&mut gpu, v, w, planes, Direction::Forward);
        // Rows narrower than 64 points cannot fully coalesce the X pass.
        rep.assert_clean_with_floor(0.2);
        assert_eq!(rep.steps.len(), 4);
        let mut out = vec![Complex32::ZERO; host.len()];
        gpu.mem_mut().download(v, 0, &mut out);
        let mut want = host.clone();
        fft2d_reference(&mut want, nx, ny, Direction::Forward);
        assert!(rel_l2_error_f32(&out, &want) < 1e-5);
    }

    #[test]
    fn fft2d_roundtrip() {
        let (nx, ny, planes) = (16usize, 16, 2);
        let host = signal(nx * ny * planes);
        let mut gpu = Gpu::new(DeviceSpec::gtx8800());
        let plan = Fft2dGpu::new(&mut gpu, nx, ny);
        let (v, w) = plan.alloc_buffers(&mut gpu, planes).unwrap();
        gpu.mem_mut().upload(v, 0, &host);
        plan.execute(&mut gpu, v, w, planes, Direction::Forward);
        plan.execute(&mut gpu, v, w, planes, Direction::Inverse);
        let mut out = vec![Complex32::ZERO; host.len()];
        gpu.mem_mut().download(v, 0, &mut out);
        let s = 1.0 / (nx * ny) as f32;
        for (o, h) in out.iter().zip(&host) {
            assert!((o.scale(s) - *h).abs() < 1e-4);
        }
    }

    #[test]
    fn batched_1d_rejects_bad_lengths_typed() {
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        for bad in [0usize, 3, 48, 1024] {
            match Fft1dBatchGpu::new(&mut gpu, bad) {
                Err(FftError::BadPlanConfig { param, value, .. }) => {
                    assert_eq!(param, "n");
                    assert_eq!(value, bad);
                }
                other => panic!("n={bad}: expected BadPlanConfig, got {:?}", other.is_ok()),
            }
        }
    }

    #[test]
    #[should_panic(expected = "multiples of 16")]
    fn fft2d_rejects_narrow_dims() {
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        Fft2dGpu::new(&mut gpu, 8, 32);
    }
}
