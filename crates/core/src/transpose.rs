//! Tiled 3-D rotation (transpose) kernels for the conventional six-step
//! algorithm.
//!
//! The six-step baseline rotates the volume `(x,y,z) → (z,x,y)` between its
//! 1-D FFT phases. A naive per-element kernel would leave one side
//! uncoalesced; the standard remedy — and what CUFFT-era transpose kernels
//! did — is a 16 x 16 tile staged through shared memory with one pad word
//! per row, so both the gather and the scatter are half-warp sequential.
//! Even so, the scatter sprays 16-row tiles across the whole output volume:
//! the DRAM model prices it as an N-stream copy, which is exactly how the
//! paper describes the measured transpose bandwidth ("nearly equal to the
//! bandwidth of copying 256 streams", §4.1 / Table 6).

use fft_math::layout::AccessPattern;
use fft_math::Complex32;
use gpu_sim::{BufferId, Gpu, KernelClass, KernelReport, KernelResources, LaunchConfig};

/// Tile edge (matches the half-warp, as real transpose kernels do).
pub const TILE: usize = 16;

/// Resources of the tiled transpose kernel.
pub fn transpose_resources() -> KernelResources {
    KernelResources {
        threads_per_block: 64,
        regs_per_thread: 12,
        // Separate padded re and im regions (§3.2's trick): interleaving
        // them would put lanes at stride 2 and cost a 2-way bank conflict.
        shared_bytes_per_block: 2 * TILE * (TILE + 1) * 4,
    }
}

/// Launch configuration of the tiled transpose (shared between the
/// functional path and the analytic estimator).
pub fn transpose_config(streams: usize, grid: usize, name: &'static str) -> LaunchConfig {
    LaunchConfig {
        name,
        grid_blocks: grid,
        resources: transpose_resources(),
        class: KernelClass::StreamCopy,
        read_pattern: AccessPattern::X,
        write_pattern: AccessPattern::D,
        in_place: false,
        nominal_flops: 0,
        streams,
    }
}

/// Rotates `(x, y, z) → (z, x, y)`: `dst[z + nz*(x + nx*y)] = src[x + nx*(y + ny*z)]`.
///
/// Dimensions must be multiples of [`TILE`].
pub fn run_rotate_zxy(
    gpu: &mut Gpu,
    src: BufferId,
    dst: BufferId,
    nx: usize,
    ny: usize,
    nz: usize,
    name: &'static str,
) -> KernelReport {
    assert!(
        nx.is_multiple_of(TILE) && nz.is_multiple_of(TILE),
        "transpose dims must be multiples of the {TILE}-wide tile"
    );
    // 64 threads handle a 16x16 tile in four 16-lane sweeps; the tile lives
    // in shared memory with a pad word per row to kill bank conflicts.
    let res = transpose_resources();
    let grid = gpu.fill_grid(&res);
    let cfg = transpose_config(nz.max(ny), grid, name);

    let tiles_x = nx / TILE;
    let tiles_z = nz / TILE;
    let tiles_total = tiles_x * tiles_z * ny;
    let rows_per_thread_pass = TILE / (64 / TILE); // 4 rows per sweep of 64 threads

    gpu.launch_coop(&cfg, |blk| {
        let mut tile = blk.block;
        while tile < tiles_total {
            let tx = tile % tiles_x;
            let rest = tile / tiles_x;
            let tz = rest % tiles_z;
            let y = rest / tiles_z;
            let x0 = tx * TILE;
            let z0 = tz * TILE;

            // Gather: lane i reads x0+i (coalesced) for 4 z-rows per sweep.
            blk.threads(|t, ctx| {
                let i = t % TILE;
                let j0 = (t / TILE) * rows_per_thread_pass;
                for dj in 0..rows_per_thread_pass {
                    let j = j0 + dj;
                    let v = ctx.ld(src, (x0 + i) + nx * (y + ny * (z0 + j)));
                    let w = j * (TILE + 1) + i;
                    ctx.sh_write(w, v.re);
                    ctx.sh_write(TILE * (TILE + 1) + w, v.im);
                }
            });
            blk.sync();
            // Scatter: lane i writes z0+i (coalesced) for 4 x-rows per sweep.
            blk.threads(|t, ctx| {
                let i = t % TILE;
                let j0 = (t / TILE) * rows_per_thread_pass;
                for dj in 0..rows_per_thread_pass {
                    let j = j0 + dj; // x offset within tile
                    let w = i * (TILE + 1) + j;
                    let v = Complex32::new(ctx.sh_read(w), ctx.sh_read(TILE * (TILE + 1) + w));
                    ctx.st(dst, (z0 + i) + nz * ((x0 + j) + nx * y), v);
                }
            });
            blk.sync();
            tile += blk.grid_dim;
        }
    })
}

/// Per-plane 2-D transpose of a batch of planes:
/// `dst[y + ny*(x + nx*p)] = src[x + nx*(y + ny*p)]` for `p in 0..planes`.
///
/// Same 16x16 padded-tile structure as [`run_rotate_zxy`]; used by the 2-D
/// plan API.
pub fn run_transpose_2d(
    gpu: &mut Gpu,
    src: BufferId,
    dst: BufferId,
    nx: usize,
    ny: usize,
    planes: usize,
    name: &'static str,
) -> KernelReport {
    assert!(
        nx.is_multiple_of(TILE) && ny.is_multiple_of(TILE),
        "transpose dims must be multiples of the {TILE}-wide tile"
    );
    let res = transpose_resources();
    let grid = gpu.fill_grid(&res);
    let cfg = transpose_config(ny.max(nx), grid, name);

    let tiles_x = nx / TILE;
    let tiles_y = ny / TILE;
    let tiles_total = tiles_x * tiles_y * planes;
    let rows_per_thread_pass = TILE / (64 / TILE);

    gpu.launch_coop(&cfg, |blk| {
        let mut tile = blk.block;
        while tile < tiles_total {
            let tx = tile % tiles_x;
            let rest = tile / tiles_x;
            let ty = rest % tiles_y;
            let p = rest / tiles_y;
            let x0 = tx * TILE;
            let y0 = ty * TILE;
            let in_base = nx * ny * p;
            blk.threads(|t, ctx| {
                let i = t % TILE;
                let j0 = (t / TILE) * rows_per_thread_pass;
                for dj in 0..rows_per_thread_pass {
                    let j = j0 + dj;
                    let v = ctx.ld(src, in_base + (x0 + i) + nx * (y0 + j));
                    let w = j * (TILE + 1) + i;
                    ctx.sh_write(w, v.re);
                    ctx.sh_write(TILE * (TILE + 1) + w, v.im);
                }
            });
            blk.sync();
            blk.threads(|t, ctx| {
                let i = t % TILE;
                let j0 = (t / TILE) * rows_per_thread_pass;
                for dj in 0..rows_per_thread_pass {
                    let j = j0 + dj;
                    let w = i * (TILE + 1) + j;
                    let v = Complex32::new(ctx.sh_read(w), ctx.sh_read(TILE * (TILE + 1) + w));
                    ctx.st(dst, in_base + (y0 + i) + ny * (x0 + j), v);
                }
            });
            blk.sync();
            tile += blk.grid_dim;
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft_math::c32;
    use gpu_sim::DeviceSpec;

    #[test]
    fn rotation_is_correct() {
        let (nx, ny, nz) = (16usize, 4, 32);
        let mut g = Gpu::new(DeviceSpec::gt8800());
        let src = g.mem_mut().alloc(nx * ny * nz).unwrap();
        let dst = g.mem_mut().alloc(nx * ny * nz).unwrap();
        let host: Vec<Complex32> = (0..nx * ny * nz)
            .map(|i| c32(i as f32, -(i as f32)))
            .collect();
        g.mem_mut().upload(src, 0, &host);
        run_rotate_zxy(&mut g, src, dst, nx, ny, nz, "t");
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let want = host[x + nx * (y + ny * z)];
                    let got = g.mem().read(dst, z + nz * (x + nx * y));
                    assert_eq!(got, want, "({x},{y},{z})");
                }
            }
        }
    }

    #[test]
    fn both_sides_coalesce_and_no_conflicts() {
        let mut g = Gpu::new(DeviceSpec::gts8800());
        let n = 16 * 16 * 16;
        let src = g.mem_mut().alloc(n).unwrap();
        let dst = g.mem_mut().alloc(n).unwrap();
        let rep = run_rotate_zxy(&mut g, src, dst, 16, 16, 16, "t");
        assert!(rep.stats.coalesced_fraction() > 0.999, "{:?}", rep.stats);
        assert_eq!(rep.stats.shared_races, 0);
        assert_eq!(rep.stats.shared_conflict_rate(), 0.0);
    }

    #[test]
    fn transpose_prices_as_stream_copy() {
        // Table 6: the 256³ transpose runs at roughly the 256-stream copy
        // rate (~20.7 GB/s on the GT).
        let mut g = Gpu::new(DeviceSpec::gt8800());
        let n = 32 * 16 * 256;
        let src = g.mem_mut().alloc(n).unwrap();
        let dst = g.mem_mut().alloc(n).unwrap();
        let rep = run_rotate_zxy(&mut g, src, dst, 32, 16, 256, "t");
        assert!(
            (rep.timing.modeled_bandwidth_gbs - 20.5).abs() < 1.0,
            "{:?}",
            rep.timing
        );
    }

    #[test]
    fn transpose_2d_is_correct_per_plane() {
        let (nx, ny, planes) = (16usize, 32, 3);
        let mut g = Gpu::new(DeviceSpec::gt8800());
        let src = g.mem_mut().alloc(nx * ny * planes).unwrap();
        let dst = g.mem_mut().alloc(nx * ny * planes).unwrap();
        let host: Vec<Complex32> = (0..nx * ny * planes).map(|i| c32(i as f32, 1.0)).collect();
        g.mem_mut().upload(src, 0, &host);
        let rep = run_transpose_2d(&mut g, src, dst, nx, ny, planes, "t2d");
        assert!(rep.stats.coalesced_fraction() > 0.999);
        assert_eq!(rep.stats.shared_races, 0);
        for p in 0..planes {
            for y in 0..ny {
                for x in 0..nx {
                    let want = host[x + nx * (y + ny * p)];
                    let got = g.mem().read(dst, y + ny * (x + nx * p));
                    assert_eq!(got, want, "({x},{y},{p})");
                }
            }
        }
    }

    #[test]
    fn triple_rotation_is_identity() {
        let (nx, ny, nz) = (16usize, 16, 16);
        let mut g = Gpu::new(DeviceSpec::gt8800());
        let a = g.mem_mut().alloc(nx * ny * nz).unwrap();
        let b = g.mem_mut().alloc(nx * ny * nz).unwrap();
        let host: Vec<Complex32> = (0..nx * ny * nz).map(|i| c32(i as f32, 0.5)).collect();
        g.mem_mut().upload(a, 0, &host);
        run_rotate_zxy(&mut g, a, b, nx, ny, nz, "t1");
        run_rotate_zxy(&mut g, b, a, nz, nx, ny, "t2");
        run_rotate_zxy(&mut g, a, b, ny, nz, nx, "t3");
        let mut out = vec![Complex32::ZERO; host.len()];
        g.mem_mut().download(b, 0, &mut out);
        assert_eq!(out, host);
    }
}
