//! §3.3: FFTs larger than device memory, split over PCI-Express.
//!
//! "To compute an FFT which is larger than the capacity of the device
//! memory, we divide the large FFT into multiple small FFTs. For example, a
//! 3-D FFT of size 512³ ... is split into eight 3-D FFTs of size
//! 512 x 512 x 64."
//!
//! The decomposition is a decimation-in-time split of the Z axis,
//! `z = slabs·j + s`:
//!
//! * **Stage 1** (per slab `s`, the planes with `z ≡ s (mod slabs)`): upload,
//!   3-D FFT of the slab (full X and Y transforms + the length-`nz/slabs`
//!   half of Z), multiply by the inter-slab twiddle `W_nz^{s·k_j}`
//!   (`MULTIPLY_TWIDDLE(I)`), download into the gathered plane order
//!   `slabs·k_j + s`.
//! * **Stage 2** (per group of `slabs` consecutive planes): upload, compute
//!   the length-`slabs` FFTs across the planes (`FFT1X1X8`), download with
//!   the final digit scatter `k = k_j + (nz/slabs)·k_s`.
//!
//! Every byte crosses PCIe twice, which is why Table 12's performance is
//! transfer-dominated — and why §4.4 argues for keeping working sets on the
//! card.

use crate::elementwise::run_slab_twiddle;
use crate::plan::FftError;
use crate::six_step::SixStepFft;
use fft_math::codelets::{codelet_flops, fft_small};
use fft_math::flops::{nominal_flops_1d, nominal_flops_3d};
use fft_math::twiddle::Direction;
use fft_math::Complex32;
use gpu_sim::pcie::{transfer_time, Dir as PcieDir};
use gpu_sim::timing::KernelTiming;
use gpu_sim::{
    DeviceSpec, Gpu, KernelClass, KernelReport, KernelResources, LaunchConfig, StreamId,
};

/// Timing summary of one out-of-core run, structured like Table 12's row.
#[derive(Clone, Debug, Default)]
pub struct OutOfCoreReport {
    /// Stage-1 host-to-device transfer seconds (all slabs).
    pub s1_h2d_s: f64,
    /// Stage-1 on-device 3-D FFT seconds.
    pub s1_fft_s: f64,
    /// Stage-1 twiddle-multiply seconds.
    pub s1_twiddle_s: f64,
    /// Stage-1 device-to-host seconds.
    pub s1_d2h_s: f64,
    /// Stage-2 host-to-device seconds.
    pub s2_h2d_s: f64,
    /// Stage-2 cross-slab FFT seconds.
    pub s2_fft_s: f64,
    /// Stage-2 device-to-host seconds.
    pub s2_d2h_s: f64,
    /// Bytes shipped each way (total both stages).
    pub bytes_transferred: u64,
    /// Nominal FLOPs of the whole transform.
    pub nominal_flops: u64,
    /// Streams the run actually used (after adaptive buffer fallback).
    pub streams: usize,
    /// End-to-end simulated wall-clock seconds. With more than one stream
    /// this is less than [`OutOfCoreReport::total_s`], because transfer
    /// windows hide behind compute; the per-leg columns above always sum
    /// the individual durations.
    pub wall_s: f64,
}

impl OutOfCoreReport {
    /// Total seconds.
    pub fn total_s(&self) -> f64 {
        self.s1_h2d_s
            + self.s1_fft_s
            + self.s1_twiddle_s
            + self.s1_d2h_s
            + self.s2_h2d_s
            + self.s2_fft_s
            + self.s2_d2h_s
    }

    /// Overall nominal GFLOPS.
    pub fn gflops(&self) -> f64 {
        self.nominal_flops as f64 / self.total_s() / 1e9
    }
}

/// An out-of-core 3-D FFT plan: Z decimated into `slabs` card-sized pieces.
pub struct OutOfCoreFft {
    nx: usize,
    ny: usize,
    nz: usize,
    slabs: usize,
    streams: usize,
}

impl OutOfCoreFft {
    /// Plans the decomposition. `slabs` must divide `nz`, the slab Z extent
    /// must still be a power of two, and two slab buffers must fit on the
    /// card.
    ///
    /// # Errors
    /// [`FftError::BadPlanConfig`] for a slab count that cannot decimate
    /// `nz`, and [`FftError::Alloc`] when even two slab buffers exceed
    /// device memory.
    pub fn new(
        spec: &DeviceSpec,
        nx: usize,
        ny: usize,
        nz: usize,
        slabs: usize,
    ) -> Result<Self, FftError> {
        let bad = |reason: String| FftError::BadPlanConfig {
            param: "slabs",
            value: slabs,
            reason,
        };
        if slabs < 2 || !nz.is_multiple_of(slabs) {
            return Err(bad(format!("slabs must divide nz = {nz} (and be >= 2)")));
        }
        let slab_z = nz / slabs;
        if !slab_z.is_power_of_two() || !slabs.is_power_of_two() {
            return Err(bad(format!(
                "slabs and the slab Z extent {slab_z} must both be powers of two"
            )));
        }
        if slabs > 16 {
            return Err(bad("cross-slab FFT must fit a codelet (<= 16)".into()));
        }
        let slab_bytes = (nx * ny * slab_z) as u64 * 8;
        if 2 * slab_bytes > spec.memory_bytes {
            return Err(FftError::Alloc(gpu_sim::AllocError {
                requested: 2 * slab_bytes,
                free: spec.memory_bytes,
            }));
        }
        Ok(OutOfCoreFft {
            nx,
            ny,
            nz,
            slabs,
            streams: 2,
        })
    }

    /// Sets how many CUDA-style streams [`OutOfCoreFft::execute`] cycles the
    /// slabs over (default 2). Each extra stream needs one more slab buffer
    /// on the card; buffers that don't fit degrade the run gracefully to
    /// fewer streams (down to fully serial at 1).
    ///
    /// # Errors
    /// [`FftError::BadPlanConfig`] for a stream count of zero.
    pub fn with_streams(self, streams: usize) -> Result<Self, FftError> {
        if streams == 0 {
            return Err(FftError::BadPlanConfig {
                param: "streams",
                value: streams,
                reason: "at least one stream is required".into(),
            });
        }
        Ok(OutOfCoreFft { streams, ..self })
    }

    /// Streams requested (the run may use fewer if buffers don't fit).
    pub fn streams(&self) -> usize {
        self.streams
    }

    /// Z extent of one slab.
    pub fn slab_z(&self) -> usize {
        self.nz / self.slabs
    }

    /// Number of slabs.
    pub fn slabs(&self) -> usize {
        self.slabs
    }

    /// Full volume in elements.
    pub fn volume(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Executes the transform on a natural-order host volume, in place.
    ///
    /// Device work runs functionally; the returned report carries the
    /// modelled stage times (Table 12's columns). Slabs are cycled over
    /// [`OutOfCoreFft::with_streams`] CUDA-style streams, one slab buffer
    /// per stream, so each slab's H2D window hides behind the previous
    /// slab's kernels (§4.4 double-buffering) — a recorded trace shows the
    /// overlap directly, and `wall_s` reports the pipelined end-to-end
    /// time. Streams whose extra slab buffer doesn't fit on the card are
    /// dropped, down to a fully serial single-stream run. The report's leg
    /// times sum the individual durations either way.
    ///
    /// # Errors
    /// [`FftError::VolumeMismatch`] when `host.len()` is not the planned
    /// volume, and [`FftError::Alloc`] when the first slab or group buffer
    /// does not fit on the card.
    pub fn execute(
        &self,
        gpu: &mut Gpu,
        host: &mut [Complex32],
        dir: Direction,
    ) -> Result<OutOfCoreReport, FftError> {
        if host.len() != self.volume() {
            return Err(FftError::VolumeMismatch {
                expected: self.volume(),
                got: host.len(),
            });
        }
        let (nx, ny, nz, slabs) = (self.nx, self.ny, self.nz, self.slabs);
        let slab_z = self.slab_z();
        let plane = nx * ny;
        let slab_elems = plane * slab_z;
        let t0 = gpu.clock_s();

        let mut rep = OutOfCoreReport {
            nominal_flops: nominal_flops_3d(nx, ny, nz),
            ..Default::default()
        };
        let mut work_host = vec![Complex32::ZERO; host.len()];
        let mut stage_in = vec![Complex32::ZERO; slab_elems];
        let mut stage_out = vec![Complex32::ZERO; slab_elems];

        // On-device plan, one slab buffer per stream (extras allocated
        // opportunistically), and a single work buffer shared by all
        // streams — safe because only kernels touch it and the device has
        // one compute engine, so kernels never actually overlap.
        let slab_plan = SixStepFft::new(gpu, nx, ny, slab_z);
        let (v, w) = slab_plan.alloc_buffers(gpu)?;
        let mut slab_bufs = vec![v];
        while slab_bufs.len() < self.streams.min(slabs) {
            match gpu.mem_mut().alloc(slab_elems) {
                Ok(b) => slab_bufs.push(b),
                Err(_) => break,
            }
        }
        let k = slab_bufs.len();
        let streams: Vec<StreamId> = (0..k).map(|_| gpu.stream_create()).collect();
        rep.streams = k;

        // ---- Stage 1 ----
        gpu.span_begin("out_of_core_stage1");
        for s in 0..slabs {
            let st = streams[s % k];
            let cur = slab_bufs[s % k];
            // The stream serialises this upload behind slab s-k's download
            // of the same buffer; across streams the H2D engine overlaps
            // other slabs' compute.
            gather_slab(host, &mut stage_in, plane, slab_z, slabs, s);
            let label = format!("pcie_h2d_slab{s}");
            let (r, _) = gpu.memcpy_h2d_async(st, cur, 0, &stage_in, slab_z, &label);
            rep.s1_h2d_s += r.time_s;

            gpu.with_stream(st, |gpu| {
                let span = format!("stage1_slab{s}");
                gpu.span_begin(&span);
                let run = slab_plan.execute(gpu, cur, w, dir);
                rep.s1_fft_s += run.total_time_s();
                rep.s1_twiddle_s += run_slab_twiddle(gpu, cur, plane, slab_z, nz, s, dir)
                    .timing
                    .time_s;
                gpu.span_end(&span);
            });

            let label = format!("pcie_d2h_slab{s}");
            let (r, _) = gpu.memcpy_d2h_async(st, cur, 0, &mut stage_out, slab_z, &label);
            rep.s1_d2h_s += r.time_s;
            // Scatter: slab s's output plane k_j lands at slabs*k_j + s.
            for kj in 0..slab_z {
                let g = slabs * kj + s;
                work_host[g * plane..(g + 1) * plane]
                    .copy_from_slice(&stage_out[kj * plane..(kj + 1) * plane]);
            }
        }
        gpu.synchronize();
        gpu.span_end("out_of_core_stage1");

        // ---- Stage 2 ----
        gpu.span_begin("out_of_core_stage2");
        let group_elems = plane * slabs;
        let first_group = match gpu.mem_mut().alloc(group_elems) {
            Ok(b) => b,
            Err(e) => {
                // Release stage-1 buffers before bailing, so a failed run
                // doesn't pin half the card.
                for b in slab_bufs {
                    gpu.mem_mut().free(b);
                }
                gpu.mem_mut().free(w);
                return Err(e.into());
            }
        };
        let mut group_bufs = vec![first_group];
        while group_bufs.len() < k {
            match gpu.mem_mut().alloc(group_elems) {
                Ok(b) => group_bufs.push(b),
                Err(_) => break,
            }
        }
        let gk = group_bufs.len();
        for i in 0..slab_z {
            let st = streams[i % gk];
            let g2 = group_bufs[i % gk];
            let base = i * slabs;
            let label = format!("pcie_h2d_group{i}");
            let (r, _) = gpu.memcpy_h2d_async(
                st,
                g2,
                0,
                &work_host[base * plane..(base + slabs) * plane],
                slabs,
                &label,
            );
            rep.s2_h2d_s += r.time_s;

            gpu.with_stream(st, |gpu| {
                let span = format!("stage2_group{i}");
                gpu.span_begin(&span);
                let krep = run_cross_plane_fft(gpu, g2, plane, slabs, dir);
                gpu.span_end(&span);
                rep.s2_fft_s += krep.timing.time_s;
            });

            let mut out = vec![Complex32::ZERO; group_elems];
            let label = format!("pcie_d2h_group{i}");
            let (r, _) = gpu.memcpy_d2h_async(st, g2, 0, &mut out, slabs, &label);
            rep.s2_d2h_s += r.time_s;
            // Final scatter: bin k = k_j + slab_z*k_s → plane i + slab_z*ks.
            for ks in 0..slabs {
                let g = i + slab_z * ks;
                host[g * plane..(g + 1) * plane]
                    .copy_from_slice(&out[ks * plane..(ks + 1) * plane]);
            }
        }
        gpu.synchronize();
        gpu.span_end("out_of_core_stage2");
        for b in group_bufs {
            gpu.mem_mut().free(b);
        }
        for b in slab_bufs {
            gpu.mem_mut().free(b);
        }
        gpu.mem_mut().free(w);

        rep.bytes_transferred = 4 * self.volume() as u64 * 8;
        rep.wall_s = gpu.clock_s() - t0;
        Ok(rep)
    }

    /// Analytic estimate with **asynchronous transfer overlap** — the §4.4
    /// extension ("the latest devices support asynchronous transfers, which
    /// enable overlap between data transfer and computation").
    ///
    /// With double-buffered slabs, each stage becomes a three-deep pipeline
    /// (upload | compute | download); its steady-state time is the maximum
    /// of the three totals, plus one fill and one drain leg.
    pub fn estimate_overlapped(&self, spec: &DeviceSpec) -> OutOfCoreReport {
        let serial = self.estimate(spec);
        let slabs = self.slabs as f64;
        let groups = self.slab_z() as f64;

        let s1_compute = serial.s1_fft_s + serial.s1_twiddle_s;
        let s1 = (serial.s1_h2d_s.max(s1_compute).max(serial.s1_d2h_s))
            + serial.s1_h2d_s / slabs
            + serial.s1_d2h_s / slabs;
        let s2 = (serial.s2_h2d_s.max(serial.s2_fft_s).max(serial.s2_d2h_s))
            + serial.s2_h2d_s / groups
            + serial.s2_d2h_s / groups;

        // Attribute the pipelined time back to the dominant legs so the
        // report columns stay meaningful: scale every leg by the stage's
        // compression factor.
        let f1 = s1 / (serial.s1_h2d_s + s1_compute + serial.s1_d2h_s);
        let f2 = s2 / (serial.s2_h2d_s + serial.s2_fft_s + serial.s2_d2h_s);
        OutOfCoreReport {
            s1_h2d_s: serial.s1_h2d_s * f1,
            s1_fft_s: serial.s1_fft_s * f1,
            s1_twiddle_s: serial.s1_twiddle_s * f1,
            s1_d2h_s: serial.s1_d2h_s * f1,
            s2_h2d_s: serial.s2_h2d_s * f2,
            s2_fft_s: serial.s2_fft_s * f2,
            s2_d2h_s: serial.s2_d2h_s * f2,
            streams: 2,
            wall_s: s1 + s2,
            ..serial
        }
    }

    /// Analytic Table 12 estimate (no functional execution, any size).
    pub fn estimate(&self, spec: &DeviceSpec) -> OutOfCoreReport {
        let (nx, ny, nz, slabs) = (self.nx, self.ny, self.nz, self.slabs);
        let slab_z = self.slab_z();
        let plane = nx * ny;
        let slab_bytes = (plane * slab_z) as u64 * 8;
        let group_bytes = (plane * slabs) as u64 * 8;
        let n_groups = slab_z;

        let slab_fft: f64 = SixStepFft::estimate(spec, nx, ny, slab_z)
            .iter()
            .map(|(_, t)| t.time_s)
            .sum();
        let twiddle = {
            // One read+write pass over the slab at streaming bandwidth.
            let bw = gpu_sim::dram::copy_base_gbs(spec) * 1e9;
            2.0 * slab_bytes as f64 / bw
        };
        let s2_fft = cross_plane_estimate(spec, plane, slabs).time_s * n_groups as f64;

        let mut rep = OutOfCoreReport {
            s1_h2d_s: slabs as f64
                * transfer_time(spec.pcie, PcieDir::H2D, slab_bytes, slab_z).time_s,
            s1_fft_s: slabs as f64 * slab_fft,
            s1_twiddle_s: slabs as f64 * twiddle,
            s1_d2h_s: slabs as f64
                * transfer_time(spec.pcie, PcieDir::D2H, slab_bytes, slab_z).time_s,
            s2_h2d_s: n_groups as f64
                * transfer_time(spec.pcie, PcieDir::H2D, group_bytes, slabs).time_s,
            s2_fft_s: s2_fft,
            s2_d2h_s: n_groups as f64
                * transfer_time(spec.pcie, PcieDir::D2H, group_bytes, slabs).time_s,
            bytes_transferred: 4 * self.volume() as u64 * 8,
            nominal_flops: nominal_flops_3d(nx, ny, nz),
            streams: 1,
            wall_s: 0.0,
        };
        rep.wall_s = rep.total_s();
        rep
    }
}

/// Gathers slab `s`'s decimated planes (`z = slabs·j + s`) into `dst`.
fn gather_slab(
    host: &[Complex32],
    dst: &mut [Complex32],
    plane: usize,
    slab_z: usize,
    slabs: usize,
    s: usize,
) {
    for j in 0..slab_z {
        let z = slabs * j + s;
        dst[j * plane..(j + 1) * plane].copy_from_slice(&host[z * plane..(z + 1) * plane]);
    }
}

fn cross_plane_cfg(plane: usize, slabs: usize, grid: usize) -> LaunchConfig {
    LaunchConfig {
        name: "fft_cross_plane",
        grid_blocks: grid,
        resources: KernelResources {
            threads_per_block: 64,
            regs_per_thread: 3 * slabs + 4,
            shared_bytes_per_block: 0,
        },
        class: KernelClass::RegisterFft,
        read_pattern: crate::cufft_like::classify_stride(plane * 8),
        write_pattern: crate::cufft_like::classify_stride(plane * 8),
        in_place: true,
        nominal_flops: plane as u64 * nominal_flops_1d(slabs),
        streams: slabs,
    }
}

fn cross_plane_estimate(spec: &DeviceSpec, plane: usize, slabs: usize) -> KernelTiming {
    let cfg = cross_plane_cfg(plane, slabs, 1);
    let occ = gpu_sim::occupancy(&spec.arch, &cfg.resources);
    gpu_sim::timing::estimate_pass(spec, &cfg, &occ, (plane * slabs) as u64)
}

/// The `FFT1X1X8` kernel: length-`slabs` FFTs across `slabs` consecutive
/// planes, one transform per thread (coarse-grained, registers).
fn run_cross_plane_fft(
    gpu: &mut Gpu,
    buf: gpu_sim::BufferId,
    plane: usize,
    slabs: usize,
    dir: Direction,
) -> KernelReport {
    let grid = gpu.fill_grid(&cross_plane_cfg(plane, slabs, 1).resources);
    let cfg = cross_plane_cfg(plane, slabs, grid);
    let total = grid * 64;
    let fl = codelet_flops(slabs) as u64;
    gpu.launch(&cfg, |t| {
        let mut buf16 = [Complex32::ZERO; 16];
        let mut r = t.gid();
        while r < plane {
            for (j, v) in buf16[..slabs].iter_mut().enumerate() {
                *v = t.ld(buf, r + j * plane);
            }
            fft_small(&mut buf16[..slabs], dir);
            t.flops(fl);
            for (j, v) in buf16[..slabs].iter().enumerate() {
                t.st(buf, r + j * plane, *v);
            }
            r += total;
        }
    })
}

/// Converts an out-of-core report into a one-line summary.
pub fn summarize(rep: &OutOfCoreReport, dims: (usize, usize, usize)) -> String {
    format!(
        "out-of-core {}x{}x{}: total {:.3} s ({:.1} GFLOPS) | stage1: h2d {:.3} fft {:.3} tw {:.3} d2h {:.3} | stage2: h2d {:.3} fft {:.3} d2h {:.3}",
        dims.0, dims.1, dims.2,
        rep.total_s(), rep.gflops(),
        rep.s1_h2d_s, rep.s1_fft_s, rep.s1_twiddle_s, rep.s1_d2h_s,
        rep.s2_h2d_s, rep.s2_fft_s, rep.s2_d2h_s,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft_math::dft::dft3d_oracle;
    use fft_math::error::rel_l2_error;
    use fft_math::rng::SplitMix64;
    use gpu_sim::DeviceSpec;

    #[test]
    fn out_of_core_matches_oracle() {
        let (nx, ny, nz) = (16usize, 16, 32);
        let spec = DeviceSpec::gts8800();
        let plan = OutOfCoreFft::new(&spec, nx, ny, nz, 2).unwrap();
        let mut gpu = Gpu::new(spec);
        let mut rng = SplitMix64::new(41);
        let orig: Vec<Complex32> = (0..nx * ny * nz)
            .map(|_| Complex32::new(rng.uniform_f32(-1.0, 1.0), rng.uniform_f32(-1.0, 1.0)))
            .collect();
        let mut host = orig.clone();
        let rep = plan
            .execute(&mut gpu, &mut host, Direction::Forward)
            .unwrap();
        let want = dft3d_oracle(&orig, nx, ny, nz, Direction::Forward);
        let err = rel_l2_error(&host, &want);
        assert!(err < 1e-4, "rel err {err}");
        assert!(rep.total_s() > 0.0);
        assert!(rep.s1_h2d_s > 0.0 && rep.s2_d2h_s > 0.0);
    }

    #[test]
    fn out_of_core_matches_in_core_at_larger_size() {
        let (nx, ny, nz) = (16usize, 16, 64);
        let spec = DeviceSpec::gt8800();
        let plan = OutOfCoreFft::new(&spec, nx, ny, nz, 4).unwrap();
        let mut gpu = Gpu::new(spec);
        let mut rng = SplitMix64::new(42);
        let orig: Vec<Complex32> = (0..nx * ny * nz)
            .map(|_| Complex32::new(rng.uniform_f32(-1.0, 1.0), rng.uniform_f32(-1.0, 1.0)))
            .collect();
        let mut host = orig.clone();
        plan.execute(&mut gpu, &mut host, Direction::Forward)
            .unwrap();

        // Reference: the in-core six-step on a fresh device.
        let mut gpu2 = Gpu::new(DeviceSpec::gtx8800());
        let six = SixStepFft::new(&mut gpu2, nx, ny, nz);
        let (v, w) = six.alloc_buffers(&mut gpu2).unwrap();
        six.upload(&mut gpu2, v, &orig);
        six.execute(&mut gpu2, v, w, Direction::Forward);
        let want = six.download(&gpu2, v);
        for (i, (g, wv)) in host.iter().zip(&want).enumerate() {
            assert!((*g - *wv).abs() < 2e-2, "bin {i}: {g} vs {wv}");
        }
    }

    #[test]
    fn estimate_matches_table12_shape() {
        // Table 12 on the GT: total 1.32 s, 13.7 GFLOPS, transfer-dominated.
        let spec = DeviceSpec::gt8800();
        let plan = OutOfCoreFft::new(&spec, 512, 512, 512, 8).unwrap();
        let est = plan.estimate(&spec);
        let total = est.total_s();
        assert!((total - 1.32).abs() / 1.32 < 0.25, "total {total}");
        let transfers = est.s1_h2d_s + est.s1_d2h_s + est.s2_h2d_s + est.s2_d2h_s;
        assert!(transfers > 0.5 * total, "must be transfer-dominated");
        let g = est.gflops();
        assert!((g - 13.7).abs() / 13.7 < 0.3, "gflops {g}");
    }

    #[test]
    fn gtx_slower_than_gt_due_to_pcie() {
        // Table 12: the GTX (PCIe 1.1) total 1.75 s vs GT 1.32 s.
        let gt = DeviceSpec::gt8800();
        let gtx = DeviceSpec::gtx8800();
        let e_gt = OutOfCoreFft::new(&gt, 512, 512, 512, 8)
            .unwrap()
            .estimate(&gt);
        let e_gtx = OutOfCoreFft::new(&gtx, 512, 512, 512, 8)
            .unwrap()
            .estimate(&gtx);
        assert!(e_gtx.total_s() > 1.2 * e_gt.total_s());
    }

    #[test]
    fn overlap_extension_beats_serial() {
        // §4.4: async transfers should hide most of the PCIe time; the
        // pipelined 512³ estimate must be substantially faster while staying
        // bounded below by its longest leg.
        for spec in DeviceSpec::all_cards() {
            let plan = OutOfCoreFft::new(&spec, 512, 512, 512, 8).unwrap();
            let serial = plan.estimate(&spec);
            let overlap = plan.estimate_overlapped(&spec);
            assert!(
                overlap.total_s() < 0.75 * serial.total_s(),
                "{}: {} vs {}",
                spec.name,
                overlap.total_s(),
                serial.total_s()
            );
            let floor =
                (serial.s1_h2d_s.max(serial.s1_fft_s + serial.s1_twiddle_s)).max(serial.s1_d2h_s);
            assert!(overlap.total_s() > floor, "cannot beat the longest leg");
        }
    }

    #[test]
    fn bad_slab_count_rejected() {
        let spec = DeviceSpec::gt8800();
        match OutOfCoreFft::new(&spec, 64, 64, 64, 3) {
            Err(FftError::BadPlanConfig { param, value, .. }) => {
                assert_eq!(param, "slabs");
                assert_eq!(value, 3);
            }
            Err(other) => panic!("expected BadPlanConfig, got {other:?}"),
            Ok(_) => panic!("expected BadPlanConfig, got a plan"),
        }
        assert!(matches!(
            OutOfCoreFft::new(&spec, 64, 64, 64, 4)
                .unwrap()
                .with_streams(0),
            Err(FftError::BadPlanConfig {
                param: "streams",
                ..
            })
        ));
    }

    #[test]
    fn two_streams_beat_serial_wall_clock() {
        let (nx, ny, nz) = (16usize, 16, 64);
        let run = |streams: usize| {
            let spec = DeviceSpec::gts8800();
            let plan = OutOfCoreFft::new(&spec, nx, ny, nz, 4)
                .unwrap()
                .with_streams(streams)
                .unwrap();
            let mut gpu = Gpu::new(spec);
            let mut rng = SplitMix64::new(43);
            let mut host: Vec<Complex32> = (0..nx * ny * nz)
                .map(|_| Complex32::new(rng.uniform_f32(-1.0, 1.0), rng.uniform_f32(-1.0, 1.0)))
                .collect();
            let rep = plan
                .execute(&mut gpu, &mut host, Direction::Forward)
                .unwrap();
            (rep, host)
        };
        let (serial, out1) = run(1);
        let (piped, out2) = run(2);
        assert_eq!(serial.streams, 1);
        assert_eq!(piped.streams, 2);
        // Streams change the schedule, never the numbers.
        assert_eq!(out1, out2);
        // Serial wall-clock is the sum of the legs; two streams hide
        // transfer windows behind compute and finish strictly earlier.
        assert!((serial.wall_s - serial.total_s()).abs() < 1e-9 * serial.total_s());
        assert!(
            piped.wall_s < 0.95 * serial.wall_s,
            "2-stream wall {} vs serial {}",
            piped.wall_s,
            serial.wall_s
        );
        // But never better than the longest single engine's total work.
        let floor = (piped.s1_fft_s + piped.s1_twiddle_s + piped.s2_fft_s)
            .max(piped.s1_h2d_s + piped.s2_h2d_s)
            .max(piped.s1_d2h_s + piped.s2_d2h_s);
        assert!(piped.wall_s >= floor - 1e-12, "wall below engine floor");
    }
}
