//! `bifft` — the bandwidth-intensive 3-D FFT of Nukada et al. (SC 2008),
//! implemented as functional kernels on the simulated CUDA GPU of
//! [`gpu_sim`], together with every baseline the paper evaluates against.
//!
//! * [`five_step`] — the paper's contribution: four coarse-grained 16-point
//!   register passes (Z then Y) plus one fine-grained shared-memory pass (X),
//!   touching device memory only with coalesced A/B/D-pattern streams.
//! * [`six_step`] — the conventional transpose-based baseline.
//! * [`cufft_like`] — a CUFFT-1.1-style baseline (two-pass 1-D kernels,
//!   whole-transform-per-thread multirow Y/Z kernels).
//! * [`noshared`] — the §4.3 shared-memory ablation (Table 9).
//! * [`kernel16`] / [`kernel256`] — the two kernel families.
//! * [`transpose`], [`elementwise`] — supporting device kernels.
//! * [`report`] — per-run timing/bandwidth breakdowns.

#![warn(missing_docs)]

pub mod audit;
pub mod batch;
pub mod cufft_like;
pub mod elementwise;
pub mod five_step;
pub mod kernel16;
pub mod kernel256;
pub mod multi_gpu;
pub mod noshared;
pub mod out_of_core;
pub mod plan;
pub mod report;
pub mod six_step;
pub mod transpose;
pub mod wisdom;

pub use audit::{expected_patterns, ExpectedPattern, PatternAudit, StepAudit};
pub use batch::{Fft1dBatchGpu, Fft2dGpu};
pub use cufft_like::CufftLikeFft;
pub use five_step::FiveStepFft;
pub use kernel256::FineFftPlan;
pub use multi_gpu::{MultiGpuFft3d, MultiGpuReport};
pub use out_of_core::OutOfCoreFft;
pub use plan::{Algorithm, Fft3d, Fft3dBuilder, FftError};
pub use report::{ReportDiff, RunReport, StepDiff};
pub use six_step::SixStepFft;
