//! A CUFFT-1.1-style baseline (the library the paper beats 3x).
//!
//! Two characteristics of the 2007-era CUFFT explain its Figure-1 numbers,
//! and both are reproduced mechanistically here:
//!
//! * **1-D path**: radix kernels executed in two global-memory passes with a
//!   register-hungry, non-fused instruction mix (`KernelClass::LegacyFft`,
//!   calibrated to Table 8's CUFFT1D column — including the GTX losing to
//!   the GTS because the passes are compute-bound).
//! * **3-D path**: no transposes — the Y and Z axes are transformed in place
//!   by *whole-transform-per-thread* multirow kernels. A 256-point transform
//!   per thread needs ~1024 registers, so only 8 threads fit on an SM
//!   (§3.1), and achieved bandwidth collapses to a quarter of saturation.
//!   The Z axis additionally walks C/D-class strides.

use crate::report::RunReport;
use fft_math::fft1d::Fft1dPlan;
use fft_math::flops::{nominal_flops_1d, nominal_flops_3d};
use fft_math::layout::AccessPattern;
use fft_math::twiddle::Direction;
use fft_math::Complex32;
use gpu_sim::occupancy::occupancy;
use gpu_sim::timing::{estimate_pass, KernelTiming};
use gpu_sim::{
    AllocError, BufferId, DeviceSpec, Gpu, KernelClass, KernelReport, KernelResources, LaunchConfig,
};

/// Batched 1-D FFT the way CUFFT 1.1 ran it: the transform's arithmetic
/// split over two full passes through device memory.
///
/// Functionally, pass 1 computes the whole transform and pass 2 copies —
/// together they move exactly the traffic (2 x read+write) and execute
/// exactly the arithmetic (charged half per pass) of the historical two-pass
/// radix pipeline.
pub fn cufft1d_batch(
    gpu: &mut Gpu,
    src: BufferId,
    dst: BufferId,
    n: usize,
    rows: usize,
    dir: Direction,
) -> Vec<KernelReport> {
    let res = KernelResources {
        threads_per_block: 64,
        regs_per_thread: 32,
        shared_bytes_per_block: 4 * 1024,
    };
    let grid = gpu.fill_grid(&res);
    let cfg = |name: &'static str| LaunchConfig {
        name,
        grid_blocks: grid,
        resources: res,
        class: KernelClass::LegacyFft,
        read_pattern: AccessPattern::X,
        write_pattern: AccessPattern::X,
        in_place: false,
        nominal_flops: rows as u64 * nominal_flops_1d(n) / 2,
        streams: 1,
    };
    let plan = Fft1dPlan::new(n);
    let total = grid * 64;
    // Pass 1: one block per row (grid-strided), lanes own interleaved
    // elements so loads and stores coalesce — the shape of the historical
    // radix kernels. The row maths runs at block level over the staged data.
    let r1 = gpu.launch_coop(&cfg("cufft1d_pass1"), |blk| {
        let mut scratch = vec![Complex32::ZERO; n];
        let mut row_buf = vec![Complex32::ZERO; n];
        let mut r = blk.block;
        let grid_dim = blk.grid_dim;
        while r < rows {
            blk.threads(|tid, ctx| {
                let mut j = tid;
                while j < n {
                    row_buf[j] = ctx.ld(src, r * n + j);
                    j += 64;
                }
            });
            plan.execute(&mut row_buf, &mut scratch, dir);
            blk.threads(|tid, ctx| {
                if tid == 0 {
                    ctx.flops(5 * n as u64 * n.trailing_zeros() as u64 / 2);
                }
                let mut j = tid;
                while j < n {
                    ctx.st(dst, r * n + j, row_buf[j]);
                    j += 64;
                }
            });
            r += grid_dim;
        }
    });
    let r2 = gpu.launch(&cfg("cufft1d_pass2"), |t| {
        let mut i = t.gid();
        let len = rows * n;
        while i < len {
            let v = t.ld(dst, i);
            t.st(dst, i, v);
            t.flops(5 * n as u64 / 2);
            i += total;
        }
    });
    vec![r1, r2]
}

/// The multirow whole-axis-per-thread kernel CUFFT 1.1 used for the Y and Z
/// axes: each thread gathers a full `n`-point strided row, transforms it
/// "in registers", and scatters it back.
///
/// A 256-point working set (512+ data registers) cannot actually live in the
/// 8192-register file; the compiler spills roughly half of it to *local
/// memory* — which on G80 is plain device memory, thread-interleaved so the
/// spill traffic at least coalesces. The kernel models that faithfully: half
/// the row takes one extra round trip through a device-resident spill
/// buffer, adding 50% to the pass's useful traffic. Combined with the
/// 8-thread occupancy (§3.1), this reproduces Figure 1's CUFFT3D bars.
#[allow(clippy::too_many_arguments)]
fn run_multirow_axis(
    gpu: &mut Gpu,
    buf: BufferId,
    n: usize,
    stride: usize,
    rows: usize,
    row_index: impl Fn(usize) -> usize + Copy,
    pattern: AccessPattern,
    dir: Direction,
    name: &'static str,
) -> KernelReport {
    // >512 data registers round to a 1024-register allocation; 8-thread
    // blocks are the only launchable shape (§3.1).
    let res = KernelResources {
        threads_per_block: 8,
        regs_per_thread: 1024,
        shared_bytes_per_block: 0,
    };
    let grid = gpu.fill_grid(&res);
    let cfg = LaunchConfig {
        name,
        grid_blocks: grid,
        resources: res,
        class: KernelClass::LegacyFft,
        read_pattern: pattern,
        write_pattern: pattern,
        in_place: true,
        nominal_flops: rows as u64 * nominal_flops_1d(n),
        streams: n,
    };
    let plan = Fft1dPlan::new(n);
    let total = grid * 8;
    let spill_elems = n / 2;
    // Thread-interleaved local-memory spill area (as the hardware lays it out).
    let spill = gpu
        .mem_mut()
        .alloc(spill_elems * total)
        .expect("spill area fits");
    let rep = gpu.launch(&cfg, |t| {
        let mut scratch = vec![Complex32::ZERO; n];
        let mut row_buf = vec![Complex32::ZERO; n];
        let gid = t.gid();
        let mut r = gid;
        while r < rows {
            let base = row_index(r);
            for (j, v) in row_buf.iter_mut().enumerate() {
                *v = t.ld(buf, base + j * stride);
            }
            // Spill the second half of the working set to local memory and
            // reload it (one round trip), then transform.
            for j in 0..spill_elems {
                t.st(spill, j * total + gid, row_buf[spill_elems + j]);
            }
            for j in 0..spill_elems {
                row_buf[spill_elems + j] = t.ld(spill, j * total + gid);
            }
            plan.execute(&mut row_buf, &mut scratch, dir);
            t.flops(5 * n as u64 * n.trailing_zeros() as u64);
            for (j, v) in row_buf.iter().enumerate() {
                t.st(buf, base + j * stride, *v);
            }
            r += total;
        }
    });
    gpu.mem_mut().free(spill);
    rep
}

/// A CUFFT-1.1-style 3-D FFT on the natural layout.
pub struct CufftLikeFft {
    nx: usize,
    ny: usize,
    nz: usize,
}

impl CufftLikeFft {
    /// Plans the transform.
    pub fn new(_gpu: &mut Gpu, nx: usize, ny: usize, nz: usize) -> Self {
        CufftLikeFft { nx, ny, nz }
    }

    /// Total elements.
    pub fn volume(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Allocates data + scratch.
    pub fn alloc_buffers(&self, gpu: &mut Gpu) -> Result<(BufferId, BufferId), AllocError> {
        Ok((
            gpu.mem_mut().alloc(self.volume())?,
            gpu.mem_mut().alloc(self.volume())?,
        ))
    }

    /// Executes: X via the two-pass 1-D path, Y and Z via strided multirow
    /// kernels. Input/output in `v`, natural order.
    pub fn execute(&self, gpu: &mut Gpu, v: BufferId, work: BufferId, dir: Direction) -> RunReport {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let vol = self.volume();
        gpu.span_begin("cufft_like");
        gpu.span_begin("cufft_1d_x");
        let mut steps = cufft1d_batch(gpu, v, work, nx, vol / nx, dir);
        gpu.span_end("cufft_1d_x");
        // Copy result back into v (the 1-D path is out-of-place). Real CUFFT
        // alternated buffers; we fold this copy into the pass structure by
        // running Y from `work` in place... keep it simple: Y and Z operate
        // on `work`, and the final result lives there; we swap names below.
        let y_pattern = classify_stride(nx * 8);
        gpu.span_begin("cufft_y");
        steps.push(run_multirow_axis(
            gpu,
            work,
            ny,
            nx,
            vol / ny,
            move |r| {
                let x = r % nx;
                let z = r / nx;
                x + nx * ny * z
            },
            y_pattern,
            dir,
            "cufft_y_multirow",
        ));
        gpu.span_end("cufft_y");
        let z_pattern = classify_stride(nx * ny * 8);
        gpu.span_begin("cufft_z");
        steps.push(run_multirow_axis(
            gpu,
            work,
            nz,
            nx * ny,
            vol / nz,
            move |r| r,
            z_pattern,
            dir,
            "cufft_z_multirow",
        ));
        gpu.span_end("cufft_z");
        // Final copy back to v, as CUFFT's API contract (out-of-place into
        // the user buffer) required.
        gpu.span_begin("cufft_copyback");
        let res = KernelResources {
            threads_per_block: 64,
            regs_per_thread: 16,
            shared_bytes_per_block: 0,
        };
        let grid = gpu.fill_grid(&res);
        let cfg = LaunchConfig {
            name: "cufft_copyback",
            grid_blocks: grid,
            resources: res,
            class: KernelClass::Copy,
            read_pattern: AccessPattern::X,
            write_pattern: AccessPattern::X,
            in_place: false,
            nominal_flops: 0,
            streams: 1,
        };
        let total = grid * 64;
        steps.push(gpu.launch(&cfg, |t| {
            let mut i = t.gid();
            while i < vol {
                let val = t.ld(work, i);
                t.st(v, i, val);
                i += total;
            }
        }));
        gpu.span_end("cufft_copyback");
        gpu.span_end("cufft_like");
        RunReport {
            algorithm: "cufft-like",
            dims: (nx, ny, nz),
            nominal_flops: nominal_flops_3d(nx, ny, nz),
            steps,
            trace: None,
        }
    }
}

impl CufftLikeFft {
    /// Analytic per-step estimate (same configurations as the functional
    /// kernels; no execution).
    pub fn estimate(
        spec: &DeviceSpec,
        nx: usize,
        ny: usize,
        nz: usize,
    ) -> Vec<(&'static str, KernelTiming)> {
        let vol = (nx * ny * nz) as u64;
        let mut out = Vec::new();
        // Two legacy 1-D passes along X.
        let res1d = KernelResources {
            threads_per_block: 64,
            regs_per_thread: 32,
            shared_bytes_per_block: 4 * 1024,
        };
        let occ = occupancy(&spec.arch, &res1d);
        let grid = spec.sms * occ.blocks_per_sm;
        for name in ["cufft1d_pass1", "cufft1d_pass2"] {
            let cfg = LaunchConfig {
                name,
                grid_blocks: grid,
                resources: res1d,
                class: KernelClass::LegacyFft,
                read_pattern: AccessPattern::X,
                write_pattern: AccessPattern::X,
                in_place: false,
                nominal_flops: vol / nx as u64 * nominal_flops_1d(nx) / 2,
                streams: 1,
            };
            out.push((name, estimate_pass(spec, &cfg, &occ, vol)));
        }
        // Whole-axis-per-thread multirow passes for Y and Z.
        let res_mr = KernelResources {
            threads_per_block: 8,
            regs_per_thread: 1024,
            shared_bytes_per_block: 0,
        };
        let occ = occupancy(&spec.arch, &res_mr);
        let grid = spec.sms * occ.blocks_per_sm;
        for (axis, n, stride, name) in [
            ('y', ny, nx * 8, "cufft_y_multirow"),
            ('z', nz, nx * ny * 8, "cufft_z_multirow"),
        ] {
            let _ = axis;
            let p = classify_stride(stride);
            let cfg = LaunchConfig {
                name,
                grid_blocks: grid,
                resources: res_mr,
                class: KernelClass::LegacyFft,
                read_pattern: p,
                write_pattern: p,
                in_place: true,
                nominal_flops: vol / n as u64 * nominal_flops_1d(n),
                streams: n,
            };
            // +50% traffic: the local-memory spill round trip (see
            // run_multirow_axis).
            out.push((name, estimate_pass(spec, &cfg, &occ, vol * 3 / 2)));
        }
        // Final copy back into the caller's buffer.
        let res_cp = KernelResources {
            threads_per_block: 64,
            regs_per_thread: 16,
            shared_bytes_per_block: 0,
        };
        let occ = occupancy(&spec.arch, &res_cp);
        let cfg = LaunchConfig {
            name: "cufft_copyback",
            grid_blocks: spec.sms * occ.blocks_per_sm,
            resources: res_cp,
            class: KernelClass::Copy,
            read_pattern: AccessPattern::X,
            write_pattern: AccessPattern::X,
            in_place: false,
            nominal_flops: 0,
            streams: 1,
        };
        out.push(("cufft_copyback", estimate_pass(spec, &cfg, &occ, vol)));
        out
    }
}

/// Classifies a byte stride into Table 2's locality classes for the DRAM
/// model (thresholds from the 256³ pattern strides: A = 2 KB, B = 32 KB,
/// C = 512 KB, D = 8 MB).
pub fn classify_stride(stride_bytes: usize) -> AccessPattern {
    if stride_bytes <= 4 * 1024 {
        AccessPattern::A
    } else if stride_bytes <= 64 * 1024 {
        AccessPattern::B
    } else if stride_bytes <= 1024 * 1024 {
        AccessPattern::C
    } else {
        AccessPattern::D
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft_math::dft::dft3d_oracle;
    use fft_math::error::rel_l2_error;
    use fft_math::rng::SplitMix64;
    use gpu_sim::DeviceSpec;

    #[test]
    fn cufft_like_is_numerically_correct() {
        let mut rng = SplitMix64::new(31);
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let plan = CufftLikeFft::new(&mut gpu, 16, 16, 16);
        let (v, w) = plan.alloc_buffers(&mut gpu).unwrap();
        let host: Vec<Complex32> = (0..plan.volume())
            .map(|_| Complex32::new(rng.uniform_f32(-1.0, 1.0), rng.uniform_f32(-1.0, 1.0)))
            .collect();
        gpu.mem_mut().upload(v, 0, &host);
        plan.execute(&mut gpu, v, w, Direction::Forward);
        let mut got = vec![Complex32::ZERO; plan.volume()];
        gpu.mem_mut().download(v, 0, &mut got);
        let want = dft3d_oracle(&host, 16, 16, 16, Direction::Forward);
        assert!(rel_l2_error(&got, &want) < 1e-4);
    }

    #[test]
    fn multirow_kernels_run_at_8_threads_per_sm() {
        let mut gpu = Gpu::new(DeviceSpec::gts8800());
        let plan = CufftLikeFft::new(&mut gpu, 16, 16, 16);
        let (v, w) = plan.alloc_buffers(&mut gpu).unwrap();
        let rep = plan.execute(&mut gpu, v, w, Direction::Forward);
        let y = rep
            .steps
            .iter()
            .find(|s| s.name == "cufft_y_multirow")
            .unwrap();
        assert_eq!(y.occupancy.threads_per_sm, 8);
    }

    #[test]
    fn stride_classes() {
        assert_eq!(classify_stride(2048), AccessPattern::A);
        assert_eq!(classify_stride(32 * 1024), AccessPattern::B);
        assert_eq!(classify_stride(512 * 1024), AccessPattern::C);
        assert_eq!(classify_stride(8 * 1024 * 1024), AccessPattern::D);
    }

    #[test]
    fn cufft1d_is_two_passes() {
        let mut gpu = Gpu::new(DeviceSpec::gtx8800());
        let src = gpu.mem_mut().alloc(256 * 4).unwrap();
        let dst = gpu.mem_mut().alloc(256 * 4).unwrap();
        let reps = cufft1d_batch(&mut gpu, src, dst, 256, 4, Direction::Forward);
        assert_eq!(reps.len(), 2);
    }
}
