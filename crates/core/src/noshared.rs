//! §4.3 ablation: the X-axis transform *without* shared memory (Table 9).
//!
//! "Without shared memory, we are forced to use global memory for data
//! exchange between threads. For this reason, we cannot use fine-grained
//! parallelism, so the transforms for X axis are also divided into two steps
//! of 16-point FFTs... the FFT algorithm fundamentally requires at least one
//! data exchange between threads such that we must either utilize texture
//! memory or non-coalesced memory access for the second step."
//!
//! The first pass reads and writes digit-interleaved layouts that coalesce
//! on both sides; the second pass *cannot* coalesce its gathers (the digits
//! have been consumed), so it either pays the 4x uncoalesced segment
//! penalty or routes the gathers through the texture cache at roughly half
//! the copy bandwidth. Both variants are functional and produce the same
//! spectrum as the shared-memory kernel.

use fft_math::codelets::{codelet_flops, fft_small};
use fft_math::flops::nominal_flops_1d;
use fft_math::layout::{split_radix, AccessPattern};
use fft_math::twiddle::{Direction, InterTwiddle};
use fft_math::Complex32;
use gpu_sim::{BufferId, Gpu, KernelClass, KernelReport, KernelResources, LaunchConfig, TexAccess};

/// How the second pass performs its inter-thread data exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum XExchange {
    /// Reads staged data through the texture cache (Table 9 row 2).
    Texture,
    /// Plain uncoalesced global loads (Table 9 row 3).
    NonCoalesced,
}

/// Runs the no-shared-memory X-axis transform over `rows` contiguous
/// `nx`-point rows: `v` → `work` (digit-interleaved) → `v` (natural order).
///
/// Returns the two kernel reports (first and second 16-point pass).
pub fn run_x_axis_noshared(
    gpu: &mut Gpu,
    v: BufferId,
    work: BufferId,
    nx: usize,
    rows: usize,
    dir: Direction,
    variant: XExchange,
) -> Vec<KernelReport> {
    let (a, b) = split_radix(nx);
    let inter = InterTwiddle::new(b, a, dir);
    let res = KernelResources {
        threads_per_block: 64,
        regs_per_thread: 3 * b.max(a) + 4,
        shared_bytes_per_block: 0,
    };
    let grid = gpu.fill_grid(&res);
    let total = grid * 64;

    // ---- pass 1: FFTs over the high digit n1 (length b) at fixed n2 ----
    // x = a*n1 + n2; output k1 stored back at the same interleaving
    // (w = n2 + a*k1), so lanes (consecutive n2) coalesce on both sides.
    let cfg1 = LaunchConfig {
        name: "x_noshared_1",
        grid_blocks: grid,
        resources: res,
        class: KernelClass::RegisterFft,
        read_pattern: AccessPattern::A,
        write_pattern: AccessPattern::A,
        in_place: false,
        nominal_flops: rows as u64 * nominal_flops_1d(nx) / 2,
        streams: b,
    };
    let sub_rows = rows * a;
    let flops1 = codelet_flops(b) as u64;
    let inter1 = inter.clone();
    let rep1 = gpu.launch(&cfg1, |t| {
        let mut buf = [Complex32::ZERO; 16];
        let mut r = t.gid();
        while r < sub_rows {
            let n2 = r % a;
            let row = r / a;
            let base = row * nx;
            for (n1, slot) in buf[..b].iter_mut().enumerate() {
                *slot = t.ld(v, base + a * n1 + n2);
            }
            fft_small(&mut buf[..b], dir);
            t.flops(flops1);
            for (k1, val) in buf[..b].iter().enumerate() {
                let tw = inter1.get(k1, n2);
                let out = if k1 == 0 || n2 == 0 { *val } else { *val * tw };
                t.st(work, base + n2 + a * k1, out);
            }
            r += total;
        }
    });

    // ---- pass 2: FFTs over the low digit n2 (length a) at fixed k1 ----
    // Gathers w = n2 + a*k1 (lane stride a: uncoalescable); scatters the
    // natural order x = k1 + b*k2 (lanes consecutive in k1: coalesced).
    let tex = (variant == XExchange::Texture).then(|| {
        let snapshot = gpu.mem().as_slice(work).to_vec();
        gpu.bind_texture(snapshot, TexAccess::Strided)
    });
    let cfg2 = LaunchConfig {
        name: match variant {
            XExchange::Texture => "x_noshared_2_tex",
            XExchange::NonCoalesced => "x_noshared_2_nc",
        },
        grid_blocks: grid,
        resources: res,
        class: KernelClass::RegisterFft,
        read_pattern: AccessPattern::A,
        write_pattern: AccessPattern::A,
        in_place: false,
        nominal_flops: rows as u64 * nominal_flops_1d(nx) / 2,
        streams: a,
    };
    let sub_rows2 = rows * b;
    let flops2 = codelet_flops(a) as u64;
    let rep2 = gpu.launch(&cfg2, |t| {
        let mut buf = [Complex32::ZERO; 16];
        let mut r = t.gid();
        while r < sub_rows2 {
            let k1 = r % b;
            let row = r / b;
            let base = row * nx;
            for (n2, slot) in buf[..a].iter_mut().enumerate() {
                let idx = base + n2 + a * k1;
                *slot = match tex {
                    Some(texid) => t.tex1d(texid, idx),
                    None => t.ld(work, idx),
                };
            }
            fft_small(&mut buf[..a], dir);
            t.flops(flops2);
            for (k2, val) in buf[..a].iter().enumerate() {
                t.st(v, base + k1 + b * k2, *val);
            }
            r += total;
        }
    });

    vec![rep1, rep2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft_math::error::rel_l2_error_f32;
    use fft_math::fft1d::fft_pow2;
    use gpu_sim::DeviceSpec;

    fn signal(n: usize) -> Vec<Complex32> {
        (0..n)
            .map(|i| Complex32::new((0.21 * i as f32).sin(), (0.47 * i as f32).cos()))
            .collect()
    }

    fn run(variant: XExchange, nx: usize, rows: usize) -> (Vec<Complex32>, Vec<KernelReport>) {
        let mut gpu = Gpu::new(DeviceSpec::gts8800());
        let v = gpu.mem_mut().alloc(nx * rows).unwrap();
        let work = gpu.mem_mut().alloc(nx * rows).unwrap();
        let host = signal(nx * rows);
        gpu.mem_mut().upload(v, 0, &host);
        let reps = run_x_axis_noshared(&mut gpu, v, work, nx, rows, Direction::Forward, variant);
        let mut out = vec![Complex32::ZERO; nx * rows];
        gpu.mem_mut().download(v, 0, &mut out);
        (out, reps)
    }

    #[test]
    fn both_variants_compute_the_fft() {
        for variant in [XExchange::Texture, XExchange::NonCoalesced] {
            let (got, _) = run(variant, 256, 4);
            let host = signal(256 * 4);
            for r in 0..4 {
                let mut want = host[r * 256..(r + 1) * 256].to_vec();
                fft_pow2(&mut want, Direction::Forward);
                let err = rel_l2_error_f32(&got[r * 256..(r + 1) * 256], &want);
                assert!(err < 1e-5, "{variant:?} row {r}: {err}");
            }
        }
    }

    #[test]
    fn noncoalesced_variant_measures_uncoalesced_reads() {
        let (_, reps) = run(XExchange::NonCoalesced, 256, 16);
        assert!(
            reps[0].stats.coalesced_fraction() > 0.999,
            "{:?}",
            reps[0].stats
        );
        assert!(
            reps[1].stats.load_coalesce_efficiency() < 0.3,
            "{:?}",
            reps[1].stats
        );
        assert!(reps[1].stats.store_coalesce_efficiency() > 0.999);
    }

    #[test]
    fn texture_variant_reads_through_texture() {
        let (_, reps) = run(XExchange::Texture, 256, 16);
        assert!(reps[1].stats.tex_reads_strided > 0);
        assert_eq!(
            reps[1].stats.loads, 0,
            "second pass must not touch global reads"
        );
    }

    #[test]
    fn table9_ordering_shared_beats_texture_beats_noncoalesced() {
        // Table 9 on the GTS: 5.17 (shared) < 5.11+8.43 (texture) <
        // 5.13+14.3 (not coalesced). Compare the modelled *second* passes.
        let (_, tex) = run(XExchange::Texture, 256, 16);
        let (_, nc) = run(XExchange::NonCoalesced, 256, 16);
        let t_tex: f64 = tex.iter().map(|r| r.timing.time_s).sum();
        let t_nc: f64 = nc.iter().map(|r| r.timing.time_s).sum();
        assert!(
            t_tex < t_nc,
            "texture {t_tex} must beat non-coalesced {t_nc}"
        );
        // Memory time (launch overhead excluded — the test volume is tiny):
        // the uncoalesced exchange pays the ~2.5x segment penalty.
        assert!(
            nc[1].timing.mem_time_s > 2.0 * nc[0].timing.mem_time_s,
            "the uncoalesced exchange dominates: {:?} vs {:?}",
            nc[1].timing,
            nc[0].timing
        );
    }
}
