//! Plan cache ("wisdom", in the FFTW sense).
//!
//! Planning the fine-grained kernel involves the bank-conflict search of
//! [`crate::kernel256::FineFftPlan::new`]; applications that create many
//! transforms of the same lengths (the docking rotation sweep, the out-of-
//! core slab loop) shouldn't repeat it. This process-wide cache memoises
//! plans by length, like FFTW's wisdom memoises its planner output.

use crate::kernel256::FineFftPlan;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

static CACHE: Mutex<Option<HashMap<usize, Arc<FineFftPlan>>>> = Mutex::new(None);
static HITS: Mutex<u64> = Mutex::new(0);
static MISSES: Mutex<u64> = Mutex::new(0);

/// Returns the cached plan for length `n`, planning it on first use.
pub fn plan_arc(n: usize) -> Arc<FineFftPlan> {
    let mut guard = CACHE.lock();
    let map = guard.get_or_insert_with(HashMap::new);
    if let Some(p) = map.get(&n) {
        *HITS.lock() += 1;
        return Arc::clone(p);
    }
    *MISSES.lock() += 1;
    let p = Arc::new(FineFftPlan::new(n));
    map.insert(n, Arc::clone(&p));
    p
}

/// Returns an owned cached plan (cheap clone of the memoised schedule).
pub fn plan(n: usize) -> FineFftPlan {
    plan_arc(n).as_ref().clone()
}

/// `(hits, misses)` since process start or the last [`clear`].
pub fn stats() -> (u64, u64) {
    (*HITS.lock(), *MISSES.lock())
}

/// Drops all memoised plans and resets the counters.
pub fn clear() {
    *CACHE.lock() = None;
    *HITS.lock() = 0;
    *MISSES.lock() = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hits_after_first_plan() {
        // Serialise against other tests through the cache's own lock:
        // clear, then measure a fresh length twice.
        clear();
        let (_, m0) = stats();
        let a = plan_arc(512);
        let b = plan_arc(512);
        assert!(Arc::ptr_eq(&a, &b));
        let (h1, m1) = stats();
        assert_eq!(m1 - m0, 1);
        assert!(h1 >= 1);
    }

    #[test]
    fn cached_plan_equals_fresh_plan() {
        let cached = plan(256);
        let fresh = FineFftPlan::new(256);
        assert_eq!(cached.stages(), fresh.stages());
        assert_eq!(cached.shared_words(), fresh.shared_words());
        assert_eq!(cached.planned_conflicts, 0);
    }
}
