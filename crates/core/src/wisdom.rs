//! Plan cache ("wisdom", in the FFTW sense).
//!
//! Planning the fine-grained kernel involves the bank-conflict search of
//! [`crate::kernel256::FineFftPlan::new`]; applications that create many
//! transforms of the same lengths (the docking rotation sweep, the out-of-
//! core slab loop) shouldn't repeat it. This process-wide cache memoises
//! plans by length, like FFTW's wisdom memoises its planner output.

use crate::kernel256::FineFftPlan;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The cache and its counters, in one place: the map takes the lock, the
/// counters are atomics so the hot hit path bumps them without re-locking.
struct WisdomState {
    cache: Mutex<Option<HashMap<usize, Arc<FineFftPlan>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

static STATE: WisdomState = WisdomState {
    cache: Mutex::new(None),
    hits: AtomicU64::new(0),
    misses: AtomicU64::new(0),
};

/// A point-in-time snapshot of the cache's effectiveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WisdomStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to plan.
    pub misses: u64,
    /// Distinct lengths currently memoised.
    pub entries: usize,
}

impl WisdomStats {
    /// Hit fraction in `[0, 1]` (1.0 when no lookups happened yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Returns the cached plan for length `n`, planning it on first use.
pub fn plan_arc(n: usize) -> Arc<FineFftPlan> {
    let mut guard = STATE.cache.lock().unwrap();
    let map = guard.get_or_insert_with(HashMap::new);
    if let Some(p) = map.get(&n) {
        STATE.hits.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(p);
    }
    STATE.misses.fetch_add(1, Ordering::Relaxed);
    let p = Arc::new(FineFftPlan::new(n));
    map.insert(n, Arc::clone(&p));
    p
}

/// Returns an owned cached plan (cheap clone of the memoised schedule).
pub fn plan(n: usize) -> FineFftPlan {
    plan_arc(n).as_ref().clone()
}

/// Snapshot of hits/misses/entries since process start or the last [`clear`].
pub fn stats() -> WisdomStats {
    let entries = STATE.cache.lock().unwrap().as_ref().map_or(0, HashMap::len);
    WisdomStats {
        hits: STATE.hits.load(Ordering::Relaxed),
        misses: STATE.misses.load(Ordering::Relaxed),
        entries,
    }
}

/// Drops all memoised plans and resets the counters.
pub fn clear() {
    *STATE.cache.lock().unwrap() = None;
    STATE.hits.store(0, Ordering::Relaxed);
    STATE.misses.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hits_after_first_plan() {
        // Other tests share the process-wide cache, so measure deltas only.
        let s0 = stats();
        let a = plan_arc(512);
        let b = plan_arc(512);
        assert!(Arc::ptr_eq(&a, &b));
        let s1 = stats();
        assert!(s1.hits > s0.hits, "second lookup hits");
        assert!(s1.entries >= 1);
        assert!(s1.hit_rate() > 0.0);
    }

    #[test]
    fn cached_plan_equals_fresh_plan() {
        let cached = plan(256);
        let fresh = FineFftPlan::new(256);
        assert_eq!(cached.stages(), fresh.stages());
        assert_eq!(cached.shared_words(), fresh.shared_words());
        assert_eq!(cached.planned_conflicts, 0);
    }
}
