//! Expected-vs-observed access-pattern auditing (Tables 2–4 as a contract).
//!
//! Each in-core algorithm's steps are annotated here with the pattern pair
//! (read x write) the paper's tables assign them. [`PatternAudit::of_report`]
//! re-derives the *observed* pair of every executed kernel from its sampled
//! address streams ([`gpu_sim::analysis`]) and diffs the two:
//!
//! * the **five-step** kernel must never combine two far-family patterns —
//!   its whole design (Table 4's ordering) exists to avoid the C x C, C x D
//!   and D x D rows that collapse to 0.60–0.72 of copy bandwidth;
//! * the **six-step** baseline's transpose passes *must* exhibit exactly
//!   those pairs — that they do is why Table 7 shows it losing.
//!
//! Matching is by locality *family* (near = X/A/B, far = C/D), not by exact
//! letter: the classifier reads modal strides from sampled half-warps, and a
//! view relabelling can shift a letter within its family without changing
//! the bandwidth story the audit protects.

use crate::report::RunReport;
use fft_math::layout::AccessPattern;
use gpu_sim::analysis::{
    classify_kernel, is_forbidden_pair, pattern_family, KernelPatterns, PatternGeometry,
};

/// Expected (read, write) pattern pair of one named algorithm step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExpectedPattern {
    /// Kernel name as it appears in [`RunReport::steps`].
    pub step: &'static str,
    /// Expected load-stream class.
    pub read: AccessPattern,
    /// Expected store-stream class.
    pub write: AccessPattern,
}

const fn exp(step: &'static str, read: AccessPattern, write: AccessPattern) -> ExpectedPattern {
    ExpectedPattern { step, read, write }
}

/// Five-step expectations (Table 4): the four coarse 16-point passes gather
/// along the decomposed axis (D reads) and scatter back with the small-slot
/// A/B writes; the fine X pass streams contiguously both ways.
pub const FIVE_STEP_EXPECTED: &[ExpectedPattern] = &[
    exp("step1_z16", AccessPattern::D, AccessPattern::A),
    exp("step2_z16", AccessPattern::D, AccessPattern::B),
    exp("step3_y16", AccessPattern::D, AccessPattern::A),
    exp("step4_y16", AccessPattern::D, AccessPattern::B),
    exp("step5_x", AccessPattern::X, AccessPattern::X),
];

/// Six-step expectations: contiguous row FFTs, but every transpose reads a
/// far-stride pattern and scatters to the farthest — the forbidden C x D
/// pair, three times per transform.
pub const SIX_STEP_EXPECTED: &[ExpectedPattern] = &[
    exp("fft_x", AccessPattern::X, AccessPattern::X),
    exp("transpose_zxy", AccessPattern::C, AccessPattern::D),
    exp("fft_z", AccessPattern::X, AccessPattern::X),
    exp("transpose_yzx", AccessPattern::C, AccessPattern::D),
    exp("fft_y", AccessPattern::X, AccessPattern::X),
    exp("transpose_xyz", AccessPattern::C, AccessPattern::D),
];

/// CUFFT-1.1-style expectations: the X passes stream contiguously, while the
/// whole-transform-per-thread multirow Y/Z kernels walk far strides in both
/// directions (the D x D shape behind Table 6's multirow collapse).
pub const CUFFT_LIKE_EXPECTED: &[ExpectedPattern] = &[
    exp("cufft1d_pass1", AccessPattern::X, AccessPattern::X),
    exp("cufft1d_pass2", AccessPattern::X, AccessPattern::X),
    exp("cufft_y_multirow", AccessPattern::D, AccessPattern::D),
    exp("cufft_z_multirow", AccessPattern::D, AccessPattern::D),
    exp("cufft_copyback", AccessPattern::X, AccessPattern::X),
];

/// The expectation table of an algorithm label (as stored in
/// [`RunReport::algorithm`]), empty for algorithms without annotations
/// (out-of-core, multi-GPU composites).
pub fn expected_patterns(algorithm: &str) -> &'static [ExpectedPattern] {
    match algorithm {
        "five-step" => FIVE_STEP_EXPECTED,
        "six-step" => SIX_STEP_EXPECTED,
        "cufft-like" => CUFFT_LIKE_EXPECTED,
        _ => &[],
    }
}

/// One step's expected-vs-observed comparison.
#[derive(Clone, Debug)]
pub struct StepAudit {
    /// Kernel name.
    pub name: &'static str,
    /// Annotated expectation, when the algorithm's table has this step.
    pub expected: Option<(AccessPattern, AccessPattern)>,
    /// Classes observed in the sampled address streams.
    pub observed: KernelPatterns,
    /// Whether each observed stream falls in the same locality family as its
    /// expectation (unannotated steps and unsampled streams pass).
    pub ok: bool,
    /// Whether the observed pair is one of the slow far x far combinations
    /// (C/D x C/D).
    pub forbidden: bool,
}

impl StepAudit {
    /// `"D*A"`-style rendering of the expectation (`"-"` when unannotated).
    pub fn expected_label(&self) -> String {
        match self.expected {
            Some((r, w)) => format!("{}*{}", r.label(), w.label()),
            None => "-".to_string(),
        }
    }
}

/// Result of auditing one run's observed patterns against its algorithm's
/// annotations.
#[derive(Clone, Debug)]
pub struct PatternAudit {
    /// Algorithm label the expectations came from.
    pub algorithm: String,
    /// Volume dimensions of the audited run.
    pub dims: (usize, usize, usize),
    /// Per-step comparisons, in execution order.
    pub steps: Vec<StepAudit>,
}

impl PatternAudit {
    /// Audits a finished run: classifies every step's sampled streams against
    /// the canonical geometry of the run's dimensions and diffs them with the
    /// algorithm's expectation table.
    ///
    /// # Panics
    /// Panics when a dimension is outside the in-core range covered by
    /// [`PatternGeometry::for_dims`] (powers of two up to 256).
    pub fn of_report(rep: &RunReport) -> Self {
        let (nx, ny, nz) = rep.dims;
        let geom = PatternGeometry::for_dims(nx, ny, nz);
        let table = expected_patterns(rep.algorithm);
        let steps = rep
            .steps
            .iter()
            .map(|s| {
                let observed = classify_kernel(&s.stats, &geom);
                let expected = table
                    .iter()
                    .find(|e| e.step == s.name)
                    .map(|e| (e.read, e.write));
                let stream_ok = |exp: AccessPattern, obs: Option<gpu_sim::StreamClass>| {
                    obs.is_none_or(|o| pattern_family(o.pattern) == pattern_family(exp))
                };
                let ok = expected.is_none_or(|(r, w)| {
                    stream_ok(r, observed.load) && stream_ok(w, observed.store)
                });
                let forbidden = match (observed.load, observed.store) {
                    (Some(l), Some(st)) => is_forbidden_pair(l.pattern, st.pattern),
                    _ => false,
                };
                StepAudit {
                    name: s.name,
                    expected,
                    observed,
                    ok,
                    forbidden,
                }
            })
            .collect();
        PatternAudit {
            algorithm: rep.algorithm.to_string(),
            dims: rep.dims,
            steps,
        }
    }

    /// True when every annotated step observed its expected locality
    /// families. Note this is *conformance*, not speed: a clean six-step
    /// audit still carries its three expected forbidden transposes — see
    /// [`PatternAudit::forbidden_count`].
    pub fn clean(&self) -> bool {
        self.steps.iter().all(|s| s.ok)
    }

    /// Number of steps whose observed pair is a far x far combination.
    pub fn forbidden_count(&self) -> usize {
        self.steps.iter().filter(|s| s.forbidden).count()
    }

    /// Human-readable audit table (one line per step).
    pub fn table(&self) -> String {
        let mut out = format!(
            "pattern audit: {} {}x{}x{}\n",
            self.algorithm, self.dims.0, self.dims.1, self.dims.2
        );
        for s in &self.steps {
            out.push_str(&format!(
                "  {:<18} expected {:>5}  observed {:>5}  {}{}\n",
                s.name,
                s.expected_label(),
                s.observed.label(),
                if s.ok { "ok" } else { "MISMATCH" },
                if s.forbidden { "  [far*far]" } else { "" },
            ));
        }
        out
    }
}
