//! The conventional six-step 3-D FFT baseline (§3 of the paper).
//!
//! "Step 1. Compute 1-D FFTs for dimension X. Step 2. Transpose from (x,y,z)
//! to (z,x,y). Step 3. Compute 1-D FFTs for dimension Z. Step 4. Transpose
//! from (z,x,y) to (y,z,x). Step 5. Compute 1-D FFTs for dimension Y.
//! Step 6. Transpose from (y,z,x) to (x,y,z)."
//!
//! The FFT steps reuse the fine-grained shared-memory kernel (they are
//! contiguous batched transforms); the transposes use the tiled rotation
//! kernel, whose bandwidth collapses to the N-stream copy rate — the
//! paper's Table 6 shows exactly this, and it is why the five-step
//! algorithm wins by ~2x despite doing slightly more arithmetic.

use crate::kernel256::{batched_config, bind_twiddle_texture, run_batched_fft, FineFftPlan};
use crate::report::RunReport;
use crate::transpose::{run_rotate_zxy, transpose_config, transpose_resources};
use fft_math::flops::nominal_flops_3d;
use fft_math::twiddle::Direction;
use fft_math::Complex32;
use gpu_sim::occupancy::occupancy;
use gpu_sim::timing::{estimate_pass, KernelTiming};
use gpu_sim::DeviceSpec;
use gpu_sim::{AllocError, BufferId, Gpu, TextureId};

/// A planned six-step 3-D FFT. Operates on the natural row-major layout
/// (`x` fastest) with no packing.
pub struct SixStepFft {
    nx: usize,
    ny: usize,
    nz: usize,
    fine_x: FineFftPlan,
    fine_y: FineFftPlan,
    fine_z: FineFftPlan,
    tw: [[TextureId; 3]; 2], // [dir][axis]
}

impl SixStepFft {
    /// Plans an `nx x ny x nz` transform (dims: powers of two, 16..=512).
    pub fn new(gpu: &mut Gpu, nx: usize, ny: usize, nz: usize) -> Self {
        let fine_x = crate::wisdom::plan(nx);
        let fine_y = crate::wisdom::plan(ny);
        let fine_z = crate::wisdom::plan(nz);
        let tw = [Direction::Forward, Direction::Inverse]
            .map(|d| [nx, ny, nz].map(|n| bind_twiddle_texture(gpu, n, d)));
        SixStepFft {
            nx,
            ny,
            nz,
            fine_x,
            fine_y,
            fine_z,
            tw,
        }
    }

    /// Total complex elements.
    pub fn volume(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Allocates data + scratch buffers.
    pub fn alloc_buffers(&self, gpu: &mut Gpu) -> Result<(BufferId, BufferId), AllocError> {
        Ok((
            gpu.mem_mut().alloc(self.volume())?,
            gpu.mem_mut().alloc(self.volume())?,
        ))
    }

    /// Uploads a natural-order volume.
    pub fn upload(&self, gpu: &mut Gpu, v: BufferId, host: &[Complex32]) {
        gpu.mem_mut().upload(v, 0, host);
    }

    /// Downloads the natural-order spectrum.
    pub fn download(&self, gpu: &Gpu, v: BufferId) -> Vec<Complex32> {
        let mut out = vec![Complex32::ZERO; self.volume()];
        gpu.mem().download(v, 0, &mut out);
        out
    }

    /// Analytic per-step estimate (same configurations as the functional
    /// kernels; no execution).
    pub fn estimate(
        spec: &DeviceSpec,
        nx: usize,
        ny: usize,
        nz: usize,
    ) -> Vec<(&'static str, KernelTiming)> {
        let elems = (nx * ny * nz) as u64;
        let mut out = Vec::with_capacity(6);
        let fft = |n: usize, rows: usize, name: &'static str| {
            let plan = FineFftPlan::new(n);
            let occ = occupancy(&spec.arch, &plan.resources());
            let grid = spec.sms * occ.blocks_per_sm;
            let cfg = batched_config(&plan, rows, grid, false, name);
            (name, estimate_pass(spec, &cfg, &occ, elems))
        };
        let tr = |streams: usize, name: &'static str| {
            let occ = occupancy(&spec.arch, &transpose_resources());
            let grid = spec.sms * occ.blocks_per_sm;
            let cfg = transpose_config(streams, grid, name);
            (name, estimate_pass(spec, &cfg, &occ, elems))
        };
        let vol = nx * ny * nz;
        out.push(fft(nx, vol / nx, "fft_x"));
        out.push(tr(nz.max(ny), "transpose_zxy"));
        out.push(fft(nz, vol / nz, "fft_z"));
        out.push(tr(ny.max(nx), "transpose_yzx"));
        out.push(fft(ny, vol / ny, "fft_y"));
        out.push(tr(nx.max(nz), "transpose_xyz"));
        out
    }

    /// Executes all six steps; input and output live in `v` (natural order).
    #[allow(clippy::vec_init_then_push)] // the pass sequence reads top to bottom
    pub fn execute(&self, gpu: &mut Gpu, v: BufferId, work: BufferId, dir: Direction) -> RunReport {
        let di = match dir {
            Direction::Forward => 0,
            Direction::Inverse => 1,
        };
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let vol = self.volume();
        let mut steps = Vec::with_capacity(6);
        gpu.span_begin("six_step");

        // 1: X-axis FFTs, (x,y,z) rows are contiguous.
        gpu.span_begin("x_fft");
        steps.push(run_batched_fft(
            gpu,
            &self.fine_x,
            v,
            work,
            vol / nx,
            dir,
            self.tw[di][0],
            "fft_x",
        ));
        gpu.span_end("x_fft");
        // 2: (x,y,z) -> (z,x,y).
        gpu.span_begin("transpose_a");
        steps.push(run_rotate_zxy(gpu, work, v, nx, ny, nz, "transpose_zxy"));
        gpu.span_end("transpose_a");
        // 3: Z-axis FFTs, now contiguous.
        gpu.span_begin("z_fft");
        steps.push(run_batched_fft(
            gpu,
            &self.fine_z,
            v,
            work,
            vol / nz,
            dir,
            self.tw[di][2],
            "fft_z",
        ));
        gpu.span_end("z_fft");
        // 4: (z,x,y) -> (y,z,x).
        gpu.span_begin("transpose_b");
        steps.push(run_rotate_zxy(gpu, work, v, nz, nx, ny, "transpose_yzx"));
        gpu.span_end("transpose_b");
        // 5: Y-axis FFTs.
        gpu.span_begin("y_fft");
        steps.push(run_batched_fft(
            gpu,
            &self.fine_y,
            v,
            work,
            vol / ny,
            dir,
            self.tw[di][1],
            "fft_y",
        ));
        gpu.span_end("y_fft");
        // 6: (y,z,x) -> (x,y,z).
        gpu.span_begin("transpose_c");
        steps.push(run_rotate_zxy(gpu, work, v, ny, nz, nx, "transpose_xyz"));
        gpu.span_end("transpose_c");
        gpu.span_end("six_step");

        RunReport {
            algorithm: "six-step",
            dims: (nx, ny, nz),
            nominal_flops: nominal_flops_3d(nx, ny, nz),
            steps,
            trace: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft_math::dft::dft3d_oracle;
    use fft_math::error::rel_l2_error;
    use fft_math::rng::SplitMix64;
    use gpu_sim::DeviceSpec;

    fn random_volume(n: usize, seed: u64) -> Vec<Complex32> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| Complex32::new(rng.uniform_f32(-1.0, 1.0), rng.uniform_f32(-1.0, 1.0)))
            .collect()
    }

    #[test]
    fn matches_3d_oracle() {
        let mut gpu = Gpu::new(DeviceSpec::gtx8800());
        let plan = SixStepFft::new(&mut gpu, 16, 16, 16);
        let (v, w) = plan.alloc_buffers(&mut gpu).unwrap();
        let host = random_volume(plan.volume(), 21);
        plan.upload(&mut gpu, v, &host);
        let rep = plan.execute(&mut gpu, v, w, Direction::Forward);
        // 16-wide rows cannot fully coalesce (see the five-step 16³ test).
        rep.assert_clean_with_floor(0.2);
        let got = plan.download(&gpu, v);
        let want = dft3d_oracle(&host, 16, 16, 16, Direction::Forward);
        assert!(rel_l2_error(&got, &want) < 1e-4);
    }

    #[test]
    fn agrees_with_five_step() {
        use crate::five_step::FiveStepFft;
        let mut gpu = Gpu::new(DeviceSpec::gts8800());
        let host = random_volume(32 * 32 * 32, 22);

        let six = SixStepFft::new(&mut gpu, 32, 32, 32);
        let (v6, w6) = six.alloc_buffers(&mut gpu).unwrap();
        six.upload(&mut gpu, v6, &host);
        six.execute(&mut gpu, v6, w6, Direction::Forward);
        let a = six.download(&gpu, v6);

        let mut gpu2 = Gpu::new(DeviceSpec::gts8800());
        let five = FiveStepFft::new(&mut gpu2, 32, 32, 32);
        let (v5, w5) = five.alloc_buffers(&mut gpu2).unwrap();
        five.upload(&mut gpu2, v5, &host);
        five.execute(&mut gpu2, v5, w5, Direction::Forward);
        let b = five.download(&gpu2, v5);

        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!((*x - *y).abs() < 2e-2, "bin {i}: {x} vs {y}");
        }
    }

    #[test]
    fn roundtrip() {
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let plan = SixStepFft::new(&mut gpu, 16, 32, 16);
        let (v, w) = plan.alloc_buffers(&mut gpu).unwrap();
        let host = random_volume(plan.volume(), 23);
        plan.upload(&mut gpu, v, &host);
        plan.execute(&mut gpu, v, w, Direction::Forward);
        plan.execute(&mut gpu, v, w, Direction::Inverse);
        let got = plan.download(&gpu, v);
        let n = plan.volume() as f32;
        for (g, h) in got.iter().zip(&host) {
            assert!((g.scale(1.0 / n) - *h).abs() < 1e-4);
        }
    }

    #[test]
    fn transposes_dominate_time() {
        // The architectural point of the paper: at 256³-class strides the
        // six-step's transpose steps cost more than its FFT steps.
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let plan = SixStepFft::new(&mut gpu, 64, 64, 64);
        let (v, w) = plan.alloc_buffers(&mut gpu).unwrap();
        let rep = plan.execute(&mut gpu, v, w, Direction::Forward);
        assert_eq!(rep.steps.len(), 6);
        let fft_time = rep.time_of("fft_");
        let tr_time = rep.time_of("transpose");
        assert!(
            tr_time > fft_time,
            "transposes {tr_time} vs ffts {fft_time}"
        );
    }
}
