//! A slab-sharded 3-D FFT across several simulated GPUs.
//!
//! The paper's §4.4 closes by arguing that once a single card's bandwidth is
//! saturated, the next step is more cards. This module shards the volume by
//! Z across `n_gpus` simulated devices:
//!
//! 1. **Local XY pass** — each card uploads its `nz/n_gpus` planes over its
//!    own PCIe link and runs the batched 2-D transform ([`Fft2dGpu`]) on
//!    them.
//! 2. **All-to-all exchange** — an explicit pack kernel rearranges each
//!    card's slab into per-destination chunks (repartitioning from Z-slabs
//!    to Y-slabs); chunks bounce through host memory as a modelled
//!    device-to-host + host-to-device transfer pair, chopped into pieces so
//!    the destination's upload pipelines behind the source's download; an
//!    unpack kernel lands them in Z-major column order.
//! 3. **Local Z pass** — each card runs length-`nz` FFTs over its
//!    `ny/n_gpus · nx` columns ([`Fft1dBatchGpu`]) and downloads its share
//!    of the spectrum.
//!
//! Each card owns an independent simulated clock, so cards genuinely run in
//! parallel; the only cross-card serialisation is the exchange, where a
//! destination's H2D cannot start before the source's D2H of the same piece
//! has landed in host memory. The report's `wall_s` is the makespan over
//! all cards.

use crate::batch::{Fft1dBatchGpu, Fft2dGpu};
use crate::cufft_like::classify_stride;
use crate::kernel256::{batched_config, FineFftPlan};
use crate::plan::FftError;
use crate::transpose::{transpose_config, transpose_resources};
use fft_math::flops::nominal_flops_3d;
use fft_math::twiddle::Direction;
use fft_math::Complex32;
use gpu_sim::pcie::{transfer_time, Dir as PcieDir};
use gpu_sim::timing::estimate_pass;
use gpu_sim::{occupancy, BufferId, CheckReport, DeviceSpec, Gpu, KernelReport, LaunchConfig};

/// Pieces each exchanged chunk is chopped into, so a destination's H2D can
/// start as soon as the first piece has crossed to the host instead of
/// waiting for the whole chunk.
const EXCHANGE_PIECES: usize = 8;

/// Timing summary of one multi-GPU run. Leg columns sum the per-card
/// durations; `wall_s` is the parallel makespan.
#[derive(Clone, Debug, Default)]
pub struct MultiGpuReport {
    /// Cards the run used.
    pub n_gpus: usize,
    /// Host-to-device slab upload seconds (summed over cards).
    pub upload_s: f64,
    /// Local 2-D XY transform seconds.
    pub xy_fft_s: f64,
    /// Pack-kernel seconds (slab → per-destination chunks).
    pub pack_s: f64,
    /// Exchange device-to-host seconds.
    pub exchange_d2h_s: f64,
    /// Exchange host-to-device seconds.
    pub exchange_h2d_s: f64,
    /// Unpack-kernel seconds (chunks → Z-major columns).
    pub unpack_s: f64,
    /// Local Z transform seconds.
    pub z_fft_s: f64,
    /// Device-to-host result download seconds.
    pub download_s: f64,
    /// Bytes crossing PCIe during the exchange (each way, all cards).
    pub bytes_exchanged: u64,
    /// Nominal FLOPs of the whole transform.
    pub nominal_flops: u64,
    /// End-to-end simulated makespan over all cards, seconds.
    pub wall_s: f64,
}

impl MultiGpuReport {
    /// Sum of every leg over every card — the single-card-equivalent time.
    pub fn total_s(&self) -> f64 {
        self.upload_s
            + self.xy_fft_s
            + self.pack_s
            + self.exchange_d2h_s
            + self.exchange_h2d_s
            + self.unpack_s
            + self.z_fft_s
            + self.download_s
    }

    /// Nominal GFLOPS at the parallel makespan.
    pub fn gflops(&self) -> f64 {
        self.nominal_flops as f64 / self.wall_s / 1e9
    }
}

struct Card {
    gpu: Gpu,
    xy: Fft2dGpu,
    zf: Fft1dBatchGpu,
    /// Slab in natural plane order (XY pass runs here in place).
    v: BufferId,
    /// 2-D scratch, then pack/unpack staging (chunk-major).
    w: BufferId,
    /// Z-major columns for the Z pass.
    zmaj: BufferId,
}

/// A 3-D FFT plan sharded across `n_gpus` simulated cards (see the module
/// docs for the pipeline).
pub struct MultiGpuFft3d {
    nx: usize,
    ny: usize,
    nz: usize,
    cards: Vec<Card>,
}

fn validate(n_gpus: usize, nx: usize, ny: usize, nz: usize) -> Result<(), FftError> {
    for (axis, n) in [('x', nx), ('y', ny), ('z', nz)] {
        if !n.is_power_of_two() || !(16..=512).contains(&n) {
            return Err(FftError::UnsupportedSize { axis, n });
        }
    }
    if n_gpus == 0 || !n_gpus.is_power_of_two() {
        return Err(FftError::BadShardCount {
            n_gpus,
            reason: "card count must be a power of two",
        });
    }
    if nz / n_gpus == 0 || ny / n_gpus == 0 {
        return Err(FftError::BadShardCount {
            n_gpus,
            reason: "need at least one Z plane and one Y row per card",
        });
    }
    Ok(())
}

impl MultiGpuFft3d {
    /// Plans the sharded transform and allocates three slab-sized buffers on
    /// each of `n_gpus` fresh simulated cards of the given model.
    ///
    /// # Errors
    /// [`FftError::UnsupportedSize`] for dims outside the kernels' range,
    /// [`FftError::BadShardCount`] when `n_gpus` can't shard the volume, and
    /// [`FftError::Alloc`] when a card can't hold its share.
    pub fn new(
        spec: &DeviceSpec,
        n_gpus: usize,
        nx: usize,
        ny: usize,
        nz: usize,
    ) -> Result<Self, FftError> {
        validate(n_gpus, nx, ny, nz)?;
        let z_loc = nz / n_gpus;
        let slab_elems = nx * ny * z_loc;
        let mut cards = Vec::with_capacity(n_gpus);
        for _ in 0..n_gpus {
            let mut gpu = Gpu::new(*spec);
            let xy = Fft2dGpu::new(&mut gpu, nx, ny);
            let zf = Fft1dBatchGpu::new(&mut gpu, nz)?;
            let v = gpu.mem_mut().alloc(slab_elems)?;
            let w = gpu.mem_mut().alloc(slab_elems)?;
            let zmaj = gpu.mem_mut().alloc(slab_elems)?;
            cards.push(Card {
                gpu,
                xy,
                zf,
                v,
                w,
                zmaj,
            });
        }
        Ok(MultiGpuFft3d { nx, ny, nz, cards })
    }

    /// Cards in the plan.
    pub fn n_gpus(&self) -> usize {
        self.cards.len()
    }

    /// Volume in elements.
    pub fn volume(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Borrow of card `i`'s simulated GPU (trace installation, inspection).
    pub fn gpu_mut(&mut self, i: usize) -> &mut Gpu {
        &mut self.cards[i].gpu
    }

    /// Turns on the validation layer on every card (see
    /// [`Gpu::check_enable`]). Idempotent; collect findings with
    /// [`MultiGpuFft3d::check_report`].
    pub fn check_enable(&mut self) {
        for c in &mut self.cards {
            c.gpu.check_enable();
        }
    }

    /// Diagnostics merged across every card, or `None` when
    /// [`MultiGpuFft3d::check_enable`] was never called. Per-card reports
    /// concatenate; `truncated` is sticky if any card overflowed.
    pub fn check_report(&self) -> Option<CheckReport> {
        let mut merged: Option<CheckReport> = None;
        for c in &self.cards {
            if let Some(rep) = c.gpu.check_report() {
                merged.get_or_insert_with(CheckReport::default).merge(rep);
            }
        }
        merged
    }

    /// Transforms a natural-order host volume, returning the natural-order
    /// result and the timing report. Inverse transforms are unnormalised.
    ///
    /// # Errors
    /// [`FftError::VolumeMismatch`] when `host.len()` isn't the planned
    /// volume.
    pub fn transform(
        &mut self,
        host: &[Complex32],
        dir: Direction,
    ) -> Result<(Vec<Complex32>, MultiGpuReport), FftError> {
        if host.len() != self.volume() {
            return Err(FftError::VolumeMismatch {
                expected: self.volume(),
                got: host.len(),
            });
        }
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let g_count = self.cards.len();
        let plane = nx * ny;
        let z_loc = nz / g_count;
        let y_loc = ny / g_count;
        let slab_elems = plane * z_loc;
        let slab_bytes = slab_elems as u64 * 8;
        let chunk_elems = nx * y_loc * z_loc;
        let chunk_bytes = chunk_elems as u64 * 8;

        let mut rep = MultiGpuReport {
            n_gpus: g_count,
            nominal_flops: nominal_flops_3d(nx, ny, nz),
            bytes_exchanged: (g_count * (g_count - 1)) as u64 * chunk_bytes,
            ..Default::default()
        };
        let t0 = self
            .cards
            .iter()
            .map(|c| c.gpu.clock_s())
            .fold(f64::INFINITY, f64::min);

        // ---- Phase 1: upload own slab, XY transform, pack ----
        for (g, card) in self.cards.iter_mut().enumerate() {
            let slab = &host[g * slab_elems..(g + 1) * slab_elems];
            let label = format!("mgpu_h2d_card{g}");
            rep.upload_s += card
                .gpu
                .pcie_transfer(PcieDir::H2D, slab_bytes, z_loc, &label)
                .time_s;
            card.gpu.mem_mut().upload(card.v, 0, slab);

            let span = format!("mgpu_card{g}_xy");
            card.gpu.span_begin(&span);
            let run = card.xy.execute(&mut card.gpu, card.v, card.w, z_loc, dir);
            rep.xy_fft_s += run.total_time_s();
            card.gpu.span_end(&span);

            rep.pack_s += run_pack(&mut card.gpu, card.v, card.w, nx, y_loc, z_loc, g_count)
                .timing
                .time_s;
        }

        // ---- Phase 2: all-to-all exchange through host staging ----
        // Each chunk crosses in EXCHANGE_PIECES pieces so the destination's
        // H2D pipelines one piece behind the source's D2H.
        let pieces = EXCHANGE_PIECES.min(chunk_elems).max(1);
        let piece_bytes = chunk_bytes.div_ceil(pieces as u64);
        let mut staging = vec![vec![Complex32::ZERO; chunk_elems]; g_count * g_count];
        let mut piece_done = vec![vec![0.0f64; pieces]; g_count * g_count];
        for (s, card) in self.cards.iter_mut().enumerate() {
            for d in 0..g_count {
                if d == s {
                    continue;
                }
                card.gpu
                    .mem()
                    .download(card.w, d * chunk_elems, &mut staging[s * g_count + d]);
                for (p, slot) in piece_done[s * g_count + d].iter_mut().enumerate() {
                    let label = format!("mgpu_d2h_{s}to{d}_p{p}");
                    let (r, done) =
                        card.gpu
                            .pcie_transfer_async(PcieDir::D2H, piece_bytes, 1, &label);
                    rep.exchange_d2h_s += r.time_s;
                    *slot = done;
                }
            }
        }
        for (d, card) in self.cards.iter_mut().enumerate() {
            for s in 0..g_count {
                if s == d {
                    continue;
                }
                for (p, &done) in piece_done[s * g_count + d].iter().enumerate() {
                    // The piece can't leave host memory before the source's
                    // download of it completed — the cross-card dependency.
                    card.gpu.wait_until(done);
                    let label = format!("mgpu_h2d_{s}to{d}_p{p}");
                    let (r, _) = card
                        .gpu
                        .pcie_transfer_async(PcieDir::H2D, piece_bytes, 1, &label);
                    rep.exchange_h2d_s += r.time_s;
                }
                card.gpu.pcie_sync();
                card.gpu
                    .mem_mut()
                    .upload(card.w, s * chunk_elems, &staging[s * g_count + d]);
            }
        }

        // ---- Phase 3: unpack, Z transform, download ----
        let mut out = vec![Complex32::ZERO; host.len()];
        let mut slab_out = vec![Complex32::ZERO; slab_elems];
        for (g, card) in self.cards.iter_mut().enumerate() {
            rep.unpack_s += run_unpack(&mut card.gpu, card.w, card.zmaj, nx, y_loc, z_loc, g_count)
                .timing
                .time_s;

            let span = format!("mgpu_card{g}_z");
            card.gpu.span_begin(&span);
            rep.z_fft_s += card
                .zf
                .execute(&mut card.gpu, card.zmaj, card.zmaj, nx * y_loc, dir)
                .timing
                .time_s;
            card.gpu.span_end(&span);

            let label = format!("mgpu_d2h_card{g}");
            rep.download_s += card
                .gpu
                .pcie_transfer(PcieDir::D2H, slab_bytes, z_loc, &label)
                .time_s;
            card.gpu.mem().download(card.zmaj, 0, &mut slab_out);
            // Scatter the card's Y-slab of full-Z columns back to natural
            // order: out[x + nx*(y + ny*z)] with y = g*y_loc + y_l.
            for y_l in 0..y_loc {
                let y = g * y_loc + y_l;
                for x in 0..nx {
                    let col = &slab_out[(y_l * nx + x) * nz..(y_l * nx + x + 1) * nz];
                    for (z, val) in col.iter().enumerate() {
                        out[x + nx * (y + ny * z)] = *val;
                    }
                }
            }
        }

        rep.wall_s = self
            .cards
            .iter()
            .map(|c| c.gpu.clock_s())
            .fold(0.0, f64::max)
            - t0;
        Ok((out, rep))
    }

    /// Analytic estimate of a sharded run (any size, no functional work):
    /// per-card leg times from the same roofline the kernels use, exchange
    /// modelled with the pieced D2H→H2D pipeline, wall-clock as one card's
    /// serial pipeline (cards run in parallel).
    ///
    /// # Errors
    /// Same validation as [`MultiGpuFft3d::new`], minus allocation.
    pub fn estimate(
        spec: &DeviceSpec,
        n_gpus: usize,
        nx: usize,
        ny: usize,
        nz: usize,
    ) -> Result<MultiGpuReport, FftError> {
        validate(n_gpus, nx, ny, nz)?;
        let z_loc = nz / n_gpus;
        let y_loc = ny / n_gpus;
        let plane = nx * ny;
        let slab_elems = (plane * z_loc) as u64;
        let slab_bytes = slab_elems * 8;
        let chunk_bytes = (nx * y_loc * z_loc) as u64 * 8;

        let fft = |n: usize, rows: usize| {
            let plan = FineFftPlan::new(n);
            let occ = occupancy(&spec.arch, &plan.resources());
            let grid = spec.sms * occ.blocks_per_sm;
            let cfg = batched_config(&plan, rows, grid, false, "fft");
            estimate_pass(spec, &cfg, &occ, slab_elems).time_s
        };
        let tr = |streams: usize| {
            let occ = occupancy(&spec.arch, &transpose_resources());
            let grid = spec.sms * occ.blocks_per_sm;
            let cfg = transpose_config(streams, grid, "tr");
            estimate_pass(spec, &cfg, &occ, slab_elems).time_s
        };
        let rearrange = || {
            let cfg = pack_cfg(plane, 1);
            let occ = occupancy(&spec.arch, &cfg.resources);
            estimate_pass(spec, &cfg, &occ, slab_elems).time_s
        };

        let xy = fft(nx, ny * z_loc) + tr(ny.max(nx)) + fft(ny, nx * z_loc) + tr(nx.max(ny));
        let zf = fft(nz, nx * y_loc);
        let upload = transfer_time(spec.pcie, PcieDir::H2D, slab_bytes, z_loc).time_s;
        let download = transfer_time(spec.pcie, PcieDir::D2H, slab_bytes, z_loc).time_s;

        let (pack, unpack, d2h, h2d, exchange_wall) = if n_gpus > 1 {
            let out_chunks = (n_gpus - 1) as u64;
            let d2h = transfer_time(spec.pcie, PcieDir::D2H, out_chunks * chunk_bytes, 1).time_s;
            let h2d = transfer_time(spec.pcie, PcieDir::H2D, out_chunks * chunk_bytes, 1).time_s;
            // Pieced pipeline: H2D trails D2H by one piece.
            let wall = d2h.max(h2d) + d2h / (out_chunks as f64 * EXCHANGE_PIECES as f64);
            (rearrange(), rearrange(), d2h, h2d, wall)
        } else {
            (0.0, 0.0, 0.0, 0.0, 0.0)
        };

        let wall = upload + xy + pack + exchange_wall + unpack + zf + download;
        Ok(MultiGpuReport {
            n_gpus,
            upload_s: n_gpus as f64 * upload,
            xy_fft_s: n_gpus as f64 * xy,
            pack_s: n_gpus as f64 * pack,
            exchange_d2h_s: n_gpus as f64 * d2h,
            exchange_h2d_s: n_gpus as f64 * h2d,
            unpack_s: n_gpus as f64 * unpack,
            z_fft_s: n_gpus as f64 * zf,
            download_s: n_gpus as f64 * download,
            bytes_exchanged: (n_gpus * (n_gpus - 1)) as u64 * chunk_bytes,
            nominal_flops: nominal_flops_3d(nx, ny, nz),
            wall_s: wall,
        })
    }
}

fn pack_cfg(plane: usize, grid: usize) -> LaunchConfig {
    let mut cfg = LaunchConfig::copy("mgpu_pack", grid, 128);
    // Gathering Z-columns out of plane-major storage strides by a whole
    // plane between consecutive reads.
    cfg.read_pattern = classify_stride(plane * 8);
    cfg
}

/// Pack: rearrange the XY-transformed slab `v` (plane-major, natural order)
/// into `w` as per-destination chunks, `w[d·chunk + (y_l·nx + x)·z_loc + zl]`
/// — the explicit all-to-all rearrangement kernel.
fn run_pack(
    gpu: &mut Gpu,
    v: BufferId,
    w: BufferId,
    nx: usize,
    y_loc: usize,
    z_loc: usize,
    n_gpus: usize,
) -> KernelReport {
    let plane = nx * y_loc * n_gpus;
    let slab = plane * z_loc;
    let chunk = nx * y_loc * z_loc;
    let grid = gpu.fill_grid(&pack_cfg(plane, 1).resources);
    let cfg = pack_cfg(plane, grid);
    let total = grid * 128;
    gpu.launch(&cfg, |t| {
        let mut i = t.gid();
        while i < slab {
            let d = i / chunk;
            let r = i % chunk;
            let col = r / z_loc; // y_l*nx + x
            let zl = r % z_loc;
            let y = d * y_loc + col / nx;
            let x = col % nx;
            let val = t.ld(v, zl * plane + y * nx + x);
            t.st(w, i, val);
            i += total;
        }
    })
}

fn unpack_cfg(nz: usize, grid: usize) -> LaunchConfig {
    let mut cfg = LaunchConfig::copy("mgpu_unpack", grid, 128);
    cfg.write_pattern = classify_stride(nz * 8);
    cfg
}

/// Unpack: scatter received chunks (`w[s·chunk + col·z_loc + zl]`) into
/// Z-major columns `zmaj[col·nz + s·z_loc + zl]` ready for the Z pass.
fn run_unpack(
    gpu: &mut Gpu,
    w: BufferId,
    zmaj: BufferId,
    nx: usize,
    y_loc: usize,
    z_loc: usize,
    n_gpus: usize,
) -> KernelReport {
    let nz = z_loc * n_gpus;
    let chunk = nx * y_loc * z_loc;
    let slab = chunk * n_gpus;
    let grid = gpu.fill_grid(&unpack_cfg(nz, 1).resources);
    let cfg = unpack_cfg(nz, grid);
    let total = grid * 128;
    gpu.launch(&cfg, |t| {
        let mut i = t.gid();
        while i < slab {
            let s = i / chunk;
            let r = i % chunk;
            let col = r / z_loc;
            let zl = r % z_loc;
            let val = t.ld(w, i);
            t.st(zmaj, col * nz + s * z_loc + zl, val);
            i += total;
        }
    })
}

/// One-line summary of a multi-GPU run.
pub fn summarize(rep: &MultiGpuReport, dims: (usize, usize, usize)) -> String {
    format!(
        "multi-gpu {}x{}x{} on {} cards: wall {:.4} s ({:.1} GFLOPS) | up {:.4} xy {:.4} pack {:.4} xchg {:.4}+{:.4} unpack {:.4} z {:.4} down {:.4}",
        dims.0, dims.1, dims.2, rep.n_gpus,
        rep.wall_s, rep.gflops(),
        rep.upload_s, rep.xy_fft_s, rep.pack_s,
        rep.exchange_d2h_s, rep.exchange_h2d_s,
        rep.unpack_s, rep.z_fft_s, rep.download_s,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft_math::dft::dft3d_oracle;
    use fft_math::error::rel_l2_error;
    use fft_math::rng::SplitMix64;

    fn volume(n: usize, seed: u64) -> Vec<Complex32> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| Complex32::new(rng.uniform_f32(-1.0, 1.0), rng.uniform_f32(-1.0, 1.0)))
            .collect()
    }

    #[test]
    fn two_cards_match_the_oracle() {
        let n = 16usize;
        let host = volume(n * n * n, 900);
        let mut plan = MultiGpuFft3d::new(&DeviceSpec::gt8800(), 2, n, n, n).unwrap();
        let (got, rep) = plan.transform(&host, Direction::Forward).unwrap();
        let want = dft3d_oracle(&host, n, n, n, Direction::Forward);
        let err = rel_l2_error(&got, &want);
        assert!(err < 1e-4, "rel err {err}");
        assert_eq!(rep.n_gpus, 2);
        assert!(rep.wall_s > 0.0);
        // Cards overlap: the makespan beats the serial sum of all legs.
        assert!(rep.wall_s < rep.total_s());
        assert_eq!(rep.bytes_exchanged, (n * n * n / 2) as u64 * 8);
    }

    #[test]
    fn four_cards_match_the_oracle() {
        let (nx, ny, nz) = (16usize, 32, 32);
        let host = volume(nx * ny * nz, 901);
        let mut plan = MultiGpuFft3d::new(&DeviceSpec::gts8800(), 4, nx, ny, nz).unwrap();
        let (got, _) = plan.transform(&host, Direction::Forward).unwrap();
        let want = dft3d_oracle(&host, nx, ny, nz, Direction::Forward);
        let err = rel_l2_error(&got, &want);
        assert!(err < 1e-4, "rel err {err}");
    }

    #[test]
    fn shard_validation_is_typed() {
        let spec = DeviceSpec::gt8800();
        assert!(matches!(
            MultiGpuFft3d::new(&spec, 3, 32, 32, 32),
            Err(FftError::BadShardCount { n_gpus: 3, .. })
        ));
        assert!(matches!(
            MultiGpuFft3d::new(&spec, 0, 32, 32, 32),
            Err(FftError::BadShardCount { .. })
        ));
        assert!(matches!(
            MultiGpuFft3d::new(&spec, 2, 8, 32, 32),
            Err(FftError::UnsupportedSize { axis: 'x', n: 8 })
        ));
        let mut plan = MultiGpuFft3d::new(&spec, 2, 16, 16, 16).unwrap();
        assert!(matches!(
            plan.transform(&[Complex32::ZERO; 3], Direction::Forward),
            Err(FftError::VolumeMismatch { .. })
        ));
    }

    #[test]
    fn two_gts_beat_one_at_256_cubed() {
        // The acceptance bar: ≥ 1.5× scaling at 256³ on two 8800 GTs, from
        // the analytic model (a functional 256³ run is minutes of test time).
        let spec = DeviceSpec::gt8800();
        let one = MultiGpuFft3d::estimate(&spec, 1, 256, 256, 256).unwrap();
        let two = MultiGpuFft3d::estimate(&spec, 2, 256, 256, 256).unwrap();
        let speedup = one.wall_s / two.wall_s;
        assert!(
            speedup >= 1.5,
            "2-card speedup {speedup:.2} (one {:.4}s, two {:.4}s)",
            one.wall_s,
            two.wall_s
        );
        let four = MultiGpuFft3d::estimate(&spec, 4, 256, 256, 256).unwrap();
        assert!(four.wall_s < two.wall_s, "4 cards beat 2");
    }

    #[test]
    fn estimate_matches_functional_wall_at_small_size() {
        // The analytic wall and the functional schedule agree to first
        // order (same kernels, same transfer model, same pipeline shape).
        let n = 32usize;
        let spec = DeviceSpec::gt8800();
        let host = volume(n * n * n, 902);
        let mut plan = MultiGpuFft3d::new(&spec, 2, n, n, n).unwrap();
        let (_, run) = plan.transform(&host, Direction::Forward).unwrap();
        let est = MultiGpuFft3d::estimate(&spec, 2, n, n, n).unwrap();
        let ratio = run.wall_s / est.wall_s;
        assert!(
            (0.5..2.0).contains(&ratio),
            "functional {} vs estimate {}",
            run.wall_s,
            est.wall_s
        );
    }
}
