//! The coarse-grained strided-pass kernel (steps 1–4 of the paper).
//!
//! One simulated thread computes one complete small FFT (16 points for 256³)
//! entirely in registers — no shared memory, no inter-thread communication
//! (§3.2: "we employ coarse-grained parallelism, i.e., compute one 16-point
//! FFT transform per thread"). Rows are assigned to threads cyclically with
//! the X digit fastest, so every half-warp touches 16 consecutive complex
//! elements at each strided offset: all global traffic coalesces, and the
//! pass reads pattern D while writing pattern A or B (never C/D x C/D).
//!
//! The first-half passes additionally multiply by the inter-digit twiddle
//! `W_axis^{k1·n2}` — the paper keeps these "in registers", which we model by
//! capturing the host-side table in the kernel closure at zero memory cost.

use fft_math::codelets::{codelet_flops, fft_small};
use fft_math::flops::nominal_flops_1d;
use fft_math::layout::StridedPass;
use fft_math::twiddle::{Direction, InterTwiddle};
use fft_math::Complex32;
use gpu_sim::{BufferId, Gpu, KernelClass, KernelReport, KernelResources, LaunchConfig};

/// Register demand of the coarse kernel for an `n`-point per-thread FFT.
///
/// Calibrated so that n = 16 gives the paper's 51–52 registers (data: 2n,
/// twiddles/temporaries: ~n, addressing: 4).
pub fn coarse_regs(n: usize) -> usize {
    3 * n + 4
}

/// Launch resources for one strided pass.
pub fn coarse_resources(fft_len: usize) -> KernelResources {
    KernelResources {
        threads_per_block: 64,
        regs_per_thread: coarse_regs(fft_len),
        shared_bytes_per_block: 0,
    }
}

/// Builds the launch configuration of one strided pass (shared between the
/// functional path and the analytic estimator).
pub fn pass_config(pass: &StridedPass, grid: usize, name: &'static str) -> LaunchConfig {
    let n = pass.fft_len;
    LaunchConfig {
        name,
        grid_blocks: grid,
        resources: coarse_resources(n),
        class: KernelClass::RegisterFft,
        read_pattern: pass.read_pattern,
        write_pattern: pass.write_pattern,
        in_place: false,
        nominal_flops: (pass.input.len() as u64 / n as u64) * nominal_flops_1d(n),
        streams: n,
    }
}

/// Executes one strided pass (`src` → `dst`) on the device.
///
/// `pass` carries the 5-D views, FFT length, and declared access patterns
/// from [`fft_math::layout::FiveStepPlanLayout::strided_passes`]. The kernel
/// is fully functional; the returned report carries measured coalescing and
/// modelled timing.
pub fn run_strided_pass(
    gpu: &mut Gpu,
    src: BufferId,
    dst: BufferId,
    pass: &StridedPass,
    dir: Direction,
    name: &'static str,
) -> KernelReport {
    let n = pass.fft_len;
    assert!(
        n <= 16,
        "coarse kernel is register-resident: fft_len must be <= 16"
    );
    let in_view = pass.input;
    let out_view = pass.output;
    let rows = in_view.len() / n;

    // Inter-digit twiddles for first halves: W_axis^{k1 * n2} where
    // n2 is the input slot-3 digit (extent axis_len / fft_len).
    let inter = pass
        .first_half
        .then(|| InterTwiddle::new(n, pass.axis_len / n, dir));

    let res = coarse_resources(n);
    let grid = gpu.fill_grid(&res);
    let cfg = pass_config(pass, grid, name);

    let total_threads = grid * res.threads_per_block;
    let flops_per_row = codelet_flops(n) as u64;
    gpu.launch(&cfg, |t| {
        let mut buf = [Complex32::ZERO; 16];
        let mut r = t.gid();
        while r < rows {
            // Row decomposition, X fastest so half-warps coalesce.
            let x = r % in_view.nx;
            let mut rest = r / in_view.nx;
            let f1 = rest % in_view.extents[0];
            rest /= in_view.extents[0];
            let f2 = rest % in_view.extents[1];
            rest /= in_view.extents[1];
            let f3 = rest % in_view.extents[2];

            // Gather the strided row (pattern D read).
            for (j, v) in buf[..n].iter_mut().enumerate() {
                *v = t.ld(src, in_view.index(x, [f1, f2, f3, j]));
            }

            // Register-resident small FFT.
            fft_small(&mut buf[..n], dir);
            t.flops(flops_per_row);

            // Inter-digit twiddle (first halves only): n2 is the input
            // slot-3 digit f3.
            if let Some(tw) = &inter {
                let mut extra = 0u64;
                for (k1, v) in buf[..n].iter_mut().enumerate() {
                    if k1 != 0 && f3 != 0 {
                        *v *= tw.get(k1, f3);
                        extra += 6;
                    }
                }
                t.flops(extra);
            }

            // Scatter with the digit relabelling of the five-step plan:
            // first halves push the new digit into slot 1, second halves
            // into slot 2 (write patterns A and B respectively).
            if pass.first_half {
                for (k, v) in buf[..n].iter().enumerate() {
                    t.st(dst, out_view.index(x, [k, f1, f2, f3]), *v);
                }
            } else {
                for (k, v) in buf[..n].iter().enumerate() {
                    t.st(dst, out_view.index(x, [f1, k, f2, f3]), *v);
                }
            }
            r += total_threads;
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft_math::dft::dft_oracle;
    use fft_math::layout::{AccessPattern, FiveStepPlanLayout};
    use gpu_sim::DeviceSpec;

    fn make_gpu() -> Gpu {
        Gpu::new(DeviceSpec::gts8800())
    }

    /// Runs pass 1 of a small plan and checks each Z_hi-row against the
    /// 1-D oracle with the inter-twiddle applied.
    #[test]
    fn pass1_computes_twiddled_row_ffts() {
        let plan = FiveStepPlanLayout::new(16, 16, 16);
        let pass = plan.strided_passes()[0];
        let n = pass.fft_len; // 4 for 16 = 4x4
        let vol = plan.volume();

        let mut gpu = make_gpu();
        let src = gpu.mem_mut().alloc(vol).unwrap();
        let dst = gpu.mem_mut().alloc(vol).unwrap();
        let host: Vec<Complex32> = (0..vol)
            .map(|i| Complex32::new((i as f32 * 0.37).sin(), (i as f32 * 0.11).cos()))
            .collect();
        gpu.mem_mut().upload(src, 0, &host);

        run_strided_pass(&mut gpu, src, dst, &pass, Direction::Forward, "p1");

        let in_view = pass.input;
        let out_view = pass.output;
        for f1 in 0..in_view.extents[0] {
            for f2 in 0..in_view.extents[1] {
                for f3 in 0..in_view.extents[2] {
                    for x in [0usize, 7, 15] {
                        let row: Vec<Complex32> = (0..n)
                            .map(|j| host[in_view.index(x, [f1, f2, f3, j])])
                            .collect();
                        let want = dft_oracle(&row, Direction::Forward);
                        for (k1, want_k) in want.iter().enumerate() {
                            let tw = fft_math::twiddle::twiddle(
                                k1 * f3,
                                pass.axis_len,
                                Direction::Forward,
                            );
                            let expect = want_k.narrow() * tw;
                            let got = gpu.mem().read(dst, out_view.index(x, [k1, f1, f2, f3]));
                            assert!(
                                (got - expect).abs() < 1e-3,
                                "row ({x},{f1},{f2},{f3}) bin {k1}: {got} vs {expect}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pass_traffic_is_fully_coalesced() {
        let plan = FiveStepPlanLayout::new(64, 16, 16);
        let pass = plan.strided_passes()[0];
        let vol = plan.volume();
        let mut gpu = make_gpu();
        let src = gpu.mem_mut().alloc(vol).unwrap();
        let dst = gpu.mem_mut().alloc(vol).unwrap();
        let rep = run_strided_pass(&mut gpu, src, dst, &pass, Direction::Forward, "p1");
        assert!(rep.stats.coalesced_fraction() > 0.999, "{:?}", rep.stats);
        assert_eq!(rep.stats.loads, vol as u64);
        assert_eq!(rep.stats.stores, vol as u64);
        assert_eq!(
            rep.stats.shared_reads, 0,
            "coarse kernel must not touch shared memory"
        );
    }

    #[test]
    fn pass_patterns_are_d_in_a_or_b_out() {
        let plan = FiveStepPlanLayout::new(16, 16, 16);
        for (i, pass) in plan.strided_passes().iter().enumerate() {
            assert_eq!(pass.read_pattern, AccessPattern::D);
            let want = if i % 2 == 0 {
                AccessPattern::A
            } else {
                AccessPattern::B
            };
            assert_eq!(pass.write_pattern, want);
        }
    }

    #[test]
    fn forward_then_inverse_pass_pair_is_identity_on_z() {
        // Running pass 1 forward then the matching inverse first-half on the
        // *output* undoes the twiddled column FFTs (up to 1/len scaling).
        use fft_math::layout::FiveStepPlanLayout;
        let plan = FiveStepPlanLayout::new(16, 16, 16);
        let passes = plan.strided_passes();
        let vol = plan.volume();
        let mut gpu = make_gpu();
        let a = gpu.mem_mut().alloc(vol).unwrap();
        let b = gpu.mem_mut().alloc(vol).unwrap();
        let host: Vec<Complex32> = (0..vol)
            .map(|i| Complex32::new((i as f32).sin(), (i as f32).cos()))
            .collect();
        gpu.mem_mut().upload(a, 0, &host);
        run_strided_pass(&mut gpu, a, b, &passes[0], Direction::Forward, "fwd");
        // Invert: an inverse pass over the *output's* slot-1 digit with the
        // same (input-view, output-view) roles swapped is pass 1 of the
        // split-swapped plan run on different digits; the cheap check here
        // is numerical: forward pass energy is conserved (unitary x len).
        let out = gpu.mem().as_slice(b);
        let e_in: f64 = host.iter().map(|z| z.norm_sqr() as f64).sum();
        let e_out: f64 =
            out.iter().map(|z| z.norm_sqr() as f64).sum::<f64>() / passes[0].fft_len as f64;
        assert!((e_in - e_out).abs() < 1e-3 * e_in, "{e_in} vs {e_out}");
    }

    #[test]
    fn paper_register_count() {
        // §3.1: "kernels of 16-point FFT with 51 or 52 registers".
        assert_eq!(coarse_regs(16), 52);
    }

    #[test]
    fn occupancy_of_coarse_kernel_is_128_threads() {
        let gpu = make_gpu();
        let occ = gpu_sim::occupancy(&gpu.spec().arch, &coarse_resources(16));
        assert_eq!(occ.threads_per_sm, 128);
    }
}
