//! The unified planning facade: one natural-layout API over all three GPU
//! algorithms.
//!
//! Downstream code (the applications, the examples) mostly wants "a 3-D FFT
//! on this device" without caring which algorithm runs or how the data is
//! laid out on the card. `Fft3d` provides that: natural x-fastest volumes
//! in, natural spectra out, with the algorithm selectable (defaulting to the
//! paper's five-step kernel) and the layout packing handled internally.

use crate::cufft_like::CufftLikeFft;
use crate::five_step::FiveStepFft;
use crate::report::RunReport;
use crate::six_step::SixStepFft;
use fft_math::twiddle::Direction;
use fft_math::Complex32;
use gpu_sim::{AllocError, BufferId, Gpu};

/// Which 3-D FFT algorithm a plan uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// The paper's bandwidth-intensive five-step kernel (the default).
    #[default]
    FiveStep,
    /// The conventional six-step transpose baseline.
    SixStep,
    /// The CUFFT-1.1-style baseline.
    CufftLike,
}

impl Algorithm {
    /// The label used in reports and accepted by the CLI (`"five-step"`,
    /// `"six-step"`, `"cufft-like"`).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::FiveStep => "five-step",
            Algorithm::SixStep => "six-step",
            Algorithm::CufftLike => "cufft-like",
        }
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    /// Parses a CLI-style algorithm name; hyphens/underscores are
    /// interchangeable and `"cufft"` abbreviates `"cufft-like"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().replace('_', "-").as_str() {
            "five-step" | "fivestep" | "5-step" | "five" => Ok(Algorithm::FiveStep),
            "six-step" | "sixstep" | "6-step" | "six" => Ok(Algorithm::SixStep),
            "cufft-like" | "cufftlike" | "cufft" => Ok(Algorithm::CufftLike),
            other => Err(format!(
                "unknown algorithm '{other}' (expected five-step, six-step or cufft-like)"
            )),
        }
    }
}

enum Inner {
    Five(FiveStepFft),
    Six(SixStepFft),
    Cufft(CufftLikeFft),
}

/// A planned 3-D FFT with device buffers attached.
pub struct Fft3d {
    inner: Inner,
    v: BufferId,
    work: BufferId,
    dims: (usize, usize, usize),
}

impl Fft3d {
    /// Plans a transform with the chosen algorithm and allocates its device
    /// buffers.
    ///
    /// # Errors
    /// Returns the allocation error when the volume does not fit on the
    /// card (at which point [`crate::out_of_core::OutOfCoreFft`] is the
    /// tool).
    pub fn new(
        gpu: &mut Gpu,
        algorithm: Algorithm,
        nx: usize,
        ny: usize,
        nz: usize,
    ) -> Result<Self, AllocError> {
        let (inner, v, work) = match algorithm {
            Algorithm::FiveStep => {
                let p = FiveStepFft::new(gpu, nx, ny, nz);
                let (v, w) = p.alloc_buffers(gpu)?;
                (Inner::Five(p), v, w)
            }
            Algorithm::SixStep => {
                let p = SixStepFft::new(gpu, nx, ny, nz);
                let (v, w) = p.alloc_buffers(gpu)?;
                (Inner::Six(p), v, w)
            }
            Algorithm::CufftLike => {
                let p = CufftLikeFft::new(gpu, nx, ny, nz);
                let (v, w) = p.alloc_buffers(gpu)?;
                (Inner::Cufft(p), v, w)
            }
        };
        Ok(Fft3d {
            inner,
            v,
            work,
            dims: (nx, ny, nz),
        })
    }

    /// The algorithm behind this plan.
    pub fn algorithm(&self) -> Algorithm {
        match self.inner {
            Inner::Five(_) => Algorithm::FiveStep,
            Inner::Six(_) => Algorithm::SixStep,
            Inner::Cufft(_) => Algorithm::CufftLike,
        }
    }

    /// Grid dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Volume in elements.
    pub fn volume(&self) -> usize {
        self.dims.0 * self.dims.1 * self.dims.2
    }

    /// Transforms a natural-order host volume, returning the natural-order
    /// result and the per-kernel report. Inverse transforms are left
    /// unnormalised (CUFFT/FFTW convention).
    pub fn transform(
        &self,
        gpu: &mut Gpu,
        host: &[Complex32],
        dir: Direction,
    ) -> (Vec<Complex32>, RunReport) {
        assert_eq!(host.len(), self.volume(), "volume mismatch");
        match &self.inner {
            Inner::Five(p) => {
                // upload packs the natural order into the 5-D input layout;
                // download unpacks the 5-D output layout — both directions
                // of the transform use the same digit bookkeeping.
                p.upload(gpu, self.v, host);
                let rep = p.execute(gpu, self.v, self.work, dir);
                (p.download(gpu, self.v), rep)
            }
            Inner::Six(p) => {
                p.upload(gpu, self.v, host);
                let rep = p.execute(gpu, self.v, self.work, dir);
                (p.download(gpu, self.v), rep)
            }
            Inner::Cufft(p) => {
                gpu.mem_mut().upload(self.v, 0, host);
                let rep = p.execute(gpu, self.v, self.work, dir);
                let mut out = vec![Complex32::ZERO; self.volume()];
                gpu.mem_mut().download(self.v, 0, &mut out);
                (out, rep)
            }
        }
    }

    /// Frees the plan's device buffers.
    pub fn release(self, gpu: &mut Gpu) {
        gpu.mem_mut().free(self.v);
        gpu.mem_mut().free(self.work);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft_math::error::rel_l2_error_f32;
    use gpu_sim::DeviceSpec;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn volume(n: usize, seed: u64) -> Vec<Complex32> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Complex32::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    #[test]
    fn all_algorithms_agree_through_the_facade() {
        let n = 16usize;
        let host = volume(n * n * n, 600);
        let mut results = Vec::new();
        for algo in [
            Algorithm::FiveStep,
            Algorithm::SixStep,
            Algorithm::CufftLike,
        ] {
            let mut gpu = Gpu::new(DeviceSpec::gts8800());
            let plan = Fft3d::new(&mut gpu, algo, n, n, n).unwrap();
            assert_eq!(plan.algorithm(), algo);
            let (out, rep) = plan.transform(&mut gpu, &host, Direction::Forward);
            assert!(rep.total_time_s() > 0.0);
            plan.release(&mut gpu);
            results.push(out);
        }
        for other in &results[1..] {
            assert!(rel_l2_error_f32(other, &results[0]) < 1e-5);
        }
    }

    #[test]
    fn default_algorithm_is_the_papers() {
        assert_eq!(Algorithm::default(), Algorithm::FiveStep);
    }

    #[test]
    fn algorithm_names_parse_back() {
        for algo in [
            Algorithm::FiveStep,
            Algorithm::SixStep,
            Algorithm::CufftLike,
        ] {
            assert_eq!(algo.name().parse::<Algorithm>().unwrap(), algo);
        }
        assert_eq!(
            "five_step".parse::<Algorithm>().unwrap(),
            Algorithm::FiveStep
        );
        assert_eq!("CUFFT".parse::<Algorithm>().unwrap(), Algorithm::CufftLike);
        assert!("seven-step".parse::<Algorithm>().is_err());
    }

    #[test]
    fn release_returns_memory() {
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let before = gpu.mem().used_bytes();
        let plan = Fft3d::new(&mut gpu, Algorithm::FiveStep, 16, 16, 16).unwrap();
        assert!(gpu.mem().used_bytes() > before);
        plan.release(&mut gpu);
        assert_eq!(gpu.mem().used_bytes(), before);
    }

    #[test]
    fn oversized_plan_reports_alloc_error() {
        // A cut-down card (1 MiB) makes the capacity failure cheap to hit.
        let mut spec = DeviceSpec::gts8800();
        spec.memory_bytes = 1 << 20;
        let mut gpu = Gpu::new(spec);
        let r = Fft3d::new(&mut gpu, Algorithm::SixStep, 64, 64, 64);
        assert!(r.is_err(), "two 2 MiB buffers cannot fit in 1 MiB");
    }

    #[test]
    fn forward_inverse_roundtrip_through_facade() {
        let n = 16usize;
        let host = volume(n * n * n, 601);
        let mut gpu = Gpu::new(DeviceSpec::gtx8800());
        let plan = Fft3d::new(&mut gpu, Algorithm::SixStep, n, n, n).unwrap();
        let (spec, _) = plan.transform(&mut gpu, &host, Direction::Forward);
        let (back, _) = plan.transform(&mut gpu, &spec, Direction::Inverse);
        let s = 1.0 / plan.volume() as f32;
        for (b, h) in back.iter().zip(&host) {
            assert!((b.scale(s) - *h).abs() < 1e-4);
        }
    }
}
