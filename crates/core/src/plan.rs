//! The unified planning facade: one natural-layout API over all three GPU
//! algorithms.
//!
//! Downstream code (the applications, the examples) mostly wants "a 3-D FFT
//! on this device" without caring which algorithm runs or how the data is
//! laid out on the card. [`Fft3d`] provides that: natural x-fastest volumes
//! in, natural spectra out, with the algorithm selectable (defaulting to the
//! paper's five-step kernel) and the layout packing handled internally.
//!
//! Plans are built through [`Fft3d::builder`], every recoverable condition
//! comes back as a typed [`FftError`], and device buffers are released by
//! RAII: dropping a plan queues its buffers on the allocator's deferred-free
//! queue, so a forgotten plan cannot leak device memory.

use crate::cufft_like::CufftLikeFft;
use crate::five_step::FiveStepFft;
use crate::report::RunReport;
use crate::six_step::SixStepFft;
use fft_math::twiddle::Direction;
use fft_math::Complex32;
use gpu_sim::timing::KernelTiming;
use gpu_sim::{AllocError, BufferId, DeviceSpec, FreeQueue, Gpu};

/// Which 3-D FFT algorithm a plan uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// The paper's bandwidth-intensive five-step kernel (the default).
    #[default]
    FiveStep,
    /// The conventional six-step transpose baseline.
    SixStep,
    /// The CUFFT-1.1-style baseline.
    CufftLike,
    /// The §3.3 out-of-core slab pipeline for volumes larger than device
    /// memory (see [`crate::out_of_core::OutOfCoreFft`]).
    OutOfCore,
    /// The slab-sharded multi-GPU pipeline
    /// (see [`crate::multi_gpu::MultiGpuFft3d`]).
    MultiGpu,
}

impl Algorithm {
    /// Every algorithm, in report order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::FiveStep,
        Algorithm::SixStep,
        Algorithm::CufftLike,
        Algorithm::OutOfCore,
        Algorithm::MultiGpu,
    ];

    /// The three single-card in-core algorithms [`Fft3d`] can plan directly.
    pub const IN_CORE: [Algorithm; 3] = [
        Algorithm::FiveStep,
        Algorithm::SixStep,
        Algorithm::CufftLike,
    ];

    /// The label used in reports and accepted by the CLI (`"five-step"`,
    /// `"six-step"`, `"cufft-like"`, `"out-of-core"`, `"multi-gpu"`).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::FiveStep => "five-step",
            Algorithm::SixStep => "six-step",
            Algorithm::CufftLike => "cufft-like",
            Algorithm::OutOfCore => "out-of-core",
            Algorithm::MultiGpu => "multi-gpu",
        }
    }

    /// True for the single-card in-core algorithms [`Fft3d`] plans directly;
    /// false for the out-of-core and multi-GPU pipelines, which have their
    /// own entry points.
    pub fn is_in_core(self) -> bool {
        matches!(
            self,
            Algorithm::FiveStep | Algorithm::SixStep | Algorithm::CufftLike
        )
    }

    /// Analytic per-kernel estimate for the in-core algorithms (`None` for
    /// the out-of-core and multi-GPU pipelines, whose estimates live on
    /// their own types and are not per-kernel).
    pub fn estimate_steps(
        self,
        spec: &DeviceSpec,
        nx: usize,
        ny: usize,
        nz: usize,
    ) -> Option<Vec<(&'static str, KernelTiming)>> {
        match self {
            Algorithm::FiveStep => Some(FiveStepFft::estimate(spec, nx, ny, nz)),
            Algorithm::SixStep => Some(SixStepFft::estimate(spec, nx, ny, nz)),
            Algorithm::CufftLike => Some(CufftLikeFft::estimate(spec, nx, ny, nz)),
            Algorithm::OutOfCore | Algorithm::MultiGpu => None,
        }
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    /// Parses a CLI-style algorithm name; hyphens/underscores are
    /// interchangeable, `"cufft"` abbreviates `"cufft-like"`, and the
    /// paper's own names (`"bandwidth-intensive"`, `"conventional"`) are
    /// accepted as aliases.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().replace('_', "-").as_str() {
            "five-step" | "fivestep" | "5-step" | "five" | "bandwidth-intensive" => {
                Ok(Algorithm::FiveStep)
            }
            "six-step" | "sixstep" | "6-step" | "six" | "conventional" => Ok(Algorithm::SixStep),
            "cufft-like" | "cufftlike" | "cufft" => Ok(Algorithm::CufftLike),
            "out-of-core" | "outofcore" | "ooc" => Ok(Algorithm::OutOfCore),
            "multi-gpu" | "multigpu" | "mgpu" => Ok(Algorithm::MultiGpu),
            other => Err(format!(
                "unknown algorithm '{other}' (expected five-step, six-step, cufft-like, \
                 out-of-core or multi-gpu)"
            )),
        }
    }
}

/// Typed error for every recoverable planning/transform condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FftError {
    /// The device buffers do not fit on the card.
    Alloc(AllocError),
    /// The host slice length does not match the planned volume.
    VolumeMismatch {
        /// Elements the plan expects (`nx * ny * nz`).
        expected: usize,
        /// Elements the caller supplied.
        got: usize,
    },
    /// A dimension is outside what the kernels support.
    UnsupportedSize {
        /// Which axis (`'x'`, `'y'` or `'z'`).
        axis: char,
        /// The offending length.
        n: usize,
    },
    /// A multi-GPU shard count that doesn't divide the volume.
    BadShardCount {
        /// Cards requested.
        n_gpus: usize,
        /// Why the count is unusable.
        reason: &'static str,
    },
    /// The algorithm cannot be planned through this entry point.
    UnsupportedAlgorithm {
        /// The requested algorithm.
        algorithm: Algorithm,
        /// What to use instead.
        reason: &'static str,
    },
    /// A plan parameter (slab count, stream count, ...) is out of range.
    BadPlanConfig {
        /// The parameter's name as the builder API spells it.
        param: &'static str,
        /// The rejected value.
        value: usize,
        /// Why it is unusable.
        reason: String,
    },
}

impl std::fmt::Display for FftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FftError::Alloc(e) => write!(f, "{e}"),
            FftError::VolumeMismatch { expected, got } => write!(
                f,
                "volume mismatch: plan covers {expected} elements, host slice has {got}"
            ),
            FftError::UnsupportedSize { axis, n } => write!(
                f,
                "unsupported {axis}-dimension {n}: must be a power of two in 16..=512"
            ),
            FftError::BadShardCount { n_gpus, reason } => {
                write!(f, "cannot shard across {n_gpus} GPUs: {reason}")
            }
            FftError::UnsupportedAlgorithm { algorithm, reason } => {
                write!(f, "cannot plan '{}' here: {reason}", algorithm.name())
            }
            FftError::BadPlanConfig {
                param,
                value,
                reason,
            } => {
                write!(f, "bad plan parameter {param} = {value}: {reason}")
            }
        }
    }
}

impl std::error::Error for FftError {}

impl From<AllocError> for FftError {
    fn from(e: AllocError) -> Self {
        FftError::Alloc(e)
    }
}

/// RAII ownership of a plan's device buffers: on drop, the ids are queued on
/// the arena's deferred-free queue (see [`gpu_sim::FreeQueue`]), so the
/// memory is returned even if the plan is never explicitly released.
struct BufferGuard {
    ids: Vec<BufferId>,
    queue: FreeQueue,
}

impl BufferGuard {
    /// Takes the ids out, disarming the drop path (for explicit release).
    fn disarm(&mut self) -> Vec<BufferId> {
        std::mem::take(&mut self.ids)
    }
}

impl Drop for BufferGuard {
    fn drop(&mut self) {
        self.queue.borrow_mut().extend(self.ids.drain(..));
    }
}

enum Inner {
    Five(FiveStepFft),
    Six(SixStepFft),
    Cufft(CufftLikeFft),
}

/// A planned 3-D FFT with device buffers attached. Built with
/// [`Fft3d::builder`]; buffers are freed when the plan drops.
pub struct Fft3d {
    inner: Inner,
    v: BufferId,
    work: BufferId,
    dims: (usize, usize, usize),
    guard: BufferGuard,
}

/// Builder for [`Fft3d`] (see [`Fft3d::builder`]).
#[derive(Clone, Copy, Debug)]
pub struct Fft3dBuilder {
    nx: usize,
    ny: usize,
    nz: usize,
    algorithm: Algorithm,
    checked: bool,
}

impl Fft3dBuilder {
    /// Selects the algorithm (default: the paper's five-step kernel).
    pub fn algorithm(mut self, a: Algorithm) -> Self {
        self.algorithm = a;
        self
    }

    /// Turns on the cuda-memcheck-style validation layer
    /// ([`gpu_sim::CheckReport`]) for the GPU the plan is built on. The
    /// checker shadows every allocation from this point on and replays the
    /// stream timelines for unordered-overlap hazards; collect the findings
    /// with [`gpu_sim::Gpu::check_report`] after the transform. Enabling is
    /// sticky on the device and idempotent; `checked(false)` (the default)
    /// leaves an already-enabled checker running.
    pub fn checked(mut self, on: bool) -> Self {
        self.checked = on;
        self
    }

    /// Validates the request, plans the transform and allocates its device
    /// buffers.
    ///
    /// # Errors
    /// [`FftError::UnsupportedSize`] for dimensions the kernels cannot run,
    /// [`FftError::UnsupportedAlgorithm`] for the out-of-core / multi-GPU
    /// pipelines (use their own entry points), and [`FftError::Alloc`] when
    /// the volume does not fit on the card — at which point
    /// [`crate::out_of_core::OutOfCoreFft`] is the tool.
    pub fn build(self, gpu: &mut Gpu) -> Result<Fft3d, FftError> {
        if self.checked {
            // Before any allocation, so the plan's own buffers are shadowed
            // from birth (fresh device memory counts as uninitialised).
            gpu.check_enable();
        }
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        for (axis, n) in [('x', nx), ('y', ny), ('z', nz)] {
            if !n.is_power_of_two() || !(16..=512).contains(&n) {
                return Err(FftError::UnsupportedSize { axis, n });
            }
        }
        let (inner, v, work) = match self.algorithm {
            Algorithm::FiveStep => {
                let p = FiveStepFft::new(gpu, nx, ny, nz);
                let (v, w) = p.alloc_buffers(gpu)?;
                (Inner::Five(p), v, w)
            }
            Algorithm::SixStep => {
                let p = SixStepFft::new(gpu, nx, ny, nz);
                let (v, w) = p.alloc_buffers(gpu)?;
                (Inner::Six(p), v, w)
            }
            Algorithm::CufftLike => {
                let p = CufftLikeFft::new(gpu, nx, ny, nz);
                let (v, w) = p.alloc_buffers(gpu)?;
                (Inner::Cufft(p), v, w)
            }
            Algorithm::OutOfCore => {
                return Err(FftError::UnsupportedAlgorithm {
                    algorithm: self.algorithm,
                    reason: "use OutOfCoreFft::new for volumes larger than device memory",
                })
            }
            Algorithm::MultiGpu => {
                return Err(FftError::UnsupportedAlgorithm {
                    algorithm: self.algorithm,
                    reason: "use MultiGpuFft3d::new to shard across several cards",
                })
            }
        };
        let guard = BufferGuard {
            ids: vec![v, work],
            queue: gpu.mem().free_queue(),
        };
        Ok(Fft3d {
            inner,
            v,
            work,
            dims: (nx, ny, nz),
            guard,
        })
    }
}

impl Fft3d {
    /// Starts building an `nx x ny x nz` plan:
    /// `Fft3d::builder(nx, ny, nz).algorithm(a).build(&mut gpu)?`.
    pub fn builder(nx: usize, ny: usize, nz: usize) -> Fft3dBuilder {
        Fft3dBuilder {
            nx,
            ny,
            nz,
            algorithm: Algorithm::default(),
            checked: false,
        }
    }

    /// The plan's device buffers `(data, work)` — mainly for diagnosing
    /// checker reports, which cite buffers by id.
    pub fn buffers(&self) -> (BufferId, BufferId) {
        (self.v, self.work)
    }

    /// Plans a transform with the chosen algorithm and allocates its device
    /// buffers.
    ///
    /// # Errors
    /// Returns the allocation error when the volume does not fit on the
    /// card.
    ///
    /// # Panics
    /// On unsupported dimensions or algorithms (the builder reports those as
    /// typed errors instead — use it).
    #[deprecated(since = "0.2.0", note = "use Fft3d::builder(nx, ny, nz).build(gpu)")]
    pub fn new(
        gpu: &mut Gpu,
        algorithm: Algorithm,
        nx: usize,
        ny: usize,
        nz: usize,
    ) -> Result<Self, AllocError> {
        match Fft3d::builder(nx, ny, nz).algorithm(algorithm).build(gpu) {
            Ok(p) => Ok(p),
            Err(FftError::Alloc(e)) => Err(e),
            Err(e) => panic!("{e}"),
        }
    }

    /// The algorithm behind this plan.
    pub fn algorithm(&self) -> Algorithm {
        match self.inner {
            Inner::Five(_) => Algorithm::FiveStep,
            Inner::Six(_) => Algorithm::SixStep,
            Inner::Cufft(_) => Algorithm::CufftLike,
        }
    }

    /// Grid dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Volume in elements.
    pub fn volume(&self) -> usize {
        self.dims.0 * self.dims.1 * self.dims.2
    }

    /// Transforms a natural-order host volume, returning the natural-order
    /// result and the per-kernel report. Inverse transforms are left
    /// unnormalised (CUFFT/FFTW convention).
    ///
    /// # Errors
    /// [`FftError::VolumeMismatch`] when `host.len()` is not the planned
    /// volume.
    pub fn transform(
        &self,
        gpu: &mut Gpu,
        host: &[Complex32],
        dir: Direction,
    ) -> Result<(Vec<Complex32>, RunReport), FftError> {
        if host.len() != self.volume() {
            return Err(FftError::VolumeMismatch {
                expected: self.volume(),
                got: host.len(),
            });
        }
        Ok(match &self.inner {
            Inner::Five(p) => {
                // upload packs the natural order into the 5-D input layout;
                // download unpacks the 5-D output layout — both directions
                // of the transform use the same digit bookkeeping.
                p.upload(gpu, self.v, host);
                let rep = p.execute(gpu, self.v, self.work, dir);
                (p.download(gpu, self.v), rep)
            }
            Inner::Six(p) => {
                p.upload(gpu, self.v, host);
                let rep = p.execute(gpu, self.v, self.work, dir);
                (p.download(gpu, self.v), rep)
            }
            Inner::Cufft(p) => {
                gpu.mem_mut().upload(self.v, 0, host);
                let rep = p.execute(gpu, self.v, self.work, dir);
                let mut out = vec![Complex32::ZERO; self.volume()];
                gpu.mem_mut().download(self.v, 0, &mut out);
                (out, rep)
            }
        })
    }

    /// Frees the plan's device buffers immediately. Dropping the plan has
    /// the same effect (deferred to the allocator's next reclaim), so this
    /// is only needed to make the release point explicit.
    #[deprecated(since = "0.2.0", note = "dropping the plan frees its buffers")]
    pub fn release(mut self, gpu: &mut Gpu) {
        for id in self.guard.disarm() {
            gpu.mem_mut().free(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft_math::error::rel_l2_error_f32;
    use fft_math::rng::SplitMix64;
    use gpu_sim::DeviceSpec;

    fn volume(n: usize, seed: u64) -> Vec<Complex32> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| Complex32::new(rng.uniform_f32(-1.0, 1.0), rng.uniform_f32(-1.0, 1.0)))
            .collect()
    }

    #[test]
    fn all_algorithms_agree_through_the_facade() {
        let n = 16usize;
        let host = volume(n * n * n, 600);
        let mut results = Vec::new();
        for algo in Algorithm::IN_CORE {
            let mut gpu = Gpu::new(DeviceSpec::gts8800());
            let plan = Fft3d::builder(n, n, n)
                .algorithm(algo)
                .build(&mut gpu)
                .unwrap();
            assert_eq!(plan.algorithm(), algo);
            let (out, rep) = plan.transform(&mut gpu, &host, Direction::Forward).unwrap();
            assert!(rep.total_time_s() > 0.0);
            results.push(out);
        }
        for other in &results[1..] {
            assert!(rel_l2_error_f32(other, &results[0]) < 1e-5);
        }
    }

    #[test]
    fn default_algorithm_is_the_papers() {
        assert_eq!(Algorithm::default(), Algorithm::FiveStep);
    }

    #[test]
    fn algorithm_names_parse_back() {
        for algo in Algorithm::ALL {
            assert_eq!(algo.name().parse::<Algorithm>().unwrap(), algo);
        }
        assert_eq!(
            "five_step".parse::<Algorithm>().unwrap(),
            Algorithm::FiveStep
        );
        assert_eq!("CUFFT".parse::<Algorithm>().unwrap(), Algorithm::CufftLike);
        assert_eq!(
            "bandwidth-intensive".parse::<Algorithm>().unwrap(),
            Algorithm::FiveStep
        );
        assert_eq!("ooc".parse::<Algorithm>().unwrap(), Algorithm::OutOfCore);
        assert_eq!("MGPU".parse::<Algorithm>().unwrap(), Algorithm::MultiGpu);
        assert!("seven-step".parse::<Algorithm>().is_err());
    }

    #[test]
    fn estimates_dispatch_per_algorithm() {
        let spec = DeviceSpec::gt8800();
        for algo in Algorithm::IN_CORE {
            let steps = algo.estimate_steps(&spec, 64, 64, 64).unwrap();
            assert!(!steps.is_empty());
            assert!(steps.iter().all(|(_, t)| t.time_s > 0.0));
        }
        assert!(Algorithm::OutOfCore
            .estimate_steps(&spec, 64, 64, 64)
            .is_none());
        assert!(Algorithm::MultiGpu
            .estimate_steps(&spec, 64, 64, 64)
            .is_none());
    }

    #[test]
    fn release_returns_memory() {
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let before = gpu.mem().used_bytes();
        let plan = Fft3d::builder(16, 16, 16).build(&mut gpu).unwrap();
        assert!(gpu.mem().used_bytes() > before);
        #[allow(deprecated)]
        plan.release(&mut gpu);
        assert_eq!(gpu.mem().used_bytes(), before);
    }

    #[test]
    fn dropping_plan_frees_buffers() {
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let before = gpu.mem().used_bytes();
        let plan = Fft3d::builder(32, 32, 32).build(&mut gpu).unwrap();
        let held = gpu.mem().used_bytes();
        assert!(held > before);
        drop(plan);
        // The guard queued the buffers: they no longer count as used and the
        // next allocation can take the whole card again.
        assert_eq!(gpu.mem().used_bytes(), before);
        let half_card = (gpu.mem().capacity_bytes() / 8 - before / 8) as usize / 2;
        let big = gpu.mem_mut().alloc(half_card);
        assert!(big.is_ok(), "queued buffers were physically reclaimed");
    }

    #[test]
    fn oversized_plan_reports_alloc_error() {
        // A cut-down card (1 MiB) makes the capacity failure cheap to hit.
        let mut spec = DeviceSpec::gts8800();
        spec.memory_bytes = 1 << 20;
        let mut gpu = Gpu::new(spec);
        let r = Fft3d::builder(64, 64, 64)
            .algorithm(Algorithm::SixStep)
            .build(&mut gpu);
        assert!(
            matches!(r, Err(FftError::Alloc(_))),
            "two 2 MiB buffers cannot fit in 1 MiB"
        );
    }

    #[test]
    fn unsupported_conditions_are_typed_errors_not_panics() {
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        assert_eq!(
            Fft3d::builder(8, 16, 16).build(&mut gpu).err(),
            Some(FftError::UnsupportedSize { axis: 'x', n: 8 })
        );
        assert_eq!(
            Fft3d::builder(16, 24, 16).build(&mut gpu).err(),
            Some(FftError::UnsupportedSize { axis: 'y', n: 24 })
        );
        assert!(matches!(
            Fft3d::builder(16, 16, 16)
                .algorithm(Algorithm::OutOfCore)
                .build(&mut gpu),
            Err(FftError::UnsupportedAlgorithm { .. })
        ));
        let plan = Fft3d::builder(16, 16, 16).build(&mut gpu).unwrap();
        let short = vec![Complex32::ZERO; 7];
        assert_eq!(
            plan.transform(&mut gpu, &short, Direction::Forward).err(),
            Some(FftError::VolumeMismatch {
                expected: 4096,
                got: 7
            })
        );
        // Errors display something actionable.
        let msg = format!("{}", FftError::UnsupportedSize { axis: 'z', n: 7 });
        assert!(msg.contains("power of two"));
    }

    #[test]
    fn deprecated_shims_still_work() {
        #[allow(deprecated)]
        {
            let mut gpu = Gpu::new(DeviceSpec::gt8800());
            let plan = Fft3d::new(&mut gpu, Algorithm::FiveStep, 16, 16, 16).unwrap();
            let host = volume(plan.volume(), 77);
            let (out, _) = plan.transform(&mut gpu, &host, Direction::Forward).unwrap();
            assert_eq!(out.len(), host.len());
            plan.release(&mut gpu);
            assert_eq!(gpu.mem().used_bytes(), 0);
        }
    }

    #[test]
    fn forward_inverse_roundtrip_through_facade() {
        let n = 16usize;
        let host = volume(n * n * n, 601);
        let mut gpu = Gpu::new(DeviceSpec::gtx8800());
        let plan = Fft3d::builder(n, n, n)
            .algorithm(Algorithm::SixStep)
            .build(&mut gpu)
            .unwrap();
        let (spec, _) = plan.transform(&mut gpu, &host, Direction::Forward).unwrap();
        let (back, _) = plan.transform(&mut gpu, &spec, Direction::Inverse).unwrap();
        let s = 1.0 / plan.volume() as f32;
        for (b, h) in back.iter().zip(&host) {
            assert!((b.scale(s) - *h).abs() < 1e-4);
        }
    }
}
