//! Property-style tests on the FFT kernels and plans.
//!
//! Formerly `proptest`-driven (10 cases per property); the workspace builds
//! against an empty cargo registry, so the same properties now run over a
//! deterministic SplitMix64 case sweep.

use bifft::five_step::FiveStepFft;
use bifft::kernel256::{bind_twiddle_texture, run_batched_fft, FineFftPlan};
use bifft::plan::{Algorithm, Fft3d};
use fft_math::error::rel_l2_error_f32;
use fft_math::fft1d::fft_pow2;
use fft_math::rng::SplitMix64;
use fft_math::twiddle::Direction;
use fft_math::Complex32;
use gpu_sim::{DeviceSpec, Gpu};

fn signal(len: usize, seed: u64) -> Vec<Complex32> {
    (0..len)
        .map(|i| {
            let t = (i as f64 * 0.317 + seed as f64 * 0.011).sin();
            Complex32::new(t as f32, ((i as f64 * 0.7).cos() * t) as f32)
        })
        .collect()
}

/// The fine-grained kernel plan is bank-conflict-free at every supported
/// half-warp-wide size, and the functional run confirms it.
#[test]
fn fine_plan_always_conflict_free() {
    for logn in 6u32..10 {
        let n = 1usize << logn; // 64..512
        let plan = FineFftPlan::new(n);
        assert_eq!(plan.planned_conflicts, 0);
        assert!(plan.resources().shared_bytes_per_block <= 16 * 1024);

        let mut gpu = Gpu::new(DeviceSpec::gts8800());
        let rows = 4usize;
        let buf = gpu.mem_mut().alloc(n * rows).unwrap();
        gpu.mem_mut().upload(buf, 0, &signal(n * rows, logn as u64));
        let tw = bind_twiddle_texture(&mut gpu, n, Direction::Forward);
        let rep = run_batched_fft(&mut gpu, &plan, buf, buf, rows, Direction::Forward, tw, "p");
        assert_eq!(rep.stats.shared_races, 0);
        assert_eq!(rep.stats.shared_conflict_rate(), 0.0);
        assert!(rep.stats.coalesced_fraction() > 0.999);
    }
}

/// The fine kernel matches the scalar Stockham at arbitrary row counts.
#[test]
fn fine_kernel_matches_reference() {
    let mut rng = SplitMix64::new(0xC04E_0001);
    for _ in 0..10 {
        let rows = 1 + rng.below(5);
        let seed = rng.next_u64() as u32;
        let n = 128usize;
        let host = signal(n * rows, seed as u64);
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let plan = FineFftPlan::new(n);
        let buf = gpu.mem_mut().alloc(n * rows).unwrap();
        gpu.mem_mut().upload(buf, 0, &host);
        let tw = bind_twiddle_texture(&mut gpu, n, Direction::Forward);
        run_batched_fft(&mut gpu, &plan, buf, buf, rows, Direction::Forward, tw, "p");
        let mut out = vec![Complex32::ZERO; n * rows];
        gpu.mem_mut().download(buf, 0, &mut out);
        for r in 0..rows {
            let mut want = host[r * n..(r + 1) * n].to_vec();
            fft_pow2(&mut want, Direction::Forward);
            assert!(rel_l2_error_f32(&out[r * n..(r + 1) * n], &want) < 1e-5);
        }
    }
}

/// Five-step and six-step agree through the facade for random dims
/// (>= 16: the six-step transpose tiles are 16 wide).
#[test]
fn facade_algorithms_agree() {
    let mut rng = SplitMix64::new(0xC04E_0002);
    for _ in 0..10 {
        let (nx, ny, nz) = (
            1usize << (4 + rng.below(2)),
            1usize << (4 + rng.below(2)),
            1usize << (4 + rng.below(2)),
        );
        let seed = rng.next_u64() as u32;
        let host = signal(nx * ny * nz, seed as u64);
        let mut out = Vec::new();
        for algo in [Algorithm::FiveStep, Algorithm::SixStep] {
            let mut gpu = Gpu::new(DeviceSpec::gts8800());
            let plan = Fft3d::builder(nx, ny, nz)
                .algorithm(algo)
                .build(&mut gpu)
                .unwrap();
            let (r, _) = plan.transform(&mut gpu, &host, Direction::Forward).unwrap();
            out.push(r);
        }
        assert!(rel_l2_error_f32(&out[1], &out[0]) < 1e-5);
        out.clear();
    }
}

/// Conjugation symmetry: for real input, F(-k) = conj(F(k)).
#[test]
fn hermitian_symmetry_for_real_input() {
    let mut rng = SplitMix64::new(0xC04E_0003);
    for _ in 0..10 {
        let seed = rng.next_u64() as u32;
        let n = 8usize;
        let host: Vec<Complex32> = signal(n * n * n, seed as u64)
            .into_iter()
            .map(|z| Complex32::new(z.re, 0.0))
            .collect();
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let five = FiveStepFft::new(&mut gpu, n, n, n);
        let (v, w) = five.alloc_buffers(&mut gpu).unwrap();
        five.upload(&mut gpu, v, &host);
        five.execute(&mut gpu, v, w, Direction::Forward);
        let f = five.download(&gpu, v);
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let a = f[x + n * (y + n * z)];
                    let b = f[(n - x) % n + n * ((n - y) % n + n * ((n - z) % n))];
                    assert!((a - b.conj()).abs() < 1e-3, "({x},{y},{z}): {a} vs {b}");
                }
            }
        }
    }
}

/// A recorded trace is a faithful account of the run: the kernel slices
/// sum to the report's total exactly, and every span closes after it
/// opens with the top-level span covering the whole run.
#[test]
fn trace_accounts_for_all_modelled_time() {
    let mut rng = SplitMix64::new(0xC04E_0004);
    for _ in 0..10 {
        let (lx, ly, lz) = (4 + rng.below(2), 4 + rng.below(2), 4 + rng.below(2));
        let (nx, ny, nz) = (1usize << lx, 1usize << ly, 1usize << lz);
        let algo = [
            Algorithm::FiveStep,
            Algorithm::SixStep,
            Algorithm::CufftLike,
        ][rng.below(3)];
        let host = signal(nx * ny * nz, (lx + 8 * ly + 64 * lz) as u64);
        let mut gpu = Gpu::new(DeviceSpec::gts8800());
        let rec = gpu.install_recorder();
        let plan = Fft3d::builder(nx, ny, nz)
            .algorithm(algo)
            .build(&mut gpu)
            .unwrap();
        let (_, rep) = plan.transform(&mut gpu, &host, Direction::Forward).unwrap();
        let trace = rec.borrow_mut().take_trace();

        assert_eq!(trace.kernel_count(), rep.steps.len());
        assert_eq!(trace.kernel_time_s(), rep.total_time_s());

        let spans = trace.spans();
        assert!(!spans.is_empty());
        let total = rep.total_time_s();
        for s in &spans {
            assert!(s.end_s >= s.start_s, "span {} runs backwards", s.name);
        }
        // The outermost span covers the whole run to within float
        // reassociation noise.
        let outer = spans.iter().find(|s| s.depth == 0).unwrap();
        assert!(
            (outer.duration_s() - total).abs() <= 1e-9 * total.max(1.0),
            "outer span {} vs total {}",
            outer.duration_s(),
            total
        );
    }
}

/// Any interleaving of kernels across streams takes exactly as long as
/// the serial schedule and leaves identical device memory, because the
/// device has a single compute engine — streams only buy overlap when
/// an async copy can hide behind compute, and this program has none.
#[test]
fn stream_interleavings_match_serial_schedule() {
    let mut rng = SplitMix64::new(0xC04E_0005);
    for _ in 0..10 {
        let len = 1 + rng.below(11);
        let assignment: Vec<usize> = (0..len).map(|_| rng.below(3)).collect();
        use gpu_sim::LaunchConfig;
        let n = 1024usize;
        let run = |use_streams: bool| {
            let mut gpu = Gpu::new(DeviceSpec::gt8800());
            let buf = gpu.mem_mut().alloc(n).unwrap();
            gpu.mem_mut().upload(buf, 0, &signal(n, 5));
            let streams: Vec<_> = (0..3).map(|_| gpu.stream_create()).collect();
            let mut serial_sum = 0.0;
            for (i, &s) in assignment.iter().enumerate() {
                let cfg = LaunchConfig::copy("op", 2, 64);
                let c = Complex32::new(i as f32 * 0.25, 1.0 / (i + 1) as f32);
                let total = 2 * 64;
                let body = |t: &mut gpu_sim::ThreadCtx| {
                    let mut j = t.gid();
                    while j < n {
                        let v = t.ld(buf, j);
                        t.st(buf, j, v + c);
                        j += total;
                    }
                };
                let rep = if use_streams {
                    gpu.launch_on(streams[s], &cfg, body)
                } else {
                    gpu.launch(&cfg, body)
                };
                serial_sum += rep.timing.time_s;
            }
            gpu.synchronize();
            let mut out = vec![Complex32::ZERO; n];
            gpu.mem_mut().download(buf, 0, &mut out);
            (gpu.clock_s(), serial_sum, out)
        };
        let (t_streamed, kernel_sum, mem_streamed) = run(true);
        let (t_serial, _, mem_serial) = run(false);
        assert_eq!(mem_streamed, mem_serial);
        assert!((t_streamed - kernel_sum).abs() <= 1e-9 * kernel_sum.max(1.0));
        assert!((t_serial - kernel_sum).abs() <= 1e-9 * kernel_sum.max(1.0));
    }
}

/// The DC bin is the plain sum of the volume.
#[test]
fn dc_bin_is_the_sum() {
    let mut rng = SplitMix64::new(0xC04E_0006);
    for _ in 0..10 {
        let seed = rng.next_u64() as u32;
        let n = 8usize;
        let host = signal(n * n * n, seed as u64);
        let want: Complex32 = host.iter().copied().sum();
        let mut gpu = Gpu::new(DeviceSpec::gtx8800());
        let five = FiveStepFft::new(&mut gpu, n, n, n);
        let (v, w) = five.alloc_buffers(&mut gpu).unwrap();
        five.upload(&mut gpu, v, &host);
        five.execute(&mut gpu, v, w, Direction::Forward);
        let f = five.download(&gpu, v);
        assert!((f[0] - want).abs() < 1e-3 * want.abs().max(1.0));
    }
}
