//! End-to-end pattern-audit checks: the classifier really observes the
//! Tables 2–4 classes on executed transforms, and the audit judges them.

use bifft::{Algorithm, Fft3d, PatternAudit, RunReport};
use fft_math::layout::AccessPattern;
use fft_math::{Complex32, Direction};
use gpu_sim::{DeviceSpec, Gpu, LaunchConfig};

fn signal(n: usize) -> Vec<Complex32> {
    (0..n)
        .map(|i| Complex32::new((i as f32 * 0.37).sin(), (i as f32 * 0.11).cos()))
        .collect()
}

fn audited_run(algo: Algorithm, n: usize) -> PatternAudit {
    let mut gpu = Gpu::new(DeviceSpec::gts8800());
    let plan = Fft3d::builder(n, n, n)
        .algorithm(algo)
        .build(&mut gpu)
        .unwrap();
    let host = signal(n * n * n);
    let (_, rep) = plan.transform(&mut gpu, &host, Direction::Forward).unwrap();
    PatternAudit::of_report(&rep)
}

#[test]
fn five_step_steps_1_to_4_store_only_a_or_b() {
    let audit = audited_run(Algorithm::FiveStep, 64);
    assert!(audit.clean(), "five-step audit:\n{}", audit.table());
    assert_eq!(
        audit.forbidden_count(),
        0,
        "five-step must never pair two far patterns:\n{}",
        audit.table()
    );
    // Steps 1-4: gather along the decomposed axis (far-family loads), but
    // every store lands literally in Table 4's A/B classes.
    for step in &audit.steps[..4] {
        let store = step.observed.store.expect("stores sampled");
        assert!(
            matches!(store.pattern, AccessPattern::A | AccessPattern::B),
            "{} stored {} (expected A or B)",
            step.name,
            store.pattern.label()
        );
        let load = step.observed.load.expect("loads sampled");
        assert_eq!(
            load.pattern,
            AccessPattern::D,
            "{} should gather with far-stride loads",
            step.name
        );
    }
    // The expectation table alternates A and B exactly.
    let stores: Vec<&str> = audit.steps[..4]
        .iter()
        .map(|s| s.observed.store.unwrap().pattern.label())
        .collect();
    assert_eq!(stores, ["A", "B", "A", "B"]);
}

#[test]
fn six_step_transposes_are_forbidden_pairs_and_expected() {
    let audit = audited_run(Algorithm::SixStep, 64);
    // Conformant: the observed patterns match the annotations...
    assert!(audit.clean(), "six-step audit:\n{}", audit.table());
    // ...and the annotations *are* the slow far x far transposes, three of
    // them — the paper's argument for avoiding the six-step structure.
    assert_eq!(
        audit.forbidden_count(),
        3,
        "six-step audit:\n{}",
        audit.table()
    );
    for step in &audit.steps {
        let is_transpose = step.name.starts_with("transpose_");
        assert_eq!(
            step.forbidden,
            is_transpose,
            "{}:\n{}",
            step.name,
            audit.table()
        );
    }
}

#[test]
fn cufft_like_multirow_kernels_observe_far_far() {
    let audit = audited_run(Algorithm::CufftLike, 64);
    assert!(audit.clean(), "cufft-like audit:\n{}", audit.table());
    assert_eq!(
        audit.forbidden_count(),
        2,
        "the two multirow kernels are the far x far offenders:\n{}",
        audit.table()
    );
    for step in &audit.steps {
        assert_eq!(step.forbidden, step.name.ends_with("_multirow"));
    }
}

#[test]
fn deliberately_strided_copy_is_flagged_class_d() {
    let mut gpu = Gpu::new(DeviceSpec::gts8800());
    let n = 1 << 14;
    let src = gpu.mem_mut().alloc(n).unwrap();
    let dst = gpu.mem_mut().alloc(n).unwrap();
    let cfg = LaunchConfig::copy("strided_copy", 4, 64);
    let total = 4 * 64usize;
    let rep = gpu.launch(&cfg, |t| {
        let mut i = t.gid();
        while i < n {
            let v = t.ld(src, (i * 16) % n);
            t.st(dst, i, v);
            i += total;
        }
    });
    let run = RunReport {
        algorithm: "strided-copy",
        dims: (64, 64, 64),
        nominal_flops: 0,
        steps: vec![rep],
        trace: None,
    };
    let audit = PatternAudit::of_report(&run);
    // No annotations for an ad-hoc kernel, so the audit can't mismatch...
    assert!(audit.clean());
    // ...but the classifier still calls the load stream what it is.
    let load = audit.steps[0].observed.load.expect("loads sampled");
    assert_eq!(load.pattern, AccessPattern::D);
    assert!(audit.table().contains("strided_copy"));
}
