//! Failure-path tests: every [`FftError`] variant's exact `Display` string,
//! and every way the builder / multi-GPU planner can refuse a request. The
//! messages are part of the CLI contract (the `profile` and `bench` binaries
//! print them verbatim), so they are pinned here byte-for-byte.

use bifft::multi_gpu::MultiGpuFft3d;
use bifft::plan::{Algorithm, Fft3d, FftError};
use fft_math::twiddle::Direction;
use fft_math::Complex32;
use gpu_sim::{DeviceSpec, Gpu};

#[test]
fn display_strings_are_pinned() {
    let cases: [(FftError, &str); 4] = [
        (
            FftError::VolumeMismatch {
                expected: 4096,
                got: 4095,
            },
            "volume mismatch: plan covers 4096 elements, host slice has 4095",
        ),
        (
            FftError::UnsupportedSize { axis: 'y', n: 24 },
            "unsupported y-dimension 24: must be a power of two in 16..=512",
        ),
        (
            FftError::BadShardCount {
                n_gpus: 3,
                reason: "card count must be a power of two",
            },
            "cannot shard across 3 GPUs: card count must be a power of two",
        ),
        (
            FftError::UnsupportedAlgorithm {
                algorithm: Algorithm::OutOfCore,
                reason: "use OutOfCoreFft::new for volumes larger than device memory",
            },
            "cannot plan 'out-of-core' here: use OutOfCoreFft::new for volumes \
             larger than device memory",
        ),
    ];
    for (err, want) in cases {
        assert_eq!(format!("{err}"), want);
    }
}

#[test]
fn builder_rejects_bad_sizes_per_axis() {
    let mut gpu = Gpu::new(DeviceSpec::gts8800());
    // Too small, not a power of two, too large — each names its axis.
    for (nx, ny, nz, axis, n) in [
        (8usize, 64usize, 64usize, 'x', 8usize),
        (64, 24, 64, 'y', 24),
        (64, 64, 1024, 'z', 1024),
    ] {
        let err = Fft3d::builder(nx, ny, nz).build(&mut gpu).err().unwrap();
        assert_eq!(err, FftError::UnsupportedSize { axis, n });
    }
}

#[test]
fn builder_refuses_out_of_core_and_multi_gpu() {
    let mut gpu = Gpu::new(DeviceSpec::gts8800());
    for (algo, entry_point) in [
        (Algorithm::OutOfCore, "OutOfCoreFft::new"),
        (Algorithm::MultiGpu, "MultiGpuFft3d::new"),
    ] {
        let err = Fft3d::builder(64, 64, 64)
            .algorithm(algo)
            .build(&mut gpu)
            .err()
            .unwrap();
        match &err {
            FftError::UnsupportedAlgorithm { algorithm, reason } => {
                assert_eq!(*algorithm, algo);
                assert!(reason.contains(entry_point), "{reason}");
            }
            other => panic!("expected UnsupportedAlgorithm, got {other:?}"),
        }
        // And the rendered message points at the right entry point.
        assert!(format!("{err}").contains(entry_point));
    }
}

#[test]
fn transform_rejects_wrong_host_volume() {
    let mut gpu = Gpu::new(DeviceSpec::gts8800());
    let plan = Fft3d::builder(16, 16, 16).build(&mut gpu).unwrap();
    let short = vec![Complex32::new(0.0, 0.0); 16 * 16 * 16 - 1];
    let err = plan
        .transform(&mut gpu, &short, Direction::Forward)
        .err()
        .unwrap();
    assert_eq!(
        err,
        FftError::VolumeMismatch {
            expected: 4096,
            got: 4095,
        }
    );
}

#[test]
fn multi_gpu_shard_count_failures() {
    let spec = DeviceSpec::gts8800();
    // Not a power of two.
    let err = MultiGpuFft3d::new(&spec, 3, 64, 64, 64).err().unwrap();
    assert_eq!(
        err,
        FftError::BadShardCount {
            n_gpus: 3,
            reason: "card count must be a power of two",
        }
    );
    // Zero cards is rejected by the same rule.
    assert!(matches!(
        MultiGpuFft3d::new(&spec, 0, 64, 64, 64),
        Err(FftError::BadShardCount { n_gpus: 0, .. })
    ));
    // More cards than Z planes / Y rows: nothing left to give each card.
    let err = MultiGpuFft3d::new(&spec, 32, 64, 16, 16).err().unwrap();
    assert_eq!(
        err,
        FftError::BadShardCount {
            n_gpus: 32,
            reason: "need at least one Z plane and one Y row per card",
        }
    );
}

#[test]
fn algorithm_parse_error_lists_the_choices() {
    let err = "seven-step".parse::<Algorithm>().err().unwrap();
    assert_eq!(
        err,
        "unknown algorithm 'seven-step' (expected five-step, six-step, \
         cufft-like, out-of-core or multi-gpu)"
    );
}
