//! Concurrency coverage for the process-wide wisdom cache.
//!
//! The serving layer's plan cache leans on `bifft::wisdom` from its
//! dispatch path, so the cache must stay coherent when several planners
//! race: every lookup counted exactly once, one planning miss per distinct
//! length, and `clear` callable mid-flight without poisoning the lock or
//! invalidating plans already handed out.
//!
//! These tests share one process-wide cache, so they serialize on a local
//! mutex and reset the cache at entry; they live in their own integration
//! binary to keep the unit tests' delta-based counting undisturbed.

use bifft::wisdom;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;

static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn concurrent_planning_counts_every_lookup_once() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    wisdom::clear();

    const THREADS: usize = 8;
    const REPS: usize = 16;
    const LENGTHS: [usize; 4] = [64, 128, 256, 512];

    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                for r in 0..REPS {
                    let n = LENGTHS[(t + r) % LENGTHS.len()];
                    let a = wisdom::plan_arc(n);
                    let b = wisdom::plan_arc(n);
                    // Back-to-back lookups of one length always share the
                    // memoised plan, even while other threads insert.
                    assert!(Arc::ptr_eq(&a, &b));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("planner thread panicked");
    }

    let s = wisdom::stats();
    let lookups = (THREADS * REPS * 2) as u64;
    assert_eq!(s.hits + s.misses, lookups, "every lookup counted once");
    // The map mutates under one lock, so each distinct length misses
    // exactly once no matter how the threads interleave.
    assert_eq!(s.misses, LENGTHS.len() as u64);
    assert_eq!(s.entries, LENGTHS.len());
    let want_rate = (lookups - LENGTHS.len() as u64) as f64 / lookups as f64;
    assert!((s.hit_rate() - want_rate).abs() < 1e-12, "{:?}", s);
}

#[test]
fn clear_mid_flight_keeps_cache_and_plans_coherent() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    wisdom::clear();

    const LENGTHS: [usize; 3] = [64, 128, 256];
    let held = wisdom::plan_arc(512); // survives every clear below
    let stop = Arc::new(AtomicBool::new(false));
    let planners: Vec<_> = (0..4)
        .map(|t| {
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut lookups = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let n = LENGTHS[(t + lookups as usize) % LENGTHS.len()];
                    let p = wisdom::plan_arc(n);
                    assert!(!p.stages().is_empty());
                    lookups += 1;
                }
                lookups
            })
        })
        .collect();

    for _ in 0..25 {
        wisdom::clear();
        thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    let lookups: u64 = planners
        .into_iter()
        .map(|h| h.join().expect("planner thread panicked"))
        .sum();

    // Clearing raced with planning and nothing poisoned: the counters only
    // reflect lookups since the last clear, and the map holds at most the
    // lengths planned since then.
    let s = wisdom::stats();
    assert!(s.hits + s.misses <= lookups + 1, "{:?}", s);
    assert!(s.entries <= LENGTHS.len() + 1, "{:?}", s);
    assert!((0.0..=1.0).contains(&s.hit_rate()));

    // A plan handed out before a clear stays valid (Arc keeps it alive) and
    // re-planning the same length reproduces the same schedule.
    let fresh = wisdom::plan_arc(512);
    assert_eq!(held.stages(), fresh.stages());
    assert_eq!(held.shared_words(), fresh.shared_words());

    wisdom::clear();
    let s = wisdom::stats();
    assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    assert_eq!(s.hit_rate(), 1.0, "no lookups yet reads as all-hits");
}
