//! Golden-file and consistency tests for the sim-prof tracing layer: the
//! Chrome-trace export must be byte-stable run to run, and every exported
//! number must agree with the `RunReport` it came from.

use bifft::five_step::FiveStepFft;
use bifft::out_of_core::OutOfCoreFft;
use bifft::RunReport;
use fft_math::twiddle::Direction;
use fft_math::Complex32;
use gpu_sim::{DeviceSpec, Gpu, Trace, TraceEvent};

fn traced_five_step_16() -> (RunReport, Trace) {
    let mut gpu = Gpu::new(DeviceSpec::gts8800());
    let rec = gpu.install_recorder();
    let plan = FiveStepFft::new(&mut gpu, 16, 16, 16);
    let (v, w) = plan.alloc_buffers(&mut gpu).unwrap();
    let host: Vec<Complex32> = (0..plan.volume())
        .map(|i| Complex32::new((i as f32 * 0.37).sin(), (i as f32 * 0.11).cos()))
        .collect();
    plan.upload(&mut gpu, v, &host);
    let rep = plan.execute(&mut gpu, v, w, Direction::Forward);
    let trace = rec.borrow_mut().take_trace();
    (rep, trace)
}

#[test]
fn chrome_json_is_byte_stable_across_runs() {
    let (_, a) = traced_five_step_16();
    let (_, b) = traced_five_step_16();
    assert_eq!(
        a.chrome_json(),
        b.chrome_json(),
        "same run must export identical bytes"
    );
}

/// The export is pinned byte-for-byte against a committed golden file, so
/// any change to the Chrome-trace format (or to the simulator's modelled
/// timings) shows up as a reviewable diff. Regenerate deliberately with
/// `BLESS=1 cargo test -p bifft --test trace_golden`.
#[test]
fn chrome_json_matches_committed_golden() {
    let (_, trace) = traced_five_step_16();
    let json = trace.chrome_json();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/five_step_16_trace.json"
    );
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &json).expect("write golden");
        return;
    }
    let golden =
        std::fs::read_to_string(path).expect("golden file missing; regenerate with BLESS=1");
    assert_eq!(
        json, golden,
        "chrome_json drifted from tests/golden/five_step_16_trace.json; \
         if the change is intended, regenerate with BLESS=1"
    );
}

#[test]
fn chrome_json_has_the_expected_structure() {
    let (rep, trace) = traced_five_step_16();
    let json = trace.chrome_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    // One X slice per kernel, named as the report names them.
    for s in &rep.steps {
        assert!(
            json.contains(&format!("\"name\":\"{}\"", s.name)),
            "missing kernel slice {}",
            s.name
        );
    }
    // Plan spans appear as B/E pairs.
    for span in ["five_step", "z_fft_pass1", "x_fft_shared"] {
        assert!(json.contains(&format!(
            "\"ph\":\"B\",\"pid\":0,\"tid\":0,\"name\":\"{span}\""
        )));
    }
    // Allocations surface as device_mem counter samples.
    assert!(json.contains("\"device_mem\""));
    // Kernel slices carry the coalescing histogram.
    assert!(json.contains("tx_hist_32_64_128_256"));
}

#[test]
fn trace_kernel_time_matches_report_exactly() {
    let (rep, trace) = traced_five_step_16();
    assert_eq!(trace.kernel_count(), rep.steps.len());
    // Bit-for-bit: both sum timing.time_s in the same step order.
    assert_eq!(trace.kernel_time_s(), rep.total_time_s());
}

#[test]
fn metrics_json_total_matches_report_within_1e9() {
    let (rep, _) = traced_five_step_16();
    let json = rep.metrics_json();
    let needle = "\"total_time_s\": ";
    let at = json.find(needle).expect("total_time_s present") + needle.len();
    let end = json[at..].find(',').unwrap();
    let parsed: f64 = json[at..at + end].parse().unwrap();
    assert!(
        (parsed - rep.total_time_s()).abs() <= 1e-9 * rep.total_time_s().max(1.0),
        "metrics.json total {parsed} vs report {}",
        rep.total_time_s()
    );
}

#[test]
fn report_diff_smoke() {
    let (a, _) = traced_five_step_16();
    let (b, _) = traced_five_step_16();
    let d = a.diff(&b);
    assert_eq!(d.total_delta_s(), 0.0, "identical runs must diff to zero");
    assert!(d.steps.iter().all(|s| s.delta_s() == 0.0));
    assert!(d.to_string().contains("step5_x"));
}

#[test]
fn out_of_core_trace_shows_pcie_overlap() {
    let (nx, ny, nz) = (16usize, 16, 32);
    let spec = DeviceSpec::gts8800();
    let plan = OutOfCoreFft::new(&spec, nx, ny, nz, 2).unwrap();
    let mut gpu = Gpu::new(spec);
    let rec = gpu.install_recorder();
    let mut host: Vec<Complex32> = (0..nx * ny * nz)
        .map(|i| Complex32::new((i as f32 * 0.171).sin(), (i as f32 * 0.071).cos()))
        .collect();
    plan.execute(&mut gpu, &mut host, Direction::Forward)
        .unwrap();
    let trace = rec.borrow_mut().take_trace();

    // Both stages' transfers are labelled in the PCIe track.
    let labels: Vec<(String, bool, f64, f64)> = trace
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Pcie {
                label,
                overlapped,
                start_s,
                end_s,
                ..
            } => Some((label.clone(), *overlapped, *start_s, *end_s)),
            _ => None,
        })
        .collect();
    assert!(labels.iter().any(|(l, ..)| l == "pcie_h2d_slab0"));
    assert!(labels.iter().any(|(l, ..)| l == "pcie_d2h_slab1"));
    assert!(labels.iter().any(|(l, ..)| l.starts_with("pcie_h2d_group")));
    // The prefetched uploads are asynchronous...
    let async_uploads: Vec<_> = labels
        .iter()
        .filter(|(l, o, ..)| l.starts_with("pcie_h2d_slab") && *o)
        .collect();
    assert_eq!(
        async_uploads.len(),
        2,
        "both slab uploads prefetched: {labels:?}"
    );
    // ...and the second one's link window genuinely overlaps kernel work:
    // some kernel interval intersects the transfer's [start, end).
    let (_, _, up_start, up_end) = labels.iter().find(|(l, ..)| l == "pcie_h2d_slab1").unwrap();
    let overlapping_kernel = trace.events.iter().any(|e| match e {
        TraceEvent::KernelEnd { t_s, timing, .. } => {
            let begin = t_s - timing.time_s;
            begin < *up_end && *t_s > *up_start
        }
        _ => false,
    });
    assert!(
        overlapping_kernel,
        "async H2D window [{up_start}, {up_end}) must overlap kernel work"
    );
    // Spans mark both stages.
    let spans = trace.spans();
    assert!(spans.iter().any(|s| s.name == "stage1_slab0"));
    assert!(spans.iter().any(|s| s.name == "out_of_core_stage2"));
}

#[test]
fn two_stream_out_of_core_pins_overlap_windows() {
    let (nx, ny, nz) = (16usize, 16, 32);
    let spec = DeviceSpec::gts8800();
    let plan = OutOfCoreFft::new(&spec, nx, ny, nz, 2)
        .unwrap()
        .with_streams(2)
        .unwrap();
    let mut gpu = Gpu::new(spec);
    let rec = gpu.install_recorder();
    let mut host: Vec<Complex32> = (0..nx * ny * nz)
        .map(|i| Complex32::new((i as f32 * 0.131).sin(), (i as f32 * 0.059).cos()))
        .collect();
    let rep = plan
        .execute(&mut gpu, &mut host, Direction::Forward)
        .unwrap();
    assert_eq!(rep.streams, 2);
    let trace = rec.borrow_mut().take_trace();

    let ops: Vec<(usize, String, f64, f64)> = trace
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::StreamOp {
                stream,
                label,
                start_s,
                end_s,
                ..
            } => Some((*stream, label.clone(), *start_s, *end_s)),
            _ => None,
        })
        .collect();
    // Slab s runs on stream s % 2, copies and kernels alike.
    let find = |label: &str| {
        ops.iter()
            .find(|(_, l, ..)| l == label)
            .unwrap_or_else(|| panic!("missing stream op {label}"))
    };
    let up0 = find("pcie_h2d_slab0");
    let up1 = find("pcie_h2d_slab1");
    let down0 = find("pcie_d2h_slab0");
    assert_eq!(up0.0, 0);
    assert_eq!(up1.0, 1);
    // The H2D engine serialises the uploads back to back...
    assert!(up0.2 < up0.3);
    assert!((up1.2 - up0.3).abs() < 1e-12, "up1 starts as up0 ends");
    // ...while slab 0's kernels run: the upload starts before stream 0 is
    // ready to download, i.e. inside slab 0's compute phase.
    assert!(
        up1.2 >= up0.3 && up1.2 < down0.2,
        "up1 starts behind compute"
    );
    // Stream 0's first kernel genuinely overlaps stream 1's upload.
    let k0 = ops
        .iter()
        .find(|(s, l, ..)| *s == 0 && l != "pcie_h2d_slab0" && l != "pcie_d2h_slab0")
        .expect("stream 0 kernel op");
    assert!(k0.2 < up1.3 && up1.2 < k0.3, "windows must intersect");
    // The pipelined wall-clock beats the serial sum of the legs.
    assert!(rep.wall_s < rep.total_s());
    // Both stream tracks render in the Chrome export.
    let json = trace.chrome_json();
    assert!(json.contains("\"name\":\"stream 0\""));
    assert!(json.contains("\"name\":\"stream 1\""));
}
