//! Served-pipeline parity and transfer accounting: the convolution DAG
//! scheduled through `fft-serve` must produce bit-for-bit the surface
//! [`fft_apps::GpuCorrelator`] computes driving a card directly, and —
//! because every intermediate stays in a device-resident slot — it must
//! move strictly fewer PCIe bytes than submitting the same three
//! transforms as independent single-transform requests.

use fft_apps::pipelines::convolution_request;
use fft_apps::GpuCorrelator;
use fft_math::rng::SplitMix64;
use fft_math::twiddle::Direction;
use fft_math::Complex32;
use fft_serve::pipeline::{docking_stages, PipelineRequest};
use fft_serve::{Priority, RequestSpec, ServeConfig, Shape, TenantId};
use gpu_sim::{DeviceSpec, Gpu};

const DIMS: (usize, usize, usize) = (16, 16, 16);

fn volume(seed: u64) -> Vec<Complex32> {
    let mut rng = SplitMix64::new(seed);
    (0..DIMS.0 * DIMS.1 * DIMS.2)
        .map(|_| Complex32::new(rng.uniform_f32(-1.0, 1.0), rng.uniform_f32(-1.0, 1.0)))
        .collect()
}

#[test]
fn served_convolution_pipeline_matches_direct_correlator_bit_for_bit() {
    let a = volume(101);
    let b = volume(102);

    // Direct: the correlator driving a lone card (same device model the
    // service builds its fleet from).
    let mut gpu = Gpu::new(DeviceSpec::gts8800());
    let mut corr = GpuCorrelator::new(&mut gpu, DIMS.0, DIMS.1, DIMS.2);
    corr.load_a(&mut gpu, &a);
    let (want, _) = corr.correlate(&mut gpu, &b);

    // Served: the same math as one pipeline DAG through the full stack.
    let mut svc = ServeConfig::builder()
        .gpus(1)
        .keep_outputs(true)
        .build_service()
        .unwrap();
    svc.submit_pipeline(convolution_request(DIMS, a, b), 0.0)
        .expect("pipeline admits");
    svc.drain();
    let got = svc.completions()[0]
        .output
        .as_ref()
        .expect("keep_outputs retains the surface");

    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(
            (g.re.to_bits(), g.im.to_bits()),
            (w.re.to_bits(), w.im.to_bits()),
            "voxel {i}: served {g} vs direct {w}"
        );
    }
}

#[test]
fn served_docking_argmax_reports_the_natural_order_index() {
    let a = volume(105);
    let b = volume(106);

    // Direct: the correlator's argmax, which unpacks the kernel's packed
    // buffer index to natural (x, y, z) before reporting.
    let mut gpu = Gpu::new(DeviceSpec::gts8800());
    let mut corr = GpuCorrelator::new(&mut gpu, DIMS.0, DIMS.1, DIMS.2);
    corr.load_a(&mut gpu, &a);
    let ((x, y, z), want_score, _) = corr.correlate_argmax(&mut gpu, &b);

    // Served: the docking DAG's terminal ArgMax reduce. Its 8-byte result
    // packs the natural-order linear index into (lo, hi) halves of the
    // second complex sample — clients must be able to decode it without
    // knowing the card's internal data layout.
    let mut svc = ServeConfig::builder()
        .gpus(1)
        .keep_outputs(true)
        .build_service()
        .unwrap();
    let req = PipelineRequest {
        dims: DIMS,
        inputs: vec![a, b],
        stages: docking_stages(DIMS.0 * DIMS.1 * DIMS.2),
        priority: Priority::Normal,
        deadline_s: None,
        tenant: TenantId(0),
    };
    svc.submit_pipeline(req, 0.0).expect("pipeline admits");
    svc.drain();
    let out = svc.completions()[0]
        .output
        .as_ref()
        .expect("keep_outputs retains the reduce result");

    assert_eq!(out.len(), 2);
    let got_idx = out[1].re as usize | ((out[1].im as usize) << 16);
    let want_idx = x + DIMS.0 * (y + DIMS.1 * z);
    assert_eq!(
        got_idx, want_idx,
        "served argmax index must be natural-order: got {got_idx}, \
         correlator found ({x}, {y}, {z})"
    );
    // The reduce ships the raw squared magnitude; the correlator reports
    // its square root. Same kernel, so the bits must agree exactly.
    assert_eq!(out[0].re.sqrt().to_bits(), want_score.to_bits());
}

#[test]
fn served_pipeline_moves_strictly_fewer_pcie_bytes_than_staged_requests() {
    let a = volume(103);
    let b = volume(104);
    let mk = || {
        ServeConfig::builder()
            .gpus(1)
            .keep_outputs(true)
            .build_service()
            .unwrap()
    };

    // One DAG: two volumes up, intermediates resident, one surface down.
    let mut piped = mk();
    piped
        .submit_pipeline(convolution_request(DIMS, a.clone(), b.clone()), 0.0)
        .unwrap();
    piped.drain();
    let piped = piped.finish();
    assert_eq!(piped.pipelines, 1);
    assert!(
        piped.resident_hits > 0,
        "intermediates were device-resident"
    );

    // Staged replay: the same three transforms as independent requests,
    // each shipping its volume both ways (the pointwise product runs on
    // the host between them, free of PCIe charge — a lower bound on what
    // a stageless client would really pay).
    let mut staged = mk();
    let submit = |svc: &mut fft_serve::FftService, payload: Vec<Complex32>, dir, at| {
        let spec = RequestSpec {
            shape: Shape::Volume {
                nx: DIMS.0,
                ny: DIMS.1,
                nz: DIMS.2,
            },
            direction: dir,
            algorithm: None,
            priority: Priority::Normal,
            deadline_s: None,
            tenant: TenantId(0),
            payload,
        };
        svc.submit(spec, at).unwrap();
    };
    submit(&mut staged, a, Direction::Forward, 0.0);
    submit(&mut staged, b, Direction::Forward, 0.0);
    staged.drain();
    let vol = DIMS.0 * DIMS.1 * DIMS.2;
    let scale = 1.0 / vol as f32;
    let fa = staged.completions()[0].output.clone().unwrap();
    let fb = staged.completions()[1].output.clone().unwrap();
    let product: Vec<Complex32> = fa
        .iter()
        .zip(&fb)
        .map(|(x, y)| *x * y.conj() * Complex32::new(scale, 0.0))
        .collect();
    let at = staged.now_s();
    submit(&mut staged, product, Direction::Inverse, at);
    staged.drain();
    let staged = staged.finish();

    let piped_bytes = piped.h2d_bytes + piped.d2h_bytes;
    let staged_bytes = staged.h2d_bytes + staged.d2h_bytes;
    assert!(
        piped_bytes < staged_bytes,
        "pipeline moved {piped_bytes} B, staged replay {staged_bytes} B"
    );
    // The saving is structural: 2 volumes up + 1 down versus 3 up + 3 down.
    let vol_bytes = (vol * 8) as u64;
    assert_eq!(piped_bytes, 3 * vol_bytes);
    assert_eq!(staged_bytes, 6 * vol_bytes);
}
