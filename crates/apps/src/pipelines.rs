//! The §4.4 applications re-expressed as `fft-serve` pipeline DAGs.
//!
//! [`crate::convolution::GpuCorrelator`] and [`crate::docking::dock`] drive
//! a card directly; these builders express the *same* kernel sequence —
//! two forward transforms, the conjugate spectrum product with `1/N`
//! folded in, the chained inverse, optionally the on-card argmax — as a
//! [`PipelineRequest`] the serving stack schedules like any other request,
//! with every intermediate in a device-resident slot. The served
//! convolution is bit-for-bit the correlator's output (same kernels, same
//! order, same buffers), which the `pipeline_serve` integration test
//! asserts.

use fft_math::Complex32;
use fft_serve::pipeline::{convolution_stages, docking_stages};
use fft_serve::{PipelineRequest, Priority, SeededPipeline, TenantId};

use crate::docking::{voxelize_ligand, voxelize_receptor, Molecule};

/// A served correlation `IFFT(F[A] · conj(F[B])) / N` over explicit host
/// volumes: the [`crate::convolution::GpuCorrelator::correlate`] surface
/// as one schedulable DAG.
pub fn convolution_request(
    dims: (usize, usize, usize),
    a: Vec<Complex32>,
    b: Vec<Complex32>,
) -> PipelineRequest {
    let elems = dims.0 * dims.1 * dims.2;
    PipelineRequest {
        dims,
        inputs: vec![a, b],
        stages: convolution_stages(elems),
        priority: Priority::Normal,
        deadline_s: None,
        tenant: TenantId(0),
    }
}

/// The seeded (wire-transportable) form of [`convolution_request`]: both
/// volumes fold into SplitMix64 seeds, so the template replays
/// bit-identically on either side of `bifft-wire-v1.3`.
pub fn convolution_pipeline(
    dims: (usize, usize, usize),
    seed_a: u64,
    seed_b: u64,
) -> SeededPipeline {
    let elems = dims.0 * dims.1 * dims.2;
    SeededPipeline {
        dims,
        input_seeds: vec![seed_a, seed_b],
        stages: convolution_stages(elems),
        priority: Priority::Normal,
        deadline_s: None,
        tenant: TenantId(0),
    }
}

/// One docking pose as a served DAG: correlate the voxelised receptor
/// against one ligand rotation and reduce to the best translation on the
/// card — only `(index, score)` crosses the bus, the §4.4 confinement
/// argument as a pipeline.
pub fn docking_request(
    dims: (usize, usize, usize),
    receptor: &Molecule,
    ligand: &Molecule,
    rotation: &[[f32; 3]; 3],
) -> PipelineRequest {
    let elems = dims.0 * dims.1 * dims.2;
    PipelineRequest {
        dims,
        inputs: vec![
            voxelize_receptor(receptor, dims),
            voxelize_ligand(&ligand.rotated(rotation), dims),
        ],
        stages: docking_stages(elems),
        priority: Priority::Normal,
        deadline_s: None,
        tenant: TenantId(0),
    }
}

/// The full rotation sweep as a batch of independent DAGs — one
/// [`docking_request`] per rotation, ready to submit back-to-back so the
/// scheduler can pack them across the fleet.
pub fn docking_sweep(
    dims: (usize, usize, usize),
    receptor: &Molecule,
    ligand: &Molecule,
    rotations: &[[[f32; 3]; 3]],
) -> Vec<PipelineRequest> {
    rotations
        .iter()
        .map(|rot| docking_request(dims, receptor, ligand, rot))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docking::cube_rotations;

    #[test]
    fn builders_produce_valid_dags() {
        let dims = (16usize, 16, 16);
        let receptor = Molecule::synthetic_globule(8, 2.5, 5);
        let ligand = Molecule::synthetic_globule(3, 1.5, 6);
        let conv = convolution_pipeline(dims, 1, 2).materialize();
        assert!(conv.validate().is_ok());
        assert_eq!(conv.stages.len(), 4);
        for req in docking_sweep(dims, &receptor, &ligand, &cube_rotations()[..3]) {
            assert!(req.validate().is_ok());
            assert_eq!(req.stages.len(), 5);
        }
    }
}
