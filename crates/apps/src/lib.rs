//! `fft-apps` — application case studies built on the bandwidth-intensive
//! 3-D FFT, reproducing the paper's §4.4 on-card-confinement argument:
//!
//! * [`convolution`] — FFT-based circular correlation with the receptor
//!   spectrum resident on the card and an on-device argmax reduction,
//! * [`docking`] — ZDock-style rigid-body docking on synthetic proteins
//!   (rotation sweep over one resident receptor),
//! * [`spectral`] — turbulence-style spectrum synthesis/analysis and a
//!   spectral Poisson solver.

#![warn(missing_docs)]

pub mod convolution;
pub mod docking;
pub mod spectral;

pub use convolution::GpuCorrelator;
pub use docking::{cube_rotations, dock, Molecule};
