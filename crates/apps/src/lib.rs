//! `fft-apps` — application case studies built on the bandwidth-intensive
//! 3-D FFT, reproducing the paper's §4.4 on-card-confinement argument:
//!
//! * [`convolution`] — FFT-based circular correlation with the receptor
//!   spectrum resident on the card and an on-device argmax reduction,
//! * [`docking`] — ZDock-style rigid-body docking on synthetic proteins
//!   (rotation sweep over one resident receptor),
//! * [`spectral`] — turbulence-style spectrum synthesis/analysis and a
//!   spectral Poisson solver,
//! * [`pipelines`] — the same convolution/docking workloads re-expressed
//!   as `fft-serve` pipeline DAGs (served with on-card intermediate
//!   residency instead of driving a card directly).

#![warn(missing_docs)]

pub mod convolution;
pub mod docking;
pub mod pipelines;
pub mod spectral;

pub use convolution::GpuCorrelator;
pub use docking::{cube_rotations, dock, Molecule};
pub use pipelines::{convolution_pipeline, convolution_request, docking_request, docking_sweep};
