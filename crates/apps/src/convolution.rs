//! FFT-based 3-D circular convolution and correlation on the simulated GPU.
//!
//! This is the compute pattern of §4.4: "Its kernel computation is 3-D
//! convolution based on 3-D FFT to calculate scores for all the translations
//! at once." The whole pipeline — two forward transforms, the pointwise
//! spectrum product, and the inverse transform — stays on the card; only the
//! input volumes go up and (optionally) the result comes down.
//!
//! The inverse transform uses the split-swapped chained plan, so the forward
//! output feeds the inverse directly with **no relayout pass**: data crosses
//! device memory exactly 3 x 5 kernel passes, nothing more.

use bifft::elementwise::{run_argmax_norm, run_argmax_re, run_pointwise_mul};
use bifft::five_step::FiveStepFft;
use fft_math::twiddle::Direction;
use fft_math::Complex32;
use gpu_sim::{BufferId, Gpu};

/// Accounting of one on-card correlation (for the §4.4 transfer argument).
#[derive(Clone, Debug, Default)]
pub struct ConvReport {
    /// Modelled on-device compute seconds (all kernels).
    pub device_s: f64,
    /// Bytes uploaded.
    pub h2d_bytes: u64,
    /// Bytes downloaded.
    pub d2h_bytes: u64,
}

/// A planned on-card correlation engine over a fixed grid.
pub struct GpuCorrelator {
    fwd: FiveStepFft,
    inv: FiveStepFft,
    /// Device buffers: A (receptor, stays resident), B (per-call), scratch.
    buf_a: BufferId,
    buf_b: BufferId,
    work: BufferId,
    dims: (usize, usize, usize),
    a_loaded: bool,
}

impl GpuCorrelator {
    /// Plans a correlator for `nx x ny x nz` volumes on the given device.
    pub fn new(gpu: &mut Gpu, nx: usize, ny: usize, nz: usize) -> Self {
        let fwd = FiveStepFft::new(gpu, nx, ny, nz);
        let inv = fwd.inverse_chained(gpu);
        let n = fwd.volume();
        let buf_a = gpu
            .mem_mut()
            .alloc(n)
            .expect("device too small for volume A");
        let buf_b = gpu
            .mem_mut()
            .alloc(n)
            .expect("device too small for volume B");
        let work = gpu
            .mem_mut()
            .alloc(n)
            .expect("device too small for scratch");
        GpuCorrelator {
            fwd,
            inv,
            buf_a,
            buf_b,
            work,
            dims: (nx, ny, nz),
            a_loaded: false,
        }
    }

    /// Grid dimensions.
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Volume in elements.
    pub fn volume(&self) -> usize {
        self.fwd.volume()
    }

    /// Uploads volume A (e.g. the receptor) and transforms it once; its
    /// spectrum then stays resident across [`GpuCorrelator::correlate`] calls
    /// — the §4.4 confinement trick.
    pub fn load_a(&mut self, gpu: &mut Gpu, a: &[Complex32]) -> ConvReport {
        let mut rep = ConvReport::default();
        self.fwd.upload(gpu, self.buf_a, a);
        rep.h2d_bytes += (a.len() * 8) as u64;
        let run = self
            .fwd
            .execute(gpu, self.buf_a, self.work, Direction::Forward);
        rep.device_s += run.total_time_s();
        self.a_loaded = true;
        rep
    }

    /// Correlates a new volume B against the resident A: returns the raw
    /// (unnormalised by volume) correlation surface `IFFT(F[A] · conj(F[B]))`
    /// as a natural-order host volume.
    pub fn correlate(&self, gpu: &mut Gpu, b: &[Complex32]) -> (Vec<Complex32>, ConvReport) {
        let mut rep = self.correlate_on_card(gpu, b);
        // Download the full surface (off-card consumers).
        let mut packed = vec![Complex32::ZERO; self.volume()];
        gpu.mem().download(self.buf_b, 0, &mut packed);
        rep.d2h_bytes += (packed.len() * 8) as u64;
        // The inverse plan's output layout equals the forward plan's *input*
        // layout; unpack accordingly.
        let l = self.fwd.layout();
        let (nx, ny, nz) = self.dims;
        let mut out = vec![Complex32::ZERO; self.volume()];
        let mut i = 0;
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    out[i] = packed[l.input_index(x, y, z)];
                    i += 1;
                }
            }
        }
        (out, rep)
    }

    /// Correlates and reduces on the card: only `(index, score)` crosses the
    /// bus. Returns the natural-order `(x, y, z)` offset of the best
    /// translation, its score, and the transfer accounting.
    pub fn correlate_argmax(
        &self,
        gpu: &mut Gpu,
        b: &[Complex32],
    ) -> ((usize, usize, usize), f32, ConvReport) {
        let mut rep = self.correlate_on_card(gpu, b);
        let (idx, score, krep) = run_argmax_norm(gpu, self.buf_b, self.volume());
        rep.device_s += krep.timing.time_s;
        rep.d2h_bytes += 8;
        (self.unpack_index(idx), score.sqrt(), rep)
    }

    /// As [`GpuCorrelator::correlate_argmax`], but maximising the *signed
    /// real part* of the surface — the docking score convention, where core
    /// clashes are large negative values.
    pub fn correlate_argmax_re(
        &self,
        gpu: &mut Gpu,
        b: &[Complex32],
    ) -> ((usize, usize, usize), f32, ConvReport) {
        let mut rep = self.correlate_on_card(gpu, b);
        let (idx, score, krep) = run_argmax_re(gpu, self.buf_b, self.volume());
        rep.device_s += krep.timing.time_s;
        rep.d2h_bytes += 8;
        (self.unpack_index(idx), score, rep)
    }

    /// Maps a packed (inverse-output-layout) index back to natural `(x,y,z)`.
    fn unpack_index(&self, idx: usize) -> (usize, usize, usize) {
        let l = self.fwd.layout();
        let (nx, ny, nz) = self.dims;
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    if l.input_index(x, y, z) == idx {
                        return (x, y, z);
                    }
                }
            }
        }
        unreachable!("index must map to a voxel")
    }

    fn correlate_on_card(&self, gpu: &mut Gpu, b: &[Complex32]) -> ConvReport {
        assert!(self.a_loaded, "call load_a before correlate");
        assert_eq!(b.len(), self.volume(), "volume mismatch");
        let mut rep = ConvReport::default();
        self.fwd.upload(gpu, self.buf_b, b);
        rep.h2d_bytes += (b.len() * 8) as u64;
        let run = self
            .fwd
            .execute(gpu, self.buf_b, self.work, Direction::Forward);
        rep.device_s += run.total_time_s();
        // Spectrum product with 1/N scaling folded in (unnormalised inverse).
        let scale = 1.0 / self.volume() as f32;
        let k = run_pointwise_mul(
            gpu,
            self.buf_a,
            self.buf_b,
            self.buf_b,
            self.volume(),
            scale,
            true,
        );
        rep.device_s += k.timing.time_s;
        let run = self
            .inv
            .execute(gpu, self.buf_b, self.work, Direction::Inverse);
        rep.device_s += run.total_time_s();
        rep
    }
}

/// Reference O(N²)-ish circular cross-correlation used by the tests:
/// `out[d] = sum_t a[t + d] * conj(b[t])` (indices wrap).
pub fn correlate_reference(
    a: &[Complex32],
    b: &[Complex32],
    nx: usize,
    ny: usize,
    nz: usize,
) -> Vec<Complex32> {
    let idx = |x: usize, y: usize, z: usize| x % nx + nx * (y % ny + ny * (z % nz));
    let mut out = vec![Complex32::ZERO; a.len()];
    for dz in 0..nz {
        for dy in 0..ny {
            for dx in 0..nx {
                let mut acc = Complex32::ZERO;
                for z in 0..nz {
                    for y in 0..ny {
                        for x in 0..nx {
                            acc += a[idx(x + dx, y + dy, z + dz)] * b[idx(x, y, z)].conj();
                        }
                    }
                }
                out[idx(dx, dy, dz)] = acc;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft_math::c32;
    use fft_math::rng::SplitMix64;
    use gpu_sim::DeviceSpec;

    #[test]
    fn correlation_matches_reference() {
        let (nx, ny, nz) = (8usize, 8, 8);
        let mut rng = SplitMix64::new(61);
        let a: Vec<Complex32> = (0..nx * ny * nz)
            .map(|_| c32(rng.uniform_f32(-1.0, 1.0), 0.0))
            .collect();
        let b: Vec<Complex32> = (0..nx * ny * nz)
            .map(|_| c32(rng.uniform_f32(-1.0, 1.0), 0.0))
            .collect();

        let mut gpu = Gpu::new(DeviceSpec::gts8800());
        let mut corr = GpuCorrelator::new(&mut gpu, nx, ny, nz);
        corr.load_a(&mut gpu, &a);
        let (got, _) = corr.correlate(&mut gpu, &b);
        let want = correlate_reference(&a, &b, nx, ny, nz);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((*g - *w).abs() < 1e-2, "bin {i}: {g} vs {w}");
        }
    }

    #[test]
    fn argmax_finds_planted_shift() {
        // b is a copy of a shifted by (3, 2, 5): the correlation peak must
        // land exactly there.
        let (nx, ny, nz) = (16usize, 16, 16);
        let mut rng = SplitMix64::new(62);
        let b: Vec<Complex32> = (0..nx * ny * nz)
            .map(|_| c32(rng.uniform_f32(-1.0, 1.0), 0.0))
            .collect();
        let (sx, sy, sz) = (3usize, 2, 5);
        let mut a = vec![Complex32::ZERO; b.len()];
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    a[(x + sx) % nx + nx * (((y + sy) % ny) + ny * ((z + sz) % nz))] =
                        b[x + nx * (y + ny * z)];
                }
            }
        }
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let mut corr = GpuCorrelator::new(&mut gpu, nx, ny, nz);
        corr.load_a(&mut gpu, &a);
        let ((x, y, z), score, rep) = corr.correlate_argmax(&mut gpu, &b);
        assert_eq!((x, y, z), (sx, sy, sz));
        assert!(score > 0.0);
        // On-card reduction: only 8 bytes come back.
        assert_eq!(rep.d2h_bytes, 8);
    }

    #[test]
    fn on_card_confinement_saves_transfers() {
        let (nx, ny, nz) = (16usize, 16, 16);
        let vol_bytes = (nx * ny * nz * 8) as u64;
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let mut corr = GpuCorrelator::new(&mut gpu, nx, ny, nz);
        let a = vec![c32(1.0, 0.0); nx * ny * nz];
        corr.load_a(&mut gpu, &a);
        let (_, _, rep) = corr.correlate_argmax(&mut gpu, &a);
        // One volume up, 8 bytes down — versus 3 volumes each way for an
        // offload-per-FFT design.
        assert_eq!(rep.h2d_bytes, vol_bytes);
        assert!(rep.d2h_bytes < vol_bytes / 1000);
    }
}
