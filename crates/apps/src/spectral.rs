//! Turbulence-style spectral analysis — the §1 HPC motivation.
//!
//! The paper cites the Earth Simulator turbulence DNS (Yokokawa et al.) as
//! the kind of workload 3-D FFTs serve. This module provides the two
//! spectral primitives such codes are built from, running on the simulated
//! GPU through the bandwidth-intensive transform:
//!
//! * a synthetic velocity field with a prescribed Kolmogorov `k^(-5/3)`
//!   inertial-range spectrum, and the shell-averaged energy spectrum `E(k)`
//!   computed back from it (synthesis ↔ analysis round trip), and
//! * a spectral Poisson solver `∇²φ = ρ` (divide by `-|k|²` in Fourier
//!   space), the pressure-projection core of incompressible flow solvers.

use bifft::five_step::FiveStepFft;
use fft_math::rng::SplitMix64;
use fft_math::twiddle::Direction;
use fft_math::Complex32;
use gpu_sim::Gpu;

/// Signed integer wavenumber of bin `i` along an axis of length `n`
/// (bins above `n/2` alias to negative frequencies).
#[inline]
pub fn wavenumber(i: usize, n: usize) -> i64 {
    if i <= n / 2 {
        i as i64
    } else {
        i as i64 - n as i64
    }
}

/// Synthesises a periodic scalar field whose power spectrum follows
/// `|F(k)|² ~ |k|^(-slope)` with random phases (slope = 5/3 + 2 gives the
/// Kolmogorov velocity spectrum when shell-integrated; pass the *power*
/// slope you want directly).
pub fn synthesize_power_law_field(
    gpu: &mut Gpu,
    plan: &FiveStepFft,
    dims: (usize, usize, usize),
    power_slope: f64,
    seed: u64,
) -> Vec<Complex32> {
    let (nx, ny, nz) = dims;
    let mut rng = SplitMix64::new(seed);
    let mut spectrum = vec![Complex32::ZERO; nx * ny * nz];
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let k2 = (wavenumber(x, nx).pow(2)
                    + wavenumber(y, ny).pow(2)
                    + wavenumber(z, nz).pow(2)) as f64;
                if k2 == 0.0 {
                    continue; // no mean flow
                }
                let amp = (k2.sqrt()).powf(-power_slope / 2.0) as f32;
                let phase = rng.uniform_f32(0.0, std::f32::consts::TAU);
                spectrum[x + nx * (y + ny * z)] = Complex32::cis(phase).scale(amp);
            }
        }
    }
    // Inverse transform on the device: spectrum -> physical space.
    let inv = plan.inverse_chained(gpu);
    let (v, w) = inv.alloc_buffers(gpu).expect("device too small");
    inv.upload(gpu, v, &spectrum);
    inv.execute(gpu, v, w, Direction::Inverse);
    let field = inv.download(gpu, v);
    gpu.mem_mut().free(v);
    gpu.mem_mut().free(w);
    let scale = 1.0 / (nx * ny * nz) as f32;
    field.into_iter().map(|z| z.scale(scale)).collect()
}

/// Shell-averaged energy spectrum `E(k)` of a field, computed through the
/// GPU forward transform: `E(k) = sum over the shell |k|∈[k, k+1) of |F|²/N²`.
pub fn energy_spectrum(
    gpu: &mut Gpu,
    plan: &FiveStepFft,
    dims: (usize, usize, usize),
    field: &[Complex32],
) -> (Vec<f64>, gpu_sim::KernelReport) {
    let (nx, ny, nz) = dims;
    let (v, w) = plan.alloc_buffers(gpu).expect("device too small");
    plan.upload(gpu, v, field);
    let run = plan.execute(gpu, v, w, Direction::Forward);
    let spec = plan.download(gpu, v);
    gpu.mem_mut().free(v);
    gpu.mem_mut().free(w);

    let kmax = nx.max(ny).max(nz) / 2;
    let n2 = (field.len() as f64).powi(2);
    let mut e = vec![0.0f64; kmax + 1];
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let k2 = (wavenumber(x, nx).pow(2)
                    + wavenumber(y, ny).pow(2)
                    + wavenumber(z, nz).pow(2)) as f64;
                let shell = k2.sqrt().round() as usize;
                if shell <= kmax {
                    e[shell] += spec[x + nx * (y + ny * z)].norm_sqr() as f64 / n2;
                }
            }
        }
    }
    (e, run.steps.last().expect("five steps ran").clone())
}

/// Solves the periodic Poisson equation `∇²φ = ρ` spectrally on the device
/// (wavenumbers in radians: `φ(k) = -ρ(k) / |k|²`, zero-mean convention).
pub fn poisson_solve(
    gpu: &mut Gpu,
    plan: &FiveStepFft,
    dims: (usize, usize, usize),
    rho: &[Complex32],
) -> Vec<Complex32> {
    let (nx, ny, nz) = dims;
    let (v, w) = plan.alloc_buffers(gpu).expect("device too small");
    plan.upload(gpu, v, rho);
    plan.execute(gpu, v, w, Direction::Forward);
    let mut spec = plan.download(gpu, v);

    // Divide by -|k|² (host side for clarity; a production solver would fuse
    // this into a device kernel like elementwise::run_pointwise_mul).
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = x + nx * (y + ny * z);
                let k2 = (wavenumber(x, nx).pow(2)
                    + wavenumber(y, ny).pow(2)
                    + wavenumber(z, nz).pow(2)) as f32;
                spec[i] = if k2 == 0.0 {
                    Complex32::ZERO
                } else {
                    spec[i].scale(-1.0 / k2)
                };
            }
        }
    }

    let inv = plan.inverse_chained(gpu);
    let (v2, w2) = (v, w); // reuse the same device buffers
    inv.upload(gpu, v2, &spec);
    inv.execute(gpu, v2, w2, Direction::Inverse);
    let phi = inv.download(gpu, v2);
    gpu.mem_mut().free(v2);
    gpu.mem_mut().free(w2);
    let scale = 1.0 / (nx * ny * nz) as f32;
    phi.into_iter().map(|z| z.scale(scale)).collect()
}

/// Least-squares slope of `log E(k)` vs `log k` over `k in [k_lo, k_hi]` —
/// how the tests check the synthesised inertial range.
pub fn fitted_slope(e: &[f64], k_lo: usize, k_hi: usize) -> f64 {
    let pts: Vec<(f64, f64)> = (k_lo..=k_hi)
        .filter(|&k| e[k] > 0.0)
        .map(|k| ((k as f64).ln(), e[k].ln()))
        .collect();
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft_math::c32;
    use gpu_sim::DeviceSpec;

    #[test]
    fn wavenumber_aliasing() {
        assert_eq!(wavenumber(0, 16), 0);
        assert_eq!(wavenumber(8, 16), 8);
        assert_eq!(wavenumber(9, 16), -7);
        assert_eq!(wavenumber(15, 16), -1);
    }

    #[test]
    fn synthesis_analysis_recovers_slope() {
        let dims = (32usize, 32, 32);
        let mut gpu = Gpu::new(DeviceSpec::gts8800());
        let plan = FiveStepFft::new(&mut gpu, dims.0, dims.1, dims.2);
        // Target power slope: |F(k)|² ~ k^-4 → shell E(k) ~ k^{2-4} = k^-2.
        let field = synthesize_power_law_field(&mut gpu, &plan, dims, 4.0, 81);
        let (e, _) = energy_spectrum(&mut gpu, &plan, dims, &field);
        let slope = fitted_slope(&e, 2, 10);
        assert!((slope - (-2.0)).abs() < 0.35, "slope {slope}");
    }

    #[test]
    fn poisson_solves_plane_wave() {
        // rho = cos(k·x) has the analytic solution φ = -cos(k·x)/|k|².
        let dims = (16usize, 16, 16);
        let (kx, ky, kz) = (2i64, 1, 0);
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let plan = FiveStepFft::new(&mut gpu, dims.0, dims.1, dims.2);
        let mut rho = Vec::with_capacity(16 * 16 * 16);
        for z in 0..16 {
            for y in 0..16 {
                for x in 0..16 {
                    let ph = std::f32::consts::TAU
                        * (kx as f32 * x as f32 + ky as f32 * y as f32 + kz as f32 * z as f32)
                        / 16.0;
                    rho.push(c32(ph.cos(), 0.0));
                }
            }
        }
        let phi = poisson_solve(&mut gpu, &plan, dims, &rho);
        let k2 = (kx * kx + ky * ky + kz * kz) as f32;
        for (i, (p, r)) in phi.iter().zip(&rho).enumerate() {
            let want = -r.re / k2;
            assert!((p.re - want).abs() < 1e-3, "voxel {i}: {} vs {want}", p.re);
            assert!(p.im.abs() < 1e-3);
        }
    }

    #[test]
    fn parseval_between_field_and_spectrum() {
        let dims = (16usize, 16, 16);
        let mut gpu = Gpu::new(DeviceSpec::gtx8800());
        let plan = FiveStepFft::new(&mut gpu, dims.0, dims.1, dims.2);
        let field = synthesize_power_law_field(&mut gpu, &plan, dims, 3.0, 82);
        let (e, _) = energy_spectrum(&mut gpu, &plan, dims, &field);
        let real_energy: f64 =
            field.iter().map(|z| z.norm_sqr() as f64).sum::<f64>() / field.len() as f64;
        let spec_energy: f64 = e.iter().sum();
        // Shells above kmax clip a few corner modes; allow 20%.
        assert!(
            (real_energy - spec_energy).abs() < 0.2 * real_energy,
            "{real_energy} vs {spec_energy}"
        );
    }
}
