//! ZDock-style rigid-body protein–protein docking (the §4.4 application).
//!
//! "By rotating and translating the Ligand protein, the best docking
//! positions are determined by scoring scheme. Its kernel computation is 3-D
//! convolution based on 3-D FFT to calculate scores for all the translations
//! at once. By integrating all such other operations into the GPU, data
//! transfer is largely eliminated; the host program only sends input data
//! and receives small data about the best docking positions."
//!
//! The paper used real PDB structures; we have none, so the substitution
//! (DESIGN.md §2) is synthetic geometry that exercises the identical code
//! path: atoms are voxelised to receptor/ligand grids, shape-complementarity
//! scores are computed for **all translations at once** by FFT correlation,
//! the argmax reduction stays on the card, and a rotation sweep drives many
//! correlations against one resident receptor spectrum.
//!
//! Scoring (simplified ZDock shape complementarity): receptor surface
//! voxels score +1 against ligand voxels, receptor core voxels score a
//! `CORE_PENALTY` — a docked pose maximises surface contact without burying
//! the ligand in the core.

use crate::convolution::{ConvReport, GpuCorrelator};
use fft_math::rng::SplitMix64;
use fft_math::{c32, Complex32};
use gpu_sim::Gpu;

/// Penalty weight for a ligand voxel overlapping the receptor core.
pub const CORE_PENALTY: f32 = -15.0;

/// A pseudo-atom: centre + radius, in grid units.
#[derive(Clone, Copy, Debug)]
pub struct Atom {
    /// Centre coordinates.
    pub pos: [f32; 3],
    /// Van-der-Waals-ish radius.
    pub radius: f32,
}

/// A rigid molecule: a bag of pseudo-atoms.
#[derive(Clone, Debug, Default)]
pub struct Molecule {
    /// The atoms.
    pub atoms: Vec<Atom>,
}

impl Molecule {
    /// Generates a synthetic globular "protein": a blob of `n` atoms drawn
    /// around the origin with radius ~`spread`.
    pub fn synthetic_globule(n: usize, spread: f32, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let atoms = (0..n)
            .map(|_| {
                // Rejection-free ball sampling via normalised Gaussian-ish
                // triple + cube-root radius.
                let dir = [
                    rng.uniform_f32(-1.0, 1.0),
                    rng.uniform_f32(-1.0, 1.0),
                    rng.uniform_f32(-1.0, 1.0),
                ];
                let norm = (dir[0] * dir[0] + dir[1] * dir[1] + dir[2] * dir[2])
                    .sqrt()
                    .max(1e-3);
                let r = spread * rng.next_f32().cbrt();
                Atom {
                    pos: [dir[0] / norm * r, dir[1] / norm * r, dir[2] / norm * r],
                    radius: rng.uniform_f32(1.2, 2.0),
                }
            })
            .collect();
        Molecule { atoms }
    }

    /// Rotates the molecule by a rotation matrix (row-major 3x3).
    pub fn rotated(&self, m: &[[f32; 3]; 3]) -> Molecule {
        let atoms = self
            .atoms
            .iter()
            .map(|a| {
                let p = a.pos;
                Atom {
                    pos: [
                        m[0][0] * p[0] + m[0][1] * p[1] + m[0][2] * p[2],
                        m[1][0] * p[0] + m[1][1] * p[1] + m[1][2] * p[2],
                        m[2][0] * p[0] + m[2][1] * p[1] + m[2][2] * p[2],
                    ],
                    radius: a.radius,
                }
            })
            .collect();
        Molecule { atoms }
    }

    /// Translates the molecule.
    pub fn translated(&self, d: [f32; 3]) -> Molecule {
        let atoms = self
            .atoms
            .iter()
            .map(|a| Atom {
                pos: [a.pos[0] + d[0], a.pos[1] + d[1], a.pos[2] + d[2]],
                radius: a.radius,
            })
            .collect();
        Molecule { atoms }
    }
}

/// The 24 proper rotations of the cube (the classic coarse rotation sweep).
pub fn cube_rotations() -> Vec<[[f32; 3]; 3]> {
    let mut out = Vec::with_capacity(24);
    let axes: [[i32; 3]; 6] = [
        [1, 0, 0],
        [-1, 0, 0],
        [0, 1, 0],
        [0, -1, 0],
        [0, 0, 1],
        [0, 0, -1],
    ];
    for f in axes {
        for u in axes {
            // u must be orthogonal to f.
            if f[0] * u[0] + f[1] * u[1] + f[2] * u[2] != 0 {
                continue;
            }
            // right = f x u
            let r = [
                f[1] * u[2] - f[2] * u[1],
                f[2] * u[0] - f[0] * u[2],
                f[0] * u[1] - f[1] * u[0],
            ];
            out.push([
                [f[0] as f32, u[0] as f32, r[0] as f32],
                [f[1] as f32, u[1] as f32, r[1] as f32],
                [f[2] as f32, u[2] as f32, r[2] as f32],
            ]);
        }
    }
    debug_assert_eq!(out.len(), 24);
    out
}

/// Voxelised receptor: surface voxels +1, core voxels [`CORE_PENALTY`].
pub fn voxelize_receptor(mol: &Molecule, dims: (usize, usize, usize)) -> Vec<Complex32> {
    let occ = occupancy_grid(mol, dims);
    let (nx, ny, nz) = dims;
    let mut out = vec![Complex32::ZERO; nx * ny * nz];
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = x + nx * (y + ny * z);
                if !occ[i] {
                    continue;
                }
                // Core = occupied voxel with all 6 neighbours occupied
                // (periodic — the FFT correlation is circular anyway).
                let nb = [
                    ((x + 1) % nx, y, z),
                    ((x + nx - 1) % nx, y, z),
                    (x, (y + 1) % ny, z),
                    (x, (y + ny - 1) % ny, z),
                    (x, y, (z + 1) % nz),
                    (x, y, (z + nz - 1) % nz),
                ];
                let core = nb.iter().all(|&(a, b, c)| occ[a + nx * (b + ny * c)]);
                out[i] = if core {
                    c32(CORE_PENALTY, 0.0)
                } else {
                    c32(1.0, 0.0)
                };
            }
        }
    }
    out
}

/// Voxelised ligand: occupied voxels +1.
pub fn voxelize_ligand(mol: &Molecule, dims: (usize, usize, usize)) -> Vec<Complex32> {
    let occ = occupancy_grid(mol, dims);
    occ.into_iter()
        .map(|o| if o { c32(1.0, 0.0) } else { Complex32::ZERO })
        .collect()
}

/// Boolean occupancy on a grid whose origin sits at the volume centre.
fn occupancy_grid(mol: &Molecule, dims: (usize, usize, usize)) -> Vec<bool> {
    let (nx, ny, nz) = dims;
    let c = [nx as f32 / 2.0, ny as f32 / 2.0, nz as f32 / 2.0];
    let mut occ = vec![false; nx * ny * nz];
    for a in &mol.atoms {
        let p = [a.pos[0] + c[0], a.pos[1] + c[1], a.pos[2] + c[2]];
        let r = a.radius;
        let (x0, x1) = ((p[0] - r).floor() as i64, (p[0] + r).ceil() as i64);
        let (y0, y1) = ((p[1] - r).floor() as i64, (p[1] + r).ceil() as i64);
        let (z0, z1) = ((p[2] - r).floor() as i64, (p[2] + r).ceil() as i64);
        for z in z0..=z1 {
            for y in y0..=y1 {
                for x in x0..=x1 {
                    let d2 = (x as f32 - p[0]).powi(2)
                        + (y as f32 - p[1]).powi(2)
                        + (z as f32 - p[2]).powi(2);
                    if d2 <= r * r {
                        let (xi, yi, zi) = (
                            x.rem_euclid(nx as i64) as usize,
                            y.rem_euclid(ny as i64) as usize,
                            z.rem_euclid(nz as i64) as usize,
                        );
                        occ[xi + nx * (yi + ny * zi)] = true;
                    }
                }
            }
        }
    }
    occ
}

/// Result of a docking sweep.
#[derive(Clone, Debug)]
pub struct DockingResult {
    /// Index of the winning rotation in the sweep order.
    pub rotation: usize,
    /// Best translation, natural grid offsets.
    pub translation: (usize, usize, usize),
    /// Its shape-complementarity score.
    pub score: f32,
    /// Total modelled device seconds across the sweep.
    pub device_s: f64,
    /// Host↔device bytes with on-card confinement.
    pub bytes_on_card: u64,
    /// Host↔device bytes an offload-per-FFT design would have moved.
    pub bytes_offload: u64,
}

/// Runs the full docking sweep: voxelise the receptor once, then for every
/// rotation voxelise the ligand, correlate on the card, and keep only the
/// best `(rotation, translation, score)`.
pub fn dock(
    gpu: &mut Gpu,
    receptor: &Molecule,
    ligand: &Molecule,
    dims: (usize, usize, usize),
    rotations: &[[[f32; 3]; 3]],
) -> DockingResult {
    let mut corr = GpuCorrelator::new(gpu, dims.0, dims.1, dims.2);
    let rec_grid = voxelize_receptor(receptor, dims);
    let mut acc = ConvReport::default();
    let first = corr.load_a(gpu, &rec_grid);
    acc.device_s += first.device_s;
    acc.h2d_bytes += first.h2d_bytes;

    let mut best: Option<(usize, (usize, usize, usize), f32)> = None;
    for (ri, rot) in rotations.iter().enumerate() {
        let lig_grid = voxelize_ligand(&ligand.rotated(rot), dims);
        let ((x, y, z), score, rep) = corr.correlate_argmax_re(gpu, &lig_grid);
        acc.device_s += rep.device_s;
        acc.h2d_bytes += rep.h2d_bytes;
        acc.d2h_bytes += rep.d2h_bytes;
        if best.is_none_or(|(_, _, s)| score > s) {
            best = Some((ri, (x, y, z), score));
        }
    }
    let (rotation, translation, score) = best.expect("at least one rotation");

    let vol_bytes = (dims.0 * dims.1 * dims.2 * 8) as u64;
    // Offload design: per rotation, 3 FFT round trips (2 fwd + 1 inv), each
    // shipping the volume both ways, plus the score surface download.
    let bytes_offload = rotations.len() as u64 * (3 * 2 + 1) * vol_bytes;
    DockingResult {
        rotation,
        translation,
        score,
        device_s: acc.device_s,
        bytes_on_card: acc.h2d_bytes + acc.d2h_bytes,
        bytes_offload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    #[test]
    fn cube_rotations_are_24_orthonormal() {
        let rots = cube_rotations();
        assert_eq!(rots.len(), 24);
        for m in &rots {
            // Columns orthonormal and det = +1.
            let det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
                - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
                + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
            assert!((det - 1.0).abs() < 1e-5, "det {det}");
        }
    }

    #[test]
    fn translation_and_rotation_compose() {
        let m = Molecule {
            atoms: vec![Atom {
                pos: [1.0, 0.0, 0.0],
                radius: 1.0,
            }],
        };
        let t = m.translated([0.0, 2.0, -1.0]);
        assert_eq!(t.atoms[0].pos, [1.0, 2.0, -1.0]);
        // Rotate 90° about z: x -> y.
        let rz = [[0.0f32, -1.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 1.0]];
        let r = m.rotated(&rz);
        assert!((r.atoms[0].pos[1] - 1.0).abs() < 1e-6);
        assert!(r.atoms[0].pos[0].abs() < 1e-6);
    }

    #[test]
    fn voxelizer_marks_atom_interiors() {
        let mol = Molecule {
            atoms: vec![Atom {
                pos: [0.0, 0.0, 0.0],
                radius: 2.0,
            }],
        };
        let grid = voxelize_ligand(&mol, (16, 16, 16));
        // Centre voxel occupied (grid centre is at (8,8,8)).
        assert!(grid[8 + 16 * (8 + 16 * 8)].re > 0.0);
        // Far corner empty.
        assert_eq!(grid[0], Complex32::ZERO);
    }

    #[test]
    fn receptor_has_surface_and_core() {
        let mol = Molecule {
            atoms: vec![Atom {
                pos: [0.0, 0.0, 0.0],
                radius: 4.0,
            }],
        };
        let grid = voxelize_receptor(&mol, (16, 16, 16));
        let vals: Vec<f32> = grid.iter().map(|z| z.re).collect();
        assert!(vals.contains(&1.0), "needs surface voxels");
        assert!(vals.contains(&CORE_PENALTY), "needs core voxels");
    }

    #[test]
    fn docking_matches_brute_force_oracle() {
        // The GPU sweep must return exactly the best (rotation, translation)
        // a brute-force host correlation finds.
        use crate::convolution::correlate_reference;
        let dims = (8usize, 8, 8);
        let receptor = Molecule::synthetic_globule(8, 2.5, 73);
        let ligand = Molecule::synthetic_globule(3, 1.5, 74);
        let rots = &cube_rotations()[..3];

        let mut gpu = Gpu::new(DeviceSpec::gts8800());
        let result = dock(&mut gpu, &receptor, &ligand, dims, rots);

        let rec_grid = voxelize_receptor(&receptor, dims);
        let mut best = (0usize, (0usize, 0usize, 0usize), f32::MIN);
        for (ri, rot) in rots.iter().enumerate() {
            let lig = voxelize_ligand(&ligand.rotated(rot), dims);
            let surface = correlate_reference(&rec_grid, &lig, dims.0, dims.1, dims.2);
            for z in 0..dims.2 {
                for y in 0..dims.1 {
                    for x in 0..dims.0 {
                        let s = surface[x + dims.0 * (y + dims.1 * z)].re;
                        if s > best.2 {
                            best = (ri, (x, y, z), s);
                        }
                    }
                }
            }
        }
        assert_eq!(result.rotation, best.0);
        assert_eq!(result.translation, best.1);
        assert!((result.score - best.2).abs() < 0.05 * best.2.abs().max(1.0));
    }

    #[test]
    fn confinement_saves_an_order_of_magnitude() {
        let dims = (16usize, 16, 16);
        let receptor = Molecule::synthetic_globule(20, 4.0, 71);
        let ligand = Molecule::synthetic_globule(6, 2.0, 72);
        let mut gpu = Gpu::new(DeviceSpec::gt8800());
        let rots = cube_rotations();
        let result = dock(&mut gpu, &receptor, &ligand, dims, &rots[..4]);
        assert!(result.score > f32::MIN);
        assert!(
            result.bytes_offload > 5 * result.bytes_on_card,
            "offload {} vs on-card {}",
            result.bytes_offload,
            result.bytes_on_card
        );
    }
}
