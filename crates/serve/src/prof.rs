//! The `fft-prof` binary: offline forensics over `bifft-attr-v2`
//! attribution documents ([`crate::telemetry::attribution`]).
//!
//! ```text
//! fft-prof show FILE          # one run's latency budget and tail driver
//! fft-prof diff BEFORE AFTER  # which category moved between two runs
//! ```
//!
//! `show` prints the run's e2e percentiles, per-category budget and tail
//! driver; it exits 1 when the document does not parse or its recorded
//! conservation audit failed. `diff` compares two documents — typically a
//! trusted baseline against a fresh run — and names the category
//! responsible for any mean-latency movement; it exits 1 when either
//! document is unreadable, 2 on usage errors.

use crate::telemetry::attribution::{parse_attr_json, render_diff_text, render_summary_text};

fn usage() {
    eprintln!(
        "usage: fft-prof show FILE\n\
         \u{20}      fft-prof diff BEFORE AFTER"
    );
}

fn read_summary(path: &str) -> Result<crate::telemetry::AttrSummary, i32> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("fft-prof: cannot read {path}: {e}");
        1
    })?;
    parse_attr_json(&text).map_err(|e| {
        eprintln!("fft-prof: {path}: invalid attribution document: {e}");
        1
    })
}

/// Entry point for the `fft-prof` binary; returns the process exit code.
pub fn prof_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("show") if args.len() == 2 => {
            let s = match read_summary(&args[1]) {
                Ok(s) => s,
                Err(code) => return code,
            };
            print!("{}", render_summary_text(&s));
            if s.conservation_ok {
                0
            } else {
                eprintln!("fft-prof: {}: conservation audit FAILED", args[1]);
                1
            }
        }
        Some("diff") if args.len() == 3 => {
            let before = match read_summary(&args[1]) {
                Ok(s) => s,
                Err(code) => return code,
            };
            let after = match read_summary(&args[2]) {
                Ok(s) => s,
                Err(code) => return code,
            };
            print!("{}", render_diff_text(&before, &after));
            0
        }
        _ => {
            usage();
            2
        }
    }
}
