//! Typed requests, priorities and admission-rejection reasons.
//!
//! A request names *what* to transform (shape + direction + optional
//! algorithm hint), *how urgently* (priority, optional latency deadline)
//! and carries its payload. The service assigns the [`RequestId`] at
//! submission; everything else is caller-provided.

use crate::qos::{QuotaKind, TenantId};
use bifft::plan::{Algorithm, FftError};
use fft_math::rng::SplitMix64;
use fft_math::twiddle::Direction;
use fft_math::Complex32;

/// Identifier the service assigns at submission, unique per service.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

/// Proof of admission: what [`crate::service::FftService::submit`] hands
/// back for an accepted request.
///
/// The ticket's id doubles as the wire correlation id — `fft-gate` sends
/// it to clients verbatim, and [`crate::service::FftService::poll`] folds
/// the old scan-the-completions result lookup into one call keyed on it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ticket {
    /// The id assigned at submission — also the wire correlation id.
    pub id: RequestId,
    /// Simulated arrival time the request was admitted at, seconds.
    pub at_s: f64,
}

impl Ticket {
    /// The raw correlation id `bifft-wire-v1` frames carry.
    pub fn correlation(&self) -> u64 {
        self.id.0
    }
}

/// What [`crate::service::FftService::poll`] knows about a ticket.
#[derive(Clone, Debug)]
pub enum PollStatus {
    /// Admitted, still waiting in the queue (or bounced back off a busy
    /// fleet). Virtual time has not reached its dispatch yet.
    Queued,
    /// Finished; the completion record rides along.
    Done(Completion),
    /// Admitted but failed at dispatch (a volume even the whole fleet
    /// could not allocate), with the error that proved it.
    Failed(FftError),
    /// The service never issued this id (a forged or stale correlation id
    /// off the wire).
    Unknown,
}

/// What a request asks the service to transform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// `rows` contiguous `n`-point 1-D FFTs (the paper's Table 8 workload).
    /// Requests of equal `n` coalesce into one batched launch.
    Rows1d {
        /// Transform length (power of two, 4..=512).
        n: usize,
        /// Rows in this request's payload.
        rows: usize,
    },
    /// One `nx x ny x nz` 3-D FFT. Same-shape requests share a cached plan;
    /// volumes too large for one card route to the multi-GPU sharder.
    Volume {
        /// X extent.
        nx: usize,
        /// Y extent.
        ny: usize,
        /// Z extent.
        nz: usize,
    },
}

impl Shape {
    /// Payload size in complex elements.
    pub fn elems(&self) -> usize {
        match *self {
            Shape::Rows1d { n, rows } => n * rows,
            Shape::Volume { nx, ny, nz } => nx * ny * nz,
        }
    }

    /// Payload size in bytes (8 bytes per `Complex32`).
    pub fn payload_bytes(&self) -> u64 {
        self.elems() as u64 * 8
    }

    /// The coalescing key: requests with equal keys may share one launch.
    pub fn key(&self) -> ShapeKey {
        match *self {
            Shape::Rows1d { n, .. } => ShapeKey::Rows1d { n },
            Shape::Volume { nx, ny, nz } => ShapeKey::Volume { nx, ny, nz },
        }
    }

    /// Human-readable label (`"1d256x16"`, `"vol64x64x64"`).
    pub fn label(&self) -> String {
        match *self {
            Shape::Rows1d { n, rows } => format!("1d{n}x{rows}"),
            Shape::Volume { nx, ny, nz } => format!("vol{nx}x{ny}x{nz}"),
        }
    }
}

/// A [`Shape`] with the per-request multiplicity erased — the unit the
/// batcher and plan cache key on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShapeKey {
    /// Any number of `n`-point rows.
    Rows1d {
        /// Transform length.
        n: usize,
    },
    /// One `nx x ny x nz` volume.
    Volume {
        /// X extent.
        nx: usize,
        /// Y extent.
        ny: usize,
        /// Z extent.
        nz: usize,
    },
}

/// Scheduling priority; declaration order is dispatch order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Dispatched before everything else.
    High,
    /// The default.
    #[default]
    Normal,
    /// Yields to everything else.
    Low,
}

impl Priority {
    /// Stable lowercase label (attribution profile keys, wire encoding).
    pub fn label(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// One submission: shape, direction, hints and payload.
#[derive(Clone, Debug)]
pub struct RequestSpec {
    /// What to transform.
    pub shape: Shape,
    /// Forward or inverse (inverse left unnormalised, CUFFT convention).
    pub direction: Direction,
    /// Algorithm hint for volume requests (`None` = service default).
    /// Ignored for 1-D rows, which always use the fine-grained kernel.
    pub algorithm: Option<Algorithm>,
    /// Scheduling priority.
    pub priority: Priority,
    /// Latency budget in seconds of simulated time, measured from arrival.
    /// Admission sheds requests whose estimated completion would bust it;
    /// completions past it count as timeouts and are excluded from goodput.
    pub deadline_s: Option<f64>,
    /// The tenant this request is billed to: its quota bucket, fair-share
    /// weight and preemption accounting (default tenant 0).
    pub tenant: TenantId,
    /// The data to transform (`shape.elems()` complex values).
    pub payload: Vec<Complex32>,
}

impl RequestSpec {
    /// A spec with a deterministic pseudo-random payload — the load
    /// generator's constructor (equal seeds give equal payloads).
    pub fn seeded(shape: Shape, direction: Direction, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let payload = (0..shape.elems())
            .map(|_| Complex32::new(rng.uniform_f32(-1.0, 1.0), rng.uniform_f32(-1.0, 1.0)))
            .collect();
        RequestSpec {
            shape,
            direction,
            algorithm: None,
            priority: Priority::Normal,
            deadline_s: None,
            tenant: TenantId::default(),
            payload,
        }
    }

    /// Sets the priority (builder style).
    pub fn priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Sets the latency deadline in seconds (builder style).
    pub fn deadline_s(mut self, d: f64) -> Self {
        self.deadline_s = Some(d);
        self
    }

    /// Sets the algorithm hint (builder style; volumes only).
    pub fn algorithm(mut self, a: Algorithm) -> Self {
        self.algorithm = Some(a);
        self
    }

    /// Sets the tenant the request is billed to (builder style).
    pub fn tenant(mut self, t: TenantId) -> Self {
        self.tenant = t;
        self
    }
}

/// A [`RequestSpec`] with the payload still folded into its seed — the
/// wire-transportable form.
///
/// Seeded payloads are what make network load tests replayable: a client
/// ships this handful of scalars instead of megabytes of samples, the
/// gateway materialises the exact same payload via [`RequestSpec::seeded`],
/// and a same-seed run is bit-identical whether requests arrived in
/// process or over TCP.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeededSpec {
    /// What to transform.
    pub shape: Shape,
    /// Forward or inverse.
    pub direction: Direction,
    /// Algorithm hint for volume requests.
    pub algorithm: Option<Algorithm>,
    /// Scheduling priority.
    pub priority: Priority,
    /// Latency budget, simulated seconds from arrival.
    pub deadline_s: Option<f64>,
    /// The tenant the request is billed to.
    pub tenant: TenantId,
    /// The payload seed ([`RequestSpec::seeded`] reproduces the samples).
    pub seed: u64,
}

impl SeededSpec {
    /// Expands the template into a full [`RequestSpec`] with its payload.
    pub fn materialize(&self) -> RequestSpec {
        let mut spec = RequestSpec::seeded(self.shape, self.direction, self.seed);
        spec.priority = self.priority;
        spec.deadline_s = self.deadline_s;
        spec.algorithm = self.algorithm;
        spec.tenant = self.tenant;
        spec
    }
}

/// Why admission turned a request away.
#[derive(Clone, Debug, PartialEq)]
pub enum Rejection {
    /// The bounded submission queue is at capacity — backpressure.
    QueueFull {
        /// The configured capacity.
        capacity: usize,
    },
    /// The deadline cannot plausibly be met at the current backlog.
    DeadlineInfeasible {
        /// Estimated completion latency, seconds.
        estimated_s: f64,
        /// The request's budget, seconds.
        deadline_s: f64,
    },
    /// The shape or payload is invalid for this service.
    Unsupported(FftError),
    /// A rows payload larger than a lane's staging slot — valid in shape,
    /// but too big to ever dispatch on this fleet's configuration.
    Oversized {
        /// The request's payload size, complex elements.
        elems: usize,
        /// The largest rows payload a lane can stage.
        limit_elems: usize,
    },
    /// A volume that not even the whole fleet could allocate — known from a
    /// previous sharded attempt on the same shape.
    Unallocatable(FftError),
    /// The tenant is over its admission quota (token-bucket rate or
    /// in-flight cap) — per-tenant backpressure, not global.
    QuotaExceeded {
        /// The tenant whose quota bounced the request.
        tenant: TenantId,
        /// Which quota was exhausted.
        kind: QuotaKind,
    },
    /// A pipeline DAG the executor cannot run: an unknown or malformed
    /// stage (bad operand wiring, a reduce feeding a later stage, an
    /// in-place stage sharing its operand). Stable wire code 7.
    UnsupportedStage(String),
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            Rejection::DeadlineInfeasible {
                estimated_s,
                deadline_s,
            } => write!(
                f,
                "deadline infeasible: estimated {:.3} ms > budget {:.3} ms",
                estimated_s * 1e3,
                deadline_s * 1e3
            ),
            Rejection::Unsupported(e) => write!(f, "unsupported request: {e}"),
            Rejection::Oversized { elems, limit_elems } => write!(
                f,
                "payload of {elems} elems exceeds the {limit_elems}-elem staging slot"
            ),
            Rejection::Unallocatable(e) => {
                write!(f, "fleet cannot allocate this volume: {e}")
            }
            Rejection::QuotaExceeded { tenant, kind } => {
                write!(f, "{tenant} over its {kind} quota")
            }
            Rejection::UnsupportedStage(detail) => {
                write!(f, "unsupported stage kind: {detail}")
            }
        }
    }
}

impl std::error::Error for Rejection {}

/// One finished request, as the service reports it.
#[derive(Clone, Debug)]
pub struct Completion {
    /// The id `submit` returned.
    pub id: RequestId,
    /// Simulated arrival time, seconds.
    pub arrival_s: f64,
    /// Simulated completion time, seconds.
    pub completed_s: f64,
    /// Card the request ran on (`None` for sharded multi-GPU runs, which
    /// span every card).
    pub card: Option<usize>,
    /// Requests coalesced into the same launch (1 = ran alone).
    pub batch_size: usize,
    /// Whether the deadline (if any) was missed.
    pub timed_out: bool,
    /// The transformed payload, when the service keeps outputs
    /// (`ServeConfig::keep_outputs`).
    pub output: Option<Vec<Complex32>>,
}

impl Completion {
    /// Arrival-to-completion latency, seconds.
    pub fn latency_s(&self) -> f64 {
        self.completed_s - self.arrival_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_accounting() {
        let r = Shape::Rows1d { n: 256, rows: 16 };
        assert_eq!(r.elems(), 4096);
        assert_eq!(r.payload_bytes(), 32768);
        assert_eq!(r.key(), ShapeKey::Rows1d { n: 256 });
        assert_eq!(r.label(), "1d256x16");
        let v = Shape::Volume {
            nx: 64,
            ny: 32,
            nz: 16,
        };
        assert_eq!(v.elems(), 64 * 32 * 16);
        assert_eq!(
            v.key(),
            ShapeKey::Volume {
                nx: 64,
                ny: 32,
                nz: 16
            }
        );
    }

    #[test]
    fn priorities_order_high_first() {
        assert!(Priority::High < Priority::Normal);
        assert!(Priority::Normal < Priority::Low);
    }

    #[test]
    fn seeded_spec_materializes_the_same_payload() {
        let t = SeededSpec {
            shape: Shape::Rows1d { n: 128, rows: 3 },
            direction: Direction::Inverse,
            algorithm: None,
            priority: Priority::High,
            deadline_s: Some(0.5),
            tenant: TenantId(3),
            seed: 99,
        };
        let a = t.materialize();
        let b = t.materialize();
        assert_eq!(a.payload, b.payload);
        assert_eq!(
            a.payload,
            RequestSpec::seeded(t.shape, t.direction, 99).payload
        );
        assert_eq!(a.priority, Priority::High);
        assert_eq!(a.deadline_s, Some(0.5));
        assert_eq!(a.tenant, TenantId(3));
    }

    #[test]
    fn ticket_correlation_is_the_raw_id() {
        let t = Ticket {
            id: RequestId(17),
            at_s: 2.0,
        };
        assert_eq!(t.correlation(), 17);
    }

    #[test]
    fn seeded_payloads_are_deterministic() {
        let shape = Shape::Rows1d { n: 64, rows: 2 };
        let a = RequestSpec::seeded(shape, Direction::Forward, 7);
        let b = RequestSpec::seeded(shape, Direction::Forward, 7);
        let c = RequestSpec::seeded(shape, Direction::Forward, 8);
        assert_eq!(a.payload, b.payload);
        assert_ne!(a.payload, c.payload);
        assert_eq!(a.payload.len(), 128);
    }
}
