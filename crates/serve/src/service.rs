//! The service itself: admission, the virtual-time event loop, dispatch
//! routing and graceful drain.
//!
//! `FftService` is a discrete-event simulation driven by the caller's
//! clock: every [`FftService::submit`] carries an arrival time in simulated
//! seconds, the service dispatches whatever fits onto lanes that are free
//! *at that instant*, and [`FftService::drain`] advances virtual time
//! through the remaining lane-free events until the queue empties. Because
//! the simulated GPUs are deterministic, the whole pipeline is too: the
//! same request sequence produces bit-identical [`ServeReport`]s.
//!
//! Routing rules:
//! - 1-D row batches go to the card with the shortest expected completion
//!   (EWMA service-time estimate plus a cold-plan penalty) among cards with
//!   a free stream lane (overlapped H2D/compute/D2H via the PR 2 engine
//!   model);
//! - volumes that fit one card run on its synchronous timeline, occupying
//!   every lane (a volume plan owns card-wide buffers);
//! - volumes that do not fit any card route to the PR 2 multi-GPU sharder
//!   and occupy the whole fleet.
//!
//! Multi-tenant QoS ([`crate::qos`]): admission enforces per-tenant token
//! buckets and in-flight caps, dispatch order within a priority class is
//! weighted-fair over configured shares, and (when enabled) a dispatched
//! low-priority rows batch is aborted at its next stream-safe point when a
//! higher-priority arrival needs the lane, requeued, and the wasted device
//! time charged to its tenant.

use crate::batcher::{
    form_batch, key_of, key_of_spec, rank_algo, Batch, BatchKey, BatchLimits, Estimator,
};
use crate::pipeline::{PipeEstimator, PipelineRequest, SeededPipeline};
use crate::qos::{QosBook, QosConfig};
use crate::queue::{Pending, SubmitQueue};
use crate::report::{CardReport, LatencyStats, ServeReport, TenantReport};
use crate::request::{
    Completion, PollStatus, Rejection, RequestId, RequestSpec, Shape, ShapeKey, Ticket,
};
use crate::scheduler::{Card, RowsOutcome};
use crate::telemetry::{self, names, slo, SloPolicy, SloReport, Stage, Telemetry};
use bifft::multi_gpu::MultiGpuFft3d;
use bifft::plan::{Algorithm, FftError};
use fft_math::twiddle::Direction;
use gpu_sim::{AccessKind, CheckReport, DeviceSpec};
use std::collections::BTreeMap;

/// Everything the service needs to come up.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The simulated card model.
    pub spec: DeviceSpec,
    /// Cards in the fleet (a power of two, so the sharder can split
    /// oversized volumes across all of them).
    pub n_gpus: usize,
    /// Stream lanes per card; `0` runs one synchronous lane per card (the
    /// serial baseline — no copy/compute overlap).
    pub streams_per_card: usize,
    /// Bound on the submission queue; fulls reject with backpressure.
    pub queue_capacity: usize,
    /// Most requests one launch may coalesce.
    pub max_batch_requests: usize,
    /// Most payload elements one launch may coalesce (also the staging-slot
    /// size allocated per lane).
    pub max_batch_elems: usize,
    /// A batch stops growing once its estimated service time exceeds this.
    pub latency_budget_s: f64,
    /// Algorithm for volume requests without a hint.
    pub default_algorithm: Algorithm,
    /// Keep transformed payloads in completions (tests want them; load
    /// generators usually don't).
    pub keep_outputs: bool,
    /// Run every card under the PR 4 memcheck/racecheck-style validator.
    pub check_hazards: bool,
    /// The telemetry sampling tick, simulated seconds.
    pub tick_s: f64,
    /// The SLO objectives the run is held to.
    pub slo: SloPolicy,
    /// Record per-card sim-prof traces for the merged Chrome export
    /// ([`FftService::chrome_trace`]).
    pub record_trace: bool,
    /// Multi-tenant QoS: per-tenant shares, admission quotas and the lane
    /// preemption switch. The default config (one unlimited tenant, no
    /// preemption) reproduces single-tenant behaviour exactly.
    pub qos: QosConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            spec: DeviceSpec::gts8800(),
            n_gpus: 2,
            streams_per_card: 2,
            queue_capacity: 64,
            max_batch_requests: 8,
            max_batch_elems: 1 << 20,
            latency_budget_s: 10e-3,
            default_algorithm: Algorithm::FiveStep,
            keep_outputs: false,
            check_hazards: false,
            tick_s: 1e-3,
            slo: SloPolicy::default(),
            record_trace: false,
            qos: QosConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Starts a [`ServeConfigBuilder`] from the defaults — the canonical
    /// construction path since the wire redesign. `build()` validates and
    /// returns typed errors, so an impossible fleet is caught before any
    /// card is touched:
    ///
    /// ```
    /// # use fft_serve::service::ServeConfig;
    /// let cfg = ServeConfig::builder().gpus(2).streams(4).build().unwrap();
    /// assert_eq!(cfg.n_gpus, 2);
    /// assert!(ServeConfig::builder().gpus(3).build().is_err());
    /// ```
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            cfg: ServeConfig::default(),
        }
    }

    /// Checks the invariants [`FftService::new`] requires.
    ///
    /// # Errors
    /// [`FftError::BadPlanConfig`] naming the offending parameter: zero or
    /// non-power-of-two fleet, zero queue/batch bounds, or a non-positive
    /// telemetry tick.
    pub fn validate(&self) -> Result<(), FftError> {
        if self.n_gpus == 0 || !self.n_gpus.is_power_of_two() {
            return Err(FftError::BadPlanConfig {
                param: "n_gpus",
                value: self.n_gpus,
                reason: "fleet size must be a nonzero power of two".to_string(),
            });
        }
        for (param, value) in [
            ("queue_capacity", self.queue_capacity),
            ("max_batch_requests", self.max_batch_requests),
            ("max_batch_elems", self.max_batch_elems),
        ] {
            if value == 0 {
                return Err(FftError::BadPlanConfig {
                    param,
                    value,
                    reason: "must be at least 1".to_string(),
                });
            }
        }
        if self.tick_s <= 0.0 || self.tick_s.is_nan() {
            return Err(FftError::BadPlanConfig {
                param: "tick_s",
                value: 0,
                reason: "the telemetry tick must be a positive duration".to_string(),
            });
        }
        if let Err(reason) = self.qos.validate() {
            return Err(FftError::BadPlanConfig {
                param: "qos",
                value: 0,
                reason,
            });
        }
        Ok(())
    }
}

/// Builder for [`ServeConfig`] ([`ServeConfig::builder`]): the typed-error
/// replacement for struct-literal construction, shared by `fft-serve`,
/// `fft-gate`, the load generators and the bench harness.
#[derive(Clone, Debug)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
}

impl ServeConfigBuilder {
    /// Sets the simulated card model (default: the GTS 8800).
    pub fn spec(mut self, spec: DeviceSpec) -> Self {
        self.cfg.spec = spec;
        self
    }

    /// Sets the fleet size (must be a nonzero power of two).
    pub fn gpus(mut self, n: usize) -> Self {
        self.cfg.n_gpus = n;
        self
    }

    /// Sets the stream lanes per card (`0` = one synchronous lane).
    pub fn streams(mut self, n: usize) -> Self {
        self.cfg.streams_per_card = n;
        self
    }

    /// Sets the submission-queue bound.
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.cfg.queue_capacity = n;
        self
    }

    /// Sets the most requests one launch may coalesce.
    pub fn batch_requests(mut self, n: usize) -> Self {
        self.cfg.max_batch_requests = n;
        self
    }

    /// Sets the most payload elements one launch may coalesce (also the
    /// per-lane staging-slot size).
    pub fn batch_elems(mut self, n: usize) -> Self {
        self.cfg.max_batch_elems = n;
        self
    }

    /// Sets the batch latency budget, simulated seconds.
    pub fn latency_budget_s(mut self, s: f64) -> Self {
        self.cfg.latency_budget_s = s;
        self
    }

    /// Sets the algorithm for volume requests without a hint.
    pub fn algorithm(mut self, a: Algorithm) -> Self {
        self.cfg.default_algorithm = a;
        self
    }

    /// Keeps transformed payloads in completions.
    pub fn keep_outputs(mut self, keep: bool) -> Self {
        self.cfg.keep_outputs = keep;
        self
    }

    /// Runs every card under the memcheck/racecheck-style validator.
    pub fn check_hazards(mut self, check: bool) -> Self {
        self.cfg.check_hazards = check;
        self
    }

    /// Sets the telemetry sampling tick, simulated seconds.
    pub fn tick_s(mut self, s: f64) -> Self {
        self.cfg.tick_s = s;
        self
    }

    /// Sets the SLO objectives the run is held to.
    pub fn slo(mut self, slo: SloPolicy) -> Self {
        self.cfg.slo = slo;
        self
    }

    /// Records per-card sim-prof traces for the merged Chrome export.
    pub fn record_trace(mut self, record: bool) -> Self {
        self.cfg.record_trace = record;
        self
    }

    /// Sets the multi-tenant QoS config (shares, quotas, preemption).
    pub fn qos(mut self, qos: QosConfig) -> Self {
        self.cfg.qos = qos;
        self
    }

    /// Validates and returns the config.
    ///
    /// # Errors
    /// [`FftError::BadPlanConfig`] per [`ServeConfig::validate`].
    pub fn build(self) -> Result<ServeConfig, FftError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }

    /// Validates the config and brings the fleet up in one call.
    ///
    /// # Errors
    /// Everything [`ServeConfigBuilder::build`] and [`FftService::new`]
    /// can return.
    pub fn build_service(self) -> Result<FftService, FftError> {
        FftService::new(self.build()?)
    }
}

/// Expected extra service time of a dispatch whose card has not memoised
/// the 1-D plan yet (placement's cold-plan penalty; roughly a plan build
/// on the simulated card).
const COLD_PLAN_PENALTY_S: f64 = 50e-6;

/// One dispatched-but-uncommitted rows batch. The device-side work was
/// already modeled at dispatch (the outcome's phase times are fixed), but
/// the lifecycle stamps and completion records are deferred to the batch's
/// completion instant — so a preemption can abort the batch at a
/// stream-safe point and requeue its members with their waterfalls still
/// open.
struct InFlight {
    /// Dispatch sequence number (commit tie-break at equal completions).
    seq: u64,
    /// Card the batch runs on.
    ci: usize,
    /// Lane the batch runs on.
    li: usize,
    /// When the batch was dispatched, simulated seconds.
    dispatched_s: f64,
    /// The engine model's phase times and outputs.
    outcome: RowsOutcome,
    /// Member requests, batch order.
    members: Vec<Pending>,
}

/// One admitted pipeline awaiting whole-card placement. The whole DAG is a
/// single schedulable unit: it carries one WFQ virtual finish time (costed
/// at `elems × stages`) and dispatches onto a card with every lane idle,
/// like a volume batch.
struct PendingPipe {
    id: RequestId,
    pipe: PipelineRequest,
    arrival_s: f64,
    vft: f64,
}

/// A pipeline submission entering admission: either with payloads attached
/// ([`FftService::submit_pipeline`]) or still folded into its seeds
/// ([`FftService::submit_seeded_pipeline`]). Admission reads only the
/// metadata both forms share; the seeded form materializes its inputs
/// *after* the last admission check, so rejected hostile templates never
/// allocate a payload.
enum PipeForm {
    Full(PipelineRequest),
    Seeded(SeededPipeline),
}

impl PipeForm {
    fn tenant(&self) -> crate::qos::TenantId {
        match self {
            PipeForm::Full(p) => p.tenant,
            PipeForm::Seeded(p) => p.tenant,
        }
    }

    fn priority(&self) -> crate::request::Priority {
        match self {
            PipeForm::Full(p) => p.priority,
            PipeForm::Seeded(p) => p.priority,
        }
    }

    fn deadline_s(&self) -> Option<f64> {
        match self {
            PipeForm::Full(p) => p.deadline_s,
            PipeForm::Seeded(p) => p.deadline_s,
        }
    }

    fn stages(&self) -> &[crate::pipeline::PipelineStage] {
        match self {
            PipeForm::Full(p) => &p.stages,
            PipeForm::Seeded(p) => &p.stages,
        }
    }

    fn label(&self) -> String {
        match self {
            PipeForm::Full(p) => p.label(),
            PipeForm::Seeded(p) => p.label(),
        }
    }

    /// Volume in complex elements. Callers must [`PipeForm::validate`]
    /// first: the envelope check bounds each axis to 512 before this
    /// product, so it cannot overflow.
    fn elems(&self) -> usize {
        let (nx, ny, nz) = match self {
            PipeForm::Full(p) => p.dims,
            PipeForm::Seeded(p) => p.dims,
        };
        nx * ny * nz
    }

    fn validate(&self) -> Result<(), String> {
        match self {
            PipeForm::Full(p) => p.validate(),
            PipeForm::Seeded(p) => p.validate(),
        }
    }

    fn into_request(self) -> PipelineRequest {
        match self {
            PipeForm::Full(p) => p,
            PipeForm::Seeded(p) => p.materialize(),
        }
    }
}

/// The FFT-as-a-service front end over a fleet of simulated cards.
pub struct FftService {
    cfg: ServeConfig,
    cards: Vec<Card>,
    queue: SubmitQueue,
    limits: BatchLimits,
    estimator: Estimator,
    /// EWMA per-stage-kind service model for pipeline DAGs — admission
    /// costs the *whole* DAG against a deadline, never just its first
    /// stage.
    pipe_estimator: PipeEstimator,
    /// Admitted pipelines awaiting a fully idle card, dispatched in
    /// weighted-fair (priority, vft, arrival, id) order.
    pipe_queue: Vec<PendingPipe>,
    pipelines_completed: u64,
    pipeline_stages_completed: u64,
    /// Compute seconds pipelines spent over fully device-resident operands.
    resident_s_total: f64,
    /// Payload bytes that actually crossed PCIe host-to-device /
    /// device-to-host, all request kinds. Pipelines move strictly fewer
    /// than the same work as independent per-transform submissions — this
    /// pair is what proves it.
    h2d_bytes: u64,
    d2h_bytes: u64,
    sharded: BTreeMap<(usize, usize, usize), MultiGpuFft3d>,
    /// Volume dims even the whole fleet could not allocate, with the error
    /// that proved it — admission rejects these outright from then on.
    fleet_oversized: BTreeMap<(usize, usize, usize), FftError>,
    next_id: u64,
    now_s: f64,
    completions: Vec<Completion>,
    completion_bytes: Vec<u64>,
    /// id → index into `completions`, so [`FftService::poll`] is a lookup
    /// instead of the old scan-the-completions dance.
    completion_index: BTreeMap<RequestId, usize>,
    failures: Vec<(RequestId, FftError)>,
    batch_histogram: BTreeMap<usize, u64>,
    card_requests: Vec<u64>,
    card_bytes: Vec<u64>,
    submitted: u64,
    admitted: u64,
    rejected_queue_full: u64,
    rejected_deadline: u64,
    rejected_unsupported: u64,
    rejected_oversized: u64,
    rejected_unallocatable: u64,
    rejected_quota: u64,
    /// Per-tenant quota buckets, WFQ virtual time and run statistics.
    qos: QosBook,
    /// Dispatched rows batches whose completion instant has not been
    /// reached yet (commit happens in [`FftService::advance_to`]).
    in_flight: Vec<InFlight>,
    dispatch_seq: u64,
    preemptions: u64,
    preempted_wasted_s: f64,
    /// Safe point of the most recent preemption; until the clock reaches
    /// it the service won't preempt again (no cascades while the freed
    /// lane is still in its abort window).
    preempt_reserved_s: Option<f64>,
    telemetry: Telemetry,
    /// In-deadline payload bytes, both directions (the goodput numerator).
    good_bytes: u64,
    /// Earliest arrival / latest completion among recorded completions —
    /// the live-goodput gauge's makespan, matching the report's.
    first_arrival_s: f64,
    last_completion_s: f64,
}

impl FftService {
    /// Brings the fleet up.
    ///
    /// # Errors
    /// [`FftError::BadPlanConfig`] for unusable config (zero cards,
    /// non-power-of-two fleet, zero queue/batch bounds) and
    /// [`FftError::Alloc`] when a card cannot hold its staging slots.
    pub fn new(cfg: ServeConfig) -> Result<Self, FftError> {
        cfg.validate()?;
        let mut cards = Vec::with_capacity(cfg.n_gpus);
        for i in 0..cfg.n_gpus {
            let mut card = Card::new(
                &cfg.spec,
                i,
                cfg.streams_per_card,
                cfg.max_batch_elems,
                cfg.check_hazards,
            )?;
            if cfg.record_trace {
                card.enable_trace();
            }
            cards.push(card);
        }
        let limits = BatchLimits {
            max_requests: cfg.max_batch_requests,
            max_elems: cfg.max_batch_elems,
            latency_budget_s: cfg.latency_budget_s,
        };
        let queue = SubmitQueue::new(cfg.queue_capacity);
        let n = cfg.n_gpus;
        let telemetry = Telemetry::new(cfg.tick_s);
        let qos = QosBook::new(cfg.qos.clone());
        Ok(FftService {
            telemetry,
            qos,
            cfg,
            cards,
            queue,
            limits,
            estimator: Estimator::new(),
            pipe_estimator: PipeEstimator::new(),
            pipe_queue: Vec::new(),
            pipelines_completed: 0,
            pipeline_stages_completed: 0,
            resident_s_total: 0.0,
            h2d_bytes: 0,
            d2h_bytes: 0,
            sharded: BTreeMap::new(),
            fleet_oversized: BTreeMap::new(),
            next_id: 0,
            now_s: 0.0,
            completions: Vec::new(),
            completion_bytes: Vec::new(),
            completion_index: BTreeMap::new(),
            failures: Vec::new(),
            batch_histogram: BTreeMap::new(),
            card_requests: vec![0; n],
            card_bytes: vec![0; n],
            submitted: 0,
            admitted: 0,
            rejected_queue_full: 0,
            rejected_deadline: 0,
            rejected_unsupported: 0,
            rejected_oversized: 0,
            rejected_unallocatable: 0,
            rejected_quota: 0,
            in_flight: Vec::new(),
            dispatch_seq: 0,
            preemptions: 0,
            preempted_wasted_s: 0.0,
            preempt_reserved_s: None,
            good_bytes: 0,
            first_arrival_s: f64::INFINITY,
            last_completion_s: 0.0,
        })
    }

    /// Current simulated time, seconds.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Requests waiting in the submission queue (pipelines included — a
    /// waiting DAG is one unit of depth, exactly as it is one unit of
    /// queue capacity).
    pub fn queue_depth(&self) -> usize {
        self.queue.depth() + self.pipe_queue.len()
    }

    /// Moves virtual time forward to `t_s` (backwards moves are ignored)
    /// and dispatches whatever becomes placeable — the hook wall-clock
    /// drivers (the gateway's live mode) use so queued work keeps draining
    /// between submissions.
    pub fn advance(&mut self, t_s: f64) {
        self.advance_to(t_s);
        self.pump();
        self.refresh_gauges();
    }

    /// Completions recorded so far, in record order: rows batches commit
    /// at their completion instant, whole-card volume dispatches at their
    /// dispatch instant.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Admitted requests that failed at dispatch (currently only volumes
    /// even the whole fleet could not allocate), with the error.
    pub fn failures(&self) -> &[(RequestId, FftError)] {
        &self.failures
    }

    /// Submits one request arriving at `at_s` simulated seconds.
    ///
    /// Admission control runs first: malformed shapes reject as
    /// [`Rejection::Unsupported`], rows payloads bigger than a staging slot
    /// as [`Rejection::Oversized`], volumes a previous attempt proved
    /// unallocatable as [`Rejection::Unallocatable`], a full queue as
    /// [`Rejection::QueueFull`] (backpressure — the caller decides whether
    /// to retry later), a deadline the backlog estimator says cannot be
    /// met as [`Rejection::DeadlineInfeasible`] (shedding work that would
    /// only be thrown away), and a tenant over its token-bucket rate or
    /// in-flight quota as [`Rejection::QuotaExceeded`]. Admitted requests
    /// get a weighted-fair virtual finish time and dispatch eagerly onto
    /// any lane free at `at_s`.
    ///
    /// Admission hands back a [`Ticket`] — the id it carries doubles as the
    /// wire correlation id, and [`FftService::poll`] resolves it to the
    /// request's current state.
    ///
    /// # Errors
    /// The [`Rejection`] taxonomy above; a rejected request leaves its
    /// rejection counter and a terminal lifecycle waterfall, nothing more.
    pub fn submit(&mut self, spec: RequestSpec, at_s: f64) -> Result<Ticket, Rejection> {
        self.advance_to(at_s);
        self.submitted += 1;
        // Every submission — rejected or not — gets an id and a waterfall.
        // Ids stay monotone for admitted requests, so queue order (priority,
        // arrival, id) and therefore dispatch behaviour are unchanged.
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.qos.note_submitted(spec.tenant);
        self.telemetry.registry.inc(names::SUBMITTED);
        self.telemetry
            .lifecycle
            .start(id, spec.shape.label(), self.now_s);
        // Attribution profile keys: rows always run the coalesced 1-D
        // kernel; volumes run their hint or the service default.
        let algo_label = match spec.shape {
            Shape::Rows1d { .. } => "batch-1d",
            Shape::Volume { .. } => spec.algorithm.unwrap_or(self.cfg.default_algorithm).name(),
        };
        self.telemetry
            .lifecycle
            .annotate_submission(id, spec.priority.label(), algo_label);
        if let Err(e) = validate_spec(&spec) {
            return Err(self.reject(id, Rejection::Unsupported(e)));
        }
        if let Shape::Rows1d { n, rows } = spec.shape {
            // A single rows request must fit a lane's staging slot on its
            // own: the batcher's element cap only bounds coalescing, so an
            // oversized head request would otherwise dispatch unchecked and
            // overrun the slot mid-upload.
            if n * rows > self.cfg.max_batch_elems {
                return Err(self.reject(
                    id,
                    Rejection::Oversized {
                        elems: n * rows,
                        limit_elems: self.cfg.max_batch_elems,
                    },
                ));
            }
        }
        if let Shape::Volume { nx, ny, nz } = spec.shape {
            if let Some(err) = self.fleet_oversized.get(&(nx, ny, nz)) {
                let err = err.clone();
                return Err(self.reject(id, Rejection::Unallocatable(err)));
            }
        }
        // Pipelines share the bounded queue's capacity (one DAG = one
        // entry), so backpressure covers both kinds of admitted work.
        if self.queue.depth() + self.pipe_queue.len() >= self.queue.capacity() {
            return Err(self.reject(
                id,
                Rejection::QueueFull {
                    capacity: self.queue.capacity(),
                },
            ));
        }
        if let Some(deadline_s) = spec.deadline_s {
            let key = key_of_spec(&spec, self.cfg.default_algorithm);
            let queued_elems: usize = self
                .queue
                .iter()
                .filter(|p| key_of(p, self.cfg.default_algorithm) == key)
                .map(|p| p.spec.shape.elems())
                .sum();
            let wait_s = (self.earliest_free_s() - self.now_s).max(0.0);
            let estimated_s = wait_s
                + self
                    .estimator
                    .estimate_s(key, queued_elems + spec.shape.elems());
            if estimated_s > deadline_s {
                return Err(self.reject(
                    id,
                    Rejection::DeadlineInfeasible {
                        estimated_s,
                        deadline_s,
                    },
                ));
            }
        }
        // Quota is checked last: a submission bounced for any other reason
        // must not consume the tenant's tokens or an in-flight slot.
        if let Err(kind) = self.qos.admit(spec.tenant, self.now_s) {
            return Err(self.reject(
                id,
                Rejection::QuotaExceeded {
                    tenant: spec.tenant,
                    kind,
                },
            ));
        }
        let vft = self
            .qos
            .assign_vft(spec.tenant, self.now_s, spec.shape.elems() as f64);
        self.queue.push_traced(
            Pending {
                id,
                spec,
                arrival_s: self.now_s,
                vft,
            },
            &mut self.telemetry.lifecycle,
        );
        self.admitted += 1;
        self.telemetry.registry.inc(names::ADMITTED);
        self.pump();
        self.refresh_gauges();
        Ok(Ticket {
            id,
            at_s: self.now_s,
        })
    }

    /// Resolves a ticket (or a raw wire correlation id via
    /// [`Ticket::correlation`]) to the request's current state without
    /// advancing time: still queued, done (completion attached), failed at
    /// dispatch, or never issued by this service.
    pub fn poll(&self, ticket: Ticket) -> PollStatus {
        let id = ticket.id;
        if let Some(&i) = self.completion_index.get(&id) {
            return PollStatus::Done(self.completions[i].clone());
        }
        if let Some((_, err)) = self.failures.iter().find(|(f, _)| *f == id) {
            return PollStatus::Failed(err.clone());
        }
        if id.0 >= self.next_id {
            return PollStatus::Unknown;
        }
        if self.queue.iter().any(|p| p.id == id) {
            return PollStatus::Queued;
        }
        // Issued but neither terminal nor queued: either in flight on a
        // card (admitted — still Queued from the client's view) or it was
        // rejected at admission and never became pollable.
        match self.telemetry.lifecycle.get(id) {
            Some(w) if w.stage_s(Stage::Admitted).is_some() && w.terminal().is_none() => {
                PollStatus::Queued
            }
            _ => PollStatus::Unknown,
        }
    }

    /// Submits one pipeline request — a dependency-ordered DAG of
    /// forward/inverse transforms, pointwise products and reductions over
    /// one or more input volumes — arriving at `at_s` simulated seconds.
    ///
    /// Admission mirrors [`FftService::submit`], in the same order:
    /// malformed DAGs (bad dims, dangling operands, an unserviceable stage
    /// combination) reject as [`Rejection::UnsupportedStage`] (stable wire
    /// code 7), a full queue as [`Rejection::QueueFull`] (pipelines share
    /// the bounded queue's capacity), an unmeetable deadline as
    /// [`Rejection::DeadlineInfeasible`] — costed over the **whole DAG**
    /// through the per-stage-kind EWMA model, never just its first stage —
    /// and quota last, so bounced submissions never burn tokens.
    ///
    /// The admitted pipeline is one schedulable unit: one WFQ virtual
    /// finish time over `elems × stages`, one whole-card placement, and
    /// every intermediate held in a device-resident slot between stages so
    /// only the inputs and the final value cross PCIe.
    ///
    /// # Errors
    /// The [`Rejection`] taxonomy above; a rejected pipeline leaves its
    /// rejection counter and a terminal lifecycle waterfall, nothing more.
    pub fn submit_pipeline(
        &mut self,
        pipe: PipelineRequest,
        at_s: f64,
    ) -> Result<Ticket, Rejection> {
        self.submit_pipeline_form(PipeForm::Full(pipe), at_s)
    }

    /// [`FftService::submit_pipeline`] for a seeds-only template: admission
    /// runs entirely on the template — dims envelope, DAG structure, queue,
    /// deadline, quota — and the input volumes are materialized only
    /// *after* every check passes. A hostile sub-KiB template naming
    /// multi-gigabyte dims therefore rejects without a single payload
    /// allocation; for admitted templates the expansion is the same
    /// [`SeededPipeline::materialize`] a client would run, so reports stay
    /// byte-identical between the seeded and the full-payload entry points.
    ///
    /// # Errors
    /// The same [`Rejection`] taxonomy as [`FftService::submit_pipeline`].
    pub fn submit_seeded_pipeline(
        &mut self,
        pipe: SeededPipeline,
        at_s: f64,
    ) -> Result<Ticket, Rejection> {
        self.submit_pipeline_form(PipeForm::Seeded(pipe), at_s)
    }

    /// The shared pipeline admission path. `PipeForm::Seeded` defers
    /// payload materialization until the whole admission sequence has
    /// passed; both forms run the identical checks in the identical order,
    /// so a given DAG admits or rejects the same way regardless of which
    /// entry point carried it.
    fn submit_pipeline_form(&mut self, form: PipeForm, at_s: f64) -> Result<Ticket, Rejection> {
        self.advance_to(at_s);
        self.submitted += 1;
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.qos.note_submitted(form.tenant());
        self.telemetry.registry.inc(names::SUBMITTED);
        self.telemetry.lifecycle.start(id, form.label(), self.now_s);
        self.telemetry
            .lifecycle
            .annotate_submission(id, form.priority().label(), "pipeline");
        if let Err(detail) = form.validate() {
            return Err(self.reject(id, Rejection::UnsupportedStage(detail)));
        }
        if self.queue.depth() + self.pipe_queue.len() >= self.queue.capacity() {
            return Err(self.reject(
                id,
                Rejection::QueueFull {
                    capacity: self.queue.capacity(),
                },
            ));
        }
        if let Some(deadline_s) = form.deadline_s() {
            // A pipeline dispatches only onto a card with *every* lane
            // idle (`pump_pipes`'s predicate), so the queue-wait estimate
            // uses the whole-card horizon — the earliest any single lane
            // frees is systematically optimistic under mixed load.
            let wait_s = (self.earliest_whole_card_free_s() - self.now_s).max(0.0);
            let estimated_s = wait_s + self.pipe_estimator.estimate_s(form.stages(), form.elems());
            if estimated_s > deadline_s {
                return Err(self.reject(
                    id,
                    Rejection::DeadlineInfeasible {
                        estimated_s,
                        deadline_s,
                    },
                ));
            }
        }
        // Quota is checked last, like `submit`: a submission bounced for
        // any other reason must not consume tokens or an in-flight slot.
        if let Err(kind) = self.qos.admit(form.tenant(), self.now_s) {
            return Err(self.reject(
                id,
                Rejection::QuotaExceeded {
                    tenant: form.tenant(),
                    kind,
                },
            ));
        }
        let cost = form.elems() * form.stages().len();
        let vft = self.qos.assign_vft(form.tenant(), self.now_s, cost as f64);
        self.telemetry
            .lifecycle
            .record(id, Stage::Admitted, self.now_s);
        // Only now — fully admitted — does a seeded template expand into
        // its input volumes.
        let pipe = form.into_request();
        self.pipe_queue.push(PendingPipe {
            id,
            pipe,
            arrival_s: self.now_s,
            vft,
        });
        self.admitted += 1;
        self.telemetry.registry.inc(names::ADMITTED);
        self.pump();
        self.refresh_gauges();
        Ok(Ticket {
            id,
            at_s: self.now_s,
        })
    }

    /// Books one rejection: per-reason counter (service field + registry)
    /// and the terminal lifecycle stamp. Returns `r` for the `Err`.
    fn reject(&mut self, id: RequestId, r: Rejection) -> Rejection {
        let (reason, counter) = match &r {
            Rejection::QueueFull { .. } => {
                self.rejected_queue_full += 1;
                ("queue_full", names::REJECTED_QUEUE_FULL)
            }
            Rejection::DeadlineInfeasible { .. } => {
                self.rejected_deadline += 1;
                ("deadline", names::REJECTED_DEADLINE)
            }
            Rejection::Unsupported(_) => {
                self.rejected_unsupported += 1;
                ("unsupported", names::REJECTED_UNSUPPORTED)
            }
            Rejection::Oversized { .. } => {
                self.rejected_oversized += 1;
                ("oversized", names::REJECTED_OVERSIZED)
            }
            Rejection::Unallocatable(_) => {
                self.rejected_unallocatable += 1;
                ("unallocatable", names::REJECTED_UNALLOCATABLE)
            }
            Rejection::QuotaExceeded { .. } => {
                self.rejected_quota += 1;
                ("quota", names::REJECTED_QUOTA)
            }
            Rejection::UnsupportedStage(_) => {
                self.rejected_unsupported += 1;
                ("unsupported_stage", names::REJECTED_UNSUPPORTED)
            }
        };
        self.telemetry.registry.inc(counter);
        self.telemetry
            .lifecycle
            .mark_rejected(id, reason, self.now_s);
        r
    }

    /// Moves the service clock to `t_s`, committing every in-flight rows
    /// batch whose completion instant falls inside the move (in
    /// `(completion, dispatch-seq)` order) and sampling every telemetry
    /// tick boundary crossed with the pre-advance registry state
    /// (discrete-event semantics: a sample at tick `t` reflects the last
    /// event before `t`).
    fn advance_to(&mut self, t_s: f64) {
        loop {
            let next = self
                .in_flight
                .iter()
                .enumerate()
                .filter(|(_, f)| f.outcome.completion_s <= t_s)
                .min_by(|(_, a), (_, b)| {
                    a.outcome
                        .completion_s
                        .total_cmp(&b.outcome.completion_s)
                        .then(a.seq.cmp(&b.seq))
                })
                .map(|(i, _)| i);
            let Some(i) = next else { break };
            let at = self.in_flight[i].outcome.completion_s;
            if at > self.now_s {
                self.telemetry
                    .timeline
                    .advance(at, &self.telemetry.registry);
                self.now_s = at;
            }
            self.commit_in_flight(i);
        }
        if t_s > self.now_s {
            self.telemetry
                .timeline
                .advance(t_s, &self.telemetry.registry);
            self.now_s = t_s;
        }
        // A preemption reservation expires once the clock reaches its safe
        // point: the freed lane is genuinely free from here on.
        if self.preempt_reserved_s.is_some_and(|s| self.now_s >= s) {
            self.preempt_reserved_s = None;
        }
    }

    /// Commits one in-flight rows batch: stamps the dispatch/phase
    /// waterfall for every member, cross-links the span, and records the
    /// completions.
    fn commit_in_flight(&mut self, idx: usize) {
        let InFlight {
            ci,
            dispatched_s,
            outcome,
            members,
            ..
        } = self.in_flight.remove(idx);
        let size = members.len();
        for p in &members {
            let log = &mut self.telemetry.lifecycle;
            log.record(p.id, Stage::Dispatched, dispatched_s);
            log.record(p.id, Stage::H2d, outcome.h2d_done_s);
            log.record(p.id, Stage::Compute, outcome.compute_done_s);
            log.record(p.id, Stage::D2h, outcome.completion_s);
            log.annotate(p.id, &outcome.span, Some(ci));
            log.annotate_phases(p.id, outcome.plan_ready_s, outcome.h2d_start_s);
        }
        let mut outputs = outcome.outputs;
        for (i, p) in members.iter().enumerate() {
            let out = outputs.as_mut().map(|o| std::mem::take(&mut o[i]));
            self.record(p, outcome.completion_s, Some(ci), size, out);
        }
    }

    /// Earliest instant any lane in the fleet is (or becomes) free.
    fn earliest_free_s(&self) -> f64 {
        self.cards
            .iter()
            .map(Card::earliest_free_s)
            .fold(f64::INFINITY, f64::min)
    }

    /// Earliest instant any card has *every* lane free — the horizon a
    /// whole-card unit (a pipeline DAG) can actually start at, and the
    /// wait estimate pipeline deadline admission costs against.
    fn earliest_whole_card_free_s(&self) -> f64 {
        self.cards
            .iter()
            .map(Card::all_free_s)
            .fold(f64::INFINITY, f64::min)
    }

    /// Dispatches everything placeable at the current instant.
    fn pump(&mut self) {
        self.pump_pipes();
        let mut skip: Vec<BatchKey> = Vec::new();
        loop {
            let Some(key) = self
                .queue
                .iter()
                .map(|p| key_of(p, self.cfg.default_algorithm))
                .find(|k| !skip.contains(k))
            else {
                break;
            };
            match key.shape {
                ShapeKey::Rows1d { n } => {
                    // Shortest expected completion among cards with a lane
                    // free right now: every candidate could start at `now`,
                    // so the discriminator is the EWMA service estimate
                    // plus a cold-plan penalty for cards that have not
                    // memoised this length; ties break on the earliest
                    // lane-free horizon, then index. (The old comparator
                    // minimised `all_free_s()` — the *latest* lane-free
                    // horizon — which systematically preferred idle cold
                    // cards over warm ones.)
                    let head_elems = self
                        .queue
                        .iter()
                        .find(|p| key_of(p, self.cfg.default_algorithm) == key)
                        .map_or(0, |p| p.spec.shape.elems());
                    let est = self.estimator.estimate_s(key, head_elems);
                    let expected_done = |ci: usize| {
                        let plan_s = if self.cards[ci].has_rows_plan(n) {
                            0.0
                        } else {
                            COLD_PLAN_PENALTY_S
                        };
                        self.now_s + plan_s + est
                    };
                    let cand = (0..self.cards.len())
                        .filter_map(|i| self.cards[i].free_lane_at(self.now_s).map(|l| (i, l)))
                        .min_by(|&(a, _), &(b, _)| {
                            expected_done(a)
                                .total_cmp(&expected_done(b))
                                .then(
                                    self.cards[a]
                                        .earliest_free_s()
                                        .total_cmp(&self.cards[b].earliest_free_s()),
                                )
                                .then(a.cmp(&b))
                        });
                    let Some((ci, li)) = cand else {
                        if self.try_preempt_for(&key) {
                            // The freed lane may already be usable (the
                            // safe point can coincide with `now`).
                            continue;
                        }
                        skip.push(key);
                        continue;
                    };
                    let batch = self.take_batch(&skip);
                    debug_assert_eq!(batch.key, key);
                    self.dispatch_rows_batch(ci, li, n, batch);
                }
                ShapeKey::Volume { nx, ny, nz } => {
                    // Volumes own card-wide plan buffers: they need a card
                    // with every lane idle.
                    let Some(ci) =
                        (0..self.cards.len()).find(|&i| self.cards[i].all_free_s() <= self.now_s)
                    else {
                        skip.push(key);
                        continue;
                    };
                    let batch = self.take_batch(&skip);
                    debug_assert_eq!(batch.key, key);
                    if !self.dispatch_volume_batch(ci, (nx, ny, nz), batch) {
                        skip.push(key);
                    }
                }
            }
        }
        // Singles the pipelines had to yield to are placed now; give the
        // deferred pipelines the cards that are still fully idle.
        self.pump_pipes();
    }

    /// Dispatches every placeable pipeline at the current instant. A
    /// pipeline needs a card with every lane idle (its plans and slot
    /// buffers are card-wide, like a volume's); the waiting pipelines go
    /// out in the queue's own weighted-fair rank — (priority, virtual
    /// finish time, arrival, id) — and the head pipeline is additionally
    /// ranked against the head *single* request under the same key, so a
    /// stream of low-priority DAGs cannot claim every idle card ahead of
    /// a waiting high-priority transform (`pump` re-runs this after the
    /// singles pass, so yielded cards that stay idle go back to DAGs).
    fn pump_pipes(&mut self) {
        while !self.pipe_queue.is_empty() {
            let Some(ci) =
                (0..self.cards.len()).find(|&i| self.cards[i].all_free_s() <= self.now_s)
            else {
                break;
            };
            let bi = self
                .pipe_queue
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.pipe
                        .priority
                        .cmp(&b.pipe.priority)
                        .then(a.vft.total_cmp(&b.vft))
                        .then(a.arrival_s.total_cmp(&b.arrival_s))
                        .then(a.id.cmp(&b.id))
                })
                .map(|(i, _)| i)
                .expect("pipe_queue is nonempty");
            let head = &self.pipe_queue[bi];
            if self.queue.head().is_some_and(|s| {
                s.spec
                    .priority
                    .cmp(&head.pipe.priority)
                    .then(s.vft.total_cmp(&head.vft))
                    .then(s.arrival_s.total_cmp(&head.arrival_s))
                    .then(s.id.cmp(&head.id))
                    .is_lt()
            }) {
                break;
            }
            let pp = self.pipe_queue.remove(bi);
            self.dispatch_pipe(ci, pp);
        }
    }

    /// Runs one pipeline on card `ci`: the whole DAG executes on the
    /// card's synchronous timeline (the degenerate one-lane case of the
    /// stream/event machinery, so dependency order holds by construction),
    /// intermediates stay in device-resident slots, and the card is
    /// occupied until the result lands.
    fn dispatch_pipe(&mut self, ci: usize, pp: PendingPipe) {
        let PendingPipe {
            id,
            pipe,
            arrival_s,
            ..
        } = pp;
        // A pipeline is its own "batch of one": the Batched stamp falls at
        // placement, like a volume's.
        self.telemetry
            .lifecycle
            .record(id, Stage::Batched, self.now_s);
        let outcome = match self.cards[ci].dispatch_pipeline(
            pipe.dims,
            &pipe.stages,
            &pipe.inputs,
            self.now_s,
        ) {
            Ok(o) => o,
            Err(err) => {
                // Post-admission impossibility (the card cannot hold the
                // DAG's pinned working set even after spilling): fail
                // gracefully, the `fail_batch` analogue.
                self.telemetry
                    .lifecycle
                    .record(id, Stage::Failed, self.now_s);
                self.telemetry.registry.inc(names::FAILED);
                self.qos.on_fail(pipe.tenant);
                self.failures.push((id, err));
                return;
            }
        };
        self.cards[ci].occupy_all(outcome.completion_s);
        self.count_launch(1);
        // Each stage kind updates its own EWMA service model from this
        // run's stage boundaries, so admission's whole-DAG costing tracks
        // the fleet it actually runs on.
        let mut prev = self.now_s;
        for (st, &done) in pipe.stages.iter().zip(&outcome.stage_done_s) {
            self.pipe_estimator
                .observe(st.kind, done - prev, pipe.elems());
            prev = done;
        }
        let log = &mut self.telemetry.lifecycle;
        log.record(id, Stage::Dispatched, self.now_s);
        log.record(id, Stage::H2d, outcome.h2d_done_s);
        log.record(id, Stage::Compute, outcome.compute_done_s);
        log.record(id, Stage::D2h, outcome.completion_s);
        log.annotate(id, &outcome.span, Some(ci));
        log.annotate_phases(id, outcome.plan_ready_s, outcome.h2d_start_s);
        log.note_resident(id, outcome.resident_s);
        let completed_s = outcome.completion_s;
        let moved = outcome.h2d_bytes + outcome.d2h_bytes;
        let timed_out = pipe.deadline_s.is_some_and(|d| completed_s - arrival_s > d);
        self.telemetry
            .lifecycle
            .record(id, Stage::Completed, completed_s);
        let attr_parts = self
            .telemetry
            .lifecycle
            .get(id)
            .and_then(|wf| telemetry::attribution::Ledger::from_waterfall(id, wf))
            .map(|ledger| *ledger.parts_s());
        let reg = &mut self.telemetry.registry;
        if let Some(parts) = attr_parts {
            for (name, part) in names::ATTR_US.iter().zip(parts) {
                reg.add(name, (part * 1e6).round() as u64);
            }
        }
        reg.inc(names::COMPLETED);
        reg.add(names::PAYLOAD_BYTES, outcome.h2d_bytes);
        let latency_ms = (completed_s - arrival_s) * 1e3;
        reg.observe(names::LATENCY_MS_HIST, latency_ms);
        if latency_ms > self.cfg.slo.latency_p95_ms {
            reg.inc(names::LATENCY_OVER_SLO);
        }
        if timed_out {
            reg.inc(names::TIMEOUTS);
        } else {
            // Goodput counts what actually crossed the bus, both
            // directions — residency's savings show up here directly.
            self.good_bytes += moved;
            reg.add(names::GOOD_BYTES, moved);
        }
        self.qos.on_complete(
            pipe.tenant,
            completed_s - arrival_s,
            if timed_out { 0 } else { moved },
        );
        self.first_arrival_s = self.first_arrival_s.min(arrival_s);
        self.last_completion_s = self.last_completion_s.max(completed_s);
        self.card_requests[ci] += 1;
        // Per-card and per-completion byte records keep the report's
        // one-direction convention (tally doubles them for goodput).
        self.card_bytes[ci] += moved / 2;
        self.h2d_bytes += outcome.h2d_bytes;
        self.d2h_bytes += outcome.d2h_bytes;
        self.resident_s_total += outcome.resident_s;
        self.pipelines_completed += 1;
        self.pipeline_stages_completed += pipe.stages.len() as u64;
        // A terminal reduce's value is 2 elements — always kept; full
        // volumes obey `keep_outputs` like every other completion.
        let keep = self.cfg.keep_outputs || outcome.output.len() <= 2;
        let output = keep.then_some(outcome.output);
        self.completion_index.insert(id, self.completions.len());
        self.completions.push(Completion {
            id,
            arrival_s,
            completed_s,
            card: Some(ci),
            batch_size: 1,
            timed_out,
            output,
        });
        self.completion_bytes.push(moved / 2);
    }

    fn take_batch(&mut self, skip: &[BatchKey]) -> Batch {
        form_batch(
            &mut self.queue,
            &self.limits,
            &self.estimator,
            self.cfg.default_algorithm,
            skip,
            self.now_s,
            &mut self.telemetry.lifecycle,
        )
        .expect("pump saw a head")
    }

    /// Books one launch into the registry (the lifecycle stamps happen at
    /// the callers, which know the per-phase times).
    fn count_launch(&mut self, size: usize) {
        *self.batch_histogram.entry(size).or_insert(0) += 1;
        self.telemetry.registry.inc(names::LAUNCHES);
        self.telemetry
            .registry
            .add(names::BATCHED_REQUESTS, size as u64);
        self.telemetry
            .registry
            .observe(names::BATCH_SIZE_HIST, size as f64);
    }

    /// Attempts to free a stream lane for the blocked head of `key` by
    /// aborting a strictly lower-priority in-flight rows batch at its next
    /// stream-safe point (an H2D or kernel boundary the dispatch already
    /// recorded). The victim's members are requeued with their original
    /// stamps and virtual finish times, and the wasted lane-hold time
    /// (dispatch to safe point) is charged to each member's tenant and
    /// waterfall. Returns whether a preemption happened.
    fn try_preempt_for(&mut self, key: &BatchKey) -> bool {
        if !self.cfg.qos.preemption || self.cfg.streams_per_card == 0 {
            return false;
        }
        if let Some(t) = self.preempt_reserved_s {
            if self.now_s < t {
                return false;
            }
            self.preempt_reserved_s = None;
        }
        let Some(head_priority) = self
            .queue
            .iter()
            .filter(|p| key_of(p, self.cfg.default_algorithm) == *key)
            .map(|p| p.spec.priority)
            .min()
        else {
            return false;
        };
        let fleet_free_s = self.earliest_free_s();
        // Victim: among in-flight batches whose most important member is
        // still strictly below the blocked head and whose next safe point
        // beats simply waiting for the fleet, abort the least important
        // one, then the one with the most lane time left, then the latest
        // dispatch.
        let mut best: Option<(usize, crate::request::Priority, f64, f64, u64)> = None;
        for (idx, f) in self.in_flight.iter().enumerate() {
            let batch_priority = f
                .members
                .iter()
                .map(|p| p.spec.priority)
                .min()
                .expect("batches are nonempty");
            if batch_priority <= head_priority {
                continue;
            }
            let safe_s = [f.outcome.h2d_done_s, f.outcome.compute_done_s]
                .into_iter()
                .find(|&t| t >= self.now_s && t < f.outcome.completion_s);
            let Some(safe_s) = safe_s else { continue };
            if safe_s >= fleet_free_s {
                continue;
            }
            let saved = f.outcome.completion_s - safe_s;
            let better = match best {
                None => true,
                Some((_, bp, bsaved, _, bseq)) => {
                    (batch_priority, saved, f.seq) > (bp, bsaved, bseq)
                }
            };
            if better {
                best = Some((idx, batch_priority, saved, safe_s, f.seq));
            }
        }
        let Some((idx, _, _, safe_s, _)) = best else {
            return false;
        };
        let (ci, li) = (self.in_flight[idx].ci, self.in_flight[idx].li);
        if self.cards[ci].preempt_lane(li, safe_s).is_err() {
            // The card cannot stage a fresh buffer pair; leave the batch
            // running rather than risk the aborted transfers' memory.
            return false;
        }
        let victim = self.in_flight.remove(idx);
        let wasted_s = safe_s - victim.dispatched_s;
        self.preemptions += 1;
        self.preempted_wasted_s += wasted_s;
        self.telemetry.registry.inc(names::PREEMPTIONS);
        for p in victim.members {
            self.telemetry.lifecycle.charge_preempt(p.id, wasted_s);
            self.qos.charge_preempt(p.spec.tenant, wasted_s);
            // Back into the queue with the original stamps intact: the
            // `submitted`/`admitted` records and the WFQ virtual finish
            // time survive; only `Batched`/`Dispatched` move forward when
            // the request is re-batched.
            self.queue.requeue(p);
        }
        self.preempt_reserved_s = Some(safe_s);
        true
    }

    fn dispatch_rows_batch(&mut self, ci: usize, li: usize, n: usize, batch: Batch) {
        let dir = direction_of(&batch.key);
        let payloads: Vec<&[fft_math::Complex32]> = batch
            .requests
            .iter()
            .map(|p| p.spec.payload.as_slice())
            .collect();
        let outcome = self.cards[ci]
            .dispatch_rows(li, n, &payloads, dir, self.now_s, self.cfg.keep_outputs)
            .unwrap_or_else(|e| panic!("rows dispatch failed post-validation: {e}"));
        self.estimator
            .observe(batch.key, batch.elems, outcome.completion_s - self.now_s);
        self.count_launch(batch.requests.len());
        // Stamps and completion records are deferred to the completion
        // instant ([`FftService::advance_to`]) so the batch stays
        // preemptible until then.
        self.in_flight.push(InFlight {
            seq: self.dispatch_seq,
            ci,
            li,
            dispatched_s: self.now_s,
            outcome,
            members: batch.requests,
        });
        self.dispatch_seq += 1;
    }

    /// Returns false when the batch could not be placed (oversized volume
    /// while part of the fleet is busy) and went back into the queue.
    fn dispatch_volume_batch(
        &mut self,
        ci: usize,
        dims: (usize, usize, usize),
        batch: Batch,
    ) -> bool {
        let dir = direction_of(&batch.key);
        let algo = rank_algo(batch.key.algo);
        let payloads: Vec<&[fft_math::Complex32]> = batch
            .requests
            .iter()
            .map(|p| p.spec.payload.as_slice())
            .collect();
        let outcome = self.cards[ci]
            .dispatch_volumes(
                dims,
                (algo, batch.key.algo),
                &payloads,
                dir,
                self.now_s,
                self.cfg.keep_outputs,
            )
            .unwrap_or_else(|e| panic!("volume dispatch failed post-validation: {e}"));
        match outcome {
            Some(done) => {
                let last = *done.completions_s.last().expect("volume batch is nonempty");
                self.cards[ci].occupy_all(last);
                self.estimator
                    .observe(batch.key, batch.elems, last - self.now_s);
                let size = batch.requests.len();
                self.count_launch(size);
                for (i, p) in batch.requests.iter().enumerate() {
                    let log = &mut self.telemetry.lifecycle;
                    log.record(p.id, Stage::Dispatched, self.now_s);
                    log.record(p.id, Stage::H2d, done.h2d_done_s[i]);
                    log.record(p.id, Stage::Compute, done.compute_done_s[i]);
                    log.record(p.id, Stage::D2h, done.completions_s[i]);
                    log.annotate(p.id, &done.span, Some(ci));
                    log.annotate_phases(p.id, done.plan_ready_s, done.h2d_starts_s[i]);
                }
                let mut outputs = done.outputs;
                for (i, p) in batch.requests.iter().enumerate() {
                    let out = outputs.as_mut().map(|o| std::mem::take(&mut o[i]));
                    self.record(p, done.completions_s[i], Some(ci), size, out);
                }
                true
            }
            None => {
                // Doesn't fit one card: the sharder needs the whole fleet.
                if self.cards.iter().all(|c| c.all_free_s() <= self.now_s) {
                    self.dispatch_sharded(dims, batch);
                    true
                } else {
                    // Back into the queue; the re-stamped Admitted record
                    // carries the same arrival, so the waterfall is intact.
                    for p in batch.requests {
                        self.queue.push_traced(p, &mut self.telemetry.lifecycle);
                    }
                    false
                }
            }
        }
    }

    fn dispatch_sharded(&mut self, dims: (usize, usize, usize), batch: Batch) {
        let dir = direction_of(&batch.key);
        if !self.sharded.contains_key(&dims) {
            match MultiGpuFft3d::new(&self.cfg.spec, self.cfg.n_gpus, dims.0, dims.1, dims.2) {
                Ok(mut plan) => {
                    if self.cfg.check_hazards {
                        plan.check_enable();
                    }
                    self.sharded.insert(dims, plan);
                }
                Err(err @ FftError::Alloc(_)) => {
                    // Even the whole fleet cannot hold this volume. Fail the
                    // batch instead of panicking, and remember the verdict so
                    // admission rejects the shape outright from now on.
                    self.fleet_oversized.insert(dims, err.clone());
                    self.fail_batch(batch, &err);
                    return;
                }
                Err(err) => panic!(
                    "sharded {}x{}x{} plan failed on {} cards: {err}",
                    dims.0, dims.1, dims.2, self.cfg.n_gpus
                ),
            }
        }
        let plan = self
            .sharded
            .get_mut(&dims)
            .expect("present or just inserted");
        let started = self.now_s;
        let mut t = started;
        let size = batch.requests.len();
        let span = format!("multi_gpu_{}x{}x{}", dims.0, dims.1, dims.2);
        let mut done: Vec<(f64, Option<Vec<fft_math::Complex32>>)> = Vec::with_capacity(size);
        for p in &batch.requests {
            let (out, rep) = plan
                .transform(&p.spec.payload, dir)
                .unwrap_or_else(|e| panic!("sharded transform failed post-validation: {e}"));
            t += rep.wall_s;
            done.push((t, self.cfg.keep_outputs.then_some(out)));
        }
        for card in &mut self.cards {
            card.gpu.wait_until(t);
            card.occupy_all(t);
        }
        self.estimator.observe(batch.key, batch.elems, t - started);
        self.count_launch(size);
        for (p, (completed_s, out)) in batch.requests.iter().zip(done) {
            // The sharder reports one wall time per transform, not per
            // phase: the waterfall degenerates to dispatch + one slice, but
            // stays monotone and complete.
            let log = &mut self.telemetry.lifecycle;
            log.record(p.id, Stage::Dispatched, started);
            log.record(p.id, Stage::H2d, completed_s);
            log.record(p.id, Stage::Compute, completed_s);
            log.record(p.id, Stage::D2h, completed_s);
            log.annotate(p.id, &span, None);
            self.record(p, completed_s, None, size, out);
        }
    }

    fn record(
        &mut self,
        p: &Pending,
        completed_s: f64,
        card: Option<usize>,
        batch_size: usize,
        output: Option<Vec<fft_math::Complex32>>,
    ) {
        let bytes = p.spec.shape.payload_bytes();
        let timed_out = p
            .spec
            .deadline_s
            .is_some_and(|d| completed_s - p.arrival_s > d);
        self.telemetry
            .lifecycle
            .record(p.id, Stage::Completed, completed_s);
        let attr_parts = self
            .telemetry
            .lifecycle
            .get(p.id)
            .and_then(|wf| telemetry::attribution::Ledger::from_waterfall(p.id, wf))
            .map(|ledger| *ledger.parts_s());
        let reg = &mut self.telemetry.registry;
        if let Some(parts) = attr_parts {
            for (name, part) in names::ATTR_US.iter().zip(parts) {
                reg.add(name, (part * 1e6).round() as u64);
            }
        }
        reg.inc(names::COMPLETED);
        reg.add(names::PAYLOAD_BYTES, bytes);
        let latency_ms = (completed_s - p.arrival_s) * 1e3;
        reg.observe(names::LATENCY_MS_HIST, latency_ms);
        if latency_ms > self.cfg.slo.latency_p95_ms {
            reg.inc(names::LATENCY_OVER_SLO);
        }
        if timed_out {
            reg.inc(names::TIMEOUTS);
        } else {
            self.good_bytes += 2 * bytes;
            reg.add(names::GOOD_BYTES, 2 * bytes);
        }
        self.qos.on_complete(
            p.spec.tenant,
            completed_s - p.arrival_s,
            if timed_out { 0 } else { 2 * bytes },
        );
        self.first_arrival_s = self.first_arrival_s.min(p.arrival_s);
        self.last_completion_s = self.last_completion_s.max(completed_s);
        // A single-transform request ships its payload up and its result
        // down, one volume each way.
        self.h2d_bytes += bytes;
        self.d2h_bytes += bytes;
        match card {
            Some(ci) => {
                self.card_requests[ci] += 1;
                self.card_bytes[ci] += bytes;
            }
            None => {
                // Sharded runs occupy every card.
                for ci in 0..self.cards.len() {
                    self.card_requests[ci] += 1;
                    self.card_bytes[ci] += bytes / self.cards.len() as u64;
                }
            }
        }
        self.completion_index.insert(p.id, self.completions.len());
        self.completions.push(Completion {
            id: p.id,
            arrival_s: p.arrival_s,
            completed_s,
            card,
            batch_size,
            timed_out,
            output,
        });
        self.completion_bytes.push(bytes);
    }

    /// Completes every request in `batch` as failed — the graceful
    /// alternative to panicking when dispatch discovers, post-admission,
    /// that the work is impossible.
    fn fail_batch(&mut self, batch: Batch, err: &FftError) {
        for p in batch.requests {
            self.telemetry
                .lifecycle
                .record(p.id, Stage::Failed, self.now_s);
            self.telemetry.registry.inc(names::FAILED);
            self.qos.on_fail(p.spec.tenant);
            self.failures.push((p.id, err.clone()));
        }
    }

    /// Runs virtual time forward until the queue is empty and every lane is
    /// idle — the graceful-shutdown path. Returns the final simulated time.
    pub fn drain(&mut self) -> f64 {
        loop {
            self.pump();
            self.refresh_gauges();
            if self.queue.depth() == 0 && self.pipe_queue.is_empty() {
                break;
            }
            let next = self
                .cards
                .iter()
                .flat_map(|c| c.lanes().iter().map(|l| l.busy_until_s))
                .filter(|&t| t > self.now_s)
                .fold(f64::INFINITY, f64::min);
            if !next.is_finite() {
                debug_assert!(false, "queue stuck with an idle fleet");
                break;
            }
            self.advance_to(next);
        }
        let end = self
            .cards
            .iter()
            .map(Card::all_free_s)
            .fold(self.now_s, f64::max);
        self.advance_to(end);
        self.refresh_gauges();
        self.sync_check_counters();
        self.telemetry.timeline.seal(end, &self.telemetry.registry);
        end
    }

    /// Refreshes the sampled gauges (queue depth, per-card utilization,
    /// plan-cache hit rate, running goodput) and mirrors the externally
    /// maintained plan-cache counters into the registry.
    fn refresh_gauges(&mut self) {
        let depth = (self.queue.depth() + self.pipe_queue.len()) as f64;
        let now = self.now_s;
        let mut hits = 0u64;
        let mut misses = 0u64;
        for c in &self.cards {
            let stats = c.cache_stats();
            hits += stats.hits;
            misses += stats.misses;
        }
        let makespan = (self.last_completion_s - self.first_arrival_s).max(0.0);
        let goodput = if makespan > 0.0 {
            self.good_bytes as f64 / makespan / 1e9
        } else {
            0.0
        };
        let utils: Vec<(f64, f64)> = self
            .cards
            .iter()
            .map(|c| (c.utilization(now), c.copy_utilization(now)))
            .collect();
        let dropped = self.telemetry.lifecycle.dropped();
        let reg = &mut self.telemetry.registry;
        reg.set_counter(names::LIFECYCLE_DROPPED, dropped);
        reg.set_gauge(names::QUEUE_DEPTH, depth);
        reg.set_gauge(names::GOODPUT_GBS, goodput);
        reg.set_gauge(
            names::PLAN_HIT_RATE,
            if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
        );
        reg.set_counter(names::PLAN_HITS, hits);
        reg.set_counter(names::PLAN_MISSES, misses);
        for (i, (compute, copy)) in utils.iter().enumerate() {
            reg.set_gauge(&names::card_compute_util(i), *compute);
            reg.set_gauge(&names::card_copy_util(i), *copy);
        }
    }

    /// Mirrors the fleet-merged validator diagnostics (when `check_hazards`
    /// is on) into registry counters.
    fn sync_check_counters(&mut self) {
        let Some(rep) = self.check_report() else {
            return;
        };
        let (mut oob, mut uninit, mut uaf) = (0u64, 0u64, 0u64);
        for d in &rep.access {
            let n = d.occurrences as u64;
            match d.kind {
                AccessKind::OutOfBounds => oob += n,
                AccessKind::UninitRead => uninit += n,
                AccessKind::UseAfterFree => uaf += n,
            }
        }
        let reg = &mut self.telemetry.registry;
        reg.set_counter(names::CHECK_OOB, oob);
        reg.set_counter(names::CHECK_UNINIT, uninit);
        reg.set_counter(names::CHECK_USE_AFTER_FREE, uaf);
        reg.set_counter(names::CHECK_HAZARDS, rep.hazards.len() as u64);
        reg.set_counter(names::CHECK_KERNELS, rep.kernels_checked as u64);
        reg.set_counter(names::CHECK_OPS, rep.ops_tracked as u64);
    }

    /// Builds the end-of-run summary. Call after [`FftService::drain`] —
    /// requests still queued are not in the report.
    pub fn report(&self) -> ServeReport {
        let mut residency = crate::scheduler::ResidencyStats::default();
        for c in &self.cards {
            residency.absorb(c.residency_stats());
        }
        let mut r = ServeReport {
            submitted: self.submitted,
            admitted: self.admitted,
            rejected_queue_full: self.rejected_queue_full,
            rejected_deadline: self.rejected_deadline,
            rejected_unsupported: self.rejected_unsupported,
            rejected_oversized: self.rejected_oversized,
            rejected_unallocatable: self.rejected_unallocatable,
            rejected_quota: self.rejected_quota,
            preemptions: self.preemptions,
            preempted_s: self.preempted_wasted_s,
            pipelines: self.pipelines_completed,
            pipeline_stages: self.pipeline_stages_completed,
            resident_hits: residency.hits,
            resident_misses: residency.misses,
            resident_evictions: residency.evictions,
            resident_s: self.resident_s_total,
            h2d_bytes: self.h2d_bytes,
            d2h_bytes: self.d2h_bytes,
            failed: self.failures.len() as u64,
            queue_max_depth: self.queue.max_depth(),
            queue_mean_depth: self.queue.mean_depth(),
            batch_histogram: self.batch_histogram.clone(),
            ..ServeReport::default()
        };
        r.tally(&self.completions, &self.completion_bytes);
        r.cards = self
            .cards
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let stats = c.cache_stats();
                CardReport {
                    requests: self.card_requests[i],
                    bytes: self.card_bytes[i],
                    utilization: c.utilization(r.makespan_s),
                    copy_utilization: c.copy_utilization(r.makespan_s),
                    plan_hits: stats.hits,
                    plan_misses: stats.misses,
                }
            })
            .collect();
        r.slo = self.slo_report();
        let ledgers = telemetry::attribution::collect(&self.telemetry.lifecycle);
        r.budget = telemetry::attribution::budget(&ledgers);
        r.fairness_index = self.qos.fairness_index();
        r.tenants = self
            .qos
            .tenants()
            .map(|(t, s)| {
                let stats = LatencyStats::from_latencies(s.latencies_s.clone());
                TenantReport {
                    tenant: t.0,
                    share: self.cfg.qos.policy(t).share,
                    submitted: s.submitted,
                    admitted: s.admitted,
                    rejected_quota: s.rejected_quota,
                    completed: s.completed,
                    good_bytes: s.good_bytes,
                    p95_s: stats.p95_s,
                    p95_ok: s.completed == 0 || stats.p95_s * 1e3 <= self.cfg.slo.latency_p95_ms,
                    preempted_s: s.preempted_s,
                }
            })
            .collect();
        r
    }

    /// The telemetry bundle (registry, timeline, lifecycle log), read-only.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The telemetry bundle, writable — how the gateway registers its
    /// `gate_*` counters in the same registry the exporters render.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// The configuration the fleet was brought up with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Evaluates the configured SLO policy against the run so far.
    pub fn slo_report(&self) -> SloReport {
        let lat: Vec<f64> = self.completions.iter().map(Completion::latency_s).collect();
        let stats = LatencyStats::from_latencies(lat);
        let makespan = (self.last_completion_s - self.first_arrival_s).max(0.0);
        let goodput = if makespan > 0.0 {
            self.good_bytes as f64 / makespan / 1e9
        } else {
            0.0
        };
        slo::evaluate(
            &self.cfg.slo,
            stats.p95_s * 1e3,
            goodput,
            &self.telemetry.registry,
            &self.telemetry.timeline,
        )
    }

    /// Renders the run's `bifft-metrics-v1` document. Call after
    /// [`FftService::drain`] for the sealed series.
    pub fn metrics_json(&self) -> String {
        telemetry::metrics_json(
            &self.telemetry.registry,
            &self.telemetry.timeline,
            &self.slo_report(),
        )
    }

    /// Renders the run's metrics in Prometheus text exposition.
    pub fn prometheus_text(&self) -> String {
        telemetry::prometheus_text(&self.telemetry.registry, &self.slo_report())
    }

    /// Time ledgers of every completed request, in completion order.
    pub fn ledgers(&self) -> Vec<telemetry::Ledger> {
        telemetry::attribution::collect(&self.telemetry.lifecycle)
    }

    /// Renders the run's `bifft-attr-v2` attribution document. Call after
    /// [`FftService::drain`] so every completed request is ledgered.
    pub fn attribution_json(&self) -> String {
        telemetry::attribution::render_attr_json(&self.ledgers())
    }

    /// Audits the conservation invariant (category sum == e2e latency)
    /// over every completed request's ledger.
    pub fn attribution_audit(&self) -> telemetry::Audit {
        telemetry::attribution::audit(&self.ledgers())
    }

    /// Drains the per-card sim-prof traces and merges them with the
    /// request waterfalls into one Chrome trace document, or `None` when
    /// `record_trace` was off. Draining consumes the accumulated events, so
    /// call once at end of run.
    pub fn chrome_trace(&mut self) -> Option<String> {
        let mut cards = Vec::new();
        for c in &mut self.cards {
            let i = c.index;
            cards.push((i, c.take_trace()?));
        }
        Some(telemetry::export::chrome_trace(
            &cards,
            &self.telemetry.lifecycle,
        ))
    }

    /// Drains, then reports — graceful shutdown in one call.
    pub fn finish(mut self) -> ServeReport {
        self.drain();
        self.report()
    }

    /// Validator diagnostics merged across the fleet (cards and sharded
    /// plans), or `None` when `check_hazards` was off.
    pub fn check_report(&self) -> Option<CheckReport> {
        let mut merged: Option<CheckReport> = None;
        for c in &self.cards {
            if let Some(rep) = c.gpu.check_report() {
                merged.get_or_insert_with(CheckReport::default).merge(rep);
            }
        }
        for plan in self.sharded.values() {
            if let Some(rep) = plan.check_report() {
                merged.get_or_insert_with(CheckReport::default).merge(rep);
            }
        }
        merged
    }
}

fn direction_of(key: &BatchKey) -> Direction {
    if key.forward {
        Direction::Forward
    } else {
        Direction::Inverse
    }
}

/// Shape/payload validation — everything admission can reject as malformed
/// without touching a card. Fleet-capacity rejections (oversized rows,
/// unallocatable volumes) are the service's own taxonomy, decided in
/// `submit`.
fn validate_spec(spec: &RequestSpec) -> Result<(), FftError> {
    if spec.payload.len() != spec.shape.elems() {
        return Err(FftError::VolumeMismatch {
            expected: spec.shape.elems(),
            got: spec.payload.len(),
        });
    }
    match spec.shape {
        Shape::Rows1d { n, rows } => {
            if rows == 0 {
                return Err(FftError::BadPlanConfig {
                    param: "rows",
                    value: 0,
                    reason: "a rows request must carry at least one row".to_string(),
                });
            }
            if !n.is_power_of_two() || !(4..=512).contains(&n) {
                return Err(FftError::BadPlanConfig {
                    param: "n",
                    value: n,
                    reason: "1-D batch length must be a power of two in 4..=512".to_string(),
                });
            }
        }
        Shape::Volume { nx, ny, nz } => {
            for (axis, n) in [('x', nx), ('y', ny), ('z', nz)] {
                if !n.is_power_of_two() || !(16..=512).contains(&n) {
                    return Err(FftError::UnsupportedSize { axis, n });
                }
            }
            if let Some(a @ (Algorithm::OutOfCore | Algorithm::MultiGpu)) = spec.algorithm {
                return Err(FftError::UnsupportedAlgorithm {
                    algorithm: a,
                    reason: "the service routes oversized volumes itself; hint a single-card algorithm or none",
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::{QuotaKind, TenantId, TenantPolicy};
    use crate::request::{Priority, Shape};

    fn rows_spec(n: usize, rows: usize, seed: u64) -> RequestSpec {
        RequestSpec::seeded(Shape::Rows1d { n, rows }, Direction::Forward, seed)
    }

    fn tiny_service(cfg: ServeConfig) -> FftService {
        FftService::new(cfg).unwrap()
    }

    #[test]
    fn rejects_malformed_shapes_before_queueing() {
        let mut svc = tiny_service(ServeConfig::default());
        let bad_n = svc.submit(rows_spec(48, 2, 1), 0.0);
        assert!(matches!(
            bad_n,
            Err(Rejection::Unsupported(FftError::BadPlanConfig {
                param: "n",
                ..
            }))
        ));
        let mut short = rows_spec(64, 2, 2);
        short.payload.pop();
        assert!(matches!(
            svc.submit(short, 0.0),
            Err(Rejection::Unsupported(FftError::VolumeMismatch { .. }))
        ));
        let bad_vol = RequestSpec::seeded(
            Shape::Volume {
                nx: 8,
                ny: 16,
                nz: 16,
            },
            Direction::Forward,
            3,
        );
        assert!(matches!(
            svc.submit(bad_vol, 0.0),
            Err(Rejection::Unsupported(FftError::UnsupportedSize {
                axis: 'x',
                ..
            }))
        ));
        let hinted = RequestSpec::seeded(
            Shape::Volume {
                nx: 16,
                ny: 16,
                nz: 16,
            },
            Direction::Forward,
            4,
        )
        .algorithm(Algorithm::MultiGpu);
        assert!(matches!(
            svc.submit(hinted, 0.0),
            Err(Rejection::Unsupported(
                FftError::UnsupportedAlgorithm { .. }
            ))
        ));
        let r = svc.finish();
        assert_eq!(r.submitted, 4);
        assert_eq!(r.rejected_unsupported, 4);
        assert_eq!(r.admitted, 0);
    }

    #[test]
    fn rejects_rows_payloads_larger_than_a_staging_slot() {
        let cfg = ServeConfig {
            max_batch_elems: 1 << 12,
            ..ServeConfig::default()
        };
        let mut svc = tiny_service(cfg);
        // 256 * 17 = 4352 > 4096: valid-shaped but bigger than one slot —
        // must bounce at admission, not panic mid-upload.
        let too_big = svc.submit(rows_spec(256, 17, 1), 0.0);
        assert!(matches!(
            too_big,
            Err(Rejection::Oversized {
                elems: 4352,
                limit_elems: 4096,
            })
        ));
        // Exactly one slot still fits.
        svc.submit(rows_spec(256, 16, 2), 0.0).unwrap();
        let r = svc.finish();
        assert_eq!(r.rejected_oversized, 1);
        assert_eq!(r.rejected_unsupported, 0);
        assert_eq!(r.completed, 1);
    }

    #[test]
    fn fleet_oversized_volume_fails_gracefully_then_rejects() {
        // 1 MiB cards: a 64^3 volume (2 MiB of data) cannot fit even the
        // sharded two-card fleet. The first request must fail cleanly (no
        // panic); later ones must bounce at admission.
        let mut spec = gpu_sim::DeviceSpec::gts8800();
        spec.memory_bytes = 1 << 20;
        let cfg = ServeConfig {
            spec,
            n_gpus: 2,
            streams_per_card: 1,
            max_batch_elems: 1 << 10,
            ..ServeConfig::default()
        };
        let mut svc = tiny_service(cfg);
        let req = RequestSpec::seeded(
            Shape::Volume {
                nx: 64,
                ny: 64,
                nz: 64,
            },
            Direction::Forward,
            1,
        );
        let ticket = svc.submit(req.clone(), 0.0).unwrap();
        svc.drain();
        assert!(svc.completions().is_empty());
        assert_eq!(svc.failures().len(), 1);
        assert_eq!(svc.failures()[0].0, ticket.id);
        assert!(matches!(svc.failures()[0].1, FftError::Alloc(_)));
        assert!(matches!(svc.poll(ticket), PollStatus::Failed(_)));
        assert!(matches!(
            svc.submit(req, 1.0),
            Err(Rejection::Unallocatable(FftError::Alloc(_)))
        ));
        let r = svc.report();
        assert_eq!(r.failed, 1);
        assert_eq!(r.completed, 0);
        assert_eq!(r.rejected_unallocatable, 1);
        assert_eq!(r.rejected_unsupported, 0);
    }

    #[test]
    fn queue_full_backpressure() {
        let cfg = ServeConfig {
            n_gpus: 1,
            streams_per_card: 0,
            queue_capacity: 2,
            max_batch_requests: 1,
            ..ServeConfig::default()
        };
        let mut svc = tiny_service(cfg);
        // All at t=0: the first dispatches immediately (freeing its queue
        // slot), two more sit in the queue, the fourth bounces.
        for seed in 0..3 {
            svc.submit(rows_spec(256, 64, seed), 0.0).unwrap();
        }
        let err = svc.submit(rows_spec(256, 64, 3), 0.0);
        assert!(matches!(err, Err(Rejection::QueueFull { capacity: 2 })));
        let r = svc.finish();
        assert_eq!(r.rejected_queue_full, 1);
        assert_eq!(r.completed, 3);
    }

    #[test]
    fn infeasible_deadlines_are_shed_and_met_ones_kept() {
        let mut svc = tiny_service(ServeConfig {
            n_gpus: 1,
            ..ServeConfig::default()
        });
        let fine = rows_spec(256, 16, 1).deadline_s(1.0);
        svc.submit(fine, 0.0).unwrap();
        let hopeless = rows_spec(256, 16, 2).deadline_s(1e-9);
        assert!(matches!(
            svc.submit(hopeless, 0.0),
            Err(Rejection::DeadlineInfeasible { .. })
        ));
        let r = svc.finish();
        assert_eq!(r.rejected_deadline, 1);
        assert_eq!(r.completed, 1);
        assert_eq!(r.timeouts, 0);
    }

    #[test]
    fn coalesces_backlog_and_reports_histogram() {
        let cfg = ServeConfig {
            n_gpus: 1,
            streams_per_card: 1,
            ..ServeConfig::default()
        };
        let mut svc = tiny_service(cfg);
        // First submit dispatches alone; the rest arrive while the lane is
        // busy and coalesce on the next free event during drain.
        for seed in 0..5 {
            svc.submit(rows_spec(256, 16, seed), 0.0).unwrap();
        }
        let r = svc.finish();
        assert_eq!(r.completed, 5);
        assert_eq!(r.batch_histogram.get(&1), Some(&1));
        assert_eq!(r.batch_histogram.get(&4), Some(&1));
        assert!(r.queue_max_depth >= 4);
        assert!(r.mean_batch_size() > 1.0);
    }

    #[test]
    fn priorities_jump_the_queue() {
        let cfg = ServeConfig {
            n_gpus: 1,
            streams_per_card: 1,
            max_batch_requests: 1,
            ..ServeConfig::default()
        };
        let mut svc = tiny_service(cfg);
        let first = svc.submit(rows_spec(256, 16, 0), 0.0).unwrap(); // dispatches now
        let normal = svc.submit(rows_spec(256, 16, 1), 0.0).unwrap();
        let high = svc
            .submit(rows_spec(256, 16, 2).priority(Priority::High), 0.0)
            .unwrap();
        svc.drain();
        let order: Vec<RequestId> = svc.completions().iter().map(|c| c.id).collect();
        assert_eq!(
            order,
            vec![first.id, high.id, normal.id],
            "high priority dispatches before the earlier normal request"
        );
    }

    #[test]
    fn placement_prefers_the_warm_card() {
        let cfg = ServeConfig {
            n_gpus: 2,
            streams_per_card: 1,
            max_batch_requests: 1,
            ..ServeConfig::default()
        };
        let mut svc = tiny_service(cfg);
        // Warm card 0 with a cheap 256-length plan; the expensive 128x64
        // lands on card 1 because card 0's only lane is still busy.
        svc.submit(rows_spec(256, 1, 0), 0.0).unwrap();
        svc.submit(rows_spec(128, 64, 1), 0.0).unwrap();
        svc.drain();
        // Both cards are idle now and card 0 freed *first* (its batch was
        // far cheaper), so the old latest-horizon comparator picked the
        // cold card 0 and serialized a fresh 128 plan build in front of
        // the transform. Shortest-expected-completion picks the warm
        // card 1.
        let repeat = svc.submit(rows_spec(128, 64, 2), svc.now_s()).unwrap();
        svc.drain();
        match svc.poll(repeat) {
            PollStatus::Done(c) => assert_eq!(c.card, Some(1), "warm card serves the repeat"),
            other => panic!("expected Done, got {other:?}"),
        }
        let r = svc.report();
        assert_eq!(r.cards[1].plan_misses, 1, "no rebuild of the 128 plan");
        assert_eq!(r.cards[1].plan_hits, 1);
        assert_eq!(r.cards[0].plan_misses, 1);
    }

    #[test]
    fn preemption_aborts_requeues_and_charges_the_victim() {
        let cfg = ServeConfig {
            n_gpus: 1,
            streams_per_card: 1,
            max_batch_requests: 1,
            qos: crate::qos::QosConfig {
                preemption: true,
                ..crate::qos::QosConfig::default()
            },
            ..ServeConfig::default()
        };
        let mut svc = tiny_service(cfg);
        let low = svc
            .submit(rows_spec(256, 64, 0).priority(Priority::Low), 0.0)
            .unwrap();
        let high = svc
            .submit(rows_spec(256, 4, 1).priority(Priority::High), 1e-6)
            .unwrap();
        svc.drain();
        // The low batch was aborted at its first stream-safe point, the
        // high request took the lane, and the victim re-ran afterwards.
        let order: Vec<RequestId> = svc.completions().iter().map(|c| c.id).collect();
        assert_eq!(order, vec![high.id, low.id]);
        let r = svc.report();
        assert_eq!(r.preemptions, 1);
        assert!(r.preempted_s > 0.0);
        assert_eq!(r.completed, 2);
        // The victim kept its original submission stamps across the
        // requeue and its waterfall is still a monotone full pipeline.
        let wf = svc.telemetry().lifecycle.get(low.id).unwrap();
        assert_eq!(wf.stage_s(Stage::Submitted), Some(0.0));
        assert_eq!(wf.stage_s(Stage::Admitted), Some(0.0));
        assert!(wf.is_monotone());
        assert!(wf.is_complete_pipeline());
        assert_eq!(wf.preempts, 1);
        assert!(wf.preempted_s > 0.0);
        // Makespan is still last-completion minus first-arrival — the
        // preempt/requeue cycle does not corrupt the tally.
        let last = svc
            .completions()
            .iter()
            .map(|c| c.completed_s)
            .fold(0.0, f64::max);
        assert_eq!(r.makespan_s, last);
        // Conservation holds with the wasted time in its own category.
        let audit = svc.attribution_audit();
        assert!(audit.ok(), "ledger conservation: {audit:?}");
    }

    #[test]
    fn quota_rejections_bounce_before_the_queue() {
        let mut qos = crate::qos::QosConfig::default();
        qos.tenants.insert(
            TenantId(1),
            TenantPolicy {
                rate_rps: Some(10.0),
                burst: 1.0,
                ..TenantPolicy::default()
            },
        );
        let cfg = ServeConfig {
            qos,
            ..ServeConfig::default()
        };
        let mut svc = tiny_service(cfg);
        svc.submit(rows_spec(256, 4, 0).tenant(TenantId(1)), 0.0)
            .unwrap();
        let err = svc.submit(rows_spec(256, 4, 1).tenant(TenantId(1)), 0.0);
        assert!(matches!(
            err,
            Err(Rejection::QuotaExceeded {
                tenant: TenantId(1),
                kind: QuotaKind::Rate,
            })
        ));
        // The default tenant is unlimited and unaffected.
        svc.submit(rows_spec(256, 4, 2), 0.0).unwrap();
        let r = svc.finish();
        assert_eq!(r.rejected_quota, 1);
        assert_eq!(r.completed, 2);
        assert_eq!(r.tenants.len(), 2);
        assert_eq!(r.tenants[0].tenant, 0);
        assert_eq!(r.tenants[1].tenant, 1);
        assert_eq!(r.tenants[1].submitted, 2);
        assert_eq!(r.tenants[1].admitted, 1);
        assert_eq!(r.tenants[1].rejected_quota, 1);
        assert!(r.fairness_index > 0.0);
    }

    #[test]
    fn deterministic_reports() {
        let run = || {
            let mut svc = tiny_service(ServeConfig::default());
            for seed in 0..8u64 {
                let spec = rows_spec(256, 32, seed);
                svc.submit(spec, seed as f64 * 10e-6).unwrap();
            }
            svc.finish().to_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn builder_validates_and_reports_typed_errors() {
        let cfg = ServeConfig::builder()
            .gpus(4)
            .streams(3)
            .queue_capacity(16)
            .batch_requests(2)
            .latency_budget_s(5e-3)
            .build()
            .unwrap();
        assert_eq!(cfg.n_gpus, 4);
        assert_eq!(cfg.streams_per_card, 3);
        assert_eq!(cfg.queue_capacity, 16);
        assert_eq!(cfg.max_batch_requests, 2);
        assert!(matches!(
            ServeConfig::builder().gpus(3).build(),
            Err(FftError::BadPlanConfig {
                param: "n_gpus",
                ..
            })
        ));
        assert!(matches!(
            ServeConfig::builder().queue_capacity(0).build(),
            Err(FftError::BadPlanConfig {
                param: "queue_capacity",
                ..
            })
        ));
        assert!(matches!(
            ServeConfig::builder().tick_s(0.0).build(),
            Err(FftError::BadPlanConfig {
                param: "tick_s",
                ..
            })
        ));
        // new() enforces the same invariants for configs built by hand.
        assert!(FftService::new(ServeConfig {
            n_gpus: 3,
            ..ServeConfig::default()
        })
        .is_err());
    }

    #[test]
    fn poll_tracks_a_ticket_through_its_lifecycle() {
        let cfg = ServeConfig::builder()
            .gpus(1)
            .streams(1)
            .batch_requests(1)
            .build()
            .unwrap();
        let mut svc = FftService::new(cfg).unwrap();
        let first = svc.submit(rows_spec(256, 16, 0), 0.0).unwrap(); // dispatches now
        let queued = svc.submit(rows_spec(256, 16, 1), 0.0).unwrap();
        assert_eq!(first.correlation(), first.id.0);
        assert!(matches!(svc.poll(queued), PollStatus::Queued));
        // A correlation id the service never issued.
        let forged = Ticket {
            id: RequestId(1 << 40),
            at_s: 0.0,
        };
        assert!(matches!(svc.poll(forged), PollStatus::Unknown));
        svc.drain();
        match svc.poll(queued) {
            PollStatus::Done(c) => assert_eq!(c.id, queued.id),
            other => panic!("expected Done, got {other:?}"),
        }
        // A rejected submission's id never becomes pollable.
        let rejected = svc.submit(rows_spec(48, 2, 2), svc.now_s());
        assert!(rejected.is_err());
        let ghost = Ticket {
            id: RequestId(svc.completions().len() as u64),
            at_s: 0.0,
        };
        // ghost happens to name the rejected id (ids are dense): Unknown.
        assert!(matches!(svc.poll(ghost), PollStatus::Unknown));
    }

    fn conv_pipe(seed_a: u64, seed_b: u64) -> PipelineRequest {
        crate::pipeline::SeededPipeline {
            dims: (16, 16, 16),
            input_seeds: vec![seed_a, seed_b],
            stages: crate::pipeline::convolution_stages(16 * 16 * 16),
            priority: Priority::Normal,
            deadline_s: None,
            tenant: TenantId::default(),
        }
        .materialize()
    }

    #[test]
    fn pipeline_deadline_costs_the_whole_dag_not_its_first_stage() {
        let mut svc = tiny_service(ServeConfig::default());
        let est = crate::pipeline::PipeEstimator::new();
        let stages = crate::pipeline::convolution_stages(16 * 16 * 16);
        let first_s = est.stage_s(stages[0].kind, 16 * 16 * 16);
        let dag_s = est.estimate_s(&stages, 16 * 16 * 16);
        // A deadline every individual stage meets but the DAG cannot: a
        // first-stage-only estimator admits this and blows the deadline
        // deterministically; whole-DAG costing sheds it at admission.
        let deadline = first_s * 2.0;
        assert!(
            deadline < dag_s,
            "the probe deadline must sit between one stage and the DAG"
        );
        let mut pipe = conv_pipe(1, 2);
        pipe.deadline_s = Some(deadline);
        match svc.submit_pipeline(pipe, 0.0) {
            Err(Rejection::DeadlineInfeasible {
                estimated_s,
                deadline_s,
            }) => {
                assert!(estimated_s > deadline_s);
                assert!(estimated_s >= dag_s);
            }
            other => panic!("expected DeadlineInfeasible, got {other:?}"),
        }
        // The same DAG under a full-cost deadline admits and completes.
        let mut ok = conv_pipe(1, 2);
        ok.deadline_s = Some(dag_s * 10.0);
        svc.submit_pipeline(ok, 0.0).unwrap();
        let r = svc.finish();
        assert_eq!(r.rejected_deadline, 1);
        assert_eq!(r.pipelines, 1);
    }

    #[test]
    fn pipeline_deadline_waits_for_a_whole_card_not_a_single_lane() {
        let cfg = || ServeConfig::builder().gpus(1).streams(2).build().unwrap();
        // Probe: how long one rows batch holds its lane on this fleet.
        let mut probe = tiny_service(cfg());
        probe.submit(rows_spec(256, 16, 7), 0.0).unwrap();
        probe.drain();
        let rows_t = probe.completions()[0].completed_s;
        assert!(rows_t > 0.0);

        // Main run: the same rows batch occupies lane 0; lane 1 idles. A
        // pipeline needs the *whole* card, so its wait horizon is rows_t —
        // a single-lane estimate would claim zero wait and admit this.
        let mut svc = tiny_service(cfg());
        svc.submit(rows_spec(256, 16, 7), 0.0).unwrap();
        let stages = crate::pipeline::convolution_stages(16 * 16 * 16);
        let dag_s = crate::pipeline::PipeEstimator::new().estimate_s(&stages, 16 * 16 * 16);
        let mut pipe = conv_pipe(1, 2);
        pipe.deadline_s = Some(dag_s + rows_t / 2.0);
        match svc.submit_pipeline(pipe, 0.0) {
            Err(Rejection::DeadlineInfeasible { estimated_s, .. }) => {
                assert!(
                    estimated_s >= rows_t + dag_s,
                    "the estimate charges the whole-card wait: {estimated_s} vs {rows_t}"
                );
            }
            other => panic!("expected DeadlineInfeasible, got {other:?}"),
        }
        let r = svc.finish();
        assert_eq!(r.rejected_deadline, 1);
    }

    #[test]
    fn high_priority_singles_outrank_waiting_low_priority_pipelines() {
        let cfg = ServeConfig::builder().gpus(1).streams(2).build().unwrap();
        let mut svc = tiny_service(cfg);
        // Fill the only card with a pipeline, then queue a low-priority
        // DAG and a high-priority single behind it.
        svc.submit_pipeline(conv_pipe(1, 2), 0.0).unwrap();
        let mut low = conv_pipe(3, 4);
        low.priority = Priority::Low;
        let low_t = svc.submit_pipeline(low, 1e-6).unwrap();
        let mut spec = rows_spec(256, 16, 5);
        spec.priority = Priority::High;
        let high_t = svc.submit(spec, 2e-6).unwrap();
        svc.drain();
        let done = |t: Ticket| {
            svc.completions()
                .iter()
                .find(|c| c.id == t.id)
                .expect("both complete")
                .completed_s
        };
        assert!(
            done(high_t) < done(low_t),
            "the freed card must serve the high-priority single before \
             the low-priority pipeline"
        );
    }

    #[test]
    fn seeded_submissions_validate_the_envelope_before_materializing() {
        let mut svc = tiny_service(ServeConfig::default());
        // Hostile template: in-envelope stage list, grotesque dims. The
        // admission path must bounce it from the seeds alone — payload
        // materialization would allocate (2^23)^3 complex samples.
        let hostile = crate::pipeline::SeededPipeline {
            dims: (1 << 23, 1 << 23, 1 << 23),
            input_seeds: vec![1, 2],
            stages: crate::pipeline::convolution_stages(16 * 16 * 16),
            priority: Priority::Normal,
            deadline_s: None,
            tenant: TenantId::default(),
        };
        match svc.submit_seeded_pipeline(hostile, 0.0) {
            Err(Rejection::UnsupportedStage(detail)) => {
                assert!(detail.contains("power of two"), "{detail}")
            }
            other => panic!("expected UnsupportedStage, got {other:?}"),
        }
        // A valid template admits through the same entry point and runs.
        let ok = crate::pipeline::SeededPipeline {
            dims: (16, 16, 16),
            input_seeds: vec![1, 2],
            stages: crate::pipeline::convolution_stages(16 * 16 * 16),
            priority: Priority::Normal,
            deadline_s: None,
            tenant: TenantId::default(),
        };
        svc.submit_seeded_pipeline(ok, 0.0).unwrap();
        let r = svc.finish();
        assert_eq!(r.rejected_unsupported, 1);
        assert_eq!(r.pipelines, 1);
    }

    #[test]
    fn malformed_dags_reject_with_the_typed_stage_error() {
        let mut svc = tiny_service(ServeConfig::default());
        let mut pipe = conv_pipe(3, 4);
        // Dangle the product's second operand off the end of the DAG.
        pipe.stages[2].src2 = Some(crate::pipeline::Operand::Stage(9));
        match svc.submit_pipeline(pipe, 0.0) {
            Err(Rejection::UnsupportedStage(detail)) => {
                assert!(!detail.is_empty(), "the rejection names the defect")
            }
            other => panic!("expected UnsupportedStage, got {other:?}"),
        }
        let r = svc.finish();
        assert_eq!(r.rejected_unsupported, 1);
        assert_eq!(r.pipelines, 0);
    }

    #[test]
    fn pipeline_attribution_conserves_and_replays_bit_identically() {
        let run = || {
            let mut svc = tiny_service(ServeConfig::default());
            for seed in 0..4u64 {
                svc.submit_pipeline(conv_pipe(seed, seed + 100), seed as f64 * 1e-4)
                    .unwrap();
            }
            // Mixed traffic: a rows request shares the fleet mid-run.
            svc.submit(rows_spec(256, 16, 9), 2e-4).unwrap();
            svc.drain();
            let audit = svc.attribution_audit();
            assert!(audit.ok(), "conservation with resident holds: {audit:?}");
            let r = svc.finish();
            assert_eq!(r.pipelines, 4);
            assert!(r.resident_hits > 0, "intermediates stayed on the card");
            assert!(r.resident_s > 0.0, "the resident category accrued time");
            r.to_json()
        };
        assert_eq!(run(), run());
    }
}
