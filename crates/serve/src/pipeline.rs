//! Pipeline requests: a small DAG of FFT / pointwise / reduce stages served
//! as **one** schedulable unit, with every intermediate held device-resident.
//!
//! This is the serving-side form of the paper's §4.4 confinement argument
//! (and the ZDock case study): a convolution is forward → forward →
//! pointwise product → inverse, and the only traffic that should cross PCIe
//! is the input volumes going up and the final surface (or an 8-byte
//! reduction) coming down. A [`PipelineRequest`] names that DAG explicitly —
//! each stage carries a happens-after mask over prior stages, in the spirit
//! of a lane scheduler's `sched(closure, after_mask, on_lane)` — and the
//! service places the whole DAG on one card with intermediates in refcounted
//! residency slots (see `scheduler::Residency`).
//!
//! Stages execute in submission (topological) order; the `after_mask` plus
//! the implicit operand edges form the dependency relation the executor
//! honours. Validation rejects DAGs the executor cannot run in place
//! (see [`validate_dag`]) with a stable reason string that travels the wire
//! as the `unsupported_stage` rejection code.

use crate::qos::TenantId;
use crate::request::Priority;
use fft_math::rng::SplitMix64;
use fft_math::Complex32;

/// Hard cap on stages per pipeline (the `after_mask` is a `u32`).
pub const MAX_STAGES: usize = 32;
/// Hard cap on input volumes per pipeline.
pub const MAX_INPUTS: usize = 8;

/// Pointwise (elementwise) stage flavours.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PointwiseOp {
    /// `dst[i] = src[i] * src2[i] * scale`.
    Multiply,
    /// `dst[i] = src[i] * scale` (in place).
    Scale,
    /// `dst[i] = src[i] * conj(src2[i]) * scale` — the correlation core.
    ConjMultiply,
}

/// On-card reduction flavours — only the reduced scalar crosses the bus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Index and value of the largest `|v|²`.
    ArgMax,
    /// Total energy `Σ |v|²`.
    Energy,
}

/// What one pipeline stage computes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageKind {
    /// Forward five-step 3-D FFT (in place on the operand's slot).
    Forward,
    /// Inverse five-step 3-D FFT via the split-swapped chained plan
    /// (unnormalised; fold `1/N` into a preceding pointwise scale).
    Inverse,
    /// An elementwise stage.
    Pointwise(PointwiseOp),
    /// A terminal reduction; its value may not feed a later stage.
    Reduce(ReduceOp),
}

impl StageKind {
    /// Number of distinct stage kinds (the estimator's table size).
    pub const COUNT: usize = 7;

    /// Dense index for per-kind accounting tables.
    pub fn index(self) -> usize {
        match self {
            StageKind::Forward => 0,
            StageKind::Inverse => 1,
            StageKind::Pointwise(PointwiseOp::Multiply) => 2,
            StageKind::Pointwise(PointwiseOp::Scale) => 3,
            StageKind::Pointwise(PointwiseOp::ConjMultiply) => 4,
            StageKind::Reduce(ReduceOp::ArgMax) => 5,
            StageKind::Reduce(ReduceOp::Energy) => 6,
        }
    }

    /// Stable lowercase label — the wire encoding and estimator key.
    pub fn label(self) -> &'static str {
        match self {
            StageKind::Forward => "forward",
            StageKind::Inverse => "inverse",
            StageKind::Pointwise(PointwiseOp::Multiply) => "pointwise_mul",
            StageKind::Pointwise(PointwiseOp::Scale) => "pointwise_scale",
            StageKind::Pointwise(PointwiseOp::ConjMultiply) => "pointwise_conj_mul",
            StageKind::Reduce(ReduceOp::ArgMax) => "reduce_argmax",
            StageKind::Reduce(ReduceOp::Energy) => "reduce_energy",
        }
    }

    /// Parses a wire label back to the kind; `None` marks an unsupported
    /// stage kind (a *newer* client speaking to an older server).
    pub fn parse(s: &str) -> Option<StageKind> {
        Some(match s {
            "forward" => StageKind::Forward,
            "inverse" => StageKind::Inverse,
            "pointwise_mul" => StageKind::Pointwise(PointwiseOp::Multiply),
            "pointwise_scale" => StageKind::Pointwise(PointwiseOp::Scale),
            "pointwise_conj_mul" => StageKind::Pointwise(PointwiseOp::ConjMultiply),
            "reduce_argmax" => StageKind::Reduce(ReduceOp::ArgMax),
            "reduce_energy" => StageKind::Reduce(ReduceOp::Energy),
            _ => return None,
        })
    }

    /// Whether this kind rewrites its operand's buffer in place — such a
    /// stage must be its operand's sole consumer.
    pub fn in_place(self) -> bool {
        matches!(
            self,
            StageKind::Forward | StageKind::Inverse | StageKind::Pointwise(PointwiseOp::Scale)
        )
    }
}

/// A stage operand: one of the pipeline's input volumes, or the value an
/// earlier stage produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operand {
    /// The `i`-th input volume.
    Input(u8),
    /// The value produced by stage `i` (must be an earlier stage).
    Stage(u8),
}

impl Operand {
    /// Stable wire label (`"in0"`, `"s3"`).
    pub fn label(self) -> String {
        match self {
            Operand::Input(i) => format!("in{i}"),
            Operand::Stage(i) => format!("s{i}"),
        }
    }

    /// Parses a wire label back to the operand.
    pub fn parse(s: &str) -> Option<Operand> {
        if let Some(rest) = s.strip_prefix("in") {
            rest.parse::<u8>().ok().map(Operand::Input)
        } else if let Some(rest) = s.strip_prefix('s') {
            rest.parse::<u8>().ok().map(Operand::Stage)
        } else {
            None
        }
    }
}

/// One node of the DAG.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PipelineStage {
    /// What to compute.
    pub kind: StageKind,
    /// Primary operand.
    pub src: Operand,
    /// Second operand (pointwise multiply flavours only).
    pub src2: Option<Operand>,
    /// Real scale folded into pointwise stages (e.g. the `1/N` inverse
    /// normalisation); ignored by FFT and reduce stages.
    pub scale: f32,
    /// Happens-after mask over *earlier* stages (bit `i` = stage `i`).
    /// Operand edges are implied and OR-ed in by the executor; this mask
    /// adds explicit ordering beyond data flow.
    pub after_mask: u32,
}

impl PipelineStage {
    /// A stage with no extra ordering constraints beyond its operands.
    pub fn new(kind: StageKind, src: Operand) -> Self {
        PipelineStage {
            kind,
            src,
            src2: None,
            scale: 1.0,
            after_mask: 0,
        }
    }

    /// Builder: second operand.
    pub fn src2(mut self, o: Operand) -> Self {
        self.src2 = Some(o);
        self
    }

    /// Builder: pointwise scale factor.
    pub fn scale(mut self, s: f32) -> Self {
        self.scale = s;
        self
    }

    /// Builder: explicit happens-after mask.
    pub fn after(mut self, mask: u32) -> Self {
        self.after_mask = mask;
        self
    }

    /// The dependency mask the executor honours: the explicit
    /// `after_mask` OR-ed with the implicit operand edges.
    pub fn effective_after(&self) -> u32 {
        let mut m = self.after_mask;
        for op in [Some(self.src), self.src2].into_iter().flatten() {
            if let Operand::Stage(i) = op {
                m |= 1 << i;
            }
        }
        m
    }
}

/// A full pipeline submission: the DAG plus its input volumes and the
/// usual admission metadata. The service treats the whole thing as one
/// schedulable unit (one queue entry, one QoS charge, one completion).
#[derive(Clone, Debug)]
pub struct PipelineRequest {
    /// Volume extents (every stage operates on this one grid).
    pub dims: (usize, usize, usize),
    /// Input volumes, natural order, each `nx*ny*nz` elements.
    pub inputs: Vec<Vec<Complex32>>,
    /// The stages, in topological (submission) order.
    pub stages: Vec<PipelineStage>,
    /// Scheduling priority.
    pub priority: Priority,
    /// Latency budget in simulated seconds from arrival; admission costs
    /// the **whole DAG** against it.
    pub deadline_s: Option<f64>,
    /// The tenant billed for the whole pipeline.
    pub tenant: TenantId,
}

impl PipelineRequest {
    /// Volume in complex elements.
    pub fn elems(&self) -> usize {
        self.dims.0 * self.dims.1 * self.dims.2
    }

    /// Total work in stage-elements — the QoS/WFQ cost of the DAG.
    pub fn cost_elems(&self) -> usize {
        self.elems() * self.stages.len()
    }

    /// Human-readable label (`"pipe16x16x16s4"`).
    pub fn label(&self) -> String {
        let (nx, ny, nz) = self.dims;
        format!("pipe{nx}x{ny}x{nz}s{}", self.stages.len())
    }

    /// Structural validation; `Err` carries the stable reason detail.
    pub fn validate(&self) -> Result<(), String> {
        if self.inputs.len() > MAX_INPUTS {
            return Err(format!(
                "{} inputs exceeds cap {MAX_INPUTS}",
                self.inputs.len()
            ));
        }
        let elems = self.elems();
        for (i, v) in self.inputs.iter().enumerate() {
            if v.len() != elems {
                return Err(format!(
                    "input {i} has {} elems, volume is {elems}",
                    v.len()
                ));
            }
        }
        validate_dag(self.dims, self.inputs.len(), &self.stages)
    }
}

/// A [`PipelineRequest`] with the inputs still folded into their seeds —
/// the wire-transportable, replayable form (the pipeline analogue of
/// [`crate::request::SeededSpec`]).
#[derive(Clone, Debug, PartialEq)]
pub struct SeededPipeline {
    /// Volume extents.
    pub dims: (usize, usize, usize),
    /// One seed per input volume ([`crate::request::RequestSpec::seeded`]'s
    /// generator reproduces the samples).
    pub input_seeds: Vec<u64>,
    /// The stages, in topological order.
    pub stages: Vec<PipelineStage>,
    /// Scheduling priority.
    pub priority: Priority,
    /// Latency budget, simulated seconds from arrival.
    pub deadline_s: Option<f64>,
    /// The tenant billed.
    pub tenant: TenantId,
}

impl SeededPipeline {
    /// Human-readable label (`"pipe16x16x16s4"`) — matches
    /// [`PipelineRequest::label`] so telemetry reads the same either way.
    pub fn label(&self) -> String {
        let (nx, ny, nz) = self.dims;
        format!("pipe{nx}x{ny}x{nz}s{}", self.stages.len())
    }

    /// Structural validation of the template **before** any payload exists;
    /// `Err` carries the stable reason detail. Callers must validate before
    /// [`SeededPipeline::materialize`]: a hostile sub-KiB template can name
    /// dims/seed counts whose expansion would allocate gigabytes, and the
    /// envelope check here costs nothing.
    pub fn validate(&self) -> Result<(), String> {
        validate_dag(self.dims, self.input_seeds.len(), &self.stages)
    }

    /// Expands the template into a full [`PipelineRequest`] with payloads.
    pub fn materialize(&self) -> PipelineRequest {
        let elems = self.dims.0 * self.dims.1 * self.dims.2;
        let inputs = self
            .input_seeds
            .iter()
            .map(|&seed| {
                let mut rng = SplitMix64::new(seed);
                (0..elems)
                    .map(|_| Complex32::new(rng.uniform_f32(-1.0, 1.0), rng.uniform_f32(-1.0, 1.0)))
                    .collect()
            })
            .collect();
        PipelineRequest {
            dims: self.dims,
            inputs,
            stages: self.stages.clone(),
            priority: self.priority,
            deadline_s: self.deadline_s,
            tenant: self.tenant,
        }
    }
}

/// Validates the DAG structure shared by [`PipelineRequest`] and
/// [`SeededPipeline`]. The rules exist so the executor can run every stage
/// in place on residency slots with no hidden copies:
///
/// 1. 1..=[`MAX_STAGES`] stages; 1..=[`MAX_INPUTS`] inputs; power-of-two
///    dims in `16..=512` (the five-step plan's envelope);
/// 2. operands reference existing inputs / *earlier* stages only, and the
///    `after_mask` names earlier stages only (the DAG arrives
///    topologically sorted);
/// 3. multiply flavours take exactly two operands, everything else one;
/// 4. in-place kinds (FFTs, scale) must be their operand's **sole**
///    consumer — they rewrite the slot;
/// 5. a reduce value never feeds a later stage, and every input and every
///    stage except the last is consumed by someone (no dead work);
/// 6. packed layouts must line up: every value is either *natural*-packed
///    (inputs, inverse outputs) or *spectrum*-packed (forward outputs) on
///    the card, a forward transform takes a natural operand, an inverse a
///    spectrum one, and a two-operand pointwise stage may not mix the two
///    — elementwise math across different packings is silently
///    meaningless, so it rejects here instead.
pub fn validate_dag(
    dims: (usize, usize, usize),
    n_inputs: usize,
    stages: &[PipelineStage],
) -> Result<(), String> {
    if stages.is_empty() || stages.len() > MAX_STAGES {
        return Err(format!("{} stages outside 1..={MAX_STAGES}", stages.len()));
    }
    if n_inputs == 0 || n_inputs > MAX_INPUTS {
        return Err(format!("{n_inputs} inputs outside 1..={MAX_INPUTS}"));
    }
    for (name, n) in [("nx", dims.0), ("ny", dims.1), ("nz", dims.2)] {
        if !n.is_power_of_two() || !(16..=512).contains(&n) {
            return Err(format!("{name}={n} not a power of two in 16..=512"));
        }
    }
    let check_operand = |idx: usize, op: Operand| -> Result<(), String> {
        match op {
            Operand::Input(i) => {
                if (i as usize) >= n_inputs {
                    return Err(format!("stage {idx} reads missing input {i}"));
                }
            }
            Operand::Stage(s) => {
                if (s as usize) >= idx {
                    return Err(format!("stage {idx} reads non-earlier stage {s}"));
                }
                if matches!(stages[s as usize].kind, StageKind::Reduce(_)) {
                    return Err(format!("stage {idx} reads reduce stage {s}"));
                }
            }
        }
        Ok(())
    };
    let mut consumers_in = vec![0u32; n_inputs];
    let mut consumers_st = vec![0u32; stages.len()];
    for (idx, st) in stages.iter().enumerate() {
        check_operand(idx, st.src)?;
        let two_operand = matches!(
            st.kind,
            StageKind::Pointwise(PointwiseOp::Multiply)
                | StageKind::Pointwise(PointwiseOp::ConjMultiply)
        );
        match (two_operand, st.src2) {
            (true, Some(op)) => check_operand(idx, op)?,
            (true, None) => {
                return Err(format!("stage {idx} ({}) needs src2", st.kind.label()));
            }
            (false, Some(_)) => {
                return Err(format!(
                    "stage {idx} ({}) takes one operand",
                    st.kind.label()
                ));
            }
            (false, None) => {}
        }
        if st.after_mask >> idx != 0 {
            return Err(format!("stage {idx} after_mask names non-earlier stages"));
        }
        for op in [Some(st.src), st.src2].into_iter().flatten() {
            match op {
                Operand::Input(i) => consumers_in[i as usize] += 1,
                Operand::Stage(s) => consumers_st[s as usize] += 1,
            }
        }
    }
    for (idx, st) in stages.iter().enumerate() {
        if st.kind.in_place() {
            let n = match st.src {
                Operand::Input(i) => consumers_in[i as usize],
                Operand::Stage(s) => consumers_st[s as usize],
            };
            if n != 1 {
                return Err(format!(
                    "in-place stage {idx} ({}) shares its operand with {} other reader(s)",
                    st.kind.label(),
                    n - 1
                ));
            }
        }
    }
    for (i, &n) in consumers_in.iter().enumerate() {
        if n == 0 {
            return Err(format!("input {i} is never read"));
        }
    }
    for (i, &n) in consumers_st.iter().enumerate().take(stages.len() - 1) {
        if n == 0 {
            return Err(format!("stage {i} value is never read"));
        }
    }
    // Layout audit (rule 6). `true` = the forward plan's spectrum/output
    // packing, `false` = the natural/input packing — the same flag the
    // executor tracks per residency slot.
    let mut spectrum = vec![false; stages.len()];
    for (idx, st) in stages.iter().enumerate() {
        let layout_of = |op: Operand| match op {
            Operand::Input(_) => false,
            Operand::Stage(s) => spectrum[s as usize],
        };
        let src_l = layout_of(st.src);
        spectrum[idx] = match st.kind {
            StageKind::Forward => {
                if src_l {
                    return Err(format!(
                        "stage {idx} forward-transforms a spectrum-layout value"
                    ));
                }
                true
            }
            StageKind::Inverse => {
                if !src_l {
                    return Err(format!(
                        "stage {idx} inverse-transforms a natural-layout value"
                    ));
                }
                false
            }
            StageKind::Pointwise(PointwiseOp::Multiply | PointwiseOp::ConjMultiply) => {
                let s2_l = layout_of(st.src2.expect("checked: multiply has src2"));
                if src_l != s2_l {
                    return Err(format!(
                        "stage {idx} ({}) mixes operand layouts (natural vs spectrum)",
                        st.kind.label()
                    ));
                }
                src_l
            }
            StageKind::Pointwise(PointwiseOp::Scale) | StageKind::Reduce(_) => src_l,
        };
    }
    Ok(())
}

/// Per-value consumer counts `(inputs, stages)` over a validated DAG —
/// what the executor refcounts residency slots with. The final stage gets
/// one extra implicit consumer: the result download.
pub fn consumer_counts(n_inputs: usize, stages: &[PipelineStage]) -> (Vec<u32>, Vec<u32>) {
    let mut inputs = vec![0u32; n_inputs];
    let mut values = vec![0u32; stages.len()];
    for st in stages {
        for op in [Some(st.src), st.src2].into_iter().flatten() {
            match op {
                Operand::Input(i) => inputs[i as usize] += 1,
                Operand::Stage(s) => values[s as usize] += 1,
            }
        }
    }
    if let Some(last) = values.last_mut() {
        *last += 1;
    }
    (inputs, values)
}

/// The canonical 4-stage convolution DAG over two inputs:
/// `IFFT(FFT(in0) · conj(FFT(in1)) / N)` — [`crate::request`]-level twin of
/// `apps::GpuCorrelator`. `scale` is the `1/N` normalisation.
pub fn convolution_stages(elems: usize) -> Vec<PipelineStage> {
    vec![
        PipelineStage::new(StageKind::Forward, Operand::Input(0)),
        PipelineStage::new(StageKind::Forward, Operand::Input(1)),
        PipelineStage::new(
            StageKind::Pointwise(PointwiseOp::ConjMultiply),
            Operand::Stage(0),
        )
        .src2(Operand::Stage(1))
        .scale(1.0 / elems as f32),
        PipelineStage::new(StageKind::Inverse, Operand::Stage(2)),
    ]
}

/// The docking-sweep DAG: a convolution whose surface reduces on the card
/// to an 8-byte argmax — only the best pose crosses the bus.
pub fn docking_stages(elems: usize) -> Vec<PipelineStage> {
    let mut v = convolution_stages(elems);
    v.push(PipelineStage::new(
        StageKind::Reduce(ReduceOp::ArgMax),
        Operand::Stage(3),
    ));
    v
}

/// EWMA service-time estimator keyed by stage kind — the pipeline twin of
/// the batcher's per-shape estimator, with the same constants. Admission
/// costs the **entire DAG** with it (the first-stage-only estimate is the
/// bug ISSUE 10's small fix removes).
#[derive(Clone, Debug)]
pub struct PipeEstimator {
    per_elem_s: [f64; StageKind::COUNT],
    overhead_s: f64,
    alpha: f64,
}

impl Default for PipeEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl PipeEstimator {
    /// Seeds every kind with the batcher's cold-start throughput guess.
    pub fn new() -> Self {
        PipeEstimator {
            per_elem_s: [8.0e-9; StageKind::COUNT],
            overhead_s: 20.0e-6,
            alpha: 0.3,
        }
    }

    /// Expected service time of one stage over `elems` elements.
    pub fn stage_s(&self, kind: StageKind, elems: usize) -> f64 {
        self.overhead_s + self.per_elem_s[kind.index()] * elems as f64
    }

    /// Expected service time of the whole DAG — the sum over its stages.
    pub fn estimate_s(&self, stages: &[PipelineStage], elems: usize) -> f64 {
        stages.iter().map(|st| self.stage_s(st.kind, elems)).sum()
    }

    /// Folds one observed stage service time into the per-kind EWMA.
    pub fn observe(&mut self, kind: StageKind, service_s: f64, elems: usize) {
        if elems == 0 {
            return;
        }
        let sample = (service_s - self.overhead_s).max(0.0) / elems as f64;
        let cell = &mut self.per_elem_s[kind.index()];
        *cell = self.alpha * sample + (1.0 - self.alpha) * *cell;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_pipe() -> SeededPipeline {
        SeededPipeline {
            dims: (16, 16, 16),
            input_seeds: vec![1, 2],
            stages: convolution_stages(16 * 16 * 16),
            priority: Priority::Normal,
            deadline_s: None,
            tenant: TenantId::default(),
        }
    }

    #[test]
    fn labels_round_trip() {
        for kind in [
            StageKind::Forward,
            StageKind::Inverse,
            StageKind::Pointwise(PointwiseOp::Multiply),
            StageKind::Pointwise(PointwiseOp::Scale),
            StageKind::Pointwise(PointwiseOp::ConjMultiply),
            StageKind::Reduce(ReduceOp::ArgMax),
            StageKind::Reduce(ReduceOp::Energy),
        ] {
            assert_eq!(StageKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(StageKind::parse("reduce_min"), None);
        for op in [Operand::Input(3), Operand::Stage(17)] {
            assert_eq!(Operand::parse(&op.label()), Some(op));
        }
        assert_eq!(Operand::parse("x9"), None);
    }

    #[test]
    fn canonical_dags_validate() {
        let p = conv_pipe().materialize();
        assert_eq!(p.inputs.len(), 2);
        p.validate().expect("convolution DAG valid");
        assert!(validate_dag((16, 16, 16), 2, &docking_stages(4096)).is_ok());
        assert_eq!(p.label(), "pipe16x16x16s4");
        assert_eq!(p.cost_elems(), 4 * 4096);
    }

    #[test]
    fn materialize_is_deterministic() {
        let a = conv_pipe().materialize();
        let b = conv_pipe().materialize();
        assert_eq!(a.inputs, b.inputs);
        // Input seeds match the single-request seeded generator.
        let single = crate::request::RequestSpec::seeded(
            crate::request::Shape::Volume {
                nx: 16,
                ny: 16,
                nz: 16,
            },
            fft_math::twiddle::Direction::Forward,
            1,
        );
        assert_eq!(a.inputs[0], single.payload);
    }

    #[test]
    fn validation_rejects_bad_dags() {
        let dims = (16, 16, 16);
        // Forward reading a missing input.
        let st = vec![PipelineStage::new(StageKind::Forward, Operand::Input(2))];
        assert!(validate_dag(dims, 2, &st)
            .unwrap_err()
            .contains("missing input"));
        // Multiply without src2.
        let st = vec![
            PipelineStage::new(StageKind::Forward, Operand::Input(0)),
            PipelineStage::new(
                StageKind::Pointwise(PointwiseOp::Multiply),
                Operand::Stage(0),
            ),
        ];
        assert!(validate_dag(dims, 1, &st)
            .unwrap_err()
            .contains("needs src2"));
        // Forward-looking operand.
        let st = vec![PipelineStage::new(StageKind::Forward, Operand::Stage(0))];
        assert!(validate_dag(dims, 1, &st)
            .unwrap_err()
            .contains("non-earlier"));
        // Reduce feeding a later stage.
        let st = vec![
            PipelineStage::new(StageKind::Reduce(ReduceOp::Energy), Operand::Input(0)),
            PipelineStage::new(StageKind::Forward, Operand::Stage(0)),
        ];
        assert!(validate_dag(dims, 1, &st).unwrap_err().contains("reduce"));
        // In-place stage sharing its operand.
        let st = vec![
            PipelineStage::new(StageKind::Forward, Operand::Input(0)),
            PipelineStage::new(
                StageKind::Pointwise(PointwiseOp::Multiply),
                Operand::Input(0),
            )
            .src2(Operand::Stage(0)),
        ];
        assert!(validate_dag(dims, 1, &st).unwrap_err().contains("in-place"));
        // Dead input.
        let st = vec![PipelineStage::new(StageKind::Forward, Operand::Input(0))];
        assert!(validate_dag(dims, 2, &st)
            .unwrap_err()
            .contains("never read"));
        // Non-pow2 dims.
        let st = vec![PipelineStage::new(StageKind::Forward, Operand::Input(0))];
        assert!(validate_dag((17, 16, 16), 1, &st)
            .unwrap_err()
            .contains("power of two"));
        // Empty DAG.
        assert!(validate_dag(dims, 1, &[]).is_err());
    }

    #[test]
    fn validation_rejects_layout_mismatches() {
        let dims = (16, 16, 16);
        // Multiply of a natural-layout input against a forward (spectrum)
        // output: elementwise math across packings is meaningless.
        let st = vec![
            PipelineStage::new(StageKind::Forward, Operand::Input(0)),
            PipelineStage::new(
                StageKind::Pointwise(PointwiseOp::Multiply),
                Operand::Input(1),
            )
            .src2(Operand::Stage(0)),
        ];
        assert!(validate_dag(dims, 2, &st)
            .unwrap_err()
            .contains("mixes operand layouts"));
        // Inverse of a natural-layout input (the chained inverse plan
        // consumes the forward plan's output packing).
        let st = vec![PipelineStage::new(StageKind::Inverse, Operand::Input(0))];
        assert!(validate_dag(dims, 1, &st)
            .unwrap_err()
            .contains("inverse-transforms a natural-layout"));
        // Forward of a forward output.
        let st = vec![
            PipelineStage::new(StageKind::Forward, Operand::Input(0)),
            PipelineStage::new(StageKind::Forward, Operand::Stage(0)),
        ];
        assert!(validate_dag(dims, 1, &st)
            .unwrap_err()
            .contains("forward-transforms a spectrum-layout"));
        // Scale preserves its operand's layout: scaling a spectrum then
        // multiplying against another spectrum stays valid.
        let st = vec![
            PipelineStage::new(StageKind::Forward, Operand::Input(0)),
            PipelineStage::new(StageKind::Forward, Operand::Input(1)),
            PipelineStage::new(StageKind::Pointwise(PointwiseOp::Scale), Operand::Stage(0))
                .scale(0.5),
            PipelineStage::new(
                StageKind::Pointwise(PointwiseOp::Multiply),
                Operand::Stage(2),
            )
            .src2(Operand::Stage(1)),
            PipelineStage::new(StageKind::Inverse, Operand::Stage(3)),
        ];
        assert!(validate_dag(dims, 2, &st).is_ok());
    }

    #[test]
    fn seeded_templates_validate_before_any_payload_exists() {
        let good = conv_pipe();
        assert!(good.validate().is_ok());
        assert_eq!(good.label(), "pipe16x16x16s4");
        // A hostile template naming multi-gigabyte dims must bounce from
        // the seeds-only form — validation never materializes.
        let hostile = SeededPipeline {
            dims: (1 << 24, 1 << 24, 1 << 24),
            ..conv_pipe()
        };
        assert!(hostile.validate().unwrap_err().contains("power of two"));
        // Seed counts beyond MAX_INPUTS bounce the same way.
        let seedy = SeededPipeline {
            input_seeds: (0..=MAX_INPUTS as u64).collect(),
            ..conv_pipe()
        };
        assert!(seedy
            .validate()
            .unwrap_err()
            .contains(&format!("1..={MAX_INPUTS}")));
    }

    #[test]
    fn effective_after_folds_operand_edges() {
        let st = PipelineStage::new(
            StageKind::Pointwise(PointwiseOp::ConjMultiply),
            Operand::Stage(0),
        )
        .src2(Operand::Stage(1))
        .after(0b100);
        assert_eq!(st.effective_after(), 0b111);
    }

    #[test]
    fn consumer_counts_include_result_download() {
        let (ins, vals) = consumer_counts(2, &convolution_stages(4096));
        assert_eq!(ins, vec![1, 1]);
        // Stage 2 (the product) feeds the inverse; stage 3 is downloaded.
        assert_eq!(vals, vec![1, 1, 1, 1]);
    }

    #[test]
    fn estimator_costs_the_full_dag() {
        let est = PipeEstimator::new();
        let stages = convolution_stages(4096);
        let whole = est.estimate_s(&stages, 4096);
        let first = est.stage_s(stages[0].kind, 4096);
        assert!(whole > 3.9 * first, "DAG cost {whole} vs one stage {first}");
    }

    #[test]
    fn estimator_learns_per_kind() {
        let mut est = PipeEstimator::new();
        let before = est.stage_s(StageKind::Forward, 4096);
        for _ in 0..20 {
            est.observe(StageKind::Forward, 1.0e-3, 4096);
        }
        let after = est.stage_s(StageKind::Forward, 4096);
        assert!(after > before);
        // Other kinds untouched.
        assert_eq!(
            est.stage_s(StageKind::Inverse, 4096),
            PipeEstimator::new().stage_s(StageKind::Inverse, 4096)
        );
    }
}
