//! The bounded submission queue.
//!
//! Admission control lives in the service (it needs the backlog estimator);
//! the queue itself enforces the capacity bound, keeps arrivals in
//! (priority, virtual finish time, arrival, id) dispatch order, and tracks
//! the depth statistics the [`crate::report::ServeReport`] publishes.
//!
//! The virtual finish time is the weighted-fair-queueing rank the service
//! assigns at admission (see [`crate::qos`]): within a priority class,
//! backlogged tenants drain in proportion to their shares. With one tenant
//! the vft is strictly increasing in admission order, so the order
//! degenerates to the historical (priority, arrival, id).

use crate::request::{RequestId, RequestSpec};
use crate::telemetry::{LifecycleLog, Stage};
use std::cmp::Ordering;

/// One admitted request waiting for dispatch.
#[derive(Clone, Debug)]
pub struct Pending {
    /// The id assigned at submission.
    pub id: RequestId,
    /// The request.
    pub spec: RequestSpec,
    /// Simulated arrival time, seconds.
    pub arrival_s: f64,
    /// Weighted-fair-queueing virtual finish time, assigned once at
    /// admission and kept across preemption requeues.
    pub vft: f64,
}

/// Dispatch order: priority class first, then WFQ virtual finish time,
/// then arrival, then id. Floats compare via [`f64::total_cmp`] — bit
/// patterns like `-0.0` and negative arrivals (possible once preemption
/// requeues relative to virtual time) order totally instead of by their
/// sign-magnitude bit representation.
fn rank(a: &Pending, b: &Pending) -> Ordering {
    a.spec
        .priority
        .cmp(&b.spec.priority)
        .then_with(|| a.vft.total_cmp(&b.vft))
        .then_with(|| a.arrival_s.total_cmp(&b.arrival_s))
        .then_with(|| a.id.cmp(&b.id))
}

/// A bounded FIFO-per-priority queue of admitted requests.
#[derive(Debug)]
pub struct SubmitQueue {
    capacity: usize,
    entries: Vec<Pending>,
    max_depth: usize,
    depth_samples: u64,
    depth_sum: u64,
}

impl SubmitQueue {
    /// An empty queue admitting at most `capacity` requests at a time.
    pub fn new(capacity: usize) -> Self {
        SubmitQueue {
            capacity,
            entries: Vec::new(),
            max_depth: 0,
            depth_samples: 0,
            depth_sum: 0,
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests currently waiting.
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// True when another request fits.
    pub fn has_room(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Deepest the queue has been.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Mean depth over the dispatch-time samples (0 when never sampled).
    pub fn mean_depth(&self) -> f64 {
        if self.depth_samples == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.depth_samples as f64
        }
    }

    /// Records the current depth into the dispatch-time statistics.
    pub fn sample_depth(&mut self) {
        self.depth_samples += 1;
        self.depth_sum += self.entries.len() as u64;
    }

    /// Enqueues in dispatch order. The caller (admission) must have checked
    /// [`SubmitQueue::has_room`]; pushing past capacity is a logic error.
    ///
    /// # Panics
    /// When the queue is already at capacity.
    pub fn push(&mut self, p: Pending) {
        assert!(self.has_room(), "push past capacity — admission bug");
        self.insert_ranked(p);
    }

    /// Re-enqueues a preemption victim. Capacity-exempt: the victim held a
    /// queue slot once and its lane was taken back by the service, so
    /// bouncing it on a full queue would silently drop admitted work. Keeps
    /// the original vft/arrival, so the victim resumes at its old rank.
    pub fn requeue(&mut self, p: Pending) {
        self.insert_ranked(p);
    }

    // Insertion sort keeps (priority, vft, arrival, id) order; vfts are
    // assigned in admission order so this is an append except when
    // priorities differ or a preemption victim comes back.
    fn insert_ranked(&mut self, p: Pending) {
        let at = self
            .entries
            .partition_point(|e| rank(e, &p) != Ordering::Greater);
        self.entries.insert(at, p);
        self.max_depth = self.max_depth.max(self.entries.len());
    }

    /// [`SubmitQueue::push`] plus an `Admitted` stamp in the lifecycle log
    /// at the request's arrival time. Re-queues (a volume bounced off a
    /// busy fleet) re-stamp the same instant, which is a no-op.
    ///
    /// # Panics
    /// When the queue is already at capacity.
    pub fn push_traced(&mut self, p: Pending, log: &mut LifecycleLog) {
        log.record(p.id, Stage::Admitted, p.arrival_s);
        self.push(p);
    }

    /// The next request in dispatch order, without removing it.
    pub fn head(&self) -> Option<&Pending> {
        self.entries.first()
    }

    /// All waiting requests in dispatch order.
    pub fn iter(&self) -> impl Iterator<Item = &Pending> {
        self.entries.iter()
    }

    /// Removes and returns the requests selected by `take` (in dispatch
    /// order), keeping the rest in order.
    pub fn drain_selected(&mut self, take: &[RequestId]) -> Vec<Pending> {
        let mut out = Vec::with_capacity(take.len());
        let mut rest = Vec::with_capacity(self.entries.len().saturating_sub(take.len()));
        for e in self.entries.drain(..) {
            if take.contains(&e.id) {
                out.push(e);
            } else {
                rest.push(e);
            }
        }
        self.entries = rest;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Priority, Shape};
    use fft_math::twiddle::Direction;

    fn pending(id: u64, arrival: f64, prio: Priority) -> Pending {
        Pending {
            id: RequestId(id),
            spec: RequestSpec::seeded(Shape::Rows1d { n: 64, rows: 1 }, Direction::Forward, id)
                .priority(prio),
            arrival_s: arrival,
            vft: arrival,
        }
    }

    #[test]
    fn orders_by_priority_then_arrival() {
        let mut q = SubmitQueue::new(8);
        q.push(pending(1, 0.0, Priority::Normal));
        q.push(pending(2, 1.0, Priority::Low));
        q.push(pending(3, 2.0, Priority::High));
        q.push(pending(4, 3.0, Priority::Normal));
        let order: Vec<u64> = q.iter().map(|p| p.id.0).collect();
        assert_eq!(order, vec![3, 1, 4, 2]);
        assert_eq!(q.head().unwrap().id.0, 3);
    }

    #[test]
    fn capacity_and_depth_stats() {
        let mut q = SubmitQueue::new(2);
        assert!(q.has_room());
        q.push(pending(1, 0.0, Priority::Normal));
        q.push(pending(2, 0.5, Priority::Normal));
        assert!(!q.has_room());
        assert_eq!(q.max_depth(), 2);
        q.sample_depth();
        let taken = q.drain_selected(&[RequestId(1)]);
        assert_eq!(taken.len(), 1);
        assert_eq!(q.depth(), 1);
        q.sample_depth();
        assert_eq!(q.mean_depth(), 1.5);
    }

    #[test]
    fn push_traced_stamps_admission() {
        let mut q = SubmitQueue::new(4);
        let mut log = LifecycleLog::default();
        log.start(RequestId(9), "1d256x4".to_string(), 2.5);
        q.push_traced(pending(9, 2.5, Priority::Normal), &mut log);
        let wf = log.get(RequestId(9)).unwrap();
        assert_eq!(wf.stage_s(Stage::Admitted), Some(2.5));
        assert_eq!(q.depth(), 1);
    }

    #[test]
    #[should_panic(expected = "admission bug")]
    fn push_past_capacity_panics() {
        let mut q = SubmitQueue::new(1);
        q.push(pending(1, 0.0, Priority::Normal));
        q.push(pending(2, 0.0, Priority::Normal));
    }

    #[test]
    fn requeue_is_capacity_exempt_and_rank_preserving() {
        let mut q = SubmitQueue::new(2);
        q.push(pending(5, 1.0, Priority::Normal));
        q.push(pending(6, 2.0, Priority::Normal));
        assert!(!q.has_room());
        // A preemption victim admitted before both comes back at the head.
        q.requeue(pending(4, 0.5, Priority::Normal));
        assert_eq!(q.depth(), 3);
        let order: Vec<u64> = q.iter().map(|p| p.id.0).collect();
        assert_eq!(order, vec![4, 5, 6]);
    }

    #[test]
    fn total_cmp_orders_negative_and_negative_zero_arrivals() {
        // The old rank used arrival_s.to_bits(): sign-magnitude bits order
        // -0.0 and every negative float AFTER all positives. total_cmp
        // orders them numerically.
        let mut q = SubmitQueue::new(8);
        q.push(pending(1, 0.0, Priority::Normal));
        q.push(pending(2, -1.5, Priority::Normal));
        q.push(pending(3, -0.0, Priority::Normal));
        q.push(pending(4, 2.0, Priority::Normal));
        let order: Vec<u64> = q.iter().map(|p| p.id.0).collect();
        // -1.5 < -0.0 < 0.0 < 2.0 (and vft mirrors arrival here).
        assert_eq!(order, vec![2, 3, 1, 4]);
    }

    #[test]
    fn rank_matches_a_reference_sort_over_seeded_arrivals() {
        // Property test: pushes in pseudo-random order always land in the
        // exact order a reference comparator sort produces, including
        // negative, negative-zero and duplicate arrival/vft values.
        use fft_math::rng::SplitMix64;
        let mut rng = SplitMix64::new(0x00c0_ffee_0000_0001);
        for round in 0..50 {
            let n = 2 + (rng.next_u64() % 14) as usize;
            let mut entries: Vec<Pending> = (0..n as u64)
                .map(|id| {
                    let prio = match rng.next_u64() % 3 {
                        0 => Priority::High,
                        1 => Priority::Normal,
                        _ => Priority::Low,
                    };
                    // Arrivals drawn from a small grid so ties are common;
                    // shifted negative so sign handling is exercised.
                    let grid = (rng.next_u64() % 7) as f64;
                    let arrival = if grid == 3.0 { -0.0 } else { grid - 3.0 };
                    let mut p = pending(id, arrival, prio);
                    p.vft = ((rng.next_u64() % 5) as f64) - 2.0;
                    p
                })
                .collect();
            let mut expect = entries.clone();
            expect.sort_by(rank);
            let expect_ids: Vec<u64> = expect.iter().map(|p| p.id.0).collect();
            // Push in a seeded shuffle of admission order.
            for i in (1..entries.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                entries.swap(i, j);
            }
            let mut q = SubmitQueue::new(n);
            for p in entries {
                q.push(p);
            }
            let got: Vec<u64> = q.iter().map(|p| p.id.0).collect();
            assert_eq!(got, expect_ids, "round {round} diverged");
        }
    }
}
