//! The service's summary: latency percentiles, goodput, queue and batching
//! statistics, per-card utilization.
//!
//! Everything here is computed from completed/rejected request records in a
//! deterministic order and rendered with the same hand-rolled JSON style as
//! `bifft-bench` (shortest-roundtrip `f64` display, `BTreeMap`-ordered
//! keys), so equal runs produce byte-identical JSON.

use crate::request::Completion;
use crate::telemetry::{export::render_slo_json, BudgetLine, SloReport};
use fft_math::stats;
use std::collections::BTreeMap;

/// Per-tenant accounting the report's tenancy section publishes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TenantReport {
    /// The tenant id.
    pub tenant: u64,
    /// Configured weighted-fair-queueing share.
    pub share: f64,
    /// Submissions attributed to the tenant (admitted + rejected).
    pub submitted: u64,
    /// Submissions that entered the queue.
    pub admitted: u64,
    /// Submissions bounced by the tenant's quota.
    pub rejected_quota: u64,
    /// Requests completed.
    pub completed: u64,
    /// In-deadline payload bytes both directions (goodput numerator).
    pub good_bytes: u64,
    /// Nearest-rank p95 completion latency, seconds.
    pub p95_s: f64,
    /// Whether the tenant's p95 met the service SLO latency target
    /// (vacuously true when no SLO is configured or nothing completed).
    pub p95_ok: bool,
    /// Device seconds wasted by preemptions charged to this tenant.
    pub preempted_s: f64,
}

/// Nearest-rank latency percentiles over a completion set, seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Completions observed.
    pub count: usize,
    /// Median (nearest-rank p50).
    pub p50_s: f64,
    /// Nearest-rank p95.
    pub p95_s: f64,
    /// Nearest-rank p99.
    pub p99_s: f64,
    /// Arithmetic mean.
    pub mean_s: f64,
    /// Largest observed latency.
    pub max_s: f64,
}

impl LatencyStats {
    /// Computes the stats from raw latencies (empty input gives zeros).
    /// Percentiles come from the shared [`fft_math::stats`] nearest-rank
    /// helper, so the report and the bench gate agree on what "p95" means.
    pub fn from_latencies(mut lat: Vec<f64>) -> Self {
        if lat.is_empty() {
            return LatencyStats::default();
        }
        stats::sort_samples(&mut lat);
        LatencyStats {
            count: lat.len(),
            p50_s: stats::nearest_rank(&lat, 0.50),
            p95_s: stats::nearest_rank(&lat, 0.95),
            p99_s: stats::nearest_rank(&lat, 0.99),
            mean_s: lat.iter().sum::<f64>() / lat.len() as f64,
            max_s: lat[lat.len() - 1],
        }
    }
}

/// Per-card counters the report publishes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CardReport {
    /// Requests whose launch ran (at least partly) on this card.
    pub requests: u64,
    /// Payload bytes moved through this card's launches.
    pub bytes: u64,
    /// Compute-engine busy seconds over the service makespan, `[0, 1]`.
    pub utilization: f64,
    /// DMA-engine busy seconds (both directions) over the makespan, `[0, 1]`.
    pub copy_utilization: f64,
    /// Plan-cache hits.
    pub plan_hits: u64,
    /// Plan-cache misses.
    pub plan_misses: u64,
}

/// The full end-of-run summary ([`crate::service::FftService::report`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeReport {
    /// Requests submitted (admitted + rejected).
    pub submitted: u64,
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests rejected because the queue was full.
    pub rejected_queue_full: u64,
    /// Requests shed because their deadline was infeasible at admission.
    pub rejected_deadline: u64,
    /// Requests rejected as unsupported (bad shape).
    pub rejected_unsupported: u64,
    /// Requests rejected because their rows payload exceeds a lane's
    /// staging slot.
    pub rejected_oversized: u64,
    /// Requests rejected because a previous attempt proved the fleet cannot
    /// allocate the volume.
    pub rejected_unallocatable: u64,
    /// Requests rejected because their tenant was over quota.
    pub rejected_quota: u64,
    /// Admitted requests that failed at dispatch (volumes even the whole
    /// fleet could not allocate).
    pub failed: u64,
    /// Completions that missed their deadline.
    pub timeouts: u64,
    /// Dispatched batches aborted at a stream-safe point and requeued.
    pub preemptions: u64,
    /// Device seconds those aborted dispatch windows wasted.
    pub preempted_s: f64,
    /// Pipeline requests completed (each DAG counts once).
    pub pipelines: u64,
    /// Stages those pipelines executed on-card.
    pub pipeline_stages: u64,
    /// Residency-ledger hits: pipeline operand reads served from a
    /// device-resident slot (no PCIe trip).
    pub resident_hits: u64,
    /// Residency-ledger misses: operand reads that had to upload.
    pub resident_misses: u64,
    /// Residency-ledger evictions: slots spilled to host under memory
    /// pressure.
    pub resident_evictions: u64,
    /// Compute seconds pipelines spent over fully device-resident
    /// operands (the attribution ledger's `resident` category feed).
    pub resident_s: f64,
    /// Payload bytes that actually crossed PCIe host-to-device, all
    /// request kinds.
    pub h2d_bytes: u64,
    /// Payload bytes that actually crossed PCIe device-to-host.
    pub d2h_bytes: u64,
    /// First arrival to last completion, simulated seconds.
    pub makespan_s: f64,
    /// Latency percentiles over all completions.
    pub latency: LatencyStats,
    /// Payload bytes completed within deadline (in + out), over makespan.
    pub goodput_gbs: f64,
    /// Completed requests per simulated second.
    pub achieved_rps: f64,
    /// Deepest the submission queue got.
    pub queue_max_depth: usize,
    /// Mean queue depth sampled at each dispatch.
    pub queue_mean_depth: f64,
    /// Histogram of launch batch sizes (batch size -> launches).
    pub batch_histogram: BTreeMap<usize, u64>,
    /// Per-card counters, indexed by card.
    pub cards: Vec<CardReport>,
    /// The SLO verdict ([`crate::telemetry::slo`]); vacuously `ok` when no
    /// objectives were evaluated.
    pub slo: SloReport,
    /// The latency budget: per-category attributed time across every
    /// completed request, one line per ledger category
    /// ([`crate::telemetry::attribution`]); empty when nothing completed.
    pub budget: Vec<BudgetLine>,
    /// Per-tenant accounting, tenant-id order. A single-tenant run lists
    /// just the default tenant.
    pub tenants: Vec<TenantReport>,
    /// Jain's fairness index over share-weighted tenant goodput (`1.0`
    /// with at most one active tenant).
    pub fairness_index: f64,
}

impl ServeReport {
    /// Builds the completion-derived parts of the report. `deadline_bytes`
    /// counts a completion's payload both directions (H2D + D2H) when it
    /// met its deadline — the goodput numerator.
    pub fn tally(&mut self, completions: &[Completion], payload_bytes: &[u64]) {
        debug_assert_eq!(completions.len(), payload_bytes.len());
        self.completed = completions.len() as u64;
        let mut good_bytes = 0u64;
        let mut latencies = Vec::with_capacity(completions.len());
        let mut first = f64::INFINITY;
        let mut last = 0.0f64;
        for (c, &bytes) in completions.iter().zip(payload_bytes) {
            latencies.push(c.latency_s());
            first = first.min(c.arrival_s);
            last = last.max(c.completed_s);
            if c.timed_out {
                self.timeouts += 1;
            } else {
                good_bytes += 2 * bytes;
            }
        }
        self.latency = LatencyStats::from_latencies(latencies);
        // First arrival to last completion; an idle prefix before the first
        // request (open-loop warmup, resumed clocks) must not deflate the
        // derived rates.
        self.makespan_s = if completions.is_empty() {
            0.0
        } else {
            (last - first).max(0.0)
        };
        if self.makespan_s > 0.0 {
            self.goodput_gbs = good_bytes as f64 / self.makespan_s / 1e9;
            self.achieved_rps = self.completed as f64 / self.makespan_s;
        }
    }

    /// Mean launch batch size (0 when nothing launched).
    pub fn mean_batch_size(&self) -> f64 {
        let launches: u64 = self.batch_histogram.values().sum();
        if launches == 0 {
            return 0.0;
        }
        let requests: u64 = self
            .batch_histogram
            .iter()
            .map(|(&size, &n)| size as u64 * n)
            .sum();
        requests as f64 / launches as f64
    }

    /// Renders the report as deterministic JSON (2-space indent).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\n");
        s.push_str(&format!("  \"submitted\": {},\n", self.submitted));
        s.push_str(&format!("  \"admitted\": {},\n", self.admitted));
        s.push_str(&format!("  \"completed\": {},\n", self.completed));
        s.push_str(&format!(
            "  \"rejected_queue_full\": {},\n",
            self.rejected_queue_full
        ));
        s.push_str(&format!(
            "  \"rejected_deadline\": {},\n",
            self.rejected_deadline
        ));
        s.push_str(&format!(
            "  \"rejected_unsupported\": {},\n",
            self.rejected_unsupported
        ));
        s.push_str(&format!(
            "  \"rejected_oversized\": {},\n",
            self.rejected_oversized
        ));
        s.push_str(&format!(
            "  \"rejected_unallocatable\": {},\n",
            self.rejected_unallocatable
        ));
        s.push_str(&format!("  \"rejected_quota\": {},\n", self.rejected_quota));
        s.push_str(&format!("  \"failed\": {},\n", self.failed));
        s.push_str(&format!("  \"timeouts\": {},\n", self.timeouts));
        s.push_str(&format!("  \"preemptions\": {},\n", self.preemptions));
        s.push_str(&format!("  \"preempted_s\": {},\n", self.preempted_s));
        s.push_str(&format!("  \"pipelines\": {},\n", self.pipelines));
        s.push_str(&format!(
            "  \"pipeline_stages\": {},\n",
            self.pipeline_stages
        ));
        s.push_str(&format!("  \"resident_hits\": {},\n", self.resident_hits));
        s.push_str(&format!(
            "  \"resident_misses\": {},\n",
            self.resident_misses
        ));
        s.push_str(&format!(
            "  \"resident_evictions\": {},\n",
            self.resident_evictions
        ));
        s.push_str(&format!("  \"resident_s\": {},\n", self.resident_s));
        s.push_str(&format!("  \"h2d_bytes\": {},\n", self.h2d_bytes));
        s.push_str(&format!("  \"d2h_bytes\": {},\n", self.d2h_bytes));
        s.push_str(&format!("  \"makespan_s\": {},\n", self.makespan_s));
        s.push_str(&format!("  \"p50_ms\": {},\n", self.latency.p50_s * 1e3));
        s.push_str(&format!("  \"p95_ms\": {},\n", self.latency.p95_s * 1e3));
        s.push_str(&format!("  \"p99_ms\": {},\n", self.latency.p99_s * 1e3));
        s.push_str(&format!("  \"mean_ms\": {},\n", self.latency.mean_s * 1e3));
        s.push_str(&format!("  \"max_ms\": {},\n", self.latency.max_s * 1e3));
        s.push_str(&format!("  \"goodput_gbs\": {},\n", self.goodput_gbs));
        s.push_str(&format!("  \"achieved_rps\": {},\n", self.achieved_rps));
        s.push_str(&format!(
            "  \"queue_max_depth\": {},\n",
            self.queue_max_depth
        ));
        s.push_str(&format!(
            "  \"queue_mean_depth\": {},\n",
            self.queue_mean_depth
        ));
        s.push_str("  \"batch_histogram\": {");
        let mut first = true;
        for (size, n) in &self.batch_histogram {
            if !first {
                s.push_str(", ");
            }
            first = false;
            s.push_str(&format!("\"{size}\": {n}"));
        }
        s.push_str("},\n");
        s.push_str("  \"cards\": [\n");
        for (i, c) in self.cards.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"card\": {}, \"requests\": {}, \"bytes\": {}, \"utilization\": {}, \"copy_utilization\": {}, \"plan_hits\": {}, \"plan_misses\": {}}}{}\n",
                i,
                c.requests,
                c.bytes,
                c.utilization,
                c.copy_utilization,
                c.plan_hits,
                c.plan_misses,
                if i + 1 < self.cards.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"budget\": [\n");
        for (i, b) in self.budget.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"category\": \"{}\", \"total_s\": {}, \"share\": {}, \"mean_s\": {}, \"p95_s\": {}}}{}\n",
                b.category,
                b.total_s,
                b.share,
                b.mean_s,
                b.p95_s,
                if i + 1 < self.budget.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"fairness_index\": {},\n", self.fairness_index));
        s.push_str("  \"tenants\": [\n");
        for (i, t) in self.tenants.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"tenant\": {}, \"share\": {}, \"submitted\": {}, \"admitted\": {}, \"rejected_quota\": {}, \"completed\": {}, \"good_bytes\": {}, \"p95_ms\": {}, \"p95_ok\": {}, \"preempted_s\": {}}}{}\n",
                t.tenant,
                t.share,
                t.submitted,
                t.admitted,
                t.rejected_quota,
                t.completed,
                t.good_bytes,
                t.p95_s * 1e3,
                t.p95_ok,
                t.preempted_s,
                if i + 1 < self.tenants.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"slo\": ");
        s.push_str(&render_slo_json(&self.slo, "  "));
        s.push_str("\n}\n");
        s
    }

    /// Renders a human-readable multi-line summary.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "requests: {} submitted, {} admitted, {} completed ({} timeouts, {} failed)\n",
            self.submitted, self.admitted, self.completed, self.timeouts, self.failed
        ));
        s.push_str(&format!(
            "rejected: {} queue-full, {} deadline, {} unsupported, {} oversized, {} unallocatable, {} quota\n",
            self.rejected_queue_full,
            self.rejected_deadline,
            self.rejected_unsupported,
            self.rejected_oversized,
            self.rejected_unallocatable,
            self.rejected_quota
        ));
        s.push_str(&format!(
            "latency:  p50 {:.3} ms | p95 {:.3} ms | p99 {:.3} ms | mean {:.3} ms\n",
            self.latency.p50_s * 1e3,
            self.latency.p95_s * 1e3,
            self.latency.p99_s * 1e3,
            self.latency.mean_s * 1e3
        ));
        s.push_str(&format!(
            "goodput:  {:.3} GB/s | {:.1} req/s | makespan {:.3} ms\n",
            self.goodput_gbs,
            self.achieved_rps,
            self.makespan_s * 1e3
        ));
        s.push_str(&format!(
            "queue:    max depth {} | mean depth {:.2} | mean batch {:.2}\n",
            self.queue_max_depth,
            self.queue_mean_depth,
            self.mean_batch_size()
        ));
        for (i, c) in self.cards.iter().enumerate() {
            s.push_str(&format!(
                "card {i}:   {} reqs | {:.1} MiB | util {:.1}% | copy {:.1}% | plans {}/{} hit\n",
                c.requests,
                c.bytes as f64 / (1 << 20) as f64,
                c.utilization * 100.0,
                c.copy_utilization * 100.0,
                c.plan_hits,
                c.plan_hits + c.plan_misses
            ));
        }
        if !self.budget.is_empty() {
            s.push_str("budget:   category      mean_ms    p95_ms   share\n");
            for b in &self.budget {
                s.push_str(&format!(
                    "          {:<10} {:>9.4} {:>9.4} {:>6.1}%\n",
                    b.category,
                    b.mean_s * 1e3,
                    b.p95_s * 1e3,
                    b.share * 100.0
                ));
            }
        }
        if self.preemptions > 0 {
            s.push_str(&format!(
                "preempt:  {} lane preemptions | {:.3} ms wasted\n",
                self.preemptions,
                self.preempted_s * 1e3
            ));
        }
        if self.pipelines > 0 {
            let reads = self.resident_hits + self.resident_misses;
            s.push_str(&format!(
                "pipeline: {} DAGs | {} stages | resident {}/{} reads | {} spills | pcie {:.1}/{:.1} MiB up/down\n",
                self.pipelines,
                self.pipeline_stages,
                self.resident_hits,
                reads,
                self.resident_evictions,
                self.h2d_bytes as f64 / (1 << 20) as f64,
                self.d2h_bytes as f64 / (1 << 20) as f64
            ));
        }
        if self.tenants.len() > 1 {
            s.push_str(&format!(
                "tenants:  {} active | fairness index {:.3}\n",
                self.tenants.len(),
                self.fairness_index
            ));
            for t in &self.tenants {
                s.push_str(&format!(
                    "          tenant{} share {:.1}: {}/{} done | {} quota-rej | p95 {:.3} ms{}\n",
                    t.tenant,
                    t.share,
                    t.completed,
                    t.submitted,
                    t.rejected_quota,
                    t.p95_s * 1e3,
                    if t.p95_ok { "" } else { " (over SLO)" }
                ));
            }
        }
        if self.slo.verdicts.is_empty() {
            s.push_str("slo:      not evaluated\n");
        } else {
            s.push_str(&format!(
                "slo:      {}",
                if self.slo.ok { "ok" } else { "VIOLATED" }
            ));
            for v in &self.slo.verdicts {
                s.push_str(&format!(
                    " | {} {} (target {}, burn {:.2}/{:.2})",
                    v.objective,
                    if v.ok { "ok" } else { "miss" },
                    v.target,
                    v.burn_long,
                    v.burn_short
                ));
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestId;

    #[test]
    fn nearest_rank_percentiles() {
        let lat: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencyStats::from_latencies(lat);
        assert_eq!(s.p50_s, 50.0);
        assert_eq!(s.p95_s, 95.0);
        assert_eq!(s.p99_s, 99.0);
        assert_eq!(s.max_s, 100.0);
        assert_eq!(s.count, 100);
        assert_eq!(
            LatencyStats::from_latencies(vec![]),
            LatencyStats::default()
        );
        let one = LatencyStats::from_latencies(vec![3.0]);
        assert_eq!(one.p50_s, 3.0);
        assert_eq!(one.p99_s, 3.0);
    }

    #[test]
    fn tally_counts_goodput_and_timeouts() {
        let mk = |id: u64, done: f64, timed_out: bool| Completion {
            id: RequestId(id),
            arrival_s: 0.0,
            completed_s: done,
            card: Some(0),
            batch_size: 1,
            timed_out,
            output: None,
        };
        let mut r = ServeReport::default();
        r.tally(&[mk(0, 1.0, false), mk(1, 2.0, true)], &[500_000_000, 1]);
        assert_eq!(r.completed, 2);
        assert_eq!(r.timeouts, 1);
        assert_eq!(r.makespan_s, 2.0);
        // Only the in-deadline request counts, both directions: 1 GB / 2 s.
        assert_eq!(r.goodput_gbs, 0.5);
        assert_eq!(r.achieved_rps, 1.0);
    }

    #[test]
    fn makespan_runs_from_first_arrival() {
        let mk = |arrive: f64, done: f64| Completion {
            id: RequestId(0),
            arrival_s: arrive,
            completed_s: done,
            card: Some(0),
            batch_size: 1,
            timed_out: false,
            output: None,
        };
        let mut r = ServeReport::default();
        // A late-starting run: the idle prefix before t=5 must not deflate
        // the derived rates.
        r.tally(&[mk(5.0, 6.0), mk(5.5, 7.0)], &[250_000_000, 250_000_000]);
        assert_eq!(r.makespan_s, 2.0);
        assert_eq!(r.goodput_gbs, 0.5);
        assert_eq!(r.achieved_rps, 1.0);
        let mut empty = ServeReport::default();
        empty.tally(&[], &[]);
        assert_eq!(empty.makespan_s, 0.0);
        assert_eq!(empty.goodput_gbs, 0.0);
    }

    #[test]
    fn json_is_deterministic_and_histogram_ordered() {
        let mut r = ServeReport::default();
        r.batch_histogram.insert(4, 2);
        r.batch_histogram.insert(1, 7);
        r.cards.push(CardReport::default());
        let a = r.to_json();
        let b = r.clone().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"batch_histogram\": {\"1\": 7, \"4\": 2}"));
        assert!(a.contains("\"cards\": ["));
        assert!(a.contains("\"rejected_oversized\": 0"));
        assert!(a.contains("\"rejected_quota\": 0"));
        assert!(a.contains("\"preemptions\": 0"));
        assert!(a.contains("\"fairness_index\": 0"));
        assert!(a.contains("\"tenants\": ["));
        assert!(a.contains("\"slo\": {"));
    }

    #[test]
    fn mean_batch_size_weights_by_launches() {
        let mut r = ServeReport::default();
        assert_eq!(r.mean_batch_size(), 0.0);
        r.batch_histogram.insert(1, 2);
        r.batch_histogram.insert(4, 1);
        assert_eq!(r.mean_batch_size(), 2.0);
    }
}
