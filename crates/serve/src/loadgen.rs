//! Deterministic load generation: open-loop (Poisson arrivals at a target
//! rate, rejected requests are lost) and closed-loop (a fixed number of
//! outstanding requests, each resubmitted on completion).
//!
//! Everything derives from one SplitMix64 seed — shapes, payloads,
//! directions, priorities, interarrival gaps — so equal seeds replay the
//! exact same request sequence and, because the service is deterministic,
//! produce bit-identical [`crate::report::ServeReport`] JSON.

use crate::pipeline::{convolution_stages, docking_stages, SeededPipeline};
use crate::qos::TenantId;
use crate::request::{Priority, Rejection, SeededSpec, Shape, Ticket};
use crate::service::FftService;
use fft_math::rng::SplitMix64;
use fft_math::twiddle::Direction;

/// One submission as a generator draws it: either a single transform or a
/// whole pipeline DAG. Both variants are wire-transportable seeds-only
/// templates, so a recorded schedule replays bit-identically on either
/// side of `bifft-wire-v1.3`.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitTemplate {
    /// A single-transform request ([`FftService::submit`]).
    Single(SeededSpec),
    /// A dependency-aware pipeline ([`FftService::submit_pipeline`]).
    Pipeline(SeededPipeline),
}

impl SubmitTemplate {
    /// Submits to the matching service entry point. Pipelines go through
    /// [`FftService::submit_seeded_pipeline`], which validates the
    /// template's dims/DAG envelope *before* materializing any payload —
    /// a hostile wire template cannot force a multi-gigabyte expansion by
    /// naming absurd dims or seed counts.
    pub fn submit(&self, svc: &mut FftService, at_s: f64) -> Result<Ticket, Rejection> {
        match self {
            SubmitTemplate::Single(spec) => svc.submit(spec.materialize(), at_s),
            SubmitTemplate::Pipeline(pipe) => svc.submit_seeded_pipeline(pipe.clone(), at_s),
        }
    }
}

/// The shape/urgency mix a generator draws from.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Weighted shapes; draw probability is weight over total weight.
    pub shapes: Vec<(Shape, u32)>,
    /// Percent of requests transformed inverse instead of forward.
    pub inverse_pct: u32,
    /// Percent of requests submitted at [`Priority::High`].
    pub high_pct: u32,
    /// Deadline attached to every request, seconds (`None` = best effort).
    pub deadline_s: Option<f64>,
    /// Tenants the generator spreads requests across (uniformly). `1`
    /// leaves every request on the default tenant *and* draws nothing
    /// extra from the rng, so single-tenant schedules predating QoS
    /// replay bit-identically.
    pub tenants: u32,
    /// Percent of draws that are pipeline DAGs (a seeded mix of
    /// convolution and docking-sweep pipelines) instead of single
    /// transforms. `0` draws nothing extra from the rng, so schedules
    /// predating pipelines replay bit-identically.
    pub pipeline_pct: u32,
}

impl Workload {
    /// The Table-8-style 1-D batch mix: mostly 256-point rows with some
    /// 128- and 512-point requests.
    pub fn rows() -> Self {
        Workload {
            shapes: vec![
                (Shape::Rows1d { n: 256, rows: 32 }, 6),
                (Shape::Rows1d { n: 256, rows: 128 }, 2),
                (Shape::Rows1d { n: 128, rows: 64 }, 2),
                (Shape::Rows1d { n: 512, rows: 16 }, 1),
            ],
            inverse_pct: 25,
            high_pct: 10,
            deadline_s: None,
            tenants: 1,
            pipeline_pct: 0,
        }
    }

    /// Rows plus the occasional 32-cubed volume (plan-cache and whole-card
    /// scheduling exercise).
    pub fn mixed() -> Self {
        let mut w = Workload::rows();
        w.shapes.push((
            Shape::Volume {
                nx: 32,
                ny: 32,
                nz: 32,
            },
            1,
        ));
        w
    }

    /// The mixed workload with roughly a third of draws replaced by
    /// pipeline DAGs — the `--workload pipeline` mix.
    pub fn pipeline() -> Self {
        let mut w = Workload::mixed();
        w.pipeline_pct = 35;
        w
    }

    /// Draws one request as a wire-transportable template: everything the
    /// request is — shape, direction, priority, deadline, payload seed — in
    /// a few words, so a schedule of them travels over `bifft-wire-v1` and
    /// both ends materialize bit-identical payloads.
    pub fn draw_template(&self, rng: &mut SplitMix64) -> SeededSpec {
        let total: u32 = self.shapes.iter().map(|&(_, w)| w).sum();
        debug_assert!(total > 0, "workload needs at least one weighted shape");
        let mut pick = rng.below(total as usize) as u32;
        let mut shape = self.shapes[0].0;
        for &(s, w) in &self.shapes {
            if pick < w {
                shape = s;
                break;
            }
            pick -= w;
        }
        let dir = if (rng.below(100) as u32) < self.inverse_pct {
            Direction::Inverse
        } else {
            Direction::Forward
        };
        let prio = if (rng.below(100) as u32) < self.high_pct {
            Priority::High
        } else {
            Priority::Normal
        };
        let tenant = if self.tenants > 1 {
            TenantId(rng.below(self.tenants as usize) as u64)
        } else {
            TenantId(0)
        };
        SeededSpec {
            shape,
            direction: dir,
            algorithm: None,
            priority: prio,
            deadline_s: self.deadline_s,
            tenant,
            seed: rng.next_u64(),
        }
    }

    /// Draws one pipeline DAG template: a convolution or docking sweep
    /// over a small seeded volume pair.
    pub fn draw_pipeline(&self, rng: &mut SplitMix64) -> SeededPipeline {
        let n = if rng.below(2) == 0 { 16 } else { 32 };
        let dims = (n, n, n);
        let elems = n * n * n;
        let stages = if rng.below(2) == 0 {
            convolution_stages(elems)
        } else {
            docking_stages(elems)
        };
        let priority = if (rng.below(100) as u32) < self.high_pct {
            Priority::High
        } else {
            Priority::Normal
        };
        let tenant = if self.tenants > 1 {
            TenantId(rng.below(self.tenants as usize) as u64)
        } else {
            TenantId(0)
        };
        SeededPipeline {
            dims,
            input_seeds: vec![rng.next_u64(), rng.next_u64()],
            stages,
            priority,
            deadline_s: self.deadline_s,
            tenant,
        }
    }

    /// Draws one submission — a single transform, or (with probability
    /// `pipeline_pct`) a pipeline DAG. When `pipeline_pct` is zero this
    /// draws exactly what [`Workload::draw_template`] draws, consuming the
    /// same rng values, so pre-pipeline schedules replay bit-identically.
    pub fn draw_submit(&self, rng: &mut SplitMix64) -> SubmitTemplate {
        if self.pipeline_pct > 0 && (rng.below(100) as u32) < self.pipeline_pct {
            SubmitTemplate::Pipeline(self.draw_pipeline(rng))
        } else {
            SubmitTemplate::Single(self.draw_template(rng))
        }
    }
}

/// The recorded arrival schedule an open-loop run replays: `(at_s,
/// template)` pairs in arrival order. This is what `fft-gate` ships to the
/// server side — same seed, same schedule, same [`ServeReport`] whether the
/// requests arrive in-process or over TCP.
///
/// [`ServeReport`]: crate::report::ServeReport
pub fn open_loop_schedule(
    workload: &Workload,
    requests: u64,
    rate_rps: f64,
    seed: u64,
) -> Vec<(f64, SeededSpec)> {
    open_loop_templates(workload, requests, rate_rps, seed)
        .into_iter()
        .map(|(t, tpl)| match tpl {
            SubmitTemplate::Single(spec) => (t, spec),
            SubmitTemplate::Pipeline(_) => {
                panic!("pipeline workloads need open_loop_templates, not open_loop_schedule")
            }
        })
        .collect()
}

/// The generalized arrival schedule: `(at_s, template)` pairs where a
/// template is a single transform *or* a pipeline DAG. For workloads with
/// `pipeline_pct = 0` this consumes the same rng values as the original
/// single-only schedule, so pre-pipeline seeds replay bit-identically.
pub fn open_loop_templates(
    workload: &Workload,
    requests: u64,
    rate_rps: f64,
    seed: u64,
) -> Vec<(f64, SubmitTemplate)> {
    assert!(rate_rps > 0.0, "open loop needs a positive arrival rate");
    let mut rng = SplitMix64::new(seed);
    let mut t = 0.0f64;
    let mut schedule = Vec::with_capacity(requests as usize);
    for _ in 0..requests {
        // Exponential interarrival gap; (1 - u) keeps ln's argument nonzero.
        let gap = -(1.0 - rng.next_f64()).ln() / rate_rps;
        t += gap;
        schedule.push((t, workload.draw_submit(&mut rng)));
    }
    schedule
}

/// What a generator run observed at the submission boundary (the service's
/// own report covers the rest).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OfferedLoad {
    /// Requests the generator submitted.
    pub offered: u64,
    /// Submissions the service admitted.
    pub accepted: u64,
    /// Simulated span of the arrival process, seconds.
    pub span_s: f64,
    /// Offered requests per simulated second over that span.
    pub offered_rps: f64,
}

/// Open-loop (Poisson) load: `requests` arrivals at `rate_rps` mean rate.
/// Arrivals ignore completions — a saturated service sheds via admission
/// control rather than slowing the generator down.
pub fn run_open_loop(
    svc: &mut FftService,
    workload: &Workload,
    requests: u64,
    rate_rps: f64,
    seed: u64,
) -> OfferedLoad {
    let schedule = open_loop_templates(workload, requests, rate_rps, seed);
    let mut t = 0.0f64;
    let mut accepted = 0u64;
    for (at_s, template) in schedule {
        t = at_s;
        if template.submit(svc, at_s).is_ok() {
            accepted += 1;
        }
    }
    OfferedLoad {
        offered: requests,
        accepted,
        span_s: t,
        offered_rps: if t > 0.0 { requests as f64 / t } else { 0.0 },
    }
}

/// Closed-loop load: windows of `concurrency` requests, each window
/// submitted when the previous one has fully drained. `concurrency = 1`
/// is the serial one-at-a-time baseline the acceptance criteria compare
/// the service against.
pub fn run_closed_loop(
    svc: &mut FftService,
    workload: &Workload,
    requests: u64,
    concurrency: u64,
    seed: u64,
) -> OfferedLoad {
    assert!(concurrency > 0, "closed loop needs at least one worker");
    let mut rng = SplitMix64::new(seed);
    let mut accepted = 0u64;
    let mut submitted = 0u64;
    while submitted < requests {
        let window = concurrency.min(requests - submitted);
        let at = svc.now_s();
        for _ in 0..window {
            let template = workload.draw_submit(&mut rng);
            if template.submit(svc, at).is_ok() {
                accepted += 1;
            }
            submitted += 1;
        }
        svc.drain();
    }
    let span = svc.now_s();
    OfferedLoad {
        offered: requests,
        accepted,
        span_s: span,
        offered_rps: if span > 0.0 {
            requests as f64 / span
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;

    #[test]
    fn workload_draws_are_deterministic() {
        let w = Workload::mixed();
        let mut a = SplitMix64::new(5);
        let mut b = SplitMix64::new(5);
        for _ in 0..32 {
            let sa = w.draw_template(&mut a).materialize();
            let sb = w.draw_template(&mut b).materialize();
            assert_eq!(sa.shape, sb.shape);
            assert_eq!(sa.direction, sb.direction);
            assert_eq!(sa.priority, sb.priority);
            assert_eq!(sa.payload, sb.payload);
        }
    }

    #[test]
    fn multi_tenant_draws_spread_across_tenants() {
        let mut w = Workload::rows();
        w.tenants = 3;
        let mut rng = SplitMix64::new(9);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..50 {
            let t = w.draw_template(&mut rng).tenant;
            assert!(t.0 < 3);
            seen.insert(t.0);
        }
        assert!(seen.len() >= 2, "50 draws hit more than one tenant");
        // tenants = 1 tags everything with the default tenant.
        let single = Workload::rows();
        let mut rng = SplitMix64::new(9);
        for _ in 0..10 {
            assert_eq!(single.draw_template(&mut rng).tenant, TenantId(0));
        }
    }

    #[test]
    fn open_loop_spaces_arrivals() {
        let mut svc = FftService::new(ServeConfig::default()).unwrap();
        let load = run_open_loop(&mut svc, &Workload::rows(), 20, 1000.0, 7);
        assert_eq!(load.offered, 20);
        assert!(load.accepted > 0);
        assert!(load.span_s > 0.0);
        // Mean gap should be in the right ballpark of 1/rate.
        assert!(load.offered_rps > 200.0 && load.offered_rps < 5000.0);
        let r = svc.finish();
        assert_eq!(r.completed, load.accepted);
    }

    #[test]
    fn closed_loop_completes_everything_in_windows() {
        let mut svc = ServeConfig::builder().gpus(1).build_service().unwrap();
        let load = run_closed_loop(&mut svc, &Workload::rows(), 10, 2, 3);
        assert_eq!(load.offered, 10);
        assert_eq!(load.accepted, 10, "closed loop never overruns the queue");
        let r = svc.finish();
        assert_eq!(r.completed, 10);
    }

    #[test]
    fn pipeline_workload_draws_both_kinds_and_replays() {
        let w = Workload::pipeline();
        let mut a = SplitMix64::new(21);
        let mut b = SplitMix64::new(21);
        let mut pipes = 0;
        let mut singles = 0;
        for _ in 0..64 {
            let ta = w.draw_submit(&mut a);
            let tb = w.draw_submit(&mut b);
            assert_eq!(ta, tb, "same seed, same template");
            match ta {
                SubmitTemplate::Pipeline(p) => {
                    assert!(p.materialize().validate().is_ok());
                    pipes += 1;
                }
                SubmitTemplate::Single(_) => singles += 1,
            }
        }
        assert!(pipes > 0 && singles > 0, "mix draws both kinds");
    }

    #[test]
    fn zero_pipeline_pct_preserves_legacy_rng_order() {
        // A pipeline-disabled draw_submit must consume exactly what
        // draw_template consumed before pipelines existed.
        let w = Workload::mixed();
        let mut a = SplitMix64::new(77);
        let mut b = SplitMix64::new(77);
        for _ in 0..32 {
            match w.draw_submit(&mut a) {
                SubmitTemplate::Single(spec) => assert_eq!(spec, w.draw_template(&mut b)),
                SubmitTemplate::Pipeline(_) => panic!("pipeline_pct = 0 never draws a pipeline"),
            }
        }
    }

    #[test]
    fn pipeline_open_loop_completes_dags() {
        let mut svc = ServeConfig::builder().build_service().unwrap();
        let load = run_open_loop(&mut svc, &Workload::pipeline(), 24, 2000.0, 13);
        assert!(load.accepted > 0);
        let r = svc.finish();
        assert!(r.pipelines > 0, "mix produced at least one pipeline DAG");
        assert!(
            r.pipeline_stages >= 4 * r.pipelines,
            "DAGs have >= 4 stages"
        );
        assert!(r.resident_hits > 0, "intermediates stayed device-resident");
    }

    #[test]
    fn schedule_replay_matches_run_open_loop() {
        let run = |mut svc: FftService| {
            run_open_loop(&mut svc, &Workload::mixed(), 24, 2000.0, 11);
            svc.finish().to_json()
        };
        let replay = |mut svc: FftService| {
            for (at_s, template) in open_loop_schedule(&Workload::mixed(), 24, 2000.0, 11) {
                let _ = svc.submit(template.materialize(), at_s);
            }
            svc.finish().to_json()
        };
        let mk = || ServeConfig::builder().build_service().unwrap();
        assert_eq!(run(mk()), replay(mk()));
    }

    #[test]
    fn template_schedule_replay_matches_pipeline_run() {
        let run = |mut svc: FftService| {
            run_open_loop(&mut svc, &Workload::pipeline(), 24, 2000.0, 11);
            svc.finish().to_json()
        };
        let replay = |mut svc: FftService| {
            for (at_s, tpl) in open_loop_templates(&Workload::pipeline(), 24, 2000.0, 11) {
                let _ = tpl.submit(&mut svc, at_s);
            }
            svc.finish().to_json()
        };
        let mk = || ServeConfig::builder().build_service().unwrap();
        assert_eq!(run(mk()), replay(mk()));
    }
}
