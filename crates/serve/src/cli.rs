//! The `fft-serve` binary: seeded load-generator runs over the service,
//! with optional hazard checking, JSON report output, and the telemetry
//! surface (windowed metrics, SLO verdicts, Chrome-trace waterfalls).
//!
//! ```text
//! fft-serve [--smoke] [--gpus N] [--streams N] [--requests N] [--rate RPS]
//!           [--seed S] [--workload rows|mixed|pipeline] [--closed N]
//!           [--tenants N] [--preempt]
//!           [--check-hazards] [--json PATH]
//!           [--metrics-out PATH] [--metrics-format json|prom]
//!           [--trace PATH] [--attr-out PATH] [--attr-audit]
//! fft-serve --validate-metrics PATH
//! ```
//!
//! `--smoke` is the CI entry point: a small mixed open-loop run whose
//! report is deterministic for a given seed; with `--check-hazards` the
//! whole fleet runs under the PR 4 validator and any diagnostic fails the
//! process (exit 1). `--metrics-out` writes the metrics document
//! ([`crate::telemetry::export::METRICS_SCHEMA`] JSON or Prometheus
//! exposition text), `--trace` writes a merged Chrome-trace timeline
//! (per-card tracks plus one track per request), and `--validate-metrics`
//! re-reads a previously written JSON metrics file and exits 0 only when
//! the schema validates AND the recorded SLO verdict is ok — the CI gate
//! (it also surfaces the run's dropped-lifecycle-stamp counter).
//! `--attr-out` writes the run's `bifft-attr-v2` attribution document
//! (what `fft-prof` analyzes) and `--attr-audit` fails the process when
//! any completed request's ledger breaks the conservation invariant.
//! `--tenants N` spreads the workload across `N` tenants with weighted
//! shares `1..=N` (tenant `i` gets share `i + 1`) so the QoS scheduler has
//! something to arbitrate, and `--preempt` lets high-priority arrivals
//! abort a dispatched lower-priority batch at the next stream-safe point.

use crate::loadgen::{run_closed_loop, run_open_loop, Workload};
use crate::qos::{QosConfig, TenantId, TenantPolicy};
use crate::service::ServeConfig;
use crate::telemetry::validate_metrics_json;

struct Cli {
    gpus: usize,
    streams: usize,
    requests: u64,
    rate_rps: f64,
    seed: u64,
    workload: String,
    closed: Option<u64>,
    tenants: u32,
    preempt: bool,
    check_hazards: bool,
    json_path: Option<String>,
    metrics_out: Option<String>,
    metrics_format: String,
    trace_path: Option<String>,
    attr_out: Option<String>,
    attr_audit: bool,
    validate_metrics: Option<String>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            gpus: 2,
            streams: 2,
            requests: 200,
            rate_rps: 2000.0,
            seed: 42,
            workload: "mixed".to_string(),
            closed: None,
            tenants: 1,
            preempt: false,
            check_hazards: false,
            json_path: None,
            metrics_out: None,
            metrics_format: "json".to_string(),
            trace_path: None,
            attr_out: None,
            attr_audit: false,
            validate_metrics: None,
        }
    }
}

fn usage() {
    eprintln!(
        "usage: fft-serve [--smoke] [--gpus N] [--streams N] [--requests N] [--rate RPS] \
         [--seed S] [--workload rows|mixed|pipeline] [--closed N] [--tenants N] [--preempt] \
         [--check-hazards] [--json PATH] \
         [--metrics-out PATH] [--metrics-format json|prom] [--trace PATH] \
         [--attr-out PATH] [--attr-audit]\n\
         \u{20}      fft-serve --validate-metrics PATH"
    );
}

/// Entry point for the `fft-serve` binary; returns the process exit code.
pub fn cli_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = Cli::default();
    let mut it = args.iter();
    macro_rules! take {
        ($flag:literal, $parse:expr) => {
            match it.next().and_then(|v| $parse(v.as_str())) {
                Some(v) => v,
                None => {
                    eprintln!(concat!("fft-serve: ", $flag, " needs a value"));
                    return 2;
                }
            }
        };
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => {
                cli.requests = 64;
                cli.rate_rps = 5000.0;
            }
            "--check-hazards" => cli.check_hazards = true,
            "--gpus" => cli.gpus = take!("--gpus", |v: &str| v.parse().ok()),
            "--streams" => cli.streams = take!("--streams", |v: &str| v.parse().ok()),
            "--requests" => cli.requests = take!("--requests", |v: &str| v.parse().ok()),
            "--rate" => cli.rate_rps = take!("--rate", |v: &str| v.parse().ok()),
            "--seed" => cli.seed = take!("--seed", |v: &str| v.parse().ok()),
            "--workload" => {
                cli.workload = take!("--workload", |v: &str| Some(v.to_string()));
            }
            "--closed" => cli.closed = Some(take!("--closed", |v: &str| v.parse().ok())),
            "--tenants" => {
                cli.tenants = take!("--tenants", |v: &str| v.parse().ok().filter(|&n| n > 0));
            }
            "--preempt" => cli.preempt = true,
            "--json" => cli.json_path = Some(take!("--json", |v: &str| Some(v.to_string()))),
            "--metrics-out" => {
                cli.metrics_out = Some(take!("--metrics-out", |v: &str| Some(v.to_string())));
            }
            "--metrics-format" => {
                cli.metrics_format = take!("--metrics-format", |v: &str| match v {
                    "json" | "prom" => Some(v.to_string()),
                    _ => None,
                });
            }
            "--trace" => {
                cli.trace_path = Some(take!("--trace", |v: &str| Some(v.to_string())));
            }
            "--attr-out" => {
                cli.attr_out = Some(take!("--attr-out", |v: &str| Some(v.to_string())));
            }
            "--attr-audit" => cli.attr_audit = true,
            "--validate-metrics" => {
                cli.validate_metrics =
                    Some(take!("--validate-metrics", |v: &str| Some(v.to_string())));
            }
            other => {
                eprintln!("fft-serve: unknown argument {other}");
                usage();
                return 2;
            }
        }
    }

    // Standalone mode: re-validate a previously written metrics document.
    // Exit 0 only when the schema parses AND the recorded SLO verdict was
    // ok — this is what CI runs against the smoke run's --metrics-out.
    if let Some(path) = &cli.validate_metrics {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fft-serve: cannot read {path}: {e}");
                return 1;
            }
        };
        // Surface the dropped-lifecycle-stamp counter (a required section,
        // so a validating document always carries it). Dropped stamps mean
        // the waterfalls — and everything attribution derives from them —
        // are incomplete; a healthy service keeps this at 0.
        if let Some(n) = read_dropped_counter(&text) {
            if n > 0 {
                eprintln!("fft-serve: {path}: WARNING: {n} lifecycle stamp(s) dropped");
            } else {
                eprintln!("fft-serve: {path}: lifecycle stamps: none dropped");
            }
        }
        return match validate_metrics_json(&text) {
            Ok(true) => {
                eprintln!("fft-serve: {path}: schema ok, slo ok");
                0
            }
            Ok(false) => {
                eprintln!("fft-serve: {path}: schema ok, but SLO VIOLATED");
                1
            }
            Err(e) => {
                eprintln!("fft-serve: {path}: invalid metrics document: {e}");
                1
            }
        };
    }

    let mut workload = match cli.workload.as_str() {
        "rows" => Workload::rows(),
        "mixed" => Workload::mixed(),
        "pipeline" => Workload::pipeline(),
        other => {
            eprintln!("fft-serve: unknown workload '{other}' (rows|mixed|pipeline)");
            return 2;
        }
    };
    workload.tenants = cli.tenants;
    // Weighted shares 1..=N give the fair scheduler distinct entitlements
    // to arbitrate (equal shares would make WFQ look like FIFO).
    let mut qos = QosConfig {
        preemption: cli.preempt,
        ..QosConfig::default()
    };
    for t in 0..u64::from(cli.tenants) {
        qos.tenants.insert(
            TenantId(t),
            TenantPolicy {
                share: (t + 1) as f64,
                ..TenantPolicy::default()
            },
        );
    }
    let mut svc = match ServeConfig::builder()
        .gpus(cli.gpus)
        .streams(cli.streams)
        .check_hazards(cli.check_hazards)
        .record_trace(cli.trace_path.is_some())
        .qos(qos)
        .build_service()
    {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fft-serve: cannot bring the fleet up: {e}");
            return 2;
        }
    };
    let load = match cli.closed {
        Some(c) => run_closed_loop(&mut svc, &workload, cli.requests, c, cli.seed),
        None => run_open_loop(&mut svc, &workload, cli.requests, cli.rate_rps, cli.seed),
    };
    svc.drain();
    let report = svc.report();
    println!(
        "fft-serve: {} x {} ({} stream(s)/card), workload {}, seed {}",
        cli.gpus,
        svc_model(),
        cli.streams,
        cli.workload,
        cli.seed
    );
    println!(
        "offered:  {} requests at {:.1} req/s over {:.3} ms ({} accepted)",
        load.offered,
        load.offered_rps,
        load.span_s * 1e3,
        load.accepted
    );
    print!("{}", report.to_text());

    if let Some(path) = &cli.json_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("fft-serve: cannot write {path}: {e}");
            return 1;
        }
        eprintln!("fft-serve: report written to {path}");
    }

    if let Some(path) = &cli.metrics_out {
        let doc = match cli.metrics_format.as_str() {
            "prom" => svc.prometheus_text(),
            _ => svc.metrics_json(),
        };
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("fft-serve: cannot write {path}: {e}");
            return 1;
        }
        eprintln!(
            "fft-serve: metrics ({}) written to {path}",
            cli.metrics_format
        );
    }

    if let Some(path) = &cli.trace_path {
        match svc.chrome_trace() {
            Some(doc) => {
                if let Err(e) = std::fs::write(path, doc) {
                    eprintln!("fft-serve: cannot write {path}: {e}");
                    return 1;
                }
                eprintln!("fft-serve: chrome trace written to {path}");
            }
            None => {
                eprintln!("fft-serve: --trace produced no events (recording disabled?)");
                return 1;
            }
        }
    }

    if let Some(path) = &cli.attr_out {
        if let Err(e) = std::fs::write(path, svc.attribution_json()) {
            eprintln!("fft-serve: cannot write {path}: {e}");
            return 1;
        }
        eprintln!("fft-serve: attribution written to {path}");
    }

    if cli.attr_audit {
        let audit = svc.attribution_audit();
        if audit.ok() {
            eprintln!(
                "fft-serve: attr-audit: conservation ok over {} request(s) (worst error {:e} s)",
                audit.requests, audit.worst_err_s
            );
        } else {
            eprintln!(
                "fft-serve: attr-audit: {} of {} ledger(s) UNBALANCED (worst error {:e} s)",
                audit.unbalanced, audit.requests, audit.worst_err_s
            );
            return 1;
        }
    }

    if cli.check_hazards {
        match svc.check_report() {
            Some(rep) if rep.clean() => eprintln!(
                "fft-serve: check-hazards: clean ({} kernels, {} ops tracked)",
                rep.kernels_checked, rep.ops_tracked
            ),
            Some(rep) => {
                eprintln!("{rep}");
                eprintln!(
                    "fft-serve: check-hazards: {} diagnostic(s)",
                    rep.access.len() + rep.hazards.len()
                );
                return 1;
            }
            None => {
                eprintln!("fft-serve: check-hazards: no report collected");
                return 1;
            }
        }
    }
    0
}

fn svc_model() -> &'static str {
    "GTS8800-sim"
}

/// Reads `"serve_lifecycle_dropped_total": N` out of a metrics document,
/// or `None` when the counter is absent (a foreign or truncated file —
/// the schema validator reports that separately).
fn read_dropped_counter(text: &str) -> Option<u64> {
    let key = "\"serve_lifecycle_dropped_total\": ";
    let at = text.find(key)? + key.len();
    text[at..]
        .split([',', '\n', '}'])
        .next()?
        .trim()
        .parse()
        .ok()
}
