//! Multi-tenant QoS: tenant identity, admission quotas, weighted-fair
//! queueing state and the fairness index.
//!
//! The serving stack is shared: the paper's own case study (§5, ZDock
//! docking sweeps) assumes many concurrent workloads feeding one FFT
//! engine, and a single hot client must not starve the rest. This module
//! is the bookkeeping for that guarantee:
//!
//! - every request carries a [`TenantId`]; unknown tenants fall back to a
//!   configurable default policy, so single-tenant callers never have to
//!   think about any of this;
//! - admission enforces a per-tenant **token bucket** (sustained rate +
//!   burst) and an **in-flight cap**, both refilled/settled on the
//!   deterministic virtual clock — over-quota submissions reject with
//!   `Rejection::QuotaExceeded` instead of entering the queue;
//! - dispatch order within a priority class comes from **start-time-fair
//!   weighted-fair queueing**: each admission is assigned a virtual finish
//!   time `vft = max(tenant_last_finish, now) + cost / share` (cost =
//!   payload elements), and the queue ranks `(priority, vft, arrival,
//!   id)`. Under overload the scheduler therefore serves tenants in
//!   proportion to their configured shares; with a single tenant the vft
//!   is strictly increasing in admission order and the order degenerates
//!   to the classic `(priority, arrival, id)` — same-seed runs predating
//!   QoS replay bit-identically;
//! - preempted batches charge their wasted device time back to the
//!   owning tenant (see the service's lane preemption), surfaced per
//!   tenant here and per request in the attribution ledger;
//! - [`jain_index`] condenses the per-tenant share-weighted goodput into
//!   the fairness figure the bench `tenancy` section gates.

use std::collections::BTreeMap;
use std::fmt;

/// A tenant identity. `TenantId(0)` is the default tenant every request
/// belongs to unless tagged otherwise.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u64);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Per-tenant policy: scheduling weight plus admission quotas.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TenantPolicy {
    /// Weighted-fair-queueing share (relative weight; must be positive).
    /// A tenant with share 3 receives 3× the service of a share-1 tenant
    /// when both are backlogged.
    pub share: f64,
    /// Sustained admission rate, requests per simulated second. `None`
    /// disables the rate quota.
    pub rate_rps: Option<f64>,
    /// Token-bucket capacity, requests — the burst a tenant may submit
    /// above its sustained rate. Only meaningful with `rate_rps`.
    pub burst: f64,
    /// Most requests a tenant may have admitted-but-not-finished at once.
    /// `None` disables the in-flight quota.
    pub max_inflight: Option<usize>,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            share: 1.0,
            rate_rps: None,
            burst: 8.0,
            max_inflight: None,
        }
    }
}

/// Fleet-wide QoS configuration.
#[derive(Clone, Debug, Default)]
pub struct QosConfig {
    /// Explicit per-tenant policies; tenants not listed here use
    /// [`QosConfig::default_policy`].
    pub tenants: BTreeMap<TenantId, TenantPolicy>,
    /// Policy applied to tenants without an explicit entry.
    pub default_policy: TenantPolicy,
    /// Enables lane-level preemption: a dispatched lower-priority rows
    /// batch whose lane is needed by a higher-priority arrival is aborted
    /// at the next stream-safe point and requeued.
    pub preemption: bool,
}

impl QosConfig {
    /// The policy governing `tenant`.
    pub fn policy(&self, tenant: TenantId) -> TenantPolicy {
        self.tenants
            .get(&tenant)
            .copied()
            .unwrap_or(self.default_policy)
    }

    /// Checks the policy invariants: positive shares, positive rates,
    /// bursts of at least one request.
    ///
    /// # Errors
    /// A human-readable description of the first offending policy.
    pub fn validate(&self) -> Result<(), String> {
        let all = self
            .tenants
            .iter()
            .map(|(t, p)| (Some(*t), p))
            .chain(std::iter::once((None, &self.default_policy)));
        for (tenant, p) in all {
            let name = tenant.map_or("default policy".to_string(), |t| t.to_string());
            if p.share <= 0.0 || !p.share.is_finite() {
                return Err(format!("{name}: share must be a positive finite weight"));
            }
            if let Some(r) = p.rate_rps {
                if r <= 0.0 || !r.is_finite() {
                    return Err(format!("{name}: rate_rps must be positive and finite"));
                }
                if p.burst < 1.0 || !p.burst.is_finite() {
                    return Err(format!("{name}: burst must be at least one request"));
                }
            }
        }
        Ok(())
    }
}

/// Why an admission bounced on quota — carried in
/// `Rejection::QuotaExceeded` so clients can tell "slow down" from "you
/// have too much in flight".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuotaKind {
    /// The token bucket is empty: the tenant exceeded its sustained rate
    /// plus burst.
    Rate,
    /// The tenant is at its admitted-but-unfinished cap.
    Inflight,
}

impl fmt::Display for QuotaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            QuotaKind::Rate => "rate",
            QuotaKind::Inflight => "inflight",
        })
    }
}

/// One tenant's live accounting: quota state plus the run statistics the
/// report's tenancy section renders.
#[derive(Clone, Debug)]
pub struct TenantState {
    /// Token bucket level, requests.
    tokens: f64,
    /// Virtual time of the last bucket refill.
    refilled_s: f64,
    /// The tenant's last assigned virtual finish time (WFQ state).
    last_finish_vft: f64,
    /// Admitted but not yet completed/failed.
    inflight: usize,
    /// Every submission attributed to the tenant, rejected or not.
    pub submitted: u64,
    /// Submissions that entered the queue.
    pub admitted: u64,
    /// Submissions bounced by this tenant's quota.
    pub rejected_quota: u64,
    /// Requests completed (timed out or not).
    pub completed: u64,
    /// In-deadline payload bytes, both directions (goodput numerator).
    pub good_bytes: u64,
    /// Wasted device seconds charged to this tenant's preempted requests.
    pub preempted_s: f64,
    /// Completion latencies, seconds, in commit order (per-tenant SLO).
    pub latencies_s: Vec<f64>,
}

impl TenantState {
    fn new(burst: f64) -> Self {
        TenantState {
            tokens: burst,
            refilled_s: 0.0,
            last_finish_vft: 0.0,
            inflight: 0,
            submitted: 0,
            admitted: 0,
            rejected_quota: 0,
            completed: 0,
            good_bytes: 0,
            preempted_s: 0.0,
            latencies_s: Vec::new(),
        }
    }
}

/// The service-side QoS ledger: per-tenant quota buckets, WFQ virtual
/// time and run statistics. Deterministic by construction — every state
/// change is driven by the virtual clock.
#[derive(Clone, Debug)]
pub struct QosBook {
    cfg: QosConfig,
    states: BTreeMap<TenantId, TenantState>,
}

impl QosBook {
    /// A fresh ledger under `cfg`.
    pub fn new(cfg: QosConfig) -> Self {
        QosBook {
            cfg,
            states: BTreeMap::new(),
        }
    }

    /// The configuration the ledger enforces.
    pub fn config(&self) -> &QosConfig {
        &self.cfg
    }

    fn state(&mut self, tenant: TenantId) -> &mut TenantState {
        let burst = self.cfg.policy(tenant).burst;
        self.states
            .entry(tenant)
            .or_insert_with(|| TenantState::new(burst))
    }

    /// Books one submission against `tenant` (before any admission
    /// decision, so rejected submissions are attributed too).
    pub fn note_submitted(&mut self, tenant: TenantId) {
        self.state(tenant).submitted += 1;
    }

    /// Runs the quota checks for one submission arriving at `now_s`.
    /// On success the token and in-flight slot are consumed and the
    /// admission is booked.
    ///
    /// # Errors
    /// The [`QuotaKind`] that bounced the submission, with the tenant's
    /// rejection counter already incremented.
    pub fn admit(&mut self, tenant: TenantId, now_s: f64) -> Result<(), QuotaKind> {
        let policy = self.cfg.policy(tenant);
        let st = self.state(tenant);
        if let Some(rate) = policy.rate_rps {
            let dt = (now_s - st.refilled_s).max(0.0);
            st.tokens = (st.tokens + rate * dt).min(policy.burst);
            st.refilled_s = now_s;
            if st.tokens < 1.0 {
                st.rejected_quota += 1;
                return Err(QuotaKind::Rate);
            }
        }
        if let Some(cap) = policy.max_inflight {
            if st.inflight >= cap {
                st.rejected_quota += 1;
                return Err(QuotaKind::Inflight);
            }
        }
        if policy.rate_rps.is_some() {
            st.tokens -= 1.0;
        }
        st.inflight += 1;
        st.admitted += 1;
        Ok(())
    }

    /// Assigns the admission's virtual finish time (start-time-fair WFQ):
    /// `max(tenant_last_finish, now) + cost / share`. Call once per
    /// admitted request, after [`QosBook::admit`] succeeded.
    pub fn assign_vft(&mut self, tenant: TenantId, now_s: f64, cost: f64) -> f64 {
        let share = self.cfg.policy(tenant).share;
        let st = self.state(tenant);
        let vft = st.last_finish_vft.max(now_s) + cost / share;
        st.last_finish_vft = vft;
        vft
    }

    /// Settles one completed request: frees its in-flight slot and books
    /// the latency/goodput statistics.
    pub fn on_complete(&mut self, tenant: TenantId, latency_s: f64, good_bytes: u64) {
        let st = self.state(tenant);
        st.inflight = st.inflight.saturating_sub(1);
        st.completed += 1;
        st.good_bytes += good_bytes;
        st.latencies_s.push(latency_s);
    }

    /// Settles one failed request: frees its in-flight slot.
    pub fn on_fail(&mut self, tenant: TenantId) {
        let st = self.state(tenant);
        st.inflight = st.inflight.saturating_sub(1);
    }

    /// Charges `wasted_s` seconds of aborted device time to `tenant`.
    pub fn charge_preempt(&mut self, tenant: TenantId, wasted_s: f64) {
        self.state(tenant).preempted_s += wasted_s;
    }

    /// Tenants seen so far with their statistics, id-ordered.
    pub fn tenants(&self) -> impl Iterator<Item = (TenantId, &TenantState)> {
        self.states.iter().map(|(t, s)| (*t, s))
    }

    /// Jain's fairness index over share-weighted goodput of every tenant
    /// that submitted anything. `1.0` with zero or one active tenant.
    pub fn fairness_index(&self) -> f64 {
        let xs: Vec<f64> = self
            .states
            .iter()
            .filter(|(_, s)| s.submitted > 0)
            .map(|(t, s)| s.good_bytes as f64 / self.cfg.policy(*t).share)
            .collect();
        jain_index(&xs)
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` — `1.0` for perfectly even
/// allocations, `1/n` when one participant has everything. Empty and
/// single-element inputs score `1.0`.
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.len() <= 1 {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenant_cfg() -> QosConfig {
        let mut tenants = BTreeMap::new();
        tenants.insert(
            TenantId(0),
            TenantPolicy {
                share: 3.0,
                ..TenantPolicy::default()
            },
        );
        tenants.insert(
            TenantId(1),
            TenantPolicy {
                share: 1.0,
                rate_rps: Some(100.0),
                burst: 2.0,
                max_inflight: Some(2),
            },
        );
        QosConfig {
            tenants,
            ..QosConfig::default()
        }
    }

    #[test]
    fn token_bucket_enforces_rate_and_burst() {
        let mut book = QosBook::new(two_tenant_cfg());
        // Burst of 2 at t=0: two admits pass, the third bounces on rate.
        assert!(book.admit(TenantId(1), 0.0).is_ok());
        assert!(book.admit(TenantId(1), 0.0).is_ok());
        assert_eq!(book.admit(TenantId(1), 0.0), Err(QuotaKind::Rate));
        // 100 rps refills one token every 10 ms.
        book.on_complete(TenantId(1), 1e-3, 0);
        book.on_complete(TenantId(1), 1e-3, 0);
        assert!(book.admit(TenantId(1), 0.010).is_ok());
        assert_eq!(book.admit(TenantId(1), 0.010), Err(QuotaKind::Rate));
    }

    #[test]
    fn inflight_cap_frees_on_completion_and_failure() {
        let mut book = QosBook::new(two_tenant_cfg());
        // Spread admits out so the 100 rps bucket never interferes.
        assert!(book.admit(TenantId(1), 0.0).is_ok());
        assert!(book.admit(TenantId(1), 1.0).is_ok());
        assert_eq!(book.admit(TenantId(1), 2.0), Err(QuotaKind::Inflight));
        book.on_complete(TenantId(1), 0.5, 16);
        assert!(book.admit(TenantId(1), 3.0).is_ok());
        book.on_fail(TenantId(1));
        assert!(book.admit(TenantId(1), 4.0).is_ok());
    }

    #[test]
    fn unlimited_tenants_never_bounce() {
        let mut book = QosBook::new(two_tenant_cfg());
        for i in 0..1000 {
            assert!(book.admit(TenantId(0), i as f64 * 1e-6).is_ok());
        }
    }

    #[test]
    fn vft_is_share_proportional_and_monotone() {
        let mut book = QosBook::new(two_tenant_cfg());
        // Same cost at the same instant: the share-3 tenant's finish time
        // advances 3x slower than the share-1 tenant's.
        let a1 = book.assign_vft(TenantId(0), 0.0, 300.0);
        let b1 = book.assign_vft(TenantId(1), 0.0, 300.0);
        assert!((a1 - 100.0).abs() < 1e-12);
        assert!((b1 - 300.0).abs() < 1e-12);
        // Monotone per tenant, even for a backlog submitted at one instant.
        let a2 = book.assign_vft(TenantId(0), 0.0, 300.0);
        assert!(a2 > a1);
        // An idle gap resets the start time to "now" (start-time fairness:
        // an idle tenant is not owed credit for its absence).
        let a3 = book.assign_vft(TenantId(0), 1000.0, 300.0);
        assert!((a3 - 1100.0).abs() < 1e-9);
    }

    #[test]
    fn jain_index_brackets() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[5.0]), 1.0);
        assert!((jain_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let skew = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((skew - 0.25).abs() < 1e-12);
        assert!(jain_index(&[3.0, 1.0]) < 1.0);
    }

    #[test]
    fn fairness_index_weighs_by_share() {
        let mut book = QosBook::new(two_tenant_cfg());
        book.note_submitted(TenantId(0));
        book.note_submitted(TenantId(1));
        // Goodput exactly proportional to 3:1 shares → perfectly fair.
        book.on_complete(TenantId(0), 1e-3, 300);
        book.on_complete(TenantId(1), 1e-3, 100);
        assert!((book.fairness_index() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn config_validation_catches_bad_policies() {
        let mut cfg = QosConfig::default();
        assert!(cfg.validate().is_ok());
        cfg.tenants.insert(
            TenantId(7),
            TenantPolicy {
                share: 0.0,
                ..TenantPolicy::default()
            },
        );
        assert!(cfg.validate().unwrap_err().contains("tenant7"));
        cfg.tenants.insert(
            TenantId(7),
            TenantPolicy {
                rate_rps: Some(10.0),
                burst: 0.5,
                ..TenantPolicy::default()
            },
        );
        assert!(cfg.validate().unwrap_err().contains("burst"));
    }
}
