//! fft-serve — FFT-as-a-service on the simulated GPU fleet.
//!
//! The paper's kernel answers "how fast is one transform"; this crate
//! answers the production question layered on top: how many transforms per
//! second can a fleet of these cards serve, at what latency, under what
//! admission policy. It is a deterministic discrete-event serving stack
//! over the PR 2 stream/event machinery:
//!
//! - [`request`] — typed requests (shape, direction, algorithm hint,
//!   priority, deadline), rejections and completions;
//! - [`queue`] — the bounded priority submission queue (backpressure);
//! - [`batcher`] — adaptive micro-batching: same-shape requests coalesce
//!   into one batched launch, batch size tracking queue depth under a
//!   latency budget, with an EWMA service-time estimator;
//! - [`scheduler`] — cards, stream lanes and the per-card plan cache;
//! - [`service`] — admission control, dispatch routing (stream lanes for
//!   1-D rows, whole-card volumes, whole-fleet sharded volumes) and
//!   graceful drain;
//! - [`qos`] — multi-tenant quotas, weighted-fair queueing state and lane
//!   preemption policy;
//! - [`loadgen`] — seeded open-loop (Poisson) and closed-loop generators;
//! - [`report`] — latency percentiles, goodput, queue/batch statistics,
//!   per-card utilization, rendered as deterministic JSON;
//! - [`telemetry`] — request-lifecycle waterfalls, the windowed metrics
//!   registry, SLO burn-rate monitoring, the per-request time-attribution
//!   ledger and the metrics/Prometheus/Chrome exporters;
//! - [`cli`] — the `fft-serve` binary;
//! - [`prof`] — the `fft-prof` binary (attribution show/diff forensics).
//!
//! Everything is seeded and virtual-time: the same workload seed produces
//! bit-identical report JSON, which is what lets CI gate on serving
//! behaviour at all.

#![warn(missing_docs)]

pub mod batcher;
pub mod cli;
pub mod loadgen;
pub mod pipeline;
pub mod prof;
pub mod qos;
pub mod queue;
pub mod report;
pub mod request;
pub mod scheduler;
pub mod service;
pub mod telemetry;

pub use loadgen::{
    open_loop_schedule, open_loop_templates, run_closed_loop, run_open_loop, OfferedLoad,
    SubmitTemplate, Workload,
};
pub use pipeline::{
    Operand, PipeEstimator, PipelineRequest, PipelineStage, PointwiseOp, ReduceOp, SeededPipeline,
    StageKind,
};
pub use qos::{jain_index, QosConfig, QuotaKind, TenantId, TenantPolicy};
pub use report::{LatencyStats, ServeReport};
pub use request::{
    Completion, PollStatus, Priority, Rejection, RequestId, RequestSpec, SeededSpec, Shape, Ticket,
};
pub use service::{FftService, ServeConfig, ServeConfigBuilder};
pub use telemetry::{
    metrics_json, parse_attr_json, prometheus_text, render_attr_json, validate_metrics_json,
    AttrSummary, Audit, Ledger, LifecycleLog, MetricsRegistry, SloPolicy, SloReport, Stage,
    Telemetry, ATTR_SCHEMA, METRICS_SCHEMA,
};
