//! The adaptive micro-batcher.
//!
//! When a lane frees, the batcher walks the queue in dispatch order, takes
//! the head request's `(shape key, direction, algorithm)` as the batch key
//! and coalesces every queued request sharing it — up to three adaptive
//! caps: a request-count cap, a payload cap (the lane's staging buffers)
//! and a latency budget (the batch must be expected to *finish* within the
//! configured budget, so deep queues grow batches only while per-request
//! amortisation still pays).
//!
//! Batch sizes therefore track queue depth by construction: an idle service
//! dispatches singletons immediately (no waiting for peers — this is a
//! latency-first micro-batcher, not a ticking window), while a backlogged
//! service coalesces everything co-shaped that fits.

use crate::queue::{Pending, SubmitQueue};
use crate::request::ShapeKey;
use crate::telemetry::{LifecycleLog, Stage};
use bifft::plan::Algorithm;
use fft_math::twiddle::Direction;
use std::collections::BTreeMap;

/// What one launch will serve.
#[derive(Debug)]
pub struct Batch {
    /// The coalescing key.
    pub key: BatchKey,
    /// Member requests in dispatch order.
    pub requests: Vec<Pending>,
    /// Total payload elements across members.
    pub elems: usize,
}

/// The full coalescing key: shape x direction x effective algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct BatchKey {
    /// The shape component.
    pub shape: ShapeKey,
    /// True for forward transforms.
    pub forward: bool,
    /// Algorithm rank (see [`algo_rank`]); only meaningful for volumes.
    pub algo: u8,
}

/// A stable small-integer rank for [`Algorithm`] so batch keys are `Ord`.
pub fn algo_rank(a: Algorithm) -> u8 {
    match a {
        Algorithm::FiveStep => 0,
        Algorithm::SixStep => 1,
        Algorithm::CufftLike => 2,
        Algorithm::OutOfCore => 3,
        Algorithm::MultiGpu => 4,
    }
}

/// The inverse of [`algo_rank`].
pub fn rank_algo(rank: u8) -> Algorithm {
    match rank {
        0 => Algorithm::FiveStep,
        1 => Algorithm::SixStep,
        2 => Algorithm::CufftLike,
        3 => Algorithm::OutOfCore,
        _ => Algorithm::MultiGpu,
    }
}

/// Builds the batch key of one request spec under the service default
/// algorithm.
pub fn key_of_spec(spec: &crate::request::RequestSpec, default_algo: Algorithm) -> BatchKey {
    BatchKey {
        shape: spec.shape.key(),
        forward: spec.direction == Direction::Forward,
        algo: algo_rank(spec.algorithm.unwrap_or(default_algo)),
    }
}

/// Builds the batch key of one pending request under the service default
/// algorithm.
pub fn key_of(p: &Pending, default_algo: Algorithm) -> BatchKey {
    key_of_spec(&p.spec, default_algo)
}

/// Caps the batcher adapts within.
#[derive(Clone, Copy, Debug)]
pub struct BatchLimits {
    /// Most requests one launch may serve.
    pub max_requests: usize,
    /// Most payload elements one launch may serve (the staging-slot size
    /// for 1-D rows).
    pub max_elems: usize,
    /// The latency budget: a batch stops growing once its estimated
    /// service time would exceed this many seconds.
    pub latency_budget_s: f64,
}

/// EWMA estimator of per-element service seconds, per batch key.
///
/// Seeded with a pessimistic PCIe-round-trip guess so admission control is
/// conservative before the first observation; every completed batch then
/// pulls the estimate toward measured reality (alpha 0.3). Entirely
/// deterministic — same request sequence, same estimates.
#[derive(Debug)]
pub struct Estimator {
    per_elem_s: BTreeMap<BatchKey, f64>,
    /// Fixed per-launch overhead guess, seconds (PCIe latency both ways).
    overhead_s: f64,
}

/// Same as [`Estimator::new`] — a derived default would zero `overhead_s`
/// and silently skew every estimate.
impl Default for Estimator {
    fn default() -> Self {
        Estimator::new()
    }
}

/// The seed guess: 8 payload bytes each way over ~2 GB/s effective PCIe.
const SEED_PER_ELEM_S: f64 = 8.0e-9;

impl Estimator {
    /// A fresh estimator with the default per-launch overhead guess.
    pub fn new() -> Self {
        Estimator {
            per_elem_s: BTreeMap::new(),
            overhead_s: 20e-6,
        }
    }

    /// Expected service seconds for `elems` payload elements under `key`.
    pub fn estimate_s(&self, key: BatchKey, elems: usize) -> f64 {
        let per = self
            .per_elem_s
            .get(&key)
            .copied()
            .unwrap_or(SEED_PER_ELEM_S);
        self.overhead_s + per * elems as f64
    }

    /// Folds a measured batch service time into the estimate.
    pub fn observe(&mut self, key: BatchKey, elems: usize, service_s: f64) {
        if elems == 0 {
            return;
        }
        let sample = (service_s - self.overhead_s).max(0.0) / elems as f64;
        let e = self.per_elem_s.entry(key).or_insert(SEED_PER_ELEM_S);
        *e += 0.3 * (sample - *e);
    }
}

/// Forms the next batch from the queue head, or `None` on an empty queue.
///
/// `skip` names batch keys that currently cannot be placed (e.g. a volume
/// needing a fully idle card while only one lane is free); the head-of-line
/// bypass then considers the next distinct key in dispatch order.
///
/// Every drained member gets a `Batched` stamp at `now_s` in `log` — the
/// instant coalescing pulled it out of the queue.
pub fn form_batch(
    queue: &mut SubmitQueue,
    limits: &BatchLimits,
    est: &Estimator,
    default_algo: Algorithm,
    skip: &[BatchKey],
    now_s: f64,
    log: &mut LifecycleLog,
) -> Option<Batch> {
    // Find the first queued request whose key is not skipped.
    let head = queue
        .iter()
        .find(|p| !skip.contains(&key_of(p, default_algo)))?;
    let key = key_of(head, default_algo);

    // Grow the member list while every cap holds.
    let mut ids = Vec::new();
    let mut elems = 0usize;
    for p in queue.iter() {
        if key_of(p, default_algo) != key {
            continue;
        }
        let e = p.spec.shape.elems();
        let grown = elems + e;
        let within_caps = ids.len() < limits.max_requests
            && (ids.is_empty() || grown <= limits.max_elems)
            && (ids.is_empty() || est.estimate_s(key, grown) <= limits.latency_budget_s);
        if !within_caps {
            break;
        }
        ids.push(p.id);
        elems = grown;
    }
    debug_assert!(!ids.is_empty(), "head request always fits alone");

    queue.sample_depth();
    let requests = queue.drain_selected(&ids);
    for p in &requests {
        log.record(p.id, Stage::Batched, now_s);
    }
    Some(Batch {
        key,
        requests,
        elems,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Pending;
    use crate::request::{Priority, RequestId, RequestSpec, Shape};
    use fft_math::twiddle::Direction;

    fn limits() -> BatchLimits {
        BatchLimits {
            max_requests: 4,
            max_elems: 1 << 20,
            latency_budget_s: 1.0,
        }
    }

    fn push_rows(q: &mut SubmitQueue, id: u64, n: usize, rows: usize) {
        q.push(Pending {
            id: RequestId(id),
            spec: RequestSpec::seeded(Shape::Rows1d { n, rows }, Direction::Forward, id),
            arrival_s: id as f64 * 1e-6,
            vft: id as f64 * 1e-6,
        });
    }

    #[test]
    fn coalesces_same_shape_up_to_caps() {
        let mut q = SubmitQueue::new(16);
        for id in 0..6 {
            push_rows(&mut q, id, 256, 4);
        }
        let est = Estimator::new();
        let mut log = LifecycleLog::default();
        for id in 0..6 {
            log.start(RequestId(id), "1d256x4".to_string(), 0.0);
        }
        let b = form_batch(
            &mut q,
            &limits(),
            &est,
            Algorithm::FiveStep,
            &[],
            0.5,
            &mut log,
        )
        .unwrap();
        assert_eq!(b.requests.len(), 4, "request cap");
        assert_eq!(b.elems, 4 * 256 * 4);
        assert_eq!(q.depth(), 2, "remainder stays queued");
        for p in &b.requests {
            assert_eq!(log.get(p.id).unwrap().stage_s(Stage::Batched), Some(0.5));
        }
    }

    #[test]
    fn mixed_shapes_do_not_coalesce() {
        let mut q = SubmitQueue::new(16);
        push_rows(&mut q, 0, 256, 4);
        push_rows(&mut q, 1, 128, 4);
        push_rows(&mut q, 2, 256, 4);
        let est = Estimator::new();
        let mut log = LifecycleLog::default();
        let b = form_batch(
            &mut q,
            &limits(),
            &est,
            Algorithm::FiveStep,
            &[],
            0.0,
            &mut log,
        )
        .unwrap();
        let ids: Vec<u64> = b.requests.iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![0, 2], "only same-n rows coalesce");
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn latency_budget_caps_growth() {
        let mut q = SubmitQueue::new(16);
        for id in 0..4 {
            push_rows(&mut q, id, 256, 4);
        }
        let est = Estimator::new();
        let one = est.estimate_s(
            BatchKey {
                shape: ShapeKey::Rows1d { n: 256 },
                forward: true,
                algo: 0,
            },
            2 * 256 * 4,
        );
        let mut tight = limits();
        tight.latency_budget_s = one; // two requests fit, three don't
        let mut log = LifecycleLog::default();
        let b = form_batch(
            &mut q,
            &tight,
            &est,
            Algorithm::FiveStep,
            &[],
            0.0,
            &mut log,
        )
        .unwrap();
        assert_eq!(b.requests.len(), 2);
    }

    #[test]
    fn head_of_line_bypass_skips_unplaceable_keys() {
        let mut q = SubmitQueue::new(16);
        q.push(Pending {
            id: RequestId(0),
            spec: RequestSpec::seeded(
                Shape::Volume {
                    nx: 16,
                    ny: 16,
                    nz: 16,
                },
                Direction::Forward,
                0,
            )
            .priority(Priority::High),
            arrival_s: 0.0,
            vft: 0.0,
        });
        push_rows(&mut q, 1, 256, 4);
        let est = Estimator::new();
        let vol_key = BatchKey {
            shape: ShapeKey::Volume {
                nx: 16,
                ny: 16,
                nz: 16,
            },
            forward: true,
            algo: 0,
        };
        let mut log = LifecycleLog::default();
        let b = form_batch(
            &mut q,
            &limits(),
            &est,
            Algorithm::FiveStep,
            &[vol_key],
            0.0,
            &mut log,
        )
        .unwrap();
        assert_eq!(b.requests[0].id.0, 1, "bypassed the skipped volume");
        assert_eq!(q.depth(), 1, "volume still queued");
    }

    #[test]
    fn estimator_learns_and_stays_deterministic() {
        let key = BatchKey {
            shape: ShapeKey::Rows1d { n: 256 },
            forward: true,
            algo: 0,
        };
        let mut a = Estimator::new();
        let mut b = Estimator::new();
        let before = a.estimate_s(key, 1024);
        for e in [&mut a, &mut b] {
            e.observe(key, 1_000_000, 120e-6);
            e.observe(key, 2_000_000, 200e-6);
        }
        let after = a.estimate_s(key, 1024);
        assert!(after < before, "observations pull the seed down");
        assert_eq!(
            after,
            b.estimate_s(key, 1024),
            "same history, same estimate"
        );
    }
}
