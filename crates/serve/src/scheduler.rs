//! Cards, lanes and the wisdom-backed plan cache — where batches meet
//! hardware.
//!
//! Each simulated card owns `streams_per_card` *lanes*. A lane is one
//! stream plus a dedicated pair of staging buffers, so concurrent batches
//! on one card never touch the same device memory: the §4.4-style overlap
//! (H2D of the next batch under compute of the current one) comes entirely
//! from the per-stream/per-direction engine model, and the PR 4 hazard
//! checker stays clean by construction. With `streams_per_card = 0` the
//! card degrades to one synchronous lane — the serial baseline the
//! acceptance criteria compare against.
//!
//! Plans are cached per `(shape, algorithm, card)`: 1-D row plans and 3-D
//! volume plans both memoise here (and the fine-grained stage search
//! additionally memoises process-wide in [`bifft::wisdom`]), so a hot shape
//! plans once per card and never again.

use bifft::batch::Fft1dBatchGpu;
use bifft::plan::{Algorithm, Fft3d, FftError};
use fft_math::twiddle::Direction;
use fft_math::Complex32;
use gpu_sim::pcie::Dir as PcieDir;
use gpu_sim::{BufferId, DeviceSpec, Gpu, Recorder, StreamId, Trace};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// Hit/miss counters of one card's plan cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Dispatches served by a memoised plan.
    pub hits: u64,
    /// Dispatches that had to plan (and allocate) first.
    pub misses: u64,
}

/// Per-card memo of built plans, keyed by shape (+ algorithm for volumes).
#[derive(Default)]
struct PlanCache {
    one_d: BTreeMap<usize, Fft1dBatchGpu>,
    volumes: BTreeMap<(usize, usize, usize, u8), Fft3d>,
    /// Volume keys this card could not allocate — route to the sharder
    /// without re-trying the allocation every dispatch.
    oversized: BTreeSet<(usize, usize, usize, u8)>,
    stats: PlanCacheStats,
}

impl PlanCache {
    fn batch1d<'c>(&'c mut self, gpu: &mut Gpu, n: usize) -> Result<&'c Fft1dBatchGpu, FftError> {
        if let std::collections::btree_map::Entry::Vacant(e) = self.one_d.entry(n) {
            self.stats.misses += 1;
            e.insert(Fft1dBatchGpu::new(gpu, n)?);
        } else {
            self.stats.hits += 1;
        }
        Ok(&self.one_d[&n])
    }

    /// `Ok(None)` means the volume does not fit this card (sharder's job).
    fn volume<'c>(
        &'c mut self,
        gpu: &mut Gpu,
        dims: (usize, usize, usize),
        algo: Algorithm,
        algo_rank: u8,
    ) -> Result<Option<&'c Fft3d>, FftError> {
        let key = (dims.0, dims.1, dims.2, algo_rank);
        if self.oversized.contains(&key) {
            self.stats.hits += 1;
            return Ok(None);
        }
        if !self.volumes.contains_key(&key) {
            self.stats.misses += 1;
            match Fft3d::builder(dims.0, dims.1, dims.2)
                .algorithm(algo)
                .build(gpu)
            {
                Ok(plan) => {
                    self.volumes.insert(key, plan);
                }
                Err(FftError::Alloc(_)) => {
                    self.oversized.insert(key);
                    return Ok(None);
                }
                Err(e) => return Err(e),
            }
        } else {
            self.stats.hits += 1;
        }
        Ok(Some(&self.volumes[&key]))
    }
}

/// One dispatch slot: a stream (or the synchronous timeline) plus its
/// dedicated staging buffers.
#[derive(Debug)]
pub struct Lane {
    stream: Option<StreamId>,
    src: BufferId,
    dst: BufferId,
    /// When the lane's last batch completes, simulated seconds.
    pub busy_until_s: f64,
}

/// What a finished rows-batch dispatch reports back. The phase times are
/// pure observations of the stream/clock state the dispatch already
/// produced — reading them never advances the simulation.
pub struct RowsOutcome {
    /// When the batch's plan was ready (cache hit: immediately; miss: after
    /// the build), simulated seconds.
    pub plan_ready_s: f64,
    /// When the batch's H2D staging *starts* moving bytes — the engine
    /// model's `max(stream ready, copy engine free, host clock)` — so the
    /// ledger can split staging-slot wait from transfer time.
    pub h2d_start_s: f64,
    /// When the batch's H2D staging lands, simulated seconds.
    pub h2d_done_s: f64,
    /// When the batched kernel finishes, simulated seconds.
    pub compute_done_s: f64,
    /// When the batch's D2H lands, simulated seconds.
    pub completion_s: f64,
    /// The sim-prof span that wraps the launch (lifecycle cross-link).
    pub span: String,
    /// Per-request outputs (same order as the batch), when kept.
    pub outputs: Option<Vec<Vec<Complex32>>>,
}

/// What a finished volume-batch dispatch reports back.
pub struct VolumesOutcome {
    /// When the batch's plan was ready (shared by every member), simulated
    /// seconds.
    pub plan_ready_s: f64,
    /// Per-request H2D start times (batch order): when the link began the
    /// member's upload, after any queued transfers drained.
    pub h2d_starts_s: Vec<f64>,
    /// Per-request H2D completion times (batch order).
    pub h2d_done_s: Vec<f64>,
    /// Per-request transform completion times (batch order).
    pub compute_done_s: Vec<f64>,
    /// Per-request completion times (the batch executes back-to-back on
    /// the card, so members finish at different times).
    pub completions_s: Vec<f64>,
    /// The sim-prof span that wraps the launch (lifecycle cross-link).
    pub span: String,
    /// Per-request outputs, when kept.
    pub outputs: Option<Vec<Vec<Complex32>>>,
}

/// One simulated card with its lanes and plan cache.
pub struct Card {
    /// The card's index in the service.
    pub index: usize,
    /// The simulated device.
    pub gpu: Gpu,
    cache: PlanCache,
    lanes: Vec<Lane>,
    slot_elems: usize,
    recorder: Option<Rc<RefCell<Recorder>>>,
}

impl Card {
    /// Brings up card `index`: `streams_per_card` stream lanes (0 = one
    /// synchronous lane), each with `slot_elems`-element staging buffers.
    pub fn new(
        spec: &DeviceSpec,
        index: usize,
        streams_per_card: usize,
        slot_elems: usize,
        check: bool,
    ) -> Result<Self, FftError> {
        let mut gpu = Gpu::new(*spec);
        if check {
            gpu.check_enable();
        }
        let n_lanes = streams_per_card.max(1);
        let mut lanes = Vec::with_capacity(n_lanes);
        for _ in 0..n_lanes {
            let stream = (streams_per_card > 0).then(|| gpu.stream_create());
            let src = gpu.mem_mut().alloc(slot_elems)?;
            let dst = gpu.mem_mut().alloc(slot_elems)?;
            lanes.push(Lane {
                stream,
                src,
                dst,
                busy_until_s: 0.0,
            });
        }
        Ok(Card {
            index,
            gpu,
            cache: PlanCache::default(),
            lanes,
            slot_elems,
            recorder: None,
        })
    }

    /// Installs a sim-prof recorder on the card's device so kernel, PCIe
    /// and span events accumulate into a per-card trace. Idempotent.
    pub fn enable_trace(&mut self) {
        if self.recorder.is_none() {
            self.recorder = Some(self.gpu.install_recorder());
        }
    }

    /// Drains the card's accumulated trace, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.recorder.as_ref().map(|r| r.borrow_mut().take_trace())
    }

    /// The card's lanes (scheduling state).
    pub fn lanes(&self) -> &[Lane] {
        &self.lanes
    }

    /// Earliest time any lane is free.
    pub fn earliest_free_s(&self) -> f64 {
        self.lanes
            .iter()
            .map(|l| l.busy_until_s)
            .fold(f64::INFINITY, f64::min)
    }

    /// Latest busy-until over the card's lanes.
    pub fn all_free_s(&self) -> f64 {
        self.lanes
            .iter()
            .map(|l| l.busy_until_s)
            .fold(0.0, f64::max)
    }

    /// Index of a lane free at `now_s`, lowest index first.
    pub fn free_lane_at(&self, now_s: f64) -> Option<usize> {
        self.lanes.iter().position(|l| l.busy_until_s <= now_s)
    }

    /// Marks every lane busy until `t_s` (a whole-card dispatch).
    pub fn occupy_all(&mut self, t_s: f64) {
        for l in &mut self.lanes {
            l.busy_until_s = l.busy_until_s.max(t_s);
        }
    }

    /// Plan-cache counters.
    pub fn cache_stats(&self) -> PlanCacheStats {
        self.cache.stats
    }

    /// Whether this card already memoised the 1-D rows plan for length
    /// `n` — placement uses this to prefer a warm card over a cold one.
    pub fn has_rows_plan(&self, n: usize) -> bool {
        self.cache.one_d.contains_key(&n)
    }

    /// Aborts the batch occupying lane `lane_idx` at `safe_s`, the next
    /// stream-safe point (an H2D or kernel phase boundary the dispatch
    /// already recorded). The lane frees at `safe_s` and gets a **fresh
    /// stream and staging pair**: the aborted dispatch's remaining
    /// transfers are still modeled on the old stream/buffers, so reusing
    /// either would race them. The old buffers stay allocated for the same
    /// reason — preemption trades a staging slot of device memory for the
    /// reclaimed lane time.
    ///
    /// # Errors
    /// [`FftError::Alloc`] when the card cannot stage a fresh buffer pair;
    /// the lane is left untouched and the caller must skip the preemption.
    ///
    /// # Panics
    /// When the lane is synchronous (no stream): there is no safe point to
    /// abort at on the blocking timeline, and the service never tries.
    pub fn preempt_lane(&mut self, lane_idx: usize, safe_s: f64) -> Result<(), FftError> {
        assert!(
            self.lanes[lane_idx].stream.is_some(),
            "preempting a synchronous lane"
        );
        let src = self.gpu.mem_mut().alloc(self.slot_elems)?;
        let dst = match self.gpu.mem_mut().alloc(self.slot_elems) {
            Ok(b) => b,
            Err(e) => {
                self.gpu.mem_mut().free(src);
                return Err(e.into());
            }
        };
        let stream = self.gpu.stream_create();
        let lane = &mut self.lanes[lane_idx];
        lane.stream = Some(stream);
        lane.src = src;
        lane.dst = dst;
        lane.busy_until_s = safe_s;
        Ok(())
    }

    /// Compute utilization over `makespan_s` (engine-busy seconds over
    /// elapsed seconds, clamped to `[0, 1]`).
    pub fn utilization(&self, makespan_s: f64) -> f64 {
        if makespan_s <= 0.0 {
            0.0
        } else {
            (self.gpu.compute_busy_s() / makespan_s).clamp(0.0, 1.0)
        }
    }

    /// Copy-engine utilization over `makespan_s`: both DMA engines' busy
    /// seconds over the time both could have been busy, clamped to
    /// `[0, 1]`.
    pub fn copy_utilization(&self, makespan_s: f64) -> f64 {
        if makespan_s <= 0.0 {
            0.0
        } else {
            let (up, down) = self.gpu.copy_busy_s();
            ((up + down) / (2.0 * makespan_s)).clamp(0.0, 1.0)
        }
    }

    /// Runs one coalesced batch of `n`-point rows on lane `lane_idx`, with
    /// `payloads` concatenated in batch order. Returns the completion time
    /// (one batch = one D2H, so every member completes together).
    ///
    /// # Errors
    /// Plan-construction errors propagate ([`FftError::BadPlanConfig`] for
    /// unsupported lengths).
    ///
    /// # Panics
    /// When the concatenated payload exceeds the lane's staging slot (the
    /// batcher's `max_elems` must match the slot size).
    pub fn dispatch_rows(
        &mut self,
        lane_idx: usize,
        n: usize,
        payloads: &[&[Complex32]],
        dir: Direction,
        now_s: f64,
        keep_outputs: bool,
    ) -> Result<RowsOutcome, FftError> {
        let total: usize = payloads.iter().map(|p| p.len()).sum();
        let rows = total / n;
        let mut host = Vec::with_capacity(total);
        for p in payloads {
            debug_assert_eq!(p.len() % n, 0);
            host.extend_from_slice(p);
        }
        let lane = &self.lanes[lane_idx];
        let (src, dst, stream) = (lane.src, lane.dst, lane.stream);
        let bytes = total as u64 * 8;
        self.gpu.wait_until(now_s);
        let span = format!("serve_rows_{n}x{rows}_c{}l{}", self.index, lane_idx);
        self.gpu.span_begin(&span);
        let plan = self.cache.batch1d(&mut self.gpu, n)?;
        let plan_ready_s = self.gpu.clock_s();
        let label_up = format!("serve_h2d_c{}l{}", self.index, lane_idx);
        let label_down = format!("serve_d2h_c{}l{}", self.index, lane_idx);
        let mut out = vec![Complex32::ZERO; total];
        // The phase stamps are pure reads of state the dispatch already
        // created (stream-ready probes, the host clock) — recording them
        // cannot move any timeline.
        let (h2d_start_s, h2d_done_s, compute_done_s, completion_s) = match stream {
            Some(s) => {
                // Mirror of the engine model's issue rule: a stream copy
                // starts at max(stream ready, copy engine free, host clock).
                let h2d_start = self
                    .gpu
                    .stream_ready_s(s)
                    .max(self.gpu.copy_engine_free_s(PcieDir::H2D))
                    .max(self.gpu.clock_s());
                self.gpu.memcpy_h2d_async(s, src, 0, &host, 1, &label_up);
                let h2d = self.gpu.stream_ready_s(s);
                self.gpu
                    .with_stream(s, |g| plan.execute(g, src, dst, rows, dir));
                let compute = self.gpu.stream_ready_s(s);
                self.gpu
                    .memcpy_d2h_async(s, dst, 0, &mut out, 1, &label_down);
                (h2d_start, h2d, compute, self.gpu.stream_ready_s(s))
            }
            None => {
                let h2d_start = self.gpu.clock_s().max(self.gpu.pcie_busy_until_s());
                self.gpu.pcie_transfer(PcieDir::H2D, bytes, 1, &label_up);
                self.gpu.mem_mut().upload(src, 0, &host);
                let h2d = self.gpu.clock_s();
                plan.execute(&mut self.gpu, src, dst, rows, dir);
                let compute = self.gpu.clock_s();
                self.gpu.pcie_transfer(PcieDir::D2H, bytes, 1, &label_down);
                self.gpu.mem().download(dst, 0, &mut out);
                (h2d_start, h2d, compute, self.gpu.clock_s())
            }
        };
        self.gpu.span_end(&span);
        self.lanes[lane_idx].busy_until_s = completion_s;
        let outputs = keep_outputs.then(|| {
            let mut cut = Vec::with_capacity(payloads.len());
            let mut at = 0;
            for p in payloads {
                cut.push(out[at..at + p.len()].to_vec());
                at += p.len();
            }
            cut
        });
        Ok(RowsOutcome {
            plan_ready_s,
            h2d_start_s,
            h2d_done_s,
            compute_done_s,
            completion_s,
            span,
            outputs,
        })
    }

    /// Runs a batch of same-shape 3-D volumes back-to-back on the card's
    /// synchronous timeline (volumes occupy the whole card — the caller
    /// must [`Card::occupy_all`] with the last completion). Returns
    /// `Ok(None)` when the volume does not fit the card, in which case the
    /// service routes the batch to the multi-GPU sharder.
    ///
    /// # Errors
    /// Shape-validation errors from the planner propagate.
    pub fn dispatch_volumes(
        &mut self,
        dims: (usize, usize, usize),
        algo: (Algorithm, u8),
        payloads: &[&[Complex32]],
        dir: Direction,
        now_s: f64,
        keep_outputs: bool,
    ) -> Result<Option<VolumesOutcome>, FftError> {
        self.gpu.wait_until(now_s);
        let Some(plan) = self.cache.volume(&mut self.gpu, dims, algo.0, algo.1)? else {
            return Ok(None);
        };
        let plan_ready_s = self.gpu.clock_s();
        let span = format!("serve_vol_{}x{}x{}_c{}", dims.0, dims.1, dims.2, self.index);
        self.gpu.span_begin(&span);
        let bytes = (dims.0 * dims.1 * dims.2) as u64 * 8;
        let label_up = format!("serve_vol_h2d_c{}", self.index);
        let label_down = format!("serve_vol_d2h_c{}", self.index);
        let mut h2d_starts = Vec::with_capacity(payloads.len());
        let mut h2d_done = Vec::with_capacity(payloads.len());
        let mut compute_done = Vec::with_capacity(payloads.len());
        let mut completions = Vec::with_capacity(payloads.len());
        let mut outputs = keep_outputs.then(Vec::new);
        for payload in payloads {
            h2d_starts.push(self.gpu.clock_s().max(self.gpu.pcie_busy_until_s()));
            self.gpu.pcie_transfer(PcieDir::H2D, bytes, 1, &label_up);
            h2d_done.push(self.gpu.clock_s());
            let (out, _rep) = plan.transform(&mut self.gpu, payload, dir)?;
            compute_done.push(self.gpu.clock_s());
            self.gpu.pcie_transfer(PcieDir::D2H, bytes, 1, &label_down);
            completions.push(self.gpu.clock_s());
            if let Some(o) = &mut outputs {
                o.push(out);
            }
        }
        self.gpu.span_end(&span);
        Ok(Some(VolumesOutcome {
            plan_ready_s,
            h2d_starts_s: h2d_starts,
            h2d_done_s: h2d_done,
            compute_done_s: compute_done,
            completions_s: completions,
            span,
            outputs,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft_math::error::rel_l2_error_f32;
    use fft_math::fft1d::fft_pow2;
    use fft_math::rng::SplitMix64;

    fn rows_payload(n: usize, rows: usize, seed: u64) -> Vec<Complex32> {
        let mut rng = SplitMix64::new(seed);
        (0..n * rows)
            .map(|_| Complex32::new(rng.uniform_f32(-1.0, 1.0), rng.uniform_f32(-1.0, 1.0)))
            .collect()
    }

    #[test]
    fn stream_lanes_overlap_and_match_reference() {
        let mut card = Card::new(&DeviceSpec::gts8800(), 0, 2, 1 << 16, false).unwrap();
        let a = rows_payload(256, 8, 1);
        let b = rows_payload(256, 8, 2);
        let ra = card
            .dispatch_rows(0, 256, &[&a], Direction::Forward, 0.0, true)
            .unwrap();
        let rb = card
            .dispatch_rows(1, 256, &[&b], Direction::Forward, 0.0, true)
            .unwrap();
        // Lane 1's upload overlaps lane 0's compute: it finishes before the
        // serial sum of both batches would.
        assert!(rb.completion_s > ra.completion_s);
        for r in [&ra, &rb] {
            assert!(r.h2d_done_s <= r.compute_done_s);
            assert!(r.compute_done_s <= r.completion_s);
        }
        assert_eq!(ra.span, "serve_rows_256x8_c0l0");
        let serial = 2.0 * ra.completion_s;
        assert!(
            rb.completion_s < serial,
            "overlap: {} vs serial {serial}",
            rb.completion_s
        );
        for (payload, outcome) in [(&a, &ra), (&b, &rb)] {
            let out = &outcome.outputs.as_ref().unwrap()[0];
            for r in 0..8 {
                let mut want = payload[r * 256..(r + 1) * 256].to_vec();
                fft_pow2(&mut want, Direction::Forward);
                assert!(rel_l2_error_f32(&out[r * 256..(r + 1) * 256], &want) < 1e-5);
            }
        }
        assert_eq!(card.cache_stats().misses, 1);
        assert_eq!(card.cache_stats().hits, 1);
    }

    #[test]
    fn sync_lane_serializes() {
        let mut card = Card::new(&DeviceSpec::gts8800(), 0, 0, 1 << 16, false).unwrap();
        let a = rows_payload(256, 8, 1);
        let r1 = card
            .dispatch_rows(0, 256, &[&a], Direction::Forward, 0.0, false)
            .unwrap();
        let r2 = card
            .dispatch_rows(0, 256, &[&a], Direction::Forward, r1.completion_s, false)
            .unwrap();
        let d1 = r1.completion_s;
        let d2 = r2.completion_s - r1.completion_s;
        assert!((d1 - d2).abs() < 0.05 * d1, "equal batches take equal time");
    }

    #[test]
    fn volume_cache_hits_and_oversize_detection() {
        // A 4 MiB card: a 64^3 plan needs two 2 MiB buffers plus staging,
        // so it cannot fit; 16^3 fits fine.
        let mut spec = DeviceSpec::gts8800();
        spec.memory_bytes = 4 << 20;
        let mut card = Card::new(&spec, 0, 1, 1 << 10, false).unwrap();
        let small = rows_payload(16 * 16 * 16, 1, 3);
        let got = card
            .dispatch_volumes(
                (16, 16, 16),
                (Algorithm::FiveStep, 0),
                &[&small, &small],
                Direction::Forward,
                0.0,
                false,
            )
            .unwrap()
            .expect("16^3 fits");
        assert_eq!(got.completions_s.len(), 2);
        assert!(got.completions_s[0] < got.completions_s[1]);
        for i in 0..2 {
            assert!(got.h2d_done_s[i] <= got.compute_done_s[i]);
            assert!(got.compute_done_s[i] <= got.completions_s[i]);
        }
        assert_eq!(got.span, "serve_vol_16x16x16_c0");
        assert_eq!(card.cache_stats().misses, 1, "one plan for two transforms");

        let big = rows_payload(64 * 64 * 64, 1, 4);
        let none = card
            .dispatch_volumes(
                (64, 64, 64),
                (Algorithm::FiveStep, 0),
                &[&big],
                Direction::Forward,
                0.0,
                false,
            )
            .unwrap();
        assert!(none.is_none(), "64^3 routes to the sharder");
        // The oversize verdict is memoised: no second allocation attempt.
        let misses = card.cache_stats().misses;
        let _ = card
            .dispatch_volumes(
                (64, 64, 64),
                (Algorithm::FiveStep, 0),
                &[&big],
                Direction::Forward,
                0.0,
                false,
            )
            .unwrap();
        assert_eq!(card.cache_stats().misses, misses);
    }
}
