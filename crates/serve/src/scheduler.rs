//! Cards, lanes and the wisdom-backed plan cache — where batches meet
//! hardware.
//!
//! Each simulated card owns `streams_per_card` *lanes*. A lane is one
//! stream plus a dedicated pair of staging buffers, so concurrent batches
//! on one card never touch the same device memory: the §4.4-style overlap
//! (H2D of the next batch under compute of the current one) comes entirely
//! from the per-stream/per-direction engine model, and the PR 4 hazard
//! checker stays clean by construction. With `streams_per_card = 0` the
//! card degrades to one synchronous lane — the serial baseline the
//! acceptance criteria compare against.
//!
//! Plans are cached per `(shape, algorithm, card)`: 1-D row plans and 3-D
//! volume plans both memoise here (and the fine-grained stage search
//! additionally memoises process-wide in [`bifft::wisdom`]), so a hot shape
//! plans once per card and never again.

use crate::pipeline::{consumer_counts, Operand, PipelineStage, PointwiseOp, ReduceOp, StageKind};
use bifft::batch::Fft1dBatchGpu;
use bifft::elementwise::{run_argmax_norm, run_energy, run_pointwise_mul, run_scale};
use bifft::five_step::FiveStepFft;
use bifft::plan::{Algorithm, Fft3d, FftError};
use fft_math::twiddle::Direction;
use fft_math::Complex32;
use gpu_sim::pcie::Dir as PcieDir;
use gpu_sim::{BufferId, DeviceSpec, Gpu, Recorder, StreamId, Trace};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// Hit/miss counters of one card's plan cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Dispatches served by a memoised plan.
    pub hits: u64,
    /// Dispatches that had to plan (and allocate) first.
    pub misses: u64,
}

/// Counters of one card's residency ledger — how the pipeline executor's
/// device-resident slots behaved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResidencyStats {
    /// Operand reads served from a device-resident slot (no transfer).
    pub hits: u64,
    /// Operand reads that had to move bytes up first (initial input
    /// uploads and post-spill reloads).
    pub misses: u64,
    /// Slots spilled to host under memory pressure.
    pub evictions: u64,
}

impl ResidencyStats {
    /// Folds another run's counters in.
    pub fn absorb(&mut self, other: ResidencyStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

/// A planned pipeline engine for one volume shape: the forward five-step
/// plan, the split-swapped chained inverse (so forward output feeds the
/// inverse with no relayout), and a shared scratch buffer.
struct PipePlan {
    fwd: FiveStepFft,
    inv: FiveStepFft,
    work: BufferId,
}

/// Per-card memo of built plans, keyed by shape (+ algorithm for volumes).
#[derive(Default)]
struct PlanCache {
    one_d: BTreeMap<usize, Fft1dBatchGpu>,
    volumes: BTreeMap<(usize, usize, usize, u8), Fft3d>,
    pipes: BTreeMap<(usize, usize, usize), PipePlan>,
    /// Volume keys this card could not allocate — route to the sharder
    /// without re-trying the allocation every dispatch.
    oversized: BTreeSet<(usize, usize, usize, u8)>,
    stats: PlanCacheStats,
}

impl PlanCache {
    fn batch1d<'c>(&'c mut self, gpu: &mut Gpu, n: usize) -> Result<&'c Fft1dBatchGpu, FftError> {
        if let std::collections::btree_map::Entry::Vacant(e) = self.one_d.entry(n) {
            self.stats.misses += 1;
            e.insert(Fft1dBatchGpu::new(gpu, n)?);
        } else {
            self.stats.hits += 1;
        }
        Ok(&self.one_d[&n])
    }

    /// `Ok(None)` means the volume does not fit this card (sharder's job).
    fn volume<'c>(
        &'c mut self,
        gpu: &mut Gpu,
        dims: (usize, usize, usize),
        algo: Algorithm,
        algo_rank: u8,
    ) -> Result<Option<&'c Fft3d>, FftError> {
        let key = (dims.0, dims.1, dims.2, algo_rank);
        if self.oversized.contains(&key) {
            self.stats.hits += 1;
            return Ok(None);
        }
        if !self.volumes.contains_key(&key) {
            self.stats.misses += 1;
            match Fft3d::builder(dims.0, dims.1, dims.2)
                .algorithm(algo)
                .build(gpu)
            {
                Ok(plan) => {
                    self.volumes.insert(key, plan);
                }
                Err(FftError::Alloc(_)) => {
                    self.oversized.insert(key);
                    return Ok(None);
                }
                Err(e) => return Err(e),
            }
        } else {
            self.stats.hits += 1;
        }
        Ok(Some(&self.volumes[&key]))
    }

    /// The pipeline engine for `dims`, planning (and allocating scratch) on
    /// first use. Unlike single volumes, a pipeline that cannot even stage
    /// its scratch has nowhere to shard to — the `Alloc` error propagates
    /// and the service fails the request.
    fn pipeline<'c>(
        &'c mut self,
        gpu: &mut Gpu,
        dims: (usize, usize, usize),
    ) -> Result<&'c PipePlan, FftError> {
        if !self.pipes.contains_key(&dims) {
            self.stats.misses += 1;
            let fwd = FiveStepFft::new(gpu, dims.0, dims.1, dims.2);
            let inv = fwd.inverse_chained(gpu);
            let work = gpu.mem_mut().alloc(fwd.volume())?;
            self.pipes.insert(dims, PipePlan { fwd, inv, work });
        } else {
            self.stats.hits += 1;
        }
        Ok(&self.pipes[&dims])
    }
}

/// One dispatch slot: a stream (or the synchronous timeline) plus its
/// dedicated staging buffers.
#[derive(Debug)]
pub struct Lane {
    stream: Option<StreamId>,
    src: BufferId,
    dst: BufferId,
    /// When the lane's last batch completes, simulated seconds.
    pub busy_until_s: f64,
}

/// What a finished rows-batch dispatch reports back. The phase times are
/// pure observations of the stream/clock state the dispatch already
/// produced — reading them never advances the simulation.
pub struct RowsOutcome {
    /// When the batch's plan was ready (cache hit: immediately; miss: after
    /// the build), simulated seconds.
    pub plan_ready_s: f64,
    /// When the batch's H2D staging *starts* moving bytes — the engine
    /// model's `max(stream ready, copy engine free, host clock)` — so the
    /// ledger can split staging-slot wait from transfer time.
    pub h2d_start_s: f64,
    /// When the batch's H2D staging lands, simulated seconds.
    pub h2d_done_s: f64,
    /// When the batched kernel finishes, simulated seconds.
    pub compute_done_s: f64,
    /// When the batch's D2H lands, simulated seconds.
    pub completion_s: f64,
    /// The sim-prof span that wraps the launch (lifecycle cross-link).
    pub span: String,
    /// Per-request outputs (same order as the batch), when kept.
    pub outputs: Option<Vec<Vec<Complex32>>>,
}

/// What a finished volume-batch dispatch reports back.
pub struct VolumesOutcome {
    /// When the batch's plan was ready (shared by every member), simulated
    /// seconds.
    pub plan_ready_s: f64,
    /// Per-request H2D start times (batch order): when the link began the
    /// member's upload, after any queued transfers drained.
    pub h2d_starts_s: Vec<f64>,
    /// Per-request H2D completion times (batch order).
    pub h2d_done_s: Vec<f64>,
    /// Per-request transform completion times (batch order).
    pub compute_done_s: Vec<f64>,
    /// Per-request completion times (the batch executes back-to-back on
    /// the card, so members finish at different times).
    pub completions_s: Vec<f64>,
    /// The sim-prof span that wraps the launch (lifecycle cross-link).
    pub span: String,
    /// Per-request outputs, when kept.
    pub outputs: Option<Vec<Vec<Complex32>>>,
}

/// What a finished pipeline dispatch reports back. Like the other outcome
/// structs, every phase time is a pure observation of state the dispatch
/// already produced.
pub struct PipelineOutcome {
    /// When the pipeline engine (both FFT plans + scratch) was ready.
    pub plan_ready_s: f64,
    /// When the first input upload began moving bytes.
    pub h2d_start_s: f64,
    /// When the last upward transfer (input upload or spill reload) landed.
    pub h2d_done_s: f64,
    /// When the last stage's kernels finished.
    pub compute_done_s: f64,
    /// When each stage's kernels finished, stage order — the boundaries
    /// the service's per-stage-kind EWMA estimator learns from.
    pub stage_done_s: Vec<f64>,
    /// When the result download landed — the pipeline's completion.
    pub completion_s: f64,
    /// Bytes that actually crossed PCIe upward (inputs + spill reloads).
    pub h2d_bytes: u64,
    /// Bytes that actually crossed PCIe downward (result + spills).
    pub d2h_bytes: u64,
    /// Seconds of stage compute whose operands were *all* served from
    /// device-resident slots — the attribution ledger's `resident` split.
    pub resident_s: f64,
    /// This run's residency counters.
    pub residency: ResidencyStats,
    /// The sim-prof span that wraps the run (lifecycle cross-link).
    pub span: String,
    /// The final stage's value in natural order — a full volume, or for a
    /// terminal reduce the 2-element `[(value, 0), (idx_lo, idx_hi)]`
    /// encoding (16-bit index halves, exact in `f32`). An argmax index is
    /// the **natural-order** linear index, never the card's packed-layout
    /// one — clients have no way to undo a card-side packing.
    pub output: Vec<Complex32>,
}

/// One refcounted residency slot: a pipeline value that is device-resident
/// (`buf`), spilled to host (`host`), or not yet materialised (an input
/// still waiting for its first read).
struct Slot {
    buf: Option<BufferId>,
    host: Option<Vec<Complex32>>,
    refs: u32,
    last_use: u64,
    /// True when the value sits in the forward plan's *output* layout.
    out_layout: bool,
}

/// Transfer/residency bookkeeping one pipeline run threads through the
/// slot helpers (free functions, so the plan borrow on the cache can stay
/// alive across them).
struct PipeRun {
    vol: usize,
    bytes: u64,
    stats: ResidencyStats,
    h2d_bytes: u64,
    d2h_bytes: u64,
    h2d_start_s: Option<f64>,
    h2d_done_s: f64,
    tick: u64,
    label_up: String,
    label_down: String,
}

impl PipeRun {
    /// Ensures slot `i` is device-resident, uploading (and spilling others
    /// under pressure) as needed; returns its buffer.
    fn touch(
        &mut self,
        gpu: &mut Gpu,
        slots: &mut [Slot],
        i: usize,
        pinned: &[usize],
    ) -> Result<BufferId, FftError> {
        self.tick += 1;
        slots[i].last_use = self.tick;
        if let Some(b) = slots[i].buf {
            self.stats.hits += 1;
            return Ok(b);
        }
        self.stats.misses += 1;
        let b = self.alloc(gpu, slots, pinned)?;
        let host = slots[i]
            .host
            .take()
            .expect("a non-resident slot holds a host copy");
        let start = gpu.clock_s().max(gpu.pcie_busy_until_s());
        self.h2d_start_s.get_or_insert(start);
        gpu.pcie_transfer(PcieDir::H2D, self.bytes, 1, &self.label_up);
        gpu.mem_mut().upload(b, 0, &host);
        self.h2d_done_s = gpu.clock_s();
        self.h2d_bytes += self.bytes;
        slots[i].buf = Some(b);
        Ok(b)
    }

    /// Allocates a volume-sized buffer, spilling least-recently-used live
    /// slots to host until the allocation fits (the residency ledger's
    /// under-pressure path).
    fn alloc(
        &mut self,
        gpu: &mut Gpu,
        slots: &mut [Slot],
        pinned: &[usize],
    ) -> Result<BufferId, FftError> {
        loop {
            match gpu.mem_mut().alloc(self.vol) {
                Ok(b) => return Ok(b),
                Err(e) => {
                    let victim = slots
                        .iter()
                        .enumerate()
                        .filter(|(j, s)| s.buf.is_some() && s.refs > 0 && !pinned.contains(j))
                        .min_by_key(|(_, s)| s.last_use)
                        .map(|(j, _)| j);
                    let Some(j) = victim else {
                        return Err(e.into());
                    };
                    let buf = slots[j].buf.take().expect("victim is resident");
                    let mut host = vec![Complex32::ZERO; self.vol];
                    gpu.pcie_transfer(PcieDir::D2H, self.bytes, 1, &self.label_down);
                    gpu.mem().download(buf, 0, &mut host);
                    gpu.mem_mut().free(buf);
                    slots[j].host = Some(host);
                    self.d2h_bytes += self.bytes;
                    self.stats.evictions += 1;
                }
            }
        }
    }

    /// Drops one reference to slot `i`; frees its buffer when it was the
    /// last **unless** the buffer index is `keep` (it was handed to the
    /// next stage's value in place).
    fn release(&mut self, gpu: &mut Gpu, slots: &mut [Slot], i: usize, keep: Option<BufferId>) {
        slots[i].refs -= 1;
        if slots[i].refs == 0 {
            if let Some(b) = slots[i].buf.take() {
                if keep == Some(b) {
                    return;
                }
                gpu.mem_mut().free(b);
            }
            slots[i].host = None;
        }
    }
}

/// Maps an index into the five-step plan's packed device layout back to
/// the natural-order linear index (`x` fastest, then `y`, then `z`) —
/// the served twin of `apps::GpuCorrelator::unpack_index`, covering both
/// packings a reduce operand can sit in.
fn natural_index(
    l: &fft_math::layout::FiveStepPlanLayout,
    dims: (usize, usize, usize),
    packed: usize,
    out_layout: bool,
) -> usize {
    let mut i = 0;
    for z in 0..dims.2 {
        for y in 0..dims.1 {
            for x in 0..dims.0 {
                let p = if out_layout {
                    l.output_index(x, y, z)
                } else {
                    l.input_index(x, y, z)
                };
                if p == packed {
                    return i;
                }
                i += 1;
            }
        }
    }
    unreachable!("a packed index maps to a voxel")
}

/// One simulated card with its lanes and plan cache.
pub struct Card {
    /// The card's index in the service.
    pub index: usize,
    /// The simulated device.
    pub gpu: Gpu,
    cache: PlanCache,
    lanes: Vec<Lane>,
    slot_elems: usize,
    residency: ResidencyStats,
    recorder: Option<Rc<RefCell<Recorder>>>,
}

impl Card {
    /// Brings up card `index`: `streams_per_card` stream lanes (0 = one
    /// synchronous lane), each with `slot_elems`-element staging buffers.
    pub fn new(
        spec: &DeviceSpec,
        index: usize,
        streams_per_card: usize,
        slot_elems: usize,
        check: bool,
    ) -> Result<Self, FftError> {
        let mut gpu = Gpu::new(*spec);
        if check {
            gpu.check_enable();
        }
        let n_lanes = streams_per_card.max(1);
        let mut lanes = Vec::with_capacity(n_lanes);
        for _ in 0..n_lanes {
            let stream = (streams_per_card > 0).then(|| gpu.stream_create());
            let src = gpu.mem_mut().alloc(slot_elems)?;
            let dst = gpu.mem_mut().alloc(slot_elems)?;
            lanes.push(Lane {
                stream,
                src,
                dst,
                busy_until_s: 0.0,
            });
        }
        Ok(Card {
            index,
            gpu,
            cache: PlanCache::default(),
            lanes,
            slot_elems,
            residency: ResidencyStats::default(),
            recorder: None,
        })
    }

    /// Lifetime residency-ledger counters for this card.
    pub fn residency_stats(&self) -> ResidencyStats {
        self.residency
    }

    /// Installs a sim-prof recorder on the card's device so kernel, PCIe
    /// and span events accumulate into a per-card trace. Idempotent.
    pub fn enable_trace(&mut self) {
        if self.recorder.is_none() {
            self.recorder = Some(self.gpu.install_recorder());
        }
    }

    /// Drains the card's accumulated trace, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.recorder.as_ref().map(|r| r.borrow_mut().take_trace())
    }

    /// The card's lanes (scheduling state).
    pub fn lanes(&self) -> &[Lane] {
        &self.lanes
    }

    /// Earliest time any lane is free.
    pub fn earliest_free_s(&self) -> f64 {
        self.lanes
            .iter()
            .map(|l| l.busy_until_s)
            .fold(f64::INFINITY, f64::min)
    }

    /// Latest busy-until over the card's lanes.
    pub fn all_free_s(&self) -> f64 {
        self.lanes
            .iter()
            .map(|l| l.busy_until_s)
            .fold(0.0, f64::max)
    }

    /// Index of a lane free at `now_s`, lowest index first.
    pub fn free_lane_at(&self, now_s: f64) -> Option<usize> {
        self.lanes.iter().position(|l| l.busy_until_s <= now_s)
    }

    /// Marks every lane busy until `t_s` (a whole-card dispatch).
    pub fn occupy_all(&mut self, t_s: f64) {
        for l in &mut self.lanes {
            l.busy_until_s = l.busy_until_s.max(t_s);
        }
    }

    /// Plan-cache counters.
    pub fn cache_stats(&self) -> PlanCacheStats {
        self.cache.stats
    }

    /// Whether this card already memoised the 1-D rows plan for length
    /// `n` — placement uses this to prefer a warm card over a cold one.
    pub fn has_rows_plan(&self, n: usize) -> bool {
        self.cache.one_d.contains_key(&n)
    }

    /// Aborts the batch occupying lane `lane_idx` at `safe_s`, the next
    /// stream-safe point (an H2D or kernel phase boundary the dispatch
    /// already recorded). The lane frees at `safe_s` and gets a **fresh
    /// stream and staging pair**: the aborted dispatch's remaining
    /// transfers are still modeled on the old stream/buffers, so reusing
    /// either would race them. The old buffers stay allocated for the same
    /// reason — preemption trades a staging slot of device memory for the
    /// reclaimed lane time.
    ///
    /// # Errors
    /// [`FftError::Alloc`] when the card cannot stage a fresh buffer pair;
    /// the lane is left untouched and the caller must skip the preemption.
    ///
    /// # Panics
    /// When the lane is synchronous (no stream): there is no safe point to
    /// abort at on the blocking timeline, and the service never tries.
    pub fn preempt_lane(&mut self, lane_idx: usize, safe_s: f64) -> Result<(), FftError> {
        assert!(
            self.lanes[lane_idx].stream.is_some(),
            "preempting a synchronous lane"
        );
        let src = self.gpu.mem_mut().alloc(self.slot_elems)?;
        let dst = match self.gpu.mem_mut().alloc(self.slot_elems) {
            Ok(b) => b,
            Err(e) => {
                self.gpu.mem_mut().free(src);
                return Err(e.into());
            }
        };
        let stream = self.gpu.stream_create();
        let lane = &mut self.lanes[lane_idx];
        lane.stream = Some(stream);
        lane.src = src;
        lane.dst = dst;
        lane.busy_until_s = safe_s;
        Ok(())
    }

    /// Compute utilization over `makespan_s` (engine-busy seconds over
    /// elapsed seconds, clamped to `[0, 1]`).
    pub fn utilization(&self, makespan_s: f64) -> f64 {
        if makespan_s <= 0.0 {
            0.0
        } else {
            (self.gpu.compute_busy_s() / makespan_s).clamp(0.0, 1.0)
        }
    }

    /// Copy-engine utilization over `makespan_s`: both DMA engines' busy
    /// seconds over the time both could have been busy, clamped to
    /// `[0, 1]`.
    pub fn copy_utilization(&self, makespan_s: f64) -> f64 {
        if makespan_s <= 0.0 {
            0.0
        } else {
            let (up, down) = self.gpu.copy_busy_s();
            ((up + down) / (2.0 * makespan_s)).clamp(0.0, 1.0)
        }
    }

    /// Runs one coalesced batch of `n`-point rows on lane `lane_idx`, with
    /// `payloads` concatenated in batch order. Returns the completion time
    /// (one batch = one D2H, so every member completes together).
    ///
    /// # Errors
    /// Plan-construction errors propagate ([`FftError::BadPlanConfig`] for
    /// unsupported lengths).
    ///
    /// # Panics
    /// When the concatenated payload exceeds the lane's staging slot (the
    /// batcher's `max_elems` must match the slot size).
    pub fn dispatch_rows(
        &mut self,
        lane_idx: usize,
        n: usize,
        payloads: &[&[Complex32]],
        dir: Direction,
        now_s: f64,
        keep_outputs: bool,
    ) -> Result<RowsOutcome, FftError> {
        let total: usize = payloads.iter().map(|p| p.len()).sum();
        let rows = total / n;
        let mut host = Vec::with_capacity(total);
        for p in payloads {
            debug_assert_eq!(p.len() % n, 0);
            host.extend_from_slice(p);
        }
        let lane = &self.lanes[lane_idx];
        let (src, dst, stream) = (lane.src, lane.dst, lane.stream);
        let bytes = total as u64 * 8;
        self.gpu.wait_until(now_s);
        let span = format!("serve_rows_{n}x{rows}_c{}l{}", self.index, lane_idx);
        self.gpu.span_begin(&span);
        let plan = self.cache.batch1d(&mut self.gpu, n)?;
        let plan_ready_s = self.gpu.clock_s();
        let label_up = format!("serve_h2d_c{}l{}", self.index, lane_idx);
        let label_down = format!("serve_d2h_c{}l{}", self.index, lane_idx);
        let mut out = vec![Complex32::ZERO; total];
        // The phase stamps are pure reads of state the dispatch already
        // created (stream-ready probes, the host clock) — recording them
        // cannot move any timeline.
        let (h2d_start_s, h2d_done_s, compute_done_s, completion_s) = match stream {
            Some(s) => {
                // Mirror of the engine model's issue rule: a stream copy
                // starts at max(stream ready, copy engine free, host clock).
                let h2d_start = self
                    .gpu
                    .stream_ready_s(s)
                    .max(self.gpu.copy_engine_free_s(PcieDir::H2D))
                    .max(self.gpu.clock_s());
                self.gpu.memcpy_h2d_async(s, src, 0, &host, 1, &label_up);
                let h2d = self.gpu.stream_ready_s(s);
                self.gpu
                    .with_stream(s, |g| plan.execute(g, src, dst, rows, dir));
                let compute = self.gpu.stream_ready_s(s);
                self.gpu
                    .memcpy_d2h_async(s, dst, 0, &mut out, 1, &label_down);
                (h2d_start, h2d, compute, self.gpu.stream_ready_s(s))
            }
            None => {
                let h2d_start = self.gpu.clock_s().max(self.gpu.pcie_busy_until_s());
                self.gpu.pcie_transfer(PcieDir::H2D, bytes, 1, &label_up);
                self.gpu.mem_mut().upload(src, 0, &host);
                let h2d = self.gpu.clock_s();
                plan.execute(&mut self.gpu, src, dst, rows, dir);
                let compute = self.gpu.clock_s();
                self.gpu.pcie_transfer(PcieDir::D2H, bytes, 1, &label_down);
                self.gpu.mem().download(dst, 0, &mut out);
                (h2d_start, h2d, compute, self.gpu.clock_s())
            }
        };
        self.gpu.span_end(&span);
        self.lanes[lane_idx].busy_until_s = completion_s;
        let outputs = keep_outputs.then(|| {
            let mut cut = Vec::with_capacity(payloads.len());
            let mut at = 0;
            for p in payloads {
                cut.push(out[at..at + p.len()].to_vec());
                at += p.len();
            }
            cut
        });
        Ok(RowsOutcome {
            plan_ready_s,
            h2d_start_s,
            h2d_done_s,
            compute_done_s,
            completion_s,
            span,
            outputs,
        })
    }

    /// Runs a batch of same-shape 3-D volumes back-to-back on the card's
    /// synchronous timeline (volumes occupy the whole card — the caller
    /// must [`Card::occupy_all`] with the last completion). Returns
    /// `Ok(None)` when the volume does not fit the card, in which case the
    /// service routes the batch to the multi-GPU sharder.
    ///
    /// # Errors
    /// Shape-validation errors from the planner propagate.
    pub fn dispatch_volumes(
        &mut self,
        dims: (usize, usize, usize),
        algo: (Algorithm, u8),
        payloads: &[&[Complex32]],
        dir: Direction,
        now_s: f64,
        keep_outputs: bool,
    ) -> Result<Option<VolumesOutcome>, FftError> {
        self.gpu.wait_until(now_s);
        let Some(plan) = self.cache.volume(&mut self.gpu, dims, algo.0, algo.1)? else {
            return Ok(None);
        };
        let plan_ready_s = self.gpu.clock_s();
        let span = format!("serve_vol_{}x{}x{}_c{}", dims.0, dims.1, dims.2, self.index);
        self.gpu.span_begin(&span);
        let bytes = (dims.0 * dims.1 * dims.2) as u64 * 8;
        let label_up = format!("serve_vol_h2d_c{}", self.index);
        let label_down = format!("serve_vol_d2h_c{}", self.index);
        let mut h2d_starts = Vec::with_capacity(payloads.len());
        let mut h2d_done = Vec::with_capacity(payloads.len());
        let mut compute_done = Vec::with_capacity(payloads.len());
        let mut completions = Vec::with_capacity(payloads.len());
        let mut outputs = keep_outputs.then(Vec::new);
        for payload in payloads {
            h2d_starts.push(self.gpu.clock_s().max(self.gpu.pcie_busy_until_s()));
            self.gpu.pcie_transfer(PcieDir::H2D, bytes, 1, &label_up);
            h2d_done.push(self.gpu.clock_s());
            let (out, _rep) = plan.transform(&mut self.gpu, payload, dir)?;
            compute_done.push(self.gpu.clock_s());
            self.gpu.pcie_transfer(PcieDir::D2H, bytes, 1, &label_down);
            completions.push(self.gpu.clock_s());
            if let Some(o) = &mut outputs {
                o.push(out);
            }
        }
        self.gpu.span_end(&span);
        Ok(Some(VolumesOutcome {
            plan_ready_s,
            h2d_starts_s: h2d_starts,
            h2d_done_s: h2d_done,
            compute_done_s: compute_done,
            completions_s: completions,
            span,
            outputs,
        }))
    }

    /// Runs a whole pipeline DAG on the card's synchronous timeline, with
    /// every intermediate held in a refcounted device-resident slot — the
    /// caller must [`Card::occupy_all`] with the completion, since the run
    /// owns the card like a volume batch does.
    ///
    /// Stages execute in topological (submission) order, which satisfies
    /// every `after_mask` by construction: the synchronous timeline is the
    /// degenerate one-lane case of the stream/event machinery, so the
    /// hazard checker stays clean — no two stages ever overlap. Inputs
    /// upload lazily at first read; each value's slot frees the moment its
    /// last consumer has run (or moves, for in-place stages); under memory
    /// pressure the least-recently-used live slot spills to host and
    /// reloads on its next read, both counted by the residency ledger.
    ///
    /// # Errors
    /// [`FftError::Alloc`] when even spilling every other slot cannot make
    /// room (the card is simply too small for the DAG's live set).
    ///
    /// # Panics
    /// When `stages`/`inputs` violate [`crate::pipeline::validate_dag`] —
    /// the service validates at admission.
    pub fn dispatch_pipeline(
        &mut self,
        dims: (usize, usize, usize),
        stages: &[PipelineStage],
        inputs: &[Vec<Complex32>],
        now_s: f64,
    ) -> Result<PipelineOutcome, FftError> {
        self.gpu.wait_until(now_s);
        let plan = self.cache.pipeline(&mut self.gpu, dims)?;
        let plan_ready_s = self.gpu.clock_s();
        let vol = plan.fwd.volume();
        let span = format!(
            "serve_pipe_{}x{}x{}s{}_c{}",
            dims.0,
            dims.1,
            dims.2,
            stages.len(),
            self.index
        );
        self.gpu.span_begin(&span);
        let mut run = PipeRun {
            vol,
            bytes: vol as u64 * 8,
            stats: ResidencyStats::default(),
            h2d_bytes: 0,
            d2h_bytes: 0,
            h2d_start_s: None,
            h2d_done_s: plan_ready_s,
            tick: 0,
            label_up: format!("serve_pipe_h2d_c{}", self.index),
            label_down: format!("serve_pipe_d2h_c{}", self.index),
        };
        let (in_refs, st_refs) = consumer_counts(inputs.len(), stages);
        let mut slots: Vec<Slot> = inputs
            .iter()
            .zip(&in_refs)
            .map(|(v, &refs)| {
                assert_eq!(v.len(), vol, "input volume mismatch");
                Slot {
                    buf: None,
                    host: Some(plan.fwd.pack_input(v)),
                    refs,
                    last_use: 0,
                    out_layout: false,
                }
            })
            .collect();
        let slot_of = |op: Operand| match op {
            Operand::Input(i) => i as usize,
            Operand::Stage(s) => inputs.len() + s as usize,
        };
        let gpu = &mut self.gpu;
        let mut resident_s = 0.0;
        let mut stage_done_s = Vec::with_capacity(stages.len());
        let mut reduce_result: Option<(usize, f32)> = None;
        for (idx, st) in stages.iter().enumerate() {
            debug_assert_eq!(st.effective_after() >> idx, 0, "DAG arrives topo-sorted");
            let si = slot_of(st.src);
            let s2i = st.src2.map(&slot_of);
            let all_resident =
                slots[si].buf.is_some() && s2i.is_none_or(|j| slots[j].buf.is_some());
            let pinned = [si, s2i.unwrap_or(si)];
            let a = run.touch(gpu, &mut slots, si, &pinned)?;
            let b = match s2i {
                Some(j) => Some(run.touch(gpu, &mut slots, j, &pinned)?),
                None => None,
            };
            let t0 = gpu.clock_s();
            let (buf, out_layout) = match st.kind {
                StageKind::Forward => {
                    plan.fwd.execute(gpu, a, plan.work, Direction::Forward);
                    run.release(gpu, &mut slots, si, Some(a));
                    (Some(a), true)
                }
                StageKind::Inverse => {
                    plan.inv.execute(gpu, a, plan.work, Direction::Inverse);
                    run.release(gpu, &mut slots, si, Some(a));
                    // The chained inverse lands back in the forward plan's
                    // *input* layout.
                    (Some(a), false)
                }
                StageKind::Pointwise(PointwiseOp::Scale) => {
                    run_scale(gpu, a, vol, st.scale);
                    let layout = slots[si].out_layout;
                    run.release(gpu, &mut slots, si, Some(a));
                    (Some(a), layout)
                }
                StageKind::Pointwise(op) => {
                    let conj = op == PointwiseOp::ConjMultiply;
                    let b = b.expect("validated: multiply has src2");
                    let j = s2i.expect("validated: multiply has src2");
                    let layout = slots[si].out_layout;
                    // Reuse a dying operand's buffer as the destination —
                    // src2 first, mirroring the correlator's
                    // `mul(buf_a, buf_b, buf_b)` idiom.
                    let dst = if si == j {
                        if slots[si].refs == 2 {
                            a
                        } else {
                            run.alloc(gpu, &mut slots, &pinned)?
                        }
                    } else if slots[j].refs == 1 {
                        b
                    } else if slots[si].refs == 1 {
                        a
                    } else {
                        run.alloc(gpu, &mut slots, &pinned)?
                    };
                    run_pointwise_mul(gpu, a, b, dst, vol, st.scale, conj);
                    run.release(gpu, &mut slots, si, Some(dst));
                    run.release(gpu, &mut slots, j, Some(dst));
                    (Some(dst), layout)
                }
                StageKind::Reduce(op) => {
                    let got = match op {
                        ReduceOp::ArgMax => {
                            let (i, score, _) = run_argmax_norm(gpu, a, vol);
                            // The kernel reports an index into the plan's
                            // packed device layout — a card-side detail a
                            // served client cannot interpret. Map it back
                            // to the natural-order linear index (the same
                            // mapping apps::GpuCorrelator::unpack_index
                            // applies) before it crosses the wire.
                            let natural =
                                natural_index(plan.fwd.layout(), dims, i, slots[si].out_layout);
                            (natural, score)
                        }
                        ReduceOp::Energy => {
                            let (e, _) = run_energy(gpu, a, vol);
                            (0, e)
                        }
                    };
                    reduce_result = Some(got);
                    run.release(gpu, &mut slots, si, None);
                    (None, false)
                }
            };
            if all_resident {
                resident_s += gpu.clock_s() - t0;
            }
            stage_done_s.push(gpu.clock_s());
            run.tick += 1;
            slots.push(Slot {
                buf,
                host: None,
                refs: st_refs[idx],
                last_use: run.tick,
                out_layout,
            });
        }
        let compute_done_s = gpu.clock_s();

        // Result download: the final stage's value (8 bytes for a reduce).
        let last = slots.len() - 1;
        let output = if let Some((ri, rv)) = reduce_result {
            gpu.pcie_transfer(PcieDir::D2H, 8, 1, &run.label_down);
            run.d2h_bytes += 8;
            slots[last].refs -= 1;
            vec![
                Complex32::new(rv, 0.0),
                Complex32::new((ri & 0xffff) as f32, (ri >> 16) as f32),
            ]
        } else {
            let b = run.touch(gpu, &mut slots, last, &[last])?;
            let mut packed = vec![Complex32::ZERO; vol];
            gpu.pcie_transfer(PcieDir::D2H, run.bytes, 1, &run.label_down);
            gpu.mem().download(b, 0, &mut packed);
            run.d2h_bytes += run.bytes;
            let natural = if slots[last].out_layout {
                plan.fwd.unpack_output(&packed)
            } else {
                // Input-layout values (inverse outputs) unpack through the
                // forward plan's input mapping, like the correlator does.
                let l = plan.fwd.layout();
                let mut out = vec![Complex32::ZERO; vol];
                let mut i = 0;
                for z in 0..dims.2 {
                    for y in 0..dims.1 {
                        for x in 0..dims.0 {
                            out[i] = packed[l.input_index(x, y, z)];
                            i += 1;
                        }
                    }
                }
                out
            };
            run.release(gpu, &mut slots, last, None);
            natural
        };
        let completion_s = gpu.clock_s();
        gpu.span_end(&span);
        debug_assert!(
            slots.iter().all(|s| s.refs == 0 && s.buf.is_none()),
            "every slot released"
        );
        self.residency.absorb(run.stats);
        Ok(PipelineOutcome {
            plan_ready_s,
            h2d_start_s: run.h2d_start_s.unwrap_or(plan_ready_s),
            h2d_done_s: run.h2d_done_s,
            compute_done_s,
            stage_done_s,
            completion_s,
            h2d_bytes: run.h2d_bytes,
            d2h_bytes: run.d2h_bytes,
            resident_s,
            residency: run.stats,
            span,
            output,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft_math::error::rel_l2_error_f32;
    use fft_math::fft1d::fft_pow2;
    use fft_math::rng::SplitMix64;

    fn rows_payload(n: usize, rows: usize, seed: u64) -> Vec<Complex32> {
        let mut rng = SplitMix64::new(seed);
        (0..n * rows)
            .map(|_| Complex32::new(rng.uniform_f32(-1.0, 1.0), rng.uniform_f32(-1.0, 1.0)))
            .collect()
    }

    #[test]
    fn stream_lanes_overlap_and_match_reference() {
        let mut card = Card::new(&DeviceSpec::gts8800(), 0, 2, 1 << 16, false).unwrap();
        let a = rows_payload(256, 8, 1);
        let b = rows_payload(256, 8, 2);
        let ra = card
            .dispatch_rows(0, 256, &[&a], Direction::Forward, 0.0, true)
            .unwrap();
        let rb = card
            .dispatch_rows(1, 256, &[&b], Direction::Forward, 0.0, true)
            .unwrap();
        // Lane 1's upload overlaps lane 0's compute: it finishes before the
        // serial sum of both batches would.
        assert!(rb.completion_s > ra.completion_s);
        for r in [&ra, &rb] {
            assert!(r.h2d_done_s <= r.compute_done_s);
            assert!(r.compute_done_s <= r.completion_s);
        }
        assert_eq!(ra.span, "serve_rows_256x8_c0l0");
        let serial = 2.0 * ra.completion_s;
        assert!(
            rb.completion_s < serial,
            "overlap: {} vs serial {serial}",
            rb.completion_s
        );
        for (payload, outcome) in [(&a, &ra), (&b, &rb)] {
            let out = &outcome.outputs.as_ref().unwrap()[0];
            for r in 0..8 {
                let mut want = payload[r * 256..(r + 1) * 256].to_vec();
                fft_pow2(&mut want, Direction::Forward);
                assert!(rel_l2_error_f32(&out[r * 256..(r + 1) * 256], &want) < 1e-5);
            }
        }
        assert_eq!(card.cache_stats().misses, 1);
        assert_eq!(card.cache_stats().hits, 1);
    }

    #[test]
    fn sync_lane_serializes() {
        let mut card = Card::new(&DeviceSpec::gts8800(), 0, 0, 1 << 16, false).unwrap();
        let a = rows_payload(256, 8, 1);
        let r1 = card
            .dispatch_rows(0, 256, &[&a], Direction::Forward, 0.0, false)
            .unwrap();
        let r2 = card
            .dispatch_rows(0, 256, &[&a], Direction::Forward, r1.completion_s, false)
            .unwrap();
        let d1 = r1.completion_s;
        let d2 = r2.completion_s - r1.completion_s;
        assert!((d1 - d2).abs() < 0.05 * d1, "equal batches take equal time");
    }

    #[test]
    fn volume_cache_hits_and_oversize_detection() {
        // A 4 MiB card: a 64^3 plan needs two 2 MiB buffers plus staging,
        // so it cannot fit; 16^3 fits fine.
        let mut spec = DeviceSpec::gts8800();
        spec.memory_bytes = 4 << 20;
        let mut card = Card::new(&spec, 0, 1, 1 << 10, false).unwrap();
        let small = rows_payload(16 * 16 * 16, 1, 3);
        let got = card
            .dispatch_volumes(
                (16, 16, 16),
                (Algorithm::FiveStep, 0),
                &[&small, &small],
                Direction::Forward,
                0.0,
                false,
            )
            .unwrap()
            .expect("16^3 fits");
        assert_eq!(got.completions_s.len(), 2);
        assert!(got.completions_s[0] < got.completions_s[1]);
        for i in 0..2 {
            assert!(got.h2d_done_s[i] <= got.compute_done_s[i]);
            assert!(got.compute_done_s[i] <= got.completions_s[i]);
        }
        assert_eq!(got.span, "serve_vol_16x16x16_c0");
        assert_eq!(card.cache_stats().misses, 1, "one plan for two transforms");

        let big = rows_payload(64 * 64 * 64, 1, 4);
        let none = card
            .dispatch_volumes(
                (64, 64, 64),
                (Algorithm::FiveStep, 0),
                &[&big],
                Direction::Forward,
                0.0,
                false,
            )
            .unwrap();
        assert!(none.is_none(), "64^3 routes to the sharder");
        // The oversize verdict is memoised: no second allocation attempt.
        let misses = card.cache_stats().misses;
        let _ = card
            .dispatch_volumes(
                (64, 64, 64),
                (Algorithm::FiveStep, 0),
                &[&big],
                Direction::Forward,
                0.0,
                false,
            )
            .unwrap();
        assert_eq!(card.cache_stats().misses, misses);
    }
}
