//! SLO objectives, multi-window burn rates and the machine-readable
//! verdict the report and the bench gate consume.
//!
//! Burn rate follows the SRE convention: the fraction of the error budget
//! consumed per unit of budgeted fraction — `1.0` means "exactly on
//! budget", above it the budget is burning faster than allowed. Two
//! windows are tracked: *long* (the whole run, from the registry's final
//! counters) and *short* (the last [`SloPolicy::short_window_ticks`]
//! timeline samples, from counter deltas), so a late-run regression shows
//! up in the short burn even when the long average still looks healthy.

use super::names;
use super::registry::MetricsRegistry;
use super::timeline::Timeline;

/// The budgeted fraction of completions allowed over the latency target —
/// a p95 objective tolerates 5% of requests past it by definition.
pub const LATENCY_TAIL_BUDGET: f64 = 0.05;

/// The objectives a run is held to.
#[derive(Clone, Debug, PartialEq)]
pub struct SloPolicy {
    /// Target p95 completion latency, milliseconds.
    pub latency_p95_ms: f64,
    /// Allowed fraction of admitted-and-finished requests that may error
    /// (time out or fail).
    pub error_budget: f64,
    /// Minimum goodput, GB/s; `0.0` disables the objective.
    pub min_goodput_gbs: f64,
    /// Timeline samples in the short burn-rate window.
    pub short_window_ticks: usize,
}

impl Default for SloPolicy {
    /// Generous defaults calibrated so the deterministic smoke workload
    /// passes with headroom: a simulated 2-card fleet serves the mixed mix
    /// well under 50 ms p95, and the smoke mix carries no deadlines (so no
    /// timeouts) and no impossible shapes (so no failures).
    fn default() -> Self {
        SloPolicy {
            latency_p95_ms: 50.0,
            error_budget: 0.01,
            min_goodput_gbs: 0.0,
            short_window_ticks: 8,
        }
    }
}

/// One objective's verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct SloVerdict {
    /// Objective name (`latency_p95`, `error_rate`, `goodput`).
    pub objective: String,
    /// The configured target.
    pub target: f64,
    /// What the run observed.
    pub observed: f64,
    /// Whole-run burn rate (1.0 = exactly on budget).
    pub burn_long: f64,
    /// Burn rate over the short window.
    pub burn_short: f64,
    /// Whether the objective held.
    pub ok: bool,
}

/// The full verdict section.
#[derive(Clone, Debug, PartialEq)]
pub struct SloReport {
    /// Per-objective verdicts, policy order.
    pub verdicts: Vec<SloVerdict>,
    /// True when every objective held.
    pub ok: bool,
}

impl Default for SloReport {
    /// No objectives evaluated means nothing violated.
    fn default() -> Self {
        SloReport {
            verdicts: Vec::new(),
            ok: true,
        }
    }
}

/// Counter values at the short window's start: the last sample at least
/// `window` ticks back, or zeros when the series is shorter than that.
fn window_start(tl: &Timeline, window: usize) -> impl Fn(&str) -> u64 + '_ {
    let samples = tl.samples();
    let at = samples.len().checked_sub(window);
    move |name: &str| match at {
        Some(i) => samples[i].counters.get(name).copied().unwrap_or(0),
        None => 0,
    }
}

/// Fraction `num/den`, 0.0 on an empty denominator.
fn frac(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Evaluates `policy` against a finished (or in-flight) run. `p95_ms` and
/// `goodput_gbs` come from the report's completion accounting; burn rates
/// come from the registry counters and the timeline windows.
pub fn evaluate(
    policy: &SloPolicy,
    p95_ms: f64,
    goodput_gbs: f64,
    registry: &MetricsRegistry,
    timeline: &Timeline,
) -> SloReport {
    let start = window_start(timeline, policy.short_window_ticks);
    let mut verdicts = Vec::new();

    // Latency: observed p95 against the target; burn = fraction of
    // completions past the target over the 5% a p95 objective tolerates.
    let completed = registry.counter(names::COMPLETED);
    let over = registry.counter(names::LATENCY_OVER_SLO);
    let burn_long = frac(over, completed) / LATENCY_TAIL_BUDGET;
    let d_completed = completed - start(names::COMPLETED);
    let d_over = over - start(names::LATENCY_OVER_SLO);
    verdicts.push(SloVerdict {
        objective: "latency_p95".to_string(),
        target: policy.latency_p95_ms,
        observed: p95_ms,
        burn_long,
        burn_short: frac(d_over, d_completed) / LATENCY_TAIL_BUDGET,
        ok: completed == 0 || p95_ms <= policy.latency_p95_ms,
    });

    // Error rate: timeouts plus dispatch failures over finished requests.
    let failed = registry.counter(names::FAILED);
    let timeouts = registry.counter(names::TIMEOUTS);
    let finished = completed + failed;
    let errors = timeouts + failed;
    let rate = frac(errors, finished);
    let d_finished = finished - (start(names::COMPLETED) + start(names::FAILED));
    let d_errors = errors - (start(names::TIMEOUTS) + start(names::FAILED));
    verdicts.push(SloVerdict {
        objective: "error_rate".to_string(),
        target: policy.error_budget,
        observed: rate,
        burn_long: rate / policy.error_budget,
        burn_short: frac(d_errors, d_finished) / policy.error_budget,
        ok: rate <= policy.error_budget,
    });

    // Goodput: a binary throughput floor (burn rates are defined over
    // event budgets, not rates — 0.0 holding / 1.0 violated stands in).
    if policy.min_goodput_gbs > 0.0 {
        let ok = goodput_gbs >= policy.min_goodput_gbs;
        let burn = if ok { 0.0 } else { 1.0 };
        verdicts.push(SloVerdict {
            objective: "goodput".to_string(),
            target: policy.min_goodput_gbs,
            observed: goodput_gbs,
            burn_long: burn,
            burn_short: burn,
            ok,
        });
    }

    let ok = verdicts.iter().all(|v| v.ok);
    SloReport { verdicts, ok }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with(pairs: &[(&str, u64)]) -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        for &(k, v) in pairs {
            r.add(k, v);
        }
        r
    }

    #[test]
    fn clean_run_passes_every_objective() {
        let reg = reg_with(&[(names::COMPLETED, 100)]);
        let tl = Timeline::new(1e-3);
        let s = evaluate(&SloPolicy::default(), 5.0, 1.0, &reg, &tl);
        assert!(s.ok);
        assert_eq!(s.verdicts.len(), 2, "goodput objective disabled");
        assert_eq!(s.verdicts[0].objective, "latency_p95");
        assert_eq!(s.verdicts[0].burn_long, 0.0);
        assert_eq!(s.verdicts[1].objective, "error_rate");
        assert_eq!(s.verdicts[1].burn_long, 0.0);
    }

    #[test]
    fn latency_and_error_burns_scale_with_violations() {
        // 10 of 100 completions over target: 10% over / 5% budget = 2x burn.
        let reg = reg_with(&[
            (names::COMPLETED, 100),
            (names::LATENCY_OVER_SLO, 10),
            (names::TIMEOUTS, 2),
        ]);
        let tl = Timeline::new(1e-3);
        let policy = SloPolicy::default();
        let s = evaluate(&policy, 60.0, 1.0, &reg, &tl);
        assert!(!s.ok);
        let lat = &s.verdicts[0];
        assert!(!lat.ok, "p95 60 ms over the 50 ms target");
        assert_eq!(lat.burn_long, 2.0);
        let err = &s.verdicts[1];
        assert!(!err.ok, "2% error rate over the 1% budget");
        assert_eq!(err.burn_long, 2.0);
        // No timeline samples: the short window falls back to run-to-date.
        assert_eq!(lat.burn_short, lat.burn_long);
        assert_eq!(err.burn_short, err.burn_long);
    }

    #[test]
    fn short_window_isolates_a_late_regression() {
        let mut reg = MetricsRegistry::new();
        let mut tl = Timeline::new(1.0);
        // A healthy first epoch...
        reg.add(names::COMPLETED, 100);
        tl.advance(1.0, &reg);
        // ...then every later completion misses the target.
        reg.add(names::COMPLETED, 10);
        reg.add(names::LATENCY_OVER_SLO, 10);
        let policy = SloPolicy {
            short_window_ticks: 1,
            ..SloPolicy::default()
        };
        let s = evaluate(&policy, 10.0, 1.0, &reg, &tl);
        let lat = &s.verdicts[0];
        // Long window: 10/110 over / 5%. Short window: 10/10 over / 5%.
        assert!(lat.burn_long < lat.burn_short);
        assert_eq!(lat.burn_short, 20.0);
    }

    #[test]
    fn goodput_floor_is_opt_in() {
        let reg = reg_with(&[(names::COMPLETED, 10)]);
        let tl = Timeline::new(1e-3);
        let policy = SloPolicy {
            min_goodput_gbs: 2.0,
            ..SloPolicy::default()
        };
        let s = evaluate(&policy, 1.0, 1.5, &reg, &tl);
        let g = s
            .verdicts
            .iter()
            .find(|v| v.objective == "goodput")
            .unwrap();
        assert!(!g.ok);
        assert_eq!(g.burn_long, 1.0);
        assert!(!s.ok);
    }

    #[test]
    fn empty_run_is_vacuously_ok() {
        let reg = MetricsRegistry::new();
        let tl = Timeline::new(1e-3);
        let s = evaluate(&SloPolicy::default(), 0.0, 0.0, &reg, &tl);
        assert!(s.ok);
        assert!(SloReport::default().ok);
    }
}
