//! The registry sampled on a fixed virtual-time tick.
//!
//! The service calls [`Timeline::advance`] *before* moving its clock to a
//! new instant, so every sample at a tick boundary `t` snapshots the
//! registry exactly as it stood after the last event strictly before `t` —
//! standard discrete-event semantics, and the reason two same-seed runs
//! produce identical series. [`Timeline::seal`] stamps one final sample at
//! drain time so the series always ends on the run's terminal state.

use super::registry::MetricsRegistry;
use std::collections::BTreeMap;

/// Storage bound on the series; crossings past it are counted in
/// [`Timeline::dropped`] instead of stored (a long-idle drain would
/// otherwise flood the series with identical samples).
pub const MAX_SAMPLES: usize = 512;

/// One snapshot of the registry's counters and gauges at a tick boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// The boundary's virtual time, seconds.
    pub t_s: f64,
    /// Counter values at the boundary.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values at the boundary.
    pub gauges: BTreeMap<String, f64>,
}

/// The tick-sampled time series.
#[derive(Clone, Debug, PartialEq)]
pub struct Timeline {
    tick_s: f64,
    next_tick_s: f64,
    samples: Vec<Sample>,
    dropped: u64,
}

impl Default for Timeline {
    fn default() -> Self {
        Timeline::new(1e-3)
    }
}

impl Timeline {
    /// A timeline sampling every `tick_s` simulated seconds (first sample
    /// at `tick_s`, not zero — there is nothing to see before time moves).
    pub fn new(tick_s: f64) -> Self {
        assert!(tick_s > 0.0, "the sampling tick must be positive");
        Timeline {
            tick_s,
            next_tick_s: tick_s,
            samples: Vec::new(),
            dropped: 0,
        }
    }

    /// The sampling period, seconds.
    pub fn tick_s(&self) -> f64 {
        self.tick_s
    }

    /// Samples every tick boundary in `(previous time, to_s]`. Call with
    /// the registry still holding pre-advance state (see module docs).
    pub fn advance(&mut self, to_s: f64, registry: &MetricsRegistry) {
        while self.next_tick_s <= to_s {
            self.push_sample(self.next_tick_s, registry);
            self.next_tick_s += self.tick_s;
        }
    }

    /// Stamps one final sample at `now_s` with the terminal registry state
    /// (skipped if a sample at or past `now_s` already exists).
    pub fn seal(&mut self, now_s: f64, registry: &MetricsRegistry) {
        if self.samples.last().is_none_or(|s| s.t_s < now_s) {
            self.push_sample(now_s, registry);
        }
    }

    fn push_sample(&mut self, t_s: f64, registry: &MetricsRegistry) {
        if self.samples.len() >= MAX_SAMPLES {
            self.dropped += 1;
            return;
        }
        self.samples.push(Sample {
            t_s,
            counters: registry.counters().clone(),
            gauges: registry.gauges().clone(),
        });
    }

    /// The recorded series, time-ordered.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Tick crossings dropped past [`MAX_SAMPLES`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_every_crossing_with_pre_advance_state() {
        let mut reg = MetricsRegistry::new();
        let mut tl = Timeline::new(1.0);
        reg.inc("n_total");
        tl.advance(2.5, &reg); // crossings at 1.0 and 2.0
        reg.add("n_total", 5);
        tl.advance(3.0, &reg); // crossing at 3.0 sees the update
        let s = tl.samples();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].t_s, 1.0);
        assert_eq!(s[1].t_s, 2.0);
        assert_eq!(s[2].t_s, 3.0);
        assert_eq!(s[0].counters["n_total"], 1);
        assert_eq!(s[1].counters["n_total"], 1);
        assert_eq!(s[2].counters["n_total"], 6);
    }

    #[test]
    fn seal_stamps_a_terminal_sample_once() {
        let mut reg = MetricsRegistry::new();
        let mut tl = Timeline::new(1.0);
        tl.advance(1.0, &reg);
        reg.inc("n_total");
        tl.seal(1.5, &reg);
        tl.seal(1.5, &reg); // idempotent at the same instant
        let s = tl.samples();
        assert_eq!(s.len(), 2);
        assert_eq!(s[1].t_s, 1.5);
        assert_eq!(s[1].counters["n_total"], 1);
        // The next crossing stays beyond the seal: time never goes back.
        tl.advance(2.0, &reg);
        assert_eq!(tl.samples().len(), 3);
        assert!(tl.samples().windows(2).all(|w| w[0].t_s < w[1].t_s));
    }

    #[test]
    fn storage_is_bounded() {
        let reg = MetricsRegistry::new();
        let mut tl = Timeline::new(1.0);
        tl.advance(MAX_SAMPLES as f64 + 10.0, &reg);
        assert_eq!(tl.samples().len(), MAX_SAMPLES);
        assert_eq!(tl.dropped(), 10);
    }
}
