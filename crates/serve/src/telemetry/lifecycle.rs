//! Per-request stage waterfalls: where every request spent its virtual
//! time, from submission to its terminal stage.
//!
//! Stages are recorded at the existing pipeline transitions (admission in
//! the service, enqueue in the queue, coalescing in the batcher, the
//! H2D/compute/D2H boundaries in the scheduler) with the timestamps the
//! simulation already produces — recording never advances a clock. A
//! request that is re-queued (a volume bounced off a busy fleet) simply
//! overwrites its `Batched` record with the later attempt; the final
//! waterfall is still monotone.

use crate::request::RequestId;
use std::collections::BTreeMap;

/// One lifecycle stage. Declaration order is pipeline order; the terminal
/// stages (`Completed`, `Rejected`, `Failed`) come last so an index-order
/// scan of the waterfall doubles as the monotonicity check.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// The request arrived at `submit`.
    Submitted,
    /// Admission passed; the request entered the bounded queue.
    Admitted,
    /// The batcher coalesced it into a launch.
    Batched,
    /// The launch was handed to a card.
    Dispatched,
    /// Host-to-device transfer done.
    H2d,
    /// Kernel execution done.
    Compute,
    /// Device-to-host transfer done.
    D2h,
    /// The completion was recorded.
    Completed,
    /// Admission turned the request away.
    Rejected,
    /// Dispatch discovered the work was impossible post-admission.
    Failed,
}

/// Every stage, in pipeline order.
pub const STAGES: [Stage; 10] = [
    Stage::Submitted,
    Stage::Admitted,
    Stage::Batched,
    Stage::Dispatched,
    Stage::H2d,
    Stage::Compute,
    Stage::D2h,
    Stage::Completed,
    Stage::Rejected,
    Stage::Failed,
];

impl Stage {
    /// Stable lowercase label (export keys, trace slice names).
    pub fn label(self) -> &'static str {
        match self {
            Stage::Submitted => "submitted",
            Stage::Admitted => "admitted",
            Stage::Batched => "batched",
            Stage::Dispatched => "dispatched",
            Stage::H2d => "h2d",
            Stage::Compute => "compute",
            Stage::D2h => "d2h",
            Stage::Completed => "completed",
            Stage::Rejected => "rejected",
            Stage::Failed => "failed",
        }
    }

    fn index(self) -> usize {
        STAGES.iter().position(|&s| s == self).expect("listed")
    }
}

/// One request's recorded stage timestamps plus the dispatch cross-links.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Waterfall {
    shape: String,
    stages: [Option<f64>; STAGES.len()],
    /// The sim-prof span name of the launch that served this request —
    /// the drill-down link from a slow request to its kernels.
    pub span: Option<String>,
    /// Card the launch ran on (`None` before dispatch, and for sharded
    /// runs, which span every card).
    pub card: Option<usize>,
    /// Why admission rejected the request, when it did.
    pub reject_reason: Option<&'static str>,
    /// Priority label recorded at submission (`"high"`, `"normal"`,
    /// `"low"`) — the attribution profile key.
    pub priority: Option<&'static str>,
    /// Algorithm label of the plan that served the request (`"batch-1d"`
    /// for coalesced rows, the [`bifft::plan::Algorithm`] name for
    /// volumes).
    pub algorithm: Option<&'static str>,
    /// When the dispatch's plan was ready (cache hit or build done),
    /// simulated seconds. Splits plan/cache time out of `Dispatched → H2d`.
    pub plan_ready_s: Option<f64>,
    /// When the dispatch's H2D transfer started moving bytes, simulated
    /// seconds. Splits staging-slot wait out of `Dispatched → H2d`.
    pub h2d_start_s: Option<f64>,
    /// Device seconds this request's dispatches wasted to lane preemption
    /// (aborted-and-requeued launches). Attribution carves this out of the
    /// queue share into its own `preempted` category.
    pub preempted_s: f64,
    /// How many times the request was preempted and requeued.
    pub preempts: u32,
    /// Compute seconds spent on pipeline stages whose every operand was
    /// already device-resident (no upload needed). Attribution carves this
    /// out of the compute share into its own `resident` category.
    pub resident_s: f64,
}

impl Waterfall {
    /// The shape label recorded at submission (`"1d256x32"` style).
    pub fn shape(&self) -> &str {
        &self.shape
    }

    /// The recorded timestamp of `stage`, simulated seconds.
    pub fn stage_s(&self, stage: Stage) -> Option<f64> {
        self.stages[stage.index()]
    }

    /// True when every recorded stage, scanned in pipeline order, has a
    /// non-decreasing timestamp.
    pub fn is_monotone(&self) -> bool {
        let mut last = f64::NEG_INFINITY;
        for t in self.stages.into_iter().flatten() {
            if t < last {
                return false;
            }
            last = t;
        }
        true
    }

    /// The terminal stage reached, if any.
    pub fn terminal(&self) -> Option<Stage> {
        [Stage::Completed, Stage::Rejected, Stage::Failed]
            .into_iter()
            .find(|&s| self.stage_s(s).is_some())
    }

    /// True when the full happy path (`Submitted` through `Completed`) was
    /// recorded — the acceptance criterion for completed requests.
    pub fn is_complete_pipeline(&self) -> bool {
        STAGES[..=Stage::Completed.index()]
            .iter()
            .all(|&s| self.stage_s(s).is_some())
    }

    fn record(&mut self, stage: Stage, t_s: f64) {
        self.stages[stage.index()] = Some(t_s);
    }
}

/// The service-wide waterfall log, keyed by request id.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LifecycleLog {
    map: BTreeMap<u64, Waterfall>,
    dropped: u64,
}

impl LifecycleLog {
    /// Opens a waterfall for a newly submitted request and records its
    /// `Submitted` stamp.
    pub fn start(&mut self, id: RequestId, shape: String, t_s: f64) {
        let wf = self.map.entry(id.0).or_default();
        wf.shape = shape;
        wf.record(Stage::Submitted, t_s);
    }

    /// Records `stage` at `t_s` for request `id`. A repeat record (a
    /// re-queued request) overwrites with the later attempt; a stamp for an
    /// id that was never [`LifecycleLog::start`]ed, or one that would move
    /// an existing stage *backwards*, is counted in
    /// [`LifecycleLog::dropped`] instead of corrupting the waterfall.
    pub fn record(&mut self, id: RequestId, stage: Stage, t_s: f64) {
        let Some(wf) = self.map.get_mut(&id.0) else {
            self.dropped += 1;
            return;
        };
        if wf.stage_s(stage).is_some_and(|prev| t_s < prev) {
            self.dropped += 1;
            return;
        }
        wf.record(stage, t_s);
    }

    /// Cross-links the request to the sim-prof span and card of the launch
    /// that served it. Unknown ids count as dropped.
    pub fn annotate(&mut self, id: RequestId, span: &str, card: Option<usize>) {
        let Some(wf) = self.map.get_mut(&id.0) else {
            self.dropped += 1;
            return;
        };
        wf.span = Some(span.to_string());
        wf.card = card;
    }

    /// Records the submission-time attribution labels (priority, algorithm
    /// that will serve the request). Unknown ids count as dropped.
    pub fn annotate_submission(
        &mut self,
        id: RequestId,
        priority: &'static str,
        algorithm: &'static str,
    ) {
        let Some(wf) = self.map.get_mut(&id.0) else {
            self.dropped += 1;
            return;
        };
        wf.priority = Some(priority);
        wf.algorithm = Some(algorithm);
    }

    /// Records the intra-dispatch phase boundaries the ledger splits on
    /// (plan ready, H2D start). Unknown ids count as dropped.
    pub fn annotate_phases(&mut self, id: RequestId, plan_ready_s: f64, h2d_start_s: f64) {
        let Some(wf) = self.map.get_mut(&id.0) else {
            self.dropped += 1;
            return;
        };
        wf.plan_ready_s = Some(plan_ready_s);
        wf.h2d_start_s = Some(h2d_start_s);
    }

    /// Charges `wasted_s` seconds of aborted device time to a preemption
    /// victim. The waterfall's stage stamps are untouched — the original
    /// `Submitted`/`Admitted` records survive the requeue, and the later
    /// re-dispatch overwrites `Batched` onward exactly like a volume
    /// bounce. Unknown ids count as dropped.
    pub fn charge_preempt(&mut self, id: RequestId, wasted_s: f64) {
        let Some(wf) = self.map.get_mut(&id.0) else {
            self.dropped += 1;
            return;
        };
        wf.preempted_s += wasted_s;
        wf.preempts += 1;
    }

    /// Credits `resident_s` seconds of device-resident compute time to a
    /// pipeline request — stage executions whose operands were all already
    /// on the card. Attribution re-labels this slice of the compute share
    /// as `resident`. Unknown ids count as dropped.
    pub fn note_resident(&mut self, id: RequestId, resident_s: f64) {
        let Some(wf) = self.map.get_mut(&id.0) else {
            self.dropped += 1;
            return;
        };
        wf.resident_s += resident_s;
    }

    /// Stamps and annotations discarded because their request id was never
    /// started or the stamp ran backwards — mirrored into the registry as
    /// `serve_lifecycle_dropped_total`.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records the terminal `Rejected` stage with its reason label.
    pub fn mark_rejected(&mut self, id: RequestId, reason: &'static str, t_s: f64) {
        let wf = self.map.entry(id.0).or_default();
        wf.reject_reason = Some(reason);
        wf.record(Stage::Rejected, t_s);
    }

    /// The waterfall of `id`, if any stage was ever recorded.
    pub fn get(&self, id: RequestId) -> Option<&Waterfall> {
        self.map.get(&id.0)
    }

    /// All waterfalls in request-id order.
    pub fn iter(&self) -> impl Iterator<Item = (RequestId, &Waterfall)> {
        self.map.iter().map(|(&id, wf)| (RequestId(id), wf))
    }

    /// Number of requests tracked.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no request was ever tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waterfall_records_and_checks_monotonicity() {
        let mut log = LifecycleLog::default();
        let id = RequestId(3);
        log.start(id, "1d256x16".to_string(), 1.0);
        log.record(id, Stage::Admitted, 1.0);
        log.record(id, Stage::Batched, 1.5);
        log.record(id, Stage::Dispatched, 1.5);
        log.record(id, Stage::H2d, 1.6);
        log.record(id, Stage::Compute, 1.7);
        log.record(id, Stage::D2h, 1.8);
        log.record(id, Stage::Completed, 1.8);
        log.annotate(id, "serve_rows_256x16_c0l1", Some(0));
        let wf = log.get(id).unwrap();
        assert!(wf.is_monotone());
        assert!(wf.is_complete_pipeline());
        assert_eq!(wf.terminal(), Some(Stage::Completed));
        assert_eq!(wf.shape(), "1d256x16");
        assert_eq!(wf.span.as_deref(), Some("serve_rows_256x16_c0l1"));
        assert_eq!(wf.card, Some(0));
        assert_eq!(wf.stage_s(Stage::Compute), Some(1.7));
    }

    #[test]
    fn requeue_overwrites_with_the_later_attempt() {
        let mut log = LifecycleLog::default();
        let id = RequestId(0);
        log.start(id, "vol32x32x32".to_string(), 0.0);
        log.record(id, Stage::Admitted, 0.0);
        log.record(id, Stage::Batched, 0.2);
        // Bounced and re-batched later: the record moves forward.
        log.record(id, Stage::Batched, 0.9);
        log.record(id, Stage::Dispatched, 0.9);
        let wf = log.get(id).unwrap();
        assert_eq!(wf.stage_s(Stage::Batched), Some(0.9));
        assert!(wf.is_monotone());
        assert!(!wf.is_complete_pipeline());
        assert_eq!(wf.terminal(), None);
    }

    #[test]
    fn rejected_requests_carry_their_reason() {
        let mut log = LifecycleLog::default();
        let id = RequestId(7);
        log.start(id, "1d512x999".to_string(), 2.0);
        log.mark_rejected(id, "oversized", 2.0);
        let wf = log.get(id).unwrap();
        assert_eq!(wf.terminal(), Some(Stage::Rejected));
        assert_eq!(wf.reject_reason, Some("oversized"));
        assert!(wf.is_monotone());
        let backwards = {
            let mut l = LifecycleLog::default();
            l.start(RequestId(0), "1d256x4".to_string(), 0.0);
            l.record(RequestId(0), Stage::Admitted, 5.0);
            l.record(RequestId(0), Stage::Completed, 1.0);
            l
        };
        assert!(!backwards.get(RequestId(0)).unwrap().is_monotone());
    }

    #[test]
    fn unknown_ids_and_backwards_stamps_count_as_dropped() {
        let mut log = LifecycleLog::default();
        // Stamps and annotations for an id that was never started are
        // dropped, not silently materialized as ghost waterfalls.
        log.record(RequestId(5), Stage::Admitted, 1.0);
        log.annotate(RequestId(5), "serve_rows_256x4_c0l0", Some(0));
        log.annotate_submission(RequestId(5), "normal", "batch-1d");
        log.annotate_phases(RequestId(5), 1.0, 1.1);
        assert!(log.get(RequestId(5)).is_none());
        assert_eq!(log.dropped(), 4);

        let id = RequestId(1);
        log.start(id, "1d256x4".to_string(), 2.0);
        log.record(id, Stage::Admitted, 2.0);
        // Re-stamping at the same time (push_traced on requeue) and moving
        // forward (a later batching attempt) both stay legal...
        log.record(id, Stage::Admitted, 2.0);
        log.record(id, Stage::Batched, 2.5);
        log.record(id, Stage::Batched, 2.9);
        assert_eq!(log.dropped(), 4);
        // ...but a strictly backwards stamp is dropped and the waterfall
        // keeps its existing value.
        log.record(id, Stage::Batched, 2.1);
        assert_eq!(log.dropped(), 5);
        assert_eq!(log.get(id).unwrap().stage_s(Stage::Batched), Some(2.9));
    }

    #[test]
    fn preempt_charges_accumulate_without_touching_stamps() {
        let mut log = LifecycleLog::default();
        let id = RequestId(4);
        log.start(id, "1d256x8".to_string(), 1.0);
        log.record(id, Stage::Admitted, 1.0);
        log.record(id, Stage::Batched, 1.2);
        log.charge_preempt(id, 0.5e-3);
        log.charge_preempt(id, 0.25e-3);
        let wf = log.get(id).unwrap();
        assert!((wf.preempted_s - 0.75e-3).abs() < 1e-12);
        assert_eq!(wf.preempts, 2);
        assert_eq!(wf.stage_s(Stage::Submitted), Some(1.0));
        assert_eq!(wf.stage_s(Stage::Admitted), Some(1.0));
        assert_eq!(log.dropped(), 0);
        log.charge_preempt(RequestId(99), 1.0);
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn attribution_annotations_land_on_the_waterfall() {
        let mut log = LifecycleLog::default();
        let id = RequestId(2);
        log.start(id, "vol16x16x16".to_string(), 0.5);
        log.annotate_submission(id, "high", "five-step");
        log.annotate_phases(id, 0.7, 0.8);
        let wf = log.get(id).unwrap();
        assert_eq!(wf.priority, Some("high"));
        assert_eq!(wf.algorithm, Some("five-step"));
        assert_eq!(wf.plan_ready_s, Some(0.7));
        assert_eq!(wf.h2d_start_s, Some(0.8));
        assert_eq!(log.dropped(), 0);
    }
}
