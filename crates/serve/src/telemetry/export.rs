//! Exporters: the `bifft-metrics-v1` JSON document, Prometheus text
//! exposition (with a parser for round-trip tests and CI validation), and
//! the merged Chrome trace (per-card kernel tracks plus per-request
//! waterfall tracks).
//!
//! All rendering is hand-rolled and deterministic — `BTreeMap` iteration
//! order, shortest-roundtrip `f64` display — in the same style as the
//! bench and report JSON, so same-seed runs export byte-identical
//! documents and CI can gate on them.

use super::attribution::{self, CATEGORIES};
use super::lifecycle::{LifecycleLog, Stage};
use super::registry::MetricsRegistry;
use super::slo::SloReport;
use super::timeline::Timeline;
use gpu_sim::Trace;
use std::collections::BTreeMap;

/// Schema tag of the metrics JSON document.
pub const METRICS_SCHEMA: &str = "bifft-metrics-v1";

/// Chrome-trace process id of the per-request waterfall tracks (cards use
/// their own indices; this sorts the request tracks below them).
pub const REQUESTS_PID: usize = 1000;

fn fmt_counters(map: &BTreeMap<String, u64>, indent: &str, out: &mut String) {
    if map.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push_str("{\n");
    let n = map.len();
    for (i, (k, v)) in map.iter().enumerate() {
        out.push_str(&format!(
            "{indent}  \"{k}\": {v}{}\n",
            if i + 1 < n { "," } else { "" }
        ));
    }
    out.push_str(indent);
    out.push('}');
}

fn fmt_gauges(map: &BTreeMap<String, f64>, indent: &str, out: &mut String) {
    if map.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push_str("{\n");
    let n = map.len();
    for (i, (k, v)) in map.iter().enumerate() {
        out.push_str(&format!(
            "{indent}  \"{k}\": {v}{}\n",
            if i + 1 < n { "," } else { "" }
        ));
    }
    out.push_str(indent);
    out.push('}');
}

fn fmt_inline_counters(map: &BTreeMap<String, u64>) -> String {
    let body: Vec<String> = map.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
    format!("{{{}}}", body.join(", "))
}

fn fmt_inline_gauges(map: &BTreeMap<String, f64>) -> String {
    let body: Vec<String> = map.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
    format!("{{{}}}", body.join(", "))
}

/// Renders the SLO verdict section as a JSON object. `indent` is the
/// indentation of the line the object opens on; inner lines indent two
/// spaces further. Shared by the metrics document and `ServeReport` JSON
/// so the two can never disagree about the verdict's shape.
pub fn render_slo_json(slo: &SloReport, indent: &str) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("{indent}  \"ok\": {},\n", slo.ok));
    s.push_str(&format!("{indent}  \"verdicts\": ["));
    if slo.verdicts.is_empty() {
        s.push(']');
    } else {
        s.push('\n');
        let n = slo.verdicts.len();
        for (i, v) in slo.verdicts.iter().enumerate() {
            s.push_str(&format!(
                "{indent}    {{\"objective\": \"{}\", \"target\": {}, \"observed\": {}, \
                 \"burn_long\": {}, \"burn_short\": {}, \"ok\": {}}}{}\n",
                v.objective,
                v.target,
                v.observed,
                v.burn_long,
                v.burn_short,
                v.ok,
                if i + 1 < n { "," } else { "" }
            ));
        }
        s.push_str(&format!("{indent}  ]"));
    }
    s.push('\n');
    s.push_str(indent);
    s.push('}');
    s
}

/// Renders the full `bifft-metrics-v1` document: final counters, gauges
/// and histograms, the tick-sampled series, and the SLO verdict.
pub fn metrics_json(registry: &MetricsRegistry, timeline: &Timeline, slo: &SloReport) -> String {
    let mut s = String::with_capacity(4096);
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{METRICS_SCHEMA}\",\n"));
    s.push_str(&format!("  \"tick_s\": {},\n", timeline.tick_s()));
    s.push_str("  \"counters\": ");
    fmt_counters(registry.counters(), "  ", &mut s);
    s.push_str(",\n  \"gauges\": ");
    fmt_gauges(registry.gauges(), "  ", &mut s);
    s.push_str(",\n  \"histograms\": {");
    let nh = registry.histograms().len();
    if nh > 0 {
        s.push('\n');
        for (i, (name, h)) in registry.histograms().iter().enumerate() {
            let bounds: Vec<String> = h.bounds.iter().map(|b| format!("{b}")).collect();
            let counts: Vec<String> = h.counts.iter().map(|c| format!("{c}")).collect();
            s.push_str(&format!(
                "    \"{name}\": {{\"bounds\": [{}], \"counts\": [{}], \"sum\": {}, \"count\": {}}}{}\n",
                bounds.join(", "),
                counts.join(", "),
                h.sum,
                h.count,
                if i + 1 < nh { "," } else { "" }
            ));
        }
        s.push_str("  ");
    }
    s.push_str("},\n");
    s.push_str("  \"series\": [");
    let ns = timeline.samples().len();
    if ns > 0 {
        s.push('\n');
        for (i, sample) in timeline.samples().iter().enumerate() {
            s.push_str(&format!(
                "    {{\"t_s\": {}, \"counters\": {}, \"gauges\": {}}}{}\n",
                sample.t_s,
                fmt_inline_counters(&sample.counters),
                fmt_inline_gauges(&sample.gauges),
                if i + 1 < ns { "," } else { "" }
            ));
        }
        s.push_str("  ");
    }
    s.push_str("],\n");
    s.push_str(&format!("  \"series_dropped\": {},\n", timeline.dropped()));
    s.push_str("  \"slo\": ");
    s.push_str(&render_slo_json(slo, "  "));
    s.push_str("\n}\n");
    s
}

/// Renders the registry and verdict in Prometheus text-exposition format.
/// Histogram buckets follow the cumulative `le` convention; SLO burn rates
/// export as labelled gauges.
pub fn prometheus_text(registry: &MetricsRegistry, slo: &SloReport) -> String {
    let mut s = String::with_capacity(2048);
    for (name, v) in registry.counters() {
        s.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (name, v) in registry.gauges() {
        s.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
    }
    for (name, h) in registry.histograms() {
        s.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cum = 0u64;
        for (i, c) in h.counts.iter().enumerate() {
            cum += c;
            let le = match h.bounds.get(i) {
                Some(b) => format!("{b}"),
                None => "+Inf".to_string(),
            };
            s.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
        }
        s.push_str(&format!("{name}_sum {}\n", h.sum));
        s.push_str(&format!("{name}_count {}\n", h.count));
    }
    s.push_str(&format!(
        "# TYPE serve_slo_ok gauge\nserve_slo_ok {}\n",
        u8::from(slo.ok)
    ));
    for (metric, get) in [
        ("serve_slo_burn_long", 0usize),
        ("serve_slo_burn_short", 1),
        ("serve_slo_objective_ok", 2),
    ] {
        s.push_str(&format!("# TYPE {metric} gauge\n"));
        for v in &slo.verdicts {
            let value = match get {
                0 => format!("{}", v.burn_long),
                1 => format!("{}", v.burn_short),
                _ => format!("{}", u8::from(v.ok)),
            };
            s.push_str(&format!(
                "{metric}{{objective=\"{}\"}} {value}\n",
                v.objective
            ));
        }
    }
    s
}

/// Parses Prometheus text exposition back into `name{labels} -> value` —
/// the round-trip check that the exposition stays well-formed.
///
/// # Errors
/// A malformed sample line (no value, unparsable value, duplicate series).
pub fn parse_prometheus(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value in '{line}'", lineno + 1))?;
        let v: f64 = value
            .parse()
            .map_err(|e| format!("line {}: bad value '{value}': {e}", lineno + 1))?;
        if out.insert(name.to_string(), v).is_some() {
            return Err(format!("line {}: duplicate series '{name}'", lineno + 1));
        }
    }
    Ok(out)
}

/// Structurally validates a `bifft-metrics-v1` document (schema tag and
/// required sections) and returns the SLO verdict's overall `ok`.
///
/// # Errors
/// A wrong or missing schema tag, or a missing required section.
pub fn validate_metrics_json(text: &str) -> Result<bool, String> {
    let schema_at = text
        .find("\"schema\": \"")
        .ok_or("missing \"schema\" field")?
        + "\"schema\": \"".len();
    let schema_end = text[schema_at..]
        .find('"')
        .ok_or("unterminated schema tag")?
        + schema_at;
    let schema = &text[schema_at..schema_end];
    if schema != METRICS_SCHEMA {
        return Err(format!("schema '{schema}' is not '{METRICS_SCHEMA}'"));
    }
    for key in [
        "\"tick_s\": ",
        "\"counters\": {",
        "\"gauges\": {",
        "\"histograms\": {",
        "\"series\": [",
        "\"series_dropped\": ",
        "\"slo\": {",
        // Pre-registered by `Telemetry::new`, so every service-rendered
        // document carries them even with zero traffic.
        "\"serve_lifecycle_dropped_total\": ",
        "\"serve_attr_compute_us_total\": ",
    ] {
        if !text.contains(key) {
            return Err(format!("missing section {key}"));
        }
    }
    // The verdict object renders its overall "ok" first, so the first
    // occurrence after the section opener is the one to read.
    let slo_at = text.find("\"slo\": {").expect("checked above");
    let ok_at = text[slo_at..]
        .find("\"ok\": ")
        .ok_or("slo section has no \"ok\"")?
        + slo_at
        + "\"ok\": ".len();
    match text[ok_at..].split([',', '\n', '}']).next().map(str::trim) {
        Some("true") => Ok(true),
        Some("false") => Ok(false),
        other => Err(format!("unreadable slo ok value {other:?}")),
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Microseconds, the Chrome trace time unit.
fn us(t_s: f64) -> f64 {
    t_s * 1e6
}

/// Merges per-card sim-prof traces and per-request waterfalls into one
/// Chrome trace-event document: each card renders as its own process
/// (kernel, span, PCIe and stream tracks, exactly as sim-prof exports
/// them), and every request gets a thread under a `requests` process whose
/// slices are its stage segments, cross-linked to the dispatch span via
/// slice args — the drill-down from a p99 request to the kernels that ran
/// it.
pub fn chrome_trace(cards: &[(usize, Trace)], lifecycle: &LifecycleLog) -> String {
    let mut ev: Vec<String> = Vec::new();
    for (pid, trace) in cards {
        ev.extend(trace.chrome_events(*pid, &format!("card {pid}")));
    }
    ev.push(format!(
        "{{\"ph\":\"M\",\"pid\":{REQUESTS_PID},\"name\":\"process_name\",\"args\":{{\"name\":\"requests\"}}}}"
    ));
    const SEGMENTS: [(Stage, Stage, &str); 6] = [
        (Stage::Submitted, Stage::Admitted, "admit"),
        (Stage::Admitted, Stage::Batched, "queued"),
        (Stage::Batched, Stage::Dispatched, "batch"),
        (Stage::Dispatched, Stage::H2d, "h2d"),
        (Stage::H2d, Stage::Compute, "compute"),
        (Stage::Compute, Stage::D2h, "d2h"),
    ];
    for (id, wf) in lifecycle.iter() {
        ev.push(format!(
            "{{\"ph\":\"M\",\"pid\":{REQUESTS_PID},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"req {} {}\"}}}}",
            id.0,
            id.0,
            esc(wf.shape())
        ));
        let args = match (&wf.span, wf.card) {
            (Some(span), Some(card)) => {
                format!(",\"args\":{{\"span\":\"{}\",\"card\":{card}}}", esc(span))
            }
            (Some(span), None) => format!(",\"args\":{{\"span\":\"{}\"}}", esc(span)),
            _ => String::new(),
        };
        for (from, to, name) in SEGMENTS {
            if let (Some(a), Some(b)) = (wf.stage_s(from), wf.stage_s(to)) {
                let linked = matches!(from, Stage::Dispatched | Stage::H2d | Stage::Compute);
                ev.push(format!(
                    "{{\"ph\":\"X\",\"pid\":{REQUESTS_PID},\"tid\":{},\"name\":\"{name}\",\"ts\":{},\"dur\":{}{}}}",
                    id.0,
                    us(a),
                    us(b - a),
                    if linked { args.as_str() } else { "" }
                ));
            }
        }
        for stage in [Stage::Rejected, Stage::Failed] {
            if let Some(t) = wf.stage_s(stage) {
                let label = match (stage, wf.reject_reason) {
                    (Stage::Rejected, Some(reason)) => format!("rejected ({reason})"),
                    _ => stage.label().to_string(),
                };
                ev.push(format!(
                    "{{\"ph\":\"i\",\"pid\":{REQUESTS_PID},\"tid\":{},\"name\":\"{}\",\"ts\":{},\"s\":\"t\"}}",
                    id.0,
                    esc(&label),
                    us(t)
                ));
            }
        }
    }
    // Attribution counter track: at each completion, the cumulative
    // attributed microseconds per ledger category — the "where has the
    // time gone so far" stack chart under the request waterfalls.
    let mut ledgers = attribution::collect(lifecycle);
    ledgers
        .sort_by(|a, b| f64::total_cmp(&a.completed_s, &b.completed_s).then(a.id.0.cmp(&b.id.0)));
    let mut cum_us = [0.0f64; CATEGORIES.len()];
    for l in &ledgers {
        for (c, part) in cum_us.iter_mut().zip(l.parts_s()) {
            *c += us(*part);
        }
        let args: Vec<String> = CATEGORIES
            .iter()
            .zip(cum_us)
            .map(|(c, v)| format!("\"{}\":{v}", c.label()))
            .collect();
        ev.push(format!(
            "{{\"ph\":\"C\",\"pid\":{REQUESTS_PID},\"name\":\"attribution_us\",\"ts\":{},\"args\":{{{}}}}}",
            us(l.completed_s),
            args.join(",")
        ));
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&ev.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestId;
    use crate::telemetry::slo::SloVerdict;

    fn tiny_slo() -> SloReport {
        SloReport {
            verdicts: vec![SloVerdict {
                objective: "latency_p95".to_string(),
                target: 50.0,
                observed: 1.5,
                burn_long: 0.25,
                burn_short: 0.0,
                ok: true,
            }],
            ok: true,
        }
    }

    #[test]
    fn metrics_json_is_valid_and_carries_the_verdict() {
        let mut reg = MetricsRegistry::new();
        reg.set_counter("serve_lifecycle_dropped_total", 0);
        reg.set_counter("serve_attr_compute_us_total", 0);
        reg.add("serve_completed_total", 8);
        reg.set_gauge("serve_queue_depth", 2.0);
        reg.declare_histogram("serve_batch_size", &[1.0, 4.0]);
        reg.observe("serve_batch_size", 3.0);
        let mut tl = Timeline::new(1e-3);
        tl.advance(2e-3, &reg);
        let doc = metrics_json(&reg, &tl, &tiny_slo());
        assert_eq!(validate_metrics_json(&doc), Ok(true));
        assert!(doc.contains("\"serve_completed_total\": 8"));
        assert!(doc.contains("\"bounds\": [1, 4]"));
        assert!(doc.contains("\"t_s\": 0.001"));
        let mut violated = tiny_slo();
        violated.ok = false;
        assert_eq!(
            validate_metrics_json(&metrics_json(&reg, &tl, &violated)),
            Ok(false)
        );
    }

    #[test]
    fn validate_rejects_wrong_schema_and_missing_sections() {
        assert!(validate_metrics_json("{}").is_err());
        let doc = metrics_json(&MetricsRegistry::new(), &Timeline::new(1e-3), &tiny_slo());
        let wrong = doc.replace(METRICS_SCHEMA, "bifft-metrics-v0");
        assert!(validate_metrics_json(&wrong)
            .unwrap_err()
            .contains("schema"));
        let truncated = doc.replace("\"series_dropped\"", "\"elided\"");
        assert!(validate_metrics_json(&truncated).is_err());
    }

    #[test]
    fn prometheus_round_trips_with_cumulative_buckets() {
        let mut reg = MetricsRegistry::new();
        reg.add("serve_completed_total", 8);
        reg.set_gauge("serve_queue_depth", 2.5);
        reg.declare_histogram("serve_batch_size", &[1.0, 4.0]);
        reg.observe("serve_batch_size", 0.5);
        reg.observe("serve_batch_size", 3.0);
        reg.observe("serve_batch_size", 99.0);
        let text = prometheus_text(&reg, &tiny_slo());
        let parsed = parse_prometheus(&text).unwrap();
        assert_eq!(parsed["serve_completed_total"], 8.0);
        assert_eq!(parsed["serve_queue_depth"], 2.5);
        assert_eq!(parsed["serve_batch_size_bucket{le=\"1\"}"], 1.0);
        assert_eq!(parsed["serve_batch_size_bucket{le=\"4\"}"], 2.0);
        assert_eq!(parsed["serve_batch_size_bucket{le=\"+Inf\"}"], 3.0);
        assert_eq!(parsed["serve_batch_size_count"], 3.0);
        assert_eq!(parsed["serve_slo_ok"], 1.0);
        assert_eq!(
            parsed["serve_slo_burn_long{objective=\"latency_p95\"}"],
            0.25
        );
    }

    #[test]
    fn parse_prometheus_rejects_malformed_lines() {
        assert!(parse_prometheus("novalue\n").is_err());
        assert!(parse_prometheus("a notanumber\n").is_err());
        assert!(parse_prometheus("a 1\na 2\n").is_err());
    }

    #[test]
    fn chrome_trace_merges_cards_and_waterfalls() {
        let mut log = LifecycleLog::default();
        let id = RequestId(5);
        log.start(id, "1d256x16".to_string(), 0.0);
        log.record(id, Stage::Admitted, 0.0);
        log.record(id, Stage::Batched, 1e-3);
        log.record(id, Stage::Dispatched, 1e-3);
        log.record(id, Stage::H2d, 2e-3);
        log.record(id, Stage::Compute, 3e-3);
        log.record(id, Stage::D2h, 4e-3);
        log.record(id, Stage::Completed, 4e-3);
        log.annotate(id, "serve_rows_256x16_c0l0", Some(0));
        let doc = chrome_trace(&[(0, Trace::default())], &log);
        assert!(doc.contains("\"name\":\"card 0\""));
        assert!(doc.contains("\"name\":\"req 5 1d256x16\""));
        assert!(doc.contains("\"name\":\"compute\""));
        assert!(doc.contains("\"span\":\"serve_rows_256x16_c0l0\",\"card\":0"));
        // The completed request contributes one attribution counter sample.
        assert!(doc.contains("\"ph\":\"C\",\"pid\":1000,\"name\":\"attribution_us\",\"ts\":4000"));
        assert!(doc.contains("\"compute\":"));
        assert!(doc.ends_with("],\"displayTimeUnit\":\"ms\"}\n"));
    }
}
