//! The metrics registry: counters, gauges and fixed-bound histograms with
//! no external dependencies and deterministic iteration order.
//!
//! Everything is `BTreeMap`-keyed so exports render identically across
//! runs, and counters are monotone by construction: `add` only grows them
//! and `set_counter` clamps to the running maximum (it exists to mirror
//! values maintained elsewhere, like the per-card plan-cache stats).

use std::collections::BTreeMap;

/// A fixed-bound histogram (Prometheus `le`-bucket convention: bucket `i`
/// counts observations `<= bounds[i]`, plus an implicit `+Inf` bucket).
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Ascending upper bounds, one per explicit bucket.
    pub bounds: Vec<f64>,
    /// Cumulative-free per-bucket counts; `counts[bounds.len()]` is the
    /// `+Inf` overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must ascend"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        let at = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[at] += 1;
        self.sum += v;
        self.count += 1;
    }
}

/// The registry itself. See the module docs for the determinism and
/// monotonicity guarantees.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increments counter `name` by one (creating it at zero first).
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `by` to counter `name` (creating it at zero first).
    pub fn add(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets counter `name` to `v`, clamped to never decrease — the mirror
    /// path for monotone values maintained outside the registry.
    pub fn set_counter(&mut self, name: &str, v: u64) {
        let e = self.counters.entry(name.to_string()).or_insert(0);
        *e = (*e).max(v);
    }

    /// Current value of counter `name` (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `v`.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Current value of gauge `name` (0.0 when never set).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Declares histogram `name` with the given ascending bucket bounds.
    /// Re-declaring an existing histogram is a no-op (the bounds stick).
    pub fn declare_histogram(&mut self, name: &str, bounds: &[f64]) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds));
    }

    /// Records one observation into histogram `name`.
    ///
    /// # Panics
    /// When the histogram was never declared — observation sites must know
    /// their bounds up front, or bucket layouts would depend on data order.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .get_mut(name)
            .unwrap_or_else(|| panic!("histogram '{name}' was never declared"))
            .observe(v);
    }

    /// All counters, name-ordered.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All gauges, name-ordered.
    pub fn gauges(&self) -> &BTreeMap<String, f64> {
        &self.gauges
    }

    /// All histograms, name-ordered.
    pub fn histograms(&self) -> &BTreeMap<String, Histogram> {
        &self.histograms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone_by_construction() {
        let mut r = MetricsRegistry::new();
        r.inc("a_total");
        r.add("a_total", 4);
        assert_eq!(r.counter("a_total"), 5);
        r.set_counter("a_total", 3); // clamped: never decreases
        assert_eq!(r.counter("a_total"), 5);
        r.set_counter("a_total", 9);
        assert_eq!(r.counter("a_total"), 9);
        assert_eq!(r.counter("never_touched"), 0);
    }

    #[test]
    fn gauges_move_freely() {
        let mut r = MetricsRegistry::new();
        r.set_gauge("depth", 4.0);
        r.set_gauge("depth", 1.0);
        assert_eq!(r.gauge("depth"), 1.0);
    }

    #[test]
    fn histogram_buckets_follow_le_convention() {
        let mut r = MetricsRegistry::new();
        r.declare_histogram("lat", &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            r.observe("lat", v);
        }
        let h = &r.histograms()["lat"];
        assert_eq!(h.counts, vec![2, 1, 1, 1], "le buckets plus +Inf");
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 106.0);
        // Re-declaration keeps the data.
        r.declare_histogram("lat", &[9.0]);
        assert_eq!(r.histograms()["lat"].count, 5);
    }

    #[test]
    #[should_panic(expected = "never declared")]
    fn observing_an_undeclared_histogram_panics() {
        MetricsRegistry::new().observe("nope", 1.0);
    }

    #[test]
    fn iteration_order_is_name_sorted() {
        let mut r = MetricsRegistry::new();
        r.inc("z_total");
        r.inc("a_total");
        let names: Vec<&str> = r.counters().keys().map(String::as_str).collect();
        assert_eq!(names, vec!["a_total", "z_total"]);
    }
}
