//! Serve-side observability: request-lifecycle tracing, a windowed metrics
//! registry, SLO monitoring and the exporters over all three.
//!
//! Everything here rides the service's deterministic virtual clock — the
//! telemetry layer *observes* the discrete-event simulation without ever
//! perturbing it (no stage records or tick samples change a dispatch
//! decision or a timestamp), so a telemetry-enabled run is bit-identical
//! to a blind one and two same-seed runs export bit-identical documents.
//!
//! - [`lifecycle`] — per-request stage waterfalls (`submitted → admitted →
//!   batched → dispatched → h2d → compute → d2h → completed`), recorded at
//!   the transitions in the queue, batcher, scheduler and service, and
//!   cross-linked to the sim-prof span of the dispatch;
//! - [`registry`] — dependency-free counters, gauges and fixed-bound
//!   histograms with deterministic (BTreeMap) iteration order;
//! - [`timeline`] — the registry sampled on a fixed virtual-time tick into
//!   a windowed time series;
//! - [`slo`] — latency/error/goodput objectives with long- and
//!   short-window burn rates and a machine-readable verdict;
//! - [`export`] — the `bifft-metrics-v1` JSON document, Prometheus text
//!   exposition (plus its parser, for round-trip tests) and the merged
//!   Chrome trace (per-card kernel tracks + per-request waterfall tracks);
//! - [`attribution`] — the per-request time ledger: e2e latency decomposed
//!   into exclusive, exhaustive categories with a conservation invariant,
//!   aggregated into shape/algorithm/priority/card profiles and the
//!   `bifft-attr-v3` document `fft-prof` analyzes.

pub mod attribution;
pub mod export;
pub mod lifecycle;
pub mod registry;
pub mod slo;
pub mod timeline;

pub use attribution::{
    audit, collect, parse_attr_json, render_attr_json, AttrSummary, Audit, BudgetLine, Category,
    Ledger, ATTR_SCHEMA, CATEGORIES, CONSERVATION_TOLERANCE_S,
};
pub use export::{
    chrome_trace, metrics_json, parse_prometheus, prometheus_text, validate_metrics_json,
    METRICS_SCHEMA,
};
pub use lifecycle::{LifecycleLog, Stage, Waterfall};
pub use registry::{Histogram, MetricsRegistry};
pub use slo::{SloPolicy, SloReport, SloVerdict};
pub use timeline::{Sample, Timeline};

/// Canonical metric names, shared by the service (which increments them),
/// the SLO monitor (which reads them) and the exporters (which render
/// them). Counters end in `_total` per Prometheus convention.
pub mod names {
    /// Requests submitted (admitted + rejected).
    pub const SUBMITTED: &str = "serve_submitted_total";
    /// Requests admitted into the queue.
    pub const ADMITTED: &str = "serve_admitted_total";
    /// Requests completed.
    pub const COMPLETED: &str = "serve_completed_total";
    /// Admitted requests that failed at dispatch.
    pub const FAILED: &str = "serve_failed_total";
    /// Completions past their deadline.
    pub const TIMEOUTS: &str = "serve_timeouts_total";
    /// Rejections: the bounded queue was full (backpressure).
    pub const REJECTED_QUEUE_FULL: &str = "serve_rejected_queue_full_total";
    /// Rejections: the deadline was infeasible at admission (shedding).
    pub const REJECTED_DEADLINE: &str = "serve_rejected_deadline_total";
    /// Rejections: malformed shape or payload.
    pub const REJECTED_UNSUPPORTED: &str = "serve_rejected_unsupported_total";
    /// Rejections: a rows payload larger than a lane's staging slot.
    pub const REJECTED_OVERSIZED: &str = "serve_rejected_oversized_total";
    /// Rejections: a volume not even the whole fleet could allocate.
    pub const REJECTED_UNALLOCATABLE: &str = "serve_rejected_unallocatable_total";
    /// Rejections: the tenant was over its admission quota.
    pub const REJECTED_QUOTA: &str = "serve_rejected_quota_total";
    /// Lane preemptions: dispatched batches aborted at a stream-safe point
    /// and requeued to free a lane for a higher-priority arrival.
    pub const PREEMPTIONS: &str = "serve_preemptions_total";
    /// Coalesced launches dispatched.
    pub const LAUNCHES: &str = "serve_launches_total";
    /// Requests carried by those launches.
    pub const BATCHED_REQUESTS: &str = "serve_batched_requests_total";
    /// Payload bytes completed (one direction).
    pub const PAYLOAD_BYTES: &str = "serve_payload_bytes_total";
    /// In-deadline payload bytes, both directions (the goodput numerator).
    pub const GOOD_BYTES: &str = "serve_good_bytes_total";
    /// Completions whose latency exceeded the SLO p95 target.
    pub const LATENCY_OVER_SLO: &str = "serve_latency_over_slo_total";
    /// Plan-cache hits across the fleet (mirrored from the cards).
    pub const PLAN_HITS: &str = "serve_plan_cache_hits_total";
    /// Plan-cache misses across the fleet (mirrored from the cards).
    pub const PLAN_MISSES: &str = "serve_plan_cache_misses_total";
    /// Validator out-of-bounds accesses (occurrences, `--check-hazards`).
    pub const CHECK_OOB: &str = "serve_check_oob_total";
    /// Validator uninitialised reads (occurrences).
    pub const CHECK_UNINIT: &str = "serve_check_uninit_total";
    /// Validator use-after-free accesses (occurrences).
    pub const CHECK_USE_AFTER_FREE: &str = "serve_check_use_after_free_total";
    /// Validator cross-stream hazards.
    pub const CHECK_HAZARDS: &str = "serve_check_hazards_total";
    /// Kernel launches the validator checked.
    pub const CHECK_KERNELS: &str = "serve_check_kernels_total";
    /// Interval ops the validator replayed.
    pub const CHECK_OPS: &str = "serve_check_ops_total";
    /// Gauge: requests waiting in the submission queue.
    pub const QUEUE_DEPTH: &str = "serve_queue_depth";
    /// Gauge: in-deadline GB/s over elapsed time so far.
    pub const GOODPUT_GBS: &str = "serve_goodput_gbs";
    /// Gauge: fleet plan-cache hit rate in `[0, 1]`.
    pub const PLAN_HIT_RATE: &str = "serve_plan_cache_hit_rate";
    /// Histogram: requests coalesced per launch.
    pub const BATCH_SIZE_HIST: &str = "serve_batch_size";
    /// Histogram: completion latency, milliseconds.
    pub const LATENCY_MS_HIST: &str = "serve_latency_ms";
    /// Lifecycle stamps/annotations dropped (unknown request id or a
    /// backwards stamp) — should stay 0 on a healthy service.
    pub const LIFECYCLE_DROPPED: &str = "serve_lifecycle_dropped_total";
    /// Cumulative attributed time per ledger category, microseconds, in
    /// [`super::attribution::CATEGORIES`] order. One counter per category
    /// (`serve_attr_<category>_us_total`), incremented at completion.
    pub const ATTR_US: [&str; 12] = [
        "serve_attr_admission_us_total",
        "serve_attr_queue_us_total",
        "serve_attr_batch_us_total",
        "serve_attr_plan_us_total",
        "serve_attr_staging_us_total",
        "serve_attr_h2d_us_total",
        "serve_attr_compute_us_total",
        "serve_attr_d2h_us_total",
        "serve_attr_finalize_us_total",
        "serve_attr_network_us_total",
        "serve_attr_preempted_us_total",
        "serve_attr_resident_us_total",
    ];
    /// Gauge name for card `i`'s compute-engine utilization.
    pub fn card_compute_util(i: usize) -> String {
        format!("serve_card{i}_compute_utilization")
    }
    /// Gauge name for card `i`'s copy-engine utilization.
    pub fn card_copy_util(i: usize) -> String {
        format!("serve_card{i}_copy_utilization")
    }
}

/// The service's telemetry bundle: one registry, one tick-sampled
/// timeline, one lifecycle log.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Counters, gauges and histograms.
    pub registry: MetricsRegistry,
    /// The registry sampled on the virtual-time tick.
    pub timeline: Timeline,
    /// Per-request stage waterfalls.
    pub lifecycle: LifecycleLog,
}

impl Telemetry {
    /// A fresh bundle sampling every `tick_s` simulated seconds, with the
    /// service's standard histograms declared.
    pub fn new(tick_s: f64) -> Self {
        let mut registry = MetricsRegistry::new();
        registry.declare_histogram(names::BATCH_SIZE_HIST, &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0]);
        registry.declare_histogram(
            names::LATENCY_MS_HIST,
            &[0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0],
        );
        // Pre-register the drop counter and the attribution counters at 0
        // so a run with no traffic still exports them (and CI's
        // --validate-metrics can require their presence).
        registry.set_counter(names::LIFECYCLE_DROPPED, 0);
        registry.set_counter(names::PREEMPTIONS, 0);
        for name in names::ATTR_US {
            registry.set_counter(name, 0);
        }
        Telemetry {
            registry,
            timeline: Timeline::new(tick_s),
            lifecycle: LifecycleLog::default(),
        }
    }
}
