//! The per-request time ledger: end-to-end latency decomposed into
//! exclusive, exhaustive categories, with a conservation invariant.
//!
//! The source paper's method is an explicit time/bandwidth account of every
//! kernel; this module applies the same discipline to the serving stack.
//! Every completed request's [`super::lifecycle::Waterfall`] (plus the
//! intra-dispatch annotations the scheduler records) is reduced to a
//! boundary chain in pipeline order:
//!
//! ```text
//! Submitted → Admitted → Batched → Dispatched → plan ready → H2D start
//!           → H2D done → compute done → D2H done → Completed
//! ```
//!
//! Each boundary is clamped to be non-decreasing, and the ledger's
//! categories are the consecutive differences — so the category sum
//! *telescopes* to the end-to-end latency and conservation holds by
//! construction up to float rounding ([`CONSERVATION_TOLERANCE_S`]).
//! [`audit`] re-checks the invariant anyway: a future stamp-ordering bug
//! shows up as an unbalanced ledger instead of a silently wrong profile.
//!
//! The `network` category exists for gateway traffic: the *server-side*
//! ledger always reports it as zero (wall-clock network time cannot enter
//! the virtual-time documents without breaking same-seed determinism), and
//! clients reconcile their observed latency against the served ledger using
//! the gate's frame-received/enqueued/acked wall stamps carried on
//! `SubmitAck` (see the gate crate).
//!
//! Everything here is purely observational: building ledgers reads the
//! lifecycle log and never advances a clock or perturbs the schedule.

use super::lifecycle::{LifecycleLog, Stage, Waterfall};
use crate::request::RequestId;
use fft_math::stats::{mean, nearest_rank, sort_samples};
use std::collections::BTreeMap;

/// Schema tag of the attribution JSON document. v2 added the `preempted`
/// category (wasted device time of aborted-and-requeued dispatches); v3
/// added `resident` (pipeline compute over operands already on the card).
pub const ATTR_SCHEMA: &str = "bifft-attr-v3";

/// Largest conservation error a balanced ledger may carry, seconds. The
/// telescoping construction keeps the true error at exactly zero; the
/// tolerance absorbs nothing today and exists so the audit has a contract.
pub const CONSERVATION_TOLERANCE_S: f64 = 1e-9;

/// One exclusive latency category. Declaration order is pipeline order and
/// the order every export renders in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// `Submitted → Admitted`: admission control.
    Admission,
    /// `Admitted → Batched`: waiting in the bounded queue.
    Queue,
    /// `Batched → Dispatched`: waiting for batch formation / a free lane.
    Batch,
    /// `Dispatched → plan ready`: plan-cache lookup or build.
    Plan,
    /// `plan ready → H2D start`: waiting for the staging slot / copy
    /// engine / PCIe link to free up.
    Staging,
    /// `H2D start → H2D done`: host-to-device bytes on the wire.
    H2d,
    /// `H2D done → compute done`: kernel execution.
    Compute,
    /// `compute done → D2H done`: device-to-host bytes on the wire.
    D2h,
    /// `D2H done → Completed`: completion bookkeeping until the poll-visible
    /// stamp.
    Finalize,
    /// Gateway network/pacing overhead. Always zero in server-side ledgers;
    /// reconciled client-side from the wire trace stamps.
    Network,
    /// Device time wasted on dispatches of this request that a lane
    /// preemption aborted — carved out of the `Queue` share (the requeued
    /// wait the waterfall already measured), so conservation still holds.
    Preempted,
    /// Pipeline compute over operands that were already device-resident
    /// (intermediates reused without a PCIe trip) — carved out of the
    /// `Compute` share, so conservation still holds.
    Resident,
}

/// Every category, in pipeline (and export) order.
pub const CATEGORIES: [Category; 12] = [
    Category::Admission,
    Category::Queue,
    Category::Batch,
    Category::Plan,
    Category::Staging,
    Category::H2d,
    Category::Compute,
    Category::D2h,
    Category::Finalize,
    Category::Network,
    Category::Preempted,
    Category::Resident,
];

impl Category {
    /// Stable lowercase label (JSON keys, metric name stems).
    pub fn label(self) -> &'static str {
        match self {
            Category::Admission => "admission",
            Category::Queue => "queue",
            Category::Batch => "batch",
            Category::Plan => "plan",
            Category::Staging => "staging",
            Category::H2d => "h2d",
            Category::Compute => "compute",
            Category::D2h => "d2h",
            Category::Finalize => "finalize",
            Category::Network => "network",
            Category::Preempted => "preempted",
            Category::Resident => "resident",
        }
    }

    fn index(self) -> usize {
        CATEGORIES.iter().position(|&c| c == self).expect("listed")
    }
}

/// One completed request's time ledger.
#[derive(Clone, Debug, PartialEq)]
pub struct Ledger {
    /// The request.
    pub id: RequestId,
    /// Shape label (profile key).
    pub shape: String,
    /// Algorithm label (profile key; `"unknown"` when never annotated).
    pub algorithm: &'static str,
    /// Priority label (profile key; `"unknown"` when never annotated).
    pub priority: &'static str,
    /// Card the launch ran on (`None` = sharded across the fleet).
    pub card: Option<usize>,
    /// The `Completed` stamp, simulated seconds (orders counter tracks).
    pub completed_s: f64,
    /// End-to-end latency, `Submitted → Completed` over the clamped
    /// boundary chain, seconds.
    pub e2e_s: f64,
    parts_s: [f64; CATEGORIES.len()],
}

impl Ledger {
    /// Builds the ledger of one *completed* request; `None` when the
    /// waterfall never reached `Completed` (rejected, failed, in flight).
    ///
    /// Missing intra-dispatch annotations default to the previous boundary
    /// (zero-width category), and every boundary is clamped to be
    /// non-decreasing — a sharded dispatch, which stamps its device phases
    /// together, degrades to zero-width phases instead of negative ones.
    pub fn from_waterfall(id: RequestId, wf: &Waterfall) -> Option<Self> {
        if !wf.is_complete_pipeline() {
            return None;
        }
        let dispatched = wf.stage_s(Stage::Dispatched)?;
        let raw = [
            wf.stage_s(Stage::Submitted)?,
            wf.stage_s(Stage::Admitted)?,
            wf.stage_s(Stage::Batched)?,
            dispatched,
            wf.plan_ready_s.unwrap_or(dispatched),
            wf.h2d_start_s.unwrap_or(dispatched),
            wf.stage_s(Stage::H2d)?,
            wf.stage_s(Stage::Compute)?,
            wf.stage_s(Stage::D2h)?,
            wf.stage_s(Stage::Completed)?,
        ];
        let mut bounds = raw;
        for i in 1..bounds.len() {
            bounds[i] = bounds[i].max(bounds[i - 1]);
        }
        let mut parts_s = [0.0; CATEGORIES.len()];
        for (i, p) in parts_s.iter_mut().take(bounds.len() - 1).enumerate() {
            *p = bounds[i + 1] - bounds[i];
        }
        // parts_s[Network] stays 0.0: server-side ledgers carry no wall
        // time (see the module docs).
        //
        // A preemption victim spent part of its recorded queue time
        // occupying (and then abandoning) a lane; re-label that slice as
        // `preempted`. The carve moves time between categories without
        // changing their sum, so the telescoping conservation is untouched.
        if wf.preempted_s > 0.0 {
            let carve = wf.preempted_s.min(parts_s[Category::Queue.index()]);
            parts_s[Category::Queue.index()] -= carve;
            parts_s[Category::Preempted.index()] += carve;
        }
        // A pipeline spent part of its compute time on stages whose every
        // operand was already on the card; re-label that slice as
        // `resident`. Same move-not-manufacture rule as the preempt carve.
        if wf.resident_s > 0.0 {
            let carve = wf.resident_s.min(parts_s[Category::Compute.index()]);
            parts_s[Category::Compute.index()] -= carve;
            parts_s[Category::Resident.index()] += carve;
        }
        Some(Ledger {
            id,
            shape: wf.shape().to_string(),
            algorithm: wf.algorithm.unwrap_or("unknown"),
            priority: wf.priority.unwrap_or("unknown"),
            card: wf.card,
            completed_s: bounds[bounds.len() - 1],
            e2e_s: bounds[bounds.len() - 1] - bounds[0],
            parts_s,
        })
    }

    /// Seconds attributed to `category`.
    pub fn part_s(&self, category: Category) -> f64 {
        self.parts_s[category.index()]
    }

    /// All category durations, in [`CATEGORIES`] order.
    pub fn parts_s(&self) -> &[f64; CATEGORIES.len()] {
        &self.parts_s
    }

    /// Sum of every category, seconds. Conservation says this equals
    /// [`Ledger::e2e_s`].
    pub fn sum_s(&self) -> f64 {
        self.parts_s.iter().sum()
    }

    /// Absolute conservation error, seconds.
    pub fn conservation_error_s(&self) -> f64 {
        (self.sum_s() - self.e2e_s).abs()
    }
}

/// Ledgers of every completed request in the log, in request-id order.
pub fn collect(log: &LifecycleLog) -> Vec<Ledger> {
    log.iter()
        .filter_map(|(id, wf)| Ledger::from_waterfall(id, wf))
        .collect()
}

/// The conservation audit over a set of ledgers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Audit {
    /// Ledgers checked.
    pub requests: usize,
    /// Ledgers whose category sum missed their e2e latency by more than
    /// [`CONSERVATION_TOLERANCE_S`].
    pub unbalanced: usize,
    /// Largest conservation error seen, seconds.
    pub worst_err_s: f64,
}

impl Audit {
    /// True when every ledger balanced.
    pub fn ok(&self) -> bool {
        self.unbalanced == 0
    }
}

/// Checks conservation on every ledger.
pub fn audit(ledgers: &[Ledger]) -> Audit {
    let mut a = Audit {
        requests: ledgers.len(),
        unbalanced: 0,
        worst_err_s: 0.0,
    };
    for l in ledgers {
        let err = l.conservation_error_s();
        if err > CONSERVATION_TOLERANCE_S {
            a.unbalanced += 1;
        }
        if err > a.worst_err_s {
            a.worst_err_s = err;
        }
    }
    a
}

/// Aggregate statistics of one category over a group of ledgers.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CategoryStats {
    /// Total seconds across the group.
    pub total_s: f64,
    /// Mean seconds per request.
    pub mean_s: f64,
    /// Median seconds per request (nearest rank).
    pub p50_s: f64,
    /// 95th-percentile seconds per request (nearest rank).
    pub p95_s: f64,
    /// Largest single-request contribution, seconds.
    pub max_s: f64,
    /// This category's fraction of the group's total attributed time
    /// (0.0 when the group has no time at all).
    pub share: f64,
}

/// A group's aggregated ledger: e2e stats plus per-category stats.
#[derive(Clone, Debug, PartialEq)]
pub struct Profile {
    /// Requests in the group.
    pub n: usize,
    /// Mean e2e latency, seconds.
    pub e2e_mean_s: f64,
    /// Median e2e latency, seconds.
    pub e2e_p50_s: f64,
    /// 95th-percentile e2e latency, seconds.
    pub e2e_p95_s: f64,
    /// Worst e2e latency, seconds.
    pub e2e_max_s: f64,
    /// Per-category stats, in [`CATEGORIES`] order.
    pub cats: [CategoryStats; CATEGORIES.len()],
}

impl Profile {
    /// Aggregates a group of ledgers (empty groups yield all-zero stats).
    pub fn from_ledgers(ledgers: &[&Ledger]) -> Profile {
        let mut e2e: Vec<f64> = ledgers.iter().map(|l| l.e2e_s).collect();
        sort_samples(&mut e2e);
        let grand_total: f64 = ledgers.iter().map(|l| l.sum_s()).sum();
        let mut cats = [CategoryStats::default(); CATEGORIES.len()];
        for (i, c) in CATEGORIES.iter().enumerate() {
            let mut samples: Vec<f64> = ledgers.iter().map(|l| l.part_s(*c)).collect();
            let total: f64 = samples.iter().sum();
            let m = mean(&samples);
            sort_samples(&mut samples);
            cats[i] = CategoryStats {
                total_s: total,
                mean_s: m,
                p50_s: nearest_rank(&samples, 0.50),
                p95_s: nearest_rank(&samples, 0.95),
                max_s: samples.last().copied().unwrap_or(0.0),
                share: if grand_total > 0.0 {
                    total / grand_total
                } else {
                    0.0
                },
            };
        }
        Profile {
            n: ledgers.len(),
            e2e_mean_s: mean(&e2e),
            e2e_p50_s: nearest_rank(&e2e, 0.50),
            e2e_p95_s: nearest_rank(&e2e, 0.95),
            e2e_max_s: e2e.last().copied().unwrap_or(0.0),
            cats,
        }
    }
}

/// The p50-vs-p95 tail decomposition: which category grows when a request
/// lands in the tail instead of the body.
#[derive(Clone, Debug, PartialEq)]
pub struct TailSplit {
    /// Requests at or below the e2e median.
    pub body_n: usize,
    /// Requests at or above the e2e p95.
    pub tail_n: usize,
    /// Per-category mean seconds over the body, [`CATEGORIES`] order.
    pub body_mean_s: [f64; CATEGORIES.len()],
    /// Per-category mean seconds over the tail, [`CATEGORIES`] order.
    pub tail_mean_s: [f64; CATEGORIES.len()],
    /// The category whose tail mean exceeds its body mean the most — "the
    /// tail is queue wait, not compute". Earliest pipeline stage wins ties
    /// (including the degenerate empty-group case).
    pub driver: Category,
    /// How much more of the driver a tail request carries, seconds.
    pub driver_delta_s: f64,
}

/// Splits the ledgers at the e2e p50/p95 thresholds and finds the tail
/// driver.
pub fn tail_split(ledgers: &[Ledger]) -> TailSplit {
    let mut e2e: Vec<f64> = ledgers.iter().map(|l| l.e2e_s).collect();
    sort_samples(&mut e2e);
    let p50 = nearest_rank(&e2e, 0.50);
    let p95 = nearest_rank(&e2e, 0.95);
    let body: Vec<&Ledger> = ledgers.iter().filter(|l| l.e2e_s <= p50).collect();
    let tail: Vec<&Ledger> = ledgers.iter().filter(|l| l.e2e_s >= p95).collect();
    let mean_of = |group: &[&Ledger], c: Category| {
        let samples: Vec<f64> = group.iter().map(|l| l.part_s(c)).collect();
        mean(&samples)
    };
    let mut body_mean_s = [0.0; CATEGORIES.len()];
    let mut tail_mean_s = [0.0; CATEGORIES.len()];
    let mut driver = CATEGORIES[0];
    let mut driver_delta_s = f64::NEG_INFINITY;
    for (i, c) in CATEGORIES.iter().enumerate() {
        body_mean_s[i] = mean_of(&body, *c);
        tail_mean_s[i] = mean_of(&tail, *c);
        let delta = tail_mean_s[i] - body_mean_s[i];
        if delta > driver_delta_s {
            driver = *c;
            driver_delta_s = delta;
        }
    }
    if ledgers.is_empty() {
        driver_delta_s = 0.0;
    }
    TailSplit {
        body_n: body.len(),
        tail_n: tail.len(),
        body_mean_s,
        tail_mean_s,
        driver,
        driver_delta_s,
    }
}

/// One row of the ServeReport "latency budget" table.
#[derive(Clone, Debug, PartialEq)]
pub struct BudgetLine {
    /// Category label.
    pub category: &'static str,
    /// Total seconds across every completed request.
    pub total_s: f64,
    /// Fraction of all attributed time.
    pub share: f64,
    /// Mean seconds per request.
    pub mean_s: f64,
    /// 95th-percentile seconds per request.
    pub p95_s: f64,
}

/// The full latency budget, one line per category in [`CATEGORIES`] order.
pub fn budget(ledgers: &[Ledger]) -> Vec<BudgetLine> {
    let refs: Vec<&Ledger> = ledgers.iter().collect();
    let p = Profile::from_ledgers(&refs);
    CATEGORIES
        .iter()
        .enumerate()
        .map(|(i, c)| BudgetLine {
            category: c.label(),
            total_s: p.cats[i].total_s,
            share: p.cats[i].share,
            mean_s: p.cats[i].mean_s,
            p95_s: p.cats[i].p95_s,
        })
        .collect()
}

fn group_by(ledgers: &[Ledger], key: impl Fn(&Ledger) -> String) -> BTreeMap<String, Vec<&Ledger>> {
    let mut groups: BTreeMap<String, Vec<&Ledger>> = BTreeMap::new();
    for l in ledgers {
        groups.entry(key(l)).or_default().push(l);
    }
    groups
}

/// Card profile key: `"card0"`… for placed launches, `"sharded"` for
/// fleet-spanning dispatches.
fn card_key(l: &Ledger) -> String {
    match l.card {
        Some(i) => format!("card{i}"),
        None => "sharded".to_string(),
    }
}

fn fmt_cat_means(means: &[f64; CATEGORIES.len()]) -> String {
    let body: Vec<String> = CATEGORIES
        .iter()
        .enumerate()
        .map(|(i, c)| format!("\"{}\": {}", c.label(), means[i]))
        .collect();
    format!("{{{}}}", body.join(", "))
}

fn render_profile_group(out: &mut String, name: &str, groups: &BTreeMap<String, Vec<&Ledger>>) {
    out.push_str(&format!("    \"{name}\": {{"));
    if groups.is_empty() {
        out.push('}');
        return;
    }
    out.push('\n');
    let n = groups.len();
    for (i, (key, members)) in groups.iter().enumerate() {
        let p = Profile::from_ledgers(members);
        let cats: Vec<String> = CATEGORIES
            .iter()
            .enumerate()
            .map(|(ci, c)| {
                format!(
                    "\"{}\": {{\"mean_s\": {}, \"p95_s\": {}, \"share\": {}}}",
                    c.label(),
                    p.cats[ci].mean_s,
                    p.cats[ci].p95_s,
                    p.cats[ci].share
                )
            })
            .collect();
        out.push_str(&format!(
            "      \"{}\": {{\"n\": {}, \"e2e_mean_s\": {}, \"e2e_p50_s\": {}, \
             \"e2e_p95_s\": {}, \"e2e_max_s\": {}, \"cats\": {{{}}}}}{}\n",
            key,
            p.n,
            p.e2e_mean_s,
            p.e2e_p50_s,
            p.e2e_p95_s,
            p.e2e_max_s,
            cats.join(", "),
            if i + 1 < n { "," } else { "" }
        ));
    }
    out.push_str("    }");
}

/// Renders the full `bifft-attr-v3` document: conservation audit, overall
/// e2e and per-category stats, the tail decomposition, and the
/// shape/algorithm/priority/card profiles. Hand-rolled and deterministic,
/// like every other document in this repo — same-seed runs are
/// byte-identical.
pub fn render_attr_json(ledgers: &[Ledger]) -> String {
    let a = audit(ledgers);
    let refs: Vec<&Ledger> = ledgers.iter().collect();
    let overall = Profile::from_ledgers(&refs);
    let tail = tail_split(ledgers);
    let mut s = String::with_capacity(4096);
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{ATTR_SCHEMA}\",\n"));
    s.push_str(&format!("  \"requests\": {},\n", a.requests));
    s.push_str(&format!(
        "  \"conservation\": {{\"ok\": {}, \"tolerance_s\": {}, \"unbalanced\": {}, \
         \"worst_err_s\": {}}},\n",
        a.ok(),
        CONSERVATION_TOLERANCE_S,
        a.unbalanced,
        a.worst_err_s
    ));
    s.push_str(&format!(
        "  \"e2e\": {{\"mean_s\": {}, \"p50_s\": {}, \"p95_s\": {}, \"max_s\": {}}},\n",
        overall.e2e_mean_s, overall.e2e_p50_s, overall.e2e_p95_s, overall.e2e_max_s
    ));
    s.push_str("  \"categories\": {\n");
    for (i, c) in CATEGORIES.iter().enumerate() {
        let cs = overall.cats[i];
        s.push_str(&format!(
            "    \"{}\": {{\"total_s\": {}, \"mean_s\": {}, \"p50_s\": {}, \"p95_s\": {}, \
             \"max_s\": {}, \"share\": {}}}{}\n",
            c.label(),
            cs.total_s,
            cs.mean_s,
            cs.p50_s,
            cs.p95_s,
            cs.max_s,
            cs.share,
            if i + 1 < CATEGORIES.len() { "," } else { "" }
        ));
    }
    s.push_str("  },\n");
    s.push_str(&format!(
        "  \"tail\": {{\n    \"body_n\": {},\n    \"tail_n\": {},\n    \"driver\": \"{}\",\n    \
         \"driver_delta_s\": {},\n    \"body_mean_s\": {},\n    \"tail_mean_s\": {}\n  }},\n",
        tail.body_n,
        tail.tail_n,
        tail.driver.label(),
        tail.driver_delta_s,
        fmt_cat_means(&tail.body_mean_s),
        fmt_cat_means(&tail.tail_mean_s)
    ));
    s.push_str("  \"profiles\": {\n");
    render_profile_group(&mut s, "shape", &group_by(ledgers, |l| l.shape.clone()));
    s.push_str(",\n");
    render_profile_group(
        &mut s,
        "algorithm",
        &group_by(ledgers, |l| l.algorithm.to_string()),
    );
    s.push_str(",\n");
    render_profile_group(
        &mut s,
        "priority",
        &group_by(ledgers, |l| l.priority.to_string()),
    );
    s.push_str(",\n");
    render_profile_group(&mut s, "card", &group_by(ledgers, card_key));
    s.push_str("\n  }\n}\n");
    s
}

/// The summary a `bifft-attr-v3` document parses back into — what
/// `fft-prof` shows and diffs.
#[derive(Clone, Debug, PartialEq)]
pub struct AttrSummary {
    /// Completed requests covered.
    pub requests: u64,
    /// Conservation verdict.
    pub conservation_ok: bool,
    /// Worst conservation error, seconds.
    pub worst_err_s: f64,
    /// Mean e2e latency, seconds.
    pub e2e_mean_s: f64,
    /// Median e2e latency, seconds.
    pub e2e_p50_s: f64,
    /// 95th-percentile e2e latency, seconds.
    pub e2e_p95_s: f64,
    /// Per-category mean seconds per request, [`CATEGORIES`] order.
    pub cat_mean_s: [f64; CATEGORIES.len()],
    /// Per-category share of attributed time, [`CATEGORIES`] order.
    pub cat_share: [f64; CATEGORIES.len()],
    /// Tail-driver category label.
    pub driver: String,
    /// Tail-driver delta, seconds.
    pub driver_delta_s: f64,
}

/// Sequential field scanner: finds `key` at or after `*pos`, returns the
/// raw token after it and advances `*pos` — positional, so repeated key
/// names in later sections cannot alias earlier ones.
fn field<'t>(text: &'t str, pos: &mut usize, key: &str) -> Result<&'t str, String> {
    let pat = format!("\"{key}\": ");
    let at = text[*pos..]
        .find(&pat)
        .ok_or_else(|| format!("missing field \"{key}\""))?
        + *pos
        + pat.len();
    let end = text[at..]
        .find([',', '}', '\n'])
        .ok_or_else(|| format!("unterminated field \"{key}\""))?
        + at;
    *pos = end;
    Ok(text[at..end].trim())
}

fn f64_field(text: &str, pos: &mut usize, key: &str) -> Result<f64, String> {
    let raw = field(text, pos, key)?;
    raw.parse()
        .map_err(|e| format!("field \"{key}\" = '{raw}': {e}"))
}

/// Parses an attribution document back into its [`AttrSummary`].
///
/// # Errors
/// A wrong schema tag or a missing/malformed field.
pub fn parse_attr_json(text: &str) -> Result<AttrSummary, String> {
    let mut pos = 0;
    let schema = field(text, &mut pos, "schema")?
        .trim_matches('"')
        .to_string();
    if schema != ATTR_SCHEMA {
        return Err(format!("schema '{schema}' is not '{ATTR_SCHEMA}'"));
    }
    let requests = field(text, &mut pos, "requests")?
        .parse()
        .map_err(|e| format!("requests: {e}"))?;
    let conservation_ok = match field(text, &mut pos, "ok")? {
        "true" => true,
        "false" => false,
        other => return Err(format!("conservation ok = '{other}'")),
    };
    let worst_err_s = f64_field(text, &mut pos, "worst_err_s")?;
    let e2e_mean_s = f64_field(text, &mut pos, "mean_s")?;
    let e2e_p50_s = f64_field(text, &mut pos, "p50_s")?;
    let e2e_p95_s = f64_field(text, &mut pos, "p95_s")?;
    let mut cat_mean_s = [0.0; CATEGORIES.len()];
    let mut cat_share = [0.0; CATEGORIES.len()];
    for (i, c) in CATEGORIES.iter().enumerate() {
        // Position on the category's object, then read within it.
        field(text, &mut pos, c.label())?;
        cat_mean_s[i] = f64_field(text, &mut pos, "mean_s")?;
        cat_share[i] = f64_field(text, &mut pos, "share")?;
    }
    let driver = field(text, &mut pos, "driver")?
        .trim_matches('"')
        .to_string();
    let driver_delta_s = f64_field(text, &mut pos, "driver_delta_s")?;
    Ok(AttrSummary {
        requests,
        conservation_ok,
        worst_err_s,
        e2e_mean_s,
        e2e_p50_s,
        e2e_p95_s,
        cat_mean_s,
        cat_share,
        driver,
        driver_delta_s,
    })
}

/// Renders one parsed summary as the human table `fft-prof show` prints.
pub fn render_summary_text(s: &AttrSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "requests {}   conservation {} (worst err {:.3e} s)\n",
        s.requests,
        if s.conservation_ok {
            "ok"
        } else {
            "UNBALANCED"
        },
        s.worst_err_s
    ));
    out.push_str(&format!(
        "e2e  mean {:.3} ms   p50 {:.3} ms   p95 {:.3} ms\n",
        s.e2e_mean_s * 1e3,
        s.e2e_p50_s * 1e3,
        s.e2e_p95_s * 1e3
    ));
    out.push_str("category    mean(ms)    share\n");
    for (i, c) in CATEGORIES.iter().enumerate() {
        out.push_str(&format!(
            "{:<10} {:>9.4} {:>7.1}%\n",
            c.label(),
            s.cat_mean_s[i] * 1e3,
            s.cat_share[i] * 100.0
        ));
    }
    out.push_str(&format!(
        "tail driver: {} (+{:.4} ms per tail request)\n",
        s.driver,
        s.driver_delta_s * 1e3
    ));
    out
}

/// Compares two parsed summaries and names the category responsible for
/// the e2e movement — the `fft-prof diff` regression-forensics report.
pub fn render_diff_text(before: &AttrSummary, after: &AttrSummary) -> String {
    let mut out = String::new();
    let d_e2e = after.e2e_mean_s - before.e2e_mean_s;
    let pct = if before.e2e_mean_s > 0.0 {
        d_e2e / before.e2e_mean_s * 100.0
    } else {
        0.0
    };
    out.push_str(&format!(
        "e2e mean: {:.3} ms -> {:.3} ms ({:+.3} ms, {:+.1}%)\n",
        before.e2e_mean_s * 1e3,
        after.e2e_mean_s * 1e3,
        d_e2e * 1e3,
        pct
    ));
    out.push_str("category    before(ms)  after(ms)   delta(ms)\n");
    let mut culprit = CATEGORIES[0];
    let mut culprit_delta = 0.0f64;
    for (i, c) in CATEGORIES.iter().enumerate() {
        let delta = after.cat_mean_s[i] - before.cat_mean_s[i];
        if delta.abs() > culprit_delta.abs() {
            culprit = *c;
            culprit_delta = delta;
        }
        out.push_str(&format!(
            "{:<10} {:>10.4} {:>10.4} {:>+11.4}\n",
            c.label(),
            before.cat_mean_s[i] * 1e3,
            after.cat_mean_s[i] * 1e3,
            delta * 1e3
        ));
    }
    if culprit_delta == 0.0 {
        out.push_str("no category moved\n");
    } else {
        out.push_str(&format!(
            "responsible category: {} ({:+.4} ms per request)\n",
            culprit.label(),
            culprit_delta * 1e3
        ));
    }
    if before.driver != after.driver {
        out.push_str(&format!(
            "tail driver changed: {} -> {}\n",
            before.driver, after.driver
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn started(id: u64, shape: &str) -> (LifecycleLog, RequestId) {
        let mut log = LifecycleLog::default();
        let rid = RequestId(id);
        log.start(rid, shape.to_string(), 0.0);
        (log, rid)
    }

    fn complete(
        log: &mut LifecycleLog,
        id: RequestId,
        stamps: [f64; 8],
        phases: Option<(f64, f64)>,
    ) {
        log.record(id, Stage::Submitted, stamps[0]);
        log.record(id, Stage::Admitted, stamps[1]);
        log.record(id, Stage::Batched, stamps[2]);
        log.record(id, Stage::Dispatched, stamps[3]);
        log.record(id, Stage::H2d, stamps[4]);
        log.record(id, Stage::Compute, stamps[5]);
        log.record(id, Stage::D2h, stamps[6]);
        log.record(id, Stage::Completed, stamps[7]);
        if let Some((plan, h2d)) = phases {
            log.annotate_phases(id, plan, h2d);
        }
    }

    #[test]
    fn ledger_telescopes_and_conserves() {
        let (mut log, id) = started(1, "1d256x16");
        log.annotate_submission(id, "normal", "batch-1d");
        complete(
            &mut log,
            id,
            [0.0, 0.1, 0.3, 0.4, 0.7, 0.9, 1.0, 1.05],
            Some((0.45, 0.6)),
        );
        let l = Ledger::from_waterfall(id, log.get(id).unwrap()).unwrap();
        assert_eq!(l.e2e_s, 1.05);
        assert!(l.conservation_error_s() <= CONSERVATION_TOLERANCE_S);
        assert!((l.part_s(Category::Admission) - 0.1).abs() < 1e-12);
        assert!((l.part_s(Category::Queue) - 0.2).abs() < 1e-12);
        assert!((l.part_s(Category::Batch) - 0.1).abs() < 1e-12);
        assert!((l.part_s(Category::Plan) - 0.05).abs() < 1e-12);
        assert!((l.part_s(Category::Staging) - 0.15).abs() < 1e-12);
        assert!((l.part_s(Category::H2d) - 0.1).abs() < 1e-12);
        assert!((l.part_s(Category::Compute) - 0.2).abs() < 1e-12);
        assert!((l.part_s(Category::D2h) - 0.1).abs() < 1e-12);
        assert!((l.part_s(Category::Finalize) - 0.05).abs() < 1e-12);
        assert_eq!(l.part_s(Category::Network), 0.0);
    }

    #[test]
    fn degenerate_stamps_clamp_to_zero_width_phases() {
        // A sharded dispatch stamps every device phase at completion and
        // never annotates intra-dispatch boundaries.
        let (mut log, id) = started(2, "vol64x64x64");
        complete(&mut log, id, [0.0, 0.0, 0.2, 0.2, 1.0, 1.0, 1.0, 1.0], None);
        let l = Ledger::from_waterfall(id, log.get(id).unwrap()).unwrap();
        assert!(l.conservation_error_s() <= CONSERVATION_TOLERANCE_S);
        assert_eq!(l.part_s(Category::Admission), 0.0);
        assert_eq!(l.part_s(Category::Compute), 0.0);
        assert!((l.part_s(Category::H2d) - 0.8).abs() < 1e-12);
        assert_eq!(l.algorithm, "unknown");
        assert_eq!(l.priority, "unknown");
    }

    #[test]
    fn preempt_charge_carves_queue_into_preempted_and_conserves() {
        let (mut log, id) = started(4, "1d256x8");
        log.annotate_submission(id, "low", "batch-1d");
        // 0.3 s of queue time (admitted 0.1 → batched 0.4), of which 0.2 s
        // was a dispatch a preemption threw away.
        complete(
            &mut log,
            id,
            [0.0, 0.1, 0.4, 0.4, 0.5, 0.6, 0.7, 0.7],
            Some((0.4, 0.45)),
        );
        log.charge_preempt(id, 0.2);
        let l = Ledger::from_waterfall(id, log.get(id).unwrap()).unwrap();
        assert!((l.part_s(Category::Preempted) - 0.2).abs() < 1e-12);
        assert!((l.part_s(Category::Queue) - 0.1).abs() < 1e-12);
        assert!(l.conservation_error_s() <= CONSERVATION_TOLERANCE_S);
        // A charge larger than the measured queue time clamps — the ledger
        // never goes negative and never manufactures time.
        let (mut log2, id2) = started(5, "1d256x8");
        complete(
            &mut log2,
            id2,
            [0.0, 0.1, 0.4, 0.4, 0.5, 0.6, 0.7, 0.7],
            None,
        );
        log2.charge_preempt(id2, 9.0);
        let l2 = Ledger::from_waterfall(id2, log2.get(id2).unwrap()).unwrap();
        assert!((l2.part_s(Category::Preempted) - 0.3).abs() < 1e-12);
        assert_eq!(l2.part_s(Category::Queue), 0.0);
        assert!(l2.conservation_error_s() <= CONSERVATION_TOLERANCE_S);
    }

    #[test]
    fn resident_credit_carves_compute_into_resident_and_conserves() {
        let (mut log, id) = started(6, "pipe32x32x32s4");
        log.annotate_submission(id, "normal", "pipeline");
        // 0.3 s of compute (h2d 0.5 → compute 0.8), of which 0.2 s ran over
        // operands that were already device-resident.
        complete(
            &mut log,
            id,
            [0.0, 0.1, 0.4, 0.4, 0.5, 0.8, 0.9, 0.9],
            Some((0.4, 0.45)),
        );
        log.note_resident(id, 0.2);
        let l = Ledger::from_waterfall(id, log.get(id).unwrap()).unwrap();
        assert!((l.part_s(Category::Resident) - 0.2).abs() < 1e-12);
        assert!((l.part_s(Category::Compute) - 0.1).abs() < 1e-12);
        assert!(l.conservation_error_s() <= CONSERVATION_TOLERANCE_S);
        // A credit larger than the measured compute time clamps.
        let (mut log2, id2) = started(7, "pipe32x32x32s4");
        complete(
            &mut log2,
            id2,
            [0.0, 0.1, 0.4, 0.4, 0.5, 0.8, 0.9, 0.9],
            None,
        );
        log2.note_resident(id2, 9.0);
        let l2 = Ledger::from_waterfall(id2, log2.get(id2).unwrap()).unwrap();
        assert!((l2.part_s(Category::Resident) - 0.3).abs() < 1e-12);
        assert_eq!(l2.part_s(Category::Compute), 0.0);
        assert!(l2.conservation_error_s() <= CONSERVATION_TOLERANCE_S);
    }

    #[test]
    fn incomplete_waterfalls_have_no_ledger() {
        let (mut log, id) = started(3, "1d256x4");
        log.record(id, Stage::Admitted, 0.1);
        assert!(Ledger::from_waterfall(id, log.get(id).unwrap()).is_none());
        assert!(collect(&log).is_empty());
    }

    fn synthetic_ledgers() -> Vec<Ledger> {
        let mut log = LifecycleLog::default();
        // Nine fast requests compute-bound, one slow request queue-bound:
        // the tail driver must come out as queue wait.
        for i in 0..9 {
            let rid = RequestId(i);
            let t0 = i as f64 * 0.01;
            log.start(rid, "1d256x16".to_string(), t0);
            log.annotate_submission(rid, "normal", "batch-1d");
            complete(
                &mut log,
                rid,
                [
                    t0,
                    t0,
                    t0 + 0.001,
                    t0 + 0.001,
                    t0 + 0.002,
                    t0 + 0.008,
                    t0 + 0.009,
                    t0 + 0.009,
                ],
                Some((t0 + 0.001, t0 + 0.001)),
            );
            log.annotate(rid, "serve_rows_256x16_c0l0", Some(0));
        }
        let slow = RequestId(9);
        log.start(slow, "1d256x16".to_string(), 0.0);
        log.annotate_submission(slow, "low", "batch-1d");
        complete(
            &mut log,
            slow,
            [0.0, 0.0, 0.5, 0.5, 0.502, 0.508, 0.509, 0.509],
            Some((0.5, 0.501)),
        );
        log.annotate(slow, "serve_rows_256x16_c1l0", Some(1));
        collect(&log)
    }

    #[test]
    fn tail_split_names_the_queue_as_driver() {
        let ledgers = synthetic_ledgers();
        assert_eq!(ledgers.len(), 10);
        let a = audit(&ledgers);
        assert!(a.ok(), "worst err {}", a.worst_err_s);
        let tail = tail_split(&ledgers);
        assert_eq!(tail.driver, Category::Queue);
        assert!(tail.driver_delta_s > 0.4);
        assert!(tail.tail_n >= 1);
    }

    #[test]
    fn profiles_group_and_budget_sums_to_e2e() {
        let ledgers = synthetic_ledgers();
        let by_card = group_by(&ledgers, card_key);
        assert_eq!(
            by_card.keys().cloned().collect::<Vec<_>>(),
            vec!["card0".to_string(), "card1".to_string()]
        );
        assert_eq!(by_card["card0"].len(), 9);
        let lines = budget(&ledgers);
        assert_eq!(lines.len(), CATEGORIES.len());
        let total: f64 = lines.iter().map(|l| l.total_s).sum();
        let e2e_total: f64 = ledgers.iter().map(|l| l.e2e_s).sum();
        assert!((total - e2e_total).abs() < 1e-9);
        let share_sum: f64 = lines.iter().map(|l| l.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn attr_json_round_trips_and_is_deterministic() {
        let ledgers = synthetic_ledgers();
        let doc = render_attr_json(&ledgers);
        assert_eq!(doc, render_attr_json(&ledgers), "byte-identical re-render");
        let parsed = parse_attr_json(&doc).unwrap();
        assert_eq!(parsed.requests, 10);
        assert!(parsed.conservation_ok);
        assert_eq!(parsed.driver, "queue");
        let refs: Vec<&Ledger> = ledgers.iter().collect();
        let overall = Profile::from_ledgers(&refs);
        for i in 0..CATEGORIES.len() {
            assert_eq!(parsed.cat_mean_s[i], overall.cats[i].mean_s);
            assert_eq!(parsed.cat_share[i], overall.cats[i].share);
        }
        assert_eq!(parsed.e2e_p95_s, overall.e2e_p95_s);
        // The human renderers stay total.
        assert!(render_summary_text(&parsed).contains("tail driver: queue"));
        let same = render_diff_text(&parsed, &parsed);
        assert!(same.contains("no category moved"));
    }

    #[test]
    fn diff_names_the_moved_category() {
        let ledgers = synthetic_ledgers();
        let before = parse_attr_json(&render_attr_json(&ledgers)).unwrap();
        let mut after = before.clone();
        after.cat_mean_s[Category::Compute.index()] += 0.004;
        after.e2e_mean_s += 0.004;
        let report = render_diff_text(&before, &after);
        assert!(
            report.contains("responsible category: compute (+4.0000 ms per request)"),
            "{report}"
        );
    }

    #[test]
    fn parse_rejects_foreign_documents() {
        assert!(parse_attr_json("{}").is_err());
        let doc = render_attr_json(&[]);
        let parsed = parse_attr_json(&doc).unwrap();
        assert_eq!(parsed.requests, 0);
        assert!(parsed.conservation_ok);
        assert!(parse_attr_json(&doc.replace(ATTR_SCHEMA, "bifft-attr-v0")).is_err());
    }
}
