//! `fft-prof` — offline analysis of `bifft-attr-v2` attribution documents.
//!
//! ```text
//! cargo run --release -p fft-serve --bin fft-serve -- --smoke --attr-out attr.json
//! cargo run --release -p fft-serve --bin fft-prof -- show attr.json
//! cargo run --release -p fft-serve --bin fft-prof -- diff baseline.json attr.json
//! ```
//!
//! See `crates/serve/src/prof.rs` for subcommands and exit-code semantics.

fn main() {
    std::process::exit(fft_serve::prof::prof_main());
}
