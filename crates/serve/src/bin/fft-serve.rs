//! `fft-serve` — seeded serving runs over the simulated fleet (also
//! exposed as the workspace-root `serve` binary).
//!
//! ```text
//! cargo run --release -p fft-serve --bin fft-serve -- --smoke
//! cargo run --release -p fft-serve --bin fft-serve -- --smoke --check-hazards
//! cargo run --release -p fft-serve --bin fft-serve -- --gpus 4 --rate 4000 --json serve.json
//! cargo run --release -p fft-serve --bin fft-serve -- --smoke --metrics-out m.json --trace t.json
//! cargo run --release -p fft-serve --bin fft-serve -- --validate-metrics m.json
//! ```
//!
//! See `crates/serve/src/cli.rs` for flags and exit-code semantics.

fn main() {
    std::process::exit(fft_serve::cli::cli_main());
}
