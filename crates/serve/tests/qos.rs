//! QoS integration tests: weighted-fair sharing under overload and the
//! latency payoff of lane preemption.
//!
//! Both tests ride the service's deterministic virtual clock, so every
//! assertion is about a reproducible schedule — no tolerance for run-to-run
//! noise is needed beyond the discreteness of the dispatch grid itself.

use fft_math::twiddle::Direction;
use fft_serve::telemetry::lifecycle::Stage;
use fft_serve::{
    FftService, Priority, QosConfig, RequestSpec, ServeConfig, Shape, TenantId, TenantPolicy,
};

fn two_tenant_cfg() -> ServeConfig {
    let mut qos = QosConfig::default();
    qos.tenants.insert(
        TenantId(0),
        TenantPolicy {
            share: 3.0,
            ..TenantPolicy::default()
        },
    );
    qos.tenants.insert(
        TenantId(1),
        TenantPolicy {
            share: 1.0,
            ..TenantPolicy::default()
        },
    );
    ServeConfig::builder()
        .gpus(1)
        .streams(1)
        .batch_requests(1)
        .queue_capacity(512)
        .qos(qos)
        .build()
        .unwrap()
}

/// One 4096-element request for `tenant`. The tenants use *different*
/// shapes (256x16 vs 128x32) with equal element counts, so their requests
/// never coalesce into one batch and per-tenant goodput is purely a
/// scheduling outcome.
fn tenant_req(tenant: u64, seed: u64) -> RequestSpec {
    let shape = if tenant == 0 {
        Shape::Rows1d { n: 256, rows: 16 }
    } else {
        Shape::Rows1d { n: 128, rows: 32 }
    };
    RequestSpec::seeded(shape, Direction::Forward, seed).tenant(TenantId(tenant))
}

/// Submits `per_tenant` requests from each tenant as one interleaved
/// burst and returns the fully-drained service's makespan.
fn burst(svc: &mut FftService, per_tenant: u64) -> u64 {
    let mut accepted = 0;
    for i in 0..per_tenant {
        let at = i as f64 * 1e-7;
        for t in [0u64, 1] {
            if svc.submit(tenant_req(t, i * 2 + t), at).is_ok() {
                accepted += 1;
            }
        }
    }
    accepted
}

#[test]
fn weighted_fair_queueing_splits_overload_by_share() {
    // Calibrate: how long does the whole two-tenant burst take end to end?
    let per_tenant = 96u64;
    let mut cal = FftService::new(two_tenant_cfg()).unwrap();
    assert_eq!(burst(&mut cal, per_tenant), per_tenant * 2);
    let makespan = cal.drain();

    // Measure at the half-way horizon: the fleet has served roughly half
    // the demand, so both tenants still have backlog — a 2x-overload
    // snapshot. WFQ should have split the served capacity 3:1.
    let mut svc = FftService::new(two_tenant_cfg()).unwrap();
    burst(&mut svc, per_tenant);
    // `advance` pumps once per call (it serves wall-clock drivers), so
    // step the virtual clock finely enough that every lane-free instant
    // gets a dispatch opportunity before the horizon.
    let horizon = makespan * 0.5;
    let steps = 4096;
    for k in 1..=steps {
        svc.advance(horizon * k as f64 / steps as f64);
    }
    let mid = svc.report();
    assert_eq!(mid.tenants.len(), 2);
    let g0 = mid.tenants[0].good_bytes as f64;
    let g1 = mid.tenants[1].good_bytes as f64;
    assert!(g1 > 0.0, "the share-1 tenant is not starved");
    let ratio = g0 / g1;
    assert!(
        (ratio - 3.0).abs() <= 0.3,
        "goodput split {ratio:.3} strays more than 10% from the 3:1 shares \
         (good_bytes {g0} vs {g1})"
    );
    assert!(
        mid.fairness_index >= 0.95,
        "share-weighted Jain index {:.4} below 0.95",
        mid.fairness_index
    );

    // Draining the backlog completes everyone (WFQ is work-conserving and
    // starvation-free) and the attribution ledger still balances.
    svc.drain();
    let done = svc.report();
    assert_eq!(done.completed, per_tenant * 2);
    assert!(svc.attribution_audit().ok(), "conservation audit failed");
    // Once all demand is met, goodput equals demand and the *weighted*
    // index reflects the 3:1 weighting of equal outcomes — not a fairness
    // violation, just no longer an overload snapshot.
    assert!(done.fairness_index > 0.0);
}

#[test]
fn preemption_improves_high_priority_tail_latency() {
    let run = |preempt: bool| -> (Vec<f64>, u64) {
        let qos = QosConfig {
            preemption: preempt,
            ..QosConfig::default()
        };
        let mut svc = ServeConfig::builder()
            .gpus(1)
            .streams(1)
            .batch_requests(1)
            .qos(qos)
            .build_service()
            .unwrap();
        let rounds = 24u64;
        let gap = 0.01;
        let mut high_lat = Vec::new();
        for r in 0..rounds {
            let t0 = r as f64 * gap;
            // A bulky Low batch grabs the only lane...
            let low = RequestSpec::seeded(
                Shape::Rows1d { n: 256, rows: 64 },
                Direction::Forward,
                r * 2,
            )
            .priority(Priority::Low);
            svc.submit(low, t0).unwrap();
            // ...then a small High request lands just behind it.
            let high = RequestSpec::seeded(
                Shape::Rows1d { n: 256, rows: 4 },
                Direction::Forward,
                r * 2 + 1,
            )
            .priority(Priority::High);
            let hi = svc.submit(high, t0 + 1e-6).unwrap();
            svc.drain();
            let c = svc
                .completions()
                .iter()
                .find(|c| c.id == hi.id)
                .expect("high request completed");
            high_lat.push(c.completed_s - c.arrival_s);
        }
        let r = svc.report();
        assert_eq!(r.completed, rounds * 2, "every request still completes");
        assert!(svc.attribution_audit().ok(), "conservation audit failed");
        // Every victim's waterfall stays monotone with its original
        // submission stamp (satellite 3).
        for (_, w) in svc.telemetry().lifecycle.iter() {
            assert!(w.is_monotone(), "non-monotone waterfall after requeue");
        }
        (high_lat, r.preemptions)
    };

    let p99 = |lat: &mut Vec<f64>| -> f64 {
        lat.sort_by(f64::total_cmp);
        lat[(lat.len() as f64 * 0.99).ceil() as usize - 1]
    };

    let (mut off_lat, off_preempts) = run(false);
    let (mut on_lat, on_preempts) = run(true);
    assert_eq!(
        off_preempts, 0,
        "preemption disabled means zero preemptions"
    );
    assert!(on_preempts > 0, "the contended rounds actually preempt");
    let (off_p99, on_p99) = (p99(&mut off_lat), p99(&mut on_lat));
    assert!(
        on_p99 < off_p99,
        "preemption should cut the high-priority p99: {on_p99:.6}s vs {off_p99:.6}s"
    );
}

#[test]
fn requeued_victims_keep_their_original_submission_stamp() {
    let qos = QosConfig {
        preemption: true,
        ..QosConfig::default()
    };
    let mut svc = ServeConfig::builder()
        .gpus(1)
        .streams(1)
        .batch_requests(1)
        .qos(qos)
        .build_service()
        .unwrap();
    let low = RequestSpec::seeded(Shape::Rows1d { n: 256, rows: 64 }, Direction::Forward, 1)
        .priority(Priority::Low);
    let victim = svc.submit(low, 0.0).unwrap();
    let high = RequestSpec::seeded(Shape::Rows1d { n: 256, rows: 4 }, Direction::Forward, 2)
        .priority(Priority::High);
    svc.submit(high, 1e-6).unwrap();
    svc.drain();
    let r = svc.report();
    assert_eq!(r.preemptions, 1);
    let w = svc
        .telemetry()
        .lifecycle
        .get(victim.id)
        .expect("victim has a waterfall");
    assert_eq!(
        w.stage_s(Stage::Submitted),
        Some(0.0),
        "requeue must not re-stamp submission"
    );
    assert!(w.is_monotone());
    assert!(w.preempts >= 1);
    assert!(w.preempted_s > 0.0);
}
