//! End-to-end serving-stack checks: numerics against the oracle, the
//! determinism and goodput acceptance criteria, hazard cleanliness under
//! the PR 4 validator, and the sharded-volume route.

use bifft::plan::Fft3d;
use fft_math::dft::dft3d_oracle;
use fft_math::error::{rel_l2_error, rel_l2_error_f32};
use fft_math::fft1d::fft_pow2;
use fft_math::twiddle::Direction;
use fft_serve::loadgen::{run_closed_loop, run_open_loop, Workload};
use fft_serve::request::{RequestSpec, Shape};
use fft_serve::service::{FftService, ServeConfig};
use gpu_sim::{DeviceSpec, Gpu};

/// Same seed, same config: the report JSON must be byte-identical — the
/// acceptance criterion that makes CI gating on serving metrics possible.
#[test]
fn same_seed_same_bits() {
    let run = |seed: u64| {
        let mut svc = FftService::new(ServeConfig::default()).unwrap();
        run_open_loop(&mut svc, &Workload::mixed(), 96, 4000.0, seed);
        svc.finish().to_json()
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b, "same seed must replay bit-identically");
    let c = run(43);
    assert_ne!(a, c, "different seeds explore different schedules");
}

/// The tentpole acceptance criterion: the full service (2 cards, stream
/// lanes, adaptive batching) sustains at least twice the goodput of serial
/// one-at-a-time submission of the same workload.
#[test]
fn two_card_service_doubles_serial_goodput() {
    let requests = 64;
    let seed = 7;
    let workload = Workload::rows();

    let mut serial = ServeConfig::builder()
        .gpus(1)
        .streams(0)
        .batch_requests(1)
        .build_service()
        .unwrap();
    run_closed_loop(&mut serial, &workload, requests, 1, seed);
    let serial_report = serial.finish();
    assert_eq!(serial_report.completed, requests);
    assert!(serial_report.goodput_gbs > 0.0);

    let mut svc = FftService::new(ServeConfig::default()).unwrap();
    run_closed_loop(&mut svc, &workload, requests, 32, seed);
    let report = svc.finish();
    assert_eq!(report.completed, requests);

    assert!(
        report.goodput_gbs >= 2.0 * serial_report.goodput_gbs,
        "service goodput {:.3} GB/s must be at least 2x serial {:.3} GB/s",
        report.goodput_gbs,
        serial_report.goodput_gbs
    );
    assert!(
        report.mean_batch_size() > 1.0,
        "saturated closed loop must coalesce"
    );
}

/// A checked serving run (every card under the memcheck/racecheck-style
/// validator) reports zero diagnostics: the per-lane buffer discipline is
/// hazard-free by construction.
#[test]
fn checked_run_is_hazard_clean() {
    let mut svc = ServeConfig::builder()
        .check_hazards(true)
        .build_service()
        .unwrap();
    run_open_loop(&mut svc, &Workload::mixed(), 48, 4000.0, 11);
    svc.drain();
    let rep = svc.check_report().expect("checking was enabled");
    assert!(rep.clean(), "serving must be hazard-clean, got:\n{rep}");
    assert!(rep.kernels_checked > 0, "the validator saw real launches");
    let report = svc.report();
    assert!(report.completed > 0);
}

/// Outputs served through the whole stack (queue -> batcher -> stream lane
/// -> D2H) match the host reference FFT row by row, forward and inverse.
#[test]
fn served_rows_match_reference() {
    let mut svc = ServeConfig::builder()
        .keep_outputs(true)
        .build_service()
        .unwrap();
    let mut specs = Vec::new();
    for (seed, dir) in [(1, Direction::Forward), (2, Direction::Inverse)] {
        let spec = RequestSpec::seeded(Shape::Rows1d { n: 256, rows: 4 }, dir, seed);
        specs.push(spec.clone());
        svc.submit(spec, 0.0).unwrap();
    }
    svc.drain();
    let completions = svc.completions();
    assert_eq!(completions.len(), 2);
    for (c, spec) in completions.iter().zip(&specs) {
        let out = c.output.as_ref().expect("keep_outputs");
        for r in 0..4 {
            let mut want = spec.payload[r * 256..(r + 1) * 256].to_vec();
            fft_pow2(&mut want, spec.direction);
            let err = rel_l2_error_f32(&out[r * 256..(r + 1) * 256], &want);
            assert!(err < 1e-5, "row {r} error {err}");
        }
    }
}

/// A served volume matches the O(N^2) oracle.
#[test]
fn served_volume_matches_oracle() {
    let mut svc = ServeConfig::builder()
        .keep_outputs(true)
        .build_service()
        .unwrap();
    let spec = RequestSpec::seeded(
        Shape::Volume {
            nx: 16,
            ny: 16,
            nz: 16,
        },
        Direction::Forward,
        5,
    );
    let payload = spec.payload.clone();
    svc.submit(spec, 0.0).unwrap();
    svc.drain();
    let c = &svc.completions()[0];
    let out = c.output.as_ref().unwrap();
    let want = dft3d_oracle(&payload, 16, 16, 16, Direction::Forward);
    let err = rel_l2_error(out, &want);
    assert!(err < 1e-4, "volume error {err}");
    assert!(c.card.is_some(), "a 16^3 volume fits one card");
}

/// Volumes too large for one card route through the multi-GPU sharder,
/// occupy the whole fleet, and still produce the right answer.
#[test]
fn oversized_volume_routes_to_sharder() {
    // 8 MiB cards: a 64^3 volume needs 2 MiB data + 2 MiB work per plan
    // plus the two 1 MiB staging slots per lane, which no single card can
    // hold alongside its slots — but two sharded cards can.
    let mut spec = DeviceSpec::gts8800();
    spec.memory_bytes = 5 << 20;
    let mut svc = ServeConfig::builder()
        .spec(spec)
        .gpus(2)
        .streams(1)
        .batch_elems(1 << 17)
        .keep_outputs(true)
        .build_service()
        .unwrap();
    let req = RequestSpec::seeded(
        Shape::Volume {
            nx: 64,
            ny: 64,
            nz: 64,
        },
        Direction::Forward,
        9,
    );
    let payload = req.payload.clone();
    svc.submit(req, 0.0).unwrap();
    svc.drain();
    let c = &svc.completions()[0];
    assert_eq!(c.card, None, "sharded completions span every card");

    // Reference: the same transform on one big-memory card.
    let mut gpu = Gpu::new(DeviceSpec::gts8800());
    let plan = Fft3d::builder(64, 64, 64).build(&mut gpu).unwrap();
    let (want, _) = plan
        .transform(&mut gpu, &payload, Direction::Forward)
        .unwrap();
    let err = rel_l2_error_f32(c.output.as_ref().unwrap(), &want);
    assert!(err < 1e-5, "sharded route diverged from single-card: {err}");
}

/// Under open-loop overload the queue bound sheds requests instead of
/// growing without limit, and the report accounts for every submission.
#[test]
fn overload_sheds_and_accounts() {
    let mut svc = ServeConfig::builder()
        .gpus(1)
        .streams(1)
        .queue_capacity(8)
        .build_service()
        .unwrap();
    // Far beyond one card's capacity: arrivals every 2 us.
    let load = run_open_loop(&mut svc, &Workload::rows(), 400, 500_000.0, 3);
    let report = svc.finish();
    assert!(report.rejected_queue_full > 0, "overload must shed");
    assert!(load.accepted < load.offered);
    assert_eq!(report.submitted, 400);
    assert_eq!(
        report.admitted
            + report.rejected_queue_full
            + report.rejected_deadline
            + report.rejected_unsupported
            + report.rejected_oversized
            + report.rejected_unallocatable,
        report.submitted
    );
    assert_eq!(report.completed, report.admitted);
    assert!(report.queue_max_depth <= 8);
    // Depth-adaptive batching: overload drives multi-request launches.
    assert!(report.mean_batch_size() > 1.5);
}
