//! Telemetry acceptance tests: golden-pinned export formats, same-seed
//! bit-identical metrics, counter monotonicity across the sampled series
//! (a hand-rolled property test — the real `proptest` crate is not
//! vendored), full-waterfall coverage for every completion, and the
//! Prometheus round-trip.

use fft_math::twiddle::Direction;
use fft_serve::loadgen::{run_open_loop, Workload};
use fft_serve::request::{RequestSpec, Shape};
use fft_serve::service::{FftService, ServeConfig};
use fft_serve::telemetry::attribution::{self, CONSERVATION_TOLERANCE_S};
use fft_serve::telemetry::export::parse_prometheus;
use fft_serve::telemetry::{names, Stage};
use fft_serve::validate_metrics_json;

/// The CI smoke configuration: 64 mixed requests, open loop at 5000 req/s,
/// seed 42, over the default 2-card x 2-stream fleet.
fn smoke_service(record_trace: bool) -> FftService {
    let mut svc = ServeConfig::builder()
        .record_trace(record_trace)
        .build_service()
        .unwrap();
    run_open_loop(&mut svc, &Workload::mixed(), 64, 5000.0, 42);
    svc.drain();
    svc
}

fn check_golden(got: &str, path: &str, what: &str) {
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, got).expect("write golden");
        return;
    }
    let golden =
        std::fs::read_to_string(path).expect("golden file missing; regenerate with BLESS=1");
    assert_eq!(
        got, golden,
        "{what} drifted from {path}; if the change is intended, regenerate with BLESS=1"
    );
}

/// The metrics document of the CI smoke run is pinned byte-for-byte, so
/// any change to the schema or to the simulated timings is a reviewable
/// diff. Regenerate with `BLESS=1 cargo test -p fft-serve --test telemetry`.
#[test]
fn smoke_metrics_json_matches_committed_golden() {
    let svc = smoke_service(false);
    check_golden(
        &svc.metrics_json(),
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/smoke_metrics.json"
        ),
        "metrics JSON",
    );
}

/// Same pin for the Prometheus exposition rendering of the same run.
#[test]
fn smoke_prometheus_matches_committed_golden() {
    let svc = smoke_service(false);
    check_golden(
        &svc.prometheus_text(),
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/smoke_metrics.prom"
        ),
        "Prometheus text",
    );
}

/// The acceptance criterion: two smoke runs with the same seed emit
/// bit-identical metrics documents (series and all), and the document
/// validates with an ok SLO verdict.
#[test]
fn same_seed_same_metrics_bits() {
    let a = smoke_service(false).metrics_json();
    let b = smoke_service(false).metrics_json();
    assert_eq!(a, b, "same seed must produce bit-identical metrics");
    assert_eq!(validate_metrics_json(&a), Ok(true));
}

/// SplitMix64 — the repo's stock deterministic generator for hand-rolled
/// property tests.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Property: across every adjacent pair of timeline samples, in randomized
/// run configurations, every counter is monotone non-decreasing (counters
/// never go backwards; gauges may).
#[test]
fn counters_are_monotone_across_sampled_series() {
    let mut rng = 0xC0FFEE_u64;
    for case in 0..8 {
        let requests = 16 + (splitmix64(&mut rng) % 80);
        let rate = 1000.0 + (splitmix64(&mut rng) % 8000) as f64;
        let seed = splitmix64(&mut rng);
        let queue_capacity = 4 + (splitmix64(&mut rng) % 60) as usize;
        let mut svc = ServeConfig::builder()
            .queue_capacity(queue_capacity)
            .build_service()
            .unwrap();
        run_open_loop(&mut svc, &Workload::mixed(), requests, rate, seed);
        svc.drain();
        let samples = svc.telemetry().timeline.samples();
        assert!(
            !samples.is_empty(),
            "case {case}: a drained run has samples"
        );
        for w in samples.windows(2) {
            assert!(w[0].t_s < w[1].t_s, "case {case}: time must advance");
            for (name, &later) in &w[1].counters {
                let earlier = w[0].counters.get(name).copied().unwrap_or(0);
                assert!(
                    later >= earlier,
                    "case {case}: counter {name} went backwards \
                     ({earlier} at t={} -> {later} at t={})",
                    w[0].t_s,
                    w[1].t_s
                );
            }
        }
        // The terminal sample agrees with the live registry.
        let last = samples.last().unwrap();
        for (name, &v) in &last.counters {
            assert_eq!(
                v,
                svc.telemetry().registry.counter(name),
                "case {case}: {name}"
            );
        }
    }
}

/// The waterfall acceptance criterion: every completed smoke request has
/// the full monotone Submitted -> ... -> Completed pipeline recorded, with
/// a sim-prof span cross-link.
#[test]
fn every_completion_has_a_full_monotone_waterfall() {
    let svc = smoke_service(false);
    let report = svc.report();
    assert_eq!(report.completed, 64);
    let mut completed = 0usize;
    for (id, wf) in svc.telemetry().lifecycle.iter() {
        assert!(wf.is_monotone(), "req {} waterfall out of order", id.0);
        if wf.terminal() == Some(Stage::Completed) {
            completed += 1;
            assert!(
                wf.is_complete_pipeline(),
                "req {} completed without a full pipeline",
                id.0
            );
            assert!(wf.span.is_some(), "req {} has no span cross-link", id.0);
        }
    }
    assert_eq!(completed as u64, report.completed);
}

/// The Prometheus rendering round-trips through the crate's own parser:
/// every counter and gauge in the registry comes back with its exact value.
#[test]
fn prometheus_round_trips_through_the_parser() {
    let svc = smoke_service(false);
    let series = parse_prometheus(&svc.prometheus_text()).expect("well-formed exposition");
    let reg = &svc.telemetry().registry;
    for (name, &v) in reg.counters() {
        assert_eq!(series.get(name).copied(), Some(v as f64), "{name}");
    }
    for (name, &v) in reg.gauges() {
        assert_eq!(series.get(name).copied(), Some(v), "{name}");
    }
    assert!(series.contains_key("serve_slo_ok"));
    assert!(series
        .keys()
        .any(|k| k.starts_with("serve_latency_ms_bucket{le=")));
}

#[test]
fn validate_metrics_rejects_garbage_and_wrong_schema() {
    assert!(validate_metrics_json("not json at all").is_err());
    assert!(validate_metrics_json("{}").is_err());
    let svc = smoke_service(false);
    let good = svc.metrics_json();
    let tampered = good.replace("bifft-metrics-v1", "bifft-metrics-v0");
    assert!(validate_metrics_json(&tampered).is_err());
}

/// The merged Chrome trace carries both per-card tracks and one track per
/// request, and its stage slices line up with the waterfalls.
#[test]
fn chrome_trace_merges_card_and_request_tracks() {
    let mut svc = smoke_service(true);
    let json = svc.chrome_trace().expect("recording was enabled");
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    // Per-card process tracks from the sim-prof recorder.
    assert!(json.contains("\"args\":{\"name\":\"card 0\"}"));
    assert!(json.contains("\"args\":{\"name\":\"card 1\"}"));
    // The requests process with one named thread per request.
    assert!(json.contains("\"args\":{\"name\":\"requests\"}"));
    for (id, wf) in svc.telemetry().lifecycle.iter() {
        assert!(
            json.contains(&format!("\"name\":\"req {} {}\"", id.0, wf.shape())),
            "request {} has no trace track",
            id.0
        );
    }
    // Stage slices appear in the request process.
    for name in ["admit", "queued", "batch", "h2d", "compute", "d2h"] {
        assert!(json.contains(&format!("\"name\":\"{name}\"")), "{name}");
    }
    // Dispatch slices carry the span cross-link.
    assert!(json.contains("\"span\":\"serve_"));
}

/// The attribution acceptance criterion: on the CI smoke grid, every
/// completed request's time ledger balances — the ten category parts sum
/// to the end-to-end latency within [`CONSERVATION_TOLERANCE_S`].
#[test]
fn smoke_grid_conserves_every_request_ledger() {
    // The smoke run plus the two bench serving shapes.
    let grids: &[(usize, usize, u64, f64, u64)] = &[
        (2, 2, 64, 5000.0, 42),
        (2, 2, 96, 4000.0, 42),
        (4, 2, 192, 8000.0, 42),
    ];
    for &(gpus, streams, requests, rate, seed) in grids {
        let mut svc = ServeConfig::builder()
            .gpus(gpus)
            .streams(streams)
            .build_service()
            .unwrap();
        run_open_loop(&mut svc, &Workload::mixed(), requests, rate, seed);
        svc.drain();
        let report = svc.report();
        let ledgers = svc.ledgers();
        assert_eq!(
            ledgers.len() as u64,
            report.completed,
            "{gpus}x{streams}: every completion must be ledgered"
        );
        for l in &ledgers {
            assert!(
                l.conservation_error_s() <= CONSERVATION_TOLERANCE_S,
                "req {} on {gpus}x{streams}: ledger unbalanced by {:e} s",
                l.id.0,
                l.conservation_error_s()
            );
        }
        let audit = svc.attribution_audit();
        assert!(
            audit.ok(),
            "{gpus}x{streams}: {} unbalanced",
            audit.unbalanced
        );
        assert_eq!(audit.requests as u64, report.completed);
    }
}

/// Two same-seed smoke runs export byte-identical attribution documents,
/// and the document parses back with a conserving verdict over every
/// completed request.
#[test]
fn same_seed_same_attribution_bits() {
    let a = smoke_service(false).attribution_json();
    let b = smoke_service(false).attribution_json();
    assert_eq!(a, b, "same seed must produce bit-identical attribution");
    let summary = attribution::parse_attr_json(&a).expect("well-formed attribution document");
    assert!(summary.conservation_ok);
    assert_eq!(summary.requests, 64);
    let shares: f64 = summary.cat_share.iter().sum();
    assert!((shares - 1.0).abs() < 1e-9, "shares partition all time");
}

/// Every per-category attribution counter reaches the Prometheus
/// exposition, and the exported microsecond totals line up with the
/// ledger (each request's parts are rounded to whole microseconds).
#[test]
fn attribution_counters_are_exported() {
    let svc = smoke_service(false);
    let series = parse_prometheus(&svc.prometheus_text()).expect("well-formed exposition");
    let ledgers = svc.ledgers();
    let exported: f64 = names::ATTR_US
        .iter()
        .map(|n| {
            series
                .get(*n)
                .copied()
                .unwrap_or_else(|| panic!("{n} missing"))
        })
        .sum();
    let ledgered_us: f64 = ledgers.iter().map(|l| l.sum_s()).sum::<f64>() * 1e6;
    let slack = 0.5 * names::ATTR_US.len() as f64 * ledgers.len() as f64;
    assert!(
        (exported - ledgered_us).abs() <= slack,
        "exported {exported} us vs ledgered {ledgered_us} us (slack {slack})"
    );
    assert!(exported > 0.0, "the smoke run attributes nonzero time");
}

/// Rejected requests still get waterfalls: terminal `Rejected` stage with
/// the machine-readable reason, and the per-reason counter matches.
#[test]
fn rejections_are_traced_with_reasons() {
    let mut svc = ServeConfig::builder()
        .gpus(1)
        .streams(1)
        .queue_capacity(4)
        .build_service()
        .unwrap();
    run_open_loop(&mut svc, &Workload::rows(), 120, 400_000.0, 3);
    // One unsupported non-power-of-two request on top of the overload.
    let bad = RequestSpec::seeded(Shape::Rows1d { n: 100, rows: 1 }, Direction::Forward, 1);
    assert!(svc.submit(bad, 1.0).is_err());
    svc.drain();
    let report = svc.report();
    assert!(report.rejected_queue_full > 0);
    assert_eq!(report.rejected_unsupported, 1);
    let mut by_reason = std::collections::BTreeMap::new();
    for (_, wf) in svc.telemetry().lifecycle.iter() {
        if wf.terminal() == Some(Stage::Rejected) {
            assert!(wf.stage_s(Stage::Submitted).is_some());
            *by_reason.entry(wf.reject_reason.unwrap()).or_insert(0u64) += 1;
        }
    }
    assert_eq!(
        by_reason.get("queue_full"),
        Some(&report.rejected_queue_full)
    );
    assert_eq!(by_reason.get("unsupported"), Some(&1));
    let reg = &svc.telemetry().registry;
    assert_eq!(
        reg.counter("serve_rejected_queue_full_total"),
        report.rejected_queue_full
    );
    assert_eq!(reg.counter("serve_rejected_unsupported_total"), 1);
}
