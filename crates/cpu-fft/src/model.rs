//! Roofline model of the 2008 evaluation CPUs (Tables 5, 11, 12, 13).
//!
//! FFTW at 256³ on a 2008 quad-core is memory-bound: the paper measures
//! 10.3 GFLOPS on a 70.4-GFLOPS-peak Phenom whose STREAM bandwidth is
//! "less than 10 GByte/s" (§2). The model therefore prices each of the three
//! axis passes by memory traffic — the contiguous X pass near STREAM speed,
//! the strided Y and Z passes at a calibrated fraction of it — and takes the
//! roofline max against an SSE compute bound.

use fft_math::flops::nominal_flops_3d;

/// Specification of a host CPU.
#[derive(Clone, Copy, Debug)]
pub struct CpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Core clock, GHz.
    pub clock_ghz: f64,
    /// Physical cores.
    pub cores: usize,
    /// Single-precision FLOPs per core per cycle (8 with 4-wide SSE MUL+ADD).
    pub flops_per_cycle: f64,
    /// Sustained STREAM bandwidth, GB/s.
    pub stream_gbs: f64,
}

impl CpuSpec {
    /// Peak single-precision GFLOPS.
    pub fn peak_gflops(&self) -> f64 {
        self.clock_ghz * self.cores as f64 * self.flops_per_cycle
    }

    /// The AMD Phenom 9500 of Table 5 (2.2 GHz quad: 70.4 GFLOPS peak, §2:
    /// "memory bandwidth less than 10 GByte/s under the STREAM benchmark").
    pub const fn phenom_9500() -> Self {
        CpuSpec {
            name: "AMD Phenom 9500",
            clock_ghz: 2.2,
            cores: 4,
            flops_per_cycle: 8.0,
            stream_gbs: 9.5,
        }
    }

    /// The Intel Core 2 Quad Q6700 of Table 11 (2.66 GHz quad).
    pub const fn core2_q6700() -> Self {
        CpuSpec {
            name: "Intel Core 2 Quad Q6700",
            clock_ghz: 2.66,
            cores: 4,
            flops_per_cycle: 8.0,
            stream_gbs: 9.8,
        }
    }
}

/// Fraction of STREAM bandwidth the contiguous X pass sustains.
pub const STREAM_EFF_CONTIG: f64 = 0.85;

/// Fraction of STREAM bandwidth a strided (Y/Z) pass sustains — the CPU
/// analogue of the paper's pattern-C/D penalty, calibrated so the Phenom
/// lands on Table 11's 10.3 GFLOPS.
pub const STREAM_EFF_STRIDED: f64 = 0.33;

/// FFTW's compute efficiency against SSE peak (scheduling, twiddle loads,
/// non-fused operations).
pub const FFTW_COMPUTE_EFF: f64 = 0.35;

/// Modelled FFTW wall time for an `nx x ny x nz` single-precision c2c
/// transform, seconds.
pub fn fftw_model_seconds(spec: &CpuSpec, nx: usize, ny: usize, nz: usize) -> f64 {
    let vol = (nx * ny * nz) as f64;
    let pass_bytes = 2.0 * 8.0 * vol; // read + write once
    let mem_x = pass_bytes / (spec.stream_gbs * STREAM_EFF_CONTIG * 1e9);
    let mem_yz = 2.0 * pass_bytes / (spec.stream_gbs * STREAM_EFF_STRIDED * 1e9);
    let mem = mem_x + mem_yz;
    let compute =
        nominal_flops_3d(nx, ny, nz) as f64 / (spec.peak_gflops() * FFTW_COMPUTE_EFF * 1e9);
    mem.max(compute)
}

/// Modelled FFTW GFLOPS (nominal convention).
pub fn fftw_model_gflops(spec: &CpuSpec, nx: usize, ny: usize, nz: usize) -> f64 {
    nominal_flops_3d(nx, ny, nz) as f64 / fftw_model_seconds(spec, nx, ny, nz) / 1e9
}

/// Number of worker threads to use on the actual host machine.
pub fn count_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phenom_peak_matches_section2() {
        // §2: "the peak performance of the latest AMD Phenom 9500 Quad-Core
        // processor is 70.4 GFLOPS in single precision".
        assert!((CpuSpec::phenom_9500().peak_gflops() - 70.4).abs() < 0.1);
    }

    #[test]
    fn table11_256_cubed() {
        // Table 11: Phenom 195 ms / 10.3 GFLOPS; Core 2 188 ms / 10.7.
        let p = fftw_model_seconds(&CpuSpec::phenom_9500(), 256, 256, 256);
        assert!((p - 0.195).abs() / 0.195 < 0.10, "phenom {p}");
        let c = fftw_model_seconds(&CpuSpec::core2_q6700(), 256, 256, 256);
        assert!((c - 0.188).abs() / 0.188 < 0.10, "core2 {c}");
        let g = fftw_model_gflops(&CpuSpec::phenom_9500(), 256, 256, 256);
        assert!((g - 10.3).abs() < 1.1, "gflops {g}");
    }

    #[test]
    fn table12_512_cubed() {
        // Table 12: FFTW 1.93 s / 9.40 GFLOPS at 512³.
        let p = fftw_model_seconds(&CpuSpec::phenom_9500(), 512, 512, 512);
        assert!((p - 1.93).abs() / 1.93 < 0.20, "phenom {p}");
    }

    #[test]
    fn memory_bound_at_large_sizes() {
        let spec = CpuSpec::phenom_9500();
        let compute =
            nominal_flops_3d(256, 256, 256) as f64 / (spec.peak_gflops() * FFTW_COMPUTE_EFF * 1e9);
        assert!(fftw_model_seconds(&spec, 256, 256, 256) > compute);
    }

    #[test]
    fn host_thread_count_positive() {
        assert!(count_threads() >= 1);
    }
}
