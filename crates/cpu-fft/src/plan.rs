//! A planned, multithreaded CPU 3-D FFT in the FFTW mould.
//!
//! This is the baseline of the paper's Tables 11–12 ("FFTW 3.2alpha2,
//! OpenMP and SSE enabled, all four CPU cores used"). The implementation is
//! the classic row–column method with a cache-conscious treatment of each
//! axis:
//!
//! * **X** — rows are contiguous; transformed in place, planes in parallel.
//! * **Y** — columns have stride `nx` but stay within one z-plane;
//!   transformed through a gather/scatter tile per plane, planes in parallel.
//! * **Z** — columns cross planes (stride `nx·ny`), the cache-killer; the
//!   plan rotates the volume so Z becomes contiguous, transforms, and
//!   rotates back — the same trade the six-step GPU algorithm makes, and the
//!   reason FFTW's 3-D throughput sits far below its 1-D throughput.
//!
//! Threading uses `std::thread::scope` over disjoint plane chunks, so the
//! parallelism is data-race-free by construction (each thread owns a
//! `&mut [Complex32]` slice).

use crate::model::count_threads;
use fft_math::complex::Complex32;
use fft_math::fft1d::Fft1dPlan;
use fft_math::twiddle::Direction;

/// A planned `nx x ny x nz` complex-to-complex CPU transform.
///
/// ```
/// use cpu_fft::CpuFft3d;
/// use fft_math::{Complex32, Direction};
///
/// let plan = CpuFft3d::new(8, 8, 8);
/// let mut data = vec![Complex32::ONE; plan.volume()]; // constant field
/// plan.execute(&mut data, Direction::Forward);
/// // All energy lands in the DC bin.
/// assert!((data[0].re - 512.0).abs() < 1e-3);
/// assert!(data[100].abs() < 1e-3);
/// ```
pub struct CpuFft3d {
    nx: usize,
    ny: usize,
    nz: usize,
    plan_x: Fft1dPlan,
    plan_y: Fft1dPlan,
    plan_z: Fft1dPlan,
    threads: usize,
}

impl CpuFft3d {
    /// Plans the transform with as many threads as the host exposes.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Self::with_threads(nx, ny, nz, count_threads())
    }

    /// Plans with an explicit thread count (tests use 1 and 2).
    pub fn with_threads(nx: usize, ny: usize, nz: usize, threads: usize) -> Self {
        assert!(nx.is_power_of_two() && ny.is_power_of_two() && nz.is_power_of_two());
        CpuFft3d {
            nx,
            ny,
            nz,
            plan_x: Fft1dPlan::new(nx),
            plan_y: Fft1dPlan::new(ny),
            plan_z: Fft1dPlan::new(nz),
            threads: threads.max(1),
        }
    }

    /// Volume in elements.
    pub fn volume(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Threads the plan will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes in place on a natural-order (`x` fastest) volume.
    pub fn execute(&self, data: &mut [Complex32], dir: Direction) {
        assert_eq!(data.len(), self.volume(), "volume mismatch");
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let plane = nx * ny;

        // --- X axis: contiguous rows, parallel over z-plane chunks ---
        self.parallel_chunks(data, plane, |chunk| {
            let mut scratch = vec![Complex32::ZERO; nx];
            for row in chunk.chunks_mut(nx) {
                self.plan_x.execute(row, &mut scratch, dir);
            }
        });

        // --- Y axis: stride-nx columns within each plane ---
        self.parallel_chunks(data, plane, |chunk| {
            let mut scratch = vec![Complex32::ZERO; ny];
            let mut col = vec![Complex32::ZERO; ny];
            for zplane in chunk.chunks_mut(plane) {
                for x in 0..nx {
                    for (y, c) in col.iter_mut().enumerate() {
                        *c = zplane[x + nx * y];
                    }
                    self.plan_y.execute(&mut col, &mut scratch, dir);
                    for (y, c) in col.iter().enumerate() {
                        zplane[x + nx * y] = *c;
                    }
                }
            }
        });

        // --- Z axis: rotate so it becomes contiguous, transform, rotate back ---
        let mut rotated = vec![Complex32::ZERO; data.len()];
        rotate_zxy(data, &mut rotated, nx, ny, nz);
        self.parallel_chunks(&mut rotated, nz * nx, |chunk| {
            let mut scratch = vec![Complex32::ZERO; nz];
            for row in chunk.chunks_mut(nz) {
                self.plan_z.execute(row, &mut scratch, dir);
            }
        });
        rotate_back_zxy(&rotated, data, nx, ny, nz);
    }

    /// Splits `data` into per-thread chunks aligned to `unit` elements and
    /// runs `f` on each in a scoped thread.
    fn parallel_chunks<F>(&self, data: &mut [Complex32], unit: usize, f: F)
    where
        F: Fn(&mut [Complex32]) + Sync,
    {
        let units = data.len() / unit;
        let per_thread = units.div_ceil(self.threads).max(1) * unit;
        if self.threads == 1 || units <= 1 {
            f(data);
            return;
        }
        std::thread::scope(|s| {
            for chunk in data.chunks_mut(per_thread) {
                s.spawn(|| f(chunk));
            }
        });
    }
}

/// `(x,y,z) → (z,x,y)` rotation (cache-blocked enough for our sizes).
fn rotate_zxy(src: &[Complex32], dst: &mut [Complex32], nx: usize, ny: usize, nz: usize) {
    for y in 0..ny {
        for z in 0..nz {
            let s = nx * (y + ny * z);
            for x in 0..nx {
                dst[z + nz * (x + nx * y)] = src[x + s];
            }
        }
    }
}

/// Inverse of [`rotate_zxy`].
fn rotate_back_zxy(src: &[Complex32], dst: &mut [Complex32], nx: usize, ny: usize, nz: usize) {
    for y in 0..ny {
        for z in 0..nz {
            let d = nx * (y + ny * z);
            for x in 0..nx {
                dst[x + d] = src[z + nz * (x + nx * y)];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft_math::dft::dft3d_oracle;
    use fft_math::error::rel_l2_error;
    use fft_math::rng::SplitMix64;

    fn random_volume(n: usize, seed: u64) -> Vec<Complex32> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| Complex32::new(rng.uniform_f32(-1.0, 1.0), rng.uniform_f32(-1.0, 1.0)))
            .collect()
    }

    #[test]
    fn matches_oracle_cube() {
        let plan = CpuFft3d::with_threads(8, 8, 8, 2);
        let orig = random_volume(512, 51);
        let mut data = orig.clone();
        plan.execute(&mut data, Direction::Forward);
        let want = dft3d_oracle(&orig, 8, 8, 8, Direction::Forward);
        assert!(rel_l2_error(&data, &want) < 1e-4);
    }

    #[test]
    fn matches_oracle_rectangular() {
        let plan = CpuFft3d::with_threads(4, 16, 8, 3);
        let orig = random_volume(plan.volume(), 52);
        let mut data = orig.clone();
        plan.execute(&mut data, Direction::Forward);
        let want = dft3d_oracle(&orig, 4, 16, 8, Direction::Forward);
        assert!(rel_l2_error(&data, &want) < 1e-4);
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let orig = random_volume(16 * 16 * 16, 53);
        let mut a = orig.clone();
        let mut b = orig.clone();
        CpuFft3d::with_threads(16, 16, 16, 1).execute(&mut a, Direction::Forward);
        CpuFft3d::with_threads(16, 16, 16, 4).execute(&mut b, Direction::Forward);
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_with_normalisation() {
        let plan = CpuFft3d::with_threads(16, 8, 8, 2);
        let orig = random_volume(plan.volume(), 54);
        let mut data = orig.clone();
        plan.execute(&mut data, Direction::Forward);
        plan.execute(&mut data, Direction::Inverse);
        let n = plan.volume() as f32;
        for (d, o) in data.iter().zip(&orig) {
            assert!((d.scale(1.0 / n) - *o).abs() < 1e-4);
        }
    }

    #[test]
    fn rotation_roundtrip() {
        let orig = random_volume(4 * 6 * 8, 55);
        let mut r = vec![Complex32::ZERO; orig.len()];
        let mut back = vec![Complex32::ZERO; orig.len()];
        rotate_zxy(&orig, &mut r, 4, 6, 8);
        rotate_back_zxy(&r, &mut back, 4, 6, 8);
        assert_eq!(orig, back);
    }

    #[test]
    fn parseval_3d() {
        let plan = CpuFft3d::with_threads(8, 8, 16, 2);
        let orig = random_volume(plan.volume(), 56);
        let mut data = orig.clone();
        plan.execute(&mut data, Direction::Forward);
        let t: f64 = orig.iter().map(|z| z.norm_sqr() as f64).sum();
        let f: f64 = data.iter().map(|z| z.norm_sqr() as f64).sum::<f64>() / plan.volume() as f64;
        assert!((t - f).abs() < 1e-3 * t);
    }
}
