//! `cpu-fft` — the FFTW-like CPU baseline of the SC'08 reproduction.
//!
//! [`plan`] is a real, planned, multithreaded row–column 3-D FFT that runs on
//! this machine; [`model`] is a roofline model of the paper's 2008 quad-core
//! CPUs used to regenerate the CPU rows of Tables 11–13.

#![warn(missing_docs)]

pub mod model;
pub mod plan;
pub mod plan64;

pub use model::{fftw_model_gflops, fftw_model_seconds, CpuSpec};
pub use plan::CpuFft3d;
pub use plan64::CpuFft3d64;
