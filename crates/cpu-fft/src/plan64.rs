//! Double-precision CPU 3-D FFT — the reference implementation for the
//! §4.5 future-work extension.
//!
//! Same row–column structure as [`crate::plan`], over `Complex64`. This is
//! what a double-precision GPU kernel would be validated against, and what
//! the accuracy comparison of the extension report uses.

use crate::model::count_threads;
use fft_math::complex::Complex64;
use fft_math::fft64::Fft1dPlan64;
use fft_math::twiddle::Direction;

/// A planned `nx x ny x nz` double-precision transform.
pub struct CpuFft3d64 {
    nx: usize,
    ny: usize,
    nz: usize,
    plan_x: Fft1dPlan64,
    plan_y: Fft1dPlan64,
    plan_z: Fft1dPlan64,
    threads: usize,
}

impl CpuFft3d64 {
    /// Plans with host parallelism.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Self::with_threads(nx, ny, nz, count_threads())
    }

    /// Plans with an explicit thread count.
    pub fn with_threads(nx: usize, ny: usize, nz: usize, threads: usize) -> Self {
        assert!(nx.is_power_of_two() && ny.is_power_of_two() && nz.is_power_of_two());
        CpuFft3d64 {
            nx,
            ny,
            nz,
            plan_x: Fft1dPlan64::new(nx),
            plan_y: Fft1dPlan64::new(ny),
            plan_z: Fft1dPlan64::new(nz),
            threads: threads.max(1),
        }
    }

    /// Volume in elements.
    pub fn volume(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Executes in place on a natural-order volume.
    pub fn execute(&self, data: &mut [Complex64], dir: Direction) {
        assert_eq!(data.len(), self.volume(), "volume mismatch");
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let plane = nx * ny;

        self.parallel_chunks(data, plane, |chunk| {
            let mut scratch = vec![Complex64::ZERO; nx];
            for row in chunk.chunks_mut(nx) {
                self.plan_x.execute(row, &mut scratch, dir);
            }
        });

        self.parallel_chunks(data, plane, |chunk| {
            let mut scratch = vec![Complex64::ZERO; ny];
            let mut col = vec![Complex64::ZERO; ny];
            for zplane in chunk.chunks_mut(plane) {
                for x in 0..nx {
                    for (y, c) in col.iter_mut().enumerate() {
                        *c = zplane[x + nx * y];
                    }
                    self.plan_y.execute(&mut col, &mut scratch, dir);
                    for (y, c) in col.iter().enumerate() {
                        zplane[x + nx * y] = *c;
                    }
                }
            }
        });

        // Z via rotate–transform–rotate.
        let mut rotated = vec![Complex64::ZERO; data.len()];
        for y in 0..ny {
            for z in 0..nz {
                let s = nx * (y + ny * z);
                for x in 0..nx {
                    rotated[z + nz * (x + nx * y)] = data[x + s];
                }
            }
        }
        self.parallel_chunks(&mut rotated, nz * nx, |chunk| {
            let mut scratch = vec![Complex64::ZERO; nz];
            for row in chunk.chunks_mut(nz) {
                self.plan_z.execute(row, &mut scratch, dir);
            }
        });
        for y in 0..ny {
            for z in 0..nz {
                let d = nx * (y + ny * z);
                for x in 0..nx {
                    data[x + d] = rotated[z + nz * (x + nx * y)];
                }
            }
        }
    }

    fn parallel_chunks<F>(&self, data: &mut [Complex64], unit: usize, f: F)
    where
        F: Fn(&mut [Complex64]) + Sync,
    {
        let units = data.len() / unit;
        let per_thread = units.div_ceil(self.threads).max(1) * unit;
        if self.threads == 1 || units <= 1 {
            f(data);
            return;
        }
        std::thread::scope(|s| {
            for chunk in data.chunks_mut(per_thread) {
                s.spawn(|| f(chunk));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::CpuFft3d;
    use fft_math::complex::Complex32;
    use fft_math::rng::SplitMix64;

    fn random_volume(n: usize, seed: u64) -> Vec<Complex64> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| Complex64::new(rng.uniform_f64(-1.0, 1.0), rng.uniform_f64(-1.0, 1.0)))
            .collect()
    }

    #[test]
    fn agrees_with_single_precision_plan() {
        let n = 16usize;
        let orig = random_volume(n * n * n, 77);
        let mut d64 = orig.clone();
        CpuFft3d64::with_threads(n, n, n, 2).execute(&mut d64, Direction::Forward);
        let mut d32: Vec<Complex32> = orig.iter().map(|z| z.narrow()).collect();
        CpuFft3d::with_threads(n, n, n, 2).execute(&mut d32, Direction::Forward);
        for (a, b) in d64.iter().zip(&d32) {
            assert!((a.narrow() - *b).abs() < 2e-2, "{a:?} vs {b}");
        }
    }

    #[test]
    fn roundtrip_to_machine_precision() {
        let n = 8usize;
        let orig = random_volume(n * n * n, 78);
        let plan = CpuFft3d64::with_threads(n, n, n, 1);
        let mut data = orig.clone();
        plan.execute(&mut data, Direction::Forward);
        plan.execute(&mut data, Direction::Inverse);
        let s = 1.0 / plan.volume() as f64;
        for (d, o) in data.iter().zip(&orig) {
            assert!((d.scale(s) - *o).abs() < 1e-12);
        }
    }

    #[test]
    fn rectangular_dims() {
        let plan = CpuFft3d64::with_threads(4, 8, 16, 3);
        let orig = random_volume(plan.volume(), 79);
        let mut data = orig.clone();
        plan.execute(&mut data, Direction::Forward);
        plan.execute(&mut data, Direction::Inverse);
        let s = 1.0 / plan.volume() as f64;
        for (d, o) in data.iter().zip(&orig) {
            assert!((d.scale(s) - *o).abs() < 1e-12);
        }
    }
}
