//! The gateway server: a dependency-free, single-threaded poll loop over
//! nonblocking std TCP.
//!
//! One thread owns the listener, every connection, the paced bridge and
//! the `FftService` — no locks, no async runtime, and the workspace keeps
//! building `--offline`. Each loop iteration flushes pending writes,
//! reads from every unpaused connection, decodes and handles complete
//! frames, then pumps the paced bridge.
//!
//! Backpressure is connection-level and explicit, a three-state machine
//! per connection (see DESIGN.md §14):
//!
//! - **open** — frames are read and handled as they arrive;
//! - **window-paused** — a paced connection with `window` submissions held
//!   in the bridge stops being read until releases drain it below the
//!   window (the bytes stay in the kernel socket buffer, so TCP pushes
//!   the stall back to the client);
//! - **queue-paused** — a live connection whose submit just bounced with
//!   `QueueFull` stops being read until the admission queue has room
//!   again, converting the service's rejection taxonomy into transport
//!   backpressure. Paced connections are exempt: their rejections are part
//!   of the recorded workload and must replay identically.
//!
//! Every gateway-side counter lives in the service's own telemetry
//! registry, so `--metrics-out` exports one document covering both layers.

use crate::bridge::PacedBridge;
use crate::proto::{
    code, rejection_code, rejection_kind, Frame, FrameDecoder, Mode, PROTO, PROTO_V12,
};
use fft_serve::{FftService, Rejection, RequestId, ServeConfig, SubmitTemplate, Ticket};
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Gateway metric names, `gate_`-prefixed to sit beside the `serve_*`
/// family in the shared registry.
pub mod names {
    /// Connections accepted over the gateway's lifetime.
    pub const CONNECTIONS: &str = "gate_connections_total";
    /// Connections currently open (gauge).
    pub const CONNECTIONS_OPEN: &str = "gate_connections_open";
    /// Frames decoded from clients.
    pub const FRAMES_IN: &str = "gate_frames_in_total";
    /// Frames sent to clients.
    pub const FRAMES_OUT: &str = "gate_frames_out_total";
    /// Payload + header bytes read.
    pub const BYTES_IN: &str = "gate_bytes_in_total";
    /// Payload + header bytes written.
    pub const BYTES_OUT: &str = "gate_bytes_out_total";
    /// Submit frames accepted into the service.
    pub const SUBMITS: &str = "gate_submits_total";
    /// Submit frames the service rejected (any admission reason).
    pub const REJECTED: &str = "gate_rejected_total";
    /// Poll frames answered.
    pub const POLLS: &str = "gate_polls_total";
    /// Malformed / out-of-protocol frames (each closes its connection).
    pub const PROTOCOL_ERRORS: &str = "gate_protocol_errors_total";
    /// Transitions into a read-paused state (window or queue pressure).
    pub const BACKPRESSURE_STALLS: &str = "gate_backpressure_stalls_total";
}

/// Server-side knobs.
#[derive(Clone, Debug)]
pub struct GateConfig {
    /// The serve-core configuration behind the gateway.
    pub serve: ServeConfig,
    /// Per-connection in-flight submit window (paced connections pause at
    /// this many unreleased submissions).
    pub window: usize,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            serve: ServeConfig::default(),
            window: 32,
        }
    }
}

/// Why the loop is not reading a connection right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pause {
    /// Reading normally.
    No,
    /// Paced window full — waiting for bridge releases.
    Window,
    /// Live connection shed with `QueueFull` — waiting for queue room.
    Queue,
}

struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Bytes queued to write, drained opportunistically each iteration.
    out: Vec<u8>,
    /// `None` until the `Hello` handshake lands.
    mode: Option<Mode>,
    pause: Pause,
    /// Close once the out-buffer flushes.
    closing: bool,
}

impl Conn {
    fn queue_frame(&mut self, f: &Frame) {
        self.out.extend_from_slice(&f.encode());
    }
}

/// One submit's reply coordinates: the connection it came in on, the
/// client's frame seq / trace id, the gateway wall stamps taken at decode
/// (`recv_s`) and service enqueue (`enq_s`), and whether the ack goes out
/// as a `PipelineAck` instead of a `SubmitAck`.
struct SubmitReply {
    conn: u64,
    seq: u64,
    trace: Option<u64>,
    recv_s: f64,
    enq_s: f64,
    pipeline: bool,
}

/// The gateway server. Construct with [`GateServer::bind`], then either
/// [`GateServer::run`] to completion or drive [`GateServer::run_once`]
/// from a custom loop.
pub struct GateServer {
    listener: TcpListener,
    svc: FftService,
    bridge: PacedBridge,
    conns: BTreeMap<u64, Conn>,
    next_conn: u64,
    window: usize,
    check_enabled: bool,
    /// Set by a `Shutdown` frame: stop accepting, exit once drained.
    shutdown: bool,
    started: Instant,
}

impl GateServer {
    /// Binds the listener and brings the fleet up.
    ///
    /// # Errors
    /// Socket errors from the bind, and service construction failures
    /// (invalid [`ServeConfig`]) mapped to [`ErrorKind::InvalidInput`].
    pub fn bind(addr: &str, cfg: GateConfig) -> std::io::Result<GateServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        GateServer::from_listener(listener, cfg)
    }

    /// Binds on the calling thread (so bind errors surface immediately)
    /// and runs the gateway on a background thread. `FftService` holds
    /// `Rc`s and is not `Send`, so the service is constructed — and
    /// dropped — on the thread that drives it; only the listener crosses.
    /// Inspect server state over the wire (`Report`, `MetricsReq`, …).
    ///
    /// # Errors
    /// Socket errors from the bind and invalid [`ServeConfig`]s.
    pub fn spawn(
        addr: &str,
        cfg: GateConfig,
    ) -> std::io::Result<(SocketAddr, std::thread::JoinHandle<()>)> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        cfg.serve
            .validate()
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
        let handle = std::thread::spawn(move || {
            GateServer::from_listener(listener, cfg)
                .expect("config pre-validated")
                .run();
        });
        Ok((bound, handle))
    }

    /// Brings the fleet up behind an already-bound nonblocking listener.
    ///
    /// # Errors
    /// Service construction failures (invalid [`ServeConfig`]) mapped to
    /// [`ErrorKind::InvalidInput`].
    pub fn from_listener(listener: TcpListener, cfg: GateConfig) -> std::io::Result<GateServer> {
        let check_enabled = cfg.serve.check_hazards;
        let mut svc = FftService::new(cfg.serve)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
        let reg = &mut svc.telemetry_mut().registry;
        for name in [
            names::CONNECTIONS,
            names::FRAMES_IN,
            names::FRAMES_OUT,
            names::BYTES_IN,
            names::BYTES_OUT,
            names::SUBMITS,
            names::REJECTED,
            names::POLLS,
            names::PROTOCOL_ERRORS,
            names::BACKPRESSURE_STALLS,
        ] {
            reg.set_counter(name, 0);
        }
        reg.set_gauge(names::CONNECTIONS_OPEN, 0.0);
        Ok(GateServer {
            listener,
            svc,
            bridge: PacedBridge::new(),
            conns: BTreeMap::new(),
            next_conn: 0,
            window: cfg.window.max(1),
            check_enabled,
            shutdown: false,
            started: Instant::now(),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The service behind the gateway (tests inspect reports directly).
    pub fn service(&self) -> &FftService {
        &self.svc
    }

    /// Runs until a `Shutdown` frame arrives and every connection closes.
    /// Returns the service for post-run inspection.
    pub fn run(mut self) -> FftService {
        loop {
            let busy = self.run_once();
            if self.shutdown && self.conns.is_empty() {
                return self.svc;
            }
            if !busy {
                std::thread::sleep(Duration::from_micros(300));
            }
        }
    }

    /// One poll-loop iteration: accept, flush, read, handle, pump.
    /// Returns whether any I/O or frame work happened (callers sleep
    /// briefly when idle).
    pub fn run_once(&mut self) -> bool {
        let mut busy = self.accept_new();
        busy |= self.flush_writes();
        busy |= self.read_and_handle();
        self.pump_bridge();
        self.unpause_queue_waiters();
        busy |= self.flush_writes();
        self.reap_closed();
        busy
    }

    fn accept_new(&mut self) -> bool {
        let mut busy = false;
        while !self.shutdown {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let id = self.next_conn;
                    self.next_conn += 1;
                    self.conns.insert(
                        id,
                        Conn {
                            stream,
                            decoder: FrameDecoder::new(),
                            out: Vec::new(),
                            mode: None,
                            pause: Pause::No,
                            closing: false,
                        },
                    );
                    let reg = &mut self.svc.telemetry_mut().registry;
                    reg.inc(names::CONNECTIONS);
                    reg.set_gauge(names::CONNECTIONS_OPEN, self.conns.len() as f64);
                    busy = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        busy
    }

    fn flush_writes(&mut self) -> bool {
        let mut busy = false;
        let mut written = 0u64;
        for conn in self.conns.values_mut() {
            while !conn.out.is_empty() {
                match conn.stream.write(&conn.out) {
                    Ok(0) => {
                        conn.closing = true;
                        conn.out.clear();
                        break;
                    }
                    Ok(n) => {
                        written += n as u64;
                        conn.out.drain(..n);
                        busy = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => {
                        conn.closing = true;
                        conn.out.clear();
                        break;
                    }
                }
            }
        }
        if written > 0 {
            self.svc
                .telemetry_mut()
                .registry
                .add(names::BYTES_OUT, written);
        }
        busy
    }

    fn read_and_handle(&mut self) -> bool {
        let mut busy = false;
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            // High-water on the out-buffer: stop reading until it drains.
            let skip = {
                let c = self.conns.get(&id).expect("conn exists");
                c.closing || c.pause != Pause::No || c.out.len() > (1 << 22)
            };
            if skip {
                continue;
            }
            let mut chunk = [0u8; 16384];
            loop {
                let read = {
                    let c = self.conns.get_mut(&id).expect("conn exists");
                    c.stream.read(&mut chunk)
                };
                match read {
                    Ok(0) => {
                        self.drop_conn(id);
                        busy = true;
                        break;
                    }
                    Ok(n) => {
                        busy = true;
                        self.svc
                            .telemetry_mut()
                            .registry
                            .add(names::BYTES_IN, n as u64);
                        self.conns
                            .get_mut(&id)
                            .expect("conn exists")
                            .decoder
                            .feed(&chunk[..n]);
                        self.drain_frames(id);
                        let gone_or_paused = self
                            .conns
                            .get(&id)
                            .is_none_or(|c| c.closing || c.pause != Pause::No);
                        if gone_or_paused {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        self.drain_frames(id);
                        break;
                    }
                    Err(_) => {
                        self.drop_conn(id);
                        busy = true;
                        break;
                    }
                }
            }
        }
        busy
    }

    /// Decodes and handles every complete frame buffered on `id`, stopping
    /// early if handling pauses or closes the connection.
    fn drain_frames(&mut self, id: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.closing || conn.pause != Pause::No {
                return;
            }
            match conn.decoder.next_frame() {
                Ok(None) => return,
                Ok(Some(frame)) => {
                    self.svc.telemetry_mut().registry.inc(names::FRAMES_IN);
                    self.handle_frame(id, frame);
                }
                Err((ecode, msg)) => {
                    self.protocol_error(id, None, ecode, &msg);
                    return;
                }
            }
        }
    }

    /// Books a protocol error: counter, typed `Error` frame, connection
    /// close. Protocol errors are always fatal to the connection — after a
    /// framing error the stream cannot be resynchronized.
    fn protocol_error(&mut self, id: u64, seq: Option<u64>, ecode: u16, msg: &str) {
        self.svc
            .telemetry_mut()
            .registry
            .inc(names::PROTOCOL_ERRORS);
        let kind = match ecode {
            code::FRAME_TOO_BIG => "frame_too_big",
            code::HELLO_REQUIRED => "hello_required",
            code::PROTO_MISMATCH => "proto_mismatch",
            code::BAD_REQUEST => "bad_request",
            code::UNKNOWN_TYPE => "unknown_type",
            code::UNSUPPORTED_STAGE => "unsupported_stage",
            _ => "bad_frame",
        };
        if let Some(conn) = self.conns.get_mut(&id) {
            conn.queue_frame(&Frame::Error {
                seq,
                code: ecode,
                kind: kind.to_string(),
                message: msg.to_string(),
            });
            conn.closing = true;
        }
        self.note_frame_out();
        self.bridge.close(id);
    }

    fn note_frame_out(&mut self) {
        self.svc.telemetry_mut().registry.inc(names::FRAMES_OUT);
    }

    fn handle_frame(&mut self, id: u64, frame: Frame) {
        let mode = self.conns.get(&id).and_then(|c| c.mode);
        if mode.is_none() {
            // The handshake: nothing but Hello is acceptable first.
            match frame {
                Frame::Hello {
                    proto,
                    client: _,
                    mode,
                    first_s,
                } => {
                    // v1.3 only adds frame types, so a v1.2 client is
                    // served unchanged (it simply never sends type 20).
                    if proto != PROTO && proto != PROTO_V12 {
                        self.protocol_error(
                            id,
                            None,
                            code::PROTO_MISMATCH,
                            &format!("server speaks {PROTO}, client offered {proto}"),
                        );
                        return;
                    }
                    if mode == Mode::Paced {
                        if let Err(e) = self.bridge.register(id, first_s) {
                            self.protocol_error(id, None, code::BAD_REQUEST, &e);
                            return;
                        }
                    }
                    let ack = Frame::HelloAck {
                        proto: PROTO.to_string(),
                        server: "fft-gate".to_string(),
                        gpus: self.svc.config().n_gpus as u64,
                        streams: self.svc.config().streams_per_card as u64,
                        window: self.window as u64,
                        queue_capacity: self.svc.config().queue_capacity as u64,
                    };
                    if let Some(conn) = self.conns.get_mut(&id) {
                        conn.mode = Some(mode);
                        conn.queue_frame(&ack);
                    }
                    self.note_frame_out();
                }
                _ => {
                    self.protocol_error(
                        id,
                        None,
                        code::HELLO_REQUIRED,
                        "the first frame on a connection must be Hello",
                    );
                }
            }
            return;
        }
        match frame {
            Frame::Hello { .. } => {
                self.protocol_error(id, None, code::BAD_REQUEST, "duplicate Hello");
            }
            Frame::Submit {
                seq,
                at_s,
                next_s,
                trace,
                spec,
            } => {
                // The frame-received stamp for the v1.1 ack: gateway wall
                // clock at the moment the submit was decoded.
                let recv_s = self.started.elapsed().as_secs_f64();
                let tpl = SubmitTemplate::Single(spec);
                self.handle_submit(id, mode, seq, at_s, next_s, trace, recv_s, tpl);
            }
            Frame::PipelineSubmit {
                seq,
                at_s,
                next_s,
                trace,
                pipe,
            } => {
                let recv_s = self.started.elapsed().as_secs_f64();
                let tpl = SubmitTemplate::Pipeline(pipe);
                self.handle_submit(id, mode, seq, at_s, next_s, trace, recv_s, tpl);
            }
            Frame::Poll { id: rid } => {
                self.svc.telemetry_mut().registry.inc(names::POLLS);
                let reply = poll_reply(&self.svc, rid);
                if let Some(conn) = self.conns.get_mut(&id) {
                    conn.queue_frame(&reply);
                }
                self.note_frame_out();
            }
            Frame::Ping { nonce } => {
                let now_s = self.svc.now_s();
                if let Some(conn) = self.conns.get_mut(&id) {
                    conn.queue_frame(&Frame::Pong { nonce, now_s });
                }
                self.note_frame_out();
            }
            Frame::Drain => {
                if self.bridge.held_total() > 0 {
                    self.protocol_error(
                        id,
                        None,
                        code::BAD_REQUEST,
                        "drain while paced submissions are still held",
                    );
                    return;
                }
                let now_s = self.svc.drain();
                if let Some(conn) = self.conns.get_mut(&id) {
                    conn.queue_frame(&Frame::DrainAck { now_s });
                }
                self.note_frame_out();
            }
            Frame::Report => {
                let json = self.svc.report().to_json();
                if let Some(conn) = self.conns.get_mut(&id) {
                    conn.queue_frame(&Frame::ReportReply { json });
                }
                self.note_frame_out();
            }
            Frame::MetricsReq => {
                let json = self.svc.metrics_json();
                if let Some(conn) = self.conns.get_mut(&id) {
                    conn.queue_frame(&Frame::MetricsReply { json });
                }
                self.note_frame_out();
            }
            Frame::CheckReq => {
                let rep = self.svc.check_report();
                let reply = match rep {
                    Some(r) => Frame::CheckReply {
                        enabled: self.check_enabled,
                        clean: r.clean(),
                        kernels: r.kernels_checked as u64,
                        findings: (r.access.len() + r.hazards.len()) as u64,
                    },
                    None => Frame::CheckReply {
                        enabled: self.check_enabled,
                        clean: true,
                        kernels: 0,
                        findings: 0,
                    },
                };
                if let Some(conn) = self.conns.get_mut(&id) {
                    conn.queue_frame(&reply);
                }
                self.note_frame_out();
            }
            Frame::Shutdown => {
                self.shutdown = true;
                if let Some(conn) = self.conns.get_mut(&id) {
                    conn.queue_frame(&Frame::Bye);
                    conn.closing = true;
                }
                self.note_frame_out();
            }
            Frame::Bye => {
                if let Some(conn) = self.conns.get_mut(&id) {
                    conn.closing = true;
                }
                self.bridge.close(id);
            }
            // Server-to-client frames bounced back are nonsense.
            Frame::HelloAck { .. }
            | Frame::SubmitAck { .. }
            | Frame::PollReply { .. }
            | Frame::Error { .. }
            | Frame::Pong { .. }
            | Frame::DrainAck { .. }
            | Frame::ReportReply { .. }
            | Frame::MetricsReply { .. }
            | Frame::CheckReply { .. }
            | Frame::PipelineAck { .. } => {
                self.protocol_error(id, None, code::BAD_REQUEST, "server-only frame from client");
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_submit(
        &mut self,
        id: u64,
        mode: Option<Mode>,
        seq: u64,
        at_s: Option<f64>,
        next_s: Option<f64>,
        trace: Option<u64>,
        recv_s: f64,
        template: SubmitTemplate,
    ) {
        match mode {
            Some(Mode::Paced) => {
                let Some(at) = at_s else {
                    self.protocol_error(
                        id,
                        Some(seq),
                        code::BAD_REQUEST,
                        "paced submits must carry at_s",
                    );
                    return;
                };
                if let Err(e) = self
                    .bridge
                    .submit(id, seq, at, next_s, trace, recv_s, template)
                {
                    self.protocol_error(id, Some(seq), code::BAD_REQUEST, &e);
                    return;
                }
                if self.bridge.held_by(id) >= self.window {
                    if let Some(conn) = self.conns.get_mut(&id) {
                        conn.pause = Pause::Window;
                    }
                    self.svc
                        .telemetry_mut()
                        .registry
                        .inc(names::BACKPRESSURE_STALLS);
                }
            }
            Some(Mode::Live) => {
                // Wall clock drives virtual time for interactive clients:
                // elapsed real seconds since the gateway started, never
                // running virtual time backwards.
                let wall = self.started.elapsed().as_secs_f64();
                let at = at_s.unwrap_or(wall).max(self.svc.now_s());
                let pipeline = matches!(template, SubmitTemplate::Pipeline(_));
                let result = template.submit(&mut self.svc, at);
                let enq_s = self.started.elapsed().as_secs_f64();
                self.answer_submit(
                    SubmitReply {
                        conn: id,
                        seq,
                        trace,
                        recv_s,
                        enq_s,
                        pipeline,
                    },
                    &result,
                );
                if let Err(r) = &result {
                    if matches!(r, Rejection::QueueFull { .. }) {
                        // The read-pause that turns admission shedding into
                        // transport backpressure.
                        if let Some(conn) = self.conns.get_mut(&id) {
                            conn.pause = Pause::Queue;
                        }
                        self.svc
                            .telemetry_mut()
                            .registry
                            .inc(names::BACKPRESSURE_STALLS);
                    }
                }
            }
            None => unreachable!("handshake checked before dispatch"),
        }
    }

    /// Queues the ack or typed rejection for one released/admitted submit.
    /// `reply.recv_s`/`reply.enq_s` are gateway wall stamps (frame decoded,
    /// request entered the service); the ack stamp is taken here, as the
    /// reply is queued for write.
    fn answer_submit(&mut self, reply: SubmitReply, result: &Result<Ticket, Rejection>) {
        let SubmitReply {
            conn: id,
            seq,
            trace,
            recv_s,
            enq_s,
            pipeline,
        } = reply;
        let ack_s = self.started.elapsed().as_secs_f64();
        let reg = &mut self.svc.telemetry_mut().registry;
        let reply = match result {
            Ok(ticket) => {
                reg.inc(names::SUBMITS);
                let (id, trace) = (ticket.correlation(), trace);
                if pipeline {
                    Frame::PipelineAck {
                        seq,
                        id,
                        trace,
                        recv_s,
                        enq_s,
                        ack_s,
                    }
                } else {
                    Frame::SubmitAck {
                        seq,
                        id,
                        trace,
                        recv_s,
                        enq_s,
                        ack_s,
                    }
                }
            }
            Err(r) => {
                reg.inc(names::REJECTED);
                Frame::Error {
                    seq: Some(seq),
                    code: rejection_code(r),
                    kind: rejection_kind(r).to_string(),
                    message: r.to_string(),
                }
            }
        };
        if let Some(conn) = self.conns.get_mut(&id) {
            conn.queue_frame(&reply);
        }
        self.note_frame_out();
    }

    /// Releases whatever the bridge allows, submits it in schedule order,
    /// and lifts window pauses that dropped below the threshold.
    fn pump_bridge(&mut self) {
        loop {
            let released = self.bridge.release();
            if released.is_empty() {
                break;
            }
            for held in released {
                let pipeline = matches!(held.spec, SubmitTemplate::Pipeline(_));
                let result = held.spec.submit(&mut self.svc, held.at_s);
                let enq_s = self.started.elapsed().as_secs_f64();
                self.answer_submit(
                    SubmitReply {
                        conn: held.conn,
                        seq: held.seq,
                        trace: held.trace,
                        recv_s: held.recv_s,
                        enq_s,
                        pipeline,
                    },
                    &result,
                );
            }
        }
        for (&id, conn) in self.conns.iter_mut() {
            if conn.pause == Pause::Window && self.bridge.held_by(id) < self.window {
                conn.pause = Pause::No;
            }
        }
    }

    /// Lifts queue-pauses once admission has room again. Live connections
    /// are wall-clock driven, so first move virtual time up to the wall —
    /// otherwise a fleet of paused clients would deadlock waiting for a
    /// queue nothing is left to drain.
    fn unpause_queue_waiters(&mut self) {
        if self.conns.values().all(|c| c.pause != Pause::Queue) {
            return;
        }
        let wall = self.started.elapsed().as_secs_f64();
        self.svc.advance(wall);
        if self.svc.queue_depth() >= self.svc.config().queue_capacity {
            return;
        }
        for conn in self.conns.values_mut() {
            if conn.pause == Pause::Queue {
                conn.pause = Pause::No;
            }
        }
    }

    fn drop_conn(&mut self, id: u64) {
        self.conns.remove(&id);
        self.bridge.close(id);
        self.svc
            .telemetry_mut()
            .registry
            .set_gauge(names::CONNECTIONS_OPEN, self.conns.len() as f64);
    }

    fn reap_closed(&mut self) {
        let done: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.closing && c.out.is_empty())
            .map(|(&id, _)| id)
            .collect();
        for id in done {
            self.drop_conn(id);
        }
    }
}

/// Renders the service's answer for a polled correlation id.
fn poll_reply(svc: &FftService, rid: u64) -> Frame {
    let ticket = Ticket {
        id: RequestId(rid),
        at_s: 0.0,
    };
    match svc.poll(ticket) {
        fft_serve::PollStatus::Queued => Frame::PollReply {
            id: rid,
            status: "queued".to_string(),
            latency_s: None,
            card: None,
            timed_out: None,
            error: None,
        },
        fft_serve::PollStatus::Done(c) => Frame::PollReply {
            id: rid,
            status: "done".to_string(),
            latency_s: Some(c.latency_s()),
            card: c.card.map(|x| x as u64),
            timed_out: Some(c.timed_out),
            error: None,
        },
        fft_serve::PollStatus::Failed(e) => Frame::PollReply {
            id: rid,
            status: "failed".to_string(),
            latency_s: None,
            card: None,
            timed_out: None,
            error: Some(e.to_string()),
        },
        fft_serve::PollStatus::Unknown => Frame::PollReply {
            id: rid,
            status: "unknown".to_string(),
            latency_s: None,
            card: None,
            timed_out: None,
            error: None,
        },
    }
}
