//! `bifft-wire-v1.3`: the versioned, length-prefixed frame protocol the
//! gateway speaks.
//!
//! Every frame is a 5-byte header — one type byte, then the body length as
//! a little-endian `u32` — followed by a UTF-8 JSON body. Bodies are JSON
//! so a session is debuggable with a hex dump and a squint; the length
//! prefix is what lets the decoder resynchronize nothing and reject
//! oversized frames *before* allocating for them. The protocol string
//! travels in `Hello` and is matched exactly: any future breaking change
//! bumps it to `bifft-wire-v2` and old clients get a typed
//! [`code::PROTO_MISMATCH`] instead of undefined behaviour.
//!
//! The v1.2 → v1.3 minor rev added pipeline DAGs: `PipelineSubmit` (type
//! 20) carries a [`fft_serve::SeededPipeline`] — dims, per-input payload
//! seeds, and the stage list with stable string kinds and `"in{i}"`/
//! `"s{i}"` operand labels — and is answered by `PipelineAck` (type 21,
//! the shape of `SubmitAck`). A stage kind this server does not implement
//! rejects with the new stable [`code::UNSUPPORTED_STAGE`]. v1.2 clients
//! are unaffected: every v1.2 frame encodes and decodes byte-identically,
//! and the server still accepts a v1.2 `Hello`.
//!
//! The v1.1 → v1.2 minor rev added multi-tenant QoS plumbing: `Submit`
//! specs carry the numeric `tenant` the request is accounted to (decoders
//! default a missing field to tenant `0`, so v1.1 captures replay
//! unchanged), and a tenant over its admission quota gets the typed
//! [`code::QUOTA_EXCEEDED`] rejection.
//!
//! The v1 → v1.1 minor rev added latency-attribution plumbing: `Submit`
//! carries an optional client-chosen `trace` id, and `SubmitAck` echoes it
//! alongside three gateway wall-clock stamps (`recv_s` frame received,
//! `enq_s` submitted into the service, `ack_s` ack queued — seconds since
//! the gateway started). The stamps let a client reconcile its observed
//! round-trip against the server's virtual-time ledger; they never enter
//! the deterministic report/metrics/attribution documents.
//!
//! Requests travel as [`fft_serve::SeededSpec`] templates — shape,
//! direction, priority, deadline and the payload *seed*, a few dozen bytes
//! — and both ends materialize the identical payload from the seed. That
//! is what makes the same-seed gateway run byte-identical to the
//! in-process run without shipping megabytes of samples.

use crate::json::{self, obj, Value};
use bifft::plan::Algorithm;
use fft_math::twiddle::Direction;
use fft_serve::pipeline::{PipelineStage, StageKind};
use fft_serve::{Operand, Priority, Rejection, SeededPipeline, SeededSpec, Shape, TenantId};

/// The protocol identifier carried in `Hello`/`HelloAck`.
pub const PROTO: &str = "bifft-wire-v1.3";

/// The previous minor rev. v1.3 only *adds* frame types, so the server
/// accepts a v1.2 `Hello` unchanged — pre-pipeline clients keep working.
pub const PROTO_V12: &str = "bifft-wire-v1.2";

/// Largest accepted frame body, bytes. Checked against the header length
/// before any allocation, so a hostile 4 GiB length prefix costs nothing.
pub const MAX_FRAME: u32 = 1 << 20;

/// Frame header size: type byte + `u32` little-endian body length.
pub const HEADER_LEN: usize = 5;

/// Typed wire error codes — stable numbers clients branch on without
/// parsing message strings.
pub mod code {
    /// Admission: the bounded queue is full (backpressure; retry later).
    pub const QUEUE_FULL: u16 = 1;
    /// Admission: the deadline cannot be met at the current backlog.
    pub const DEADLINE_INFEASIBLE: u16 = 2;
    /// Admission: the shape or payload is invalid for this service.
    pub const UNSUPPORTED: u16 = 3;
    /// Admission: a rows payload larger than a lane's staging slot.
    pub const OVERSIZED: u16 = 4;
    /// Admission: a volume the whole fleet has proved unallocatable.
    pub const UNALLOCATABLE: u16 = 5;
    /// Admission: the tenant is over its token-bucket rate or in-flight
    /// quota (per-tenant backpressure; retry after the bucket refills).
    pub const QUOTA_EXCEEDED: u16 = 6;
    /// Admission: a pipeline stage kind this server does not implement,
    /// or a DAG the residency executor cannot run in place.
    pub const UNSUPPORTED_STAGE: u16 = 7;
    /// Protocol: unparseable frame header or body.
    pub const BAD_FRAME: u16 = 100;
    /// Protocol: header length exceeds [`super::MAX_FRAME`].
    pub const FRAME_TOO_BIG: u16 = 101;
    /// Protocol: the first frame was not `Hello`.
    pub const HELLO_REQUIRED: u16 = 103;
    /// Protocol: the client's protocol string is not [`super::PROTO`].
    pub const PROTO_MISMATCH: u16 = 104;
    /// Protocol: a well-formed frame with nonsensical fields.
    pub const BAD_REQUEST: u16 = 106;
    /// Protocol: unknown frame type byte.
    pub const UNKNOWN_TYPE: u16 = 107;
}

/// The stable wire code for a rejection.
///
/// The match is deliberately wildcard-free: adding a `Rejection` variant
/// without assigning it a wire code fails to compile here, which is the
/// exhaustiveness guarantee the satellite task asks for.
pub fn rejection_code(r: &Rejection) -> u16 {
    match r {
        Rejection::QueueFull { .. } => code::QUEUE_FULL,
        Rejection::DeadlineInfeasible { .. } => code::DEADLINE_INFEASIBLE,
        Rejection::Unsupported(_) => code::UNSUPPORTED,
        Rejection::Oversized { .. } => code::OVERSIZED,
        Rejection::Unallocatable(_) => code::UNALLOCATABLE,
        Rejection::QuotaExceeded { .. } => code::QUOTA_EXCEEDED,
        Rejection::UnsupportedStage(_) => code::UNSUPPORTED_STAGE,
    }
}

/// The machine-readable kind label paired with each rejection code.
pub fn rejection_kind(r: &Rejection) -> &'static str {
    match r {
        Rejection::QueueFull { .. } => "queue_full",
        Rejection::DeadlineInfeasible { .. } => "deadline_infeasible",
        Rejection::Unsupported(_) => "unsupported",
        Rejection::Oversized { .. } => "oversized",
        Rejection::Unallocatable(_) => "unallocatable",
        Rejection::QuotaExceeded { .. } => "quota_exceeded",
        Rejection::UnsupportedStage(_) => "unsupported_stage",
    }
}

/// How a connection drives virtual time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Submits are stamped with wall-clock-derived virtual arrival times —
    /// the interactive mode.
    Live,
    /// Submits carry explicit virtual arrival times from a recorded
    /// schedule; the bridge merges all paced connections into the exact
    /// schedule order.
    Paced,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Live => "live",
            Mode::Paced => "paced",
        }
    }
}

/// One decoded `bifft-wire-v1` frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client → server, first frame on every connection.
    Hello {
        /// Must equal [`PROTO`].
        proto: String,
        /// Free-form client name for logs.
        client: String,
        /// How this connection drives virtual time.
        mode: Mode,
        /// Paced connections: the `at_s` of this connection's first submit
        /// (`None` = it will never submit), seeding the bridge watermark.
        first_s: Option<f64>,
    },
    /// Server → client handshake reply.
    HelloAck {
        /// Echoes [`PROTO`].
        proto: String,
        /// Server build name.
        server: String,
        /// Fleet size behind the gateway.
        gpus: u64,
        /// Stream lanes per card.
        streams: u64,
        /// Per-connection in-flight submit window.
        window: u64,
        /// The admission queue bound (backpressure threshold).
        queue_capacity: u64,
    },
    /// Client → server: one request.
    Submit {
        /// Client-chosen correlation for the ack (paced runs use the
        /// schedule index, which doubles as the global merge tiebreak).
        seq: u64,
        /// Paced connections: explicit virtual arrival time.
        at_s: Option<f64>,
        /// Paced connections: the `at_s` of this connection's *next*
        /// submit (`None` = this is the last) — the bridge watermark that
        /// lets other connections' earlier arrivals release.
        next_s: Option<f64>,
        /// Client-chosen trace id, echoed verbatim in the ack — the key a
        /// client uses to reconcile its own latency observations against
        /// the server-side attribution ledger.
        trace: Option<u64>,
        /// The request template.
        spec: SeededSpec,
    },
    /// Server → client: the submit was admitted.
    SubmitAck {
        /// Echoed from the submit.
        seq: u64,
        /// The service request id — the wire correlation id for `Poll`.
        id: u64,
        /// Echoed trace id from the submit.
        trace: Option<u64>,
        /// Gateway wall clock when the submit frame was decoded, seconds
        /// since the gateway started.
        recv_s: f64,
        /// Gateway wall clock when the request entered the service (for
        /// paced submits this is the bridge release, not the frame).
        enq_s: f64,
        /// Gateway wall clock when this ack was queued for write.
        ack_s: f64,
    },
    /// Client → server: what happened to request `id`?
    Poll {
        /// A correlation id from `SubmitAck`.
        id: u64,
    },
    /// Server → client poll answer.
    PollReply {
        /// Echoed id.
        id: u64,
        /// `"queued" | "done" | "failed" | "unknown"`.
        status: String,
        /// `done`: completion latency, seconds.
        latency_s: Option<f64>,
        /// `done`: card the launch ran on (`None` = sharded or pending).
        card: Option<u64>,
        /// `done`: whether the completion missed its deadline.
        timed_out: Option<bool>,
        /// `failed`: the dispatch error rendered as text.
        error: Option<String>,
    },
    /// Server → client: a typed error, fatal to the offending request
    /// (admission codes) or to the connection (protocol codes).
    Error {
        /// The submit `seq` it answers, when there is one.
        seq: Option<u64>,
        /// A [`code`] constant.
        code: u16,
        /// Machine-readable kind label.
        kind: String,
        /// Human-readable detail.
        message: String,
    },
    /// Client → server liveness probe.
    Ping {
        /// Echoed back in `Pong`.
        nonce: u64,
    },
    /// Server → client probe reply.
    Pong {
        /// Echoed nonce.
        nonce: u64,
        /// Server virtual time, seconds.
        now_s: f64,
    },
    /// Client → server: run the service to quiescence (virtual time).
    Drain,
    /// Server → client: drain finished.
    DrainAck {
        /// Virtual time after the drain, seconds.
        now_s: f64,
    },
    /// Client → server: render the run's `ServeReport`.
    Report,
    /// Server → client: the report. The body is the `ServeReport` JSON
    /// document verbatim — byte-identical to the in-process render.
    ReportReply {
        /// The report JSON.
        json: String,
    },
    /// Client → server: render the `bifft-metrics-v1` document.
    MetricsReq,
    /// Server → client: the metrics document verbatim.
    MetricsReply {
        /// The metrics JSON.
        json: String,
    },
    /// Client → server: the hazard-validator verdict.
    CheckReq,
    /// Server → client check answer.
    CheckReply {
        /// Whether the fleet runs under the validator at all.
        enabled: bool,
        /// No diagnostics and no hazards (vacuously true when disabled).
        clean: bool,
        /// Kernels checked so far.
        kernels: u64,
        /// Access diagnostics + stream hazards recorded.
        findings: u64,
    },
    /// Client → server: stop accepting connections and exit once every
    /// connection closes (the orderly CI teardown).
    Shutdown,
    /// Either direction: goodbye; the sender closes after flushing.
    Bye,
    /// Client → server: one pipeline DAG (v1.3). Pacing fields mean what
    /// they do on `Submit`; the whole DAG is one schedulable unit.
    PipelineSubmit {
        /// Client-chosen correlation for the ack.
        seq: u64,
        /// Paced connections: explicit virtual arrival time.
        at_s: Option<f64>,
        /// Paced connections: the `at_s` of this connection's next submit.
        next_s: Option<f64>,
        /// Client-chosen trace id, echoed in the ack.
        trace: Option<u64>,
        /// The pipeline template (dims, input seeds, stages).
        pipe: SeededPipeline,
    },
    /// Server → client: the pipeline was admitted (v1.3; the shape of
    /// `SubmitAck`).
    PipelineAck {
        /// Echoed from the submit.
        seq: u64,
        /// The service request id — one id for the whole DAG.
        id: u64,
        /// Echoed trace id.
        trace: Option<u64>,
        /// Gateway wall clock when the frame was decoded.
        recv_s: f64,
        /// Gateway wall clock when the DAG entered the service.
        enq_s: f64,
        /// Gateway wall clock when this ack was queued for write.
        ack_s: f64,
    },
}

impl Frame {
    /// The frame's wire type byte.
    pub fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::HelloAck { .. } => 2,
            Frame::Submit { .. } => 3,
            Frame::SubmitAck { .. } => 4,
            Frame::Poll { .. } => 5,
            Frame::PollReply { .. } => 6,
            Frame::Error { .. } => 7,
            Frame::Ping { .. } => 8,
            Frame::Pong { .. } => 9,
            Frame::Drain => 10,
            Frame::DrainAck { .. } => 11,
            Frame::Report => 12,
            Frame::ReportReply { .. } => 13,
            Frame::MetricsReq => 14,
            Frame::MetricsReply { .. } => 15,
            Frame::CheckReq => 16,
            Frame::CheckReply { .. } => 17,
            Frame::Shutdown => 18,
            Frame::Bye => 19,
            Frame::PipelineSubmit { .. } => 20,
            Frame::PipelineAck { .. } => 21,
        }
    }

    /// Encodes the frame: header + JSON body.
    pub fn encode(&self) -> Vec<u8> {
        let body = self.body().encode();
        let mut out = Vec::with_capacity(HEADER_LEN + body.len());
        out.push(self.type_byte());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(body.as_bytes());
        out
    }

    fn body(&self) -> Value {
        match self {
            Frame::Hello {
                proto,
                client,
                mode,
                first_s,
            } => obj(vec![
                ("proto", Value::Str(proto.clone())),
                ("client", Value::Str(client.clone())),
                ("mode", Value::Str(mode.label().to_string())),
                ("first_s", opt_num(*first_s)),
            ]),
            Frame::HelloAck {
                proto,
                server,
                gpus,
                streams,
                window,
                queue_capacity,
            } => obj(vec![
                ("proto", Value::Str(proto.clone())),
                ("server", Value::Str(server.clone())),
                ("gpus", Value::Int(*gpus)),
                ("streams", Value::Int(*streams)),
                ("window", Value::Int(*window)),
                ("queue_capacity", Value::Int(*queue_capacity)),
            ]),
            Frame::Submit {
                seq,
                at_s,
                next_s,
                trace,
                spec,
            } => obj(vec![
                ("seq", Value::Int(*seq)),
                ("at_s", opt_num(*at_s)),
                ("next_s", opt_num(*next_s)),
                ("trace", trace.map_or(Value::Null, Value::Int)),
                ("spec", spec_body(spec)),
            ]),
            Frame::SubmitAck {
                seq,
                id,
                trace,
                recv_s,
                enq_s,
                ack_s,
            } => obj(vec![
                ("seq", Value::Int(*seq)),
                ("id", Value::Int(*id)),
                ("trace", trace.map_or(Value::Null, Value::Int)),
                ("recv_s", Value::Num(*recv_s)),
                ("enq_s", Value::Num(*enq_s)),
                ("ack_s", Value::Num(*ack_s)),
            ]),
            Frame::Poll { id } => obj(vec![("id", Value::Int(*id))]),
            Frame::PollReply {
                id,
                status,
                latency_s,
                card,
                timed_out,
                error,
            } => obj(vec![
                ("id", Value::Int(*id)),
                ("status", Value::Str(status.clone())),
                ("latency_s", opt_num(*latency_s)),
                ("card", card.map_or(Value::Null, Value::Int)),
                ("timed_out", timed_out.map_or(Value::Null, Value::Bool)),
                ("error", error.clone().map_or(Value::Null, Value::Str)),
            ]),
            Frame::Error {
                seq,
                code,
                kind,
                message,
            } => obj(vec![
                ("seq", seq.map_or(Value::Null, Value::Int)),
                ("code", Value::Int(u64::from(*code))),
                ("kind", Value::Str(kind.clone())),
                ("message", Value::Str(message.clone())),
            ]),
            Frame::Ping { nonce } => obj(vec![("nonce", Value::Int(*nonce))]),
            Frame::Pong { nonce, now_s } => obj(vec![
                ("nonce", Value::Int(*nonce)),
                ("now_s", Value::Num(*now_s)),
            ]),
            Frame::Drain | Frame::Report | Frame::MetricsReq | Frame::CheckReq => obj(vec![]),
            Frame::Shutdown | Frame::Bye => obj(vec![]),
            Frame::DrainAck { now_s } => obj(vec![("now_s", Value::Num(*now_s))]),
            Frame::ReportReply { json } | Frame::MetricsReply { json } => {
                obj(vec![("doc", Value::Str(json.clone()))])
            }
            Frame::CheckReply {
                enabled,
                clean,
                kernels,
                findings,
            } => obj(vec![
                ("enabled", Value::Bool(*enabled)),
                ("clean", Value::Bool(*clean)),
                ("kernels", Value::Int(*kernels)),
                ("findings", Value::Int(*findings)),
            ]),
            Frame::PipelineSubmit {
                seq,
                at_s,
                next_s,
                trace,
                pipe,
            } => obj(vec![
                ("seq", Value::Int(*seq)),
                ("at_s", opt_num(*at_s)),
                ("next_s", opt_num(*next_s)),
                ("trace", trace.map_or(Value::Null, Value::Int)),
                ("pipe", pipe_body(pipe)),
            ]),
            Frame::PipelineAck {
                seq,
                id,
                trace,
                recv_s,
                enq_s,
                ack_s,
            } => obj(vec![
                ("seq", Value::Int(*seq)),
                ("id", Value::Int(*id)),
                ("trace", trace.map_or(Value::Null, Value::Int)),
                ("recv_s", Value::Num(*recv_s)),
                ("enq_s", Value::Num(*enq_s)),
                ("ack_s", Value::Num(*ack_s)),
            ]),
        }
    }

    /// Decodes one frame from its type byte and body bytes.
    ///
    /// # Errors
    /// A human-readable reason; the gateway maps it to
    /// [`code::BAD_FRAME`] / [`code::UNKNOWN_TYPE`]. Never panics,
    /// whatever the input.
    pub fn decode(type_byte: u8, body: &[u8]) -> Result<Frame, String> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
        let v = json::parse(text)?;
        match type_byte {
            1 => Ok(Frame::Hello {
                proto: need_str(&v, "proto")?,
                client: need_str(&v, "client")?,
                mode: match need_str(&v, "mode")?.as_str() {
                    "live" => Mode::Live,
                    "paced" => Mode::Paced,
                    other => return Err(format!("unknown mode '{other}'")),
                },
                first_s: opt_f64(&v, "first_s")?,
            }),
            2 => Ok(Frame::HelloAck {
                proto: need_str(&v, "proto")?,
                server: need_str(&v, "server")?,
                gpus: need_u64(&v, "gpus")?,
                streams: need_u64(&v, "streams")?,
                window: need_u64(&v, "window")?,
                queue_capacity: need_u64(&v, "queue_capacity")?,
            }),
            3 => Ok(Frame::Submit {
                seq: need_u64(&v, "seq")?,
                at_s: opt_f64(&v, "at_s")?,
                next_s: opt_f64(&v, "next_s")?,
                trace: opt_u64(&v, "trace")?,
                spec: spec_decode(v.get("spec").ok_or("missing spec")?)?,
            }),
            4 => Ok(Frame::SubmitAck {
                seq: need_u64(&v, "seq")?,
                id: need_u64(&v, "id")?,
                trace: opt_u64(&v, "trace")?,
                recv_s: need_f64(&v, "recv_s")?,
                enq_s: need_f64(&v, "enq_s")?,
                ack_s: need_f64(&v, "ack_s")?,
            }),
            5 => Ok(Frame::Poll {
                id: need_u64(&v, "id")?,
            }),
            6 => Ok(Frame::PollReply {
                id: need_u64(&v, "id")?,
                status: need_str(&v, "status")?,
                latency_s: opt_f64(&v, "latency_s")?,
                card: match v.get("card") {
                    None | Some(Value::Null) => None,
                    Some(c) => Some(c.as_u64().ok_or("card must be an integer")?),
                },
                timed_out: match v.get("timed_out") {
                    None | Some(Value::Null) => None,
                    Some(b) => Some(b.as_bool().ok_or("timed_out must be a bool")?),
                },
                error: match v.get("error") {
                    None | Some(Value::Null) => None,
                    Some(e) => Some(e.as_str().ok_or("error must be a string")?.to_string()),
                },
            }),
            7 => {
                let raw = need_u64(&v, "code")?;
                Ok(Frame::Error {
                    seq: match v.get("seq") {
                        None | Some(Value::Null) => None,
                        Some(s) => Some(s.as_u64().ok_or("seq must be an integer")?),
                    },
                    code: u16::try_from(raw).map_err(|_| "code out of range")?,
                    kind: need_str(&v, "kind")?,
                    message: need_str(&v, "message")?,
                })
            }
            8 => Ok(Frame::Ping {
                nonce: need_u64(&v, "nonce")?,
            }),
            9 => Ok(Frame::Pong {
                nonce: need_u64(&v, "nonce")?,
                now_s: need_f64(&v, "now_s")?,
            }),
            10 => Ok(Frame::Drain),
            11 => Ok(Frame::DrainAck {
                now_s: need_f64(&v, "now_s")?,
            }),
            12 => Ok(Frame::Report),
            13 => Ok(Frame::ReportReply {
                json: need_str(&v, "doc")?,
            }),
            14 => Ok(Frame::MetricsReq),
            15 => Ok(Frame::MetricsReply {
                json: need_str(&v, "doc")?,
            }),
            16 => Ok(Frame::CheckReq),
            17 => Ok(Frame::CheckReply {
                enabled: need_bool(&v, "enabled")?,
                clean: need_bool(&v, "clean")?,
                kernels: need_u64(&v, "kernels")?,
                findings: need_u64(&v, "findings")?,
            }),
            18 => Ok(Frame::Shutdown),
            19 => Ok(Frame::Bye),
            20 => Ok(Frame::PipelineSubmit {
                seq: need_u64(&v, "seq")?,
                at_s: opt_f64(&v, "at_s")?,
                next_s: opt_f64(&v, "next_s")?,
                trace: opt_u64(&v, "trace")?,
                pipe: pipe_decode(v.get("pipe").ok_or("missing pipe")?)?,
            }),
            21 => Ok(Frame::PipelineAck {
                seq: need_u64(&v, "seq")?,
                id: need_u64(&v, "id")?,
                trace: opt_u64(&v, "trace")?,
                recv_s: need_f64(&v, "recv_s")?,
                enq_s: need_f64(&v, "enq_s")?,
                ack_s: need_f64(&v, "ack_s")?,
            }),
            other => Err(format!("unknown frame type {other}")),
        }
    }
}

fn opt_num(v: Option<f64>) -> Value {
    v.map_or(Value::Null, Value::Num)
}

fn need_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing integer field '{key}'"))
}

fn need_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing number field '{key}'"))
}

fn need_bool(v: &Value, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(Value::as_bool)
        .ok_or_else(|| format!("missing bool field '{key}'"))
}

fn opt_f64(v: &Value, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("field '{key}' must be a number or null")),
    }
}

fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field '{key}' must be an integer or null")),
    }
}

/// Renders a request template as its wire body.
fn spec_body(spec: &SeededSpec) -> Value {
    let shape = match spec.shape {
        Shape::Rows1d { n, rows } => obj(vec![
            ("kind", Value::Str("rows".to_string())),
            ("n", Value::Int(n as u64)),
            ("rows", Value::Int(rows as u64)),
        ]),
        Shape::Volume { nx, ny, nz } => obj(vec![
            ("kind", Value::Str("volume".to_string())),
            ("nx", Value::Int(nx as u64)),
            ("ny", Value::Int(ny as u64)),
            ("nz", Value::Int(nz as u64)),
        ]),
    };
    obj(vec![
        ("shape", shape),
        (
            "dir",
            Value::Str(
                match spec.direction {
                    Direction::Forward => "fwd",
                    Direction::Inverse => "inv",
                }
                .to_string(),
            ),
        ),
        (
            "algorithm",
            spec.algorithm
                .map_or(Value::Null, |a| Value::Str(algorithm_label(a).to_string())),
        ),
        (
            "priority",
            Value::Str(
                match spec.priority {
                    Priority::High => "high",
                    Priority::Normal => "normal",
                    Priority::Low => "low",
                }
                .to_string(),
            ),
        ),
        ("deadline_s", opt_num(spec.deadline_s)),
        ("tenant", Value::Int(spec.tenant.0)),
        ("seed", Value::Int(spec.seed)),
    ])
}

fn algorithm_label(a: Algorithm) -> &'static str {
    match a {
        Algorithm::FiveStep => "five_step",
        Algorithm::SixStep => "six_step",
        Algorithm::CufftLike => "cufft_like",
        Algorithm::OutOfCore => "out_of_core",
        Algorithm::MultiGpu => "multi_gpu",
    }
}

/// Parses a request template off the wire. Dimensions are bounded to
/// `2^24` elements per axis before any multiplication, so a hostile
/// `nx: 2^63` cannot overflow admission arithmetic.
fn spec_decode(v: &Value) -> Result<SeededSpec, String> {
    let shape_v = v.get("shape").ok_or("missing spec.shape")?;
    let dim = |key: &str| -> Result<usize, String> {
        let d = need_u64(shape_v, key)?;
        if d == 0 || d > (1 << 24) {
            return Err(format!("shape.{key} = {d} out of range"));
        }
        Ok(d as usize)
    };
    let shape = match need_str(shape_v, "kind")?.as_str() {
        "rows" => Shape::Rows1d {
            n: dim("n")?,
            rows: dim("rows")?,
        },
        "volume" => Shape::Volume {
            nx: dim("nx")?,
            ny: dim("ny")?,
            nz: dim("nz")?,
        },
        other => return Err(format!("unknown shape kind '{other}'")),
    };
    let direction = match need_str(v, "dir")?.as_str() {
        "fwd" => Direction::Forward,
        "inv" => Direction::Inverse,
        other => return Err(format!("unknown direction '{other}'")),
    };
    let algorithm = match v.get("algorithm") {
        None | Some(Value::Null) => None,
        Some(a) => Some(match a.as_str().ok_or("algorithm must be a string")? {
            "five_step" => Algorithm::FiveStep,
            "six_step" => Algorithm::SixStep,
            "cufft_like" => Algorithm::CufftLike,
            "out_of_core" => Algorithm::OutOfCore,
            "multi_gpu" => Algorithm::MultiGpu,
            other => return Err(format!("unknown algorithm '{other}'")),
        }),
    };
    let priority = match need_str(v, "priority")?.as_str() {
        "high" => Priority::High,
        "normal" => Priority::Normal,
        "low" => Priority::Low,
        other => return Err(format!("unknown priority '{other}'")),
    };
    let deadline_s = opt_f64(v, "deadline_s")?;
    if let Some(d) = deadline_s {
        if d <= 0.0 || d.is_nan() {
            return Err(format!("deadline_s = {d} must be positive"));
        }
    }
    // Absent on v1.1 frames: default to the anonymous tenant so recorded
    // pre-QoS schedules replay bit-identically.
    let tenant = TenantId(opt_u64(v, "tenant")?.unwrap_or(0));
    Ok(SeededSpec {
        shape,
        direction,
        algorithm,
        priority,
        deadline_s,
        tenant,
        seed: need_u64(v, "seed")?,
    })
}

/// Renders a pipeline template as its wire body. Stage kinds travel as
/// their stable string labels and operands as `"in{i}"` / `"s{i}"`, so a
/// hex dump of a `PipelineSubmit` reads like the DAG it carries.
fn pipe_body(pipe: &SeededPipeline) -> Value {
    let stages = pipe
        .stages
        .iter()
        .map(|st| {
            obj(vec![
                ("kind", Value::Str(st.kind.label().to_string())),
                ("src", Value::Str(st.src.label())),
                (
                    "src2",
                    st.src2.map_or(Value::Null, |o| Value::Str(o.label())),
                ),
                ("scale", Value::Num(f64::from(st.scale))),
                ("after", Value::Int(u64::from(st.after_mask))),
            ])
        })
        .collect();
    obj(vec![
        (
            "dims",
            Value::Arr(vec![
                Value::Int(pipe.dims.0 as u64),
                Value::Int(pipe.dims.1 as u64),
                Value::Int(pipe.dims.2 as u64),
            ]),
        ),
        (
            "seeds",
            Value::Arr(pipe.input_seeds.iter().map(|&s| Value::Int(s)).collect()),
        ),
        ("stages", Value::Arr(stages)),
        (
            "priority",
            Value::Str(
                match pipe.priority {
                    Priority::High => "high",
                    Priority::Normal => "normal",
                    Priority::Low => "low",
                }
                .to_string(),
            ),
        ),
        ("deadline_s", opt_num(pipe.deadline_s)),
        ("tenant", Value::Int(pipe.tenant.0)),
    ])
}

/// Parses a pipeline template off the wire. An unknown stage kind label
/// errors with the stable `unsupported stage kind` prefix, which the
/// decoder maps to [`code::UNSUPPORTED_STAGE`] — a newer client's DAG gets
/// the typed rejection, not a generic bad-frame. Structural DAG rules
/// (operand wiring, masks) are *not* checked here; the service validates
/// at admission so both transports reject identically. The *resource
/// envelope* is checked here, though: dims must be powers of two in
/// `16..=512` (the five-step plan's envelope) and the seed and stage
/// counts are bounded, so a hostile sub-KiB frame can never name a
/// template whose expansion would allocate gigabytes or overflow the
/// `nx*ny*nz` admission arithmetic.
fn pipe_decode(v: &Value) -> Result<SeededPipeline, String> {
    let dims_v = v
        .get("dims")
        .and_then(Value::as_arr)
        .ok_or("missing dims")?;
    if dims_v.len() != 3 {
        return Err(format!("dims has {} entries, want 3", dims_v.len()));
    }
    let dim = |i: usize| -> Result<usize, String> {
        let d = dims_v[i].as_u64().ok_or("dims must be integers")?;
        if !d.is_power_of_two() || !(16..=512).contains(&d) {
            return Err(format!("dims[{i}] = {d} not a power of two in 16..=512"));
        }
        Ok(d as usize)
    };
    let dims = (dim(0)?, dim(1)?, dim(2)?);
    let seeds_v = v
        .get("seeds")
        .and_then(Value::as_arr)
        .ok_or("missing seeds")?;
    if seeds_v.is_empty() || seeds_v.len() > fft_serve::pipeline::MAX_INPUTS {
        return Err(format!(
            "{} seeds outside 1..={}",
            seeds_v.len(),
            fft_serve::pipeline::MAX_INPUTS
        ));
    }
    let input_seeds = seeds_v
        .iter()
        .map(|s| {
            s.as_u64()
                .ok_or_else(|| "seeds must be integers".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    let stages_v = v
        .get("stages")
        .and_then(Value::as_arr)
        .ok_or("missing stages")?;
    if stages_v.len() > fft_serve::pipeline::MAX_STAGES {
        return Err(format!(
            "{} stages exceeds the {} bound",
            stages_v.len(),
            fft_serve::pipeline::MAX_STAGES
        ));
    }
    let mut stages = Vec::with_capacity(stages_v.len());
    for (i, st) in stages_v.iter().enumerate() {
        let kind_label = need_str(st, "kind")?;
        let kind = StageKind::parse(&kind_label)
            .ok_or_else(|| format!("unsupported stage kind '{kind_label}' (stage {i})"))?;
        let src = Operand::parse(&need_str(st, "src")?)
            .ok_or_else(|| format!("stage {i}: bad src operand"))?;
        let src2 = match st.get("src2") {
            None | Some(Value::Null) => None,
            Some(o) => Some(
                o.as_str()
                    .and_then(Operand::parse)
                    .ok_or_else(|| format!("stage {i}: bad src2 operand"))?,
            ),
        };
        let scale = need_f64(st, "scale")? as f32;
        if !scale.is_finite() {
            return Err(format!("stage {i}: scale must be finite"));
        }
        let after = need_u64(st, "after")?;
        let after_mask =
            u32::try_from(after).map_err(|_| format!("stage {i}: after mask out of range"))?;
        stages.push(PipelineStage {
            kind,
            src,
            src2,
            scale,
            after_mask,
        });
    }
    let priority = match need_str(v, "priority")?.as_str() {
        "high" => Priority::High,
        "normal" => Priority::Normal,
        "low" => Priority::Low,
        other => return Err(format!("unknown priority '{other}'")),
    };
    let deadline_s = opt_f64(v, "deadline_s")?;
    if let Some(d) = deadline_s {
        if d <= 0.0 || d.is_nan() {
            return Err(format!("deadline_s = {d} must be positive"));
        }
    }
    Ok(SeededPipeline {
        dims,
        input_seeds,
        stages,
        priority,
        deadline_s,
        tenant: TenantId(opt_u64(v, "tenant")?.unwrap_or(0)),
    })
}

/// Incremental frame decoder over a growing byte buffer: feed raw reads in,
/// take complete frames out.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// A fresh decoder with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Takes the next complete frame, if one is buffered.
    ///
    /// `Ok(None)` means "need more bytes". Errors are fatal to the
    /// connection: a bad header length or unparseable body leaves the
    /// stream unsynchronizable, so the caller replies with a typed error
    /// and closes.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, (u16, String)> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let ty = self.buf[0];
        let len = u32::from_le_bytes([self.buf[1], self.buf[2], self.buf[3], self.buf[4]]);
        if len > MAX_FRAME {
            return Err((
                code::FRAME_TOO_BIG,
                format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte bound"),
            ));
        }
        let total = HEADER_LEN + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let frame = Frame::decode(ty, &self.buf[HEADER_LEN..total]).map_err(|e| {
            if e.starts_with("unknown frame type") {
                (code::UNKNOWN_TYPE, e)
            } else if e.starts_with("unsupported stage kind") {
                // A structurally fine v1.3 pipeline naming a kind this
                // server does not implement: typed rejection, not a
                // connection-fatal bad frame.
                (code::UNSUPPORTED_STAGE, e)
            } else {
                (code::BAD_FRAME, e)
            }
        })?;
        self.buf.drain(..total);
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> SeededSpec {
        SeededSpec {
            shape: Shape::Rows1d { n: 256, rows: 32 },
            direction: Direction::Inverse,
            algorithm: Some(Algorithm::FiveStep),
            priority: Priority::High,
            deadline_s: Some(2.5e-3),
            tenant: TenantId(3),
            seed: 0xdead_beef_cafe_f00d,
        }
    }

    fn sample_pipe() -> SeededPipeline {
        SeededPipeline {
            dims: (32, 16, 16),
            input_seeds: vec![u64::MAX, 0xdead_beef],
            stages: fft_serve::pipeline::docking_stages(32 * 16 * 16),
            priority: Priority::High,
            deadline_s: Some(0.125),
            tenant: TenantId(2),
        }
    }

    #[test]
    fn every_frame_round_trips() {
        let frames = vec![
            Frame::Hello {
                proto: PROTO.to_string(),
                client: "test".to_string(),
                mode: Mode::Paced,
                first_s: Some(1e-3),
            },
            Frame::HelloAck {
                proto: PROTO.to_string(),
                server: "fft-gate".to_string(),
                gpus: 2,
                streams: 2,
                window: 32,
                queue_capacity: 64,
            },
            Frame::Submit {
                seq: 7,
                at_s: Some(0.25),
                next_s: None,
                trace: Some(41),
                spec: sample_spec(),
            },
            Frame::SubmitAck {
                seq: 7,
                id: 3,
                trace: Some(41),
                recv_s: 0.125,
                enq_s: 0.25,
                ack_s: 0.5,
            },
            Frame::PipelineSubmit {
                seq: 8,
                at_s: Some(0.375),
                next_s: Some(0.5),
                trace: Some(42),
                pipe: sample_pipe(),
            },
            Frame::PipelineAck {
                seq: 8,
                id: 4,
                trace: Some(42),
                recv_s: 0.375,
                enq_s: 0.4375,
                ack_s: 0.5,
            },
            Frame::Poll { id: 3 },
            Frame::PollReply {
                id: 3,
                status: "done".to_string(),
                latency_s: Some(1.25e-3),
                card: Some(1),
                timed_out: Some(false),
                error: None,
            },
            Frame::Error {
                seq: Some(7),
                code: code::QUEUE_FULL,
                kind: "queue_full".to_string(),
                message: "queue full (capacity 64)".to_string(),
            },
            Frame::Ping { nonce: 99 },
            Frame::Pong {
                nonce: 99,
                now_s: 0.125,
            },
            Frame::Drain,
            Frame::DrainAck { now_s: 0.5 },
            Frame::Report,
            Frame::ReportReply {
                json: "{\n  \"x\": 1\n}".to_string(),
            },
            Frame::MetricsReq,
            Frame::MetricsReply {
                json: "{}".to_string(),
            },
            Frame::CheckReq,
            Frame::CheckReply {
                enabled: true,
                clean: true,
                kernels: 12,
                findings: 0,
            },
            Frame::Shutdown,
            Frame::Bye,
        ];
        let mut dec = FrameDecoder::new();
        for f in &frames {
            dec.feed(&f.encode());
        }
        for f in &frames {
            let got = dec.next_frame().unwrap().expect("frame buffered");
            assert_eq!(&got, f);
        }
        assert!(dec.next_frame().unwrap().is_none());
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn u64_seeds_survive_the_wire_exactly() {
        let spec = SeededSpec {
            seed: u64::MAX - 1,
            ..sample_spec()
        };
        let f = Frame::Submit {
            seq: u64::MAX,
            at_s: Some(0.1 + 0.2),
            next_s: Some(f64::MIN_POSITIVE),
            trace: Some(u64::MAX - 1),
            spec,
        };
        let bytes = f.encode();
        let got = Frame::decode(bytes[0], &bytes[HEADER_LEN..]).unwrap();
        assert_eq!(got, f);
    }

    #[test]
    fn rejection_codes_are_stable_and_exhaustive() {
        use bifft::plan::FftError;
        let cases: Vec<(Rejection, u16, &str)> = vec![
            (
                Rejection::QueueFull { capacity: 4 },
                code::QUEUE_FULL,
                "queue_full",
            ),
            (
                Rejection::DeadlineInfeasible {
                    estimated_s: 2.0,
                    deadline_s: 1.0,
                },
                code::DEADLINE_INFEASIBLE,
                "deadline_infeasible",
            ),
            (
                Rejection::Unsupported(FftError::UnsupportedSize { axis: 'x', n: 7 }),
                code::UNSUPPORTED,
                "unsupported",
            ),
            (
                Rejection::Oversized {
                    elems: 10,
                    limit_elems: 5,
                },
                code::OVERSIZED,
                "oversized",
            ),
            (
                Rejection::Unallocatable(FftError::UnsupportedSize { axis: 'y', n: 9 }),
                code::UNALLOCATABLE,
                "unallocatable",
            ),
            (
                Rejection::QuotaExceeded {
                    tenant: fft_serve::TenantId(2),
                    kind: fft_serve::QuotaKind::Rate,
                },
                code::QUOTA_EXCEEDED,
                "quota_exceeded",
            ),
            (
                Rejection::UnsupportedStage("stage 1 reads a reduced value".to_string()),
                code::UNSUPPORTED_STAGE,
                "unsupported_stage",
            ),
        ];
        for (r, want_code, want_kind) in cases {
            assert_eq!(rejection_code(&r), want_code, "{r}");
            assert_eq!(rejection_kind(&r), want_kind, "{r}");
        }
    }

    #[test]
    fn oversized_headers_and_junk_bodies_error_cleanly() {
        let mut dec = FrameDecoder::new();
        // 4 GiB length prefix: rejected from the header alone.
        dec.feed(&[3, 0xff, 0xff, 0xff, 0xff]);
        let err = dec.next_frame().unwrap_err();
        assert_eq!(err.0, code::FRAME_TOO_BIG);

        let mut dec = FrameDecoder::new();
        let mut bad = vec![3u8];
        bad.extend_from_slice(&4u32.to_le_bytes());
        bad.extend_from_slice(b"}{!(");
        dec.feed(&bad);
        assert_eq!(dec.next_frame().unwrap_err().0, code::BAD_FRAME);

        let mut dec = FrameDecoder::new();
        let mut unknown = vec![200u8];
        unknown.extend_from_slice(&2u32.to_le_bytes());
        unknown.extend_from_slice(b"{}");
        dec.feed(&unknown);
        assert_eq!(dec.next_frame().unwrap_err().0, code::UNKNOWN_TYPE);
    }

    #[test]
    fn unknown_stage_kind_maps_to_the_stable_unsupported_code() {
        // A structurally valid v1.3 pipeline naming a kind this build does
        // not implement: the decoder must answer with the typed code, not
        // a generic bad frame, and never panic.
        let mut encoded = Frame::PipelineSubmit {
            seq: 1,
            at_s: None,
            next_s: None,
            trace: None,
            pipe: sample_pipe(),
        }
        .encode();
        let body = String::from_utf8(encoded.split_off(HEADER_LEN)).unwrap();
        let body = body.replacen("\"kind\":\"forward\"", "\"kind\":\"wavelet\"", 1);
        let mut dec = FrameDecoder::new();
        dec.feed(&[encoded[0]]);
        dec.feed(&(body.len() as u32).to_le_bytes());
        dec.feed(body.as_bytes());
        let (ecode, msg) = dec.next_frame().unwrap_err();
        assert_eq!(ecode, code::UNSUPPORTED_STAGE);
        assert!(msg.contains("wavelet"), "names the offending kind: {msg}");
    }

    #[test]
    fn pipeline_scale_survives_the_wire_exactly() {
        // The f32 scale rides the wire as f64; widening and narrowing are
        // exact, so `1/N` comes back bit-identical.
        let pipe = sample_pipe();
        let want: Vec<u32> = pipe.stages.iter().map(|s| s.scale.to_bits()).collect();
        let f = Frame::PipelineSubmit {
            seq: 0,
            at_s: None,
            next_s: None,
            trace: None,
            pipe,
        };
        let bytes = f.encode();
        match Frame::decode(bytes[0], &bytes[HEADER_LEN..]).unwrap() {
            Frame::PipelineSubmit { pipe, .. } => {
                let got: Vec<u32> = pipe.stages.iter().map(|s| s.scale.to_bits()).collect();
                assert_eq!(got, want);
            }
            other => panic!("expected PipelineSubmit, got {other:?}"),
        }
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let f = Frame::Ping { nonce: 5 };
        let bytes = f.encode();
        let mut dec = FrameDecoder::new();
        for (i, b) in bytes.iter().enumerate() {
            if i + 1 < bytes.len() {
                dec.feed(&[*b]);
                assert!(dec.next_frame().unwrap().is_none(), "byte {i}");
            } else {
                dec.feed(&[*b]);
                assert_eq!(dec.next_frame().unwrap(), Some(Frame::Ping { nonce: 5 }));
            }
        }
    }
}
