//! Network load generation: the open/closed-loop generators from
//! `fft_serve::loadgen`, replayed through real TCP connections.
//!
//! The open-loop generator records the same Poisson arrival schedule the
//! in-process generator draws (`open_loop_templates`), deals it round-robin
//! across `clients` concurrent connections, and streams it windowed
//! through the paced bridge. Because every submit carries its virtual
//! `at_s`, global `seq` and the sender's next-arrival watermark, the
//! gateway reassembles exactly the recorded order — so the fetched
//! `ServeReport` is byte-identical to submitting the same schedule
//! in-process, which the N-client integration test pins.

use crate::client::ServeClient;
use crate::proto::{Frame, Mode};
use fft_serve::loadgen::open_loop_templates;
use fft_serve::{SubmitTemplate, Workload};
use std::io::ErrorKind;
use std::time::Duration;

/// What a network load run observed.
#[derive(Clone, Debug, Default)]
pub struct NetLoad {
    /// Requests submitted over the wire.
    pub offered: u64,
    /// Submits the service admitted (acked).
    pub accepted: u64,
    /// Submits rejected with a typed admission error.
    pub rejected: u64,
    /// Per-rejection-code counts, `(code, count)` sorted by code.
    pub rejected_by_code: Vec<(u16, u64)>,
    /// Acks that carried v1.1 trace stamps.
    pub traced_acks: u64,
    /// Total gateway wall-clock hold (`ack_s - recv_s`) across traced
    /// acks — the wire-side latency the server's virtual-time attribution
    /// ledger cannot see. Client-side reconciliation only; never part of
    /// the deterministic report/metrics documents.
    pub gate_hold_s: f64,
}

impl NetLoad {
    fn absorb_code(&mut self, code: u16) {
        self.rejected += 1;
        match self.rejected_by_code.binary_search_by_key(&code, |e| e.0) {
            Ok(i) => self.rejected_by_code[i].1 += 1,
            Err(i) => self.rejected_by_code.insert(i, (code, 1)),
        }
    }

    fn merge(&mut self, other: &NetLoad) {
        self.offered += other.offered;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.traced_acks += other.traced_acks;
        self.gate_hold_s += other.gate_hold_s;
        for &(code, n) in &other.rejected_by_code {
            match self.rejected_by_code.binary_search_by_key(&code, |e| e.0) {
                Ok(i) => self.rejected_by_code[i].1 += n,
                Err(i) => self.rejected_by_code.insert(i, (code, n)),
            }
        }
    }
}

/// One worker's slice of the schedule:
/// `(global_seq, at_s, next_s, template)` — single transforms and whole
/// pipeline DAGs stream through the same windowed loop.
type Slice = Vec<(u64, f64, Option<f64>, SubmitTemplate)>;

/// Deals the recorded schedule round-robin across `clients` workers,
/// computing each worker's own next-arrival watermarks.
fn deal(schedule: &[(f64, SubmitTemplate)], clients: usize) -> Vec<Slice> {
    let mut slices: Vec<Slice> = vec![Vec::new(); clients.max(1)];
    for (i, (at_s, template)) in schedule.iter().enumerate() {
        slices[i % clients.max(1)].push((i as u64, *at_s, None, template.clone()));
    }
    for slice in &mut slices {
        for i in 0..slice.len() {
            slice[i].2 = slice.get(i + 1).map(|e| e.1);
        }
    }
    slices
}

/// Streams one worker's slice through a windowed paced connection.
fn stream_slice(addr: &str, name: &str, slice: Slice) -> std::io::Result<NetLoad> {
    let first_s = slice.first().map(|e| e.1);
    let mut client = ServeClient::connect(addr, name, Mode::Paced, first_s)?;
    client.set_timeout(Some(Duration::from_secs(30)))?;
    let window = client.info().window.max(1) as usize;
    let mut load = NetLoad {
        offered: slice.len() as u64,
        ..NetLoad::default()
    };
    let mut inflight = 0usize;
    let mut next = 0usize;
    while next < slice.len() || inflight > 0 {
        if next < slice.len() && inflight < window {
            let (seq, at_s, next_s, template) = &slice[next];
            match template {
                SubmitTemplate::Single(spec) => client.send(&Frame::Submit {
                    seq: *seq,
                    at_s: Some(*at_s),
                    next_s: *next_s,
                    trace: Some(*seq),
                    spec: *spec,
                })?,
                SubmitTemplate::Pipeline(pipe) => client.send(&Frame::PipelineSubmit {
                    seq: *seq,
                    at_s: Some(*at_s),
                    next_s: *next_s,
                    trace: Some(*seq),
                    pipe: pipe.clone(),
                })?,
            }
            next += 1;
            inflight += 1;
            continue;
        }
        match client.recv()? {
            Frame::SubmitAck { recv_s, ack_s, .. } | Frame::PipelineAck { recv_s, ack_s, .. } => {
                load.accepted += 1;
                load.traced_acks += 1;
                load.gate_hold_s += ack_s - recv_s;
                inflight -= 1;
            }
            Frame::Error {
                code, seq, message, ..
            } => {
                if seq.is_none() {
                    // A connection-fatal protocol error, not a rejection.
                    return Err(std::io::Error::new(
                        ErrorKind::InvalidData,
                        format!("protocol error {code}: {message}"),
                    ));
                }
                load.absorb_code(code);
                inflight -= 1;
            }
            other => {
                return Err(std::io::Error::new(
                    ErrorKind::InvalidData,
                    format!("unexpected frame while streaming: {other:?}"),
                ))
            }
        }
    }
    client.bye()?;
    Ok(load)
}

/// Replays the seeded open-loop schedule over `clients` concurrent TCP
/// connections. Returns the aggregate acks; fetch the report through a
/// separate control connection afterwards (see [`control`]).
///
/// # Errors
/// The first worker failure (socket or protocol), verbatim.
pub fn run_open_loop_net(
    addr: &str,
    workload: &Workload,
    requests: u64,
    rate_rps: f64,
    seed: u64,
    clients: usize,
) -> std::io::Result<NetLoad> {
    let schedule = open_loop_templates(workload, requests, rate_rps, seed);
    let slices = deal(&schedule, clients);
    let mut handles = Vec::new();
    for (k, slice) in slices.into_iter().enumerate() {
        let addr = addr.to_string();
        handles.push(std::thread::spawn(move || {
            stream_slice(&addr, &format!("loadnet-{k}"), slice)
        }));
    }
    let mut total = NetLoad::default();
    let mut first_err = None;
    for h in handles {
        match h.join() {
            Ok(Ok(load)) => total.merge(&load),
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => {
                first_err =
                    first_err.or_else(|| Some(std::io::Error::other("a load worker panicked")))
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(total),
    }
}

/// Replays the closed-loop generator over one paced connection: windows of
/// `concurrency` submits at the drained virtual time, each window drained
/// before the next — the same sequence `fft_serve::run_closed_loop`
/// produces in-process.
///
/// # Errors
/// Socket or protocol failures.
pub fn run_closed_loop_net(
    addr: &str,
    workload: &Workload,
    requests: u64,
    concurrency: u64,
    seed: u64,
) -> std::io::Result<NetLoad> {
    assert!(concurrency > 0, "closed loop needs at least one worker");
    let mut rng = fft_math::rng::SplitMix64::new(seed);
    let mut client = ServeClient::connect(addr, "loadnet-closed", Mode::Paced, Some(0.0))?;
    client.set_timeout(Some(Duration::from_secs(30)))?;
    let mut load = NetLoad {
        offered: requests,
        ..NetLoad::default()
    };
    let mut submitted = 0u64;
    let mut at = 0.0f64;
    let mut seq = 0u64;
    while submitted < requests {
        let window = concurrency.min(requests - submitted);
        for i in 0..window {
            let template = workload.draw_submit(&mut rng);
            let last_overall = submitted + i + 1 == requests;
            // Every future submit arrives at `at` or later (the next
            // window's time comes from the drain, which only moves
            // forward), so `at` itself is a valid watermark.
            let next_s = if last_overall { None } else { Some(at) };
            match client.submit_template_traced(seq, Some(seq), Some(at), next_s, &template)? {
                Ok((_, stamps)) => {
                    load.accepted += 1;
                    load.traced_acks += 1;
                    load.gate_hold_s += stamps.hold_s();
                }
                Err(e) => load.absorb_code(e.code),
            }
            seq += 1;
        }
        submitted += window;
        at = client.drain()?;
    }
    client.bye()?;
    Ok(load)
}

/// Opens a live control connection for post-run verbs (drain, report,
/// metrics, check, shutdown).
///
/// # Errors
/// Socket or handshake failures.
pub fn control(addr: &str) -> std::io::Result<ServeClient> {
    let mut c = ServeClient::connect(addr, "control", Mode::Live, None)?;
    c.set_timeout(Some(Duration::from_secs(30)))?;
    Ok(c)
}
