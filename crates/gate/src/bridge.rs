//! The wall-clock ↔ virtual-time bridge for paced connections.
//!
//! The serve core is a discrete-event simulation: `submit(spec, at_s)`
//! carries a *virtual* arrival time, and the same submission sequence
//! replays bit-identically. Real TCP clients, though, deliver frames in
//! whatever order the kernel schedules them — two connections racing to
//! submit `at_s = 1.0ms` and `at_s = 1.2ms` can arrive reversed. This
//! module restores schedule order without trusting wall-clock timing at
//! all:
//!
//! - every paced submit carries its virtual `at_s` plus a global `seq`
//!   (the schedule index), so `(at_s, seq)` totally orders the workload;
//! - every paced submit also carries `next_s`, the sender's *own next*
//!   arrival time (`None` = last) — a watermark promising "nothing earlier
//!   than this will ever come from me";
//! - held submissions release to the service in `(at_s, seq)` order, and
//!   the global minimum releases only when every other open paced
//!   connection either has a held submission (necessarily later than the
//!   minimum) or has promised, via its watermark, that its future is
//!   strictly later.
//!
//! Liveness: a connection that blocks the minimum has nothing held, so its
//! in-flight window has room and its client can (and will) send the very
//! frame the release is waiting for. The merged order is therefore exactly
//! the recorded schedule order regardless of thread or packet timing —
//! which is the whole trick behind `--seed`-reproducible network load
//! tests.

use fft_serve::SubmitTemplate;
use std::collections::BTreeMap;

/// What a paced connection has promised about its future arrivals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Watermark {
    /// Future submits all have `at_s ≥` this (stored as `f64::to_bits`,
    /// order-preserving for the non-negative times the bridge accepts).
    At(u64),
    /// No future submits (final submit seen, or the connection closed).
    Done,
}

#[derive(Debug)]
struct PacedConn {
    watermark: Watermark,
    held: usize,
}

/// One submission waiting for its turn in the merge.
#[derive(Clone, Debug)]
pub struct HeldSubmit {
    /// The connection that sent it (acks route back here).
    pub conn: u64,
    /// The global schedule index — the tiebreak for equal arrival times.
    pub seq: u64,
    /// Virtual arrival time, seconds.
    pub at_s: f64,
    /// The client's trace id, echoed in the eventual ack.
    pub trace: Option<u64>,
    /// Gateway wall clock when the submit frame was decoded — carried
    /// through the hold so the ack can report the true receive stamp even
    /// when the release happens much later.
    pub recv_s: f64,
    /// The submission template — a single transform or a whole pipeline
    /// DAG — to materialize at release.
    pub spec: SubmitTemplate,
}

/// The paced-connection merge described in the module docs.
#[derive(Debug, Default)]
pub struct PacedBridge {
    held: BTreeMap<(u64, u64), HeldSubmit>,
    conns: BTreeMap<u64, PacedConn>,
}

impl PacedBridge {
    /// A bridge with no connections.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a paced connection. `first_s` is the `at_s` of its first
    /// submit (`None` = it will never submit), from the `Hello` frame —
    /// without it, a freshly connected client would stall every other
    /// connection until its first frame arrived.
    pub fn register(&mut self, conn: u64, first_s: Option<f64>) -> Result<(), String> {
        let watermark = match first_s {
            None => Watermark::Done,
            Some(t) => Watermark::At(time_bits(t)?),
        };
        self.conns.insert(conn, PacedConn { watermark, held: 0 });
        Ok(())
    }

    /// Removes a closed connection from the merge. Submissions it still
    /// had held are dropped — their acks have nowhere to go, and a paced
    /// client dying mid-run has already forfeited reproducibility.
    pub fn close(&mut self, conn: u64) {
        if self.conns.remove(&conn).is_some() {
            self.held.retain(|_, h| h.conn != conn);
        }
    }

    /// Submissions currently held by `conn` (its in-flight window load).
    pub fn held_by(&self, conn: u64) -> usize {
        self.conns.get(&conn).map_or(0, |c| c.held)
    }

    /// Total submissions held across every connection.
    pub fn held_total(&self) -> usize {
        self.held.len()
    }

    /// Accepts one paced submit into the merge.
    ///
    /// # Errors
    /// A reason string (the gateway answers with a `BAD_REQUEST` wire
    /// error) when the times are non-finite or negative, the submit
    /// violates the connection's own previous watermark promise, `next_s`
    /// runs backwards, or the `(at_s, seq)` slot is already taken.
    #[allow(clippy::too_many_arguments)]
    pub fn submit(
        &mut self,
        conn: u64,
        seq: u64,
        at_s: f64,
        next_s: Option<f64>,
        trace: Option<u64>,
        recv_s: f64,
        spec: SubmitTemplate,
    ) -> Result<(), String> {
        let at_bits = time_bits(at_s)?;
        let state = self
            .conns
            .get_mut(&conn)
            .ok_or("connection is not registered as paced")?;
        match state.watermark {
            Watermark::Done => {
                return Err("submit after the final (next_s = null) submit".to_string())
            }
            Watermark::At(w) if at_bits < w => {
                return Err(format!(
                    "at_s = {at_s} violates this connection's watermark promise"
                ))
            }
            Watermark::At(_) => {}
        }
        let next = match next_s {
            None => Watermark::Done,
            Some(t) => {
                let bits = time_bits(t)?;
                if bits < at_bits {
                    return Err(format!("next_s = {t} runs backwards from at_s = {at_s}"));
                }
                Watermark::At(bits)
            }
        };
        if self
            .held
            .insert(
                (at_bits, seq),
                HeldSubmit {
                    conn,
                    seq,
                    at_s,
                    trace,
                    recv_s,
                    spec,
                },
            )
            .is_some()
        {
            return Err(format!(
                "duplicate submission slot (at_s = {at_s}, seq = {seq})"
            ));
        }
        state.watermark = next;
        state.held += 1;
        Ok(())
    }

    /// Releases every submission whose turn has come, in `(at_s, seq)`
    /// order. Call after each accepted submit and each connection close.
    pub fn release(&mut self) -> Vec<HeldSubmit> {
        let mut out = Vec::new();
        while let Some((&(at_bits, _), head)) = self.held.iter().next() {
            let head_conn = head.conn;
            let safe = self.conns.iter().all(|(&id, c)| {
                id == head_conn
                    || c.held > 0
                    || match c.watermark {
                        Watermark::Done => true,
                        Watermark::At(w) => w > at_bits,
                    }
            });
            if !safe {
                break;
            }
            let (_, h) = self.held.pop_first().expect("head exists");
            if let Some(c) = self.conns.get_mut(&h.conn) {
                c.held -= 1;
            }
            out.push(h);
        }
        out
    }
}

/// Order-preserving bit image of a virtual timestamp. Only non-negative
/// finite times are bridgeable (`to_bits` is monotone there).
fn time_bits(t: f64) -> Result<u64, String> {
    if !t.is_finite() || t < 0.0 {
        return Err(format!("virtual time {t} must be finite and non-negative"));
    }
    Ok(t.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bifft::plan::Algorithm;
    use fft_math::twiddle::Direction;
    use fft_serve::{Priority, SeededSpec, Shape};

    fn spec(seed: u64) -> SubmitTemplate {
        SubmitTemplate::Single(SeededSpec {
            shape: Shape::Rows1d { n: 256, rows: 8 },
            direction: Direction::Forward,
            algorithm: Some(Algorithm::FiveStep),
            priority: Priority::Normal,
            deadline_s: None,
            tenant: fft_serve::TenantId(0),
            seed,
        })
    }

    /// Two connections delivering out of order still release in global
    /// `(at_s, seq)` order, gated by the watermarks.
    #[test]
    fn merges_racing_connections_into_schedule_order() {
        let mut b = PacedBridge::new();
        // Conn 1 owns seqs {0: 1.0, 2: 3.0}; conn 2 owns {1: 2.0, 3: 4.0}.
        b.register(1, Some(1.0)).unwrap();
        b.register(2, Some(2.0)).unwrap();
        // Conn 2's frames arrive first. Its 2.0 cannot release: conn 1's
        // watermark (1.0) is not past it.
        b.submit(2, 1, 2.0, Some(4.0), None, 0.0, spec(1)).unwrap();
        assert!(b.release().is_empty());
        b.submit(2, 3, 4.0, None, None, 0.0, spec(3)).unwrap();
        assert!(b.release().is_empty());
        // Conn 1's first frame arrives: 1.0 releases immediately, and its
        // next_s = 3.0 watermark lets conn 2's 2.0 release behind it.
        b.submit(1, 0, 1.0, Some(3.0), None, 0.0, spec(0)).unwrap();
        let released: Vec<u64> = b.release().iter().map(|h| h.seq).collect();
        assert_eq!(released, vec![0, 1]);
        // Conn 1's last frame: everything flushes in order.
        b.submit(1, 2, 3.0, None, None, 0.0, spec(2)).unwrap();
        let released: Vec<u64> = b.release().iter().map(|h| h.seq).collect();
        assert_eq!(released, vec![2, 3]);
        assert_eq!(b.held_total(), 0);
    }

    /// Equal arrival times release in `seq` order, and a watermark merely
    /// *equal* to the head's time blocks release until the frame arrives.
    #[test]
    fn equal_times_break_ties_by_seq() {
        let mut b = PacedBridge::new();
        b.register(1, Some(5.0)).unwrap();
        b.register(2, Some(5.0)).unwrap();
        b.submit(2, 8, 5.0, None, None, 0.0, spec(8)).unwrap();
        // Conn 1 promised at_s >= 5.0 — it may yet send seq 7 at exactly
        // 5.0, so seq 8 must wait.
        assert!(b.release().is_empty());
        b.submit(1, 7, 5.0, None, None, 0.0, spec(7)).unwrap();
        let released: Vec<u64> = b.release().iter().map(|h| h.seq).collect();
        assert_eq!(released, vec![7, 8]);
    }

    /// A connection that declares it will never submit, or that closes,
    /// stops gating the merge.
    #[test]
    fn idle_and_closed_connections_do_not_gate() {
        let mut b = PacedBridge::new();
        b.register(1, Some(1.0)).unwrap();
        b.register(2, None).unwrap(); // will never submit
        b.register(3, Some(0.5)).unwrap();
        b.submit(1, 1, 1.0, None, None, 0.0, spec(1)).unwrap();
        // Conn 3's watermark 0.5 gates seq 1.
        assert!(b.release().is_empty());
        b.close(3);
        let released: Vec<u64> = b.release().iter().map(|h| h.seq).collect();
        assert_eq!(released, vec![1]);
    }

    /// Malformed paced traffic errors instead of corrupting the merge.
    #[test]
    fn rejects_watermark_violations_and_bad_times() {
        let mut b = PacedBridge::new();
        b.register(1, Some(2.0)).unwrap();
        assert!(
            b.submit(1, 0, 1.0, None, None, 0.0, spec(0)).is_err(),
            "before watermark"
        );
        assert!(b.submit(1, 0, f64::NAN, None, None, 0.0, spec(0)).is_err());
        assert!(b.submit(1, 0, -1.0, None, None, 0.0, spec(0)).is_err());
        assert!(
            b.submit(1, 0, 2.0, Some(1.0), None, 0.0, spec(0)).is_err(),
            "next_s backwards"
        );
        b.submit(1, 0, 2.0, None, None, 0.0, spec(0)).unwrap();
        assert!(
            b.submit(1, 1, 3.0, None, None, 0.0, spec(1)).is_err(),
            "submit after final"
        );
        assert!(
            b.submit(99, 0, 1.0, None, None, 0.0, spec(0)).is_err(),
            "unregistered"
        );
    }
}
