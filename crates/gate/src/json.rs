//! A minimal JSON value — the whole of what `bifft-wire-v1` frame bodies
//! need, with nothing from outside std (the workspace builds `--offline`).
//!
//! Two deliberate departures from a general-purpose JSON crate:
//!
//! - integers that fit `u64` keep their exact bits in [`Value::Int`] rather
//!   than collapsing into `f64` — payload seeds are full-width `u64`s and a
//!   double would silently round them, breaking the same-seed determinism
//!   the gateway exists to preserve;
//! - the parser is hardened, not fast: recursion depth and token length are
//!   bounded, and every malformed input returns `Err` — a hostile client
//!   must never panic the gateway.

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact.
    Int(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved so encodes are canonical.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match), `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact `u64`, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::Num(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::Num(f) => Some(f),
            _ => None,
        }
    }

    /// The value as `&str`, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice, when it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON. `f64`s use Rust's
    /// shortest-roundtrip formatting, so encode∘decode is the identity on
    /// every finite double; non-finite doubles render as `null` (JSON has
    /// no spelling for them).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Num(f) if !f.is_finite() => out.push_str("null"),
            Value::Num(f) => {
                let a = f.abs();
                if *f == f.trunc() && a < 1e15 {
                    // Keep integral doubles visibly floating ("2.0", not
                    // "2"), so decode lands back in Num, not Int.
                    out.push_str(&format!("{f:.1}"));
                } else if a != 0.0 && !(1e-4..1e15).contains(&a) {
                    // Display never uses scientific notation — a denormal
                    // would print hundreds of digits and bust the parser's
                    // token bound. LowerExp stays shortest-roundtrip.
                    out.push_str(&format!("{f:e}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            }
            Value::Str(s) => write_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document. Trailing non-whitespace, over-deep nesting and
/// every syntax error are `Err` — never a panic.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

/// Nesting depth bound: frame bodies are shallow (≤4 levels); 32 leaves
/// headroom while keeping hostile `[[[[…` inputs from exhausting the stack.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        self.skip_ws();
        match self.bytes.get(self.pos) {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let v = self.value(depth + 1)?;
                    fields.push((key, v));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogates and friends fold to the
                            // replacement char rather than erroring: frame
                            // bodies never need them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at offset {}", self.pos))
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through unchanged; the frame
                    // body was validated as UTF-8 before parsing.
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| (0x80..0xc0).contains(&b))
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 in string")?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        if token.is_empty() || token.len() > 64 {
            return Err(format!("bad number at offset {start}"));
        }
        // Plain non-negative integers keep exact u64 bits (seeds!).
        if token.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(i) = token.parse::<u64>() {
                return Ok(Value::Int(i));
            }
        }
        let f: f64 = token
            .parse()
            .map_err(|_| format!("bad number '{token}' at offset {start}"))?;
        if !f.is_finite() {
            return Err(format!("non-finite number '{token}'"));
        }
        Ok(Value::Num(f))
    }
}

/// Builds an object from `(key, value)` pairs — the frame-body constructor.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exact_u64_and_doubles() {
        let v = obj(vec![
            ("seed", Value::Int(u64::MAX - 3)),
            ("at", Value::Num(0.1 + 0.2)),
            ("whole", Value::Num(2.0)),
            ("label", Value::Str("a\"b\\c\nd".to_string())),
            ("flag", Value::Bool(true)),
            ("none", Value::Null),
            ("list", Value::Arr(vec![Value::Int(1), Value::Num(-1.5)])),
            ("tiny", Value::Num(f64::MIN_POSITIVE)),
            ("huge", Value::Num(-1.7e308)),
        ]);
        let text = v.encode();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("seed").unwrap().as_u64(), Some(u64::MAX - 3));
        assert_eq!(back.get("at").unwrap().as_f64(), Some(0.1 + 0.2));
    }

    #[test]
    fn hostile_inputs_error_instead_of_panicking() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "\"unterminated",
            "tru",
            "1e999",
            "nan",
            "--5",
            "{\"a\" 1}",
            "[]]",
            "\u{1}",
            "\"\\u12\"",
            "\"\u{7}\"",
            "0x10",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err(), "over-deep nesting must error");
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#" { "a" : [ 1 , 2.5 , { "b" : null } ] , "c" : "x" } "#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
    }
}
