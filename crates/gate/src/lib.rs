//! `fft-gate`: the network front-end that puts `fft-serve` on the wire.
//!
//! The serve core (`fft_serve::FftService`) is a deterministic,
//! virtual-time discrete-event simulation. This crate exposes it over a
//! real TCP socket speaking **`bifft-wire-v1.1`** — a versioned,
//! length-prefixed frame protocol with JSON payloads — without giving up
//! the determinism:
//!
//! - [`proto`] defines the frame grammar (19 frame types, typed error
//!   codes mapped 1:1 from the `Rejection` taxonomy) and the incremental
//!   [`FrameDecoder`];
//! - [`bridge`] is the wall-clock ↔ virtual-time merge that reassembles a
//!   recorded arrival schedule from racing TCP connections, so a
//!   `--seed`-driven network load test produces the *byte-identical*
//!   `ServeReport` an in-process run does;
//! - [`server`] is the single-threaded, nonblocking poll-loop gateway —
//!   `std` only, no async runtime — with per-connection in-flight
//!   windows and queue-full read-pauses for backpressure, exporting
//!   `gate_*` counters through the serve telemetry registry;
//! - [`client`] is the blocking [`ServeClient`] library type;
//! - [`loadnet`] replays the `fft_serve::loadgen` schedules over N
//!   concurrent connections;
//! - [`cli`] is the `fft-gate serve|bench|ping` binary.
//!
//! Everything here is dependency-free: the workspace keeps building with
//! `cargo build --offline`.

#![warn(missing_docs)]

pub mod bridge;
pub mod cli;
pub mod client;
pub mod json;
pub mod loadnet;
pub mod proto;
pub mod server;

pub use bridge::{HeldSubmit, PacedBridge};
pub use client::{AckStamps, PollAnswer, ServeClient, ServerInfo, WireError};
pub use loadnet::{control, run_closed_loop_net, run_open_loop_net, NetLoad};
pub use proto::{code, rejection_code, Frame, FrameDecoder, Mode, PROTO};
pub use server::{GateConfig, GateServer};
