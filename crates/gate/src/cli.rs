//! The `fft-gate` binary: the gateway server and its network tooling.
//!
//! ```text
//! fft-gate serve [--addr HOST:PORT] [--gpus N] [--streams N] [--queue N]
//!                [--window N] [--check-hazards] [--metrics-out PATH]
//!                [--port-file PATH]
//! fft-gate bench [--addr HOST:PORT] [--clients N] [--requests N]
//!                [--rate RPS] [--closed N] [--seed S]
//!                [--workload rows|mixed|pipeline] [--tenants N] [--gpus N] [--streams N]
//!                [--window N] [--check-hazards] [--validate-metrics]
//!                [--compare-local] [--metrics-out PATH]
//!                [--report-out PATH] [--shutdown]
//! fft-gate ping [--addr HOST:PORT] [--count N]
//! ```
//!
//! `serve` runs the poll loop until a client sends `Shutdown`;
//! `--port-file` writes the bound port once listening (the ephemeral-port
//! handshake CI uses), `--metrics-out` writes the final merged
//! serve+gateway metrics document at exit.
//!
//! `bench` is the network load generator. Without `--addr` it boots an
//! in-process gateway on an ephemeral port, so `fft-gate bench` alone is a
//! self-contained smoke test. `--compare-local` replays the identical
//! schedule in-process and fails unless the two `ServeReport` JSON
//! renders are byte-identical — the reproducibility acceptance check.
//! `--check-hazards` requires a validator-enabled server to answer clean,
//! and `--validate-metrics` fails the run on a malformed metrics document
//! or a violated SLO.

use crate::loadnet::{control, run_closed_loop_net, run_open_loop_net, NetLoad};
use crate::server::{GateConfig, GateServer};
use fft_serve::loadgen::open_loop_templates;
use fft_serve::{validate_metrics_json, FftService, ServeConfig, Workload};

struct Cli {
    addr: Option<String>,
    gpus: usize,
    streams: usize,
    queue: usize,
    window: usize,
    clients: usize,
    requests: u64,
    rate_rps: f64,
    closed: Option<u64>,
    seed: u64,
    workload: String,
    tenants: u32,
    count: u64,
    check_hazards: bool,
    validate_metrics: bool,
    compare_local: bool,
    shutdown: bool,
    metrics_out: Option<String>,
    report_out: Option<String>,
    port_file: Option<String>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            addr: None,
            gpus: 2,
            streams: 2,
            queue: 64,
            window: 32,
            clients: 8,
            requests: 96,
            rate_rps: 4000.0,
            closed: None,
            seed: 42,
            workload: "mixed".to_string(),
            tenants: 1,
            count: 3,
            check_hazards: false,
            validate_metrics: false,
            compare_local: false,
            shutdown: false,
            metrics_out: None,
            report_out: None,
            port_file: None,
        }
    }
}

fn usage() {
    eprintln!(
        "usage: fft-gate serve [--addr HOST:PORT] [--gpus N] [--streams N] [--queue N] \
         [--window N] [--check-hazards] [--metrics-out PATH] [--port-file PATH]\n\
         \u{20}      fft-gate bench [--addr HOST:PORT] [--clients N] [--requests N] [--rate RPS] \
         [--closed N] [--seed S] [--workload rows|mixed|pipeline] [--tenants N] [--gpus N] \
         [--streams N] \
         [--window N] \
         [--check-hazards] [--validate-metrics] [--compare-local] [--metrics-out PATH] \
         [--report-out PATH] [--shutdown]\n\
         \u{20}      fft-gate ping [--addr HOST:PORT] [--count N]"
    );
}

/// Entry point for the `fft-gate` binary; returns the process exit code.
pub fn cli_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        usage();
        return 2;
    };
    let mut cli = Cli::default();
    let mut it = args[1..].iter();
    macro_rules! take {
        ($flag:literal, $parse:expr) => {
            match it.next().and_then(|v| $parse(v.as_str())) {
                Some(v) => v,
                None => {
                    eprintln!(concat!("fft-gate: ", $flag, " needs a value"));
                    return 2;
                }
            }
        };
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => cli.addr = Some(take!("--addr", |v: &str| Some(v.to_string()))),
            "--gpus" => cli.gpus = take!("--gpus", |v: &str| v.parse().ok()),
            "--streams" => cli.streams = take!("--streams", |v: &str| v.parse().ok()),
            "--queue" => cli.queue = take!("--queue", |v: &str| v.parse().ok()),
            "--window" => cli.window = take!("--window", |v: &str| v.parse().ok()),
            "--clients" => cli.clients = take!("--clients", |v: &str| v.parse().ok()),
            "--requests" => cli.requests = take!("--requests", |v: &str| v.parse().ok()),
            "--rate" => cli.rate_rps = take!("--rate", |v: &str| v.parse().ok()),
            "--closed" => cli.closed = Some(take!("--closed", |v: &str| v.parse().ok())),
            "--seed" => cli.seed = take!("--seed", |v: &str| v.parse().ok()),
            "--workload" => cli.workload = take!("--workload", |v: &str| Some(v.to_string())),
            "--tenants" => {
                cli.tenants = take!("--tenants", |v: &str| v.parse().ok().filter(|&n| n > 0));
            }
            "--count" => cli.count = take!("--count", |v: &str| v.parse().ok()),
            "--check-hazards" => cli.check_hazards = true,
            "--validate-metrics" => cli.validate_metrics = true,
            "--compare-local" => cli.compare_local = true,
            "--shutdown" => cli.shutdown = true,
            "--metrics-out" => {
                cli.metrics_out = Some(take!("--metrics-out", |v: &str| Some(v.to_string())));
            }
            "--report-out" => {
                cli.report_out = Some(take!("--report-out", |v: &str| Some(v.to_string())));
            }
            "--port-file" => {
                cli.port_file = Some(take!("--port-file", |v: &str| Some(v.to_string())));
            }
            other => {
                eprintln!("fft-gate: unknown argument {other}");
                usage();
                return 2;
            }
        }
    }
    match cmd {
        "serve" => cmd_serve(&cli),
        "bench" => cmd_bench(&cli),
        "ping" => cmd_ping(&cli),
        other => {
            eprintln!("fft-gate: unknown command '{other}'");
            usage();
            2
        }
    }
}

fn gate_config(cli: &Cli) -> Result<GateConfig, String> {
    let serve = ServeConfig::builder()
        .gpus(cli.gpus)
        .streams(cli.streams)
        .queue_capacity(cli.queue)
        .check_hazards(cli.check_hazards)
        .build()
        .map_err(|e| e.to_string())?;
    Ok(GateConfig {
        serve,
        window: cli.window,
    })
}

fn cmd_serve(cli: &Cli) -> i32 {
    let cfg = match gate_config(cli) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fft-gate: bad config: {e}");
            return 2;
        }
    };
    let addr = cli.addr.as_deref().unwrap_or("127.0.0.1:4477");
    let server = match GateServer::bind(addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fft-gate: cannot bind {addr}: {e}");
            return 1;
        }
    };
    let bound = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fft-gate: no local address: {e}");
            return 1;
        }
    };
    if let Some(path) = &cli.port_file {
        if let Err(e) = std::fs::write(path, format!("{}\n", bound.port())) {
            eprintln!("fft-gate: cannot write {path}: {e}");
            return 1;
        }
    }
    eprintln!(
        "fft-gate: listening on {bound} ({} gpu(s) x {} stream(s), queue {}, window {})",
        cli.gpus, cli.streams, cli.queue, cli.window
    );
    let svc = server.run();
    eprintln!(
        "fft-gate: shut down at t = {:.6}s virtual ({} completions)",
        svc.now_s(),
        svc.completions().len()
    );
    if let Some(path) = &cli.metrics_out {
        if let Err(e) = std::fs::write(path, svc.metrics_json()) {
            eprintln!("fft-gate: cannot write {path}: {e}");
            return 1;
        }
        eprintln!("fft-gate: wrote metrics to {path}");
    }
    0
}

fn cmd_ping(cli: &Cli) -> i32 {
    let addr = cli.addr.as_deref().unwrap_or("127.0.0.1:4477");
    let mut client = match control(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fft-gate: cannot connect to {addr}: {e}");
            return 1;
        }
    };
    for nonce in 0..cli.count {
        let start = std::time::Instant::now();
        match client.ping(nonce) {
            Ok(now_s) => {
                eprintln!(
                    "pong from {addr}: nonce {nonce}, rtt {:.3} ms, server virtual t = {now_s:.6}s",
                    start.elapsed().as_secs_f64() * 1e3
                );
            }
            Err(e) => {
                eprintln!("fft-gate: ping failed: {e}");
                return 1;
            }
        }
    }
    client.bye().ok();
    0
}

/// Replays the bench schedule in-process with the same config, producing
/// the report the gateway run must match byte-for-byte.
fn local_report(cli: &Cli, workload: &Workload) -> Result<String, String> {
    let cfg = gate_config(cli)?;
    let mut svc = FftService::new(cfg.serve).map_err(|e| e.to_string())?;
    match cli.closed {
        Some(c) => {
            fft_serve::run_closed_loop(&mut svc, workload, cli.requests, c, cli.seed);
        }
        None => {
            for (at_s, template) in
                open_loop_templates(workload, cli.requests, cli.rate_rps, cli.seed)
            {
                let _ = template.submit(&mut svc, at_s);
            }
        }
    }
    svc.drain();
    Ok(svc.report().to_json())
}

fn cmd_bench(cli: &Cli) -> i32 {
    let mut workload = match cli.workload.as_str() {
        "rows" => Workload::rows(),
        "mixed" => Workload::mixed(),
        "pipeline" => Workload::pipeline(),
        other => {
            eprintln!("fft-gate: unknown workload '{other}' (rows|mixed|pipeline)");
            return 2;
        }
    };
    // Tenant tags ride the v1.2 Submit spec; the server accounts each
    // tenant under the default (equal-share) policy.
    workload.tenants = cli.tenants;
    // Without --addr, boot a private gateway on an ephemeral port so the
    // bench is self-contained.
    let (addr, local_server) = match &cli.addr {
        Some(a) => (a.clone(), None),
        None => {
            let cfg = match gate_config(cli) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("fft-gate: bad config: {e}");
                    return 2;
                }
            };
            let (bound, handle) = match GateServer::spawn("127.0.0.1:0", cfg) {
                Ok(pair) => pair,
                Err(e) => {
                    eprintln!("fft-gate: cannot boot an in-process gateway: {e}");
                    return 1;
                }
            };
            (bound.to_string(), Some(handle))
        }
    };
    let must_shutdown = cli.shutdown || local_server.is_some();

    let load = match cli.closed {
        Some(c) => run_closed_loop_net(&addr, &workload, cli.requests, c, cli.seed),
        None => run_open_loop_net(
            &addr,
            &workload,
            cli.requests,
            cli.rate_rps,
            cli.seed,
            cli.clients.max(1),
        ),
    };
    let load = match load {
        Ok(l) => l,
        Err(e) => {
            eprintln!("fft-gate: load generation failed: {e}");
            return 1;
        }
    };

    let mut ctl = match control(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fft-gate: cannot open the control connection: {e}");
            return 1;
        }
    };
    let mut failures = 0u32;
    let report = (|| -> std::io::Result<String> {
        ctl.drain()?;
        ctl.report()
    })();
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fft-gate: drain/report failed: {e}");
            return 1;
        }
    };
    print_summary(cli, &addr, &load, &report);

    if cli.check_hazards {
        match ctl.check() {
            Ok((enabled, clean, kernels, findings)) => {
                if !enabled {
                    eprintln!("fft-gate: FAIL: --check-hazards, but the server runs unchecked");
                    failures += 1;
                } else if !clean {
                    eprintln!("fft-gate: FAIL: validator found {findings} finding(s)");
                    failures += 1;
                } else {
                    eprintln!("fft-gate: hazard check clean over {kernels} kernel(s)");
                }
            }
            Err(e) => {
                eprintln!("fft-gate: check failed: {e}");
                failures += 1;
            }
        }
    }
    if cli.validate_metrics || cli.metrics_out.is_some() {
        match ctl.metrics() {
            Ok(doc) => {
                if let Some(path) = &cli.metrics_out {
                    if let Err(e) = std::fs::write(path, &doc) {
                        eprintln!("fft-gate: cannot write {path}: {e}");
                        failures += 1;
                    }
                }
                if cli.validate_metrics {
                    match validate_metrics_json(&doc) {
                        Ok(true) => eprintln!("fft-gate: metrics schema ok, slo ok"),
                        Ok(false) => {
                            eprintln!("fft-gate: FAIL: metrics valid but the SLO is violated");
                            failures += 1;
                        }
                        Err(e) => {
                            eprintln!("fft-gate: FAIL: invalid metrics document: {e}");
                            failures += 1;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("fft-gate: metrics fetch failed: {e}");
                failures += 1;
            }
        }
    }
    if let Some(path) = &cli.report_out {
        if let Err(e) = std::fs::write(path, &report) {
            eprintln!("fft-gate: cannot write {path}: {e}");
            failures += 1;
        }
    }
    if cli.compare_local {
        match local_report(cli, &workload) {
            Ok(local) if local == report => {
                eprintln!("fft-gate: gateway report is byte-identical to the in-process run");
            }
            Ok(_) => {
                eprintln!(
                    "fft-gate: FAIL: gateway report differs from the in-process run \
                     (same seed {})",
                    cli.seed
                );
                failures += 1;
            }
            Err(e) => {
                eprintln!("fft-gate: local replay failed: {e}");
                failures += 1;
            }
        }
    }

    if must_shutdown {
        if let Err(e) = ctl.shutdown() {
            eprintln!("fft-gate: shutdown failed: {e}");
            failures += 1;
        }
    } else {
        ctl.bye().ok();
    }
    if let Some(h) = local_server {
        h.join().ok();
    }
    if failures > 0 {
        1
    } else {
        0
    }
}

fn print_summary(cli: &Cli, addr: &str, load: &NetLoad, report: &str) {
    let mode = match cli.closed {
        Some(c) => format!("closed loop x{c}"),
        None => format!(
            "open loop at {:.0} req/s, {} client(s)",
            cli.rate_rps, cli.clients
        ),
    };
    eprintln!(
        "fft-gate: bench against {addr}: {} requests, {mode}, seed {}",
        cli.requests, cli.seed
    );
    eprintln!(
        "offered:  {} over the wire ({} accepted, {} rejected)",
        load.offered, load.accepted, load.rejected
    );
    for (code, n) in &load.rejected_by_code {
        eprintln!("          {n} rejection(s) with wire code {code}");
    }
    if load.traced_acks > 0 {
        // Wire-level reconciliation (v1.1 ack stamps): the mean wall-clock
        // seconds the gateway held a submit between frame receipt and ack.
        // This is the slice of client-observed latency the server-side
        // attribution ledger cannot see.
        eprintln!(
            "wire:     {} traced ack(s), mean gateway hold {:.3} ms",
            load.traced_acks,
            load.gate_hold_s / load.traced_acks as f64 * 1e3
        );
    }
    // Surface the headline serving numbers without reparsing the whole
    // report: they sit on their own lines in the deterministic render.
    for key in ["achieved_rps", "goodput_gbs", "p95_ms"] {
        if let Some(at) = report.find(&format!("\"{key}\":")) {
            let rest = &report[at..];
            if let Some(line) = rest.lines().next() {
                eprintln!("report:   {}", line.trim().trim_end_matches(','));
            }
        }
    }
}
