//! The `fft-gate` gateway binary. See `fft_gate::cli`.

fn main() {
    std::process::exit(fft_gate::cli::cli_main());
}
