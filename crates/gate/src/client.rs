//! `ServeClient`: the blocking client side of `bifft-wire-v1.3`.
//!
//! A thin, dependency-free wrapper over one `TcpStream`: it performs the
//! `Hello` handshake at connect, then exposes the protocol verbs either
//! as blocking request/reply calls (`ping`, `submit`, `poll`, `drain`,
//! `report`, …) or as the raw `send`/`recv` pair the windowed load
//! generator streams through. Single transforms and pipeline DAGs share
//! one code path via [`ServeClient::submit_template_traced`].

use crate::proto::{Frame, FrameDecoder, Mode, PROTO};
use fft_serve::{SeededSpec, SubmitTemplate};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A typed wire error (`Error` frame) surfaced to callers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// A [`crate::proto::code`] constant.
    pub code: u16,
    /// Machine-readable kind label.
    pub kind: String,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "wire error {} ({}): {}",
            self.code, self.kind, self.message
        )
    }
}

/// What the server declared about itself in `HelloAck`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerInfo {
    /// Server build name.
    pub server: String,
    /// Fleet size behind the gateway.
    pub gpus: u64,
    /// Stream lanes per card.
    pub streams: u64,
    /// Per-connection in-flight submit window.
    pub window: u64,
    /// The admission queue bound.
    pub queue_capacity: u64,
}

/// The result of polling a correlation id.
#[derive(Clone, Debug, PartialEq)]
pub struct PollAnswer {
    /// `"queued" | "done" | "failed" | "unknown"`.
    pub status: String,
    /// `done`: completion latency, seconds.
    pub latency_s: Option<f64>,
    /// `done`: the card it ran on (`None` = sharded).
    pub card: Option<u64>,
    /// `done`: whether it missed its deadline.
    pub timed_out: Option<bool>,
    /// `failed`: the dispatch error text.
    pub error: Option<String>,
}

/// The v1.1 gateway stamps echoed in a `SubmitAck`, in gateway wall
/// seconds. `ack_s - recv_s` is the gateway's wall-clock hold on one
/// submit — the piece of client-observed latency the server-side
/// attribution ledger cannot see (it lives before virtual time starts).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AckStamps {
    /// The trace id echoed from the submit (`None` = none was sent).
    pub trace: Option<u64>,
    /// Gateway wall clock when the submit frame was decoded.
    pub recv_s: f64,
    /// Gateway wall clock when the request entered the service.
    pub enq_s: f64,
    /// Gateway wall clock when the ack was queued for write.
    pub ack_s: f64,
}

impl AckStamps {
    /// Seconds the gateway held this submit between decoding the frame
    /// and queueing its ack (bridge residency plus service admission).
    pub fn hold_s(&self) -> f64 {
        self.ack_s - self.recv_s
    }
}

/// A blocking `bifft-wire-v1.1` client connection.
pub struct ServeClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    info: ServerInfo,
}

fn io_err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(ErrorKind::InvalidData, msg.into())
}

impl ServeClient {
    /// Connects, handshakes, and returns a ready client.
    ///
    /// `first_s` matters only for [`Mode::Paced`]: the `at_s` of this
    /// connection's first submit (`None` = it will never submit), which
    /// seeds the server-side merge watermark.
    ///
    /// # Errors
    /// Socket errors, a protocol mismatch, or any non-`HelloAck` answer.
    pub fn connect(
        addr: &str,
        name: &str,
        mode: Mode,
        first_s: Option<f64>,
    ) -> std::io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = ServeClient {
            stream,
            decoder: FrameDecoder::new(),
            info: ServerInfo {
                server: String::new(),
                gpus: 0,
                streams: 0,
                window: 1,
                queue_capacity: 0,
            },
        };
        client.send(&Frame::Hello {
            proto: PROTO.to_string(),
            client: name.to_string(),
            mode,
            first_s,
        })?;
        match client.recv()? {
            Frame::HelloAck {
                proto,
                server,
                gpus,
                streams,
                window,
                queue_capacity,
            } => {
                if proto != PROTO {
                    return Err(io_err(format!("server speaks '{proto}', not '{PROTO}'")));
                }
                client.info = ServerInfo {
                    server,
                    gpus,
                    streams,
                    window,
                    queue_capacity,
                };
                Ok(client)
            }
            Frame::Error { code, message, .. } => {
                Err(io_err(format!("handshake refused ({code}): {message}")))
            }
            other => Err(io_err(format!("expected HelloAck, got {other:?}"))),
        }
    }

    /// The server's handshake declaration.
    pub fn info(&self) -> &ServerInfo {
        &self.info
    }

    /// Sends one frame.
    ///
    /// # Errors
    /// Socket write errors.
    pub fn send(&mut self, frame: &Frame) -> std::io::Result<()> {
        self.stream.write_all(&frame.encode())
    }

    /// Receives the next frame, blocking until one is complete.
    ///
    /// # Errors
    /// Socket errors, a clean EOF mid-frame, or an undecodable frame.
    pub fn recv(&mut self) -> std::io::Result<Frame> {
        loop {
            match self.decoder.next_frame() {
                Ok(Some(f)) => return Ok(f),
                Ok(None) => {}
                Err((code, msg)) => return Err(io_err(format!("bad frame ({code}): {msg}"))),
            }
            let mut chunk = [0u8; 16384];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            self.decoder.feed(&chunk[..n]);
        }
    }

    /// Round-trips a `Ping`, returning the server's virtual time.
    ///
    /// # Errors
    /// Socket/protocol errors or a mismatched nonce.
    pub fn ping(&mut self, nonce: u64) -> std::io::Result<f64> {
        self.send(&Frame::Ping { nonce })?;
        match self.recv()? {
            Frame::Pong { nonce: got, now_s } if got == nonce => Ok(now_s),
            other => Err(io_err(format!("expected Pong({nonce}), got {other:?}"))),
        }
    }

    /// Submits one request and blocks for the verdict: the correlation id
    /// on admission, the typed rejection otherwise. Sends `trace = seq`
    /// and discards the ack stamps — use [`ServeClient::submit_traced`]
    /// to reconcile against the server ledger.
    ///
    /// # Errors
    /// Socket/protocol errors. Admission rejections are the `Ok(Err(_))`
    /// layer — they are part of the protocol, not transport failures.
    pub fn submit(
        &mut self,
        seq: u64,
        at_s: Option<f64>,
        next_s: Option<f64>,
        spec: SeededSpec,
    ) -> std::io::Result<Result<u64, WireError>> {
        Ok(self
            .submit_traced(seq, Some(seq), at_s, next_s, spec)?
            .map(|(id, _)| id))
    }

    /// Submits one request with an explicit trace id and returns the
    /// correlation id together with the gateway's [`AckStamps`].
    ///
    /// # Errors
    /// Socket/protocol errors, including an ack whose echoed trace does
    /// not match what was sent.
    pub fn submit_traced(
        &mut self,
        seq: u64,
        trace: Option<u64>,
        at_s: Option<f64>,
        next_s: Option<f64>,
        spec: SeededSpec,
    ) -> std::io::Result<Result<(u64, AckStamps), WireError>> {
        self.submit_template_traced(seq, trace, at_s, next_s, &SubmitTemplate::Single(spec))
    }

    /// Submits one template — a single transform (`Submit`, acked with
    /// `SubmitAck`) or a whole pipeline DAG (`PipelineSubmit`, acked with
    /// `PipelineAck`) — and returns the correlation id with the gateway's
    /// [`AckStamps`]. The two ack shapes are identical, so callers stream
    /// mixed traffic through one loop.
    ///
    /// # Errors
    /// Socket/protocol errors, including an ack whose echoed trace does
    /// not match what was sent.
    pub fn submit_template_traced(
        &mut self,
        seq: u64,
        trace: Option<u64>,
        at_s: Option<f64>,
        next_s: Option<f64>,
        template: &SubmitTemplate,
    ) -> std::io::Result<Result<(u64, AckStamps), WireError>> {
        match template {
            SubmitTemplate::Single(spec) => self.send(&Frame::Submit {
                seq,
                at_s,
                next_s,
                trace,
                spec: *spec,
            })?,
            SubmitTemplate::Pipeline(pipe) => self.send(&Frame::PipelineSubmit {
                seq,
                at_s,
                next_s,
                trace,
                pipe: pipe.clone(),
            })?,
        }
        match self.recv()? {
            Frame::SubmitAck {
                seq: got,
                id,
                trace: echoed,
                recv_s,
                enq_s,
                ack_s,
            }
            | Frame::PipelineAck {
                seq: got,
                id,
                trace: echoed,
                recv_s,
                enq_s,
                ack_s,
            } if got == seq => {
                if echoed != trace {
                    return Err(io_err(format!(
                        "ack for seq {seq} echoed trace {echoed:?}, sent {trace:?}"
                    )));
                }
                Ok(Ok((
                    id,
                    AckStamps {
                        trace: echoed,
                        recv_s,
                        enq_s,
                        ack_s,
                    },
                )))
            }
            Frame::Error {
                code,
                kind,
                message,
                ..
            } => Ok(Err(WireError {
                code,
                kind,
                message,
            })),
            other => Err(io_err(format!("expected a submit ack, got {other:?}"))),
        }
    }

    /// Polls a correlation id.
    ///
    /// # Errors
    /// Socket/protocol errors.
    pub fn poll(&mut self, id: u64) -> std::io::Result<PollAnswer> {
        self.send(&Frame::Poll { id })?;
        match self.recv()? {
            Frame::PollReply {
                id: got,
                status,
                latency_s,
                card,
                timed_out,
                error,
            } if got == id => Ok(PollAnswer {
                status,
                latency_s,
                card,
                timed_out,
                error,
            }),
            other => Err(io_err(format!("expected PollReply({id}), got {other:?}"))),
        }
    }

    /// Runs the service to quiescence; returns the virtual time reached.
    ///
    /// # Errors
    /// Socket/protocol errors, including the typed error the server sends
    /// when paced submissions are still in flight.
    pub fn drain(&mut self) -> std::io::Result<f64> {
        self.send(&Frame::Drain)?;
        match self.recv()? {
            Frame::DrainAck { now_s } => Ok(now_s),
            Frame::Error { code, message, .. } => {
                Err(io_err(format!("drain refused ({code}): {message}")))
            }
            other => Err(io_err(format!("expected DrainAck, got {other:?}"))),
        }
    }

    /// Fetches the `ServeReport` JSON, byte-identical to the in-process
    /// render.
    ///
    /// # Errors
    /// Socket/protocol errors.
    pub fn report(&mut self) -> std::io::Result<String> {
        self.send(&Frame::Report)?;
        match self.recv()? {
            Frame::ReportReply { json } => Ok(json),
            other => Err(io_err(format!("expected ReportReply, got {other:?}"))),
        }
    }

    /// Fetches the `bifft-metrics-v1` document.
    ///
    /// # Errors
    /// Socket/protocol errors.
    pub fn metrics(&mut self) -> std::io::Result<String> {
        self.send(&Frame::MetricsReq)?;
        match self.recv()? {
            Frame::MetricsReply { json } => Ok(json),
            other => Err(io_err(format!("expected MetricsReply, got {other:?}"))),
        }
    }

    /// Fetches the hazard-validator verdict:
    /// `(enabled, clean, kernels, findings)`.
    ///
    /// # Errors
    /// Socket/protocol errors.
    pub fn check(&mut self) -> std::io::Result<(bool, bool, u64, u64)> {
        self.send(&Frame::CheckReq)?;
        match self.recv()? {
            Frame::CheckReply {
                enabled,
                clean,
                kernels,
                findings,
            } => Ok((enabled, clean, kernels, findings)),
            other => Err(io_err(format!("expected CheckReply, got {other:?}"))),
        }
    }

    /// Asks the server to shut down once every connection closes; waits
    /// for its `Bye`.
    ///
    /// # Errors
    /// Socket/protocol errors.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        self.send(&Frame::Shutdown)?;
        match self.recv()? {
            Frame::Bye => Ok(()),
            other => Err(io_err(format!("expected Bye, got {other:?}"))),
        }
    }

    /// Says goodbye and closes.
    ///
    /// # Errors
    /// Socket write errors (already-closed streams are fine to drop
    /// silently instead).
    pub fn bye(mut self) -> std::io::Result<()> {
        self.send(&Frame::Bye)?;
        self.stream.flush()
    }

    /// Sets a read timeout so a wedged server cannot hang a test forever.
    ///
    /// # Errors
    /// Socket option errors.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }
}
